(* Hysteresis admission gate.  Trips to Shedding when queue depth crosses
   the high threshold or the engine reports ring pressure; reopens only
   once depth has fallen to the low threshold AND pressure has cleared.
   The gap between the thresholds is the flap guard: a depth oscillating
   inside (untrip, trip) never changes state. *)

exception Invalid_admission of string

type state = Open | Shedding

type t = {
  trip : int;
  untrip : int;
  mutable state : state;
  mutable trips : int;
  mutable untrips : int;
}

let create ~trip ~untrip =
  if trip < 1 then raise (Invalid_admission "Admission: trip < 1");
  if untrip < 0 || untrip >= trip then
    raise (Invalid_admission "Admission: need 0 <= untrip < trip");
  { trip; untrip; state = Open; trips = 0; untrips = 0 }

let observe t ~depth ~pressure =
  (match t.state with
  | Open ->
    if depth >= t.trip || pressure then begin
      t.state <- Shedding;
      t.trips <- t.trips + 1
    end
  | Shedding ->
    if depth <= t.untrip && not pressure then begin
      t.state <- Open;
      t.untrips <- t.untrips + 1
    end);
  t.state

let admits t ~depth ~pressure = observe t ~depth ~pressure = Open

let state t = t.state

let trips t = t.trips

let untrips t = t.untrips

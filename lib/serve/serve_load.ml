(* Shared load-generation harness for the serving front end: one leg =
   T tenants x S sessions driving the pipeline open-loop (Poisson, an
   offered rate independent of service time) or closed-loop (one request
   outstanding per session, think time between replies).  [bench serve],
   the [dudetm serve] CLI subcommand and the serve tests all run legs
   through this module so they agree on the keyspace (Tenant_mix), the
   application binding and the measurement. *)

module Sched = Dudetm_sim.Sched
module Cycles = Dudetm_sim.Cycles
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Config = Dudetm_core.Config
module Tenant_mix = Dudetm_workloads.Tenant_mix
module Srv = Serve.Make (Dudetm_tm.Tinystm)

type mode = Open of { ktps : float } | Closed of { think : int }

type result = {
  r_mode : string;
  r_offered_ktps : float;  (* open loop: the arrival rate; closed: 0 *)
  r_achieved_ktps : float;  (* goodput: executed + read replies *)
  r_elapsed : int;  (* simulated cycles *)
  r_done : int;  (* goodput replies *)
  r_shed : int;
  r_aborted : int;
  r_blocked : int;  (* open-loop window-exhausted stalls *)
  r_lat_write : Stats.Latency.r;  (* submit -> durable ack *)
  r_lat_read : Stats.Latency.r;
  r_tenant_done : int array;
  r_tenant_shed : int array;
  r_tenant_lat : Stats.Latency.r array;
  r_gate_trips : int;
  r_gate_untrips : int;
  r_depth_hwm : int;
  r_counters : (string * int) list;
}

(* Enough engine threads for the dispatcher workers; combine on, smallish
   rings so ring pressure is reachable by a bench-sized burst. *)
let engine_cfg ?(fault = Config.No_fault) ~workers () =
  {
    Config.default with
    Config.heap_size = 1 lsl 18;
    root_size = 4096;
    nthreads = max 2 workers;
    vlog_capacity = 1 lsl 10;
    plog_size = 1 lsl 14;
    meta_size = 1 lsl 13;
    combine = true;
    group_size = 4;
    batch_min_entries = 2;
    batch_max_entries = 16;
    batch_deadline = 512;
    seed = 7;
    fault;
  }

(* Key -> heap byte offset on its shard.  Keys are globally unique small
   ints (tenant * keys_per_tenant + rank), so giving each its own slot
   past the 64-byte root region can never alias. *)
let slot_of_key key = 64 + (8 * Int64.to_int key)

let app_of_mix mix =
  {
    Srv.shard_of = (fun key -> Tenant_mix.shard_of mix key);
    write =
      (fun tx ~shard ~key ~payload -> Srv.Sh.write tx ~shard (slot_of_key key) payload);
    read = (fun tx ~shard ~key -> Srv.Sh.read tx ~shard (slot_of_key key));
  }

let run ?scfg ?(theta = 0.99) ?(ro_permille = 500) ?(fault = Config.No_fault)
    ?(seed = 11) ?tenant_reqs ~nshards ~ntenants ~sessions ~reqs ~mode () =
  let scfg = match scfg with Some c -> c | None -> Serve.default_config in
  let cfg = engine_cfg ~fault ~workers:scfg.Serve.workers_per_shard () in
  let keys_per_tenant = 1 lsl 10 in
  if ntenants * keys_per_tenant * 8 + 64 > cfg.Config.heap_size then
    invalid_arg "Serve_load.run: keyspace exceeds the shard heap";
  let mix =
    Tenant_mix.create ~theta ~ro_permille ~ntenants ~keys_per_tenant ~nshards ()
  in
  let sh = Srv.Sh.create ~nshards cfg in
  let srv = Srv.create ~scfg ~app:(app_of_mix mix) ~ntenants sh in
  let lat_write = Stats.Latency.create () in
  let lat_read = Stats.Latency.create () in
  let tenant_lat = Array.init ntenants (fun _ -> Stats.Latency.create ()) in
  let done_reqs = ref 0 and shed = ref 0 and aborted = ref 0 in
  let blocked = ref 0 in
  let sessions_done = ref 0 in
  let total_sessions = ntenants * sessions in
  let on_reply d =
    match Srv.reply d with
    | Serve.R_executed _ ->
      incr done_reqs;
      Stats.Latency.record lat_write (Srv.latency d);
      Stats.Latency.record tenant_lat.(Srv.tenant_of d) (Srv.latency d)
    | Serve.R_value _ ->
      incr done_reqs;
      Stats.Latency.record lat_read (Srv.latency d);
      Stats.Latency.record tenant_lat.(Srv.tenant_of d) (Srv.latency d)
    | Serve.R_overloaded -> incr shed
    | Serve.R_aborted -> incr aborted
    | Serve.R_pending -> assert false
  in
  let gen tenant rng =
    let key = Tenant_mix.sample_key mix ~tenant rng in
    if Tenant_mix.is_read mix ~tenant rng then Serve.Read { key }
    else Serve.Write { key; payload = Rng.next_int64 rng }
  in
  let reqs_of tenant =
    match tenant_reqs with Some f -> f tenant | None -> reqs
  in
  let elapsed =
    Sched.run (fun () ->
        Srv.start srv;
        for tenant = 0 to ntenants - 1 do
          for s = 0 to sessions - 1 do
            ignore
              (Sched.spawn
                 (Printf.sprintf "client-%d-%d" tenant s)
                 (fun () ->
                   let rng =
                     Rng.create (seed + (tenant * 131) + (s * 7919))
                   in
                   let sess = Srv.session srv ~tenant ~sid:s in
                   (match mode with
                   | Closed { think } ->
                     Srv.run_closed sess rng ~reqs:(reqs_of tenant) ~think
                       ~gen:(gen tenant) ~on_reply
                   | Open { ktps } ->
                     (* Total offered rate [ktps] split evenly over every
                        session: per-session mean inter-arrival gap in
                        cycles. *)
                     let mean_gap =
                       int_of_float
                         (float_of_int total_sessions *. Cycles.per_second
                         /. (ktps *. 1000.0))
                     in
                     Srv.run_open sess rng ~reqs:(reqs_of tenant)
                       ~mean_gap:(max 1 mean_gap) ~gen:(gen tenant) ~on_reply);
                   blocked := !blocked + Srv.session_blocked sess;
                   incr sessions_done))
          done
        done;
        Sched.wait_until ~label:"serve load sessions" (fun () ->
            !sessions_done = total_sessions);
        Srv.stop srv)
  in
  let offered =
    match mode with Open { ktps } -> ktps | Closed _ -> 0.0
  in
  {
    r_mode = (match mode with Open _ -> "open" | Closed _ -> "closed");
    r_offered_ktps = offered;
    r_achieved_ktps =
      (if elapsed = 0 then 0.0
       else float_of_int !done_reqs /. (Cycles.to_us elapsed /. 1000.0));
    r_elapsed = elapsed;
    r_done = !done_reqs;
    r_shed = !shed;
    r_aborted = !aborted;
    r_blocked = !blocked;
    r_lat_write = lat_write;
    r_lat_read = lat_read;
    r_tenant_done = Array.init ntenants (Srv.tenant_done srv);
    r_tenant_shed = Array.init ntenants (Srv.tenant_shed srv);
    r_tenant_lat = tenant_lat;
    r_gate_trips = Admission.trips (Srv.gate srv);
    r_gate_untrips = Admission.untrips (Srv.gate srv);
    r_depth_hwm = Srv.depth_hwm srv;
    r_counters = Srv.counters srv;
  }

(** Hysteresis admission gate for the serving front end.

    A two-state machine driven by the observable overload signals (bounded
    request-queue depth, engine ring pressure): it trips to [Shedding]
    when depth reaches the high threshold or the engine's persistent-log
    rings cross their backpressure high-water mark, and reopens only once
    depth has drained to the low threshold {e and} pressure has cleared.
    The gap between the thresholds is the flap guard — a depth oscillating
    strictly inside [(untrip, trip)] never changes state. *)

exception Invalid_admission of string

type state = Open | Shedding

type t

val create : trip:int -> untrip:int -> t
(** Raises {!Invalid_admission} unless [0 <= untrip < trip]. *)

val observe : t -> depth:int -> pressure:bool -> state
(** Feed one observation and return the (possibly updated) state. *)

val admits : t -> depth:int -> pressure:bool -> bool
(** [observe t ... = Open].  The write-admission decision: [false] means
    shed with a typed [Overloaded] reply instead of queueing. *)

val state : t -> state

val trips : t -> int
(** Open→Shedding transitions so far. *)

val untrips : t -> int
(** Shedding→Open transitions so far. *)

(** Multi-tenant request pipeline over the sharded engine.

    Simulated client sessions drive open-loop (Poisson) and closed-loop
    arrivals through a bounded request queue into {!Dudetm_shard.Shard}.
    Requests are handed over {e by reference}: a session owns a pool of
    request descriptors (plain mutable records, key/payload as unboxed
    int64 fields — no serialize/copy on the hot path) and transfers
    ownership of one to the pipeline at {!Make.submit}; it gets the
    descriptor back, reply filled in, once the request is crash-safe.

    Admission control sheds writes with a typed {!reply.R_overloaded}
    when the hysteresis gate ({!Admission}) trips on queue depth or engine
    ring pressure; read-only requests route through the snapshot fast path
    ([atomically_ro]) and bypass the write-admission gate.  Dispatch is
    deficit-round-robin across tenants.  Write acknowledgements are
    released strictly at the shard's durable watermark — the acked-prefix
    invariant [dudetm check --serve] power-cuts against.

    Trace spans: [serve.enqueue], [serve.dispatch], [serve.reply], and a
    [serve.shed] instant (argument: the shed tenant) — all literal-string
    call sites, preserving the zero-alloc-when-disabled invariant. *)

exception Descriptor_in_flight of string
(** A session touched a descriptor the pipeline currently owns (or
    double-submitted one).  By-reference handoff means the session loses
    write access at [submit] and regains it with the reply. *)

exception Invalid_serve_config of string

type op = Write of { key : int64; payload : int64 } | Read of { key : int64 }

type reply =
  | R_pending  (** in flight *)
  | R_value of int64  (** read result (snapshot fast path) *)
  | R_executed of { shard : int; tid : int }
      (** write acknowledged at the durable watermark *)
  | R_overloaded  (** shed by admission control; never reached the engine *)
  | R_aborted  (** the application body called abort; not executed *)

type owner = By_session | By_pipeline

type config = {
  queue_capacity : int;  (** hard bound on queued requests, all tenants *)
  trip_depth : int;  (** admission gate trips at this queue depth *)
  untrip_depth : int;  (** ... and reopens at this one (hysteresis gap) *)
  drr_quantum : int;  (** requests per tenant per round-robin round *)
  slots_per_session : int;  (** descriptor pool = open-loop client window *)
  workers_per_shard : int;  (** dispatcher fibers (engine threads) per shard *)
}

val default_config : config

val validate_config : config -> unit
(** Raises {!Invalid_serve_config} on inconsistent thresholds. *)

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  module Sh : module type of Dudetm_shard.Shard.Make (Tm)

  module Engine : module type of Sh.Engine

  (** The application binds keys to transactional reads/writes; keeping
      these as closures keeps the descriptor plain data (zero-copy
      handoff) while the serve layer stays key-value agnostic. *)
  type app = {
    shard_of : int64 -> int;
    write : Sh.tx -> shard:int -> key:int64 -> payload:int64 -> unit;
    read : Sh.tx -> shard:int -> key:int64 -> int64;
  }

  type desc

  type t

  (** {1 Lifecycle} *)

  val create : ?scfg:config -> app:app -> ntenants:int -> Sh.t -> t
  (** Build the front end over a created/attached sharded instance; also
      installs a drain-context supplement on every region so
      [Drain_stalled] diagnostics carry queue depth, shed counts and gate
      state.  Raises {!Invalid_serve_config} if [workers_per_shard]
      exceeds the engine's Perform threads. *)

  val start : t -> unit
  (** [Sh.start] plus dispatcher and acker fibers; run inside
      {!Dudetm_sim.Sched.run}. *)

  val drain : t -> unit
  (** Block until every accepted request has been replied to, then drain
      the engine.  Raises [Dudetm_core.Dudetm.Drain_stalled] (with the
      front-end context folded in) if the drain budget expires first. *)

  val stop : t -> unit

  (** {1 Descriptors (by-reference request handoff)} *)

  val make_desc : tenant:int -> session:int -> op -> desc

  val set_op : desc -> op -> unit
  (** Raises {!Descriptor_in_flight} unless the session owns it. *)

  val submit : t -> desc -> bool
  (** Transfer ownership to the pipeline.  Returns [false] when the
      request was shed: the reply is already [R_overloaded] and the
      session keeps ownership.  Returns [true] when accepted — the
      session must not touch the descriptor until {!await} (or until
      ownership is back).  Raises {!Descriptor_in_flight} on a descriptor
      already in flight. *)

  val await : desc -> reply
  (** Block until the pipeline hands the descriptor back. *)

  val reply : desc -> reply
  (** Raises {!Descriptor_in_flight} while the pipeline owns it. *)

  val op_of : desc -> op

  val tenant_of : desc -> int

  val latency : desc -> int
  (** Reply minus submit timestamp, simulated cycles. *)

  (** {1 Sessions (arrival processes)} *)

  type session

  val session : t -> tenant:int -> sid:int -> session
  (** A client session with [slots_per_session] descriptors. *)

  val run_closed :
    session ->
    Dudetm_sim.Rng.t ->
    reqs:int ->
    think:int ->
    gen:(Dudetm_sim.Rng.t -> op) ->
    on_reply:(desc -> unit) ->
    unit
  (** Closed loop: one request outstanding; think time between replies. *)

  val run_open :
    session ->
    Dudetm_sim.Rng.t ->
    reqs:int ->
    mean_gap:int ->
    gen:(Dudetm_sim.Rng.t -> op) ->
    on_reply:(desc -> unit) ->
    unit
  (** Open loop: Poisson arrivals with exponential inter-arrival times of
      mean [mean_gap] cycles, window-limited by the descriptor pool (a
      full window stalls the arrival process and counts in
      {!session_blocked} — the system is then saturated past the shedding
      knee). *)

  val session_blocked : session -> int

  (** {1 Introspection} *)

  val shard : t -> Sh.t

  val config : t -> config

  val depth : t -> int

  val depth_hwm : t -> int

  val in_flight : t -> int

  val gate : t -> Admission.t

  val stats : t -> Dudetm_sim.Stats.t
  (** ["submitted"], ["accepted"], ["shed"], ["reads"], ["writes"],
      ["replies"]. *)

  val tenant_done : t -> int -> int

  val tenant_shed : t -> int -> int

  val shed_total : t -> int

  val counters : t -> (string * int) list
  (** {!stats} plus gate trips/untrips and the queue-depth high-water
      mark. *)
end

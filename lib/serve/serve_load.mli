(** Shared load-generation harness for the serving front end.

    One leg = [ntenants] x [sessions] client sessions driving the
    {!Serve} pipeline (instantiated over TinySTM) either open-loop —
    Poisson arrivals at a total offered rate independent of service time —
    or closed-loop (one request outstanding per session with think time).
    [bench serve], the [dudetm serve] CLI subcommand and the serve tests
    all run legs through this module so they agree on the keyspace
    ({!Dudetm_workloads.Tenant_mix}), the application binding and the
    measurement. *)

module Srv : module type of Serve.Make (Dudetm_tm.Tinystm)

type mode = Open of { ktps : float } | Closed of { think : int }

type result = {
  r_mode : string;
  r_offered_ktps : float;  (** open loop: the arrival rate; closed: 0 *)
  r_achieved_ktps : float;  (** goodput: executed + read replies *)
  r_elapsed : int;  (** simulated cycles *)
  r_done : int;
  r_shed : int;
  r_aborted : int;
  r_blocked : int;  (** open-loop window-exhausted stalls *)
  r_lat_write : Dudetm_sim.Stats.Latency.r;  (** submit -> durable ack *)
  r_lat_read : Dudetm_sim.Stats.Latency.r;
  r_tenant_done : int array;
  r_tenant_shed : int array;
  r_tenant_lat : Dudetm_sim.Stats.Latency.r array;
  r_gate_trips : int;
  r_gate_untrips : int;
  r_depth_hwm : int;
  r_counters : (string * int) list;
}

val engine_cfg :
  ?fault:Dudetm_core.Config.fault -> workers:int -> unit -> Dudetm_core.Config.t
(** The leg engine configuration: combine-mode persist pipeline with
    bench-sized rings (so ring pressure is reachable), [max 2 workers]
    Perform threads per shard. *)

val run :
  ?scfg:Serve.config ->
  ?theta:float ->
  ?ro_permille:int ->
  ?fault:Dudetm_core.Config.fault ->
  ?seed:int ->
  ?tenant_reqs:(int -> int) ->
  nshards:int ->
  ntenants:int ->
  sessions:int ->
  reqs:int ->
  mode:mode ->
  unit ->
  result
(** Run one leg to completion (every session issues its request count,
    then the front end drains and stops).  [tenant_reqs] overrides the
    per-session request count per tenant (skewed-tenant experiments).
    Deterministic for a given [seed]. *)

(* Multi-tenant serving front end over the sharded engine.

   Requests are handed over BY REFERENCE: a session owns a small pool of
   request descriptors (plain mutable records — key and payload are
   unboxed int64 fields, nothing is serialized or copied on the hot path)
   and transfers ownership of one to the pipeline at [submit]; it gets the
   descriptor back, reply filled in, at the durable acknowledgement.  Any
   access against the ownership direction raises [Descriptor_in_flight].

   Admission control sheds writes with a typed [R_overloaded] reply when
   the hysteresis gate ([Admission]) trips on queue depth or engine ring
   pressure; read-only requests bypass the write-admission gate (they cost
   the engine no log space) but still respect the hard queue bound.
   Dispatch is deficit-round-robin across tenants so one hot tenant cannot
   starve the others.  Write acknowledgements are released by a per-shard
   acker strictly at the shard's durable watermark ([Sh.wait_durable]) —
   the acked-prefix invariant the crash campaign checks.

   Under the [Skip_admission_gate] fault the gate is stubbed out: nothing
   is ever shed (the bounded queue grows without limit) and write replies
   are released at commit instead of at the durable watermark — a power
   cut mid-burst then loses acknowledged requests, which is exactly what
   [dudetm check --serve] must catch. *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Trace = Dudetm_trace.Trace
module Config = Dudetm_core.Config

exception Descriptor_in_flight of string

exception Invalid_serve_config of string

type op = Write of { key : int64; payload : int64 } | Read of { key : int64 }

type reply =
  | R_pending
  | R_value of int64  (* read result *)
  | R_executed of { shard : int; tid : int }  (* durable write ack *)
  | R_overloaded  (* shed by admission control; not executed *)
  | R_aborted  (* application called abort; not executed *)

type owner = By_session | By_pipeline

type config = {
  queue_capacity : int;  (* hard bound on queued requests, all tenants *)
  trip_depth : int;  (* admission gate trips at this queue depth *)
  untrip_depth : int;  (* ... and reopens at this one (hysteresis gap) *)
  drr_quantum : int;  (* requests per tenant per round-robin round *)
  slots_per_session : int;  (* descriptor pool = open-loop window *)
  workers_per_shard : int;  (* dispatcher fibers (engine threads) per shard *)
}

let default_config =
  {
    queue_capacity = 64;
    trip_depth = 48;
    untrip_depth = 16;
    drr_quantum = 4;
    slots_per_session = 8;
    workers_per_shard = 2;
  }

let validate_config c =
  let fail msg = raise (Invalid_serve_config ("Serve: " ^ msg)) in
  if c.queue_capacity < 1 then fail "queue_capacity < 1";
  if c.trip_depth < 1 || c.trip_depth > c.queue_capacity then
    fail "trip_depth outside [1, queue_capacity]";
  if c.untrip_depth < 0 || c.untrip_depth >= c.trip_depth then
    fail "need 0 <= untrip_depth < trip_depth";
  if c.drr_quantum < 1 then fail "drr_quantum < 1";
  if c.slots_per_session < 1 then fail "slots_per_session < 1";
  if c.workers_per_shard < 1 then fail "workers_per_shard < 1"

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  module Sh = Dudetm_shard.Shard.Make (Tm)
  module Engine = Sh.Engine

  (* The application binds keys to transactional reads/writes; keeping
     these as per-instance closures keeps the descriptor itself plain data
     (zero-copy handoff) while the serve layer stays key-value agnostic. *)
  type app = {
    shard_of : int64 -> int;
    write : Sh.tx -> shard:int -> key:int64 -> payload:int64 -> unit;
    read : Sh.tx -> shard:int -> key:int64 -> int64;
  }

  type desc = {
    tenant : int;
    session : int;
    mutable owner : owner;
    mutable op : op;
    mutable rep : reply;
    mutable t_submit : int;
    mutable t_reply : int;
  }

  type t = {
    sh : Sh.t;
    app : app;
    cfg : config;
    ntenants : int;
    mutant : bool;  (* Skip_admission_gate: never shed, ack at commit *)
    gate : Admission.t;
    (* queues.(shard).(tenant): accepted requests awaiting dispatch *)
    queues : desc Queue.t array array;
    (* pending.(shard): committed writes awaiting the durable watermark *)
    pending : (desc * Sh.ack) Queue.t array;
    mutable depth : int;  (* total queued (accepted, undispatched) *)
    mutable depth_hwm : int;
    mutable in_flight : int;  (* accepted and not yet replied *)
    mutable stopping : bool;
    stats : Stats.t;
    tenant_done : int array;
    tenant_shed : int array;
  }

  let shed_total t = Array.fold_left ( + ) 0 t.tenant_shed

  let create ?(scfg = default_config) ~app ~ntenants sh =
    validate_config scfg;
    if ntenants < 1 then raise (Invalid_serve_config "Serve: ntenants < 1");
    let ecfg = Sh.config sh in
    if scfg.workers_per_shard > ecfg.Config.nthreads then
      raise
        (Invalid_serve_config
           "Serve: workers_per_shard exceeds the engine's Perform threads");
    let nshards = Sh.nshards sh in
    let t =
      {
        sh;
        app;
        cfg = scfg;
        ntenants;
        mutant = ecfg.Config.fault = Config.Skip_admission_gate;
        gate = Admission.create ~trip:scfg.trip_depth ~untrip:scfg.untrip_depth;
        queues =
          Array.init nshards (fun _ ->
              Array.init ntenants (fun _ -> Queue.create ()));
        pending = Array.init nshards (fun _ -> Queue.create ());
        depth = 0;
        depth_hwm = 0;
        in_flight = 0;
        stopping = false;
        stats = Stats.create ();
        tenant_done = Array.make ntenants 0;
        tenant_shed = Array.make ntenants 0;
      }
    in
    (* Fold front-end state into every region's Drain_stalled diagnostic:
       "engine stalled" and "front end overloaded" must be tellable
       apart from the exception payload alone. *)
    let ctx () =
      Printf.sprintf "frontend: queue_depth=%d in_flight=%d shed=%d gate=%s"
        t.depth t.in_flight (shed_total t)
        (match Admission.state t.gate with
        | Admission.Open -> "open"
        | Admission.Shedding -> "shedding")
    in
    for s = 0 to nshards - 1 do
      Engine.set_drain_context (Sh.engine sh s) (Some ctx)
    done;
    t

  let engine_pressure t =
    let n = Sh.nshards t.sh in
    let rec any s = s < n && (Engine.ring_pressure (Sh.engine t.sh s) || any (s + 1)) in
    any 0

  (* ------------------------- descriptors ---------------------------- *)

  let make_desc ~tenant ~session op =
    {
      tenant;
      session;
      owner = By_session;
      op;
      rep = R_pending;
      t_submit = 0;
      t_reply = 0;
    }

  let set_op d op =
    if d.owner <> By_session then
      raise (Descriptor_in_flight "set_op: descriptor owned by the pipeline");
    d.op <- op;
    d.rep <- R_pending

  let reply d =
    if d.owner <> By_session then
      raise (Descriptor_in_flight "reply: descriptor owned by the pipeline");
    d.rep

  let op_of d = d.op

  let tenant_of d = d.tenant

  let latency d = d.t_reply - d.t_submit

  (* --------------------------- submit ------------------------------- *)

  let key_of = function Write { key; _ } -> key | Read { key; _ } -> key

  let finish t d rep =
    Trace.span_begin ~cat:"serve" "reply";
    d.rep <- rep;
    d.t_reply <- Sched.global_now ();
    d.owner <- By_session;
    t.in_flight <- t.in_flight - 1;
    t.tenant_done.(d.tenant) <- t.tenant_done.(d.tenant) + 1;
    Stats.incr t.stats "replies";
    Trace.span_end ~cat:"serve" "reply"

  let submit t d =
    if d.owner <> By_session then
      raise (Descriptor_in_flight "submit: descriptor already in flight");
    Trace.span_begin ~cat:"serve" "enqueue";
    Stats.incr t.stats "submitted";
    d.t_submit <- Sched.global_now ();
    d.rep <- R_pending;
    let shard = t.app.shard_of (key_of d.op) in
    let is_write = match d.op with Write _ -> true | Read _ -> false in
    let pressure = engine_pressure t in
    (* Feed the gate on every arrival (reads included) so it trips and
       reopens from depth alone even if the write mix dries up. *)
    let gate_state = Admission.observe t.gate ~depth:t.depth ~pressure in
    let shed =
      if t.mutant then false
      else if t.depth >= t.cfg.queue_capacity then true
      else is_write && gate_state = Admission.Shedding
    in
    if shed then begin
      d.rep <- R_overloaded;
      d.t_reply <- Sched.global_now ();
      t.tenant_shed.(d.tenant) <- t.tenant_shed.(d.tenant) + 1;
      Stats.incr t.stats "shed";
      Trace.instant ~cat:"serve" "shed" d.tenant;
      Trace.span_end ~cat:"serve" "enqueue";
      false
    end
    else begin
      d.owner <- By_pipeline;
      Queue.push d t.queues.(shard).(d.tenant);
      t.depth <- t.depth + 1;
      if t.depth > t.depth_hwm then t.depth_hwm <- t.depth;
      t.in_flight <- t.in_flight + 1;
      Stats.incr t.stats "accepted";
      Trace.span_end ~cat:"serve" "enqueue";
      true
    end

  let await d =
    Sched.wait_until ~label:"serve reply" (fun () ->
        d.owner = By_session && d.rep <> R_pending);
    d.rep

  (* -------------------------- dispatch ------------------------------ *)

  let executed_of home = function
    | Sh.Ack_local { shard; tid } -> R_executed { shard; tid }
    | Sh.Ack_cross { gtid } -> R_executed { shard = home; tid = gtid }
    | Sh.Ack_read_only -> R_executed { shard = home; tid = 0 }

  let dispatch_one t ~shard ~thread d =
    Trace.span_begin ~cat:"serve" "dispatch";
    (match d.op with
    | Read { key } -> (
      Stats.incr t.stats "reads";
      match
        Sh.atomically_ro t.sh ~thread ~shard (fun tx ->
            t.app.read tx ~shard ~key)
      with
      | Some (v, _epoch) -> finish t d (R_value v)
      | None -> finish t d R_aborted)
    | Write { key; payload } -> (
      Stats.incr t.stats "writes";
      match
        Sh.atomically t.sh ~thread ~shards:[ shard ] (fun tx ->
            t.app.write tx ~shard ~key ~payload)
      with
      | Some ((), ack) ->
        if t.mutant then
          (* BUG (Skip_admission_gate): acknowledge at commit, before the
             log record's NVM persist — a crash here loses an acked
             request. *)
          finish t d (executed_of shard ack)
        else (
          match ack with
          | Sh.Ack_read_only -> finish t d (executed_of shard ack)
          | ack -> Queue.push (d, ack) t.pending.(shard))
      | None -> finish t d R_aborted));
    Trace.span_end ~cat:"serve" "dispatch"

  let shard_depth t shard =
    Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues.(shard)

  (* Deficit round-robin over tenants: each round a tenant earns
     [drr_quantum] credits (capped at one unused round's worth) and spends
     one per dispatched request; an empty queue forfeits the balance.
     With unit-cost requests this caps any tenant's share of a contested
     dispatcher at quantum-per-round while letting an alone-in-the-queue
     tenant use the whole worker. *)
  let dispatcher t ~shard ~thread () =
    let q = t.cfg.drr_quantum in
    let deficit = Array.make t.ntenants 0 in
    while not t.stopping do
      if shard_depth t shard = 0 then
        Sched.wait_until ~label:"serve dispatch" (fun () ->
            t.stopping || shard_depth t shard > 0)
      else begin
        let progressed = ref false in
        for tenant = 0 to t.ntenants - 1 do
          let queue = t.queues.(shard).(tenant) in
          if Queue.is_empty queue then deficit.(tenant) <- 0
          else begin
            deficit.(tenant) <- min (2 * q) (deficit.(tenant) + q);
            while deficit.(tenant) > 0 && not (Queue.is_empty queue) do
              let d = Queue.pop queue in
              t.depth <- t.depth - 1;
              deficit.(tenant) <- deficit.(tenant) - 1;
              progressed := true;
              dispatch_one t ~shard ~thread d
            done
          end
        done;
        if not !progressed then Sched.yield ()
      end
    done

  (* Release write acks strictly in commit order at the shard's durable
     watermark.  FIFO is sound: single-shard tids are assigned at commit,
     so the pending queue is already sorted and each wait is monotone. *)
  let acker t ~shard () =
    while true do
      Sched.wait_until ~label:"serve ack" (fun () ->
          not (Queue.is_empty t.pending.(shard)));
      let d, ack = Queue.peek t.pending.(shard) in
      Sh.wait_durable t.sh ack;
      ignore (Queue.pop t.pending.(shard));
      finish t d (executed_of shard ack)
    done

  let start t =
    Sh.start t.sh;
    for shard = 0 to Sh.nshards t.sh - 1 do
      for w = 0 to t.cfg.workers_per_shard - 1 do
        ignore
          (Sched.spawn ~daemon:true
             (Printf.sprintf "serve-dispatch-%d-%d" shard w)
             (dispatcher t ~shard ~thread:w))
      done;
      ignore
        (Sched.spawn ~daemon:true
           (Printf.sprintf "serve-ack-%d" shard)
           (acker t ~shard))
    done

  let drain t =
    let deadline =
      Sched.global_now () + (Sh.config t.sh).Config.drain_budget
    in
    Sched.wait_until ~label:"serve drain" (fun () ->
        t.in_flight = 0 || Sched.global_now () >= deadline);
    if t.in_flight <> 0 then
      raise
        (Dudetm_core.Dudetm.Drain_stalled
           (Engine.drain_diagnostic (Sh.engine t.sh 0)));
    Sh.drain t.sh

  let stop t =
    drain t;
    t.stopping <- true;
    Sh.stop t.sh

  (* -------------------------- sessions ------------------------------ *)

  type session = {
    srv : t;
    tenant : int;
    sid : int;
    slots : desc array;
    in_use : bool array;
    free : int Queue.t;
    mutable blocked : int;  (* open-loop window-exhausted stalls *)
  }

  let session t ~tenant ~sid =
    let n = t.cfg.slots_per_session in
    let slots =
      Array.init n (fun _ ->
          make_desc ~tenant ~session:sid (Read { key = 0L }))
    in
    let free = Queue.create () in
    for i = 0 to n - 1 do
      Queue.push i free
    done;
    { srv = t; tenant; sid; slots; in_use = Array.make n false; free; blocked = 0 }

  let run_closed s rng ~reqs ~think ~gen ~on_reply =
    let d = s.slots.(0) in
    for _ = 1 to reqs do
      set_op d (gen rng);
      if submit s.srv d then ignore (await d);
      on_reply d;
      if think > 0 then Sched.advance think
    done

  (* Open loop: Poisson arrivals paced by [Sched.advance]; the descriptor
     pool is the client window.  A full window blocks the arrival process
     (and is counted in [blocked]) — at that point the measured system is
     saturated well past the shedding knee. *)
  let run_open s rng ~reqs ~mean_gap ~gen ~on_reply =
    let harvest () =
      for i = 0 to Array.length s.slots - 1 do
        if s.in_use.(i) && s.slots.(i).owner = By_session then begin
          s.in_use.(i) <- false;
          on_reply s.slots.(i);
          Queue.push i s.free
        end
      done
    in
    let some_replied () =
      let n = Array.length s.slots in
      let rec go i =
        i < n && ((s.in_use.(i) && s.slots.(i).owner = By_session) || go (i + 1))
      in
      go 0
    in
    for _ = 1 to reqs do
      let u = Dudetm_sim.Rng.float rng in
      let gap =
        max 1
          (int_of_float (-.log (max 1e-9 (1.0 -. u)) *. float_of_int mean_gap))
      in
      Sched.advance gap;
      harvest ();
      if Queue.is_empty s.free then begin
        s.blocked <- s.blocked + 1;
        Sched.wait_until ~label:"serve window" some_replied;
        harvest ()
      end;
      let i = Queue.pop s.free in
      let d = s.slots.(i) in
      set_op d (gen rng);
      if submit s.srv d then s.in_use.(i) <- true
      else begin
        on_reply d;
        Queue.push i s.free
      end
    done;
    (* Tail: collect every outstanding reply. *)
    let all_back () =
      let n = Array.length s.slots in
      let rec go i = i >= n || ((not s.in_use.(i)) || s.slots.(i).owner = By_session) && go (i + 1) in
      go 0
    in
    Sched.wait_until ~label:"serve tail" all_back;
    harvest ()

  let session_blocked s = s.blocked

  (* ------------------------ introspection --------------------------- *)

  let shard t = t.sh

  let config t = t.cfg

  let depth t = t.depth

  let depth_hwm t = t.depth_hwm

  let in_flight t = t.in_flight

  let gate t = t.gate

  let stats t = t.stats

  let tenant_done t i = t.tenant_done.(i)

  let tenant_shed t i = t.tenant_shed.(i)

  let counters t =
    ("gate_trips", Admission.trips t.gate)
    :: ("gate_untrips", Admission.untrips t.gate)
    :: ("queue_depth_hwm", t.depth_hwm)
    :: Stats.to_list t.stats
end

(* Shared machinery for the paper-reproduction benchmarks: builds the
   evaluated systems, runs a workload on N simulated threads, and reports
   throughput / latency / NVM traffic. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Cycles = Dudetm_sim.Cycles
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Pmem_config = Dudetm_nvm.Pmem_config
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf

(* ------------------------------ systems ------------------------------ *)

let heap_size = 32 * 1024 * 1024

let pmem ?(latency = 1000) ?(bandwidth = 1.0) () =
  { Pmem_config.default with Pmem_config.persist_latency = latency; bandwidth_gbps = bandwidth }

let dude_config ?(mode = Config.Async) ?(nthreads = 4) ?(latency = 1000) ?(bandwidth = 1.0)
    ?shadow_frames ?(shadow_mode = Dudetm_shadow.Shadow.Software) ?(heap = heap_size) () =
  {
    Config.default with
    Config.heap_size = heap;
    nthreads;
    mode;
    pmem = pmem ~latency ~bandwidth ();
    shadow_frames;
    shadow_mode;
  }

type system = Dude | Dude_inf | Dude_sync | Dude_sync_pcm | Volatile | Mnemosyne | Nvml

let system_name = function
  | Dude -> "DUDETM"
  | Dude_inf -> "DUDETM-Inf"
  | Dude_sync -> "DUDETM-Sync"
  | Dude_sync_pcm -> "DUDETM-Sync(3500)"
  | Volatile -> "Volatile-STM"
  | Mnemosyne -> "Mnemosyne"
  | Nvml -> "NVML"

let make_system ?(nthreads = 4) ?(latency = 1000) ?(bandwidth = 1.0) sys : Ptm.t =
  match sys with
  | Dude ->
    fst (B.Dude_ptm.Stm.ptm ~name:"DUDETM" (dude_config ~nthreads ~latency ~bandwidth ()))
  | Dude_inf ->
    fst
      (B.Dude_ptm.Stm.ptm ~name:"DUDETM-Inf"
         (dude_config ~mode:Config.Inf ~nthreads ~latency ~bandwidth ()))
  | Dude_sync ->
    fst
      (B.Dude_ptm.Stm.ptm ~name:"DUDETM-Sync"
         (dude_config ~mode:Config.Sync ~nthreads ~latency ~bandwidth ()))
  | Dude_sync_pcm ->
    fst
      (B.Dude_ptm.Stm.ptm ~name:"DUDETM-Sync(3500)"
         (dude_config ~mode:Config.Sync ~nthreads ~latency:3500 ~bandwidth ()))
  | Volatile -> B.Volatile_stm.ptm ~heap_size ~nthreads ()
  | Mnemosyne ->
    B.Mnemosyne.ptm
      { B.Mnemosyne.default_config with
        B.Mnemosyne.heap_size;
        nthreads;
        pmem = pmem ~latency ~bandwidth ();
      }
  | Nvml ->
    B.Nvml.ptm
      { B.Nvml.default_config with
        B.Nvml.heap_size;
        nthreads;
        pmem = pmem ~latency ~bandwidth ();
      }

(* ----------------------------- workloads ----------------------------- *)

(* A benchmark: a name, a setup, a transaction body (returning its commit
   id), a per-transaction application compute cost (calibration constant;
   see EXPERIMENTS.md), and the number of transactions to run. *)
type bench = {
  bname : string;
  think : int;
  ntxs : int;
  static_ok : bool;  (** runnable on NVML *)
  setup : Ptm.t -> (thread:int -> rng:Rng.t -> int);
}

let hashtable_bench ?(ntxs = 12_000) () =
  {
    bname = "HashTable";
    think = 900;
    ntxs;
    static_ok = true;
    setup =
      (fun ptm ->
        let h = W.Hashtable_app.setup ptm ~capacity:65536 in
        fun ~thread ~rng ->
          let key = Int64.of_int (1 + Rng.int rng 0xFFFFFF) in
          ignore (W.Hashtable_app.insert h ~thread ~key ~value:(Rng.next_int64 rng));
          0);
  }

let bptree_bench ?(ntxs = 8_000) () =
  {
    bname = "B+tree";
    think = 300;
    ntxs;
    static_ok = false;
    setup =
      (fun ptm ->
        let b = W.Bptree_app.create ptm in
        fun ~thread ~rng ->
          W.Bptree_app.insert b ~thread ~key:(Int64.of_int (1 + Rng.int rng 0xFFFFF))
            ~value:(Rng.next_int64 rng);
          0);
  }

let kv_bench ?(storage = W.Kv.Hash) ?(ntxs = 12_000) () =
  {
    bname = (match storage with W.Kv.Hash -> "KV (hash)" | W.Kv.Tree -> "KV (B+tree)");
    think = 600;
    ntxs;
    static_ok = storage = W.Kv.Hash;
    setup =
      (fun ptm ->
        let kv = W.Kv.setup ptm storage ~capacity:65536 in
        fun ~thread ~rng ->
          (* Mixed read/insert/update, YCSB-ish: 50% lookups, 30% inserts,
             20% updates over a 64K key space. *)
          let key = Int64.of_int (1 + Rng.int rng 0xFFFF) in
          (match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 -> ignore (W.Kv.lookup kv ~thread ~key)
          | 5 | 6 | 7 -> ignore (W.Kv.insert kv ~thread ~key ~value:(Rng.next_int64 rng))
          | _ -> ignore (W.Kv.update kv ~thread ~key ~value:(Rng.next_int64 rng)));
          0);
  }

let tatp_bench ~storage ?(ntxs = 12_000) () =
  {
    bname = (match storage with W.Kv.Hash -> "TATP (hash)" | W.Kv.Tree -> "TATP (B+tree)");
    think = (match storage with W.Kv.Hash -> 1200 | W.Kv.Tree -> 300);
    ntxs;
    static_ok = storage = W.Kv.Hash;
    setup =
      (fun ptm ->
        let t = W.Tatp.setup ptm ~storage ~subscribers:4000 in
        fun ~thread ~rng ->
          W.Tatp.update_location t ~thread ~rng;
          0);
  }

let tpcc_bench ~storage ?(ntxs = 800) ?(items = 1000) ?district_of_thread ?(mixed = false)
    () =
  {
    bname =
      (match (storage, mixed) with
      | W.Kv.Hash, false -> "TPC-C (hash)"
      | W.Kv.Tree, false -> "TPC-C (B+tree)"
      | W.Kv.Hash, true -> "TPC-C mix (hash)"
      | W.Kv.Tree, true -> "TPC-C mix (B+tree)");
    think = (if mixed then 30_000 else 60_000);
    ntxs;
    static_ok = storage = W.Kv.Hash;
    setup =
      (fun ptm ->
        let t = W.Tpcc.setup ptm ~storage ~items ~expected_orders:8192 () in
        fun ~thread ~rng ->
          let district = Option.map (fun f -> f thread) district_of_thread in
          if mixed then W.Tpcc.transaction t ~thread ~rng ?district ()
          else W.Tpcc.new_order t ~thread ~rng ?district ());
  }

let all_benches () =
  [
    bptree_bench ();
    tpcc_bench ~storage:W.Kv.Tree ();
    tatp_bench ~storage:W.Kv.Tree ();
    hashtable_bench ();
    tpcc_bench ~storage:W.Kv.Hash ();
    tatp_bench ~storage:W.Kv.Hash ();
  ]

(* ------------------------------- runner ------------------------------ *)

type result = {
  ktps : float;
  cycles_per_tx : float;
  ntxs_run : int;
  writes : int;  (** transactional writes executed (dtmWrite count) *)
  nvm_bytes : int;  (** bytes flushed to NVM during the measured phase *)
  run_cycles : int;  (** full simulated run, setup through drain/stop *)
  counters : (string * int) list;
  latency : Stats.Latency.r;
  commit_latency : Stats.Latency.r;
}

let run_bench ?(seed = 9000) ?(measure_latency = false) (ptm : Ptm.t) bench =
  let nthreads = ptm.Ptm.nthreads in
  let per = bench.ntxs / nthreads in
  let ntxs_run = per * nthreads in
  let done_ = Array.make nthreads 0 in
  let start = ref 0 in
  let start_writes = ref 0 in
  let start_bytes = ref 0 in
  let end_ = ref 0 in
  let latency = Stats.Latency.create () in
  let commit_latency = Stats.Latency.create () in
  let writes_of () =
    List.fold_left
      (fun acc (k, v) ->
        if k = "log_entries" || k = "tm.writes" || k = "writes" then max acc v else acc)
      0
      (ptm.Ptm.counters ())
  in
  let nvm_bytes_of () =
    match ptm.Ptm.nvm with Some nvm -> Nvm.persisted_write_bytes nvm | None -> 0
  in
  let run_cycles =
    Sched.run (fun () ->
         ptm.Ptm.start ();
         let do_tx = bench.setup ptm in
         start := Sched.now ();
         start_writes := writes_of ();
         start_bytes := nvm_bytes_of ();
         for th = 0 to nthreads - 1 do
           ignore
             (Sched.spawn
                (Printf.sprintf "worker-%d" th)
                (fun () ->
                  let rng = Rng.create (seed + th) in
                  (* The durability-acknowledgement protocol of Section 5.3:
                     remember (commit tid, begin time); after each
                     transaction, acknowledge everything at or below the
                     global durable ID. *)
                  let pending = Queue.create () in
                  let ack () =
                    let d = ptm.Ptm.durable_id () in
                    let rec drain () =
                      match Queue.peek_opt pending with
                      | Some (tid, t0) when tid <= d ->
                        ignore (Queue.pop pending);
                        Stats.Latency.record latency (Sched.now () - t0);
                        drain ()
                      | _ -> ()
                    in
                    drain ()
                  in
                  for _ = 1 to per do
                    Sched.advance bench.think;
                    let t0 = Sched.now () in
                    let tid = do_tx ~thread:th ~rng in
                    Stats.Latency.record commit_latency (Sched.now () - t0);
                    if measure_latency && tid > 0 then Queue.push (tid, t0) pending;
                    if measure_latency then ack ();
                    done_.(th) <- done_.(th) + 1
                  done;
                  if measure_latency then begin
                    Sched.wait_until ~label:"final acks" (fun () ->
                        match Queue.peek_opt pending with
                        | Some (tid, _) -> ptm.Ptm.durable_id () >= tid
                        | None -> true);
                    ack ()
                  end))
         done;
         Sched.wait_until ~label:"benchmark done" (fun () ->
             Array.for_all (fun c -> c = per) done_);
         end_ := Sched.now ();
         ptm.Ptm.drain ();
         ptm.Ptm.stop ())
  in
  let cycles = !end_ - !start in
  {
    ktps = (if cycles = 0 then 0.0 else float_of_int ntxs_run /. Cycles.to_seconds cycles /. 1e3);
    cycles_per_tx = float_of_int cycles /. float_of_int (max 1 ntxs_run);
    ntxs_run;
    writes = writes_of () - !start_writes;
    nvm_bytes = nvm_bytes_of () - !start_bytes;
    run_cycles;
    counters = ptm.Ptm.counters ();
    latency;
    commit_latency;
  }

(* ------------------------------ output ------------------------------- *)

let hr = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" hr title hr

let pp_ktps v = if v >= 1000.0 then Printf.sprintf "%.2f MTPS" (v /. 1000.0) else Printf.sprintf "%.1f KTPS" v

let write_artifact path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Sparse log2 histogram as a JSON array of [lower_bound_cycles, count]
   pairs — the full latency distribution behind the percentile summary, so
   bench artifacts can plot the shape at each offered-load point. *)
let histogram_json r =
  let pairs =
    List.map
      (fun (b, c) -> Printf.sprintf "[%d,%d]" (1 lsl b) c)
      (Stats.Latency.log2_histogram r)
  in
  "[" ^ String.concat "," pairs ^ "]"

let pp_commit_latency r =
  let p q = Stats.Latency.percentile r.commit_latency q in
  Printf.sprintf "p50 %d / p95 %d / p99 %d cyc" (p 50.0) (p 95.0) (p 99.0)

let report_commit_latency label r =
  Printf.printf "  commit latency %-24s %s\n%!" label (pp_commit_latency r)

(** Shared benchmark machinery for the paper-reproduction experiments:
    construction of the evaluated systems, the six benchmark workloads with
    their calibration constants, and the measured runner. *)

(** {1 Systems under evaluation (Section 5.1)} *)

type system =
  | Dude  (** decoupled, bounded volatile logs *)
  | Dude_inf  (** decoupled, unbounded volatile logs *)
  | Dude_sync  (** Perform and Persist merged: flush + wait per transaction *)
  | Dude_sync_pcm  (** DUDETM-Sync at the paper's 3500-cycle PCM latency *)
  | Volatile  (** plain TinySTM on DRAM — the upper bound *)
  | Mnemosyne
  | Nvml

val system_name : system -> string

val heap_size : int
(** Persistent heap used by the benchmark systems (32 MiB). *)

val pmem : ?latency:int -> ?bandwidth:float -> unit -> Dudetm_nvm.Pmem_config.t

val dude_config :
  ?mode:Dudetm_core.Config.mode ->
  ?nthreads:int ->
  ?latency:int ->
  ?bandwidth:float ->
  ?shadow_frames:int ->
  ?shadow_mode:Dudetm_shadow.Shadow.mode ->
  ?heap:int ->
  unit ->
  Dudetm_core.Config.t

val make_system :
  ?nthreads:int -> ?latency:int -> ?bandwidth:float -> system -> Dudetm_baselines.Ptm_intf.t

(** {1 Benchmarks} *)

(** A benchmark: name, per-transaction application compute cost ([think], a
    calibration constant documented in EXPERIMENTS.md), default transaction
    count, whether NVML's static transactions can run it, and a setup
    returning the per-transaction body (which reports its commit ID, or
    0). *)
type bench = {
  bname : string;
  think : int;
  ntxs : int;
  static_ok : bool;
  setup : Dudetm_baselines.Ptm_intf.t -> (thread:int -> rng:Dudetm_sim.Rng.t -> int);
}

val hashtable_bench : ?ntxs:int -> unit -> bench

val bptree_bench : ?ntxs:int -> unit -> bench

val kv_bench : ?storage:Dudetm_workloads.Kv.kind -> ?ntxs:int -> unit -> bench
(** Mixed key-value microbenchmark (50% lookups / 30% inserts / 20%
    updates, uniform 64K key space) — the workload driven by the
    [dudetm trace] profiling subcommand.  [storage] defaults to hash. *)

val tatp_bench : storage:Dudetm_workloads.Kv.kind -> ?ntxs:int -> unit -> bench

val tpcc_bench :
  storage:Dudetm_workloads.Kv.kind ->
  ?ntxs:int ->
  ?items:int ->
  ?district_of_thread:(int -> int) ->
  ?mixed:bool ->
  unit ->
  bench
(** [items] defaults to 1000 (scaled down from TPC-C's 100k); the
    scalability experiment uses a larger table to keep stock contention at
    the spec's level.  [mixed] runs the New Order / Payment / Order-Status
    mix instead of the paper's New-Order-only driver. *)

val all_benches : unit -> bench list
(** The paper's six benchmarks, in Table 1 order. *)

(** {1 Runner} *)

type result = {
  ktps : float;  (** committed transactions per second, thousands *)
  cycles_per_tx : float;  (** wall cycles per transaction across all threads *)
  ntxs_run : int;
  writes : int;  (** transactional writes executed *)
  nvm_bytes : int;  (** payload bytes flushed to NVM during the run *)
  run_cycles : int;
      (** full simulated run, setup through drain/stop — the wall-cycle
          denominator for daemon utilization *)
  counters : (string * int) list;
  latency : Dudetm_sim.Stats.Latency.r;
      (** durable-acknowledgement latencies (Section 5.3 protocol), only
          populated when [measure_latency] was set *)
  commit_latency : Dudetm_sim.Stats.Latency.r;
      (** per-transaction commit latency in simulated cycles (begin to
          [dtmEnd] return, think time excluded) — always populated *)
}

val run_bench :
  ?seed:int -> ?measure_latency:bool -> Dudetm_baselines.Ptm_intf.t -> bench -> result
(** Run [bench] on [nthreads] simulated worker threads, measure from setup
    end to last commit, then drain.  Deterministic for a given seed. *)

(** {1 Output helpers} *)

val section : string -> unit

val pp_ktps : float -> string

val write_artifact : string -> string -> unit
(** Write a machine-readable benchmark artifact (the BENCH_*.json files CI
    uploads) and print the one-line "wrote ..." notice. *)

val histogram_json : Dudetm_sim.Stats.Latency.r -> string
(** Sparse log2 latency histogram as a JSON array of
    [[lower_bound_cycles, count]] pairs, in increasing bound order — the
    full distribution behind the percentile summary, embedded per
    offered-load point in [BENCH_serve.json]. *)

val pp_commit_latency : result -> string
(** ["p50 .. / p95 .. / p99 .. cyc"] over {!result.commit_latency}. *)

val report_commit_latency : string -> result -> unit
(** One-line commit-latency percentile report, used by every bench
    experiment. *)

(** Systematic crash-consistency and schedule exploration.

    The checker runs any {!Dudetm_baselines.Ptm_intf.t} system (DudeTM in
    its variants, Mnemosyne, NVML) against small {e counter-family}
    workloads whose entire durable state is a deterministic function of the
    recovered commit counter, then tries to break the system two ways:

    - {b Crash enumeration}: the simulated NVM fires a hook at every
      persist boundary — once when a persist ordering is issued and once
      after each cache line reaches the persisted image (see
      {!Dudetm_nvm.Nvm.set_persist_hook}).  A first run counts the
      boundaries; subsequent runs cut power at chosen boundaries, so
      crashes land between any two line flushes (torn persists included),
      recover, and check the oracle.
    - {b Schedule exploration}: the scheduler's strategy interface
      ({!Dudetm_sim.Sched.strategy}) is driven either by seeded random
      preemption or by a bounded exhaustive DFS over the first scheduling
      decision points, each explored schedule ending in a full-power-loss
      crash after quiescence.

    The oracle checks, after every recovery:
    - {b atomicity}: the recovered state equals the model state for {e some}
      commit prefix [k] (no torn transaction is ever visible);
    - {b durability of acknowledged transactions}: [k] covers every
      durable ID the system ever reported before the crash;
    - {b durable-ID sanity}: the reported durable ID never regresses and
      never passes the last issued transaction ID (sampled by a monitor
      thread during the run);
    - {b recovery agreement}: when the system reports a recovered durable
      ID (DudeTM's attach), it matches the recovered state;
    - {b no loss at quiescence}: a crash after [drain] recovers every
      committed transaction.

    Torn log records are covered implicitly: a recovery that accepts one
    replays garbage and fails the atomicity check.

    Failures are shrunk to a minimal [(workload, schedule, crash point)]
    triple and printed as a replayable [dudetm check ...] one-liner. *)

exception Crash_now
(** Raised from the persist hook to cut power at an exact boundary. *)

(** {1 Systems under test} *)

type recovered = {
  rec_durable : int option;
      (** durable ID the system's own recovery reports; [None] when the
          system has no recovery-time durable ID *)
  rec_peek : int -> int64;  (** read the recovered data image *)
}

type instance = {
  ptm : Dudetm_baselines.Ptm_intf.t;
  inst_nvm : Dudetm_nvm.Nvm.t;
  recover : unit -> recovered;
      (** called once, after {!Dudetm_nvm.Nvm.crash}, with the hook
          cleared *)
}

type sut = {
  sut_name : string;
  sut_static : bool;  (** only static-transaction workloads apply *)
  fresh : unit -> instance;  (** a brand-new system on a fresh device *)
}

val dude : ?fault:Dudetm_core.Config.fault -> unit -> sut
(** DudeTM over the software TM.  [fault] seeds a deliberate ordering bug
    (see {!Dudetm_core.Config.fault}) for checker self-validation. *)

val dude_combine : ?fault:Dudetm_core.Config.fault -> unit -> sut
(** DudeTM with cross-transaction combination and compression. *)

val dude_htm : unit -> sut
(** DudeTM over the simulated HTM (with global-lock fallback). *)

val mnemosyne : unit -> sut

val nvml : unit -> sut

val sut_of_name : ?fault:Dudetm_core.Config.fault -> string -> sut
(** ["dude" | "dude-combine" | "dude-htm" | "mnemosyne" | "nvml"]; raises
    [Invalid_argument] otherwise.  [fault] only applies to DudeTM. *)

val sut_names : string list

(** {1 Workloads} *)

type workload = {
  wl_name : string;
  threads : int;
  txs_per_thread : int;
  wl_static : bool;  (** write set is declarable up front *)
  wl_wset : int list option;  (** declared write set for static systems *)
  tx_body : Dudetm_baselines.Ptm_intf.tx -> unit;
  wl_root : int;  (** address of the commit counter *)
  check_state : peek:(int -> int64) -> k:int -> string option;
      (** [None] when the image is exactly the model state after [k]
          commits; [Some reason] otherwise *)
}

val counter : threads:int -> txs:int -> workload
(** Each transaction reads the root counter [c], stamps slot
    [(c+1) mod slots] with [c+1] and writes the root back — the state after
    [k] commits depends only on [k]. *)

val overlap : threads:int -> txs:int -> workload
(** Adversarial variant: every transaction stamps {e two} overlapping
    slots, so consecutive transactions write intersecting sets. *)

val counter1 : threads:int -> txs:int -> workload
(** Single-cell counter with declared write set [[root]] — the only
    workload expressible as a static transaction (NVML). *)

val workload_of_name : threads:int -> txs:int -> string -> workload
(** ["counter" | "overlap" | "counter1"]. *)

val workloads_for : sut -> threads:int -> txs:int -> workload list
(** The workloads applicable to a system (static systems only get
    {!counter1}). *)

(** {1 Budgets} *)

type budget = {
  crash_sites : int;  (** crash boundaries explored under the default schedule *)
  sched_seeds : int;  (** random-preemption seeds *)
  crash_sites_per_seed : int;
  exhaustive_runs : int;  (** bounded-DFS schedule explorations *)
  exhaustive_depth : int;  (** decision points eligible for branching *)
}

val tier1_budget : unit -> budget
(** The bounded budget used by [dune runtest].  Environment knobs:
    [DUDETM_CHECK_BUDGET=n] multiplies the exploration counts by [n];
    [DUDETM_CHECK_DEEP=1] switches to {!deep_budget}. *)

val deep_budget : budget
(** The budget behind [dudetm check --deep]. *)

val quick_budget : budget
(** The bounded tier-1 numbers with environment knobs ignored
    ([dudetm check --quick]). *)

(** {1 Checking} *)

type sched_spec =
  | Default  (** min-clock discrete-event order *)
  | Seed of int  (** seeded random preemption *)
  | Prefix of int list  (** scripted decision-point choices, then default *)

val sched_to_string : sched_spec -> string

val sched_of_string : string -> sched_spec
(** Inverse of {!sched_to_string} (["default"], ["seed:N"],
    ["prefix:c0,c1,..."]); raises [Invalid_argument] on junk. *)

type failure = {
  f_system : string;
  f_workload : string;
  f_threads : int;
  f_txs : int;
  f_sched : sched_spec;
  f_crash : int option;  (** crash boundary; [None]: power loss after quiescence *)
  f_evict : (float * int) option;
      (** cache-eviction adversary in force: (fraction, RNG seed) — each
          dirty line independently leaked into the persisted image with
          this probability at the power cut *)
  f_survivors : int list;
      (** the dirty lines that actually leaked in the failing run (makes
          the eviction exactly replayable together with the seed) *)
  f_reason : string;
}

type report = Pass of { runs : int; sites : int } | Fail of failure

val replay_line : failure -> string
(** The deterministically replayable [dudetm check ...] one-liner. *)

val check_system :
  ?budget:budget -> ?log:(string -> unit) -> ?evict:float * int -> sut -> workload list -> report
(** Run the full exploration.  [evict] runs every crash under the
    cache-eviction adversary: a seeded random subset of dirty lines
    survives each power cut ({!Dudetm_nvm.Nvm.crash}).  On the first
    oracle violation the failing case is shrunk (default schedule
    preferred, then fewest transactions, then earliest crash boundary)
    before being reported. *)

val replay :
  ?evict:float * int -> sut -> workload -> sched:sched_spec -> crash:int option -> string option
(** Re-run one exact case; [Some reason] if the oracle still fails. *)

val count_sites : sut -> workload -> sched:sched_spec -> int
(** Number of crash boundaries one run of this case passes through. *)

(** {1 Media-fault campaign}

    Beyond clean power cuts, the campaign attacks the {e media}: after a
    crash (or at quiescence) it injects seeded faults —
    {!Dudetm_nvm.Nvm.fault} bit rot, poisoned lines, stuck lines — into
    the persisted image, runs the offline scrub
    ({!Dudetm_scrub.Scrub.scrub}), recovers, and holds the system to a
    single obligation: {b never silently wrong}.  Each run must either
    recover state that passes the normal crash oracle, or the damage must
    have been {e reported} — a non-clean scrub report, or corrupted
    records / quarantined lines in the recovery report.  Undetected
    corruption of visible state is the only failure.

    Heap bit rot is confined to the workload's live bytes so detection is
    deterministic, and ring rot never targets the last sealed record of a
    ring (indistinguishable from a torn tail, which is silently and
    correctly discarded).  The campaign validates itself against the
    seeded {!Dudetm_core.Config.Skip_crc_verify} mutant, whose skipped
    checksum audit lets heap rot through unreported. *)

type media_mode =
  | Heap_rot  (** 1-3 distinct bit flips in the live heap bytes *)
  | Mixed  (** 1-3 faults drawn from heap rot, ring rot, poison, stuck *)

val media_mode_to_string : media_mode -> string

val media_mode_of_string : string -> media_mode
(** ["heap" | "mixed"]; raises [Invalid_argument] otherwise. *)

type media_failure = {
  mf_mode : media_mode;
  mf_seed : int;  (** fault-injection RNG seed *)
  mf_crash : int option;  (** crash boundary; [None]: faults at quiescence *)
  mf_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  mf_faults : string;  (** human-readable list of the injected faults *)
  mf_reason : string;
}

type media_report =
  | Media_pass of { runs : int; injected : int }
  | Media_fail of media_failure

val media_replay_line : media_failure -> string
(** The replayable [dudetm check --media ...] one-liner. *)

val check_media :
  ?fault:Dudetm_core.Config.fault ->
  ?seeds:int ->
  ?log:(string -> unit) ->
  ?mode:media_mode ->
  ?media_seed:int ->
  ?crash:int ->
  unit ->
  media_report
(** Run the campaign: for each seed in [1..seeds] (default
    {!default_media_seeds}), heap rot at quiescence, mixed faults at
    quiescence, and mixed faults at a seed-derived crash boundary.
    Passing both [mode] and [media_seed] (with optional [crash]) replays
    exactly one case instead. *)

val default_media_seeds : int

(** {1 Nested-crash recovery campaign}

    Recovery must itself be crash-consistent: [attach] and the offline
    scrub order every destructive recovery-time write behind the intent
    journal ({!Dudetm_core.Rjournal}), so a power cut at {e any} persist
    boundary inside them, followed by a fresh [attach], converges to the
    same durable ID, heap state and recovery report as an uninterrupted
    recovery of the same image.

    The campaign enumerates exactly that: for each first power cut (at
    quiescence plus seed-derived mid-run boundaries), it measures the
    uninterrupted recovery verdict as the baseline, then re-arms the
    persist hook {e during} recovery — cutting power inside [attach] (all
    boundaries) and inside [Scrub.scrub ~repair:true ~probe_stuck:true]
    (sampled boundaries, always including the probes of the workload's
    live lines) — and goes two deep by also cutting the recovery of a
    crashed recovery.  Every leg ends in an uninterrupted attach that must
    reproduce the baseline verdict field-for-field and pass the normal
    crash oracle.

    The campaign validates itself against the seeded
    {!Dudetm_core.Config.Skip_recovery_journal} mutant: without the
    journal, a cut between a scrub probe's pattern write and its restore
    leaves garbage in live heap bytes that no log record repairs. *)

type recovery_leg = Attach_leg | Scrub_leg

val leg_to_string : recovery_leg -> string

val leg_of_string : string -> recovery_leg
(** ["attach" | "scrub"]; raises [Invalid_argument] otherwise. *)

type recovery_budget = {
  rec_seeds : int;  (** seed-derived first-crash boundaries (plus quiescence) *)
  rec_attach_sites : int;  (** boundaries cut inside [attach] (all, up to this) *)
  rec_scrub_sites : int;  (** sampled boundaries cut inside the scrub *)
  rec_deep_points : int;  (** first-recovery cuts that get a nested sweep *)
  rec_deep_sites : int;  (** sampled boundaries inside the second recovery *)
}

val quick_recovery_budget : recovery_budget
(** Behind [dudetm check --recovery]. *)

val smoke_recovery_budget : recovery_budget
(** The bounded tier-1 numbers. *)

type recovery_failure = {
  rcf_fault : Dudetm_core.Config.fault;
  rcf_crash : int option;  (** first power cut; [None]: at quiescence *)
  rcf_leg : recovery_leg;  (** which recovery step was cut *)
  rcf_crash2 : int option;  (** boundary cut inside that step *)
  rcf_crash3 : int option;  (** boundary cut inside the second recovery *)
  rcf_reason : string;
}

type recovery_report =
  | Recovery_pass of { runs : int; boundaries : int }
  | Recovery_fail of recovery_failure

val recovery_replay_line : recovery_failure -> string
(** The replayable [dudetm check --recovery ...] one-liner. *)

val check_recovery :
  ?fault:Dudetm_core.Config.fault ->
  ?budget:recovery_budget ->
  ?log:(string -> unit) ->
  ?leg:recovery_leg ->
  ?crash:int ->
  ?crash2:int ->
  ?crash3:int ->
  unit ->
  recovery_report
(** Run the campaign.  Passing [leg] (with optional [crash], [crash2],
    [crash3]) replays exactly one nested-crash case instead. *)

(** {1 Daemon fault-injection campaign}

    With {!Dudetm_core.Config.daemon_fault_rate} armed, Persist and
    Reproduce workers raise seeded transient faults mid-pipeline and the
    supervisor restarts them from their persistent positions with capped
    exponential backoff.  The sweep holds such runs to the ordinary crash
    oracle — quiescent runs must still drain completely and lose nothing,
    mid-run power cuts must still recover exactly — so injected failures
    may move only the restart/backoff counters, never the recovered
    state.  A sweep in which no daemon ever restarted is reported as
    vacuous (and fails). *)

type daemon_failure = {
  df_seed : int;
  df_crash : int option;
  df_rate : float;
  df_reason : string;
}

type daemon_report =
  | Daemon_pass of { runs : int; faults : int; restarts : int }
  | Daemon_fail of daemon_failure

val daemon_replay_line : daemon_failure -> string

val default_daemon_rate : float

val check_daemons :
  ?seeds:int ->
  ?rate:float ->
  ?log:(string -> unit) ->
  ?only_seed:int ->
  ?crash:int ->
  unit ->
  daemon_report
(** For each seed: a quiescent run and a mid-run power cut, both with
    faults injected at [rate].  [only_seed] (with optional [crash])
    replays a single case. *)

(** {1 Sharded cross-commit campaign}

    Cross-shard transactions must be all-or-nothing across {e independent}
    persistent devices: the campaign drives mixed cross-shard transfers and
    single-shard transactions over a small {!Dudetm_shard.Shard} instance,
    cuts power at every persist boundary of every shard's device (budget
    permitting), re-attaches, and checks that

    - no partial cross-shard transaction survives recovery — both sides of
      every transfer wrote the same pairwise stamp, so the sides must
      agree, and the balance sum over durably-seeded shards is preserved;
    - nothing acknowledged by the effective vector watermark before the
      cut is missing afterwards (per-shard durable IDs and the global
      cross-shard frontier).

    The campaign validates itself against the seeded
    {!Dudetm_core.Config.Skip_fragment_gate} mutant, whose Reproduce
    daemons replay cross-shard fragments without waiting for the sibling
    fragments to be durable. *)

type shard_failure = {
  shf_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  shf_nshards : int;
  shf_txs : int;  (** cross-shard transfers driven *)
  shf_crash : int option;
      (** failing persist boundary; [None]: the clean quiescent run *)
  shf_reason : string;
}

type shard_report =
  | Shard_pass of { runs : int; boundaries : int }
  | Shard_fail of shard_failure

val shard_replay_line : shard_failure -> string
(** The replayable [dudetm check --shards ...] one-liner. *)

val default_shard_count : int

val default_shard_txs : int

val check_shards :
  ?fault:Dudetm_core.Config.fault ->
  ?nshards:int ->
  ?txs:int ->
  ?log:(string -> unit) ->
  ?only_crash:int ->
  unit ->
  shard_report
(** Run the campaign: one clean run to quiescence counts the persist
    boundaries, then power cuts at each of them (all when the budget —
    scaled by [DUDETM_CHECK_BUDGET] / [DUDETM_CHECK_DEEP] — covers the
    count, an evenly-spread ascending sample otherwise).  [only_crash]
    replays exactly one boundary instead. *)

(** {1 Batch-boundary crash campaign}

    [dudetm check --batch] drives the {e pipelined combined} persist path
    — the combiner/flusher two-stage group commit — with small groups and
    a short deadline, and cuts power at every persist boundary of a short
    multi-threaded counter run.  Because the combiner seals batch [k+1]
    while the flusher's record for batch [k] is still in flight, the
    sweep necessarily lands cuts {e mid-pipeline}: after a seal but
    before the matching NVM append.  The oracle is the durable prefix:
    the recovered commit count covers everything the durable watermark
    ever acknowledged, recovery's reported durable ID matches the data
    image, and every slot holds the last write the recovered prefix made
    to it (last-write-per-key).

    The two-deep leg re-crashes a recovery: cut at boundary [k1], attach,
    keep committing on the recovered engine, cut again at boundary [k2]
    of the second life, attach again, re-verify.

    The campaign validates itself against the seeded
    {!Dudetm_core.Config.Skip_batch_seal} mutant, which publishes
    durability when a batch is sealed instead of when its record is
    appended and fenced. *)

type batch_failure = {
  bt_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  bt_txs : int;  (** transactions per thread, per life *)
  bt_crash : int option;
      (** failing persist boundary; [None]: the clean quiescent run *)
  bt_crash2 : int option;
      (** second cut (boundaries counted after the first recovery) *)
  bt_reason : string;
}

type batch_report =
  | Batch_pass of { runs : int; boundaries : int }
  | Batch_fail of batch_failure

val batch_replay_line : batch_failure -> string
(** The replayable [dudetm check --batch ...] one-liner. *)

val default_batch_txs : int

val check_batch :
  ?fault:Dudetm_core.Config.fault ->
  ?txs:int ->
  ?log:(string -> unit) ->
  ?only_crash:int ->
  ?only_crash2:int ->
  unit ->
  batch_report
(** Run the campaign: a clean pipelined run counts persist boundaries,
    then a single-cut sweep over them, then the two-deep re-crash sweep —
    all bounded by the [DUDETM_CHECK_BUDGET]-scaled site budget.
    [only_crash] (optionally with [only_crash2]) replays exactly one
    case instead. *)

(** {1 Replicated-durability failover campaign}

    [dudetm check --replica] drives a {!Dudetm_replica.Replica} cluster —
    one primary plus K replicas behind simulated links — through the
    counter workload, kills the primary (power cut at sampled persist
    boundaries of the primary's device, which lands cuts at ship, ack and
    mid-retransmit points because shipping hangs off the persist path),
    promotes a replica, and verifies:

    - {b no quorum-acked transaction lost}: the promoted durable ID covers
      the acked watermark at the cut, and the watermark never passed the
      quorum prefix;
    - {b durable-prefix state}: the promoted image is exactly the model
      state after the recovered commit count (the differential oracle);
    - {b quiescence}: a run that drained to [Quorum] and stopped cleanly
      promotes every committed transaction.

    Three link scenarios: [clean], [faulty] (seeded drop / duplicate /
    reorder / delay / corrupt), and [partition] (one replica partitioned
    mid-run, healed later — crash points cover both the partition window
    and catch-up-after-heal).  The campaign validates itself against the
    seeded {!Dudetm_core.Config.Skip_quorum_gate} mutant, which
    acknowledges at the primary-local seal while frames are still in
    flight. *)

type replica_scenario = Rclean | Rfaulty | Rpartition

val replica_scenario_to_string : replica_scenario -> string

val replica_scenario_of_string : string -> replica_scenario
(** ["clean" | "faulty" | "partition"]; raises [Invalid_argument]
    otherwise. *)

type replica_failure = {
  rf_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  rf_nreplicas : int;
  rf_txs : int;  (** transactions per thread *)
  rf_scenario : replica_scenario;
  rf_crash : int option;
      (** failing primary persist boundary; [None]: the quiescent run *)
  rf_reason : string;
}

type replica_report =
  | Replica_pass of { runs : int; boundaries : int }
  | Replica_fail of replica_failure

val replica_replay_line : replica_failure -> string
(** The replayable [dudetm check --replica ...] one-liner. *)

val default_replica_count : int

val default_replica_txs : int

val check_replica :
  ?fault:Dudetm_core.Config.fault ->
  ?nreplicas:int ->
  ?txs:int ->
  ?log:(string -> unit) ->
  ?scenario:replica_scenario ->
  ?only_crash:int ->
  unit ->
  replica_report
(** Run the campaign: per scenario, one quiescent run counts the primary's
    persist boundaries, then primary kills at an evenly-spread sample of
    them (the [DUDETM_CHECK_BUDGET]-scaled site budget, split across
    scenarios).  [scenario] restricts the sweep; [scenario] plus
    [only_crash] replays exactly one case. *)

(** {1 Live-migration (resharding) crash campaign}

    [dudetm check --migrate] drives a live 4->8 resharding — 8 engines, an
    8-bucket partition initially owned by shards 0-3, four migrations each
    handing an odd bucket to a fresh shard 4-7 — under application traffic
    that keeps landing increments inside and outside the moving range, and
    cuts power at persist boundaries counted across every device, so cuts
    fall inside the double-write window, between the flip's three handoff
    seals, and mid-cleanup.  After each cut the shards re-attach, the
    handoff journal votes roll-back or roll-forward, the schedule is
    completed, and the oracle verifies:

    - {b routing}: the persisted partition descriptor unseals (CRC + shard
      count) and routes every key to exactly one shard;
    - {b no acked write lost}: each key's value at its descriptor-routed
      owner covers everything the sampled vector watermark acknowledged,
      and never exceeds the commit count;
    - {b convergence}: the completed schedule reaches the final owner
      table with exact counts and every moved range's source slots
      recycled to zero (no unreachable heap extents).

    The two-deep leg re-arms the crash hooks before the first re-attach,
    so the second cut can land between recovery's own handoff seals; the
    third attach must still converge.  The campaign validates itself
    against the seeded {!Dudetm_core.Config.Skip_handoff_seal} mutant,
    which flips volatile routing without sealing the handoff record or
    the new descriptor. *)

type migrate_failure = {
  mg_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  mg_crash : int option;
      (** failing persist boundary; [None]: the quiescent run *)
  mg_crash2 : int option;
      (** second cut, counted from the first re-attach on *)
  mg_reason : string;
}

type migrate_report =
  | Migrate_pass of { runs : int; boundaries : int }
  | Migrate_fail of migrate_failure

val migrate_replay_line : migrate_failure -> string
(** The replayable [dudetm check --migrate ...] one-liner. *)

val check_migrate :
  ?fault:Dudetm_core.Config.fault ->
  ?log:(string -> unit) ->
  ?only_crash:int ->
  ?only_crash2:int ->
  unit ->
  migrate_report
(** Run the campaign: one clean resharding run counts the persist
    boundaries, then power cuts at an evenly-spread sample of them (the
    [DUDETM_CHECK_BUDGET]-scaled site budget), then the two-deep sweep.
    [only_crash] (optionally with [only_crash2]) replays exactly one
    case. *)

(** {1 Snapshot-read crash campaign}

    [dudetm check --snapshot] runs pair-writer transactions — every
    commit writes the {e same} value to both slots of one pair — against
    a concurrent read-only snapshot reader alternating volatile and
    durable-only mode on the pipelined group-commit engine, and cuts
    power at sampled persist boundaries while the durable reads run.
    Two oracles:

    - {b consistency}: every completed snapshot read-set satisfies
      [va = vb].  A reader whose epoch extension spans a writer's commit
      must either retry (validated extension) or see none of its writes;
      the {!Dudetm_core.Config.Skip_snapshot_validate} mutant slides the
      epoch forward without revalidating and returns one old and one new
      half of a pair — a torn read-set.
    - {b durable prefix}: a durable-mode read of value [v] proves [v]
      transactions on that pair were durable when the read completed, so
      recovery after the cut must find at least [v] on that pair — and
      never more than were committed. *)

type snapshot_failure = {
  sn_fault : Dudetm_core.Config.fault;  (** seeded engine mutant in force *)
  sn_txs : int;  (** transactions per writer thread *)
  sn_crash : int option;
      (** failing persist boundary; [None]: the clean quiescent run *)
  sn_reason : string;
}

type snapshot_report =
  | Snapshot_pass of { runs : int; boundaries : int; reads : int }
  | Snapshot_fail of snapshot_failure

val snapshot_replay_line : snapshot_failure -> string
(** The replayable [dudetm check --snapshot ...] one-liner. *)

val default_snapshot_txs : int

val check_snapshot :
  ?fault:Dudetm_core.Config.fault ->
  ?txs:int ->
  ?log:(string -> unit) ->
  ?only_crash:int ->
  unit ->
  snapshot_report
(** Run the campaign: a clean run (readers active throughout) counts the
    persist boundaries, then power cuts at an evenly-spread sample of
    them (the [DUDETM_CHECK_BUDGET]-scaled site budget).  [only_crash]
    replays exactly one case. *)

(** {1 Serving front-end crash campaign}

    [dudetm check --serve] drives the full serving front end
    ({!Dudetm_serve.Serve}: bounded request queue, hysteresis admission
    gate, deficit-round-robin dispatch, durable-watermark acker) with one
    closed-loop client session per key pair over a 2-shard engine, and
    cuts power mid-burst at sampled persist boundaries counted across
    both devices.  Every write of value [v] stamps both slots of its
    pair; values are dense increments; a client records [v] as {e acked}
    only once its reply arrives.  The acked-prefix oracle after
    re-attach:

    - {b no half-applied request}: both slots of every pair agree;
    - {b no acked request lost}: the recovered value covers the largest
      acked value — a reply is a durability promise.  The
      {!Dudetm_core.Config.Skip_admission_gate} mutant releases write
      replies at commit instead of the durable watermark, so a cut in
      the commit-to-persist window fails exactly this check;
    - {b no phantom}: the recovered value never exceeds the largest
      submitted value;
    - {b quiescent exactness}: with no cut, every pair recovers to
      exactly [txs]. *)

type serve_failure = {
  sv_fault : Dudetm_core.Config.fault;  (** seeded mutant in force *)
  sv_txs : int;  (** requests per client session *)
  sv_crash : int option;
      (** failing persist boundary; [None]: the clean quiescent run *)
  sv_reason : string;
}

type serve_report =
  | Serve_pass of { runs : int; boundaries : int; acked : int; shed : int }
  | Serve_fail of serve_failure

val serve_replay_line : serve_failure -> string
(** The replayable [dudetm check --serve ...] one-liner. *)

val default_serve_txs : int

val check_serve :
  ?fault:Dudetm_core.Config.fault ->
  ?txs:int ->
  ?log:(string -> unit) ->
  ?only_crash:int ->
  unit ->
  serve_report
(** Run the campaign: a clean run (shedding and gate transitions active —
    the campaign queue is deliberately small) counts the persist
    boundaries, then power cuts at an evenly-spread sample of them (the
    [DUDETM_CHECK_BUDGET]-scaled site budget).  [only_crash] replays
    exactly one boundary. *)

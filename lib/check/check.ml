module Nvm = Dudetm_nvm.Nvm
module Rng = Dudetm_sim.Rng
module Sched = Dudetm_sim.Sched
module Plog = Dudetm_log.Plog
module Config = Dudetm_core.Config
module Dudetm = Dudetm_core.Dudetm
module Scrub = Dudetm_scrub.Scrub
module Ptm = Dudetm_baselines.Ptm_intf
module Dude_ptm = Dudetm_baselines.Dude_ptm
module Mnemosyne = Dudetm_baselines.Mnemosyne
module Nvml = Dudetm_baselines.Nvml

exception Crash_now

(* ------------------------------------------------------------------ *)
(* Systems under test                                                 *)
(* ------------------------------------------------------------------ *)

type recovered = { rec_durable : int option; rec_peek : int -> int64 }

type instance = {
  ptm : Ptm.t;
  inst_nvm : Nvm.t;
  recover : unit -> recovered;
}

type sut = { sut_name : string; sut_static : bool; fresh : unit -> instance }

(* Small layouts keep a single checked run in the low milliseconds: the
   budgets below run hundreds of them. *)
let dude_cfg ~combine ~fault =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 3;
    vlog_capacity = 256;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    group_size = (if combine then 2 else 1);
    combine;
    compress = combine;
    persist_threads = 1;
    reproduce_batch = 4;
    (* checkpoint early and often: ring recycling is where Reproduce
       ordering bugs become observable *)
    checkpoint_records = 2;
    seed = 7;
    fault;
  }

let fault_suffix = function
  | Config.No_fault -> ""
  | Config.Early_durable_publish -> "+early-durable"
  | Config.Unfenced_reproduce -> "+unfenced-reproduce"
  | Config.Skip_crc_verify -> "+skip-crc-verify"
  | Config.Skip_recovery_journal -> "+skip-recovery-journal"
  | Config.Skip_fragment_gate -> "+skip-fragment-gate"
  | Config.Skip_batch_seal -> "+skip-batch-seal"
  | Config.Skip_quorum_gate -> "+skip-quorum-gate"
  | Config.Skip_handoff_seal -> "+skip-handoff-seal"
  | Config.Skip_snapshot_validate -> "+skip-snapshot-validate"
  | Config.Skip_admission_gate -> "+skip-admission-gate"

let dude_like name (ptm_of_cfg, attach_of_cfg) ?(fault = Config.No_fault) () =
  let cfg = dude_cfg ~combine:(name = "dude-combine") ~fault in
  let fresh () =
    let p, _t = ptm_of_cfg cfg in
    let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
    {
      ptm = p;
      inst_nvm = nvm;
      recover =
        (fun () ->
          let p2, _t2, report = attach_of_cfg cfg nvm in
          { rec_durable = Some report.Dudetm.durable; rec_peek = p2.Ptm.peek });
    }
  in
  { sut_name = name ^ fault_suffix fault; sut_static = false; fresh }

let stm_ctor = ((fun cfg -> Dude_ptm.Stm.ptm cfg), fun cfg nvm -> Dude_ptm.Stm.attach_ptm cfg nvm)

let htm_ctor =
  ((fun cfg -> Dude_ptm.Htm_based.ptm cfg), fun cfg nvm -> Dude_ptm.Htm_based.attach_ptm cfg nvm)

let dude ?fault () = dude_like "dude" stm_ctor ?fault ()

let dude_combine ?fault () = dude_like "dude-combine" stm_ctor ?fault ()

let dude_htm () = dude_like "dude-htm" htm_ctor ()

let mnemosyne () =
  let cfg =
    {
      Mnemosyne.default_config with
      Mnemosyne.heap_size = 1 lsl 16;
      nthreads = 3;
      log_size = 1 lsl 13;
      seed = 7;
    }
  in
  let fresh () =
    let m = Mnemosyne.create cfg in
    let p = Mnemosyne.ptm_of m in
    {
      ptm = p;
      inst_nvm = Mnemosyne.nvm m;
      recover =
        (fun () ->
          ignore (Mnemosyne.recover m);
          { rec_durable = None; rec_peek = p.Ptm.peek });
    }
  in
  { sut_name = "mnemosyne"; sut_static = false; fresh }

let nvml () =
  let cfg =
    {
      Nvml.default_config with
      Nvml.heap_size = 1 lsl 16;
      nthreads = 3;
      log_size = 1 lsl 13;
      seed = 7;
    }
  in
  let fresh () =
    let n = Nvml.create cfg in
    let p = Nvml.ptm_of n in
    {
      ptm = p;
      inst_nvm = Nvml.nvm n;
      recover =
        (fun () ->
          ignore (Nvml.recover n);
          { rec_durable = None; rec_peek = p.Ptm.peek });
    }
  in
  { sut_name = "nvml"; sut_static = true; fresh }

let sut_names = [ "dude"; "dude-combine"; "dude-htm"; "mnemosyne"; "nvml" ]

let sut_of_name ?fault name =
  match name with
  | "dude" -> dude ?fault ()
  | "dude-combine" -> dude_combine ?fault ()
  | "dude-htm" -> dude_htm ()
  | "mnemosyne" -> mnemosyne ()
  | "nvml" -> nvml ()
  | s -> invalid_arg ("Check.sut_of_name: unknown system " ^ s)

(* ------------------------------------------------------------------ *)
(* Workloads                                                          *)
(* ------------------------------------------------------------------ *)

type workload = {
  wl_name : string;
  threads : int;
  txs_per_thread : int;
  wl_static : bool;
  wl_wset : int list option;
  tx_body : Ptm.tx -> unit;
  wl_root : int;
  check_state : peek:(int -> int64) -> k:int -> string option;
}

(* Counter family: transaction number i (in serialization order) always
   writes the root counter to i, so the whole durable state is a function
   of the recovered counter alone — which transaction ran on which thread
   never matters. *)
let slot_addr j = 8 + (8 * j)

let slot_check ~slots ~stamp ~peek ~k =
  let expect = Array.make slots 0 in
  for i = 1 to k do
    List.iter (fun j -> expect.(j) <- i) (stamp i)
  done;
  let bad = ref None in
  for j = slots - 1 downto 0 do
    let got = Int64.to_int (peek (slot_addr j)) in
    if got <> expect.(j) then
      bad :=
        Some
          (Printf.sprintf "slot %d holds %d, model says %d after %d commits" j got expect.(j) k)
  done;
  !bad

let counter_family name ~slots ~stamp ~threads ~txs =
  {
    wl_name = name;
    threads;
    txs_per_thread = txs;
    wl_static = false;
    wl_wset = None;
    tx_body =
      (fun tx ->
        let c1 = 1 + Int64.to_int (tx.Ptm.read 0) in
        List.iter (fun j -> tx.Ptm.write (slot_addr j) (Int64.of_int c1)) (stamp c1);
        tx.Ptm.write 0 (Int64.of_int c1));
    wl_root = 0;
    check_state = (fun ~peek ~k -> slot_check ~slots ~stamp ~peek ~k);
  }

let counter ~threads ~txs =
  let slots = 8 in
  counter_family "counter" ~slots ~stamp:(fun i -> [ i mod slots ]) ~threads ~txs

let overlap ~threads ~txs =
  let slots = 5 in
  counter_family "overlap" ~slots
    ~stamp:(fun i -> [ i mod slots; (i + 1) mod slots ])
    ~threads ~txs

let counter1 ~threads ~txs =
  {
    wl_name = "counter1";
    threads;
    txs_per_thread = txs;
    wl_static = true;
    wl_wset = Some [ 0 ];
    tx_body =
      (fun tx ->
        let c1 = 1 + Int64.to_int (tx.Ptm.read 0) in
        tx.Ptm.write 0 (Int64.of_int c1));
    wl_root = 0;
    check_state = (fun ~peek:_ ~k:_ -> None);
  }

let workload_of_name ~threads ~txs = function
  | "counter" -> counter ~threads ~txs
  | "overlap" -> overlap ~threads ~txs
  | "counter1" -> counter1 ~threads ~txs
  | s -> invalid_arg ("Check.workload_of_name: unknown workload " ^ s)

let workloads_for sut ~threads ~txs =
  if sut.sut_static then [ counter1 ~threads ~txs ]
  else [ counter ~threads ~txs; overlap ~threads ~txs ]

(* ------------------------------------------------------------------ *)
(* Budgets                                                            *)
(* ------------------------------------------------------------------ *)

type budget = {
  crash_sites : int;
  sched_seeds : int;
  crash_sites_per_seed : int;
  exhaustive_runs : int;
  exhaustive_depth : int;
}

let base_budget =
  {
    crash_sites = 40;
    sched_seeds = 3;
    crash_sites_per_seed = 8;
    exhaustive_runs = 24;
    exhaustive_depth = 6;
  }

let deep_budget =
  {
    crash_sites = 400;
    sched_seeds = 12;
    crash_sites_per_seed = 40;
    exhaustive_runs = 300;
    exhaustive_depth = 10;
  }

let quick_budget = base_budget

let tier1_budget () =
  if Sys.getenv_opt "DUDETM_CHECK_DEEP" = Some "1" then deep_budget
  else
    match Option.bind (Sys.getenv_opt "DUDETM_CHECK_BUDGET") int_of_string_opt with
    | Some m when m > 1 ->
      {
        crash_sites = base_budget.crash_sites * m;
        sched_seeds = base_budget.sched_seeds;
        crash_sites_per_seed = base_budget.crash_sites_per_seed * m;
        exhaustive_runs = base_budget.exhaustive_runs * m;
        exhaustive_depth = base_budget.exhaustive_depth + 2;
      }
    | _ -> base_budget

(* ------------------------------------------------------------------ *)
(* One checked run                                                    *)
(* ------------------------------------------------------------------ *)

type sched_spec = Default | Seed of int | Prefix of int list

let sched_to_string = function
  | Default -> "default"
  | Seed n -> Printf.sprintf "seed:%d" n
  | Prefix l -> "prefix:" ^ String.concat "," (List.map string_of_int l)

let sched_of_string s =
  let bad () = invalid_arg ("Check.sched_of_string: " ^ s) in
  if s = "default" then Default
  else
    match String.index_opt s ':' with
    | None -> bad ()
    | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "seed" -> ( match int_of_string_opt rest with Some n -> Seed n | None -> bad ())
      | "prefix" ->
        if rest = "" then Prefix []
        else
          Prefix
            (List.map
               (fun c -> match int_of_string_opt c with Some n -> n | None -> bad ())
               (String.split_on_char ',' rest))
      | _ -> bad ())

let strategy_of = function
  | Default -> Sched.min_clock
  | Seed n -> Sched.random_priority ~seed:n
  | Prefix l ->
    let arr = Array.of_list l in
    Sched.Choice
      (fun ~step ~candidates:_ -> if step < Array.length arr then arr.(step) else 0)

type outcome = {
  oc_sites : int;
  oc_crashed : bool;
  oc_deadlock : string option;
  oc_committed : int;
  oc_acked : int;
  oc_last_tid : int;
  oc_monitor : string option;
  oc_survivors : int list;
  oc_recov : recovered;
}

(* Run the workload once under [strategy].  [crash = Some k] cuts power at
   the [k]-th persist boundary; [crash = None] runs to quiescence.  Either
   way the device then loses all volatile state and the system recovers.
   [evict = Some (fraction, seed)] leaks a seeded random subset of dirty
   cache lines into the persisted image at the power cut — the surviving
   lines are recorded in the outcome, so (fraction, seed) makes the
   eviction exactly replayable. *)
let run_once ?evict ~sut ~wl ~strategy ~crash () =
  let inst = sut.fresh () in
  let p = inst.ptm in
  let sites = ref 0 in
  let crashed = ref false in
  let acked = ref 0 in
  let monitor_err = ref None in
  let committed = ref 0 in
  let main () =
    (* Installed only now: device formatting during [fresh] happens before
       any transaction exists, so its persists are not crash candidates. *)
    Nvm.set_persist_hook inst.inst_nvm
      (Some
         (fun () ->
           incr sites;
           (* Sampling the durable ID at the boundary captures exactly what
              was acknowledged when the power goes out. *)
           let d = p.Ptm.durable_id () in
           if d > !acked then acked := d;
           match crash with Some k when !sites = k -> raise Crash_now | _ -> ()));
    p.Ptm.start ();
    let last_d = ref 0 in
    ignore
      (Sched.spawn ~daemon:true "check-monitor" (fun () ->
           try
             while true do
               let d = p.Ptm.durable_id () in
               let l = p.Ptm.last_tid () in
               if d < !last_d && !monitor_err = None then
                 monitor_err :=
                   Some (Printf.sprintf "durable id regressed from %d to %d" !last_d d);
               if d > l && !monitor_err = None then
                 monitor_err :=
                   Some (Printf.sprintf "durable id %d ahead of last issued tid %d" d l);
               if d > !last_d then last_d := d;
               if d > !acked then acked := d;
               Sched.advance 100
             done
           with Sched.Killed -> ()));
    let done_workers = ref 0 in
    for th = 0 to wl.threads - 1 do
      ignore
        (Sched.spawn (Printf.sprintf "check-worker-%d" th) (fun () ->
             for _ = 1 to wl.txs_per_thread do
               match p.Ptm.atomically ~thread:th ?wset:wl.wl_wset wl.tx_body with
               | Some ((), tid) -> if tid > 0 then incr committed
               | None -> ()
             done;
             incr done_workers))
    done;
    Sched.wait_until ~label:"check workers done" (fun () -> !done_workers = wl.threads);
    p.Ptm.drain ();
    p.Ptm.stop ()
  in
  let deadlock = ref None in
  (try ignore (Sched.run ~strategy main) with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> deadlock := Some ("deadlock: " ^ msg)
  | e -> deadlock := Some ("engine raised " ^ Printexc.to_string e));
  (* Nothing ran since the cut, so this still reads the pre-crash value. *)
  let d = p.Ptm.durable_id () in
  if d > !acked then acked := d;
  let last_tid = p.Ptm.last_tid () in
  Nvm.set_persist_hook inst.inst_nvm None;
  (match evict with
  | Some (fraction, seed) ->
    Nvm.crash ~evict_fraction:fraction ~rng:(Rng.create seed) inst.inst_nvm
  | None -> Nvm.crash inst.inst_nvm);
  let survivors = Nvm.last_crash_survivors inst.inst_nvm in
  let recov =
    try inst.recover ()
    with e ->
      deadlock := Some ("recovery raised " ^ Printexc.to_string e);
      { rec_durable = None; rec_peek = (fun _ -> 0L) }
  in
  {
    oc_sites = !sites;
    oc_crashed = !crashed;
    oc_deadlock = !deadlock;
    oc_committed = !committed;
    oc_acked = !acked;
    oc_last_tid = last_tid;
    oc_monitor = !monitor_err;
    oc_survivors = survivors;
    oc_recov = recov;
  }

let verify ~wl ~quiescent (o : outcome) =
  match o.oc_deadlock with
  | Some m -> Some m
  | None -> (
    match o.oc_monitor with
    | Some m -> Some m
    | None -> (
      let peek = o.oc_recov.rec_peek in
      let k = Int64.to_int (peek wl.wl_root) in
      if k < 0 then Some (Printf.sprintf "recovered counter is negative: %d" k)
        (* A transaction can be mid-acknowledgment per thread, so the
           recovered counter may exceed the last *observed* issued ID by at
           most the thread count. *)
      else if k > o.oc_last_tid + wl.threads then
        Some
          (Printf.sprintf "recovered counter %d beyond issued ids (last tid %d)" k
             o.oc_last_tid)
      else if k < o.oc_acked then
        Some
          (Printf.sprintf
             "durability lost: durable id %d was acknowledged, recovery found only %d"
             o.oc_acked k)
      else
        match o.oc_recov.rec_durable with
        | Some d when d <> k ->
          Some
            (Printf.sprintf "recovery reports durable id %d but the data image shows %d" d k)
        | _ ->
          if quiescent && k <> o.oc_committed then
            Some
              (Printf.sprintf "quiescent crash lost transactions: committed %d, recovered %d"
                 o.oc_committed k)
          else wl.check_state ~peek ~k))

let run_and_verify ?evict ~sut ~wl ~spec ~crash () =
  let o = run_once ?evict ~sut ~wl ~strategy:(strategy_of spec) ~crash () in
  (verify ~wl ~quiescent:(crash = None && evict = None) o, o)

let replay ?evict sut wl ~sched ~crash = fst (run_and_verify ?evict ~sut ~wl ~spec:sched ~crash ())

let count_sites sut wl ~sched =
  (run_once ~sut ~wl ~strategy:(strategy_of sched) ~crash:None ()).oc_sites

(* ------------------------------------------------------------------ *)
(* Exploration                                                        *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_system : string;
  f_workload : string;
  f_threads : int;
  f_txs : int;
  f_sched : sched_spec;
  f_crash : int option;
  f_evict : (float * int) option;
  f_survivors : int list;
  f_reason : string;
}

type report = Pass of { runs : int; sites : int } | Fail of failure

let replay_line f =
  (* "dude+early-durable" round-trips as --system dude --mutate early-durable *)
  let system, mutate =
    match String.index_opt f.f_system '+' with
    | None -> (f.f_system, "")
    | Some i ->
      ( String.sub f.f_system 0 i,
        " --mutate " ^ String.sub f.f_system (i + 1) (String.length f.f_system - i - 1) )
  in
  Printf.sprintf "dudetm check --system %s%s --workload %s --threads %d --txs %d --sched %s%s%s%s"
    system mutate f.f_workload f.f_threads f.f_txs (sched_to_string f.f_sched)
    (match f.f_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)
    (match f.f_evict with
    | None -> ""
    | Some (fr, seed) -> Printf.sprintf " --evict %g --evict-seed %d" fr seed)
    (match (f.f_evict, f.f_survivors) with
    | Some _, [] -> "  # no dirty lines survived the cut"
    | Some _, l ->
      "  # surviving lines: " ^ String.concat "," (List.map string_of_int l)
    | None, _ -> "")

(* Up to [n] boundaries out of [1..s], always covering both ends. *)
let sample_sites ~s ~n =
  if s <= 0 || n <= 0 then []
  else if s <= n then List.init s (fun i -> i + 1)
  else if n = 1 then [ 1 ]
  else
    List.sort_uniq compare (List.init n (fun i -> 1 + (i * (s - 1) / (n - 1))))

(* First failing case under one schedule: the quiescent run first (it also
   counts boundaries), then crash boundaries in ascending order. *)
let first_failing ?evict ~sut ~wl ~spec ~max_sites ~sample ~runs ~sites_total () =
  incr runs;
  let err0, o0 = run_and_verify ?evict ~sut ~wl ~spec ~crash:None () in
  sites_total := !sites_total + o0.oc_sites;
  match err0 with
  | Some r -> Some (None, r)
  | None ->
    let site_list =
      if sample then sample_sites ~s:o0.oc_sites ~n:max_sites
      else List.init (min o0.oc_sites max_sites) (fun i -> i + 1)
    in
    List.fold_left
      (fun found k ->
        match found with
        | Some _ -> found
        | None -> (
          incr runs;
          match replay ?evict sut wl ~sched:spec ~crash:(Some k) with
          | Some r -> Some (Some k, r)
          | None -> None))
      None site_list

let shrink ?evict ~sut ~wl ~spec ~crash ~reason ~runs ~sites_total () =
  let scan = 120 in
  let best = ref (wl, spec, crash, reason) in
  (* A default-schedule reproduction beats any seed. *)
  (if spec <> Default then
     match
       first_failing ?evict ~sut ~wl ~spec:Default ~max_sites:scan ~sample:false ~runs
         ~sites_total ()
     with
     | Some (c, r) -> best := (wl, Default, c, r)
     | None -> ());
  (* Fewest transactions per thread. *)
  let bwl, bspec, _, _ = !best in
  (try
     for txs = 1 to bwl.txs_per_thread - 1 do
       let wl' = { bwl with txs_per_thread = txs } in
       match
         first_failing ?evict ~sut ~wl:wl' ~spec:bspec ~max_sites:scan ~sample:false ~runs
           ~sites_total ()
       with
       | Some (c, r) ->
         best := (wl', bspec, c, r);
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  (* Earliest failing crash boundary (ascending scans above already are). *)
  let bwl, bspec, bcrash, _ = !best in
  (match bcrash with
  | Some k when k > 1 ->
    (try
       for k' = 1 to min (k - 1) scan do
         incr runs;
         match replay ?evict sut bwl ~sched:bspec ~crash:(Some k') with
         | Some r ->
           best := (bwl, bspec, Some k', r);
           raise Exit
         | None -> ()
       done
     with Exit -> ())
  | _ -> ());
  !best

let fail_of ~sut ?evict ?(survivors = []) (wl, spec, crash, reason) =
  {
    f_system = sut.sut_name;
    f_workload = wl.wl_name;
    f_threads = wl.threads;
    f_txs = wl.txs_per_thread;
    f_sched = spec;
    f_crash = crash;
    f_evict = evict;
    f_survivors = survivors;
    f_reason = reason;
  }

let take n l =
  let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
  go n l

(* Bounded exhaustive DFS over the first [exhaustive_depth] scheduling
   decision points.  Every explored schedule runs to quiescence and then
   loses power, so the oracle additionally proves no committed transaction
   is lost under any of these interleavings. *)
let explore ~sut ~wl ~budget ~runs ~sites_total =
  let stack = ref [ [] ] in
  let count = ref 0 in
  let result = ref None in
  while !stack <> [] && !count < budget.exhaustive_runs && !result = None do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr count;
      incr runs;
      let arr = Array.of_list prefix in
      let dlog = ref [] in
      let strategy =
        Sched.Choice
          (fun ~step ~candidates ->
            let c = if step < Array.length arr then arr.(step) else 0 in
            if step < budget.exhaustive_depth then dlog := (step, candidates, c) :: !dlog;
            c)
      in
      let o = run_once ~sut ~wl ~strategy ~crash:None () in
      sites_total := !sites_total + o.oc_sites;
      (match verify ~wl ~quiescent:true o with
      | Some r -> result := Some (wl, Prefix prefix, None, r)
      | None ->
        let taken = List.sort compare !dlog in
        let chosen = List.map (fun (_, _, c) -> c) taken in
        let plen = List.length prefix in
        List.iter
          (fun (step, candidates, _) ->
            if step >= plen then
              for c = candidates - 1 downto 1 do
                stack := (take step chosen @ [ c ]) :: !stack
              done)
          taken)
  done;
  !result

let check_system ?(budget = tier1_budget ()) ?(log = fun _ -> ()) ?evict sut wls =
  let runs = ref 0 in
  let sites_total = ref 0 in
  let failure = ref None in
  let note wl what = log (Printf.sprintf "%s/%s: %s" sut.sut_name wl.wl_name what) in
  List.iter
    (fun wl ->
      if !failure = None then begin
        note wl
          (Printf.sprintf "crash sweep, default schedule (up to %d boundaries)"
             budget.crash_sites);
        (match
           first_failing ?evict ~sut ~wl ~spec:Default ~max_sites:budget.crash_sites
             ~sample:true ~runs ~sites_total ()
         with
        | Some (c, r) -> failure := Some (wl, Default, c, r)
        | None ->
          (try
             for seed = 1 to budget.sched_seeds do
               note wl (Printf.sprintf "crash sweep, random schedule seed %d" seed);
               match
                 first_failing ?evict ~sut ~wl ~spec:(Seed seed)
                   ~max_sites:budget.crash_sites_per_seed ~sample:true ~runs ~sites_total ()
               with
               | Some (c, r) ->
                 failure := Some (wl, Seed seed, c, r);
                 raise Exit
               | None -> ()
             done
           with Exit -> ());
          if !failure = None && evict = None then begin
            note wl
              (Printf.sprintf "exhaustive schedule exploration (%d runs, depth %d)"
                 budget.exhaustive_runs budget.exhaustive_depth);
            match explore ~sut ~wl ~budget ~runs ~sites_total with
            | Some (wl', spec, c, r) -> failure := Some (wl', spec, c, r)
            | None -> ()
          end)
      end)
    wls;
  match !failure with
  | None -> Pass { runs = !runs; sites = !sites_total }
  | Some (wl, spec, crash, reason) ->
    note wl (Printf.sprintf "FAILED (%s); shrinking" reason);
    let bwl, bspec, bcrash, breason =
      shrink ?evict ~sut ~wl ~spec ~crash ~reason ~runs ~sites_total ()
    in
    (* Rerun the shrunk case once to record which dirty lines leaked: the
       failure one-liner then pins down the eviction exactly. *)
    let survivors =
      match evict with
      | None -> []
      | Some _ ->
        incr runs;
        (snd (run_and_verify ?evict ~sut ~wl:bwl ~spec:bspec ~crash:bcrash ())).oc_survivors
    in
    Fail (fail_of ~sut ?evict ~survivors (bwl, bspec, bcrash, breason))

(* ------------------------------------------------------------------ *)
(* Media-fault campaign                                               *)
(* ------------------------------------------------------------------ *)

type media_mode = Heap_rot | Mixed

let media_mode_to_string = function Heap_rot -> "heap" | Mixed -> "mixed"

let media_mode_of_string = function
  | "heap" -> Heap_rot
  | "mixed" -> Mixed
  | s -> invalid_arg ("Check.media_mode_of_string: unknown fault mix " ^ s)

type media_failure = {
  mf_mode : media_mode;
  mf_seed : int;
  mf_crash : int option;
  mf_fault : Config.fault;
  mf_faults : string;
  mf_reason : string;
}

type media_report = Media_pass of { runs : int; injected : int } | Media_fail of media_failure

let media_replay_line mf =
  Printf.sprintf "dudetm check --media%s --media-seed %d --faults %s%s  # injected: %s"
    (match mf.mf_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    mf.mf_seed (media_mode_to_string mf.mf_mode)
    (match mf.mf_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)
    mf.mf_faults

(* Live state of the [counter] workload lives in bytes [0, 72) of the heap
   (the root counter plus 8 slots), so a flip there always corrupts
   meaningful data — the campaign's detection oracle is deterministic, not
   probabilistic.  Distinct (offset, bit) pairs keep two flips from
   cancelling out. *)
let live_bytes = 72

let inject_heap_rot nvm rng ~chosen ~descrs =
  let rec pick () =
    let off = Rng.int rng live_bytes and bit = Rng.int rng 8 in
    if Hashtbl.mem chosen (off, bit) then pick ()
    else begin
      Hashtbl.add chosen (off, bit) ();
      (off, bit)
    end
  in
  let off, bit = pick () in
  Nvm.inject_fault nvm (Nvm.Bit_rot { off; bit });
  descrs := Printf.sprintf "rot(heap:%d.%d)" off bit :: !descrs

(* Flip a payload bit of the FIRST sealed record of a ring, never the last:
   damage to the last record is indistinguishable from a torn tail and is
   (correctly) discarded without being counted, which would defeat the
   "detected or reported" oracle.  With fewer than two records the ring is
   left alone and heap rot is injected instead.  [Plog.attach_scan] on a
   valid header only reads, so this pre-scan does not disturb the device. *)
let inject_ring_rot cfg nvm rng ~chosen ~descrs =
  let r = Rng.int rng (Config.plog_regions cfg) in
  let base = Config.plog_base cfg r in
  let t, scan = Plog.attach_scan nvm ~base ~size:cfg.Config.plog_size in
  match scan.Plog.records with
  | first :: _ :: _ ->
    let plen = Bytes.length first.Plog.payload in
    let start = first.Plog.end_off - Plog.record_overhead - plen in
    let j = Rng.int rng (max 1 plen) in
    let off =
      base + Plog.header_size + ((start + 16 + j) mod Plog.data_capacity t)
    in
    let bit = Rng.int rng 8 in
    Nvm.inject_fault nvm (Nvm.Bit_rot { off; bit });
    descrs := Printf.sprintf "rot(plog%d:rec%d+%d.%d)" r first.Plog.seq j bit :: !descrs
  | _ -> inject_heap_rot nvm rng ~chosen ~descrs

(* Inject 1-3 seeded faults into the persisted image at the crash point.
   Poison is injected last so the ring pre-scans above never trip over a
   line poisoned by an earlier draw. *)
let inject_faults cfg nvm ~mode ~seed ~descrs =
  let rng = Rng.create (0x6d656469 lxor seed) in
  let chosen = Hashtbl.create 8 in
  let n = 1 + Rng.int rng 3 in
  let poisons = ref [] in
  for _ = 1 to n do
    match mode with
    | Heap_rot -> inject_heap_rot nvm rng ~chosen ~descrs
    | Mixed -> (
      match Rng.int rng 4 with
      | 0 -> inject_heap_rot nvm rng ~chosen ~descrs
      | 1 -> inject_ring_rot cfg nvm rng ~chosen ~descrs
      | 2 ->
        let line = Rng.int rng (Nvm.size nvm / Nvm.line_size nvm) in
        poisons := line :: !poisons;
        descrs := Printf.sprintf "poison(line:%d)" line :: !descrs
      | _ ->
        let line = Rng.int rng (cfg.Config.heap_size / Nvm.line_size nvm) in
        Nvm.inject_fault nvm (Nvm.Stuck_line { line });
        descrs := Printf.sprintf "stuck(line:%d)" line :: !descrs)
  done;
  List.iter (fun line -> Nvm.inject_fault nvm (Nvm.Poison { line })) !poisons;
  n

(* One campaign run: run the workload (optionally cutting power mid-way),
   inject seeded media faults into what survived, scrub, then recover.  The
   oracle is "never silently wrong": the recovered state must either verify
   like any crash run, or the damage must have been *reported* — by the
   scrub (non-clean report) or by recovery itself (corrupted records /
   quarantined lines).  Undetected corruption that changes visible state is
   the only way to fail. *)
let media_case ~fault ~mode ~seed ~crash ~runs ~injected =
  let cfg = dude_cfg ~combine:false ~fault in
  let wl = counter ~threads:3 ~txs:4 in
  let descrs = ref [] in
  let reported = ref false in
  let fresh () =
    let p, _t = Dude_ptm.Stm.ptm cfg in
    let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
    {
      ptm = p;
      inst_nvm = nvm;
      recover =
        (fun () ->
          injected := !injected + inject_faults cfg nvm ~mode ~seed ~descrs;
          let sr = Scrub.scrub ~repair:true ~probe_stuck:true cfg nvm in
          if not (Scrub.clean sr) then reported := true;
          if sr.Scrub.ckpt = `Fatal then
            (* Both checkpoint slots destroyed: the instance is lost, but
               loudly — that counts as reported, never as silent. *)
            { rec_durable = Some 0; rec_peek = (fun _ -> 0L) }
          else begin
            let p2, _t2, report = Dude_ptm.Stm.attach_ptm cfg nvm in
            if report.Dudetm.corrupted_records > 0 || report.Dudetm.quarantined_lines > 0
            then reported := true;
            { rec_durable = Some report.Dudetm.durable; rec_peek = p2.Ptm.peek }
          end);
    }
  in
  let sut = { sut_name = "dude" ^ fault_suffix fault; sut_static = false; fresh } in
  incr runs;
  let o = run_once ~sut ~wl ~strategy:Sched.min_clock ~crash () in
  match verify ~wl ~quiescent:false o with
  | Some reason when not !reported ->
    Some
      {
        mf_mode = mode;
        mf_seed = seed;
        mf_crash = crash;
        mf_fault = fault;
        mf_faults = String.concat " " (List.rev !descrs);
        mf_reason = reason;
      }
  | _ -> None

let default_media_seeds = 6

let check_media ?(fault = Config.No_fault) ?(seeds = default_media_seeds) ?(log = fun _ -> ())
    ?mode ?media_seed ?crash () =
  let runs = ref 0 in
  let injected = ref 0 in
  match (mode, media_seed) with
  | Some mode, Some seed -> (
    (* Exact replay of one failure one-liner. *)
    match media_case ~fault ~mode ~seed ~crash ~runs ~injected with
    | Some mf -> Media_fail mf
    | None -> Media_pass { runs = !runs; injected = !injected })
  | _ ->
    (* Boundary count under the campaign schedule, measured once, gives a
       deterministic seed-derived crash point for the mid-run cases. *)
    let sut0 = dude ~fault () in
    let wl0 = counter ~threads:3 ~txs:4 in
    let sites = count_sites sut0 wl0 ~sched:Default in
    let result = ref None in
    let seed = ref 1 in
    while !result = None && !seed <= seeds do
      let s = !seed in
      log (Printf.sprintf "media: seed %d, heap rot at quiescence" s);
      result := media_case ~fault ~mode:Heap_rot ~seed:s ~crash:None ~runs ~injected;
      if !result = None then begin
        log (Printf.sprintf "media: seed %d, mixed faults at quiescence" s);
        result := media_case ~fault ~mode:Mixed ~seed:s ~crash:None ~runs ~injected
      end;
      if !result = None then begin
        let k = 1 + (s * 7919 mod max 1 sites) in
        log (Printf.sprintf "media: seed %d, mixed faults at crash boundary %d" s k);
        result := media_case ~fault ~mode:Mixed ~seed:s ~crash:(Some k) ~runs ~injected
      end;
      incr seed
    done;
    (match !result with
    | None -> Media_pass { runs = !runs; injected = !injected }
    | Some mf -> Media_fail mf)

(* ------------------------------------------------------------------ *)
(* Nested-crash recovery campaign                                     *)
(* ------------------------------------------------------------------ *)

type recovery_leg = Attach_leg | Scrub_leg

let leg_to_string = function Attach_leg -> "attach" | Scrub_leg -> "scrub"

let leg_of_string = function
  | "attach" -> Attach_leg
  | "scrub" -> Scrub_leg
  | s -> invalid_arg ("Check.leg_of_string: unknown recovery leg " ^ s)

type recovery_budget = {
  rec_seeds : int;
  rec_attach_sites : int;
  rec_scrub_sites : int;
  rec_deep_points : int;
  rec_deep_sites : int;
}

let quick_recovery_budget =
  { rec_seeds = 4; rec_attach_sites = 60; rec_scrub_sites = 32; rec_deep_points = 2; rec_deep_sites = 4 }

let smoke_recovery_budget =
  { rec_seeds = 1; rec_attach_sites = 16; rec_scrub_sites = 8; rec_deep_points = 1; rec_deep_sites = 2 }

type recovery_failure = {
  rcf_fault : Config.fault;
  rcf_crash : int option;
  rcf_leg : recovery_leg;
  rcf_crash2 : int option;
  rcf_crash3 : int option;
  rcf_reason : string;
}

type recovery_report =
  | Recovery_pass of { runs : int; boundaries : int }
  | Recovery_fail of recovery_failure

let recovery_replay_line rcf =
  Printf.sprintf "dudetm check --recovery%s%s --leg %s%s%s"
    (match rcf.rcf_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    (match rcf.rcf_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)
    (leg_to_string rcf.rcf_leg)
    (match rcf.rcf_crash2 with None -> "" | Some k -> Printf.sprintf " --crash2 %d" k)
    (match rcf.rcf_crash3 with None -> "" | Some k -> Printf.sprintf " --crash3 %d" k)

let recovery_workload () = counter ~threads:3 ~txs:4

(* Deterministically rebuild the crashed device image the recovery legs
   operate on: run the campaign workload under the default schedule, cut
   power at boundary [crash] (None: at quiescence), and hand the crashed
   device back *without* recovering it.  [attach] mutates the device, so
   every leg below starts from its own fresh image. *)
let crashed_image ~cfg ~wl ~crash =
  let nvm_ref = ref None in
  let fresh () =
    let p, _t = Dude_ptm.Stm.ptm cfg in
    let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
    nvm_ref := Some nvm;
    {
      ptm = p;
      inst_nvm = nvm;
      recover = (fun () -> { rec_durable = None; rec_peek = (fun _ -> 0L) });
    }
  in
  let sut = { sut_name = "dude-recovery"; sut_static = false; fresh } in
  let o = run_once ~sut ~wl ~strategy:Sched.min_clock ~crash () in
  (Option.get !nvm_ref, o)

(* Run one recovery step with the persist hook armed.  [crash = Some k]
   cuts power at the [k]-th persist boundary *inside the step* (the device
   then loses its volatile state, exactly like a mid-run power cut);
   [None] just counts boundaries.  Recovery runs outside [Sched.run], so
   only the NVM hook is involved. *)
let recovery_step nvm ~crash f =
  let sites = ref 0 in
  Nvm.set_persist_hook nvm
    (Some
       (fun () ->
         incr sites;
         match crash with Some k when !sites = k -> raise Crash_now | _ -> ()));
  match f () with
  | () ->
    Nvm.set_persist_hook nvm None;
    `Completed !sites
  | exception Crash_now ->
    Nvm.set_persist_hook nvm None;
    Nvm.crash nvm;
    `Cut
  | exception e ->
    Nvm.set_persist_hook nvm None;
    `Raised e

let run_leg cfg nvm = function
  | Attach_leg -> ignore (Dude_ptm.Stm.attach_ptm cfg nvm)
  | Scrub_leg -> ignore (Scrub.scrub ~repair:true ~probe_stuck:true cfg nvm)

let report_to_string (r : Dudetm.recovery_report) =
  Printf.sprintf
    "{durable=%d replayed=%d discarded_txs=%d discarded_records=%d corrupted=%d quarantined=%d}"
    r.Dudetm.durable r.Dudetm.replayed_txs r.Dudetm.discarded_txs r.Dudetm.discarded_records
    r.Dudetm.corrupted_records r.Dudetm.quarantined_lines

(* One nested-crash scenario on a fresh deterministic image: cut the
   workload at [crash], cut the named recovery leg at boundary [crash2],
   optionally cut the *recovery of that crashed recovery* at [crash3], and
   require the final uninterrupted attach to converge to [baseline] — the
   verdict an uninterrupted recovery of the same image produces — and to
   recover state that passes the normal crash oracle. *)
let recovery_case ~fault ~crash ~leg ~crash2 ~crash3 ~baseline ~runs =
  let cfg = dude_cfg ~combine:false ~fault in
  let wl = recovery_workload () in
  incr runs;
  let nvm, o = crashed_image ~cfg ~wl ~crash in
  let fail reason =
    Some
      {
        rcf_fault = fault;
        rcf_crash = crash;
        rcf_leg = leg;
        rcf_crash2 = crash2;
        rcf_crash3 = crash3;
        rcf_reason = reason;
      }
  in
  match o.oc_deadlock with
  | Some m -> fail m
  | None -> (
    let cuts =
      (match crash2 with None -> [] | Some k -> [ (leg, k) ])
      @ match crash3 with None -> [] | Some k -> [ (Attach_leg, k) ]
    in
    let cut_err =
      List.fold_left
        (fun err (l, k) ->
          match err with
          | Some _ -> err
          | None -> (
            match recovery_step nvm ~crash:(Some k) (fun () -> run_leg cfg nvm l) with
            | `Cut | `Completed _ -> None
            | `Raised e ->
              Some
                (Printf.sprintf "%s cut at boundary %d raised %s" (leg_to_string l) k
                   (Printexc.to_string e))))
        None cuts
    in
    match cut_err with
    | Some reason -> fail reason
    | None -> (
      match Dude_ptm.Stm.attach_ptm cfg nvm with
      | exception e -> fail ("final attach raised " ^ Printexc.to_string e)
      | p2, _t2, report ->
        if report <> baseline then
          fail
            (Printf.sprintf "recovery verdict diverged: interrupted %s, uninterrupted %s"
               (report_to_string report) (report_to_string baseline))
        else
          let o =
            {
              o with
              oc_recov = { rec_durable = Some report.Dudetm.durable; rec_peek = p2.Ptm.peek };
            }
          in
          (match verify ~wl ~quiescent:(crash = None) o with
          | Some reason -> fail reason
          | None -> None)))

(* Baseline verdict and per-leg boundary count for one crash point, each
   measured on its own fresh image. *)
let recovery_baseline ~fault ~crash ~runs =
  let cfg = dude_cfg ~combine:false ~fault in
  let wl = recovery_workload () in
  incr runs;
  let nvm, _ = crashed_image ~cfg ~wl ~crash in
  let baseline = ref None in
  match
    recovery_step nvm ~crash:None (fun () ->
        let _, _, report = Dude_ptm.Stm.attach_ptm cfg nvm in
        baseline := Some report)
  with
  | `Completed b -> Ok (Option.get !baseline, b)
  | `Cut -> assert false
  | `Raised e -> Error ("uninterrupted attach raised " ^ Printexc.to_string e)

let count_leg_boundaries ~fault ~crash ~leg ~pre ~runs =
  let cfg = dude_cfg ~combine:false ~fault in
  let wl = recovery_workload () in
  incr runs;
  let nvm, _ = crashed_image ~cfg ~wl ~crash in
  let pre_err =
    match pre with
    | None -> None
    | Some (l, k) -> (
      match recovery_step nvm ~crash:(Some k) (fun () -> run_leg cfg nvm l) with
      | `Cut | `Completed _ -> None
      | `Raised e -> Some (Printexc.to_string e))
  in
  match pre_err with
  | Some e -> Error e
  | None -> (
    match recovery_step nvm ~crash:None (fun () -> run_leg cfg nvm leg) with
    | `Completed b -> Ok b
    | `Cut -> assert false
    | `Raised e -> Error (leg_to_string leg ^ " raised " ^ Printexc.to_string e))

(* The scrub leg has far more boundaries than the attach leg (the
   stuck-line probe sweep touches every heap line), so it is sampled; the
   first boundaries are always included because they cover the probes of
   the workload's live lines — the exact window the
   [Skip_recovery_journal] mutant corrupts. *)
let scrub_sites ~s ~n = List.sort_uniq compare (sample_sites ~s ~n @ sample_sites ~s:(min s 8) ~n:8)

let check_recovery ?(fault = Config.No_fault) ?(budget = quick_recovery_budget)
    ?(log = fun _ -> ()) ?leg ?crash ?crash2 ?crash3 () =
  let runs = ref 0 in
  let boundaries = ref 0 in
  match leg with
  | Some leg -> (
    (* Exact replay of one failure one-liner. *)
    match recovery_baseline ~fault ~crash ~runs with
    | Error reason ->
      Recovery_fail
        { rcf_fault = fault; rcf_crash = crash; rcf_leg = leg; rcf_crash2 = crash2;
          rcf_crash3 = crash3; rcf_reason = reason }
    | Ok (baseline, _) -> (
      match recovery_case ~fault ~crash ~leg ~crash2 ~crash3 ~baseline ~runs with
      | Some rcf -> Recovery_fail rcf
      | None -> Recovery_pass { runs = !runs; boundaries = !boundaries }))
  | None ->
    let sut0 = dude ~fault () in
    let wl0 = recovery_workload () in
    let sites = count_sites sut0 wl0 ~sched:Default in
    runs := !runs + 1;
    let crash_points =
      None :: List.init budget.rec_seeds (fun i -> Some (1 + ((i + 1) * 7919 mod max 1 sites)))
    in
    let result = ref None in
    let fail_with ~crash ~leg ~crash2 ~crash3 reason =
      result :=
        Some
          { rcf_fault = fault; rcf_crash = crash; rcf_leg = leg; rcf_crash2 = crash2;
            rcf_crash3 = crash3; rcf_reason = reason }
    in
    let point_name = function None -> "quiescence" | Some k -> Printf.sprintf "boundary %d" k in
    List.iter
      (fun crash ->
        if !result = None then
          match recovery_baseline ~fault ~crash ~runs with
          | Error reason -> fail_with ~crash ~leg:Attach_leg ~crash2:None ~crash3:None reason
          | Ok (baseline, attach_b) ->
            List.iter
              (fun leg ->
                if !result = None then begin
                  let b =
                    if leg = Attach_leg then Ok attach_b
                    else count_leg_boundaries ~fault ~crash ~leg ~pre:None ~runs
                  in
                  match b with
                  | Error reason -> fail_with ~crash ~leg ~crash2:None ~crash3:None reason
                  | Ok b ->
                    boundaries := !boundaries + b;
                    let k2s =
                      match leg with
                      | Attach_leg -> sample_sites ~s:b ~n:budget.rec_attach_sites
                      | Scrub_leg -> scrub_sites ~s:b ~n:budget.rec_scrub_sites
                    in
                    log
                      (Printf.sprintf "recovery: power cut at %s, %s leg: %d of %d boundaries"
                         (point_name crash) (leg_to_string leg) (List.length k2s) b);
                    List.iter
                      (fun k2 ->
                        if !result = None then
                          match
                            recovery_case ~fault ~crash ~leg ~crash2:(Some k2) ~crash3:None
                              ~baseline ~runs
                          with
                          | Some rcf -> result := Some rcf
                          | None -> ())
                      k2s;
                    (* Two deep: crash the recovery of a crashed recovery. *)
                    if !result = None then
                      List.iter
                        (fun k2 ->
                          if !result = None then
                            match
                              count_leg_boundaries ~fault ~crash ~leg:Attach_leg
                                ~pre:(Some (leg, k2)) ~runs
                            with
                            | Error reason ->
                              fail_with ~crash ~leg ~crash2:(Some k2) ~crash3:None reason
                            | Ok b2 ->
                              List.iter
                                (fun k3 ->
                                  if !result = None then
                                    match
                                      recovery_case ~fault ~crash ~leg ~crash2:(Some k2)
                                        ~crash3:(Some k3) ~baseline ~runs
                                    with
                                    | Some rcf -> result := Some rcf
                                    | None -> ())
                                (sample_sites ~s:b2 ~n:budget.rec_deep_sites))
                        (sample_sites ~s:(List.length k2s) ~n:budget.rec_deep_points
                        |> List.map (fun i -> List.nth k2s (i - 1)))
                end)
              [ Attach_leg; Scrub_leg ])
      crash_points;
    (match !result with
    | None -> Recovery_pass { runs = !runs; boundaries = !boundaries }
    | Some rcf -> Recovery_fail rcf)

(* ------------------------------------------------------------------ *)
(* Daemon fault-injection campaign                                    *)
(* ------------------------------------------------------------------ *)

type daemon_failure = { df_seed : int; df_crash : int option; df_rate : float; df_reason : string }

type daemon_report =
  | Daemon_pass of { runs : int; faults : int; restarts : int }
  | Daemon_fail of daemon_failure

let daemon_replay_line df =
  Printf.sprintf "dudetm check --daemons --daemon-seed %d --fault-rate %g%s" df.df_seed df.df_rate
    (match df.df_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)

let default_daemon_rate = 0.25

(* Transient Persist/Reproduce worker failures must be invisible: with the
   supervisor restarting crashed daemons from their persistent positions,
   every run must still satisfy the ordinary crash oracle (and a quiescent
   run must still drain completely) — only the restart counters may move.
   The sweep is vacuous if no daemon ever restarted, so that fails too. *)
let check_daemons ?(seeds = 4) ?(rate = default_daemon_rate) ?(log = fun _ -> ()) ?only_seed
    ?crash () =
  let runs = ref 0 in
  let faults = ref 0 in
  let restarts = ref 0 in
  let result = ref None in
  let one ~seed ~crash =
    let cfg =
      {
        (dude_cfg ~combine:false ~fault:Config.No_fault) with
        Config.daemon_fault_rate = rate;
        seed = 7 + seed;
      }
    in
    let counters = ref [] in
    let fresh () =
      let p, _t = Dude_ptm.Stm.ptm cfg in
      let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
      {
        ptm = p;
        inst_nvm = nvm;
        recover =
          (fun () ->
            counters := p.Ptm.counters ();
            let p2, _t2, report = Dude_ptm.Stm.attach_ptm cfg nvm in
            { rec_durable = Some report.Dudetm.durable; rec_peek = p2.Ptm.peek });
      }
    in
    let sut = { sut_name = "dude+daemon-faults"; sut_static = false; fresh } in
    let wl = recovery_workload () in
    incr runs;
    let o = run_once ~sut ~wl ~strategy:Sched.min_clock ~crash () in
    let count k = match List.assoc_opt k !counters with Some v -> v | None -> 0 in
    faults := !faults + count "daemon_faults";
    restarts := !restarts + count "daemon_restarts";
    (match verify ~wl ~quiescent:(crash = None) o with
    | Some reason ->
      result := Some { df_seed = seed; df_crash = crash; df_rate = rate; df_reason = reason }
    | None -> ());
    o.oc_sites
  in
  (match only_seed with
  | Some seed -> ignore (one ~seed ~crash)
  | None ->
    let s = ref 1 in
    while !result = None && !s <= seeds do
      log (Printf.sprintf "daemons: seed %d, faults at rate %g, run to quiescence" !s rate);
      let sites = one ~seed:!s ~crash:None in
      if !result = None then begin
        let k = 1 + (!s * 7919 mod max 1 sites) in
        log (Printf.sprintf "daemons: seed %d, power cut at boundary %d" !s k);
        ignore (one ~seed:!s ~crash:(Some k))
      end;
      incr s
    done;
    if !result = None && !restarts = 0 then
      result :=
        Some
          {
            df_seed = 0;
            df_crash = None;
            df_rate = rate;
            df_reason = "vacuous sweep: no daemon restart was ever exercised";
          });
  match !result with
  | None -> Daemon_pass { runs = !runs; faults = !faults; restarts = !restarts }
  | Some df -> Daemon_fail df

(* ------------------------------------------------------------------ *)
(* Sharded cross-commit campaign                                      *)
(* ------------------------------------------------------------------ *)

module Shard = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

type shard_failure = {
  shf_fault : Config.fault;
  shf_nshards : int;
  shf_txs : int;
  shf_crash : int option;
  shf_reason : string;
}

type shard_report = Shard_pass of { runs : int; boundaries : int } | Shard_fail of shard_failure

let shard_replay_line shf =
  Printf.sprintf "dudetm check --shards%s --shard-count %d --txs %d%s"
    (match shf.shf_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    shf.shf_nshards shf.shf_txs
    (match shf.shf_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)

let default_shard_count = 3

let default_shard_txs = 10

let shard_sites_budget () =
  let base = 60 in
  if Sys.getenv_opt "DUDETM_CHECK_DEEP" = Some "1" then base * 10
  else
    match Option.bind (Sys.getenv_opt "DUDETM_CHECK_BUDGET") int_of_string_opt with
    | Some m when m > 1 -> base * m
    | _ -> base

(* Word layout inside every shard's root block (mirrors test_shard.ml):
   0       balance — cross-shard transfers preserve the global sum
   8       single-shard local counter
   16+8*p  pairwise stamp: both sides of a transfer write the same stamp *)
let shb_balance = 0

let shb_local = 8

let shb_pair p = 16 + (8 * p)

let shb_initial = 1_000L

(* The all-or-nothing + watermark oracle over a drained or recovered
   instance.  Both sides of every transfer wrote the same pairwise stamp,
   so the sides must agree; every transfer preserved the sum over shards
   whose seeding transaction (tid 1) is durable; and nothing the effective
   watermark acknowledged before the cut may be missing afterwards. *)
let shard_oracle ~nshards ~acked_frontier ~acked_eff sh =
  let peek s off = Shard.Engine.heap_read_u64 (Shard.engine sh s) off in
  let bad = ref None in
  for a = 0 to nshards - 1 do
    for b = a + 1 to nshards - 1 do
      let sa = peek a (shb_pair b) and sb = peek b (shb_pair a) in
      if sa <> sb && !bad = None then
        bad :=
          Some
            (Printf.sprintf "partial cross-shard tx: pair stamp %d<->%d is %Ld vs %Ld" a b sa
               sb)
    done
  done;
  let sum = ref 0L and seeded = ref 0 in
  for s = 0 to nshards - 1 do
    sum := Int64.add !sum (peek s shb_balance);
    if Shard.Engine.durable_id (Shard.engine sh s) >= 1 then incr seeded
  done;
  let want = Int64.mul shb_initial (Int64.of_int !seeded) in
  if !sum <> want && !bad = None then
    bad :=
      Some
        (Printf.sprintf "balance sum %Ld, model says %Ld for %d durable seeds" !sum want
           !seeded);
  if Shard.global_frontier sh < acked_frontier && !bad = None then
    bad :=
      Some
        (Printf.sprintf "acked cross tx lost: recovered frontier %d < acknowledged %d"
           (Shard.global_frontier sh) acked_frontier);
  for s = 0 to nshards - 1 do
    let d = Shard.Engine.durable_id (Shard.engine sh s) in
    if d < acked_eff.(s) && !bad = None then
      bad :=
        Some
          (Printf.sprintf "acked tx lost on shard %d: durable %d < acknowledged %d" s d
             acked_eff.(s))
  done;
  !bad

(* One run: sequential mixed transfers + local bumps, power cut at persist
   boundary [crash] counted across every shard's device ([None]: clean
   stop).  The vector watermark is sampled at each boundary — exactly what
   had been acknowledged when the power went out.  Returns the oracle
   verdict and the boundary count. *)
let shard_run ~fault ~nshards ~txs ~crash =
  let cfg = dude_cfg ~combine:false ~fault in
  let sh = Shard.create ~nshards cfg in
  let sites = ref 0 in
  let acked_frontier = ref 0 in
  let acked_eff = Array.make nshards 0 in
  let hook () =
    incr sites;
    let f = Shard.global_frontier sh in
    if f > !acked_frontier then acked_frontier := f;
    Array.iteri (fun s e -> if e > acked_eff.(s) then acked_eff.(s) <- e)
      (Shard.effective_vector sh);
    match crash with Some k when !sites = k -> raise Crash_now | _ -> ()
  in
  let disarm () =
    for s = 0 to nshards - 1 do
      Nvm.set_persist_hook (Shard.nvm sh s) None
    done
  in
  let crashed = ref false in
  let err = ref None in
  (try
     ignore
       (Sched.run (fun () ->
            Shard.start sh;
            for s = 0 to nshards - 1 do
              ignore
                (Shard.atomically sh ~thread:0 ~shards:[ s ] (fun tx ->
                     Shard.write tx ~shard:s shb_balance shb_initial))
            done;
            for s = 0 to nshards - 1 do
              Nvm.set_persist_hook (Shard.nvm sh s) (Some hook)
            done;
            for k = 1 to txs do
              let a = k mod nshards and b = (k + 1) mod nshards in
              (* Bloat [b]'s next flush record first.  Persist drains a
                 thread's whole backlog into one record and publishes its
                 durable IDs at a single fence, so queue depth alone creates
                 no skew — record size does: [b]'s fence lands well after
                 [a]'s tiny fragment record is durable (and applicable),
                 opening the window the replay gate must cover. *)
              ignore
                (Shard.atomically sh ~thread:(k mod 3) ~shards:[ b ] (fun tx ->
                     for i = 0 to 63 do
                       Shard.write tx ~shard:b (1024 + (8 * i)) (Int64.of_int (k + i))
                     done;
                     Shard.write tx ~shard:b shb_local
                       (Int64.add (Shard.read tx ~shard:b shb_local) 1L)));
              ignore
                (Shard.atomically sh ~thread:(k mod 3) ~shards:[ a; b ] (fun tx ->
                     let ba = Shard.read tx ~shard:a shb_balance in
                     let bb = Shard.read tx ~shard:b shb_balance in
                     Shard.write tx ~shard:a shb_balance (Int64.sub ba 5L);
                     Shard.write tx ~shard:b shb_balance (Int64.add bb 5L);
                     Shard.write tx ~shard:a (shb_pair b) (Int64.of_int k);
                     Shard.write tx ~shard:b (shb_pair a) (Int64.of_int k)))
            done;
            disarm ();
            Shard.stop sh))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> err := Some ("deadlock: " ^ msg)
  | e -> err := Some ("engine raised " ^ Printexc.to_string e));
  disarm ();
  let verdict =
    match !err with
    | Some _ -> !err
    | None ->
      if not !crashed then shard_oracle ~nshards ~acked_frontier:!acked_frontier ~acked_eff sh
      else begin
        for s = 0 to nshards - 1 do
          Nvm.crash (Shard.nvm sh s)
        done;
        match Shard.attach ~nshards (Shard.config sh) (Array.init nshards (Shard.nvm sh)) with
        | sh2, _report ->
          shard_oracle ~nshards ~acked_frontier:!acked_frontier ~acked_eff sh2
        | exception e -> Some ("recovery raised " ^ Printexc.to_string e)
      end
  in
  (verdict, !sites)

let check_shards ?(fault = Config.No_fault) ?(nshards = default_shard_count)
    ?(txs = default_shard_txs) ?(log = fun _ -> ()) ?only_crash () =
  if nshards < 2 then invalid_arg "Check.check_shards: need at least two shards";
  let fail ~crash reason =
    Shard_fail
      { shf_fault = fault; shf_nshards = nshards; shf_txs = txs; shf_crash = crash;
        shf_reason = reason }
  in
  match only_crash with
  | Some k -> (
    match shard_run ~fault ~nshards ~txs ~crash:(Some k) with
    | Some reason, _ -> fail ~crash:(Some k) reason
    | None, sites -> Shard_pass { runs = 1; boundaries = sites })
  | None -> (
    log (Printf.sprintf "shards: %d shards, %d cross txs, clean run" nshards txs);
    match shard_run ~fault ~nshards ~txs ~crash:None with
    | Some reason, _ -> fail ~crash:None reason
    | None, total ->
      let budget = shard_sites_budget () in
      (* Enumerate every boundary when the budget covers them; otherwise an
         evenly-spread sample (ascending, so the first hit is the earliest
         failing boundary in the sampled set). *)
      let picks =
        if total <= budget then List.init total (fun i -> i + 1)
        else List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
      in
      log
        (Printf.sprintf "shards: %d persist boundaries, cutting power at %d of them" total
           (List.length picks));
      let runs = ref 1 in
      let result = ref None in
      List.iter
        (fun k ->
          if !result = None then begin
            incr runs;
            match shard_run ~fault ~nshards ~txs ~crash:(Some k) with
            | Some reason, _ -> result := Some (fail ~crash:(Some k) reason)
            | None, _ -> ()
          end)
        picks;
      match !result with
      | Some f -> f
      | None -> Shard_pass { runs = !runs; boundaries = total })

(* ------------------------------------------------------------------ *)
(* Batch-boundary crash campaign (pipelined group commit)             *)
(* ------------------------------------------------------------------ *)

(* The batch campaign drives the *combined* persist path — the combiner /
   flusher pipeline — with small groups and a short deadline, so a run of
   a few dozen transactions crosses many sealed-batch boundaries, and cuts
   power at every persist boundary the devices see.  Because the combiner
   seals batch [k+1] while the flusher's record for batch [k] is still in
   flight, the sweep necessarily lands cuts mid-pipeline: after a seal but
   before the matching NVM append.  The [Skip_batch_seal] mutant publishes
   durability at seal time, so exactly those cuts expose it.

   The two-deep leg re-crashes a recovery: cut at boundary [k1], attach,
   keep committing on the recovered engine, cut again at boundary [k2] of
   the second life, attach again.  A recovery that mends the torn batch by
   writing state it never re-fences would survive the first cut and lose
   data at the second. *)

type batch_failure = {
  bt_fault : Config.fault;
  bt_txs : int;
  bt_crash : int option;  (* first power cut (persist boundary) *)
  bt_crash2 : int option;  (* second cut, counted after recovery *)
  bt_reason : string;
}

type batch_report =
  | Batch_pass of { runs : int; boundaries : int }
  | Batch_fail of batch_failure

let batch_replay_line bt =
  Printf.sprintf "dudetm check --batch%s --txs %d%s%s"
    (match bt.bt_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    bt.bt_txs
    (match bt.bt_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)
    (match bt.bt_crash2 with None -> "" | Some k -> Printf.sprintf " --crash2 %d" k)

let default_batch_txs = 12

let batch_sites_budget = shard_sites_budget

(* Small groups, a short deadline and a tiny adaptive bound: every few
   transactions seal a batch, so deadline-, size- and drain-triggered
   batches all occur within one short run. *)
let batch_cfg ~fault =
  {
    (dude_cfg ~combine:true ~fault) with
    Config.group_size = 4;
    batch_min_entries = 2;
    batch_max_entries = 16;
    batch_deadline = 512;
  }

(* One life of the engine: run [txs] transactions per thread of the
   [counter] workload on [p], cutting power at the [crash]-th persist
   boundary.  Samples the durable watermark at every boundary (exactly
   what was acknowledged when the power went out) and checks it never
   regresses.  Returns (verdict-so-far, sites, acked, crashed). *)
let batch_leg ~(wl : workload) ~txs ~crash (p : Ptm.t) nvm =
  let sites = ref 0 in
  let acked = ref 0 in
  let last_d = ref 0 in
  let err = ref None in
  Nvm.set_persist_hook nvm
    (Some
       (fun () ->
         incr sites;
         let d = p.Ptm.durable_id () in
         if d < !last_d && !err = None then
           err := Some (Printf.sprintf "durable id regressed from %d to %d" !last_d d);
         if d > !last_d then last_d := d;
         if d > !acked then acked := d;
         match crash with Some k when !sites = k -> raise Crash_now | _ -> ()));
  let crashed = ref false in
  let committed = ref 0 in
  (try
     ignore
       (Sched.run (fun () ->
            p.Ptm.start ();
            let done_workers = ref 0 in
            for th = 0 to wl.threads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "batch-worker-%d" th) (fun () ->
                     for _ = 1 to txs do
                       match p.Ptm.atomically ~thread:th wl.tx_body with
                       | Some ((), tid) -> if tid > 0 then incr committed
                       | None -> ()
                     done;
                     incr done_workers))
            done;
            Sched.wait_until ~label:"batch workers done" (fun () ->
                !done_workers = wl.threads);
            p.Ptm.drain ();
            p.Ptm.stop ()))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> err := Some ("deadlock: " ^ msg)
  | e -> err := Some ("engine raised " ^ Printexc.to_string e));
  let d = p.Ptm.durable_id () in
  if d > !acked then acked := d;
  Nvm.set_persist_hook nvm None;
  (!err, !sites, !acked, !crashed, !committed)

(* Durable-prefix oracle after an attach: the recovered counter is a
   commit count [k]; nothing acknowledged may be missing, recovery's own
   durable report must match the data image, and every slot must hold the
   last write the first [k] transactions made to it ([slot_check]). *)
let batch_oracle ~(wl : workload) ~acked ~quiescent ~committed ~durable
    ~(peek : int -> int64) =
  let k = Int64.to_int (peek wl.wl_root) in
  if k < 0 then Some (Printf.sprintf "recovered counter is negative: %d" k)
  else if k < acked then
    Some
      (Printf.sprintf
         "durability lost: durable id %d was acknowledged, recovery found only %d" acked k)
  else
    match durable with
    | Some d when d <> k ->
      Some
        (Printf.sprintf "recovery reports durable id %d but the data image shows %d" d k)
    | _ ->
      if quiescent && k <> committed then
        Some
          (Printf.sprintf "quiescent stop lost transactions: committed %d, recovered %d"
             committed k)
      else wl.check_state ~peek ~k

(* One full batch-campaign run: first life, attach, optional second life,
   attach again.  [crash = None] is the clean-engine control (runs to
   quiescence, then loses power).  Returns (verdict, boundaries of the
   first life, boundaries of the second life). *)
let batch_run ~fault ~txs ~crash ~crash2 =
  let cfg = batch_cfg ~fault in
  let wl = counter ~threads:cfg.Config.nthreads ~txs in
  let p, _t = Dude_ptm.Stm.ptm cfg in
  let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
  let err1, sites1, acked1, crashed1, committed1 = batch_leg ~wl ~txs ~crash p nvm in
  match err1 with
  | Some reason -> (Some reason, sites1, 0)
  | None -> (
    Nvm.crash nvm;
    match Dude_ptm.Stm.attach_ptm cfg nvm with
    | exception e -> (Some ("recovery raised " ^ Printexc.to_string e), sites1, 0)
    | p2, _t2, report -> (
      let verdict1 =
        batch_oracle ~wl ~acked:acked1 ~quiescent:(not crashed1) ~committed:committed1
          ~durable:(Some report.Dudetm.durable) ~peek:p2.Ptm.peek
      in
      match verdict1 with
      | Some reason -> (Some reason, sites1, 0)
      | None ->
        if not crashed1 then (None, sites1, 0)
        else begin
          (* Second life: the recovered engine must itself survive a cut. *)
          let err2, sites2, acked2, crashed2, committed2 =
            batch_leg ~wl ~txs ~crash:crash2 p2 nvm
          in
          match err2 with
          | Some reason -> (Some reason, sites1, sites2)
          | None -> (
            Nvm.crash nvm;
            match Dude_ptm.Stm.attach_ptm cfg nvm with
            | exception e -> (Some ("re-recovery raised " ^ Printexc.to_string e), sites1, sites2)
            | p3, _t3, report2 ->
              ( batch_oracle ~wl ~acked:acked2 ~quiescent:(not crashed2)
                  ~committed:(report.Dudetm.durable + committed2)
                  ~durable:(Some report2.Dudetm.durable) ~peek:p3.Ptm.peek,
                sites1,
                sites2 ))
        end))

let check_batch ?(fault = Config.No_fault) ?(txs = default_batch_txs)
    ?(log = fun _ -> ()) ?only_crash ?only_crash2 () =
  let fail ~crash ~crash2 reason =
    Batch_fail
      { bt_fault = fault; bt_txs = txs; bt_crash = crash; bt_crash2 = crash2;
        bt_reason = reason }
  in
  match only_crash with
  | Some k -> (
    match batch_run ~fault ~txs ~crash:(Some k) ~crash2:only_crash2 with
    | Some reason, _, _ -> fail ~crash:(Some k) ~crash2:only_crash2 reason
    | None, s1, s2 -> Batch_pass { runs = 1; boundaries = s1 + s2 })
  | None -> (
    log (Printf.sprintf "batch: pipelined combine, %d txs x %d threads, clean run" txs
           (batch_cfg ~fault).Config.nthreads);
    match batch_run ~fault ~txs ~crash:None ~crash2:None with
    | Some reason, _, _ -> fail ~crash:None ~crash2:None reason
    | None, total, _ ->
      let budget = batch_sites_budget () in
      let runs = ref 1 in
      let result = ref None in
      (* Single-cut sweep: every boundary when the budget covers them,
         otherwise an evenly-spread ascending sample. *)
      let picks =
        if total <= budget then List.init total (fun i -> i + 1)
        else List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
      in
      log
        (Printf.sprintf "batch: %d persist boundaries, cutting power at %d of them" total
           (List.length picks));
      List.iter
        (fun k ->
          if !result = None then begin
            incr runs;
            match batch_run ~fault ~txs ~crash:(Some k) ~crash2:None with
            | Some reason, _, _ -> result := Some (fail ~crash:(Some k) ~crash2:None reason)
            | None, _, _ -> ()
          end)
        picks;
      (* Two-deep sweep: re-crash the recovered engine.  A handful of
         first cuts, each probed at a spread of second-life boundaries. *)
      if !result = None then begin
        let n1 = max 3 (budget / 15) in
        let firsts = sample_sites ~s:total ~n:n1 in
        log
          (Printf.sprintf "batch: two-deep, re-crashing recovery after %d first cuts"
             (List.length firsts));
        List.iter
          (fun k1 ->
            if !result = None then begin
              incr runs;
              match batch_run ~fault ~txs ~crash:(Some k1) ~crash2:None with
              | Some reason, _, _ ->
                result := Some (fail ~crash:(Some k1) ~crash2:None reason)
              | None, _, total2 ->
                List.iter
                  (fun k2 ->
                    if !result = None then begin
                      incr runs;
                      match batch_run ~fault ~txs ~crash:(Some k1) ~crash2:(Some k2) with
                      | Some reason, _, _ ->
                        result := Some (fail ~crash:(Some k1) ~crash2:(Some k2) reason)
                      | None, _, _ -> ()
                    end)
                  (sample_sites ~s:total2 ~n:(max 3 (budget / 15)))
            end)
          firsts
      end;
      match !result with
      | Some f -> f
      | None -> Batch_pass { runs = !runs; boundaries = total })

(* ------------------------------------------------------------------ *)
(* Replicated-durability failover campaign                            *)
(* ------------------------------------------------------------------ *)

(* The replica campaign runs a full Replica cluster (one primary plus K
   followers behind simulated links), cuts power at sampled persist
   boundaries of the *primary's* device, and fails over.  Because the
   ship hook hangs off the Persist daemon, those boundaries land cuts at
   every interesting replication point: record persisted but frame not
   yet sent, frames in flight, acks in flight, mid-retransmit (faulty
   links), and mid-catch-up (healed partition).  The promoted state must
   cover everything the quorum watermark ever acknowledged and be exactly
   the model state for the recovered commit count.

   The [Skip_quorum_gate] mutant acknowledges at the primary-local seal;
   cuts with frames still in flight leave every replica short of the
   "acked" watermark, which promotion exposes as lost durability. *)

module Rep = Dudetm_replica.Replica.Make (Dudetm_tm.Tinystm)
module Link = Dudetm_replica.Link

type replica_scenario = Rclean | Rfaulty | Rpartition

let replica_scenario_to_string = function
  | Rclean -> "clean"
  | Rfaulty -> "faulty"
  | Rpartition -> "partition"

let replica_scenario_of_string = function
  | "clean" -> Rclean
  | "faulty" -> Rfaulty
  | "partition" -> Rpartition
  | s -> invalid_arg ("Check.replica_scenario_of_string: unknown scenario " ^ s)

type replica_failure = {
  rf_fault : Config.fault;
  rf_nreplicas : int;
  rf_txs : int;
  rf_scenario : replica_scenario;
  rf_crash : int option;
  rf_reason : string;
}

type replica_report =
  | Replica_pass of { runs : int; boundaries : int }
  | Replica_fail of replica_failure

let replica_replay_line rf =
  Printf.sprintf "dudetm check --replica%s --replicas %d --txs %d --scenario %s%s"
    (match rf.rf_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    rf.rf_nreplicas rf.rf_txs
    (replica_scenario_to_string rf.rf_scenario)
    (match rf.rf_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)

let default_replica_count = 3

let default_replica_txs = 10

(* Counter workload at the engine level (same model as [counter]): tx
   number i stamps slot (i mod 8) and writes the root to i, so the whole
   durable state is a function of the recovered counter alone. *)
let replica_slots = 8

let replica_stamp i = [ i mod replica_slots ]

let replica_tx tx =
  let c1 = 1 + Int64.to_int (Rep.Engine.read tx 0) in
  List.iter (fun j -> Rep.Engine.write tx (slot_addr j) (Int64.of_int c1)) (replica_stamp c1);
  Rep.Engine.write tx 0 (Int64.of_int c1)

let replica_faults =
  {
    Link.drop = 0.05;
    duplicate = 0.05;
    reorder = 0.05;
    delay = 0.03;
    delay_cycles = 30_000;
    corrupt = 0.03;
  }

(* One full campaign run: drive the cluster, optionally cut power at the
   [crash]-th primary persist boundary, fail over, check the oracle.
   Returns (verdict, primary persist boundaries seen). *)
let replica_run ~fault ~nreplicas ~txs ~scenario ~crash =
  let cfg = { (batch_cfg ~fault) with Config.plog_size = 1 lsl 14 } in
  let link =
    {
      Link.default_config with
      Link.faults = (match scenario with Rfaulty -> replica_faults | _ -> Link.no_faults);
      seed = cfg.Config.seed;
    }
  in
  let rcfg = { (Rep.default_config ~nreplicas ()) with Rep.link } in
  let c = Rep.create ~rcfg cfg in
  let prim = Rep.primary c in
  let prim_nvm = Rep.Engine.nvm prim in
  let sites = ref 0 in
  let last_d = ref 0 in
  let err = ref None in
  Nvm.set_persist_hook prim_nvm
    (Some
       (fun () ->
         incr sites;
         let d = Rep.Engine.durable_id prim in
         if d < !last_d && !err = None then
           err := Some (Printf.sprintf "durable id regressed from %d to %d" !last_d d);
         if d > !last_d then last_d := d;
         match crash with Some k when !sites = k -> raise Crash_now | _ -> ()));
  let crashed = ref false in
  let committed = ref 0 in
  let drained_quorum = ref false in
  (try
     ignore
       (Sched.run (fun () ->
            Rep.start c;
            (match scenario with
            | Rpartition ->
              (* Partition the last replica mid-run, heal it later: crash
                 points before the heal exercise quorum-minus-one, points
                 after it exercise retransmit-driven catch-up. *)
              ignore
                (Sched.spawn ~daemon:true "partitioner" (fun () ->
                     try
                       Sched.advance 40_000;
                       Rep.set_partitioned c (nreplicas - 1) true;
                       Sched.advance 400_000;
                       Rep.set_partitioned c (nreplicas - 1) false
                     with Sched.Killed -> ()))
            | _ -> ());
            let done_workers = ref 0 in
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "replica-worker-%d" th) (fun () ->
                     for i = 1 to txs do
                       match Rep.Engine.atomically prim ~thread:th replica_tx with
                       | Some (_, tid) when tid > 0 ->
                         incr committed;
                         (* Exercise the bounded quorum wait on a sample of
                            commits; the rest stay decoupled. *)
                         if i mod 4 = 0 then ignore (Rep.wait_acked c tid)
                       | _ -> ()
                     done;
                     incr done_workers))
            done;
            Sched.wait_until ~label:"replica workers done" (fun () ->
                !done_workers = cfg.Config.nthreads);
            (match Rep.drain c with
            | Rep.Quorum -> drained_quorum := true
            | Rep.Degraded_quorum _ -> ());
            Rep.sync_followers c;
            Rep.stop c))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> err := Some ("deadlock: " ^ msg)
  | e -> err := Some ("cluster raised " ^ Printexc.to_string e));
  Nvm.set_persist_hook prim_nvm None;
  (* The watermark is monotone, so its value now is its value at the cut:
     exactly what was ever acknowledged as quorum-durable. *)
  let acked = Rep.acked c in
  match !err with
  | Some reason -> (Some reason, !sites)
  | None -> (
    match Rep.promote c with
    | exception e -> (Some ("promotion raised " ^ Printexc.to_string e), !sites)
    | eng, prom ->
      let peek a = Rep.Engine.heap_read_u64 eng a in
      let k = Int64.to_int (peek 0) in
      let durable = prom.Rep.report.Dudetm.durable in
      (* With K = 1 the quorum is the primary alone (q = ⌈2/2⌉ = 1): acks
         promise primary-local durability only — PR 6 semantics — so
         failover makes no no-loss promise and only the prefix-consistency
         checks apply.  Any larger cluster needs at least one replica ack,
         and then no quorum-acked transaction may be lost. *)
      let quorum_loss_guarded = Rep.quorum_needed ~nreplicas > 1 in
      let reason =
        if quorum_loss_guarded && acked > prom.Rep.quorum_prefix then
          Some
            (Printf.sprintf
               "acked watermark %d passed the quorum prefix %d (candidates %s)" acked
               prom.Rep.quorum_prefix
               (String.concat ","
                  (Array.to_list (Array.map string_of_int prom.Rep.candidates))))
        else if quorum_loss_guarded && durable < acked then
          Some
            (Printf.sprintf
               "durability lost: watermark %d was quorum-acked, promotion recovered only %d"
               acked durable)
        else if k <> durable then
          Some
            (Printf.sprintf "promotion reports durable id %d but the data image shows %d"
               durable k)
        else if (not !crashed) && !drained_quorum && k <> !committed then
          Some
            (Printf.sprintf "quiescent stop lost transactions: committed %d, promoted %d"
               !committed k)
        else slot_check ~slots:replica_slots ~stamp:replica_stamp ~peek ~k
      in
      (reason, !sites))

let check_replica ?(fault = Config.No_fault) ?(nreplicas = default_replica_count)
    ?(txs = default_replica_txs) ?(log = fun _ -> ()) ?scenario ?only_crash () =
  let fail ~scenario ~crash reason =
    Replica_fail
      { rf_fault = fault; rf_nreplicas = nreplicas; rf_txs = txs; rf_scenario = scenario;
        rf_crash = crash; rf_reason = reason }
  in
  match (scenario, only_crash) with
  | Some sc, Some k -> (
    match replica_run ~fault ~nreplicas ~txs ~scenario:sc ~crash:(Some k) with
    | Some reason, _ -> fail ~scenario:sc ~crash:(Some k) reason
    | None, s -> Replica_pass { runs = 1; boundaries = s })
  | _ ->
    let scenarios =
      match scenario with Some sc -> [ sc ] | None -> [ Rclean; Rfaulty; Rpartition ]
    in
    let budget = max 4 (shard_sites_budget () / List.length scenarios) in
    let runs = ref 0 in
    let boundaries = ref 0 in
    let result = ref None in
    List.iter
      (fun sc ->
        if !result = None then begin
          log
            (Printf.sprintf "replica: scenario %s, K=%d, %d txs x %d threads, quiescent run"
               (replica_scenario_to_string sc)
               nreplicas txs
               (batch_cfg ~fault:Config.No_fault).Config.nthreads);
          incr runs;
          match replica_run ~fault ~nreplicas ~txs ~scenario:sc ~crash:None with
          | Some reason, _ -> result := Some (fail ~scenario:sc ~crash:None reason)
          | None, total ->
            boundaries := !boundaries + total;
            let picks = sample_sites ~s:total ~n:budget in
            log
              (Printf.sprintf "replica: %d primary persist boundaries, killing at %d of them"
                 total (List.length picks));
            List.iter
              (fun k ->
                if !result = None then begin
                  incr runs;
                  match replica_run ~fault ~nreplicas ~txs ~scenario:sc ~crash:(Some k) with
                  | Some reason, _ -> result := Some (fail ~scenario:sc ~crash:(Some k) reason)
                  | None, _ -> ()
                end)
              picks
        end)
      scenarios;
    match !result with
    | Some f -> f
    | None -> Replica_pass { runs = !runs; boundaries = !boundaries }

(* ------------------------------------------------------------------ *)
(* Live-migration (resharding) crash campaign                         *)
(* ------------------------------------------------------------------ *)

(* The migrate campaign drives a live 4->8 resharding: 8 engines, an
   8-bucket partition initially owned by shards 0-3 (two buckets each),
   and four migrations handing every odd bucket to a fresh shard 4-7 —
   each under application traffic that keeps landing increments inside
   and outside the moving range, so cuts fall in the double-write window,
   between the flip's three seals, and mid-cleanup.  Power is cut at
   persist boundaries counted across all eight devices (the handoff
   journal's own seals are boundaries too).

   The per-key model tracks a commit count and, at every boundary, how
   many of each key's commits were acknowledged under the sampled vector
   watermark (local acks against the per-shard effective IDs, window
   double-writes against the global frontier).  After recovery the value
   at the key's descriptor-routed owner must sit in [acked, committed];
   after the completed schedule it must equal the commit count exactly,
   with every moved range's source slots recycled to zero.

   The two-deep leg re-arms the hooks before the first re-attach, so the
   second cut can land inside recovery itself — between the roll-forward
   seals of a half-flipped handoff — and the third attach must still
   converge.  The [Skip_handoff_seal] mutant flips volatile routing
   without sealing the handoff record or the new descriptor; any cut
   after the first flip recovers the stale descriptor, routes the moved
   range back to the source, and loses the destination's acknowledged
   writes — which the oracle reports. *)

module Mig = Dudetm_shard.Migrate.Make (Dudetm_tm.Tinystm)
module Handoff = Dudetm_shard.Handoff
module Partition = Dudetm_workloads.Partition

type migrate_failure = {
  mg_fault : Config.fault;
  mg_crash : int option;  (* first power cut (persist boundary) *)
  mg_crash2 : int option;  (* second cut, counted from the re-attach on *)
  mg_reason : string;
}

type migrate_report =
  | Migrate_pass of { runs : int; boundaries : int }
  | Migrate_fail of migrate_failure

let migrate_replay_line mg =
  Printf.sprintf "dudetm check --migrate%s%s%s"
    (match mg.mg_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    (match mg.mg_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)
    (match mg.mg_crash2 with None -> "" | Some k -> Printf.sprintf " --crash2 %d" k)

let migrate_nshards = 8

let migrate_nkeys = 16

(* 8 buckets over keys [0, 16): bucket [b] covers keys {2b, 2b+1}.  The
   schedule hands every odd bucket to a fresh shard. *)
let mg_initial_owners = [| 0; 0; 1; 1; 2; 2; 3; 3 |]

let mg_final_owners = [| 0; 4; 1; 5; 2; 6; 3; 7 |]

let mg_moves = List.init 4 (fun m -> (m, 4 + m, (2 * m) + 1))

let mg_slot k = 8 * k

type mg_ack = Mg_local of int * int | Mg_cross of int

type mg_model = {
  mg_committed : int array;
  mg_acked : int array;  (* running max of the satisfied ack prefix *)
  mg_pending : mg_ack Queue.t array;  (* per key, in commit order *)
  mutable mg_fmax : int;
  mg_emax : int array;
}

let mg_model () =
  {
    mg_committed = Array.make migrate_nkeys 0;
    mg_acked = Array.make migrate_nkeys 0;
    mg_pending = Array.init migrate_nkeys (fun _ -> Queue.create ());
    mg_fmax = 0;
    mg_emax = Array.make migrate_nshards 0;
  }

(* Unacknowledged commits are void once the power is cut: their tids/gtids
   can be reissued by the next life, so leaving them queued would let a
   second-life watermark satisfy a first-life ack. *)
let mg_void_pending model = Array.iter Queue.clear model.mg_pending

(* One increment through the router; records the commit and its ack. *)
let mg_bump mig model ~thread k =
  match Mig.apply mig ~thread ~key:k (fun v -> Int64.add v 1L) with
  | Some (_, ack) ->
    model.mg_committed.(k) <- model.mg_committed.(k) + 1;
    (match ack with
    | Mig.Sh.Ack_local { shard; tid } -> Queue.push (Mg_local (shard, tid)) model.mg_pending.(k)
    | Mig.Sh.Ack_cross { gtid } -> Queue.push (Mg_cross gtid) model.mg_pending.(k)
    | Mig.Sh.Ack_read_only -> ())
  | None -> ()

(* The value the descriptor-routed owner holds for every key must cover
   everything acknowledged and never exceed the commit count; [final]
   additionally demands the completed-resharding fixpoint: final owners,
   exact counts, and every non-owner slot recycled to zero. *)
let mg_oracle ~final sh mig model =
  let peek s k = Mig.Sh.Engine.heap_read_u64 (Mig.Sh.engine sh s) (mg_slot k) in
  let bad = ref None in
  let report r = if !bad = None then bad := Some r in
  for k = 0 to migrate_nkeys - 1 do
    let o = Mig.owner mig k in
    let v = Int64.to_int (peek o k) in
    if v < model.mg_acked.(k) then
      report
        (Printf.sprintf "acked write lost: key %d on owner shard %d is %d, %d were acked"
           k o v model.mg_acked.(k));
    if v > model.mg_committed.(k) then
      report
        (Printf.sprintf "phantom write: key %d on owner shard %d is %d, only %d committed"
           k o v model.mg_committed.(k))
  done;
  if final then begin
    let owners = Partition.owners (Mig.partition mig) in
    if owners <> mg_final_owners then
      report
        (Printf.sprintf "resharding did not converge: owners %s"
           (String.concat ";" (Array.to_list (Array.map string_of_int owners))));
    for k = 0 to migrate_nkeys - 1 do
      let o = Mig.owner mig k in
      let v = Int64.to_int (peek o k) in
      if v <> model.mg_committed.(k) then
        report
          (Printf.sprintf "quiescent stop lost writes: key %d is %d, committed %d" k v
             model.mg_committed.(k));
      for s = 0 to migrate_nshards - 1 do
        if s <> o && peek s k <> 0L then
          report
            (Printf.sprintf
               "unreachable extent: shard %d still holds %Ld for key %d (owner %d)" s
               (peek s k) k o)
      done
    done
  end;
  !bad

(* A crash discards every commit past the durable cut, so once the
   mid-recovery oracle has bounded the recovered values the model rebases
   on them: they are the baseline the completion life builds on. *)
let mg_rebase sh mig model =
  for k = 0 to migrate_nkeys - 1 do
    let o = Mig.owner mig k in
    let v = Int64.to_int (Mig.Sh.Engine.heap_read_u64 (Mig.Sh.engine sh o) (mg_slot k)) in
    model.mg_committed.(k) <- v;
    if model.mg_acked.(k) > v then model.mg_acked.(k) <- v
  done

(* The deterministic resharding schedule under traffic: per move, a full
   round of increments, then chunked copy interleaved with double-writes
   in the moving range and traffic outside it, the flip, a post-flip
   commit routed to the new owner, and chunked cleanup under traffic. *)
let mg_schedule mig model =
  let round () =
    for k = 0 to migrate_nkeys - 1 do
      mg_bump mig model ~thread:(k mod 3) k
    done
  in
  List.iter
    (fun (src, dst, b) ->
      round ();
      Mig.begin_migration mig ~src ~dst ~blo:b ~bhi:(b + 1);
      let kin = 2 * b and kout = ((2 * b) + 5) mod migrate_nkeys in
      let fin = ref false in
      while not !fin do
        fin := Mig.copy_step ~chunk:1 mig ~thread:0;
        mg_bump mig model ~thread:1 kin;
        mg_bump mig model ~thread:2 kout
      done;
      Mig.flip mig;
      mg_bump mig model ~thread:0 ((2 * b) + 1);
      let fin = ref false in
      while not !fin do
        fin := Mig.cleanup_step ~chunk:2 mig ~thread:0;
        mg_bump mig model ~thread:1 kout
      done)
    mg_moves;
  round ()

(* After a re-attach: finish any pending cleanup, re-run every move the
   descriptor still shows unfinished, then one more round to prove the
   recovered instance routes and commits. *)
let mg_complete mig model =
  (match Mig.migrating mig with
  | Some (_, Handoff.Cleanup) ->
    while not (Mig.cleanup_step ~chunk:4 mig ~thread:0) do
      ()
    done
  | Some _ -> ()
  | None -> ());
  let owners = Partition.owners (Mig.partition mig) in
  List.iter
    (fun (src, dst, b) ->
      if owners.(b) = src then Mig.migrate ~chunk:1 mig ~thread:0 ~src ~dst ~blo:b ~bhi:(b + 1))
    mg_moves;
  for k = 0 to migrate_nkeys - 1 do
    mg_bump mig model ~thread:(k mod 3) k
  done

(* One full campaign run: first life (cut at boundary [crash], counted
   across all devices), attach with hooks re-armed (so [crash2] can land
   inside recovery itself), completion life, attach after any second cut,
   completion again, final oracle.  Returns (verdict, first-life sites,
   second-count sites). *)
let migrate_run ~fault ~crash ~crash2 =
  let cfg = dude_cfg ~combine:false ~fault in
  let part =
    Partition.buckets ~nshards:migrate_nshards ~lo:0L ~hi:(Int64.of_int migrate_nkeys)
      ~owners:mg_initial_owners
  in
  let sh = Mig.Sh.create ~nshards:migrate_nshards cfg in
  let mig = Mig.create sh ~part ~nkeys:migrate_nkeys ~slot_of:mg_slot in
  let model = mg_model () in
  let sites = ref 0 in
  let cut_at = ref crash in
  let cur_sh = ref sh in
  let hook () =
    incr sites;
    let shh = !cur_sh in
    let f = Mig.Sh.global_frontier shh in
    if f > model.mg_fmax then model.mg_fmax <- f;
    Array.iteri
      (fun s e -> if e > model.mg_emax.(s) then model.mg_emax.(s) <- e)
      (Mig.Sh.effective_vector shh);
    for k = 0 to migrate_nkeys - 1 do
      let q = model.mg_pending.(k) in
      let go = ref true in
      while !go && not (Queue.is_empty q) do
        let sat =
          match Queue.peek q with
          | Mg_local (s, tid) -> model.mg_emax.(s) >= tid
          | Mg_cross g -> model.mg_fmax >= g
        in
        if sat then begin
          ignore (Queue.pop q);
          model.mg_acked.(k) <- model.mg_acked.(k) + 1
        end
        else go := false
      done
    done;
    match !cut_at with Some c when !sites = c -> raise Crash_now | _ -> ()
  in
  let nvms = Array.init migrate_nshards (Mig.Sh.nvm sh) in
  let arm () = Array.iter (fun n -> Nvm.set_persist_hook n (Some hook)) nvms in
  let disarm () = Array.iter (fun n -> Nvm.set_persist_hook n None) nvms in
  let crashed = ref false in
  let err = ref None in
  (try
     ignore
       (Sched.run (fun () ->
            Mig.Sh.start sh;
            arm ();
            mg_schedule mig model;
            disarm ();
            Mig.Sh.stop sh))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> err := Some ("deadlock: " ^ msg)
  | e -> err := Some ("engine raised " ^ Printexc.to_string e));
  disarm ();
  let sites1 = !sites in
  match !err with
  | Some reason -> (Some reason, sites1, 0)
  | None ->
    if not !crashed then (mg_oracle ~final:true sh mig model, sites1, 0)
    else begin
      mg_void_pending model;
      Array.iter Nvm.crash nvms;
      sites := 0;
      cut_at := crash2;
      arm ();
      (* Attach with hooks armed: the second cut may land between the
         handoff journal's own recovery seals. *)
      let attach_once () =
        let sh2, _rep = Mig.Sh.attach ~nshards:migrate_nshards cfg nvms in
        cur_sh := sh2;
        let mig2, _resume = Mig.attach sh2 ~nkeys:migrate_nkeys ~slot_of:mg_slot in
        (sh2, mig2)
      in
      let complete_life sh2 mig2 =
        Sched.run (fun () ->
            Mig.Sh.start sh2;
            mg_complete mig2 model;
            disarm ();
            Mig.Sh.stop sh2)
      in
      let final_life () =
        (* No further cuts: attach once more and finish the schedule. *)
        mg_void_pending model;
        disarm ();
        Array.iter Nvm.crash nvms;
        match attach_once () with
        | exception e -> Some ("re-recovery raised " ^ Printexc.to_string e)
        | sh3, mig3 -> (
          match mg_oracle ~final:false sh3 mig3 model with
          | Some r -> Some r
          | None -> (
            mg_rebase sh3 mig3 model;
            match Sched.run (fun () ->
                      Mig.Sh.start sh3;
                      mg_complete mig3 model;
                      Mig.Sh.stop sh3)
            with
            | _ -> mg_oracle ~final:true sh3 mig3 model
            | exception Sched.Deadlock msg -> Some ("deadlock after re-recovery: " ^ msg)
            | exception e -> Some ("re-recovered engine raised " ^ Printexc.to_string e)))
      in
      match attach_once () with
      | exception Crash_now -> (final_life (), sites1, !sites)
      | exception e -> (Some ("recovery raised " ^ Printexc.to_string e), sites1, !sites)
      | sh2, mig2 -> (
        match mg_oracle ~final:false sh2 mig2 model with
        | Some r -> (Some r, sites1, !sites)
        | None -> (
          mg_rebase sh2 mig2 model;
          match complete_life sh2 mig2 with
          | _ -> (mg_oracle ~final:true sh2 mig2 model, sites1, !sites)
          | exception Crash_now -> (final_life (), sites1, !sites)
          | exception Sched.Deadlock msg -> (Some ("deadlock: " ^ msg), sites1, !sites)
          | exception e ->
            (Some ("recovered engine raised " ^ Printexc.to_string e), sites1, !sites)))
    end

let check_migrate ?(fault = Config.No_fault) ?(log = fun _ -> ()) ?only_crash ?only_crash2 ()
    =
  let fail ~crash ~crash2 reason =
    Migrate_fail { mg_fault = fault; mg_crash = crash; mg_crash2 = crash2; mg_reason = reason }
  in
  match only_crash with
  | Some k -> (
    match migrate_run ~fault ~crash:(Some k) ~crash2:only_crash2 with
    | Some reason, _, _ -> fail ~crash:(Some k) ~crash2:only_crash2 reason
    | None, s1, s2 -> Migrate_pass { runs = 1; boundaries = s1 + s2 })
  | None -> (
    log
      (Printf.sprintf "migrate: live 4->8 resharding, %d shards, %d keys, clean run"
         migrate_nshards migrate_nkeys);
    match migrate_run ~fault ~crash:None ~crash2:None with
    | Some reason, _, _ -> fail ~crash:None ~crash2:None reason
    | None, total, _ ->
      let budget = shard_sites_budget () in
      let runs = ref 1 in
      let result = ref None in
      let picks =
        if total <= budget then List.init total (fun i -> i + 1)
        else List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
      in
      log
        (Printf.sprintf "migrate: %d persist boundaries, cutting power at %d of them" total
           (List.length picks));
      List.iter
        (fun k ->
          if !result = None then begin
            incr runs;
            match migrate_run ~fault ~crash:(Some k) ~crash2:None with
            | Some reason, _, _ -> result := Some (fail ~crash:(Some k) ~crash2:None reason)
            | None, _, _ -> ()
          end)
        picks;
      (* Two-deep: a handful of first cuts, each re-cut at a spread of
         boundaries counted from the re-attach on — recovery's own handoff
         seals included. *)
      if !result = None then begin
        let n1 = max 3 (budget / 20) in
        let firsts = sample_sites ~s:total ~n:n1 in
        log
          (Printf.sprintf "migrate: two-deep, re-cutting recovery after %d first cuts"
             (List.length firsts));
        List.iter
          (fun k1 ->
            if !result = None then begin
              incr runs;
              match migrate_run ~fault ~crash:(Some k1) ~crash2:None with
              | Some reason, _, _ ->
                result := Some (fail ~crash:(Some k1) ~crash2:None reason)
              | None, _, total2 ->
                List.iter
                  (fun k2 ->
                    if !result = None then begin
                      incr runs;
                      match migrate_run ~fault ~crash:(Some k1) ~crash2:(Some k2) with
                      | Some reason, _, _ ->
                        result := Some (fail ~crash:(Some k1) ~crash2:(Some k2) reason)
                      | None, _, _ -> ()
                    end)
                  (sample_sites ~s:total2 ~n:(max 3 (budget / 20)))
            end)
          firsts
      end;
      match !result with
      | Some f -> f
      | None -> Migrate_pass { runs = !runs; boundaries = total })

(* ------------------------------------------------------------------ *)
(* Snapshot-read crash campaign                                       *)
(* ------------------------------------------------------------------ *)

(* The snapshot campaign runs pair-writer transactions — every commit
   writes the {e same} value to both slots of one pair — against a
   concurrent read-only snapshot reader alternating volatile and
   durable-only mode, and cuts power at sampled persist boundaries while
   the durable reads run.  Two oracles:

   - {b consistency}: every completed snapshot read-set satisfies
     [va = vb].  A reader spanning a writer's commit must either retry
     (validated extension) or see none of its writes; the
     [Skip_snapshot_validate] mutant slides the epoch forward without
     revalidating and returns one old and one new half of a pair.
   - {b durable prefix}: a durable-mode read of value [v] proves that [v]
     transactions on that pair were durable when the read completed, so
     after the cut recovery must find at least [v] on that pair — and
     never more than were committed. *)

let snapshot_npairs = 4

let sn_slot_a p = 8 + (16 * p)

let sn_slot_b p = sn_slot_a p + 8

let default_snapshot_txs = 12

let snapshot_sites_budget = shard_sites_budget

type snapshot_failure = {
  sn_fault : Config.fault;
  sn_txs : int;
  sn_crash : int option;  (* power cut (persist boundary) *)
  sn_reason : string;
}

type snapshot_report =
  | Snapshot_pass of { runs : int; boundaries : int; reads : int }
  | Snapshot_fail of snapshot_failure

let snapshot_replay_line sn =
  Printf.sprintf "dudetm check --snapshot%s --txs %d%s"
    (match sn.sn_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    sn.sn_txs
    (match sn.sn_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)

(* One full run on the pipelined-combine config (short deadline: durable
   pin waits stay bounded, and a short run still crosses many persist
   boundaries): writers on threads [0 .. n-2], the snapshot reader on the
   last thread, power cut at the [crash]-th boundary, attach, oracle.
   Returns (verdict, boundaries, completed snapshot reads). *)
let snapshot_run ~fault ~txs ~crash =
  let cfg = batch_cfg ~fault in
  let nthreads = cfg.Config.nthreads in
  let nwriters = nthreads - 1 in
  let p, _t = Dude_ptm.Stm.ptm cfg in
  let nvm = match p.Ptm.nvm with Some n -> n | None -> assert false in
  let sites = ref 0 in
  let last_d = ref 0 in
  let err = ref None in
  let report r = if !err = None then err := Some r in
  Nvm.set_persist_hook nvm
    (Some
       (fun () ->
         incr sites;
         let d = p.Ptm.durable_id () in
         if d < !last_d then
           report (Printf.sprintf "durable id regressed from %d to %d" !last_d d);
         if d > !last_d then last_d := d;
         match crash with Some k when !sites = k -> raise Crash_now | _ -> ()));
  let committed = Array.make snapshot_npairs 0 in
  (* Per pair: the largest value a completed durable-mode read returned. *)
  let durable_seen = Array.make snapshot_npairs 0 in
  let reads = ref 0 in
  let crashed = ref false in
  (try
     ignore
       (Sched.run (fun () ->
            p.Ptm.start ();
            let writers_done = ref 0 in
            for th = 0 to nwriters - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "snapshot-writer-%d" th) (fun () ->
                     for i = 1 to txs do
                       let pair = (th + (nwriters * i)) mod snapshot_npairs in
                       match
                         p.Ptm.atomically ~thread:th (fun tx ->
                             let v = Int64.add (tx.Ptm.read (sn_slot_a pair)) 1L in
                             tx.Ptm.write (sn_slot_a pair) v;
                             tx.Ptm.write (sn_slot_b pair) v)
                       with
                       | Some ((), _tid) -> committed.(pair) <- committed.(pair) + 1
                       | None -> ()
                     done;
                     incr writers_done))
            done;
            let reader_done = ref false in
            ignore
              (Sched.spawn "snapshot-reader" (fun () ->
                   let durable = ref false in
                   while !writers_done < nwriters do
                     durable := not !durable;
                     (* All [a] halves first, then all [b] halves: a writer
                        committing pair [q] anywhere in between bumps both
                        stripes past the epoch, so the [b] read triggers an
                        extension — which must revalidate the recorded [a]
                        (and restart), or tear. *)
                     match
                       p.Ptm.atomically_ro ~durable:!durable ~thread:(nthreads - 1)
                         (fun tx ->
                           let va =
                             Array.init snapshot_npairs (fun q -> tx.Ptm.read (sn_slot_a q))
                           in
                           let vb =
                             Array.init snapshot_npairs (fun q -> tx.Ptm.read (sn_slot_b q))
                           in
                           (va, vb))
                     with
                     | Some ((va, vb), epoch) ->
                       incr reads;
                       for q = 0 to snapshot_npairs - 1 do
                         if va.(q) <> vb.(q) then
                           report
                             (Printf.sprintf
                                "torn snapshot read-set: pair %d is %Ld/%Ld at epoch %d \
                                 (%s mode)"
                                q va.(q) vb.(q) epoch
                                (if !durable then "durable" else "volatile"));
                         if !durable && Int64.to_int va.(q) > durable_seen.(q) then
                           durable_seen.(q) <- Int64.to_int va.(q)
                       done
                     | None -> ()
                   done;
                   reader_done := true));
            Sched.wait_until ~label:"snapshot workers done" (fun () ->
                !writers_done = nwriters && !reader_done);
            p.Ptm.drain ();
            p.Ptm.stop ()))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> report ("deadlock: " ^ msg)
  | e -> report ("engine raised " ^ Printexc.to_string e));
  Nvm.set_persist_hook nvm None;
  match !err with
  | Some reason -> (Some reason, !sites, !reads)
  | None -> (
    Nvm.crash nvm;
    match Dude_ptm.Stm.attach_ptm cfg nvm with
    | exception e -> (Some ("recovery raised " ^ Printexc.to_string e), !sites, !reads)
    | p2, _t2, _report ->
      let verdict = ref None in
      let fail r = if !verdict = None then verdict := Some r in
      for pr = 0 to snapshot_npairs - 1 do
        let ra = Int64.to_int (p2.Ptm.peek (sn_slot_a pr)) in
        let rb = Int64.to_int (p2.Ptm.peek (sn_slot_b pr)) in
        if ra <> rb then fail (Printf.sprintf "recovered pair %d is torn: %d/%d" pr ra rb);
        if ra < durable_seen.(pr) then
          fail
            (Printf.sprintf
               "durable-mode snapshot read lost: pair %d read %d, recovery found %d" pr
               durable_seen.(pr) ra);
        if ra > committed.(pr) then
          fail
            (Printf.sprintf "phantom writes: pair %d recovered %d, only %d committed" pr ra
               committed.(pr));
        if (not !crashed) && ra <> committed.(pr) then
          fail
            (Printf.sprintf "quiescent stop lost writes: pair %d is %d, committed %d" pr ra
               committed.(pr))
      done;
      (!verdict, !sites, !reads))

let check_snapshot ?(fault = Config.No_fault) ?(txs = default_snapshot_txs)
    ?(log = fun _ -> ()) ?only_crash () =
  let fail ~crash reason =
    Snapshot_fail { sn_fault = fault; sn_txs = txs; sn_crash = crash; sn_reason = reason }
  in
  match only_crash with
  | Some k -> (
    match snapshot_run ~fault ~txs ~crash:(Some k) with
    | Some reason, _, _ -> fail ~crash:(Some k) reason
    | None, s, r -> Snapshot_pass { runs = 1; boundaries = s; reads = r })
  | None -> (
    log
      (Printf.sprintf "snapshot: %d pair-writers x %d txs + mixed-mode reader, clean run"
         ((batch_cfg ~fault).Config.nthreads - 1)
         txs);
    match snapshot_run ~fault ~txs ~crash:None with
    | Some reason, _, _ -> fail ~crash:None reason
    | None, total, reads0 ->
      let budget = snapshot_sites_budget () in
      let runs = ref 1 in
      let reads = ref reads0 in
      let result = ref None in
      let picks =
        if total <= budget then List.init total (fun i -> i + 1)
        else List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
      in
      log
        (Printf.sprintf
           "snapshot: %d persist boundaries, cutting power at %d of them under durable \
            readers"
           total (List.length picks));
      List.iter
        (fun k ->
          if !result = None then begin
            incr runs;
            match snapshot_run ~fault ~txs ~crash:(Some k) with
            | Some reason, _, _ -> result := Some (fail ~crash:(Some k) reason)
            | None, _, r -> reads := !reads + r
          end)
        picks;
      match !result with
      | Some f -> f
      | None -> Snapshot_pass { runs = !runs; boundaries = total; reads = !reads })

(* ------------------------------------------------------------------ *)
(* Serving front-end crash campaign                                   *)
(* ------------------------------------------------------------------ *)

(* The serve campaign drives the full front end — bounded queue,
   admission gate, DRR dispatch, durable-watermark acker — with one
   closed-loop client session per pair and cuts power mid-burst at
   sampled persist boundaries across both shard devices.  Each write of
   value [v] to pair [p] stamps both slots of the pair, values are dense
   increments, and the client records [acked.(p) = v] only after its
   reply arrives.  The acked-prefix oracle after re-attach:

   - {b no half-applied request}: both slots of every pair agree
     (a torn pair means a request was applied in part);
   - {b no acked request lost}: the recovered value covers [acked.(p)] —
     a reply is a durability promise.  The [Skip_admission_gate] mutant
     releases write replies at commit instead of the durable watermark,
     so a cut in the commit-to-persist window fails exactly this check;
   - {b no phantom}: the recovered value never exceeds the largest value
     the client ever submitted;
   - {b quiescent exactness}: with no cut, every pair recovers to
     exactly [txs]. *)

module Srv = Dudetm_serve.Serve.Make (Dudetm_tm.Tinystm)
module Serve = Dudetm_serve.Serve

let serve_nshards = 2

let serve_ntenants = 2

let serve_npairs = 4

let default_serve_txs = 10

let serve_sites_budget = shard_sites_budget

(* Pair [p] lives on shard [p mod serve_nshards]; its two slots sit past
   the root word at a stride that keeps pairs on one shard apart. *)
let sv_shard_of p = p mod serve_nshards

let sv_slot_a p = 8 + (16 * (p / serve_nshards))

let sv_slot_b p = sv_slot_a p + 8

(* Small queue and tight hysteresis so the campaign exercises shedding
   and gate transitions, not just the happy path. *)
let serve_scfg =
  {
    Serve.queue_capacity = 8;
    trip_depth = 6;
    untrip_depth = 2;
    drr_quantum = 2;
    slots_per_session = 2;
    workers_per_shard = 2;
  }

let serve_app =
  {
    Srv.shard_of = (fun key -> sv_shard_of (Int64.to_int key));
    write =
      (fun tx ~shard ~key ~payload ->
        let p = Int64.to_int key in
        Srv.Sh.write tx ~shard (sv_slot_a p) payload;
        Srv.Sh.write tx ~shard (sv_slot_b p) payload);
    read =
      (fun tx ~shard ~key ->
        let p = Int64.to_int key in
        let a = Srv.Sh.read tx ~shard (sv_slot_a p) in
        let b = Srv.Sh.read tx ~shard (sv_slot_b p) in
        if Int64.equal a b then a else -1L);
  }

type serve_failure = {
  sv_fault : Config.fault;
  sv_txs : int;
  sv_crash : int option;  (* power cut (persist boundary) *)
  sv_reason : string;
}

type serve_report =
  | Serve_pass of { runs : int; boundaries : int; acked : int; shed : int }
  | Serve_fail of serve_failure

let serve_replay_line sv =
  Printf.sprintf "dudetm check --serve%s --txs %d%s"
    (match sv.sv_fault with
    | Config.No_fault -> ""
    | f ->
      let s = fault_suffix f in
      " --mutate " ^ String.sub s 1 (String.length s - 1))
    sv.sv_txs
    (match sv.sv_crash with None -> "" | Some k -> Printf.sprintf " --crash-at %d" k)

(* One full run: the front end over [serve_nshards] fresh devices, one
   closed-loop client per pair submitting dense increments (retrying the
   same value after a shed or abort), a power cut at the [crash]-th
   persist boundary counted across all devices, re-attach, oracle.
   Returns (verdict, boundaries, acked total, shed total). *)
let serve_run ~fault ~txs ~crash =
  let cfg =
    Dudetm_serve.Serve_load.engine_cfg ~fault
      ~workers:serve_scfg.Serve.workers_per_shard ()
  in
  let sh = Srv.Sh.create ~nshards:serve_nshards cfg in
  let nvms = Array.init serve_nshards (fun s -> Srv.Sh.nvm sh s) in
  let sites = ref 0 in
  let err = ref None in
  let report r = if !err = None then err := Some r in
  Array.iter
    (fun nvm ->
      Nvm.set_persist_hook nvm
        (Some
           (fun () ->
             incr sites;
             match crash with Some k when !sites = k -> raise Crash_now | _ -> ())))
    nvms;
  let srv = Srv.create ~scfg:serve_scfg ~app:serve_app ~ntenants:serve_ntenants sh in
  let acked = Array.make serve_npairs 0 in
  let submitted = Array.make serve_npairs 0 in
  let shed = ref 0 in
  let crashed = ref false in
  (try
     ignore
       (Sched.run (fun () ->
            Srv.start srv;
            let clients_done = ref 0 in
            for p = 0 to serve_npairs - 1 do
              ignore
                (Sched.spawn
                   (Printf.sprintf "serve-client-%d" p)
                   (fun () ->
                     let tenant = p mod serve_ntenants in
                     let key = Int64.of_int p in
                     let wd =
                       Srv.make_desc ~tenant ~session:p
                         (Serve.Write { key; payload = 0L })
                     in
                     let rd =
                       Srv.make_desc ~tenant ~session:p (Serve.Read { key })
                     in
                     for v = 1 to txs do
                       submitted.(p) <- v;
                       let payload = Int64.of_int v in
                       let rec attempt () =
                         Srv.set_op wd (Serve.Write { key; payload });
                         if not (Srv.submit srv wd) then begin
                           incr shed;
                           Sched.advance 2_000;
                           attempt ()
                         end
                         else
                           match Srv.await wd with
                           | Serve.R_executed _ -> acked.(p) <- v
                           | Serve.R_aborted -> attempt ()
                           | _ -> report "write reply of unexpected shape"
                       in
                       attempt ();
                       (* Opportunistic snapshot read: the pair must never
                          be torn in flight either. *)
                       if v land 3 = 0 then begin
                         Srv.set_op rd (Serve.Read { key });
                         if Srv.submit srv rd then
                           match Srv.await rd with
                           | Serve.R_value r when Int64.equal r (-1L) ->
                             report
                               (Printf.sprintf "torn in-flight read of pair %d" p)
                           | _ -> ()
                       end
                     done;
                     incr clients_done))
            done;
            Sched.wait_until ~label:"serve clients done" (fun () ->
                !clients_done = serve_npairs);
            Srv.stop srv))
   with
  | Crash_now -> crashed := true
  | Sched.Deadlock msg -> report ("deadlock: " ^ msg)
  | e -> report ("engine raised " ^ Printexc.to_string e));
  Array.iter (fun nvm -> Nvm.set_persist_hook nvm None) nvms;
  let acked_total = Array.fold_left ( + ) 0 acked in
  match !err with
  | Some reason -> (Some reason, !sites, acked_total, !shed)
  | None -> (
    Array.iter Nvm.crash nvms;
    match Srv.Sh.attach ~nshards:serve_nshards cfg nvms with
    | exception e ->
      (Some ("recovery raised " ^ Printexc.to_string e), !sites, acked_total, !shed)
    | sh2, _recovery ->
      let verdict = ref None in
      let fail r = if !verdict = None then verdict := Some r in
      for p = 0 to serve_npairs - 1 do
        let e = Srv.Sh.engine sh2 (sv_shard_of p) in
        let ra = Int64.to_int (Srv.Engine.heap_read_u64 e (sv_slot_a p)) in
        let rb = Int64.to_int (Srv.Engine.heap_read_u64 e (sv_slot_b p)) in
        if ra <> rb then
          fail
            (Printf.sprintf "half-applied request: pair %d recovered %d/%d" p ra rb);
        if ra < acked.(p) then
          fail
            (Printf.sprintf
               "acked request lost: pair %d acked %d, recovery found %d" p acked.(p)
               ra);
        if ra > submitted.(p) then
          fail
            (Printf.sprintf "phantom request: pair %d recovered %d, submitted %d" p
               ra submitted.(p));
        if (not !crashed) && ra <> txs then
          fail
            (Printf.sprintf "quiescent stop lost requests: pair %d is %d, expected %d"
               p ra txs)
      done;
      (!verdict, !sites, acked_total, !shed))

let check_serve ?(fault = Config.No_fault) ?(txs = default_serve_txs)
    ?(log = fun _ -> ()) ?only_crash () =
  let fail ~crash reason =
    Serve_fail { sv_fault = fault; sv_txs = txs; sv_crash = crash; sv_reason = reason }
  in
  match only_crash with
  | Some k -> (
    match serve_run ~fault ~txs ~crash:(Some k) with
    | Some reason, _, _, _ -> fail ~crash:(Some k) reason
    | None, s, a, sd -> Serve_pass { runs = 1; boundaries = s; acked = a; shed = sd })
  | None -> (
    log
      (Printf.sprintf
         "serve: %d closed-loop clients x %d reqs over %d shards x %d tenants, clean run"
         serve_npairs txs serve_nshards serve_ntenants);
    match serve_run ~fault ~txs ~crash:None with
    | Some reason, _, _, _ -> fail ~crash:None reason
    | None, total, acked0, shed0 ->
      let budget = serve_sites_budget () in
      let runs = ref 1 in
      let acked = ref acked0 in
      let shed = ref shed0 in
      let result = ref None in
      let picks =
        if total <= budget then List.init total (fun i -> i + 1)
        else List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
      in
      log
        (Printf.sprintf
           "serve: %d persist boundaries across %d devices, cutting power at %d of them \
            mid-burst"
           total serve_nshards (List.length picks));
      List.iter
        (fun k ->
          if !result = None then begin
            incr runs;
            match serve_run ~fault ~txs ~crash:(Some k) with
            | Some reason, _, _, _ -> result := Some (fail ~crash:(Some k) reason)
            | None, _, a, sd ->
              acked := !acked + a;
              shed := !shed + sd
          end)
        picks;
      match !result with
      | Some f -> f
      | None ->
        Serve_pass { runs = !runs; boundaries = total; acked = !acked; shed = !shed })

(* Multi-tenant skewed keyspace: tenant [i] owns the contiguous key range
   [i*K, (i+1)*K) and draws keys from its own Zipf distribution over that
   range, while shard placement of every key still goes through the shared
   Partition descriptor — the serving front end, benches and tests all
   route with the same pure function. *)

type tenant = {
  lo : int64;  (* first key of the tenant's range *)
  keys : int;
  zipf : Zipf.t;
  ro_permille : int;
}

type t = { part : Partition.t; tenants : tenant array }

let create ?(theta = 0.99) ?(ro_permille = 500) ~ntenants ~keys_per_tenant
    ~nshards () =
  if ntenants < 1 then invalid_arg "Tenant_mix.create: ntenants < 1";
  if keys_per_tenant < 1 then invalid_arg "Tenant_mix.create: keys_per_tenant < 1";
  if ro_permille < 0 || ro_permille > 1000 then
    invalid_arg "Tenant_mix.create: ro_permille outside [0, 1000]";
  let part = Partition.hashed ~nshards in
  let zipf = Zipf.create ~n:keys_per_tenant ~theta in
  let tenants =
    Array.init ntenants (fun i ->
        {
          lo = Int64.mul (Int64.of_int i) (Int64.of_int keys_per_tenant);
          keys = keys_per_tenant;
          zipf;
          ro_permille;
        })
  in
  { part; tenants }

let ntenants t = Array.length t.tenants

let keys_per_tenant t = t.tenants.(0).keys

let partition t = t.part

let sample_key t ~tenant rng =
  let tn = t.tenants.(tenant) in
  let rank = Zipf.sample tn.zipf rng in
  Int64.add tn.lo (Int64.of_int rank)

let tenant_range t ~tenant =
  let tn = t.tenants.(tenant) in
  (tn.lo, Int64.add tn.lo (Int64.of_int tn.keys))

let shard_of t key = Partition.shard_of t.part key

let is_read t ~tenant rng =
  let tn = t.tenants.(tenant) in
  Dudetm_sim.Rng.int rng 1000 < tn.ro_permille

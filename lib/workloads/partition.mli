(** Deterministic keyspace partitioner for sharded storage.

    Maps 64-bit keys to shard indices as a pure function of a small
    descriptor, so the KV, YCSB and hash-table drivers place every key on
    the same shard before and after a crash.  Two schemes: [Hash] spreads
    keys with a fixed splitmix64 finalizer (platform-independent, no
    dependence on OCaml's polymorphic hash); [Range] carves [\[lo, hi)]
    into equal-width contiguous buckets (keys outside the range clamp to
    the edge shards). *)

type scheme =
  | Hash
  | Range of { lo : int64; hi : int64 }

type t

val hashed : nshards:int -> t

val range : nshards:int -> lo:int64 -> hi:int64 -> t
(** Raises [Invalid_argument] when [lo >= hi]. *)

val shard_of : t -> int64 -> int
(** Stable shard assignment in [0, nshards). *)

val nshards : t -> int

val scheme : t -> scheme

val descriptor_words : int
(** Number of u64 words {!encode} produces (3). *)

val encode : t -> int64 array
(** Persistable descriptor; store it (e.g. in the root block) so
    {!decode} rebuilds the identical mapping after re-attach. *)

val decode : int64 array -> t
(** Inverse of {!encode}; raises [Invalid_argument] on a malformed
    descriptor. *)

(** Deterministic keyspace partitioner for sharded storage.

    Maps 64-bit keys to shard indices as a pure function of a small
    descriptor, so the KV, YCSB and hash-table drivers place every key on
    the same shard before and after a crash.  Three schemes: [Hash]
    spreads keys with a fixed splitmix64 finalizer (platform-independent,
    no dependence on OCaml's polymorphic hash); [Range] carves [\[lo, hi)]
    into equal-width contiguous buckets, one per shard; [Buckets] carves
    [\[lo, hi)] into equal-width buckets each carrying an explicit owner
    shard — the unit of ownership live migration moves.  Keys outside a
    range clamp to the edge buckets.

    Range arithmetic is unsigned 64-bit throughout, so the full keyspace
    [\[min_int, max_int)] — whose span wraps signed subtraction —
    partitions correctly. *)

exception Invalid_partition of string
(** Raised by {!unseal} for a stale, torn or corrupt persisted descriptor,
    or one whose shard count does not match the attaching instance. *)

type scheme =
  | Hash
  | Range of { lo : int64; hi : int64 }
  | Buckets of { lo : int64; hi : int64; owners : int array }

type t

val hashed : nshards:int -> t

val range : nshards:int -> lo:int64 -> hi:int64 -> t
(** Raises [Invalid_argument] when [lo >= hi]. *)

val buckets : nshards:int -> lo:int64 -> hi:int64 -> owners:int array -> t
(** Equal-width buckets over [\[lo, hi)] with bucket [b] owned by shard
    [owners.(b)].  Raises [Invalid_argument] on an empty range, an empty
    owner table, or an owner outside [\[0, nshards)]. *)

val shard_of : t -> int64 -> int
(** Stable shard assignment in [0, nshards). *)

val bucket_of : t -> int64 -> int
(** Stable bucket index in [0, {!nbuckets}).  For [Hash] and [Range] the
    bucket {e is} the shard. *)

val nshards : t -> int

val nbuckets : t -> int

val scheme : t -> scheme

val owners : t -> int array
(** Copy of the bucket-owner table.  Raises [Invalid_argument] unless the
    scheme is [Buckets]. *)

val with_owner : t -> blo:int -> bhi:int -> owner:int -> t
(** Functional ownership flip: a new partition with buckets
    [\[blo, bhi)] owned by [owner].  Raises [Invalid_argument] unless the
    scheme is [Buckets]. *)

(** {1 Persistent descriptor} *)

val descriptor_words : int
(** Number of u64 words {!encode} produces for [Hash] and [Range] (3);
    [Buckets] descriptors append one packed owner byte per bucket — see
    {!encoded_words}. *)

val encoded_words : t -> int

val encode : t -> int64 array
(** Persistable descriptor; store it (e.g. in the root block) so
    {!decode} rebuilds the identical mapping after re-attach. *)

val decode : int64 array -> t
(** Inverse of {!encode}; raises [Invalid_argument] on a malformed
    descriptor. *)

val seal : t -> int64 array
(** {!encode} plus a trailing CRC32 word over the descriptor words. *)

val sealed_words : t -> int

val unseal : ?expect_nshards:int -> int64 array -> t
(** Validate the CRC seal and decode.  Raises {!Invalid_partition} — never
    silently returns a mapping — when the words are short, the CRC
    mismatches (stale or corrupt descriptor), the descriptor is malformed,
    or [expect_nshards] disagrees with the persisted shard count. *)

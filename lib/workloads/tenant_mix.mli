(** Multi-tenant skewed keyspace model.

    One arrival/keyspace model shared by the serving front end
    ([lib/serve]), [bench serve] and the serve tests: tenant [i] owns the
    contiguous key range [\[i*K, (i+1)*K)] and draws keys from a
    per-tenant Zipf distribution over that range (rank 0, the hottest key,
    sits at the range base), while shard placement goes through the
    existing {!Partition} descriptor so every layer routes a key with the
    same pure function. *)

type t

val create :
  ?theta:float ->
  ?ro_permille:int ->
  ntenants:int ->
  keys_per_tenant:int ->
  nshards:int ->
  unit ->
  t
(** [theta] defaults to 0.99 (the paper's YCSB constant); [ro_permille]
    (reads per 1000 requests, default 500) drives {!is_read}.  Placement
    uses {!Partition.hashed}.  Raises [Invalid_argument] on non-positive
    sizes or [ro_permille] outside [\[0, 1000]]. *)

val ntenants : t -> int

val keys_per_tenant : t -> int

val partition : t -> Partition.t

val sample_key : t -> tenant:int -> Dudetm_sim.Rng.t -> int64
(** A key in the tenant's range, Zipf-skewed towards the range base. *)

val tenant_range : t -> tenant:int -> int64 * int64
(** The half-open key range [\[lo, hi)] tenant [tenant] owns. *)

val shard_of : t -> int64 -> int
(** Stable shard placement via the shared partition descriptor. *)

val is_read : t -> tenant:int -> Dudetm_sim.Rng.t -> bool
(** Whether the next request from this tenant is read-only. *)

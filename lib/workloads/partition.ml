(* Deterministic keyspace partitioner shared by the KV, YCSB and hash-table
   drivers when they run over sharded storage.  The mapping is a pure
   function of the descriptor — no run state — so a shard assignment
   computed before a crash is exactly the assignment computed after
   re-attach, provided the descriptor words were persisted (e.g. in the
   root block or the handoff journal's descriptor record). *)

module Checksum = Dudetm_log.Checksum

exception Invalid_partition of string

let () =
  Printexc.register_printer (function
    | Invalid_partition msg -> Some (Printf.sprintf "Invalid_partition %S" msg)
    | _ -> None)

type scheme =
  | Hash
  | Range of { lo : int64; hi : int64 }
  | Buckets of { lo : int64; hi : int64; owners : int array }

type t = { scheme : scheme; nshards : int }

let check_nshards nshards =
  if nshards < 1 then invalid_arg "Partition: nshards < 1";
  if nshards > 0xffff then invalid_arg "Partition: nshards too large"

let hashed ~nshards =
  check_nshards nshards;
  { scheme = Hash; nshards }

let range ~nshards ~lo ~hi =
  check_nshards nshards;
  if Int64.compare lo hi >= 0 then invalid_arg "Partition.range: empty key range";
  { scheme = Range { lo; hi }; nshards }

let buckets ~nshards ~lo ~hi ~owners =
  check_nshards nshards;
  if Int64.compare lo hi >= 0 then invalid_arg "Partition.buckets: empty key range";
  let nb = Array.length owners in
  if nb < 1 then invalid_arg "Partition.buckets: no buckets";
  if nb > 0xffff then invalid_arg "Partition.buckets: too many buckets";
  Array.iter
    (fun o ->
      if o < 0 || o >= nshards then invalid_arg "Partition.buckets: owner out of range")
    owners;
  { scheme = Buckets { lo; hi; owners = Array.copy owners }; nshards }

let nshards t = t.nshards

let scheme t = t.scheme

(* splitmix64 finalizer: a fixed, platform-independent mix so hash
   placement never depends on OCaml's polymorphic hash. *)
let mix64 k =
  let open Int64 in
  let z = mul (logxor k (shift_right_logical k 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Equal-width index of [key] over [n] buckets covering [lo, hi), computed
   with unsigned 64-bit arithmetic so the full keyspace
   [min_int, max_int) — whose span wraps signed subtraction — still
   partitions correctly.  Keys outside the range clamp to the edges. *)
let width_index ~lo ~hi ~n key =
  if Int64.compare key lo <= 0 then 0
  else if Int64.compare key hi >= 0 then n - 1
  else begin
    let span = Int64.sub hi lo in
    let w = Int64.unsigned_div span (Int64.of_int n) in
    let w = if w = 0L then 1L else w in
    let off = Int64.sub key lo in
    let idx = Int64.unsigned_div off w in
    if Int64.unsigned_compare idx (Int64.of_int (n - 1)) >= 0 then n - 1
    else Int64.to_int idx
  end

let bucket_of t key =
  match t.scheme with
  | Hash ->
    let h = Int64.to_int (Int64.shift_right_logical (mix64 key) 3) in
    h mod t.nshards
  | Range { lo; hi } -> width_index ~lo ~hi ~n:t.nshards key
  | Buckets { lo; hi; owners } -> width_index ~lo ~hi ~n:(Array.length owners) key

let shard_of t key =
  match t.scheme with
  | Hash | Range _ -> bucket_of t key
  | Buckets { owners; _ } -> owners.(bucket_of t key)

let nbuckets t =
  match t.scheme with
  | Hash | Range _ -> t.nshards
  | Buckets { owners; _ } -> Array.length owners

let owners t =
  match t.scheme with
  | Buckets { owners; _ } -> Array.copy owners
  | Hash | Range _ -> invalid_arg "Partition.owners: not a bucket partition"

let with_owner t ~blo ~bhi ~owner =
  match t.scheme with
  | Buckets { lo; hi; owners } ->
    let nb = Array.length owners in
    if blo < 0 || bhi > nb || blo >= bhi then
      invalid_arg "Partition.with_owner: bad bucket range";
    if owner < 0 || owner >= t.nshards then
      invalid_arg "Partition.with_owner: owner out of range";
    let owners = Array.copy owners in
    for b = blo to bhi - 1 do
      owners.(b) <- owner
    done;
    { t with scheme = Buckets { lo; hi; owners } }
  | Hash | Range _ -> invalid_arg "Partition.with_owner: not a bucket partition"

(* ------------------------------------------------------------------ *)
(* Persistent descriptor                                               *)
(* ------------------------------------------------------------------ *)

(* Head word: low 2 bits are the scheme kind (0 hash, 1 range, 2 buckets),
   bits 2..17 the shard count, bits 18..33 the bucket count.  Hash and
   Range descriptors are the historical fixed 3 words; Buckets appends one
   packed owner byte per bucket (8 per word). *)

let descriptor_words = 3

let head ~kind ~nshards ~nbuckets =
  Int64.of_int ((nbuckets lsl 18) lor (nshards lsl 2) lor kind)

let owner_words nb = (nb + 7) / 8

let encoded_words t =
  match t.scheme with
  | Hash | Range _ -> descriptor_words
  | Buckets { owners; _ } -> descriptor_words + owner_words (Array.length owners)

let encode t =
  match t.scheme with
  | Hash -> [| head ~kind:0 ~nshards:t.nshards ~nbuckets:0; 0L; 0L |]
  | Range { lo; hi } -> [| head ~kind:1 ~nshards:t.nshards ~nbuckets:0; lo; hi |]
  | Buckets { lo; hi; owners } ->
    let nb = Array.length owners in
    let w = Array.make (descriptor_words + owner_words nb) 0L in
    w.(0) <- head ~kind:2 ~nshards:t.nshards ~nbuckets:nb;
    w.(1) <- lo;
    w.(2) <- hi;
    Array.iteri
      (fun b o ->
        let word = descriptor_words + (b / 8) and sh = 8 * (b mod 8) in
        w.(word) <- Int64.logor w.(word) (Int64.shift_left (Int64.of_int (o land 0xff)) sh))
      owners;
    w

let decode w =
  if Array.length w < descriptor_words then invalid_arg "Partition.decode: bad descriptor";
  let h = Int64.to_int w.(0) in
  let kind = h land 3 in
  let nshards = (h lsr 2) land 0xffff in
  let nb = (h lsr 18) land 0xffff in
  check_nshards nshards;
  match kind with
  | 0 when Array.length w = descriptor_words -> { scheme = Hash; nshards }
  | 1 when Array.length w = descriptor_words -> range ~nshards ~lo:w.(1) ~hi:w.(2)
  | 2 when nb >= 1 && Array.length w = descriptor_words + owner_words nb ->
    let ow =
      Array.init nb (fun b ->
          let word = descriptor_words + (b / 8) and sh = 8 * (b mod 8) in
          Int64.to_int (Int64.logand (Int64.shift_right_logical w.(word) sh) 0xffL))
    in
    buckets ~nshards ~lo:w.(1) ~hi:w.(2) ~owners:ow
  | _ -> invalid_arg "Partition.decode: bad descriptor"

(* ------------------------------------------------------------------ *)
(* CRC-sealed descriptor (attach-time validation)                      *)
(* ------------------------------------------------------------------ *)

let crc_of_words w n =
  let b = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (8 * i) w.(i)
  done;
  Int64.of_int32 (Checksum.crc32 b 0 (8 * n))

let seal t =
  let w = encode t in
  let n = Array.length w in
  let s = Array.make (n + 1) 0L in
  Array.blit w 0 s 0 n;
  s.(n) <- crc_of_words w n;
  s

let sealed_words t = encoded_words t + 1

let unseal ?expect_nshards w =
  let fail msg = raise (Invalid_partition ("Partition: " ^ msg)) in
  let n = Array.length w - 1 in
  if n < descriptor_words then fail "sealed descriptor too short";
  if crc_of_words w n <> w.(n) then fail "descriptor CRC mismatch (stale or corrupt)";
  let p =
    match decode (Array.sub w 0 n) with
    | p -> p
    | exception Invalid_argument msg -> fail msg
  in
  (match expect_nshards with
  | Some ns when ns <> p.nshards ->
    fail
      (Printf.sprintf "descriptor is for %d shards but the instance has %d" p.nshards ns)
  | _ -> ());
  p

(* Deterministic keyspace partitioner shared by the KV, YCSB and hash-table
   drivers when they run over sharded storage.  The mapping is a pure
   function of the descriptor — no run state — so a shard assignment
   computed before a crash is exactly the assignment computed after
   re-attach, provided the descriptor words were persisted (e.g. in the
   root block). *)

type scheme =
  | Hash
  | Range of { lo : int64; hi : int64 }

type t = { scheme : scheme; nshards : int }

let check_nshards nshards =
  if nshards < 1 then invalid_arg "Partition: nshards < 1"

let hashed ~nshards =
  check_nshards nshards;
  { scheme = Hash; nshards }

let range ~nshards ~lo ~hi =
  check_nshards nshards;
  if Int64.compare lo hi >= 0 then invalid_arg "Partition.range: empty key range";
  { scheme = Range { lo; hi }; nshards }

let nshards t = t.nshards

let scheme t = t.scheme

(* splitmix64 finalizer: a fixed, platform-independent mix so hash
   placement never depends on OCaml's polymorphic hash. *)
let mix64 k =
  let open Int64 in
  let z = mul (logxor k (shift_right_logical k 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let shard_of t key =
  match t.scheme with
  | Hash ->
    let h = Int64.to_int (Int64.shift_right_logical (mix64 key) 3) in
    h mod t.nshards
  | Range { lo; hi } ->
    if Int64.compare key lo <= 0 then 0
    else if Int64.compare key hi >= 0 then t.nshards - 1
    else
      (* equal-width buckets over [lo, hi) *)
      let span = Int64.sub hi lo in
      let off = Int64.sub key lo in
      let s =
        Int64.to_int (Int64.div (Int64.mul off (Int64.of_int t.nshards)) span)
      in
      min (t.nshards - 1) (max 0 s)

(* ------------------------------------------------------------------ *)
(* Persistent descriptor: three u64 words                              *)
(* ------------------------------------------------------------------ *)

let descriptor_words = 3

let encode t =
  match t.scheme with
  | Hash -> [| Int64.of_int ((t.nshards lsl 1) lor 0); 0L; 0L |]
  | Range { lo; hi } -> [| Int64.of_int ((t.nshards lsl 1) lor 1); lo; hi |]

let decode w =
  if Array.length w <> descriptor_words then invalid_arg "Partition.decode: bad descriptor";
  let head = Int64.to_int w.(0) in
  let nshards = head lsr 1 in
  check_nshards nshards;
  if head land 1 = 0 then { scheme = Hash; nshards }
  else range ~nshards ~lo:w.(1) ~hi:w.(2)

(** Interface every transactional memory in this repository implements.

    DudeTM treats the TM as an out-of-the-box component (the paper's central
    API table, Algorithm 2): it only needs [tmBegin]/[tmRead]/[tmWrite]/
    [tmAbort]/[tmEnd], with [tmEnd] returning a globally unique, monotonically
    increasing transaction ID for committed write transactions.  Both the
    TinySTM-style software TM and the simulated hardware TM implement {!S},
    so the DudeTM core is a functor over this signature. *)

(** Word store the TM executes on.  For DudeTM this is the shadow memory;
    for baselines it may be NVM-backed.  Addresses are byte offsets of
    aligned 64-bit words. *)
type store = {
  load : int -> int64;
  store : int -> int64 -> unit;
}

let mem_store mem =
  { load = (fun addr -> Bytes.get_int64_le mem addr);
    store = (fun addr v -> Bytes.set_int64_le mem addr v) }

(** Simulated cycle costs of TM operations.  Calibrated so that end-to-end
    transaction sizes land near the paper's measurements (a TATP transaction
    ~3000 cycles, TPC-C New Order ~110k cycles, empty transactions in the
    tens of millions per second). *)
type costs = {
  begin_cost : int;
  read_cost : int;
  write_cost : int;
  commit_base : int;
  commit_per_write : int;
  abort_cost : int;
}

(* Read barriers are dominated by the actual memory access (Table 4's
   TATP row shows HTM barely helps read-heavy transactions), while the
   write barrier — lock acquisition, undo logging — is the expensive
   part an HTM eliminates. *)
let default_costs =
  { begin_cost = 120;
    read_cost = 45;
    write_cost = 250;
    commit_base = 200;
    commit_per_write = 30;
    abort_cost = 200 }

exception User_abort
(** Raised by {!S.user_abort}: the application cancelled the transaction
    (e.g. insufficient balance in the paper's Algorithm 1).  Not retried. *)

exception Read_only_violation
(** Raised (by the DudeTM core) when a transaction declared read-only
    attempts a write, a persistent allocation, or a free.  Snapshot
    transactions never acquire locks or log, so there is nothing to roll
    back — the violation is a programming error, not a conflict. *)

module type S = sig
  type t
  (** Shared TM state: clock, lock metadata, statistics. *)

  type tx
  (** A running transaction attempt. *)

  val create : ?costs:costs -> ?seed:int -> store -> t

  val begin_tx : t -> tx

  val read : tx -> int -> int64

  val write : tx -> int -> int64 -> unit

  val user_abort : tx -> 'a
  (** Roll back and raise {!User_abort}. *)

  val commit : tx -> int
  (** Commit; returns the transaction ID (monotonically increasing,
      contiguous across write transactions) or 0 for a read-only
      transaction.  Raises an internal conflict exception on validation
      failure — use {!run} rather than calling this directly. *)

  val run : ?on_retry:(unit -> unit) -> t -> (tx -> 'a) -> ('a * int) option
  (** [run t f] executes [f] transactionally with automatic retry on
      conflicts, invoking [on_retry] after each rollback (DudeTM pops the
      aborted attempt's redo-log entries there).  Returns [Some (result,
      tid)] on commit and [None] if [f] called {!user_abort}. *)

  val last_tid : t -> int
  (** ID of the most recently committed write transaction. *)

  type ro
  (** A running read-only snapshot transaction (the DUMBO-style fast
      path): reads a consistent epoch of the store without acquiring
      locks, logging, or drawing a commit ID. *)

  val run_ro :
    ?pin:(unit -> int) ->
    ?validate_extension:bool ->
    ?on_retry:(unit -> unit) ->
    t ->
    (ro -> 'a) ->
    ('a * int) option
  (** [run_ro t f] executes [f] as a read-only snapshot transaction and
      returns [Some (result, epoch)] where [epoch] is the clock value the
      read-set is consistent at, or [None] if [f] called {!ro_abort}.
      [pin] caps the epoch at an externally supplied watermark (the
      durable-only mode: reads observing newer state wait for the
      watermark to catch up).  [validate_extension = false] is reserved
      for the seeded [Skip_snapshot_validate] checker mutant. *)

  val ro_read : ro -> int -> int64

  val ro_epoch : ro -> int
  (** Current epoch of the snapshot; monotone within one snapshot. *)

  val ro_abort : ro -> 'a
  (** Cancel the snapshot and raise {!User_abort}. *)

  val stats : t -> Dudetm_sim.Stats.t
  (** Counters: ["commits"], ["aborts"], ["reads"], ["writes"],
      ["read_only_commits"], ["backoffs"] (conflict-retry backoff pauses
      taken) and ["backoff_cycles"] (simulated cycles spent in them), plus
      implementation-specific ones. *)
end

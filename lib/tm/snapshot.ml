(* Read-only snapshot transactions over the TinySTM time base.

   A snapshot transaction takes an epoch from the global version clock and
   reads directly through the shadow store, validating each read against
   the versioned lock table exactly as TinySTM does — but it never acquires
   a lock, never keeps an undo list, and never draws a commit timestamp, so
   it is invisible to writers and free of the whole commit machinery.  The
   read-set invariant is maintained incrementally: every recorded read was
   consistent at [epoch] when it happened, and [epoch] only moves forward
   through a validated extension, so by the time the body returns, the
   whole read-set is a consistent cut at the final epoch and "commit" is a
   no-op.

   The optional [pin] thunk turns the snapshot into a durable-only (DUMBO-
   style) reader: the epoch may never exceed the pinned watermark, so a
   read that observes a stripe version above it waits for durability to
   catch up instead of sliding to the volatile clock.  Every value such a
   snapshot returns was written by a transaction at or below the watermark
   at the moment of the read — i.e. state that survives a power cut. *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Trace = Dudetm_trace.Trace

exception Retry

type handle = {
  h_load : int -> int64;
  h_locks : Lock_table.t;
  h_clock : unit -> int;
  h_costs : Tm_intf.costs;
  h_stats : Stats.t;
  h_rng : Rng.t;
}

type ro = {
  h : handle;
  pin : (unit -> int) option;
  validate_ext : bool;
  mutable epoch : int;
  mutable reads : (int * int) list;  (* (stripe, observed version) *)
  mutable active : bool;
}

let begin_ro ?pin ?(validate_extension = true) h =
  Sched.advance h.h_costs.Tm_intf.begin_cost;
  let epoch =
    match pin with
    | Some w -> min (w ()) (h.h_clock ())
    | None -> h.h_clock ()
  in
  Trace.instant ~cat:"snapshot" "begin" epoch;
  Stats.incr h.h_stats "snapshot_begins";
  { h; pin; validate_ext = validate_extension; epoch; reads = []; active = true }

let epoch ro = ro.epoch

let read_set_size ro = List.length ro.reads

(* A read-set entry is still valid if its stripe carries the version we
   observed.  An owned stripe always invalidates: snapshots own nothing,
   so a writer got there. *)
let validate ro =
  List.for_all
    (fun (stripe, v) ->
      match Lock_table.read_word ro.h.h_locks stripe with
      | Lock_table.Version cur -> cur = v
      | Lock_table.Owned _ -> false)
    ro.reads

let restart ro =
  Stats.incr ro.h.h_stats "snapshot_retries";
  Trace.instant ~cat:"snapshot" "retry" ro.epoch;
  ro.active <- false;
  raise Retry

(* Slide the epoch forward far enough to admit a stripe at version [need].
   Fresh-epoch snapshots extend to the current clock; pinned snapshots
   first wait for the watermark to reach [need] (durability always catches
   up — the group-commit deadline bounds the wait), then extend to it.
   Extension revalidates the read-set; [Skip_snapshot_validate] (modelled
   by [validate_ext = false]) is the seeded bug that omits exactly this
   step and lets a reader carry values from two different epochs. *)
let extend ro ~need =
  Stats.incr ro.h.h_stats "snapshot_extends";
  Trace.instant ~cat:"snapshot" "extend" need;
  (match ro.pin with
  | None -> ()
  | Some w ->
    if w () < need then
      Sched.wait_until ~label:"snapshot durable pin" (fun () -> w () >= need));
  let target =
    match ro.pin with
    | None -> ro.h.h_clock ()
    | Some w -> min (w ()) (ro.h.h_clock ())
  in
  if ro.validate_ext && not (validate ro) then restart ro;
  if target > ro.epoch then ro.epoch <- target

let read ro addr =
  if not ro.active then invalid_arg "Snapshot.read: snapshot not active";
  Sched.advance ro.h.h_costs.Tm_intf.read_cost;
  Stats.incr ro.h.h_stats "snapshot_reads";
  Trace.sample ~cat:"snapshot" "read" ro.h.h_costs.Tm_intf.read_cost;
  let stripe = Lock_table.stripe_of_addr ro.h.h_locks addr in
  let rec go () =
    match Lock_table.read_word ro.h.h_locks stripe with
    | Lock_table.Owned _ ->
      (* A writer holds the stripe (store may carry uncommitted data).
         Wait for the release — bounded by that writer's commit/abort —
         without touching the lock word ourselves. *)
      Sched.wait_until ~label:"snapshot stripe owned" (fun () ->
          match Lock_table.read_word ro.h.h_locks stripe with
          | Lock_table.Owned _ -> false
          | Lock_table.Version _ -> true);
      go ()
    | Lock_table.Version v when v <= ro.epoch ->
      let value = ro.h.h_load addr in
      (* The load may yield (paged shadow access costs, swap-in waits), so
         re-check the lock word afterwards: if a writer slipped in, the
         loaded value may be newer than the recorded version — retry the
         read rather than record a lie. *)
      (match Lock_table.read_word ro.h.h_locks stripe with
      | Lock_table.Version v2 when v2 = v ->
        ro.reads <- (stripe, v) :: ro.reads;
        value
      | _ -> go ())
    | Lock_table.Version v ->
      extend ro ~need:v;
      (* Extension may have yielded (durable pin): re-examine the stripe. *)
      go ()
  in
  go ()

let abort ro =
  ro.active <- false;
  raise Tm_intf.User_abort

let finish ro =
  (* No validation, no ID draw: the per-read invariant already makes the
     read-set a consistent cut at [epoch]. *)
  ro.active <- false;
  ro.epoch

let run ?pin ?validate_extension ?(on_retry = fun () -> ()) h f =
  let rec attempt round =
    Trace.span_begin ~cat:"snapshot" "ro";
    let ro = begin_ro ?pin ?validate_extension h in
    match f ro with
    | result ->
      let final = finish ro in
      Stats.incr h.h_stats "snapshot_commits";
      Trace.span_end ~cat:"snapshot" "ro";
      Some (result, final)
    | exception Retry ->
      on_retry ();
      Trace.span_end ~cat:"snapshot" "ro";
      (* Same randomized capped backoff as the write path. *)
      let cap = min 4096 (64 lsl min round 10) in
      let pause = 64 + Rng.int h.h_rng cap in
      Stats.incr h.h_stats "backoffs";
      Stats.add h.h_stats "backoff_cycles" pause;
      Sched.advance pause;
      attempt (round + 1)
    | exception Tm_intf.User_abort ->
      ro.active <- false;
      on_retry ();
      Trace.span_end ~cat:"snapshot" "ro";
      None
    | exception e ->
      ro.active <- false;
      on_retry ();
      Trace.span_end ~cat:"snapshot" "ro";
      raise e
  in
  attempt 0

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Trace = Dudetm_trace.Trace

exception Retry
exception Capacity

let line_of_addr addr = addr lsr 6

type tx = {
  tm : t;
  uid : int;
  mutable doomed : bool;
  reads : (int, unit) Hashtbl.t;  (* line numbers *)
  wbuf : (int, int64) Hashtbl.t;  (* addr -> buffered value *)
  wlines : (int, unit) Hashtbl.t;
  worder : int list ref;  (* write addresses, oldest first, for replay order *)
  fallback : bool;
  mutable undo : (int * int64) list;  (* fallback mode only *)
  mutable nwrites : int;
  mutable active : bool;
}

and t = {
  store : Tm_intf.store;
  costs : Tm_intf.costs;
  capacity_lines : int;
  read_capacity_lines : int;
  max_retries : int;
  tid_conflicts : bool;
  mutable clock : int;
  mutable next_uid : int;
  running : (int, tx) Hashtbl.t;  (* uid -> active hardware txs *)
  mutable lock_owner : int;  (* 0 = fallback lock free *)
  stats : Stats.t;
  rng : Rng.t;
}

let create_htm ?(costs = Tm_intf.default_costs) ?(seed = 42) ?(capacity_lines = 448)
    ?(read_capacity_lines = 8192) ?(max_retries = 5) ?(tid_conflicts = false) store =
  {
    store;
    costs;
    capacity_lines;
    read_capacity_lines;
    max_retries;
    tid_conflicts;
    clock = 0;
    next_uid = 1;
    running = Hashtbl.create 16;
    lock_owner = 0;
    stats = Stats.create ();
    rng = Rng.create seed;
  }

let create ?costs ?seed store = create_htm ?costs ?seed store

(* Hardware transactional reads cost nearly the same as instrumented ones
   (the memory access dominates); writes shed the software write barrier.
   Derived from the software costs so STM/HTM comparisons share one
   calibration. *)
let hw_read_cost c = max 1 (c.Tm_intf.read_cost - 5)
let hw_write_cost c = max 2 (c.Tm_intf.write_cost / 5)

let fresh_tx tm ~fallback =
  let uid = tm.next_uid in
  tm.next_uid <- uid + 1;
  let tx =
    {
      tm;
      uid;
      doomed = false;
      reads = Hashtbl.create 32;
      wbuf = Hashtbl.create 16;
      wlines = Hashtbl.create 16;
      worder = ref [];
      fallback;
      undo = [];
      nwrites = 0;
      active = true;
    }
  in
  if not fallback then Hashtbl.add tm.running uid tx;
  tx

let begin_tx tm =
  Sched.advance (max 1 (tm.costs.Tm_intf.begin_cost / 2));
  fresh_tx tm ~fallback:false

let drop tx =
  if not tx.fallback then Hashtbl.remove tx.tm.running tx.uid;
  tx.active <- false

let hw_abort tx kind =
  Stats.incr tx.tm.stats "aborts";
  Stats.incr tx.tm.stats kind;
  drop tx;
  Sched.advance tx.tm.costs.Tm_intf.abort_cost;
  raise (if kind = "capacity_aborts" then Capacity else Retry)

(* A hardware transaction subscribes to the fallback lock word at begin:
   seeing it held at any later point is a conflict, exactly as a real RTM
   transaction aborts when the lock's cache line is invalidated.  This
   closes the window where a transaction begins while the lock is being
   acquired and would otherwise miss the acquirer's doom sweep. *)
let check_doomed tx =
  if tx.doomed || tx.tm.lock_owner <> 0 then hw_abort tx "conflict_aborts"

let read tx addr =
  if not tx.active then invalid_arg "Htm.read: transaction not active";
  if tx.fallback then begin
    Sched.advance (hw_read_cost tx.tm.costs);
    tx.tm.store.Tm_intf.load addr
  end
  else begin
    Sched.advance (hw_read_cost tx.tm.costs);
    check_doomed tx;
    Stats.incr tx.tm.stats "reads";
    let line = line_of_addr addr in
    if not (Hashtbl.mem tx.reads line) then begin
      Hashtbl.add tx.reads line ();
      if Hashtbl.length tx.reads > tx.tm.read_capacity_lines then
        hw_abort tx "capacity_aborts"
    end;
    match Hashtbl.find_opt tx.wbuf addr with
    | Some v -> v
    | None -> tx.tm.store.Tm_intf.load addr
  end

let write tx addr value =
  if not tx.active then invalid_arg "Htm.write: transaction not active";
  Sched.advance (hw_write_cost tx.tm.costs);
  if tx.fallback then begin
    tx.undo <- (addr, tx.tm.store.Tm_intf.load addr) :: tx.undo;
    tx.tm.store.Tm_intf.store addr value;
    tx.nwrites <- tx.nwrites + 1
  end
  else begin
    check_doomed tx;
    Stats.incr tx.tm.stats "writes";
    let line = line_of_addr addr in
    if not (Hashtbl.mem tx.wlines line) then begin
      Hashtbl.add tx.wlines line ();
      if Hashtbl.length tx.wlines > tx.tm.capacity_lines then
        hw_abort tx "capacity_aborts"
    end;
    if not (Hashtbl.mem tx.wbuf addr) then tx.worder := addr :: !(tx.worder);
    Hashtbl.replace tx.wbuf addr value;
    tx.nwrites <- tx.nwrites + 1
  end

let user_abort tx =
  if tx.fallback then begin
    List.iter (fun (addr, v) -> tx.tm.store.Tm_intf.store addr v) tx.undo;
    tx.tm.lock_owner <- 0;
    drop tx
  end
  else drop tx;
  raise Tm_intf.User_abort

(* Doom every running hardware transaction whose footprint intersects
   [wlines]; with stock hardware ([tid_conflicts]) a committing write
   transaction also touches the shared ID counter's line, which every
   concurrent transaction is considered to have subscribed to. *)
let doom_conflicting tm ~committer ~wlines ~wrote =
  Hashtbl.iter
    (fun uid tx ->
      if uid <> committer && not tx.doomed then begin
        let hit =
          (wrote && tm.tid_conflicts)
          || Hashtbl.fold
               (fun line () acc ->
                 acc || Hashtbl.mem tx.reads line || Hashtbl.mem tx.wlines line)
               wlines false
        in
        if hit then tx.doomed <- true
      end)
    tm.running

let commit tx =
  if not tx.active then invalid_arg "Htm.commit: transaction not active";
  let tm = tx.tm in
  if tx.fallback then begin
    Sched.advance tm.costs.Tm_intf.commit_base;
    let tid = if tx.nwrites = 0 then 0 else (tm.clock <- tm.clock + 1; tm.clock) in
    tm.lock_owner <- 0;
    drop tx;
    if tx.nwrites = 0 then Stats.incr tm.stats "read_only_commits"
    else Stats.incr tm.stats "commits";
    tid
  end
  else begin
    Sched.advance (max 1 (tm.costs.Tm_intf.commit_base / 2));
    check_doomed tx;
    if tx.nwrites = 0 then begin
      Stats.incr tm.stats "read_only_commits";
      drop tx;
      0
    end
    else begin
      (* Atomic commit point: apply the buffer, doom overlapping peers, and
         draw the transaction ID — no yield points in between. *)
      List.iter
        (fun addr -> tm.store.Tm_intf.store addr (Hashtbl.find tx.wbuf addr))
        (List.rev !(tx.worder));
      doom_conflicting tm ~committer:tx.uid ~wlines:tx.wlines ~wrote:true;
      let wv = tm.clock + 1 in
      tm.clock <- wv;
      Stats.incr tm.stats "commits";
      drop tx;
      wv
    end
  end

let run ?(on_retry = fun () -> ()) tm f =
  let run_fallback () =
    Stats.incr tm.stats "fallbacks";
    Sched.wait_until ~label:"htm fallback lock" (fun () -> tm.lock_owner = 0);
    Trace.span_begin ~cat:"tm" "fallback";
    let tx = fresh_tx tm ~fallback:true in
    tm.lock_owner <- tx.uid;
    (* Acquiring the lock aborts every running hardware transaction: they
       all subscribed to the lock word at begin. *)
    Hashtbl.iter (fun uid t -> if uid <> tx.uid then t.doomed <- true) tm.running;
    match
      let result = f tx in
      let tid = commit tx in
      (result, tid)
    with
    | pair ->
      Trace.span_end ~cat:"tm" "fallback";
      Some pair
    | exception Tm_intf.User_abort ->
      on_retry ();
      Trace.span_end ~cat:"tm" "fallback";
      None
    | exception e ->
      if tx.active then begin
        List.iter (fun (addr, v) -> tm.store.Tm_intf.store addr v) tx.undo;
        tm.lock_owner <- 0;
        drop tx
      end;
      on_retry ();
      Trace.span_end ~cat:"tm" "fallback";
      raise e
  in
  let rec attempt round =
    if round >= tm.max_retries then run_fallback ()
    else begin
      Sched.wait_until ~label:"htm begin (fallback held)" (fun () -> tm.lock_owner = 0);
      Trace.span_begin ~cat:"tm" "attempt";
      let tx = begin_tx tm in
      match
        let result = f tx in
        let tid = commit tx in
        (result, tid)
      with
      | pair ->
        Trace.span_end ~cat:"tm" "attempt";
        Some pair
      | exception Retry ->
        on_retry ();
        Trace.span_end ~cat:"tm" "attempt";
        let pause = 32 + Rng.int tm.rng (32 lsl min round 6) in
        Stats.incr tm.stats "backoffs";
        Stats.add tm.stats "backoff_cycles" pause;
        Trace.sample ~cat:"tm" "backoff" pause;
        Trace.instant ~cat:"tm" "backoff" pause;
        Sched.advance pause;
        attempt (round + 1)
      | exception Capacity ->
        on_retry ();
        Trace.span_end ~cat:"tm" "attempt";
        (* Retrying cannot help a capacity overflow: go straight to the
           lock. *)
        run_fallback ()
      | exception Tm_intf.User_abort ->
        on_retry ();
        Trace.span_end ~cat:"tm" "attempt";
        None
      | exception e ->
        if tx.active then drop tx;
        on_retry ();
        Trace.span_end ~cat:"tm" "attempt";
        raise e
    end
  in
  attempt 0

let last_tid tm = tm.clock

let stats tm = tm.stats

(* --- Read-only snapshot fast path --- *)

(* A read-only HTM transaction is an ordinary hardware transaction that
   happens to write nothing: conflict detection (dooming) gives it a
   consistent view, and the commit skips the ID draw on both the hardware
   and the fallback path, so it never touches the shared counter line.
   The epoch is the clock at the commit point — commit's doom check and
   the return run without yield points, so reading it here is exact. *)

type ro = tx

let run_ro ?pin ?validate_extension:_ ?on_retry tm f =
  match run ?on_retry tm f with
  | None -> None
  | Some (v, _tid) ->
    let epoch = tm.clock in
    (match pin with
    | None -> ()
    | Some w ->
      (* Durable-only mode: hold the result until the watermark covers the
         commit-point clock, so everything the transaction observed is
         crash-surviving when it returns.  Bounded by the group-commit
         deadline. *)
      if w () < epoch then
        Sched.wait_until ~label:"htm ro durable pin" (fun () -> w () >= epoch));
    Stats.incr tm.stats "snapshot_commits";
    Some (v, epoch)

let ro_read = read

let ro_epoch (tx : ro) = tx.tm.clock

let ro_abort = user_abort

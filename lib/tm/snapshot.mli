(** Read-only snapshot transactions: lock-free, log-free, persist-free.

    A snapshot transaction pins an epoch on TinySTM's global version clock
    and reads the shadow store directly, validating every read against the
    versioned lock table with the same timestamp-extension rule the write
    path uses — but it acquires no locks, keeps no undo list, and draws no
    commit timestamp, so writers never see it and the persist pipeline
    never hears of it.

    Two modes:
    - {e fresh-epoch} ([pin = None]): the epoch starts at the current
      clock and extends toward it — reads see the newest committed state,
      which may not be durable yet.
    - {e durable-only} ([pin = Some watermark], DUMBO-style): the epoch
      may never exceed the watermark; a read observing a newer stripe
      waits for durability to catch up.  Every returned value was written
      by a transaction at or below the watermark at the moment of the
      read, i.e. state that survives a power cut — possibly stale.

    The module is expressed over a {!handle} rather than a concrete TM so
    the lock-table/clock plumbing stays in one place;
    [Tinystm.snapshot_handle] builds one. *)

exception Retry
(** Internal: the snapshot could not extend (a concurrent commit
    invalidated the read-set).  Absorbed by {!run}, which restarts the
    body at a fresh epoch after a randomized backoff. *)

type handle = {
  h_load : int -> int64;  (** direct word load from the shadow store *)
  h_locks : Lock_table.t;
  h_clock : unit -> int;  (** the global version clock *)
  h_costs : Tm_intf.costs;
  h_stats : Dudetm_sim.Stats.t;
  h_rng : Dudetm_sim.Rng.t;
}

type ro
(** A running read-only snapshot. *)

val begin_ro : ?pin:(unit -> int) -> ?validate_extension:bool -> handle -> ro
(** Open a snapshot.  [pin] selects durable-only mode; [validate_extension]
    (default [true]) exists only so the seeded [Skip_snapshot_validate]
    mutant can omit the read-set revalidation on extension. *)

val read : ro -> int -> int64
(** Read a word at the snapshot's epoch, extending it (validated) when the
    word committed later.  May raise {!Retry} — use {!run}. *)

val epoch : ro -> int
(** Current epoch; monotone within a snapshot. *)

val read_set_size : ro -> int

val abort : ro -> 'a
(** Cancel the snapshot; raises {!Tm_intf.User_abort}. *)

val finish : ro -> int
(** Close the snapshot and return its final epoch.  No validation and no
    ID draw: the per-read invariant already makes the read-set a
    consistent cut at the epoch. *)

val run :
  ?pin:(unit -> int) ->
  ?validate_extension:bool ->
  ?on_retry:(unit -> unit) ->
  handle ->
  (ro -> 'a) ->
  ('a * int) option
(** Run a snapshot body with automatic restart on failed extension.
    Returns [Some (result, final_epoch)], or [None] if the body called
    {!abort}. *)

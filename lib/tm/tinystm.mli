(** Word-based, time-based software transactional memory.

    A from-scratch reimplementation of the TinySTM design the paper builds
    on (Felber, Fetzer, Marlier, Riegel): encounter-time locking over a
    striped versioned-lock array, a global version clock, write-through
    access with a volatile undo list (the access mode DudeTM selects,
    Section 4.1), timestamp snapshots with extension on read, and commit-time
    read-set validation.

    The transaction ID returned by {!commit} is the commit timestamp drawn
    from the global clock, so IDs of write transactions are contiguous and
    conflicting transactions' ID order matches their lock hand-off order —
    the invariant DudeTM's Reproduce step replays by. *)

include Tm_intf.S

val create_with_bits :
  ?costs:Tm_intf.costs -> ?seed:int -> bits:int -> Tm_intf.store -> t
(** Like [create], with an explicit lock-table size of [2^bits] stripes
    (used by the lock-table ablation benchmark). *)

val clock : t -> int
(** Current value of the global version clock (equals {!last_tid}). *)

val lock_table : t -> Lock_table.t
(** Exposed for white-box tests. *)

val snapshot_handle : t -> Snapshot.handle
(** The clock/lock-table plumbing {!Snapshot} snapshots read through;
    [run_ro] is [Snapshot.run (snapshot_handle tm)].  Exposed for the
    snapshot property tests. *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Trace = Dudetm_trace.Trace

exception Retry

type t = {
  store : Tm_intf.store;
  locks : Lock_table.t;
  costs : Tm_intf.costs;
  redirect_cost : int;
  mutable clock : int;
  mutable next_uid : int;
  stats : Stats.t;
  rng : Rng.t;
}

type tx = {
  tm : t;
  uid : int;
  mutable rv : int;
  mutable reads : (int * int) list;  (* (stripe, observed version) *)
  wbuf : (int, int64) Hashtbl.t;  (* addr -> buffered value *)
  mutable worder : int list;  (* write addresses, newest first *)
  mutable active : bool;
}

let create_wb ?(costs = Tm_intf.default_costs) ?(seed = 42) ?(redirect_cost = 18) store =
  {
    store;
    locks = Lock_table.create ();
    costs;
    redirect_cost;
    clock = 0;
    next_uid = 1;
    stats = Stats.create ();
    rng = Rng.create seed;
  }

let create ?costs ?seed store = create_wb ?costs ?seed store

let begin_tx tm =
  Sched.advance tm.costs.Tm_intf.begin_cost;
  let uid = tm.next_uid in
  tm.next_uid <- uid + 1;
  { tm; uid; rv = tm.clock; reads = []; wbuf = Hashtbl.create 8; worder = []; active = true }

let conflict tx =
  Stats.incr tx.tm.stats "aborts";
  tx.active <- false;
  Sched.advance tx.tm.costs.Tm_intf.abort_cost;
  raise Retry

(* Validation before locks are held: every read-set stripe must still carry
   the observed version (owned stripes appear only inside commit, which
   validates separately). *)
let validate tx =
  List.for_all
    (fun (stripe, v) ->
      match Lock_table.read_word tx.tm.locks stripe with
      | Lock_table.Version cur -> cur = v
      | Lock_table.Owned uid -> uid = tx.uid)
    tx.reads

let read tx addr =
  if not tx.active then invalid_arg "Tinystm_wb.read: transaction not active";
  Sched.advance (tx.tm.costs.Tm_intf.read_cost + tx.tm.redirect_cost);
  Stats.incr tx.tm.stats "reads";
  (* Update redirection: write-back access must probe the write set on
     every read. *)
  match Hashtbl.find_opt tx.wbuf addr with
  | Some v -> v
  | None -> (
    let stripe = Lock_table.stripe_of_addr tx.tm.locks addr in
    match Lock_table.read_word tx.tm.locks stripe with
    | Lock_table.Owned _ -> conflict tx
    | Lock_table.Version v ->
      let value = tx.tm.store.Tm_intf.load addr in
      if v > tx.rv then
        if validate tx then tx.rv <- tx.tm.clock else conflict tx;
      tx.reads <- (stripe, v) :: tx.reads;
      value)

let write tx addr value =
  if not tx.active then invalid_arg "Tinystm_wb.write: transaction not active";
  Sched.advance tx.tm.costs.Tm_intf.write_cost;
  Stats.incr tx.tm.stats "writes";
  if not (Hashtbl.mem tx.wbuf addr) then tx.worder <- addr :: tx.worder;
  Hashtbl.replace tx.wbuf addr value

let user_abort tx =
  (* Nothing to undo: the store was never touched. *)
  tx.active <- false;
  raise Tm_intf.User_abort

let commit tx =
  if not tx.active then invalid_arg "Tinystm_wb.commit: transaction not active";
  let tm = tx.tm in
  let n = List.length tx.worder in
  Sched.advance (tm.costs.Tm_intf.commit_base + (tm.costs.Tm_intf.commit_per_write * n));
  if n = 0 then begin
    Stats.incr tm.stats "read_only_commits";
    tx.active <- false;
    0
  end
  else begin
    (* Commit-time locking over the write set, in one atomic step (no
       yield points below), so transaction IDs stay contiguous. *)
    let stripes =
      List.sort_uniq compare (List.map (Lock_table.stripe_of_addr tm.locks) tx.worder)
    in
    let acquired = ref [] in
    let ok =
      List.for_all
        (fun stripe ->
          match Lock_table.acquire tm.locks ~stripe ~uid:tx.uid with
          | Some prev ->
            acquired := (stripe, prev) :: !acquired;
            true
          | None -> false)
        stripes
    in
    (* Validate against the pre-acquisition versions: a stripe we now own
       may have been committed by a peer after we read it. *)
    let valid =
      ok
      && List.for_all
           (fun (stripe, v) ->
             match List.assoc_opt stripe !acquired with
             | Some prev -> prev = v
             | None -> (
               match Lock_table.read_word tm.locks stripe with
               | Lock_table.Version cur -> cur = v
               | Lock_table.Owned _ -> false))
           tx.reads
    in
    if not valid then begin
      List.iter
        (fun (stripe, prev) -> Lock_table.release_to tm.locks ~stripe ~version:prev)
        !acquired;
      conflict tx
    end;
    List.iter
      (fun addr -> tm.store.Tm_intf.store addr (Hashtbl.find tx.wbuf addr))
      (List.rev tx.worder);
    let wv = tm.clock + 1 in
    tm.clock <- wv;
    List.iter
      (fun (stripe, _) -> Lock_table.release_to tm.locks ~stripe ~version:wv)
      !acquired;
    Stats.incr tm.stats "commits";
    tx.active <- false;
    wv
  end

let run ?(on_retry = fun () -> ()) tm f =
  let rec attempt round =
    Trace.span_begin ~cat:"tm" "attempt";
    let tx = begin_tx tm in
    match
      let result = f tx in
      let tid = commit tx in
      (result, tid)
    with
    | pair ->
      Trace.span_end ~cat:"tm" "attempt";
      Some pair
    | exception Retry ->
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      let cap = min 4096 (64 lsl min round 10) in
      let pause = 64 + Rng.int tm.rng cap in
      Stats.incr tm.stats "backoffs";
      Stats.add tm.stats "backoff_cycles" pause;
      Trace.sample ~cat:"tm" "backoff" pause;
      Trace.instant ~cat:"tm" "backoff" pause;
      Sched.advance pause;
      attempt (round + 1)
    | exception Tm_intf.User_abort ->
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      None
    | exception e ->
      tx.active <- false;
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      raise e
  in
  attempt 0

let last_tid tm = tm.clock

let stats tm = tm.stats

(* --- Read-only snapshot fast path (lib/tm/snapshot.ml) ---

   Write-back commit still publishes through the same versioned lock
   table and clock, so the snapshot reader drops in unchanged: an owned
   stripe means a commit is mid-publication and the reader waits it out. *)

type ro = Snapshot.ro

let snapshot_handle tm =
  {
    Snapshot.h_load = tm.store.Tm_intf.load;
    h_locks = tm.locks;
    h_clock = (fun () -> tm.clock);
    h_costs = tm.costs;
    h_stats = tm.stats;
    h_rng = tm.rng;
  }

let run_ro ?pin ?validate_extension ?on_retry tm f =
  Snapshot.run ?pin ?validate_extension ?on_retry (snapshot_handle tm) f

let ro_read = Snapshot.read

let ro_epoch = Snapshot.epoch

let ro_abort = Snapshot.abort

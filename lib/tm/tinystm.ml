module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Trace = Dudetm_trace.Trace

exception Retry

type t = {
  store : Tm_intf.store;
  locks : Lock_table.t;
  costs : Tm_intf.costs;
  mutable clock : int;
  mutable next_uid : int;
  stats : Stats.t;
  rng : Rng.t;
}

type tx = {
  tm : t;
  uid : int;
  mutable rv : int;  (* snapshot (read version) *)
  mutable reads : (int * int) list;  (* (stripe, observed version) *)
  mutable acquired : int list;  (* stripes in acquisition order *)
  owned : (int, int) Hashtbl.t;  (* stripe -> pre-acquisition version *)
  mutable undo : (int * int64) list;  (* (addr, old value), newest first *)
  mutable nwrites : int;
  mutable active : bool;
}

let create_with_bits ?(costs = Tm_intf.default_costs) ?(seed = 42) ~bits store =
  {
    store;
    locks = Lock_table.create ~bits ();
    costs;
    clock = 0;
    next_uid = 1;
    stats = Stats.create ();
    rng = Rng.create seed;
  }

let create ?costs ?seed store = create_with_bits ?costs ?seed ~bits:20 store

let begin_tx tm =
  Sched.advance tm.costs.Tm_intf.begin_cost;
  let uid = tm.next_uid in
  tm.next_uid <- uid + 1;
  {
    tm;
    uid;
    rv = tm.clock;
    reads = [];
    acquired = [];
    owned = Hashtbl.create 8;
    undo = [];
    nwrites = 0;
    active = true;
  }

(* Restore shadow words newest-first (so the oldest value of a
   multiply-written address lands last) and hand every owned stripe back at
   its pre-acquisition version.  Runs atomically: no yield points inside. *)
let rollback tx =
  List.iter (fun (addr, v) -> tx.tm.store.Tm_intf.store addr v) tx.undo;
  List.iter
    (fun stripe ->
      let version = Hashtbl.find tx.owned stripe in
      Lock_table.release_to tx.tm.locks ~stripe ~version)
    tx.acquired;
  tx.active <- false

let conflict tx =
  Stats.incr tx.tm.stats "aborts";
  rollback tx;
  Sched.advance tx.tm.costs.Tm_intf.abort_cost;
  raise Retry

(* A read-set entry is still valid if its stripe carries the version we
   observed, or we own it and its saved pre-acquisition version matches. *)
let validate tx =
  List.for_all
    (fun (stripe, v) ->
      match Lock_table.read_word tx.tm.locks stripe with
      | Lock_table.Version cur -> cur = v
      | Lock_table.Owned uid ->
        uid = tx.uid && (match Hashtbl.find_opt tx.owned stripe with
                        | Some prev -> prev = v
                        | None -> false))
    tx.reads

let read tx addr =
  if not tx.active then invalid_arg "Tinystm.read: transaction not active";
  Sched.advance tx.tm.costs.Tm_intf.read_cost;
  Stats.incr tx.tm.stats "reads";
  let stripe = Lock_table.stripe_of_addr tx.tm.locks addr in
  match Lock_table.read_word tx.tm.locks stripe with
  | Lock_table.Owned uid when uid = tx.uid -> tx.tm.store.Tm_intf.load addr
  | Lock_table.Owned _ -> conflict tx
  | Lock_table.Version v ->
    let value = tx.tm.store.Tm_intf.load addr in
    if v > tx.rv then
      (* Snapshot extension: the word committed after our snapshot; if the
         rest of the read set is untouched we may slide the snapshot
         forward instead of aborting. *)
      if validate tx then tx.rv <- tx.tm.clock else conflict tx;
    tx.reads <- (stripe, v) :: tx.reads;
    value

let write tx addr value =
  if not tx.active then invalid_arg "Tinystm.write: transaction not active";
  Sched.advance tx.tm.costs.Tm_intf.write_cost;
  Stats.incr tx.tm.stats "writes";
  let stripe = Lock_table.stripe_of_addr tx.tm.locks addr in
  (match Lock_table.read_word tx.tm.locks stripe with
  | Lock_table.Owned uid when uid = tx.uid -> ()
  | Lock_table.Owned _ -> conflict tx
  | Lock_table.Version _ -> (
    match Lock_table.acquire tx.tm.locks ~stripe ~uid:tx.uid with
    | Some prev ->
      Hashtbl.add tx.owned stripe prev;
      tx.acquired <- stripe :: tx.acquired
    | None -> conflict tx));
  tx.undo <- (addr, tx.tm.store.Tm_intf.load addr) :: tx.undo;
  tx.tm.store.Tm_intf.store addr value;
  tx.nwrites <- tx.nwrites + 1

let user_abort tx =
  rollback tx;
  raise Tm_intf.User_abort

let commit tx =
  if not tx.active then invalid_arg "Tinystm.commit: transaction not active";
  Sched.advance
    (tx.tm.costs.Tm_intf.commit_base + (tx.tm.costs.Tm_intf.commit_per_write * tx.nwrites));
  if tx.nwrites = 0 then begin
    (* Read-only fast path: every read was consistent with snapshot [rv]. *)
    Stats.incr tx.tm.stats "read_only_commits";
    tx.active <- false;
    0
  end
  else if not (validate tx) then conflict tx
  else begin
    (* Validation, clock bump and lock release form one atomic step (no
       yield points), so write-transaction IDs are contiguous. *)
    let wv = tx.tm.clock + 1 in
    tx.tm.clock <- wv;
    List.iter
      (fun stripe -> Lock_table.release_to tx.tm.locks ~stripe ~version:wv)
      tx.acquired;
    Stats.incr tx.tm.stats "commits";
    tx.active <- false;
    wv
  end

let run ?(on_retry = fun () -> ()) tm f =
  let rec attempt round =
    Trace.span_begin ~cat:"tm" "attempt";
    let tx = begin_tx tm in
    match
      let result = f tx in
      let tid = commit tx in
      (result, tid)
    with
    | pair ->
      Trace.span_end ~cat:"tm" "attempt";
      Some pair
    | exception Retry ->
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      (* Randomized exponential backoff, capped: the standard STM recipe. *)
      let cap = min 4096 (64 lsl min round 10) in
      let pause = 64 + Rng.int tm.rng cap in
      Stats.incr tm.stats "backoffs";
      Stats.add tm.stats "backoff_cycles" pause;
      Trace.sample ~cat:"tm" "backoff" pause;
      Trace.instant ~cat:"tm" "backoff" pause;
      Sched.advance pause;
      attempt (round + 1)
    | exception Tm_intf.User_abort ->
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      None
    | exception e ->
      if tx.active then rollback tx;
      on_retry ();
      Trace.span_end ~cat:"tm" "attempt";
      raise e
  in
  attempt 0

let last_tid tm = tm.clock

let clock = last_tid

let stats tm = tm.stats

let lock_table tm = tm.locks

(* --- Read-only snapshot fast path (lib/tm/snapshot.ml) --- *)

type ro = Snapshot.ro

let snapshot_handle tm =
  {
    Snapshot.h_load = tm.store.Tm_intf.load;
    h_locks = tm.locks;
    h_clock = (fun () -> tm.clock);
    h_costs = tm.costs;
    h_stats = tm.stats;
    h_rng = tm.rng;
  }

let run_ro ?pin ?validate_extension ?on_retry tm f =
  Snapshot.run ?pin ?validate_extension ?on_retry (snapshot_handle tm) f

let ro_read = Snapshot.read

let ro_epoch = Snapshot.epoch

let ro_abort = Snapshot.abort

module Mem = Dudetm_nvm.Mem
module Stats = Dudetm_sim.Stats
module Sched = Dudetm_sim.Sched
module Tm_intf = Dudetm_tm.Tm_intf
module Alloc = Dudetm_core.Alloc
module Trace = Dudetm_trace.Trace

exception Volatile_oom

module Engine (Tm : Tm_intf.S) = struct
  let make ~name ~heap_size ~root_size ~nthreads ~tm_create =
    let mem = Mem.create heap_size in
    let tm = tm_create { Tm_intf.load = Mem.get_u64 mem; store = Mem.set_u64 mem } in
    let allocator = Alloc.create ~base:root_size ~size:(heap_size - root_size) in
    let atomically : 'a. thread:int -> ?wset:int list -> (Ptm_intf.tx -> 'a) -> ('a * int) option =
      fun ~thread:_ ?wset:_ f ->
        let allocs = ref [] in
        let cleanup () =
          List.iter (fun (off, len) -> Alloc.free allocator ~off ~len) !allocs;
          allocs := []
        in
        let outcome =
          Trace.span ~cat:"perform" "tx" @@ fun () ->
          Tm.run ~on_retry:cleanup tm (fun tm_tx ->
              let tx =
                {
                  Ptm_intf.read = Tm.read tm_tx;
                  write = Tm.write tm_tx;
                  abort = (fun () -> Tm.user_abort tm_tx);
                  pmalloc =
                    (fun n ->
                      Sched.advance 80;
                      match Alloc.alloc allocator n with
                      | None -> raise Volatile_oom
                      | Some off ->
                        allocs := (off, n) :: !allocs;
                        Tm.write tm_tx off 0L;
                        off);
                  pfree = (fun ~off ~len -> Alloc.free allocator ~off ~len);
                }
              in
              f tx)
        in
        allocs := [];
        outcome
    in
    (* Snapshot fast path over the same TM: no durability, so the
       [durable] pin is meaningless here and ignored. *)
    let atomically_ro : 'a. durable:bool -> thread:int -> (Ptm_intf.tx -> 'a) -> ('a * int) option =
      fun ~durable:_ ~thread:_ f ->
        Trace.span ~cat:"perform" "ro_tx" @@ fun () ->
        Tm.run_ro tm (fun ro ->
            f
              {
                Ptm_intf.read = Tm.ro_read ro;
                write = (fun _ _ -> raise Tm_intf.Read_only_violation);
                abort = (fun () -> Tm.ro_abort ro);
                pmalloc = (fun _ -> raise Tm_intf.Read_only_violation);
                pfree = (fun ~off:_ ~len:_ -> raise Tm_intf.Read_only_violation);
              })
    in
    {
      Ptm_intf.name;
      requires_static = false;
      nthreads;
      root_base = 0;
      atomically;
      atomically_ro;
      peek = Mem.get_u64 mem;
      durable_id = (fun () -> Tm.last_tid tm);
      last_tid = (fun () -> Tm.last_tid tm);
      start = (fun () -> ());
      drain = (fun () -> ());
      stop = (fun () -> ());
      nvm = None;
      counters = (fun () -> List.map (fun (k, v) -> ("tm." ^ k, v)) (Stats.to_list (Tm.stats tm)));
      prealloc = None;
    }
end

module Stm_engine = Engine (Dudetm_tm.Tinystm)
module Htm_engine = Engine (Dudetm_tm.Htm)

let ptm ?(name = "Volatile-STM") ?(heap_size = 16 * 1024 * 1024) ?(root_size = 4096)
    ?(nthreads = 4) ?(tm_costs = Tm_intf.default_costs) ?(seed = 42) () =
  Stm_engine.make ~name ~heap_size ~root_size ~nthreads
    ~tm_create:(Dudetm_tm.Tinystm.create ~costs:tm_costs ~seed)

let ptm_htm ?(name = "Volatile-HTM") ?(heap_size = 16 * 1024 * 1024) ?(root_size = 4096)
    ?(nthreads = 4) ?(tm_costs = Tm_intf.default_costs) ?(seed = 42) ?(tid_conflicts = false)
    () =
  Htm_engine.make ~name ~heap_size ~root_size ~nthreads
    ~tm_create:(Dudetm_tm.Htm.create_htm ~costs:tm_costs ~seed ~tid_conflicts)

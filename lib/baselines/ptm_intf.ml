(** First-class interface shared by every durable-transaction system in the
    evaluation (DudeTM in its modes, Volatile-STM, Mnemosyne, NVML), so the
    workloads and the benchmark harness are written once.

    Mirrors the paper's five-call API plus persistent allocation.  Systems
    that only support {e static} transactions (NVML) set [requires_static]
    and expect the declared write set via [?wset]; the others ignore it. *)

exception Aborted
(** Raised by [tx.abort]; absorbed by [atomically], which returns [None]. *)

type tx = {
  read : int -> int64;
  write : int -> int64 -> unit;
  abort : unit -> unit;  (** raises {!Aborted}; never returns *)
  pmalloc : int -> int;
  pfree : off:int -> len:int -> unit;
}

type t = {
  name : string;
  requires_static : bool;
  nthreads : int;
  root_base : int;
  atomically : 'a. thread:int -> ?wset:int list -> (tx -> 'a) -> ('a * int) option;
      (** [Some (result, tid)] on commit ([tid = 0] when the system has no
          meaningful transaction IDs or the transaction was read-only);
          [None] when the body called [abort]. *)
  atomically_ro : 'a. durable:bool -> thread:int -> (tx -> 'a) -> ('a * int) option;
      (** Read-only snapshot transaction: lock-free, log-free,
          persist-free where the system supports it (DudeTM and
          Volatile-STM take the snapshot fast path; Mnemosyne and NVML
          have no read-only mode and delegate to [atomically], so they
          pay their full commit cost).  [Some (result, epoch)] with the
          snapshot epoch; [None] when the body called [abort].  On
          fast-path systems, calling [tx.write]/[tx.pmalloc]/[tx.pfree]
          raises the system's read-only violation.  [durable] asks for
          durable-only reads (epoch pinned at the durable watermark);
          volatile systems ignore it. *)
  peek : int -> int64;
      (** Non-transactional read of the current (volatile) data image; used
          by static-transaction planning and by test assertions. *)
  durable_id : unit -> int;
  last_tid : unit -> int;
  start : unit -> unit;  (** spawn any background threads (inside Sched.run) *)
  drain : unit -> unit;  (** wait until everything committed is durable *)
  stop : unit -> unit;
  nvm : Dudetm_nvm.Nvm.t option;  (** for NVM-traffic accounting; [None] for Volatile-STM *)
  counters : unit -> (string * int) list;
      (** Merged system-specific statistics (TM aborts, log entries, ...). *)
  prealloc : (int -> int) option;
      (** Static-transaction systems only: allocate persistent memory
          {e outside} a transaction, so the addresses can be declared in the
          write set of the transaction that initializes them. *)
}

module Nvm = Dudetm_nvm.Nvm
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Lock_table = Dudetm_tm.Lock_table
module Tm_intf = Dudetm_tm.Tm_intf
module Alloc = Dudetm_core.Alloc
module Trace = Dudetm_trace.Trace

type config = {
  heap_size : int;
  root_size : int;
  nthreads : int;
  pmem : Dudetm_nvm.Pmem_config.t;
  log_size : int;
  tm_costs : Tm_intf.costs;
  instrument_cost : int;
  redirect_cost : int;
  clflush_penalty : int;
  seed : int;
}

let default_config =
  {
    heap_size = 16 * 1024 * 1024;
    root_size = 4096;
    nthreads = 4;
    pmem = Dudetm_nvm.Pmem_config.default;
    log_size = 1 lsl 20;
    tm_costs = Tm_intf.default_costs;
    instrument_cost = 140;
    redirect_cost = 40;
    clflush_penalty = 180;
    seed = 42;
  }

exception Retry

type t = {
  cfg : config;
  nvm : Nvm.t;
  locks : Lock_table.t;
  mutable clock : int;
  mutable next_uid : int;
  allocator : Alloc.t;
  log_cursor : int array;  (* bytes used in each thread's log region *)
  dirty_data : (int, unit) Hashtbl.t;  (* heap words updated since last truncation *)
  (* The version clock advances when a commit {e starts} (so concurrent
     committers draw distinct versions), but a transaction is only durable
     once its record's commit mark is sealed.  [durable] is the largest
     version with every version at or below it sealed — reporting the raw
     clock instead loses acknowledged transactions when a crash lands
     between the clock bump and the seal (found by the systematic crash
     checker, lib/check). *)
  mutable durable : int;
  sealed : (int, unit) Hashtbl.t;  (* versions sealed but > durable *)
  stats : Stats.t;
  rng : Rng.t;
}

let note_sealed t wv =
  Hashtbl.replace t.sealed wv ();
  while Hashtbl.mem t.sealed (t.durable + 1) do
    Hashtbl.remove t.sealed (t.durable + 1);
    t.durable <- t.durable + 1
  done

type mtx = {
  m : t;
  thread : int;
  uid : int;
  mutable rv : int;
  mutable reads : (int * int) list;
  wbuf : (int, int64) Hashtbl.t;
  mutable worder : int list;  (* newest first *)
  mutable allocs : (int * int) list;
}

let log_base t thread = t.cfg.heap_size + (thread * t.cfg.log_size)

let create cfg =
  let size = cfg.heap_size + (cfg.nthreads * cfg.log_size) in
  let line = cfg.pmem.Dudetm_nvm.Pmem_config.line_size in
  let size = (size + line - 1) / line * line in
  {
    cfg;
    nvm = Nvm.create cfg.pmem ~size;
    locks = Lock_table.create ();
    clock = 0;
    next_uid = 1;
    allocator = Alloc.create ~base:cfg.root_size ~size:(cfg.heap_size - cfg.root_size);
    log_cursor = Array.make cfg.nthreads 0;
    dirty_data = Hashtbl.create 4096;
    durable = 0;
    sealed = Hashtbl.create 64;
    stats = Stats.create ();
    rng = Rng.create cfg.seed;
  }

let validate tx =
  List.for_all
    (fun (stripe, v) ->
      match Lock_table.read_word tx.m.locks stripe with
      | Lock_table.Version cur -> cur = v
      | Lock_table.Owned uid -> uid = tx.uid)
    tx.reads

let conflict tx =
  Stats.incr tx.m.stats "aborts";
  Sched.advance tx.m.cfg.tm_costs.Tm_intf.abort_cost;
  raise Retry

let mread tx addr =
  Sched.advance (tx.m.cfg.tm_costs.Tm_intf.read_cost + tx.m.cfg.instrument_cost);
  Stats.incr tx.m.stats "reads";
  (* Update redirection: every read first probes the write set. *)
  Sched.advance tx.m.cfg.redirect_cost;
  match Hashtbl.find_opt tx.wbuf addr with
  | Some v -> v
  | None -> (
    let stripe = Lock_table.stripe_of_addr tx.m.locks addr in
    match Lock_table.read_word tx.m.locks stripe with
    | Lock_table.Owned _ -> conflict tx
    | Lock_table.Version v ->
      let value = Nvm.load_u64 tx.m.nvm addr in
      if v > tx.rv then
        if validate tx then tx.rv <- tx.m.clock else conflict tx;
      tx.reads <- (stripe, v) :: tx.reads;
      value)

let mwrite tx addr value =
  Sched.advance (tx.m.cfg.tm_costs.Tm_intf.write_cost + tx.m.cfg.instrument_cost);
  Stats.incr tx.m.stats "writes";
  if not (Hashtbl.mem tx.wbuf addr) then tx.worder <- addr :: tx.worder;
  Hashtbl.replace tx.wbuf addr value

(* Redo-log record: 16 bytes per (addr, value) pair, plus a 16-byte
   header/commit mark.  When the region fills up we must make the in-place
   data durable and truncate. *)
let truncate_log t thread =
  let ranges = Hashtbl.fold (fun addr () acc -> (addr, 8) :: acc) t.dirty_data [] in
  Nvm.persist_ranges t.nvm ranges;
  Hashtbl.reset t.dirty_data;
  (* Make the recycled records unreachable before reusing the region: a
     zeroed first header stops the recovery scan. *)
  Nvm.store_u64 t.nvm (log_base t thread) 0L;
  Nvm.persist t.nvm ~off:(log_base t thread) ~len:8;
  t.log_cursor.(thread) <- 0;
  Stats.incr t.stats "log_truncations";
  Trace.instant ~cat:"persist" "truncate" thread

let commit tx =
  let t = tx.m in
  let n = List.length tx.worder in
  Sched.advance (t.cfg.tm_costs.Tm_intf.commit_base + (t.cfg.tm_costs.Tm_intf.commit_per_write * n));
  if n = 0 then begin
    Stats.incr t.stats "read_only_commits";
    0
  end
  else begin
    (* Commit-time locking. *)
    let stripes =
      List.sort_uniq compare (List.map (Lock_table.stripe_of_addr t.locks) tx.worder)
    in
    let acquired = ref [] in
    let ok =
      List.for_all
        (fun stripe ->
          match Lock_table.acquire t.locks ~stripe ~uid:tx.uid with
          | Some prev ->
            acquired := (stripe, prev) :: !acquired;
            true
          | None -> false)
        stripes
    in
    let release_all version_of =
      List.iter
        (fun (stripe, prev) ->
          Lock_table.release_to t.locks ~stripe ~version:(version_of prev))
        !acquired
    in
    (* Commit-time validation must see through our own locks: acquisition
       replaced each stripe's version word with an ownership mark, so a
       read of a now-owned stripe is checked against the version saved at
       acquisition.  Trusting ownership alone would let a transaction that
       read a stripe, lost a race to a conflicting committer, then locked
       the stripe itself validate a stale read — a lost update (found by
       the schedule explorer, lib/check). *)
    let validate_locked () =
      List.for_all
        (fun (stripe, v) ->
          match List.assoc_opt stripe !acquired with
          | Some prev -> prev = v
          | None -> (
            match Lock_table.read_word t.locks stripe with
            | Lock_table.Version cur -> cur = v
            | Lock_table.Owned uid -> uid = tx.uid))
        tx.reads
    in
    if (not ok) || not (validate_locked ()) then begin
      release_all (fun prev -> prev);
      conflict tx
    end;
    let wv = t.clock + 1 in
    t.clock <- wv;
    (* Persist the redo log synchronously: the per-transaction stall DudeTM
       decouples away.  The span makes that stall directly comparable to
       DudeTM's off-critical-path persist.flush. *)
    Trace.span_begin ~cat:"persist" "log_persist";
    let record_bytes = 16 + (16 * n) in
    if record_bytes + 8 > t.cfg.log_size then
      invalid_arg "Mnemosyne: transaction log too large";
    if t.log_cursor.(tx.thread) + record_bytes + 8 > t.cfg.log_size then
      truncate_log t tx.thread;
    (* Record plus a zeroed tombstone header: the tombstone stops a
       recovery scan before it can reach stale records from a previous lap
       of the region. *)
    let buf = Bytes.create (record_bytes + 8) in
    (* Unsealed header: the version shifted left, commit bit clear — the
       same encoding the seal completes by setting bit 0.  Writing the raw
       version here would leave odd versions looking sealed, so a crash
       mid-record-persist could replay a torn transaction. *)
    Bytes.set_int64_le buf 0 (Int64.of_int (wv lsl 1));
    Bytes.set_int64_le buf 8 (Int64.of_int n);
    List.iteri
      (fun i addr ->
        Bytes.set_int64_le buf (16 + (16 * i)) (Int64.of_int addr);
        Bytes.set_int64_le buf (24 + (16 * i)) (Hashtbl.find tx.wbuf addr))
      tx.worder;
    Bytes.set_int64_le buf record_bytes 0L;
    let off = log_base t tx.thread + t.log_cursor.(tx.thread) in
    Nvm.store_bytes t.nvm off buf;
    Nvm.persist t.nvm ~off ~len:(record_bytes + 8);
    (* Commit mark: Mnemosyne seals the record with a second ordered
       write, so a torn record is never replayed. *)
    Nvm.store_u64 t.nvm off (Int64.of_int ((wv lsl 1) lor 1));
    Nvm.persist t.nvm ~off ~len:8;
    note_sealed t wv;
    t.log_cursor.(tx.thread) <- t.log_cursor.(tx.thread) + record_bytes;
    (* CLFLUSH invalidated the freshly written log lines: charge the
       refill penalty. *)
    Sched.advance (t.cfg.clflush_penalty * ((record_bytes + 63) / 64));
    Trace.span_end ~cat:"persist" "log_persist";
    (* Apply in place; these stores may linger in cache (the log covers
       them). *)
    List.iter
      (fun addr ->
        Nvm.store_u64 t.nvm addr (Hashtbl.find tx.wbuf addr);
        Hashtbl.replace t.dirty_data addr ())
      tx.worder;
    release_all (fun _ -> wv);
    Stats.incr t.stats "commits";
    wv
  end

let atomically_impl t ~thread f =
  Trace.span ~cat:"perform" "tx" @@ fun () ->
  let rec attempt round =
    Sched.advance t.cfg.tm_costs.Tm_intf.begin_cost;
    let uid = t.next_uid in
    t.next_uid <- uid + 1;
    let tx =
      {
        m = t;
        thread;
        uid;
        rv = t.clock;
        reads = [];
        wbuf = Hashtbl.create 16;
        worder = [];
        allocs = [];
      }
    in
    let refund () =
      List.iter (fun (off, len) -> Alloc.free t.allocator ~off ~len) tx.allocs
    in
    let ptx =
      {
        Ptm_intf.read = mread tx;
        write = mwrite tx;
        abort = (fun () -> raise Ptm_intf.Aborted);
        pmalloc =
          (fun n ->
            Sched.advance 260;
            match Alloc.alloc t.allocator n with
            | None -> failwith "Mnemosyne: out of persistent memory"
            | Some off ->
              tx.allocs <- (off, n) :: tx.allocs;
              mwrite tx off 0L;
              off);
        pfree = (fun ~off ~len -> Alloc.free t.allocator ~off ~len);
      }
    in
    match
      let result = f ptx in
      let tid = commit tx in
      (result, tid)
    with
    | pair -> Some pair
    | exception Retry ->
      refund ();
      Sched.advance (64 + Rng.int t.rng (min 4096 (64 lsl min round 10)));
      attempt (round + 1)
    | exception Ptm_intf.Aborted ->
      refund ();
      None
  in
  attempt 0

let ptm_of ?(name = "Mnemosyne") t =
  let cfg = t.cfg in
  ignore cfg;
  let atomically : 'a. thread:int -> ?wset:int list -> (Ptm_intf.tx -> 'a) -> ('a * int) option
      =
    fun ~thread ?wset:_ f -> atomically_impl t ~thread f
  in
  (* Mnemosyne has no read-only mode: a read-only transaction still runs
     the full commit (torn-bit log seal included), so snapshot reads pay
     the ordinary path. *)
  let atomically_ro : 'a. durable:bool -> thread:int -> (Ptm_intf.tx -> 'a) -> ('a * int) option
      =
    fun ~durable:_ ~thread f -> atomically_impl t ~thread f
  in
  {
    Ptm_intf.name;
    requires_static = false;
    nthreads = t.cfg.nthreads;
    root_base = 0;
    atomically;
    atomically_ro;
    peek = Nvm.load_u64 t.nvm;
    durable_id = (fun () -> t.durable);
    last_tid = (fun () -> t.clock);
    start = (fun () -> ());
    drain = (fun () -> ());
    stop = (fun () -> ());
    nvm = Some t.nvm;
    counters = (fun () -> Stats.to_list t.stats);
    prealloc = None;
  }

let ptm ?name cfg = ptm_of ?name (create cfg)

let nvm t = t.nvm

(* Crash recovery: replay every sealed redo record, in commit order across
   all per-thread logs, onto the home locations; then persist and truncate.
   A record is sealed once its header word carries the commit bit; an
   unsealed tail record is ignored (its transaction never committed). *)
let recover t =
  let records = ref [] in
  for thread = 0 to t.cfg.nthreads - 1 do
    let base = log_base t thread in
    let pos = ref 0 in
    let continue = ref true in
    while !continue do
      if !pos + 16 > t.cfg.log_size then continue := false
      else begin
        let h = Int64.to_int (Nvm.load_u64 t.nvm (base + !pos)) in
        if h land 1 = 0 then continue := false
        else begin
          let wv = h lsr 1 in
          let n = Int64.to_int (Nvm.load_u64 t.nvm (base + !pos + 8)) in
          if n < 0 || !pos + 16 + (16 * n) > t.cfg.log_size then continue := false
          else begin
            let writes =
              List.init n (fun i ->
                  ( Int64.to_int (Nvm.load_u64 t.nvm (base + !pos + 16 + (16 * i))),
                    Nvm.load_u64 t.nvm (base + !pos + 24 + (16 * i)) ))
            in
            records := (wv, writes) :: !records;
            pos := !pos + 16 + (16 * n)
          end
        end
      end
    done
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !records in
  let ranges = ref [] in
  List.iter
    (fun (_, writes) ->
      List.iter
        (fun (addr, value) ->
          Nvm.store_u64 t.nvm addr value;
          ranges := (addr, 8) :: !ranges)
        writes)
    sorted;
  Nvm.persist_ranges t.nvm !ranges;
  Hashtbl.reset t.dirty_data;
  for thread = 0 to t.cfg.nthreads - 1 do
    Nvm.store_u64 t.nvm (log_base t thread) 0L;
    Nvm.persist t.nvm ~off:(log_base t thread) ~len:8;
    t.log_cursor.(thread) <- 0
  done;
  Hashtbl.reset t.sealed;
  (match sorted with
  | [] -> ()
  | l ->
    let top = fst (List.hd (List.rev l)) in
    t.clock <- max t.clock top;
    t.durable <- max t.durable top);
  List.length sorted

module Nvm = Dudetm_nvm.Nvm
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Lock_table = Dudetm_tm.Lock_table
module Alloc = Dudetm_core.Alloc
module Trace = Dudetm_trace.Trace

type config = {
  heap_size : int;
  root_size : int;
  nthreads : int;
  pmem : Dudetm_nvm.Pmem_config.t;
  log_size : int;
  tx_overhead : int;
  undo_entry_cost : int;
  alloc_cost : int;
  read_cost : int;
  write_cost : int;
  seed : int;
}

let default_config =
  {
    heap_size = 16 * 1024 * 1024;
    root_size = 4096;
    nthreads = 4;
    pmem = Dudetm_nvm.Pmem_config.default;
    log_size = 1 lsl 18;
    (* ~1.14M empty tx/s/thread at 3.4 GHz is ~2980 cycles per empty
       transaction; most of it is metadata allocation. *)
    tx_overhead = 2600;
    (* TX_ADD-style snapshotting work per undo entry. *)
    undo_entry_cost = 150;
    (* pmemobj-style transactional allocation measures in microseconds:
       metadata updates plus their flushes. *)
    alloc_cost = 10000;
    read_cost = 4;
    write_cost = 8;
    seed = 42;
  }

type t = {
  cfg : config;
  nvm : Nvm.t;
  locks : Lock_table.t;
  mutable clock : int;
  mutable next_uid : int;
  allocator : Alloc.t;
  stats : Stats.t;
}

let log_base t thread = t.cfg.heap_size + (thread * t.cfg.log_size)

let create cfg =
  let size = cfg.heap_size + (cfg.nthreads * cfg.log_size) in
  let line = cfg.pmem.Dudetm_nvm.Pmem_config.line_size in
  let size = (size + line - 1) / line * line in
  {
    cfg;
    nvm = Nvm.create cfg.pmem ~size;
    locks = Lock_table.create ();
    clock = 0;
    next_uid = 1;
    allocator = Alloc.create ~base:cfg.root_size ~size:(cfg.heap_size - cfg.root_size);
    stats = Stats.create ();
  }

(* Blocking lock acquisition in sorted stripe order (deadlock-free).
   Returns the saved pre-acquisition versions for release. *)
let acquire_locks t ~uid stripes =
  List.map
    (fun stripe ->
      Sched.wait_until ~label:"nvml lock" (fun () ->
          match Lock_table.read_word t.locks stripe with
          | Lock_table.Version _ -> true
          | Lock_table.Owned _ -> false);
      match Lock_table.acquire t.locks ~stripe ~uid with
      | Some prev -> (stripe, prev)
      | None -> assert false)
    stripes

let release_locks t ~version held =
  List.iter
    (fun (stripe, prev) ->
      let v = match version with Some v -> v | None -> prev in
      Lock_table.release_to t.locks ~stripe ~version:v)
    held

let atomically_impl t ~thread ~wset f =
  Trace.span ~cat:"perform" "tx" @@ fun () ->
  Sched.advance (t.cfg.tx_overhead + (t.cfg.undo_entry_cost * List.length wset));
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let wset = List.sort_uniq compare wset in
  let stripes = List.sort_uniq compare (List.map (Lock_table.stripe_of_addr t.locks) wset) in
  let held = acquire_locks t ~uid stripes in
  (* Undo-log all old values at once: one persist ordering (the static-
     transaction trick that makes NVML competitive, Section 2.2). *)
  let n = List.length wset in
  let record = Bytes.create (16 + (16 * n)) in
  Bytes.set_int64_le record 0 (Int64.of_int uid);
  Bytes.set_int64_le record 8 (Int64.of_int n);
  List.iteri
    (fun i addr ->
      Bytes.set_int64_le record (16 + (16 * i)) (Int64.of_int addr);
      Bytes.set_int64_le record (24 + (16 * i)) (Nvm.load_u64 t.nvm addr))
    wset;
  if Bytes.length record > t.cfg.log_size then invalid_arg "Nvml: write set exceeds log region";
  let lb = log_base t thread in
  Trace.span_begin ~cat:"persist" "undo_log";
  Nvm.store_bytes t.nvm lb record;
  Nvm.persist t.nvm ~off:lb ~len:(Bytes.length record);
  Trace.span_end ~cat:"persist" "undo_log";
  let in_set = Hashtbl.create (2 * max 1 n) in
  List.iter (fun a -> Hashtbl.replace in_set a ()) wset;
  let written = ref [] in
  let rollback () =
    List.iteri
      (fun i addr -> Nvm.store_u64 t.nvm addr (Bytes.get_int64_le record (24 + (16 * i))))
      wset;
    Nvm.persist_ranges t.nvm (List.map (fun a -> (a, 8)) wset)
  in
  let ptx =
    {
      Ptm_intf.read =
        (fun addr ->
          Sched.advance t.cfg.read_cost;
          Nvm.load_u64 t.nvm addr);
      write =
        (fun addr value ->
          Sched.advance t.cfg.write_cost;
          if not (Hashtbl.mem in_set addr) then
            invalid_arg "Nvml: write outside the declared write set";
          Nvm.store_u64 t.nvm addr value;
          written := (addr, 8) :: !written);
      abort = (fun () -> raise Ptm_intf.Aborted);
      pmalloc =
        (fun size ->
          (* NVML's allocator is persistent and slow; the paper moves
             allocations out of the measured paths where it can, but
             TPC-C-style transactions must allocate rows. *)
          Sched.advance t.cfg.alloc_cost;
          match Alloc.alloc t.allocator size with
          | None -> failwith "Nvml: out of persistent memory"
          | Some off -> off);
      pfree =
        (fun ~off ~len ->
          Sched.advance (t.cfg.alloc_cost / 2);
          Alloc.free t.allocator ~off ~len);
    }
  in
  match f ptx with
  | result ->
    (* Commit: persist the in-place updates, then retire the undo log. *)
    Trace.span_begin ~cat:"persist" "commit_persist";
    Nvm.persist_ranges t.nvm !written;
    Nvm.store_u64 t.nvm lb 0L;
    Nvm.persist t.nvm ~off:lb ~len:8;
    Trace.span_end ~cat:"persist" "commit_persist";
    let tid = t.clock + 1 in
    t.clock <- tid;
    release_locks t ~version:(Some tid) held;
    Stats.incr t.stats "commits";
    Some (result, tid)
  | exception Ptm_intf.Aborted ->
    rollback ();
    Nvm.store_u64 t.nvm lb 0L;
    Nvm.persist t.nvm ~off:lb ~len:8;
    release_locks t ~version:None held;
    Stats.incr t.stats "user_aborts";
    None

let ptm_of ?(name = "NVML") t =
  let atomically : 'a. thread:int -> ?wset:int list -> (Ptm_intf.tx -> 'a) -> ('a * int) option
      =
    fun ~thread ?(wset = []) f -> atomically_impl t ~thread ~wset f
  in
  (* NVML's static transactions have no read-only mode; an empty declared
     write set makes the ordinary path lock nothing, but it still pays
     the undo-log lifecycle. *)
  let atomically_ro : 'a. durable:bool -> thread:int -> (Ptm_intf.tx -> 'a) -> ('a * int) option
      =
    fun ~durable:_ ~thread f -> atomically_impl t ~thread ~wset:[] f
  in
  {
    Ptm_intf.name;
    requires_static = true;
    nthreads = t.cfg.nthreads;
    root_base = 0;
    atomically;
    atomically_ro;
    peek = Nvm.load_u64 t.nvm;
    durable_id = (fun () -> t.clock);
    last_tid = (fun () -> t.clock);
    start = (fun () -> ());
    drain = (fun () -> ());
    stop = (fun () -> ());
    nvm = Some t.nvm;
    counters = (fun () -> Stats.to_list t.stats);
    prealloc =
      Some
        (fun size ->
          Sched.advance t.cfg.alloc_cost;
          match Alloc.alloc t.allocator size with
          | None -> failwith "Nvml: out of persistent memory"
          | Some off -> off);
  }

let ptm ?name cfg = ptm_of ?name (create cfg)

let nvm t = t.nvm

(* Crash recovery: any thread whose undo-log header is non-zero crashed
   mid-transaction; restore the logged old values (undo logging rolls
   back), persist, and retire the log.  Committed transactions already
   persisted their data before retiring their logs, so they need nothing. *)
let recover t =
  let rolled_back = ref 0 in
  for thread = 0 to t.cfg.nthreads - 1 do
    let lb = log_base t thread in
    if Nvm.load_u64 t.nvm lb <> 0L then begin
      let n = Int64.to_int (Nvm.load_u64 t.nvm (lb + 8)) in
      if n >= 0 && 16 + (16 * n) <= t.cfg.log_size then begin
        let ranges = ref [] in
        for i = 0 to n - 1 do
          let addr = Int64.to_int (Nvm.load_u64 t.nvm (lb + 16 + (16 * i))) in
          let old_value = Nvm.load_u64 t.nvm (lb + 24 + (16 * i)) in
          Nvm.store_u64 t.nvm addr old_value;
          ranges := (addr, 8) :: !ranges
        done;
        Nvm.persist_ranges t.nvm !ranges;
        incr rolled_back
      end;
      Nvm.store_u64 t.nvm lb 0L;
      Nvm.persist t.nvm ~off:lb ~len:8
    end
  done;
  !rolled_back

module Stats = Dudetm_sim.Stats

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  module D = Dudetm_core.Dudetm.Make (Tm)

  let wrap_tx dtx =
    {
      Ptm_intf.read = D.read dtx;
      write = D.write dtx;
      abort = (fun () -> D.abort dtx);
      pmalloc = D.pmalloc dtx;
      pfree = (fun ~off ~len -> D.pfree dtx ~off ~len);
    }

  let of_instance ?(name = "DudeTM") t =
    let cfg = D.config t in
    let atomically : 'a. thread:int -> ?wset:int list -> (Ptm_intf.tx -> 'a) -> ('a * int) option =
      fun ~thread ?wset:_ f -> D.atomically t ~thread (fun dtx -> f (wrap_tx dtx))
    in
    let atomically_ro : 'a. durable:bool -> thread:int -> (Ptm_intf.tx -> 'a) -> ('a * int) option =
      fun ~durable ~thread f -> D.atomically_ro ~durable t ~thread (fun dtx -> f (wrap_tx dtx))
    in
    let counters () =
      Stats.to_list (D.stats t)
      @ List.map (fun (k, v) -> ("tm." ^ k, v)) (Stats.to_list (Tm.stats (D.tm t)))
      @
      match D.shadow_stats t with
      | Some s -> List.map (fun (k, v) -> ("shadow." ^ k, v)) (Stats.to_list s)
      | None -> []
    in
    ( {
        Ptm_intf.name;
        requires_static = false;
        nthreads = cfg.Dudetm_core.Config.nthreads;
        root_base = D.root_base t;
        atomically;
        atomically_ro;
        peek = D.heap_read_u64 t;
        durable_id = (fun () -> D.durable_id t);
        last_tid = (fun () -> D.last_tid t);
        start = (fun () -> D.start t);
        drain = (fun () -> D.drain t);
        stop = (fun () -> D.stop t);
        nvm = Some (D.nvm t);
        counters;
        prealloc = None;
      },
      t )

  let ptm ?name cfg = of_instance ?name (D.create cfg)

  let attach_ptm ?name cfg nvm =
    let t, report = D.attach cfg nvm in
    let p, t = of_instance ?name t in
    (p, t, report)
end

module Stm = Make (Dudetm_tm.Tinystm)
module Htm_based = Make (Dudetm_tm.Htm)

(* Sharded DudeTM: N independent persistent regions — each with its own NVM
   device, plog rings, allocator/checkpoint pair and supervised
   Persist/Reproduce daemons — behind one transactional API.

   Single-shard transactions run entirely on their home region and cost
   nothing extra.  Cross-shard transactions take a global mutex, quiesce the
   touched regions (so no TM conflict — hence no retry — can strike while
   several regions' transactions are nested), run one sub-transaction per
   region, and seal every written fragment with a shared global transaction
   ID drawn under the mutex.

   Soundness hinges on the global cross-shard frontier GF: the largest g
   such that every cross-shard transaction with gtid <= g has ALL its
   fragments durable on their own regions.  A fragment is replayed to NVM
   only once its gtid is at or below GF (the engine's replay gate), the
   durability acknowledgement for a region stops just below its first
   fragment beyond GF (the vector watermark), and recovery runs a fixpoint
   vote that discards every fragment of an incomplete set on every region.
   Gating on GF rather than on the fragment's own set matters: with three
   regions, an incomplete set g' below a complete set g on a shared region
   would otherwise cut an already-acknowledged g out of the durable prefix
   during recovery. *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config

exception Cross_abort

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  module Engine = Dudetm_core.Dudetm.Make (Tm)

  (* What a committed transaction must wait on to be crash-safe. *)
  type ack =
    | Ack_read_only
    | Ack_local of { shard : int; tid : int }
    | Ack_cross of { gtid : int }

  (* Sibling set of one cross-shard transaction: [Pending] between the
     global-ID draw and commit completion (blocks the frontier so a
     fragment whose record races ahead of registration still waits);
     [Sealed] once every fragment's local transaction ID is known. *)
  type frag_set =
    | Pending
    | Sealed of { mask : int; frags : (int * int) list (* (shard, tid) *) }

  type t = {
    cfg : Config.t;
    nshards : int;
    engines : Engine.t array;
    blocked : bool array;  (* cross path is quiescing this shard *)
    active : int array;  (* in-flight single-shard transactions *)
    mutable cross_lock : bool;
    mutable next_gtid : int;  (* last drawn global cross-shard ID *)
    reg : (int, frag_set) Hashtbl.t;  (* gtid -> sibling set, > frontier *)
    mutable frontier : int;  (* GF: all sets <= this are fully durable *)
    stats : Stats.t;
  }

  type tx = {
    sh : t;
    dtxs : Engine.tx option array;  (* open sub-transaction per shard *)
    shards_mask : int;  (* declared shards *)
    mutable written_mask : int;  (* shards actually written *)
    mutable gtid : int;  (* 0 until a fragment seal is drawn *)
  }

  (* ------------------------------------------------------------------ *)
  (* The global frontier (pure readers + one impure advancer)            *)
  (* ------------------------------------------------------------------ *)

  (* Is sibling set [g] fully durable?  Pure: reads durable counters only.
     A gtid absent from the registry was pruned at a frontier advance, so
     it is already known durable. *)
  let set_durable t g =
    match Hashtbl.find_opt t.reg g with
    | None -> true
    | Some Pending -> false
    | Some (Sealed { frags; _ }) ->
      List.for_all (fun (s, tid) -> Engine.durable_id t.engines.(s) >= tid) frags

  (* GF as of now, without mutating anything (safe in wait conditions). *)
  let pure_frontier t =
    let rec go g = if g < t.next_gtid && set_durable t (g + 1) then go (g + 1) else g in
    go t.frontier

  (* Every set in (frontier, g] durable?  The engines' replay gate. *)
  let is_durable_upto t g =
    let rec go g' = g' > g || (set_durable t g' && go (g' + 1)) in
    go (t.frontier + 1)

  (* Publish GF and prune the registry below it.  Impure: never call from a
     wait predicate. *)
  let advance_frontier t =
    let gf = pure_frontier t in
    for g = t.frontier + 1 to gf do
      Hashtbl.remove t.reg g
    done;
    t.frontier <- gf

  (* Effective (acknowledgeable) durable ID of shard [s]: its engine's
     durable counter, cut just below its first fragment beyond GF — such a
     fragment can still be discarded by the recovery vote (directly, or by
     the contiguity cascade of an earlier incomplete set), so nothing at or
     above it may be acknowledged yet. *)
  let pure_effective t s =
    let gf = pure_frontier t in
    Hashtbl.fold
      (fun g v acc ->
        match v with
        | Pending -> acc
        | Sealed { frags; _ } ->
          if g > gf then
            List.fold_left
              (fun acc (s', tid) -> if s' = s then min acc (tid - 1) else acc)
              acc frags
          else acc)
      t.reg
      (Engine.durable_id t.engines.(s))

  (* ------------------------------------------------------------------ *)
  (* Construction                                                        *)
  (* ------------------------------------------------------------------ *)

  let install_gates t =
    Array.iter
      (fun e ->
        Engine.set_cross_gate e (Some (fun g -> g <= t.frontier || is_durable_upto t g)))
      t.engines

  (* Durable-only snapshot readers on shard [s] pin at its entry of the
     vector watermark, not at the raw engine durable counter: a fragment
     beyond the global frontier can still be discarded by the recovery
     vote, so durable-mode reads must not observe it.  [pure_effective]
     is side-effect free, as the snapshot pin wait requires. *)
  let install_ro_watermarks t =
    Array.iteri
      (fun s e -> Engine.set_ro_watermark e (Some (fun () -> pure_effective t s)))
      t.engines

  let check_nshards nshards =
    if nshards < 1 || nshards > 60 then
      invalid_arg "Shard: nshards must be within [1, 60] (fragment masks are int bitsets)"

  let build cfg ~nshards engines =
    let t =
      {
        cfg;
        nshards;
        engines;
        blocked = Array.make nshards false;
        active = Array.make nshards 0;
        cross_lock = false;
        next_gtid = 0;
        reg = Hashtbl.create 64;
        frontier = 0;
        stats = Stats.create ();
      }
    in
    install_gates t;
    install_ro_watermarks t;
    t

  let create ~nshards cfg =
    check_nshards nshards;
    let engines =
      Array.init nshards (fun i -> Engine.create ~nvm_label:("shard" ^ string_of_int i) cfg)
    in
    build cfg ~nshards engines

  let start t = Array.iter Engine.start t.engines

  let nshards t = t.nshards

  let config t = t.cfg

  let engine t s = t.engines.(s)

  let nvm t s = Engine.nvm t.engines.(s)

  let stats t = t.stats

  let last_cross_gtid t = t.next_gtid

  (* ------------------------------------------------------------------ *)
  (* Transactions                                                        *)
  (* ------------------------------------------------------------------ *)

  let check_shard tx s =
    if s < 0 || s >= tx.sh.nshards then invalid_arg "Shard: bad shard index";
    if tx.shards_mask land (1 lsl s) = 0 then
      invalid_arg "Shard: transaction touched an undeclared shard"

  let dtx_of tx s =
    check_shard tx s;
    match tx.dtxs.(s) with Some d -> d | None -> assert false

  let read tx ~shard addr = Engine.read (dtx_of tx shard) addr

  let write tx ~shard addr v =
    let d = dtx_of tx shard in
    tx.written_mask <- tx.written_mask lor (1 lsl shard);
    Engine.write d addr v

  let pmalloc tx ~shard len =
    let d = dtx_of tx shard in
    tx.written_mask <- tx.written_mask lor (1 lsl shard);
    Engine.pmalloc d len

  let pfree tx ~shard ~off ~len =
    let d = dtx_of tx shard in
    tx.written_mask <- tx.written_mask lor (1 lsl shard);
    Engine.pfree d ~off ~len

  let abort _tx = raise Cross_abort

  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0

  (* Single-shard fast path: an ordinary engine transaction, throttled only
     by a cross-shard quiesce of its home region.  The active counter keeps
     the quiesce honest: a cross transaction proceeds only once every
     in-flight single-shard transaction on a touched region has finished. *)
  let run_single t ~thread s f =
    Sched.wait_until ~label:"shard blocked" (fun () -> not t.blocked.(s));
    t.active.(s) <- t.active.(s) + 1;
    Fun.protect ~finally:(fun () -> t.active.(s) <- t.active.(s) - 1) @@ fun () ->
    let tx =
      { sh = t; dtxs = Array.make t.nshards None; shards_mask = 1 lsl s;
        written_mask = 0; gtid = 0 }
    in
    match
      Engine.atomically t.engines.(s) ~thread (fun dtx ->
          tx.dtxs.(s) <- Some dtx;
          f tx)
    with
    | Some (v, 0) -> Some (v, Ack_read_only)
    | Some (v, tid) -> Some (v, Ack_local { shard = s; tid })
    | None -> None
    | exception Cross_abort -> None

  (* Cross-shard path.  Under the global mutex, with the touched regions
     quiesced, sub-transactions nest in ascending shard order; the user body
     runs innermost.  Quiescence means no conflicts, so no TM retry can
     re-run an inner body whose sub-transaction already committed.  The
     global ID is drawn (and the registry slot marked Pending) only after
     the body succeeds — an aborted transaction never consumes a gtid, so
     gtids stay dense and the frontier never waits on a hole. *)
  let run_cross t ~thread shards f =
    let mask = List.fold_left (fun m s -> m lor (1 lsl s)) 0 shards in
    Sched.wait_until ~label:"shard cross lock" (fun () -> not t.cross_lock);
    t.cross_lock <- true;
    List.iter (fun s -> t.blocked.(s) <- true) shards;
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun s -> t.blocked.(s) <- false) shards;
        t.cross_lock <- false)
    @@ fun () ->
    Sched.wait_until ~label:"shard quiesce"
      (fun () -> List.for_all (fun s -> t.active.(s) = 0) shards);
    Stats.incr t.stats "cross_txs";
    let tx =
      { sh = t; dtxs = Array.make t.nshards None; shards_mask = mask;
        written_mask = 0; gtid = 0 }
    in
    let frags = ref [] in
    let rec open_levels = function
      | [] ->
        let v = f tx in
        (* Body done: the set of written regions is known.  Seal every
           written fragment with a fresh global ID before any level
           commits, so each fragment's redo record carries its sibling
           mask. *)
        if popcount tx.written_mask >= 2 then begin
          let g = t.next_gtid + 1 in
          t.next_gtid <- g;
          tx.gtid <- g;
          Hashtbl.replace t.reg g Pending;
          List.iter
            (fun s ->
              if tx.written_mask land (1 lsl s) <> 0 then
                Engine.seal_cross (dtx_of tx s) ~gtid:g ~mask:tx.written_mask)
            shards
        end;
        v
      | s :: rest -> (
        match
          Engine.atomically t.engines.(s) ~thread (fun dtx ->
              tx.dtxs.(s) <- Some dtx;
              open_levels rest)
        with
        | Some (v, tid) ->
          if tid > 0 then frags := (s, tid) :: !frags;
          v
        | None ->
          (* Engine-level user abort cannot happen here: the shard layer
             aborts by raising Cross_abort through every level. *)
          assert false)
    in
    match open_levels shards with
    | v ->
      (* Every level committed.  Registration closes the Pending window:
         until now the frontier (and therefore every region's replay gate
         and acknowledgement watermark) treated gtid as not-yet-durable. *)
      if tx.gtid > 0 then begin
        let fs = List.filter (fun (s, _) -> tx.written_mask land (1 lsl s) <> 0) !frags in
        Hashtbl.replace t.reg tx.gtid (Sealed { mask = tx.written_mask; frags = fs })
      end;
      let ack =
        if tx.gtid > 0 then Ack_cross { gtid = tx.gtid }
        else
          match !frags with
          | [ (s, tid) ] -> Ack_local { shard = s; tid }
          | [] -> Ack_read_only
          | _ -> assert false
      in
      Some (v, ack)
    | exception Cross_abort ->
      (* The body aborted before any global ID was drawn; every level
         rolled back on the way out. *)
      None

  (* Read-only snapshot on one shard.  Deliberately no quiesce handshake:
     a snapshot owns no stripes, keeps no undo list and draws no ID, so it
     cannot conflict with anything — including the cross-shard path, whose
     quiesce only exists to keep TM retries out of nested sub-transactions.
     The reader simply waits out any Owned stripe it encounters, so it is
     never blocked behind (and never blocks) a cross-shard quiesce of its
     home region.  In durable mode the snapshot pins at this shard's entry
     of the vector watermark (installed at [build]). *)
  let atomically_ro ?durable t ~thread ~shard f =
    if shard < 0 || shard >= t.nshards then
      invalid_arg "Shard.atomically_ro: bad shard index";
    Stats.incr t.stats "ro_txs";
    let tx =
      { sh = t; dtxs = Array.make t.nshards None; shards_mask = 1 lsl shard;
        written_mask = 0; gtid = 0 }
    in
    match
      Engine.atomically_ro ?durable t.engines.(shard) ~thread (fun dtx ->
          tx.dtxs.(shard) <- Some dtx;
          f tx)
    with
    | Some (v, epoch) -> Some (v, epoch)
    | None -> None
    | exception Cross_abort -> None

  let atomically t ~thread ~shards f =
    let shards = List.sort_uniq compare shards in
    List.iter
      (fun s -> if s < 0 || s >= t.nshards then invalid_arg "Shard.atomically: bad shard index")
      shards;
    match shards with
    | [] -> invalid_arg "Shard.atomically: empty shard list"
    | [ s ] ->
      Stats.incr t.stats "single_txs";
      run_single t ~thread s f
    | _ -> run_cross t ~thread shards f

  (* ------------------------------------------------------------------ *)
  (* Durability protocol                                                 *)
  (* ------------------------------------------------------------------ *)

  let global_frontier t =
    advance_frontier t;
    t.frontier

  let durable_vector t =
    advance_frontier t;
    Array.map Engine.durable_id t.engines

  let effective_durable t s =
    advance_frontier t;
    pure_effective t s

  let effective_vector t =
    advance_frontier t;
    Array.init t.nshards (pure_effective t)

  let wait_durable t = function
    | Ack_read_only -> ()
    | Ack_local { shard; tid } ->
      Sched.wait_until ~label:"shard durable" (fun () -> pure_effective t shard >= tid);
      advance_frontier t
    | Ack_cross { gtid } ->
      Sched.wait_until ~label:"shard cross durable" (fun () -> pure_frontier t >= gtid);
      advance_frontier t

  (* ------------------------------------------------------------------ *)
  (* Drain / stop                                                        *)
  (* ------------------------------------------------------------------ *)

  (* Mark every region draining before blocking on any single drain: a
     combined-mode persist daemon only flushes a partial trailing group
     once draining is set, and one region's replay gate can require exactly
     that trailing flush on a sibling. *)
  let drain t =
    Array.iter Engine.begin_drain t.engines;
    Array.iter Engine.drain t.engines;
    advance_frontier t

  let stop t =
    drain t;
    Array.iter Engine.stop t.engines

  (* ------------------------------------------------------------------ *)
  (* Recovery: prepare every region, vote, commit every region           *)
  (* ------------------------------------------------------------------ *)

  type recovery = {
    reports : Dudetm_core.Dudetm.recovery_report array;
    voted_cuts : int array;  (** candidate durable ID minus the vote's cut, per shard *)
    discarded_fragments : int;  (** fragments dropped for incomplete sibling sets *)
  }

  (* The cross-shard vote.  Starting from every region's candidate durable
     ID, repeatedly discard fragments whose sibling set is incomplete: a
     fragment (g, mask, tid) on x fails when some sibling y in mask has no
     scanned fragment of g inside its current cut AND y's checkpointed
     frontier is below g (a frontier at or above g proves y already
     replayed — and possibly recycled — its fragment, so absence from y's
     rings is not absence of durability).  Discarding shrinks a cut, which
     can invalidate later fragments on other regions, so iterate to the
     (monotonically decreasing, hence convergent) fixpoint. *)
  let vote ~nshards preps =
    let cuts = Array.map Engine.prepared_durable preps in
    let frontiers = Array.map Engine.prepared_frontier preps in
    let frags = Array.map Engine.prepared_fragments preps in
    let floors = Array.map Engine.prepared_checkpoint_upto preps in
    let discarded = ref 0 in
    let sibling_has s g =
      frontiers.(s) >= g
      || List.exists (fun (g', _, tid) -> g' = g && tid <= cuts.(s)) frags.(s)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for x = 0 to nshards - 1 do
        List.iter
          (fun (g, mask, tid) ->
            if tid <= cuts.(x) && frontiers.(x) < g then begin
              let complete =
                let ok = ref true in
                for y = 0 to nshards - 1 do
                  if y <> x && mask land (1 lsl y) <> 0 && not (sibling_has y g) then ok := false
                done;
                !ok
              in
              if not (complete) then begin
                (* The checkpoint floor bounds the cut from below: replayed
                   state cannot be un-replayed.  A fragment below the floor
                   with a missing sibling would mean the replay gate was
                   broken — surface it instead of silently accepting. *)
                if tid <= floors.(x) then
                  failwith
                    (Printf.sprintf
                       "Shard.attach: fragment gtid=%d already replayed on shard %d but its \
                        sibling set is incomplete (replay-gate violation)"
                       g x);
                cuts.(x) <- tid - 1;
                incr discarded;
                changed := true
              end
            end)
          frags.(x)
      done
    done;
    (cuts, !discarded)

  let attach ~nshards cfg nvms =
    check_nshards nshards;
    if Array.length nvms <> nshards then invalid_arg "Shard.attach: wrong device count";
    let preps = Array.map (Engine.attach_prepare cfg) nvms in
    let candidates = Array.map Engine.prepared_durable preps in
    let cuts, discarded = vote ~nshards preps in
    let pairs = Array.mapi (fun i p -> Engine.attach_commit ~durable_cut:cuts.(i) p) preps in
    let engines = Array.map fst pairs in
    let reports = Array.map snd pairs in
    let t = build cfg ~nshards engines in
    (* Everything that survived the vote is fully durable, so the frontier
       restarts above every global ID ever drawn; fresh draws continue
       after it. *)
    let maxg = ref 0 in
    Array.iter (fun p -> maxg := max !maxg (Engine.prepared_frontier p)) preps;
    Array.iter
      (fun fs -> List.iter (fun (g, _, _) -> maxg := max !maxg g) fs)
      (Array.map Engine.prepared_fragments preps);
    t.next_gtid <- !maxg;
    t.frontier <- !maxg;
    let voted_cuts = Array.mapi (fun i c -> candidates.(i) - c) cuts in
    (t, { reports; voted_cuts; discarded_fragments = discarded })
end

(** Sharded DudeTM: multi-region NVM with per-shard Persist/Reproduce
    pipelines and cross-shard durable transactions.

    The persistent heap is partitioned into [nshards] independent regions,
    each a complete DudeTM instance on its own simulated NVM device (own
    plog rings, allocator/checkpoint pair, supervised daemons).  Each
    region's device is labeled ["shard<i>"] for per-device trace
    accounting.

    {2 Cross-shard transactions}

    A transaction declaring several shards runs one nested sub-transaction
    per touched region under a global mutex, with the touched regions
    quiesced (no concurrent single-shard transaction in flight on them), so
    no TM conflict — hence no retry — can strike while sub-transactions are
    nested.  If at least two regions are written, each written fragment is
    sealed with a shared global transaction ID ([Cross { gtid; mask; tid }]
    in its redo record, CRC-covered with the fragment's writes).

    {2 The vector watermark}

    Durability is a vector: per-shard durable IDs plus the {e global
    cross-shard frontier} GF — the largest [g] such that every cross-shard
    transaction with gtid ≤ [g] has all its fragments durable on their own
    regions.  A fragment is replayed to NVM home locations only once its
    gtid is at or below GF; a region's acknowledgeable durable ID stops
    just below its first fragment beyond GF (such a fragment can still be
    discarded by the recovery vote, directly or through the contiguity
    cascade of an earlier incomplete set).

    {2 Recovery}

    {!Make.attach} prepares every region (non-destructive scan), runs a
    fixpoint vote that discards every fragment of an incomplete sibling
    set — using each region's checkpointed frontier to distinguish
    "replayed and recycled" from "never durable" — and only then commits
    each region with its voted durable cut. *)

exception Cross_abort
(** Raised by {!Make.abort}; unwinds (and rolls back) every open
    sub-transaction. *)

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  module Engine : module type of Dudetm_core.Dudetm.Make (Tm)

  type t

  type tx

  (** What a committed transaction must wait on to be crash-safe. *)
  type ack =
    | Ack_read_only
    | Ack_local of { shard : int; tid : int }
        (** durable once [effective_durable shard >= tid] *)
    | Ack_cross of { gtid : int }  (** durable once [global_frontier >= gtid] *)

  type recovery = {
    reports : Dudetm_core.Dudetm.recovery_report array;
    voted_cuts : int array;
        (** per shard: how far the vote cut below the candidate durable ID *)
    discarded_fragments : int;
        (** fragments dropped because their sibling set was incomplete *)
  }

  (** {1 Lifecycle} *)

  val create : nshards:int -> Dudetm_core.Config.t -> t
  (** [create ~nshards cfg] builds [nshards] fresh regions, each formatted
      per [cfg]'s layout on its own device.  [nshards] must be within
      [1, 60] (fragment masks are [int] bitsets). *)

  val attach : nshards:int -> Dudetm_core.Config.t -> Dudetm_nvm.Nvm.t array -> t * recovery
  (** Recover all regions from their crashed devices: prepare every region,
      run the cross-shard fixpoint vote over the scanned fragment seals and
      checkpointed frontiers, then commit each region with its voted
      durable cut.  Raises [Failure] if a fragment below a region's replay
      floor has an incomplete sibling set — that means the replay gate was
      violated (e.g. the [Skip_fragment_gate] mutant), never a legal crash
      state. *)

  val start : t -> unit
  (** Spawn every region's daemons; run inside {!Dudetm_sim.Sched.run}. *)

  val drain : t -> unit
  (** Mark every region draining first, then block until each has retired
      all committed transactions (including cross-shard fragments gated on
      siblings). *)

  val stop : t -> unit
  (** {!drain}, then stop every region's daemons. *)

  (** {1 Transactions} *)

  val atomically : t -> thread:int -> shards:int list -> (tx -> 'a) -> ('a * ack) option
  (** Run [f] transactionally over the declared [shards].  A single-shard
      list takes the uninstrumented fast path; several shards take the
      cross-shard path described above.  Returns [None] if [f] called
      {!abort}. *)

  val atomically_ro :
    ?durable:bool -> t -> thread:int -> shard:int -> (tx -> 'a) -> ('a * int) option
  (** Read-only snapshot transaction on one shard: lock-free, log-free and
      persist-free ({!Dudetm_core.Dudetm.Make.atomically_ro} on the
      shard's engine).  Takes no quiesce handshake — a snapshot owns no
      stripes and cannot conflict with the cross-shard path.  With
      [~durable:true] the snapshot epoch pins at the shard's entry of the
      {e vector} watermark ({!effective_durable}), so every value read is
      crash-safe even against the cross-shard recovery vote.  Returns the
      result and the snapshot epoch (an engine transaction ID on that
      shard); [None] if [f] called {!abort}.  Calling {!write},
      {!pmalloc} or {!pfree} inside raises
      [Dudetm_core.Dudetm.Read_only_violation]. *)

  val read : tx -> shard:int -> int -> int64

  val write : tx -> shard:int -> int -> int64 -> unit

  val pmalloc : tx -> shard:int -> int -> int

  val pfree : tx -> shard:int -> off:int -> len:int -> unit

  val abort : tx -> 'a

  (** {1 The vector watermark} *)

  val durable_vector : t -> int array
  (** Per-shard engine durable IDs. *)

  val effective_durable : t -> int -> int
  (** Acknowledgeable durable ID of one shard (cut below its first
      fragment beyond the frontier). *)

  val effective_vector : t -> int array

  val global_frontier : t -> int
  (** GF: every cross-shard transaction at or below it is fully durable. *)

  val last_cross_gtid : t -> int
  (** The largest gtid drawn so far; [global_frontier t >=
      last_cross_gtid t] means every cross-shard transaction committed so
      far is fully durable (the migration flip's durability gate). *)

  val wait_durable : t -> ack -> unit
  (** Block until the acknowledgement is crash-safe under the vector
      watermark. *)

  (** {1 Introspection} *)

  val nshards : t -> int

  val config : t -> Dudetm_core.Config.t

  val engine : t -> int -> Engine.t

  val nvm : t -> int -> Dudetm_nvm.Nvm.t

  val stats : t -> Dudetm_sim.Stats.t
  (** ["single_txs"], ["cross_txs"]. *)
end

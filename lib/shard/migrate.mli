(** Live migration of a key-range (a run of partition buckets) between
    shards, under traffic.

    Three decoupled phases, each sealed in the {!Handoff} journal before it
    takes effect:

    + {b Copy}: {!Make.begin_migration} seals a Copy handoff record and
      opens a {e double-write window} — application transactions touching
      the migrating range ({!Make.apply}) commit cross-shard fragment
      pairs to both owners while {!Make.copy_step} ships the source's
      committed values to the destination in chunked cross-shard
      transactions (serialized with the double-writes by the global cross
      lock).
    + {b Flip}: {!Make.flip} quiesces new range traffic, waits for the
      global frontier to pass the last window gtid (everything the window
      committed is durable on both owners), then seals Flip, the new
      partition descriptor stamped with the handoff epoch, and Cleanup
      before switching volatile routing.
    + {b Cleanup}: {!Make.cleanup_step} transactionally zeroes the
      source's slots for the moved range, then seals Idle.

    {!Make.attach} recovers idempotently: a Copy record rolls back (the
    source never stopped being authoritative), a Flip record rolls forward
    (reseal the descriptor if the cut hit between the seals, resume
    cleanup), a Cleanup record resumes cleanup.  Under the
    [Skip_handoff_seal] fault the flip switches volatile routing without
    sealing anything — the injected bug {e check --migrate} must catch. *)

module Partition := Dudetm_workloads.Partition

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  module Sh : module type of Shard.Make (Tm)

  type resume =
    | Clean  (** no migration was in flight *)
    | Rolled_back of Handoff.plan  (** crashed before the flip sealed *)
    | Resumed of Handoff.plan
        (** crashed at or after the flip; ownership is with [dst] and
            cleanup is pending *)

  type t

  (** {1 Lifecycle} *)

  val create : Sh.t -> part:Partition.t -> nkeys:int -> slot_of:(int -> int) -> t
  (** Format the handoff journal on device 0 with [part] (must be a
      [Buckets] partition over [Sh.nshards] shards) as the initial
      descriptor, epoch 1.  Keys are dense indices [0 .. nkeys-1];
      [slot_of] maps a key to its heap offset (the same on every shard). *)

  val attach : Sh.t -> nkeys:int -> slot_of:(int -> int) -> t * resume
  (** Recover the coordinator from device 0 after a crash (call after
      [Sh.attach]).  Raises {!Partition.Invalid_partition} when the
      persisted descriptor is torn, corrupt, or sealed for a different
      shard count. *)

  (** {1 Routing} *)

  val partition : t -> Partition.t
  (** Current volatile routing. *)

  val epoch : t -> int
  (** Epoch of the sealed descriptor. *)

  val owner : t -> int -> int

  val migrating : t -> (Handoff.plan * Handoff.phase) option

  (** {1 Routed application transactions} *)

  val apply :
    t -> thread:int -> key:int -> (int64 -> int64) -> (int64 * Sh.ack) option
  (** Read-modify-write [key] through [f], routed to its owner — or to
      {e both} owners as a cross-shard pair while the key's bucket is in
      the double-write window.  Blocks while a flip is sealing the key's
      range.  Returns the written value and the ack to wait on. *)

  val read_key : t -> thread:int -> int -> int64

  val read_key_ro : ?durable:bool -> t -> thread:int -> int -> int64 * int
  (** Read-only snapshot read of one key ({!Sh.atomically_ro} on its
      owner), routed through the epoch-stamped partition descriptor; the
      source shard stays authoritative throughout the Copy double-write
      window.  If a flip moves the key while the snapshot is in flight
      (snapshot readers are invisible to the flip's quiesce), the read is
      retried on the new owner — counted as ["ro_reroutes"] in
      [Sh.stats].  Returns the value and the snapshot epoch on the owner
      shard; with [~durable:true] the epoch pins at that shard's vector
      watermark entry. *)

  (** {1 Driving a migration} *)

  val begin_migration : t -> src:int -> dst:int -> blo:int -> bhi:int -> unit
  (** Seal a Copy handoff for buckets [\[blo, bhi)] (all owned by [src])
      and open the double-write window. *)

  val copy_step : ?chunk:int -> t -> thread:int -> bool
  (** Ship up to [chunk] keys to the destination in one cross-shard
      transaction.  [true] once the whole range has been shipped. *)

  val flip : t -> unit
  (** Quiesce, wait for window durability, seal Flip + descriptor +
      Cleanup, switch routing. *)

  val cleanup_step : ?chunk:int -> t -> thread:int -> bool
  (** Zero up to [chunk] source slots of the moved range.  [true] once
      done (the Idle record is sealed). *)

  val migrate :
    ?chunk:int -> t -> thread:int -> src:int -> dst:int -> blo:int -> bhi:int -> unit
  (** [begin_migration]; [copy_step] to completion; [flip]; [cleanup_step]
      to completion. *)
end

(** Persistent coordinator state for live shard migration.

    Two double-slot CRC-sealed records (the {!Dudetm_core.Rjournal.Slots}
    torn-write discipline) in device 0's handoff-journal region at
    {!Dudetm_core.Config.hjournal_base}:

    - the {e partition descriptor} record — the authoritative
      {!Dudetm_workloads.Partition} mapping plus the handoff epoch that
      sealed it;
    - the {e handoff} record — the in-progress migration
      [{src; dst; range; epoch}] and its phase, which tells a recovering
      instance whether to roll the migration back ([Copy]) or forward
      ([Flip] / [Cleanup]).

    Every seal goes to the older slot under a monotone sequence number, so
    a power cut mid-seal leaves the previous record in force and recovery
    is idempotent. *)

module Nvm := Dudetm_nvm.Nvm
module Partition := Dudetm_workloads.Partition

type phase = Copy | Flip | Cleanup

type plan = { src : int; dst : int; blo : int; bhi : int; epoch : int }
(** A migration of buckets [\[blo, bhi)] from shard [src] to shard [dst],
    sealed under handoff epoch [epoch]. *)

type t

val format : Nvm.t -> base:int -> part:Partition.t -> epoch:int -> t
(** Initialise both records: descriptor [part] at [epoch], handoff Idle. *)

val attach : Nvm.t -> base:int -> nshards:int -> t
(** Read back both records after a crash.  Raises
    {!Partition.Invalid_partition} when the descriptor is torn, corrupt,
    or sealed for a different shard count. *)

val state : t -> (plan * phase) option
(** The sealed handoff, or [None] when idle. *)

val partition : t -> Partition.t

val epoch : t -> int

val seal_handoff : t -> (plan * phase) option -> unit
(** Persist a new handoff record ([None] seals Idle). *)

val seal_descriptor : t -> Partition.t -> epoch:int -> unit
(** Persist a new authoritative descriptor. *)

(** Shared driver for the shard-scaling experiment.

    Both the [dudetm shard] CLI subcommand and the [shard] bench
    experiment run this workload, so they always measure the same thing: a
    partitioned key-value update mix over a {!Shard} instance, with every
    key placed on its home shard by the deterministic
    {!Dudetm_workloads.Partition} hash and a configurable fraction of
    transactions transferring between two keys on different shards.

    Throughput is {e end-to-end durable}: the clock stops after [drain]
    has retired every committed transaction, so the reported rate is
    bounded by the persist pipelines — one per shard — which is exactly
    the quantity expected to scale with shard count. *)

type result = {
  sb_nshards : int;
  sb_cross_pct : int;  (** requested cross-shard transaction percentage *)
  sb_ntxs : int;  (** transactions actually run (rounded to workers) *)
  sb_cross_txs : int;  (** transactions that took the cross-shard path *)
  sb_cycles : int;  (** simulated cycles, first commit through drain *)
  sb_ktps : float;  (** durable transactions per second, in thousands *)
  sb_commit_latency : Dudetm_sim.Stats.Latency.r;
      (** per-transaction commit latency (begin to commit return, think
          time excluded), simulated cycles *)
}

val run :
  ?seed:int ->
  ?bandwidth:float ->
  ?persist_latency:int ->
  ?ntxs:int ->
  ?workers:int ->
  ?think:int ->
  ?batch_min:int ->
  ?batch_max:int ->
  ?batch_deadline:int ->
  nshards:int ->
  cross_pct:int ->
  unit ->
  result
(** Defaults: seed 42, 0.25 GB/s per-shard write bandwidth, 500-cycle
    persists, 2000 transactions over 8 workers, 50-cycle think time.  The
    low per-shard bandwidth makes the persist pipeline the bottleneck at
    one shard, so shard scaling is visible.  With [nshards = 1],
    [cross_pct] is ignored (there is no second shard).  Raises
    [Invalid_argument] on [nshards < 1] or [cross_pct] outside
    [\[0, 100\]]. *)

(** Defaults for the batch knobs come from {!Dudetm_core.Config.default};
    the persist bench sweeps them to map the batching latency/throughput
    trade-off. *)

val pp_commit_latency : result -> string
(** ["p50 %d / p95 %d / p99 %d cyc"]. *)

val tail_ratio : result -> float
(** Commit-latency p99/p50 — the tail-amplification metric the bounded
    group commit exists to control (0 when p50 is 0). *)

(* Shared driver for the shard-scaling experiment: used by both the
   `dudetm shard` CLI subcommand and the `shard` bench experiment, so the
   two always measure the same workload.

   The workload is a partitioned key-value update mix: every key maps to
   its home shard through the deterministic {!Dudetm_workloads.Partition}
   hash, each worker draws keys uniformly, and a configurable fraction of
   transactions transfer between two keys on different shards (the
   cross-shard path).  Throughput is end-to-end durable: the clock stops
   only after [drain] has retired every committed transaction, so the
   number reported is bounded by the persist pipelines — the quantity
   that scales with shard count. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Cycles = Dudetm_sim.Cycles
module Config = Dudetm_core.Config
module Partition = Dudetm_workloads.Partition
module Sh = Shard.Make (Dudetm_tm.Tinystm)

type result = {
  sb_nshards : int;
  sb_cross_pct : int;
  sb_ntxs : int;
  sb_cross_txs : int;
  sb_cycles : int;
  sb_ktps : float;
  sb_commit_latency : Stats.Latency.r;
}

let nkeys = 4096

let slots = 512

(* Each key's home slot inside its shard's region. *)
let slot_off k = 64 + (8 * (k mod slots))

let shard_cfg ~workers ~bandwidth ~persist_latency =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    nthreads = workers;
    vlog_capacity = 128;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    checkpoint_records = 2;
    seed = 11;
    pmem =
      {
        Dudetm_nvm.Pmem_config.default with
        Dudetm_nvm.Pmem_config.bandwidth_gbps = bandwidth;
        persist_latency;
      };
  }

let run ?(seed = 42) ?(bandwidth = 0.25) ?(persist_latency = 500) ?(ntxs = 2_000)
    ?(workers = 8) ?(think = 50) ?batch_min ?batch_max ?batch_deadline ~nshards
    ~cross_pct () =
  if nshards < 1 then invalid_arg "Shard_bench.run: nshards must be >= 1";
  if cross_pct < 0 || cross_pct > 100 then
    invalid_arg "Shard_bench.run: cross_pct must be in [0, 100]";
  let cfg = shard_cfg ~workers ~bandwidth ~persist_latency in
  let cfg =
    {
      cfg with
      Config.batch_min_entries =
        Option.value batch_min ~default:cfg.Config.batch_min_entries;
      batch_max_entries = Option.value batch_max ~default:cfg.Config.batch_max_entries;
      batch_deadline = Option.value batch_deadline ~default:cfg.Config.batch_deadline;
    }
  in
  let part = Partition.hashed ~nshards in
  let sh = Sh.create ~nshards cfg in
  let per = ntxs / workers in
  let ntxs_run = per * workers in
  let commit_latency = Stats.Latency.create () in
  let cross_txs = ref 0 in
  let done_ = Array.make workers 0 in
  let start = ref 0 in
  let stop_ = ref 0 in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         start := Sched.now ();
         for w = 0 to workers - 1 do
           ignore
             (Sched.spawn
                (Printf.sprintf "shard-worker-%d" w)
                (fun () ->
                  let rng = Rng.create (seed + w) in
                  for _ = 1 to per do
                    Sched.advance think;
                    let k = Rng.int rng nkeys in
                    let home = Partition.shard_of part (Int64.of_int k) in
                    let cross = nshards > 1 && Rng.int rng 100 < cross_pct in
                    let t0 = Sched.now () in
                    if cross then begin
                      (* Draw a partner key on a different shard; the hash
                         partition spreads keys, so this terminates fast. *)
                      let rec partner () =
                        let k2 = Rng.int rng nkeys in
                        let s2 = Partition.shard_of part (Int64.of_int k2) in
                        if s2 = home then partner () else (k2, s2)
                      in
                      let k2, s2 = partner () in
                      incr cross_txs;
                      ignore
                        (Sh.atomically sh ~thread:w ~shards:[ home; s2 ] (fun tx ->
                             let a = Sh.read tx ~shard:home (slot_off k) in
                             let b = Sh.read tx ~shard:s2 (slot_off k2) in
                             Sh.write tx ~shard:home (slot_off k) (Int64.sub a 1L);
                             Sh.write tx ~shard:s2 (slot_off k2) (Int64.add b 1L)))
                    end
                    else
                      ignore
                        (Sh.atomically sh ~thread:w ~shards:[ home ] (fun tx ->
                             let v = Sh.read tx ~shard:home (slot_off k) in
                             Sh.write tx ~shard:home (slot_off k) (Int64.add v 1L)));
                    Stats.Latency.record commit_latency (Sched.now () - t0);
                    done_.(w) <- done_.(w) + 1
                  done))
         done;
         Sched.wait_until ~label:"shard bench done" (fun () ->
             Array.for_all (fun c -> c = per) done_);
         (* End-to-end durable: the run is over only when every committed
            transaction has been persisted and replayed on its shard. *)
         Sh.drain sh;
         stop_ := Sched.now ();
         Sh.stop sh));
  if Sys.getenv_opt "DUDETM_SB_DEBUG" <> None then
    for s = 0 to nshards - 1 do
      let e = Sh.engine sh s in
      let st = Sh.Engine.stats e in
      Printf.eprintf "shard %d: producer_blocks=%d" s (Sh.Engine.vlog_producer_blocks e);
      List.iter
        (fun k -> Printf.eprintf " %s=%d" k (Stats.get st k))
        [
          "bp_throttle_events"; "bp_throttle_cycles"; "flush_records";
          "batch_size_flushes"; "batch_deadline_flushes"; "batch_drain_flushes";
          "batch_hwm_entries"; "batch_bound_hwm"; "pace_events"; "pace_cycles";
        ];
      Printf.eprintf "\n"
    done;
  let cycles = !stop_ - !start in
  {
    sb_nshards = nshards;
    sb_cross_pct = cross_pct;
    sb_ntxs = ntxs_run;
    sb_cross_txs = !cross_txs;
    sb_cycles = cycles;
    sb_ktps =
      (if cycles = 0 then 0.0
       else float_of_int ntxs_run /. Cycles.to_seconds cycles /. 1e3);
    sb_commit_latency = commit_latency;
  }

let pp_commit_latency r =
  let p q = Stats.Latency.percentile r.sb_commit_latency q in
  Printf.sprintf "p50 %d / p95 %d / p99 %d cyc" (p 50.0) (p 95.0) (p 99.0)

let tail_ratio r =
  let p q = Stats.Latency.percentile r.sb_commit_latency q in
  let p50 = p 50.0 in
  if p50 = 0 then 0.0 else float_of_int (p 99.0) /. float_of_int p50

(* Live migration of a bucket range between shards, under traffic.

   The protocol decouples like the engine itself does:

   1. {b Copy} — [begin_migration] seals a Copy handoff record, then opens
      a {e double-write window}: every application transaction touching
      the migrating range commits a cross-shard fragment pair to {e both}
      owners (source authoritative, destination catching up), while
      [copy_step] walks the keyspace shipping the source's committed
      values to the destination in chunked cross-shard transactions.
      Cross transactions serialize under the global cross lock, so a copy
      chunk and a double-write can never interleave on the same key.

   2. {b Flip} — [flip] quiesces new range traffic, waits until every
      window transaction is durable (global frontier at or past the last
      window gtid), then seals Flip, the new partition descriptor (stamped
      with the handoff epoch), and Cleanup — in that order — before
      switching volatile routing to the destination.

   3. {b Cleanup} — [cleanup_step] lazily zeroes the source's slots for
      the moved range in ordinary transactions, then seals Idle.

   Recovery ([attach]) reads the handoff record back and votes by phase:
   Copy means the flip never sealed — the source is still sole authority
   and the destination's partial copy is unreachable scratch, so roll
   back; Flip means the decision is durable — reseal the descriptor if
   the cut hit between the two seals and resume cleanup; Cleanup means
   only source recycling remains.  Every step re-executes idempotently,
   so nested crashes during recovery converge. *)

module Config = Dudetm_core.Config
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Trace = Dudetm_trace.Trace
module Partition = Dudetm_workloads.Partition

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  module Sh = Shard.Make (Tm)

  type resume = Clean | Rolled_back of Handoff.plan | Resumed of Handoff.plan

  type t = {
    sh : Sh.t;
    hj : Handoff.t;
    nkeys : int;
    slot_of : int -> int;
    mutable part : Partition.t;  (* volatile routing *)
    mutable window : Handoff.plan option;  (* double-write window open *)
    mutable cleanup : Handoff.plan option;  (* flipped; src recycle pending *)
    mutable copy_next : int;
    mutable cleanup_next : int;
    mutable last_window_gtid : int;
    mutable range_active : int;  (* in-flight app txs on the migrating range *)
    mutable flipping : bool;
    mutable last_cleanup : Sh.ack option;
  }

  let sealing t = (Sh.config t.sh).Config.fault <> Config.Skip_handoff_seal

  let in_plan t (pl : Handoff.plan) k =
    let b = Partition.bucket_of t.part (Int64.of_int k) in
    b >= pl.blo && b < pl.bhi

  (* ------------------------------------------------------------------ *)
  (* Lifecycle                                                           *)
  (* ------------------------------------------------------------------ *)

  let make sh hj ~nkeys ~slot_of =
    {
      sh;
      hj;
      nkeys;
      slot_of;
      part = Handoff.partition hj;
      window = None;
      cleanup = None;
      copy_next = 0;
      cleanup_next = 0;
      last_window_gtid = 0;
      range_active = 0;
      flipping = false;
      last_cleanup = None;
    }

  let create sh ~part ~nkeys ~slot_of =
    if Partition.nshards part <> Sh.nshards sh then
      invalid_arg "Migrate: partition shard count mismatch";
    (match Partition.scheme part with
    | Partition.Buckets _ -> ()
    | _ -> invalid_arg "Migrate: partition must use the Buckets scheme");
    let base = Config.hjournal_base (Sh.config sh) in
    let hj = Handoff.format (Sh.nvm sh 0) ~base ~part ~epoch:1 in
    make sh hj ~nkeys ~slot_of

  let attach sh ~nkeys ~slot_of =
    let base = Config.hjournal_base (Sh.config sh) in
    let hj = Handoff.attach (Sh.nvm sh 0) ~base ~nshards:(Sh.nshards sh) in
    let t = make sh hj ~nkeys ~slot_of in
    let resume =
      Trace.span ~cat:"migrate" "replay" @@ fun () ->
      match Handoff.state hj with
      | None -> Clean
      | Some (pl, Handoff.Copy) ->
        Handoff.seal_handoff hj None;
        Stats.incr (Sh.stats sh) "migrations_rolled_back";
        Rolled_back pl
      | Some (pl, Handoff.Flip) ->
        let part' =
          Partition.with_owner (Handoff.partition hj) ~blo:pl.blo ~bhi:pl.bhi
            ~owner:pl.dst
        in
        if Handoff.epoch hj < pl.epoch then
          Handoff.seal_descriptor hj part' ~epoch:pl.epoch;
        Handoff.seal_handoff hj (Some (pl, Handoff.Cleanup));
        t.part <- Handoff.partition hj;
        t.cleanup <- Some pl;
        t.cleanup_next <- 0;
        Stats.incr (Sh.stats sh) "migrations_rolled_forward";
        Resumed pl
      | Some (pl, Handoff.Cleanup) ->
        t.cleanup <- Some pl;
        t.cleanup_next <- 0;
        Resumed pl
    in
    (t, resume)

  let partition t = t.part

  let epoch t = Handoff.epoch t.hj

  let owner t key = Partition.shard_of t.part (Int64.of_int key)

  let migrating t =
    match (t.window, t.cleanup) with
    | Some pl, _ -> Some (pl, Handoff.Copy)
    | None, Some pl -> Some (pl, Handoff.Cleanup)
    | None, None -> None

  (* ------------------------------------------------------------------ *)
  (* Routed application transactions                                     *)
  (* ------------------------------------------------------------------ *)

  let apply t ~thread ~key f =
    if key < 0 || key >= t.nkeys then invalid_arg "Migrate: key out of range";
    let off = t.slot_of key in
    (* Hold new range traffic while the flip seals; everything already in
       flight is counted in [range_active] and the flip waits it out. *)
    Sched.wait_until ~label:"migrate.flip quiesce" (fun () ->
        (not t.flipping)
        || (match t.window with Some pl -> not (in_plan t pl key) | None -> true));
    match t.window with
    | Some pl when in_plan t pl key ->
      t.range_active <- t.range_active + 1;
      Fun.protect ~finally:(fun () -> t.range_active <- t.range_active - 1)
      @@ fun () ->
      let r =
        Sh.atomically t.sh ~thread ~shards:[ pl.src; pl.dst ] (fun tx ->
            let v = f (Sh.read tx ~shard:pl.src off) in
            Sh.write tx ~shard:pl.src off v;
            Sh.write tx ~shard:pl.dst off v;
            v)
      in
      (match r with
      | Some (_, Sh.Ack_cross { gtid }) ->
        if gtid > t.last_window_gtid then t.last_window_gtid <- gtid;
        Stats.incr (Sh.stats t.sh) "migrate_double_writes"
      | Some _ | None -> ());
      r
    | _ ->
      let s = Partition.shard_of t.part (Int64.of_int key) in
      Sh.atomically t.sh ~thread ~shards:[ s ] (fun tx ->
          let v = f (Sh.read tx ~shard:s off) in
          Sh.write tx ~shard:s off v;
          v)

  let read_key t ~thread key =
    if key < 0 || key >= t.nkeys then invalid_arg "Migrate: key out of range";
    let s = Partition.shard_of t.part (Int64.of_int key) in
    match
      Sh.atomically t.sh ~thread ~shards:[ s ] (fun tx ->
          Sh.read tx ~shard:s (t.slot_of key))
    with
    | Some (v, _) -> v
    | None -> assert false

  (* Snapshot read of one key, routed through the epoch-stamped partition
     descriptor.  During the Copy double-write window the descriptor still
     names the source, which stays authoritative until the flip — so a
     snapshot reader needs no double-read and no window bookkeeping.  The
     routing decision is re-checked after the snapshot finishes: snapshot
     readers are invisible to the flip's quiesce (they hold no stripes and
     are not counted in [range_active]), so a flip can move the key while
     the read is in flight, after which cleanup may zero the source slot.
     Routing only ever changes at a flip, and a flip bumps the descriptor;
     if the owner shard changed under us, the value may be from the wrong
     side of the flip — retry on the new owner. *)
  let read_key_ro ?durable t ~thread key =
    if key < 0 || key >= t.nkeys then invalid_arg "Migrate: key out of range";
    let rec go () =
      let s = Partition.shard_of t.part (Int64.of_int key) in
      match
        Sh.atomically_ro ?durable t.sh ~thread ~shard:s (fun tx ->
            Sh.read tx ~shard:s (t.slot_of key))
      with
      | Some (v, epoch) ->
        if Partition.shard_of t.part (Int64.of_int key) = s then (v, epoch)
        else begin
          Stats.incr (Sh.stats t.sh) "ro_reroutes";
          go ()
        end
      | None -> assert false
    in
    go ()

  (* ------------------------------------------------------------------ *)
  (* The migration itself                                                *)
  (* ------------------------------------------------------------------ *)

  let begin_migration t ~src ~dst ~blo ~bhi =
    if t.window <> None || t.cleanup <> None then
      invalid_arg "Migrate: a migration is already in progress";
    let n = Sh.nshards t.sh in
    if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
      invalid_arg "Migrate: bad source or destination shard";
    let owners = Partition.owners t.part in
    if blo < 0 || bhi > Array.length owners || blo >= bhi then
      invalid_arg "Migrate: bad bucket range";
    for b = blo to bhi - 1 do
      if owners.(b) <> src then invalid_arg "Migrate: range not owned by source"
    done;
    let pl = { Handoff.src; dst; blo; bhi; epoch = Handoff.epoch t.hj + 1 } in
    if sealing t then Handoff.seal_handoff t.hj (Some (pl, Handoff.Copy));
    t.window <- Some pl;
    t.copy_next <- 0;
    t.last_window_gtid <- 0;
    Trace.instant ~cat:"migrate" "begin" pl.epoch;
    Stats.incr (Sh.stats t.sh) "migrations_started"

  (* Up to [chunk] keys of the plan's range starting at [from], plus the
     scan position to resume from. *)
  let keys_in_range t pl ~from ~chunk =
    let ks = ref [] and n = ref 0 and k = ref from in
    while !n < chunk && !k < t.nkeys do
      if in_plan t pl !k then begin
        ks := !k :: !ks;
        incr n
      end;
      incr k
    done;
    (List.rev !ks, !k)

  let copy_step ?(chunk = 4) t ~thread =
    match t.window with
    | None -> invalid_arg "Migrate: no copy in progress"
    | Some pl ->
      let ks, next = keys_in_range t pl ~from:t.copy_next ~chunk in
      if ks = [] then true
      else begin
        Trace.span ~cat:"migrate" "ship" (fun () ->
            match
              Sh.atomically t.sh ~thread ~shards:[ pl.src; pl.dst ] (fun tx ->
                  List.iter
                    (fun k ->
                      let off = t.slot_of k in
                      let v = Sh.read tx ~shard:pl.src off in
                      (* Re-logging the source value makes the chunk a
                         genuine sibling pair: neither fragment can
                         survive a crash without the other. *)
                      Sh.write tx ~shard:pl.src off v;
                      Sh.write tx ~shard:pl.dst off v)
                    ks)
            with
            | Some ((), Sh.Ack_cross { gtid }) ->
              if gtid > t.last_window_gtid then t.last_window_gtid <- gtid
            | Some _ | None -> ());
        Trace.instant ~cat:"migrate" "ship.keys" (List.length ks);
        Stats.incr (Sh.stats t.sh) "migrate_copy_txs";
        t.copy_next <- next;
        false
      end

  let flip t =
    match t.window with
    | None -> invalid_arg "Migrate: no migration to flip"
    | Some pl ->
      Trace.span ~cat:"migrate" "flip" @@ fun () ->
      t.flipping <- true;
      Fun.protect ~finally:(fun () -> t.flipping <- false) @@ fun () ->
      Sched.wait_until ~label:"migrate.flip quiesce" (fun () ->
          t.range_active = 0);
      (* Everything the window committed is cross-sealed; the flip is only
         safe once all of it is durable on both owners. *)
      if t.last_window_gtid > 0 then
        Sh.wait_durable t.sh (Sh.Ack_cross { gtid = t.last_window_gtid });
      let part' =
        Partition.with_owner t.part ~blo:pl.blo ~bhi:pl.bhi ~owner:pl.dst
      in
      if sealing t then begin
        Handoff.seal_handoff t.hj (Some (pl, Handoff.Flip));
        Handoff.seal_descriptor t.hj part' ~epoch:pl.epoch;
        Handoff.seal_handoff t.hj (Some (pl, Handoff.Cleanup))
      end;
      t.part <- part';
      t.window <- None;
      t.cleanup <- Some pl;
      t.cleanup_next <- 0;
      Trace.instant ~cat:"migrate" "flip.epoch" pl.epoch;
      Stats.incr (Sh.stats t.sh) "migrations_flipped"

  let cleanup_step ?(chunk = 8) t ~thread =
    match t.cleanup with
    | None -> invalid_arg "Migrate: no cleanup pending"
    | Some pl ->
      let ks, next = keys_in_range t pl ~from:t.cleanup_next ~chunk in
      if ks = [] then begin
        (* The Idle seal forgets that cleanup was pending, so the zeroing
           writes must be durable first — a cut after an early seal would
           leave stale source slots no recovery would ever recycle. *)
        (match t.last_cleanup with Some a -> Sh.wait_durable t.sh a | None -> ());
        t.last_cleanup <- None;
        if sealing t then Handoff.seal_handoff t.hj None;
        t.cleanup <- None;
        Stats.incr (Sh.stats t.sh) "migrations_completed";
        true
      end
      else begin
        (match
           Sh.atomically t.sh ~thread ~shards:[ pl.src ] (fun tx ->
               List.iter (fun k -> Sh.write tx ~shard:pl.src (t.slot_of k) 0L) ks)
         with
        | Some (_, ack) -> t.last_cleanup <- Some ack
        | None -> ());
        Stats.incr (Sh.stats t.sh) "migrate_cleanup_txs";
        t.cleanup_next <- next;
        false
      end

  let migrate ?(chunk = 4) t ~thread ~src ~dst ~blo ~bhi =
    begin_migration t ~src ~dst ~blo ~bhi;
    while not (copy_step ~chunk t ~thread) do
      ()
    done;
    flip t;
    while not (cleanup_step ~chunk:(2 * chunk) t ~thread) do
      ()
    done
end

(* The migration coordinator's persistent state: two double-slot
   CRC-sealed records in device 0's handoff-journal region
   (Config.hjournal_base), written with the Rjournal.Slots torn-write
   discipline — each seal goes to the older slot with a monotone sequence
   number, so a power cut mid-write leaves the previous record in force.

   - The *descriptor record* (base + 256) holds the authoritative
     partition descriptor — Partition.seal words plus the handoff epoch
     that sealed them.  Attach validates its CRC and shard count and
     raises Partition.Invalid_partition rather than ever routing on a
     stale or corrupt mapping.
   - The *handoff record* (base + 0) holds the in-progress migration
     {src; dst; range; epoch; phase}.  Its phase tells a recovering
     instance whether to roll the migration back (Copy: the source is
     still the sole authority) or forward (Flip/Cleanup: reseal the
     flipped descriptor idempotently and finish recycling the range). *)

module Nvm = Dudetm_nvm.Nvm
module Slots = Dudetm_core.Rjournal.Slots
module Partition = Dudetm_workloads.Partition

type phase = Copy | Flip | Cleanup

type plan = { src : int; dst : int; blo : int; bhi : int; epoch : int }

type t = {
  nvm : Nvm.t;
  hbase : int;  (* handoff record *)
  dbase : int;  (* descriptor record *)
  mutable hseq : int;
  mutable hslot : int;
  mutable dseq : int;
  mutable dslot : int;
  mutable state : (plan * phase) option;
  mutable part : Partition.t;
  mutable epoch : int;
}

let descriptor_off = 2 * Slots.slot_size

(* Handoff kinds are the phase; the descriptor record uses its own kind. *)
let k_idle = 0

let k_copy = 1

let k_flip = 2

let k_cleanup = 3

let k_desc = 9

let kind_of_phase = function Copy -> k_copy | Flip -> k_flip | Cleanup -> k_cleanup

let phase_of_kind = function
  | k when k = k_copy -> Some Copy
  | k when k = k_flip -> Some Flip
  | k when k = k_cleanup -> Some Cleanup
  | _ -> None

let plan_payload pl =
  [|
    Int64.of_int pl.src;
    Int64.of_int pl.dst;
    Int64.of_int pl.blo;
    Int64.of_int pl.bhi;
    Int64.of_int pl.epoch;
  |]

let plan_of payload =
  let int i = Int64.to_int payload.(i) in
  { src = int 0; dst = int 1; blo = int 2; bhi = int 3; epoch = int 4 }

let desc_payload part ~epoch =
  Array.append [| Int64.of_int epoch |] (Partition.seal part)

let invalid msg = raise (Partition.Invalid_partition ("Partition: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Sealing                                                             *)
(* ------------------------------------------------------------------ *)

let seal_handoff t state =
  let kind, payload =
    match state with
    | None -> (k_idle, [||])
    | Some (pl, ph) -> (kind_of_phase ph, plan_payload pl)
  in
  Slots.write t.nvm ~base:t.hbase ~slot:t.hslot ~seq:t.hseq ~kind payload;
  t.hseq <- t.hseq + 1;
  t.hslot <- 1 - t.hslot;
  t.state <- state

let seal_descriptor t part ~epoch =
  Slots.write t.nvm ~base:t.dbase ~slot:t.dslot ~seq:t.dseq ~kind:k_desc
    (desc_payload part ~epoch);
  t.dseq <- t.dseq + 1;
  t.dslot <- 1 - t.dslot;
  t.part <- part;
  t.epoch <- epoch

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let format nvm ~base ~part ~epoch =
  let t =
    {
      nvm;
      hbase = base;
      dbase = base + descriptor_off;
      hseq = 0;
      hslot = 0;
      dseq = 0;
      dslot = 0;
      state = None;
      part;
      epoch;
    }
  in
  (* Descriptor first: routing authority exists before any handoff state
     could reference it. *)
  let dp = desc_payload part ~epoch in
  Slots.write nvm ~base:t.dbase ~slot:0 ~seq:0 ~kind:k_desc dp;
  Slots.write nvm ~base:t.dbase ~slot:1 ~seq:1 ~kind:k_desc dp;
  t.dseq <- 2;
  Slots.write nvm ~base:t.hbase ~slot:0 ~seq:0 ~kind:k_idle [||];
  Slots.write nvm ~base:t.hbase ~slot:1 ~seq:1 ~kind:k_idle [||];
  t.hseq <- 2;
  t

let attach nvm ~base ~nshards =
  let dbase = base + descriptor_off in
  match Slots.newest nvm ~base:dbase with
  | None -> invalid "no valid partition descriptor record (both slots torn or corrupt)"
  | Some (dseq, kind, payload, dslot) ->
    if kind <> k_desc || Array.length payload < 2 then
      invalid "descriptor record has the wrong shape";
    let epoch = Int64.to_int payload.(0) in
    let part =
      Partition.unseal ~expect_nshards:nshards
        (Array.sub payload 1 (Array.length payload - 1))
    in
    let t =
      {
        nvm;
        hbase = base;
        dbase;
        hseq = 0;
        hslot = 0;
        dseq = dseq + 1;
        dslot = 1 - dslot;
        state = None;
        part;
        epoch;
      }
    in
    (match Slots.newest nvm ~base with
    | None ->
      (* Both handoff slots torn: no handoff was ever sealed (or the seal
         itself was cut mid-write before either slot was valid, which can
         only happen at format time).  Self-heal to Idle. *)
      Slots.write nvm ~base ~slot:0 ~seq:0 ~kind:k_idle [||];
      Slots.write nvm ~base ~slot:1 ~seq:1 ~kind:k_idle [||];
      t.hseq <- 2
    | Some (hseq, kind, payload, hslot) ->
      t.hseq <- hseq + 1;
      t.hslot <- 1 - hslot;
      if kind = k_idle then t.state <- None
      else
        (match phase_of_kind kind with
        | Some ph when Array.length payload >= 5 -> t.state <- Some (plan_of payload, ph)
        | _ -> invalid "handoff record has an unknown phase"));
    t

let state t = t.state

let partition t = t.part

let epoch t = t.epoch

module Nvm = Dudetm_nvm.Nvm
module Checksum = Dudetm_log.Checksum

type t = {
  nvm : Nvm.t;
  base : int;
  capacity : int;
  mutable lines : int list;  (* cached copy, ascending *)
}

let magic = 0x4244554445424144L  (* "BDUDEBAD" *)

(* On-device image: magic u64 | count u64 | line[capacity] u64 | crc u64,
   CRC over everything before it. *)
let image_size capacity = (3 + capacity) * 8

let encode t =
  let b = Bytes.make (image_size t.capacity) '\000' in
  Bytes.set_int64_le b 0 magic;
  Bytes.set_int64_le b 8 (Int64.of_int (List.length t.lines));
  List.iteri (fun i l -> Bytes.set_int64_le b (16 + (i * 8)) (Int64.of_int l)) t.lines;
  let crc_off = Bytes.length b - 8 in
  Bytes.set_int64_le b crc_off (Int64.of_int32 (Checksum.crc32 b 0 crc_off));
  b

let persist_table t =
  let b = encode t in
  Nvm.store_bytes t.nvm t.base b;
  Nvm.persist t.nvm ~off:t.base ~len:(Bytes.length b)

let format nvm cfg =
  let t =
    { nvm; base = Config.badline_base cfg; capacity = cfg.Config.badline_capacity; lines = [] }
  in
  persist_table t;
  t

(* A corrupt or poisoned table reformats empty: losing remap entries only
   costs future re-detection of the stuck lines, never data. *)
let attach nvm cfg =
  let base = Config.badline_base cfg in
  let capacity = cfg.Config.badline_capacity in
  let sz = image_size capacity in
  match Nvm.persisted_bytes nvm base sz with
  | exception Nvm.Media_error _ -> (format nvm cfg, false)
  | b ->
    let crc_off = sz - 8 in
    if
      Bytes.get_int64_le b 0 <> magic
      || Int64.to_int32 (Bytes.get_int64_le b crc_off) <> Checksum.crc32 b 0 crc_off
    then (format nvm cfg, false)
    else begin
      let n = Int64.to_int (Bytes.get_int64_le b 8) in
      if n < 0 || n > capacity then (format nvm cfg, false)
      else begin
        let lines = List.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (16 + (i * 8)))) in
        ({ nvm; base; capacity; lines = List.sort compare lines }, true)
      end
    end

let mem t l = List.mem l t.lines

let lines t = t.lines

let count t = List.length t.lines

let capacity t = t.capacity

let full t = count t >= t.capacity

let add t l =
  if mem t l then true
  else if full t then false
  else begin
    t.lines <- List.sort compare (l :: t.lines);
    persist_table t;
    true
  end

(** Persistent per-extent heap CRC directory.

    Divides the data heap into fixed-size extents ({!Config.crc_extent}
    bytes) and keeps one CRC32 per extent in its own NVM region.  The
    engine refreshes the entries of every extent Reproduce dirtied at
    checkpoint time, so after a clean shutdown (and after recovery replay)
    the directory covers the whole heap: media corruption of checkpointed
    data — otherwise silent, since no log record re-validates it — is
    caught by the scrub pass re-verifying extents against the directory.

    Entries are stored as u64 slots (low 32 bits hold the CRC).  Between a
    Reproduce write and the next checkpoint an entry is intentionally
    stale; recovery replay re-applies exactly the records covering those
    extents and refreshes them. *)

type t

val format : Dudetm_nvm.Nvm.t -> Config.t -> t
(** Initialize the directory for a zero-filled heap and persist it. *)

val attach : Dudetm_nvm.Nvm.t -> Config.t -> t
(** Re-open an existing directory (entries are read on demand). *)

val n_extents : t -> int

val extent_size : t -> int

val extent_of_addr : t -> int -> int
(** Extent index covering heap byte address [addr]. *)

val update : t -> int list -> unit
(** [update t extents] recomputes the listed extents' CRCs from the
    device's latest image and persists the touched slots under a single
    persist ordering.  Called at checkpoint time, when Reproduce has
    already persisted those extents (latest = persisted there). *)

val update_unpersisted : t -> int list -> unit
(** Like {!update} but leaves the slots for the caller's next persist
    ordering (recovery replay batches them with the replayed data). *)

val stored_crc : t -> int -> int32

val compute_latest : t -> int -> int32
(** CRC of the extent's current latest-image content. *)

val compute_persisted : t -> int -> int32
(** CRC of the extent's persisted content; raises [Nvm.Media_error] if the
    extent contains a poisoned line. *)

val verify_extent : t -> int -> [ `Ok | `Mismatch | `Poisoned ]
(** Check one extent's persisted content against its persisted directory
    entry. *)

module Mem = Dudetm_nvm.Mem
module Nvm = Dudetm_nvm.Nvm
module Shadow = Dudetm_shadow.Shadow
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Log_entry = Dudetm_log.Log_entry
module Vlog = Dudetm_log.Vlog
module Plog = Dudetm_log.Plog
module Combine = Dudetm_log.Combine
module Lz = Dudetm_log.Lz
module Tm_intf = Dudetm_tm.Tm_intf
module Trace = Dudetm_trace.Trace

exception Pmem_exhausted

exception Drain_stalled of string

exception Read_only of string

exception Read_only_violation = Tm_intf.Read_only_violation

exception Daemon_fault of string

type recovery_report = {
  durable : int;
  replayed_txs : int;
  discarded_txs : int;
  discarded_records : int;
  corrupted_records : int;
  quarantined_lines : int;
}

let pmalloc_cost = 120

(* One sealed log record as handed to the replication layer: the PR 6
   group-commit batch, reused verbatim as the wire unit.  [seq] is the
   record's ring sequence number (the replication stream's dedup key),
   [lo..hi] its contiguous transaction-ID range, [payload] the exact
   CRC-coverable bytes the primary persisted. *)
type shipment = {
  ship_seq : int;
  ship_lo : int;
  ship_hi : int;
  ship_payload : bytes;
}

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  type view = Flat of Mem.t | Paged of Shadow.t

  (* A unit of Reproduce work: one whole combined record, or one
     transaction of a plain record.  [lo..hi] is its contiguous global
     transaction-ID range (lo = hi for plain items). *)
  type item = {
    lo : int;
    hi : int;
    entries : Log_entry.t list;
    region : int;
    end_off : int;
    rec_next_seq : int;
    last_of_record : bool;
  }

  (* A sealed-but-unflushed batch in the pipelined (combined) persist
     path: the combiner has merged, combined and encoded it; the flusher
     still has to write it to NVM.  Lives in [t] so a combiner restart
     never re-seals (or drops) a batch already handed to the flusher. *)
  type prepared_batch = {
    pb_lo : int;
    pb_hi : int;
    pb_entries : Log_entry.t list;  (* combined, end marks included *)
    pb_payload : bytes;
  }

  type t = {
    cfg : Config.t;
    nvm : Nvm.t;
    view : view;
    tm : Tm.t;
    tid_base : int;
    vlogs : Vlog.t array;
    plogs : Plog.t array;
    ckpt : Checkpoint.t;
    rjournal : Rjournal.t;
    crcdir : Crcdir.t;
    badlines : Badline.t;
    dirty_extents : (int, unit) Hashtbl.t;  (* heap extents Reproduce touched since last checkpoint *)
    allocator : Alloc.t;  (* current, serves pmalloc *)
    repro_alloc : Alloc.t;  (* allocator state as of [applied] *)
    applied_cell : int ref;  (* = applied; shared with the shadow's gate *)
    mutable durable : int;
    flushed_set : (int, unit) Hashtbl.t;
    mutable persisted_data : int;  (* data persisted for all tids <= this *)
    mutable checkpointed : int;
    queues : item Queue.t array;  (* per region, lo ascending *)
    mutable pending_recycle : (int * int * int) list;  (* region, end_off, next_seq *)
    (* Daemon working state lives in [t], not in daemon-local closures, so
       a supervisor restart resumes exactly where the failed daemon left
       off: staged-but-unflushed combined transactions, the next group ID,
       and reproduced-but-unpersisted dirty ranges all survive. *)
    staging : (int, Log_entry.t list) Hashtbl.t;  (* combined persist: tid -> body *)
    mutable next_flush : int;  (* combined persist: next group's first tid *)
    prepared : prepared_batch Queue.t;  (* sealed batches awaiting NVM flush *)
    mutable combiner_done : bool;  (* combiner exited; flusher may too *)
    mutable flush_started_at : int;  (* ts of the in-flight NVM flush; -1 idle *)
    batch_open_at : int array;  (* per vlog: ts the open batch started; -1 *)
    mutable staged_open_at : int;  (* combined: ts oldest staged tx arrived; -1 *)
    mutable batch_bound : int;  (* adaptive entries-per-record bound *)
    mutable batch_ewma : float;  (* smoothed backlog-at-flush estimate *)
    mutable durable_waiters : int;  (* threads blocked in [wait_durable] *)
    mutable drain_pace : float;  (* measured NVM drain cost, cycles/entry *)
    repro_ranges : (int * int) list ref;  (* applied but not yet persisted *)
    (* Cross-shard replay gate, installed by the sharding layer: Reproduce
       may apply transaction [tid] only once the gate admits it (all
       sibling fragments of every cross-shard transaction at or below it
       are durable on their own shards).  [None]: single-region instance,
       no gating. *)
    mutable cross_gate : (int -> bool) option;
    mutable cross_frontier : int;  (* max replayed cross-shard gtid *)
    (* Durable-only snapshot watermark, installed by layers that gate
       durability beyond the local device (shard effective IDs, replication
       quorum).  Thunk returns an engine-space tid; [None]: the local
       durable ID.  Must be a pure read — snapshot readers poll it. *)
    mutable ro_watermark : (unit -> int) option;
    (* Replication taps, installed by lib/replica.  [ship_hook] fires on
       the Persist daemon right after a log record's NVM persist completes
       (the batch is sealed locally); [replay_gate] stops a follower's
       Reproduce from applying a transaction the cluster has not
       quorum-acked yet, so promotion can still truncate to the quorum
       prefix (replayed state cannot be un-replayed). *)
    mutable ship_hook : (shipment -> unit) option;
    mutable replay_gate : (int -> bool) option;
    fault_rng : Rng.t;  (* injected transient daemon failures *)
    (* Front-end context supplement, installed by layers above the engine
       (the serving front end): folded into the [Drain_stalled] diagnostic
       so an operator can tell "engine stalled" from "front end overloaded"
       (queue depth, shed counts, gate state).  Must be a pure read. *)
    mutable drain_context : (unit -> string) option;
    mutable read_only : string option;  (* degraded mode: Some reason *)
    mutable stop_flag : bool;
    mutable draining : bool;
    mutable started : bool;
    stats : Stats.t;
  }

  (* A transaction body runs against either a full TM transaction or a
     read-only snapshot; the handle decides which fast path [read] takes
     and makes [write] on a snapshot a typed error. *)
  type txh = Rw of Tm.tx | Snap of Tm.ro

  type tx = {
    t : t;
    thread : int;
    tm_tx : txh;
    touched : (int, unit) Hashtbl.t;  (* pinned shadow pages *)
    mutable touched_list : int list;
    wrote : (int, unit) Hashtbl.t;  (* pages written (for touching IDs) *)
    mutable wrote_list : int list;
    mutable allocs : (int * int) list;  (* this attempt's pmallocs *)
    mutable frees : (int * int) list;  (* deferred pfrees *)
    mutable cross_seal : (int * int) option;  (* (gtid, mask) to seal at commit *)
  }

  let applied t = !(t.applied_cell)

  let set_applied t v = t.applied_cell := v

  let store_of_view = function
    | Flat mem -> { Tm_intf.load = Mem.get_u64 mem; store = Mem.set_u64 mem }
    | Paged sh -> { Tm_intf.load = Shadow.load_u64 sh; store = Shadow.store_u64 sh }

  let make_view cfg nvm applied_cell =
    match cfg.Config.shadow_frames with
    | None ->
      let mem = Mem.create cfg.Config.heap_size in
      Mem.set_bytes mem 0 (Nvm.load_bytes nvm 0 cfg.Config.heap_size);
      Flat mem
    | Some frames ->
      let scfg = Shadow.default_config cfg.Config.shadow_mode ~frames in
      Paged (Shadow.create scfg ~nvm ~applied_id:(fun () -> !applied_cell))

  let build cfg nvm ~tid_base ~plogs ~ckpt ~rjournal ~crcdir ~badlines ~allocator ~repro_alloc =
    let applied_cell = ref tid_base in
    let view = make_view cfg nvm applied_cell in
    let tm = Tm.create ~costs:cfg.Config.tm_costs ~seed:cfg.Config.seed (store_of_view view) in
    {
      cfg;
      nvm;
      view;
      tm;
      tid_base;
      vlogs =
        Array.init cfg.Config.nthreads (fun _ ->
            Vlog.create
              ~unbounded:(cfg.Config.mode = Config.Inf)
              ~capacity:cfg.Config.vlog_capacity ());
      plogs;
      ckpt;
      rjournal;
      crcdir;
      badlines;
      dirty_extents = Hashtbl.create 256;
      allocator;
      repro_alloc;
      applied_cell;
      durable = tid_base;
      flushed_set = Hashtbl.create 256;
      persisted_data = tid_base;
      checkpointed = tid_base;
      queues = Array.init (Array.length plogs) (fun _ -> Queue.create ());
      pending_recycle = [];
      staging = Hashtbl.create 1024;
      next_flush = tid_base + 1;
      prepared = Queue.create ();
      combiner_done = false;
      flush_started_at = -1;
      batch_open_at = Array.make cfg.Config.nthreads (-1);
      staged_open_at = -1;
      batch_bound = cfg.Config.batch_max_entries;
      batch_ewma = float_of_int cfg.Config.batch_max_entries;
      durable_waiters = 0;
      drain_pace = 0.0;
      repro_ranges = ref [];
      cross_gate = None;
      cross_frontier = 0;
      ro_watermark = None;
      ship_hook = None;
      replay_gate = None;
      fault_rng = Rng.create ((cfg.Config.seed * 31) + 0x5eed);
      drain_context = None;
      read_only = None;
      stop_flag = false;
      draining = false;
      started = false;
      stats = Stats.create ();
    }

  let create ?(nvm_label = "nvm") cfg =
    Config.validate cfg;
    let nvm = Nvm.create ~label:nvm_label cfg.Config.pmem ~size:(Config.nvm_size cfg) in
    let regions = Config.plog_regions cfg in
    let plogs =
      Array.init regions (fun i ->
          Plog.format nvm ~base:(Config.plog_base cfg i) ~size:cfg.Config.plog_size)
    in
    let allocator =
      Alloc.create ~base:cfg.Config.root_size ~size:(cfg.Config.heap_size - cfg.Config.root_size)
    in
    let repro_alloc = Alloc.copy allocator in
    let ckpt =
      Checkpoint.format nvm ~base:(Config.meta_base cfg) ~size:cfg.Config.meta_size
        { Checkpoint.reproduced_upto = 0; cross_frontier = 0;
          free_extents = Alloc.extents allocator }
    in
    let crcdir = Crcdir.format nvm cfg in
    let badlines = Badline.format nvm cfg in
    let rjournal = Rjournal.format nvm ~base:(Config.rjournal_base cfg) in
    build cfg nvm ~tid_base:0 ~plogs ~ckpt ~rjournal ~crcdir ~badlines ~allocator ~repro_alloc

  (* Carve every recorded bad line out of the {e serving} allocator so
     pmalloc never hands out media known to drop writes.  Only the serving
     side: [repro_alloc] must mirror exactly the logged Alloc/Free history
     (new allocations already avoid the lines, so no future log entry can
     overlap them).  A line inside an already-allocated block is skipped —
     reserve only claims free space. *)
  let shun_bad_lines t =
    let ls = Nvm.line_size t.nvm in
    List.iter
      (fun l ->
        let off = l * ls in
        if off + ls > t.cfg.Config.root_size && off < t.cfg.Config.heap_size then begin
          let off = max off t.cfg.Config.root_size in
          let len = min (t.cfg.Config.heap_size - off) ls in
          try Alloc.reserve t.allocator ~off ~len with Invalid_argument _ -> ()
        end)
      (Badline.lines t.badlines)

  (* ------------------------------------------------------------------ *)
  (* Daemon supervision and fault injection                              *)
  (* ------------------------------------------------------------------ *)

  (* Injected transient daemon failure.  Only raised at work-unit
     boundaries where every piece of in-flight state already lives in [t]
     (or in NVM), so a restart resumes from the persistent position without
     duplicating or dropping work. *)
  let maybe_fault t name =
    let rate = t.cfg.Config.daemon_fault_rate in
    if rate > 0.0 && Rng.float t.fault_rng < rate then begin
      Stats.incr t.stats "daemon_faults";
      raise (Daemon_fault name)
    end

  (* Restart a failed daemon with capped exponential backoff (seeded
     jitter).  Only the injected [Daemon_fault] is retried: a real bug
     escaping a daemon must still surface, or the checker would paper over
     genuine failures. *)
  let supervise t loop =
    let failures = ref 0 in
    let rec go () =
      match loop () with
      | () -> ()
      | exception Daemon_fault _ ->
        Stats.incr t.stats "daemon_restarts";
        Trace.instant ~cat:"daemon" "restart" !failures;
        let base = t.cfg.Config.daemon_backoff_base in
        let cap = t.cfg.Config.daemon_backoff_cap in
        let ceiling = min cap (base lsl min !failures 20) in
        let half = max 1 ((ceiling + 1) / 2) in
        let wait = half + Rng.int t.fault_rng half in
        incr failures;
        Stats.add t.stats "daemon_backoff_cycles" wait;
        Sched.advance wait;
        go ()
    in
    go ()

  (* Record a high-water mark: counters are monotone, so push the counter
     up to [v] when it is a new maximum. *)
  let stat_max stats key v =
    let cur = Stats.get stats key in
    if v > cur then Stats.add stats key (v - cur)

  (* ------------------------------------------------------------------ *)
  (* Durable-ID bookkeeping                                              *)
  (* ------------------------------------------------------------------ *)

  let note_flushed t tids =
    List.iter (fun tid -> Hashtbl.replace t.flushed_set tid ()) tids;
    while Hashtbl.mem t.flushed_set (t.durable + 1) do
      Hashtbl.remove t.flushed_set (t.durable + 1);
      t.durable <- t.durable + 1
    done

  let durable_id t = t.durable

  let applied_id = applied

  let last_tid t = t.tid_base + Tm.last_tid t.tm

  (* Advertise the wait: a Persist daemon holding an open batch for the
     group-commit deadline flushes immediately while anyone is blocked
     here, so batching never adds latency to a durability-bound caller. *)
  let wait_durable t tid =
    if t.durable < tid then begin
      t.durable_waiters <- t.durable_waiters + 1;
      Fun.protect
        ~finally:(fun () -> t.durable_waiters <- t.durable_waiters - 1)
        (fun () -> Sched.wait_until ~label:"durable id" (fun () -> t.durable >= tid))
    end

  let set_cross_gate t gate = t.cross_gate <- gate

  let cross_frontier t = t.cross_frontier

  let set_ro_watermark t wm = t.ro_watermark <- wm

  let set_drain_context t f = t.drain_context <- f

  (* Engine-space watermark durable-only snapshots pin at: the installed
     one (shard effective IDs, replication quorum) or the local durable
     ID.  Pure. *)
  let ro_watermark t =
    match t.ro_watermark with Some f -> f () | None -> t.durable

  let set_ship_hook t hook = t.ship_hook <- hook

  let set_replay_gate t gate = t.replay_gate <- gate

  let ship t ~seq ~lo ~hi ~payload =
    match t.ship_hook with
    | None -> ()
    | Some f -> f { ship_seq = seq; ship_lo = lo; ship_hi = hi; ship_payload = payload }

  (* The next queued replay item, if its turn has come (pure: no pop). *)
  let peek_next_item t =
    let target = applied t + 1 in
    let found = ref None in
    Array.iter
      (fun q ->
        match Queue.peek_opt q with
        | Some it when it.lo = target -> found := Some it
        | _ -> ())
      t.queues;
    !found

  (* Highest cross-shard global ID sealed into an item's entries (0 when
     the item carries no fragment).  Gating on the max is enough: fragment
     admissibility is monotone in the global ID. *)
  let item_gate_gtid it =
    List.fold_left
      (fun acc e -> match e with Log_entry.Cross { gtid; _ } -> max acc gtid | _ -> acc)
      0 it.entries

  (* May Reproduce apply the next transaction?  The gate predicate is pure
     (it only reads sibling shards' durable counters), so it is safe inside
     [Sched.wait_until] conditions.  The gate keys on the global ID read
     from the pending item's own [Cross] seal — the log record is the
     source of truth, so a fragment can never slip past the gate before the
     sharding layer has registered its sibling set. *)
  let can_apply t =
    t.durable > applied t
    (* Under the Skip_batch_seal mutant the durable ID runs ahead of the
       flushed records, so the "durable implies queued" invariant that
       [pop_next_item] asserts does not hold; wait for the item instead of
       crashing the daemon — the campaign must catch the mutant as a
       durability violation at a power cut, not as an engine exception. *)
    && (t.cfg.Config.fault <> Config.Skip_batch_seal || peek_next_item t <> None)
    && (match t.cross_gate with
       | Some gate when t.cfg.Config.fault <> Config.Skip_fragment_gate -> (
         match peek_next_item t with
         | Some it ->
           let g = item_gate_gtid it in
           g = 0 || gate g
         | None -> true)
       | _ -> true)
    (* Follower-side quorum replay gate: never apply past what the cluster
       has acknowledged, so the promotion-time durable cut stays above the
       checkpoint floor.  Pure (reads a watermark cell owned by the
       replication layer), so it is safe inside [Sched.wait_until]. *)
    && (match t.replay_gate with
       | Some gate -> (
         match peek_next_item t with Some it -> gate it.hi | None -> true)
       | None -> true)

  (* ------------------------------------------------------------------ *)
  (* Persist step                                                        *)
  (* ------------------------------------------------------------------ *)

  (* Split a committed entry run into (tid, entries-including-end-mark)
     groups. *)
  let split_txs entries =
    let rec go cur acc = function
      | [] ->
        assert (cur = []);
        List.rev acc
      | (Log_entry.Tx_end { tid } as e) :: rest ->
        go [] ((tid, List.rev (e :: cur)) :: acc) rest
      | e :: rest -> go (e :: cur) acc rest
    in
    go [] [] entries

  let queue_items t region entries (record : Plog.record) =
    let groups = split_txs entries in
    let n = List.length groups in
    List.iteri
      (fun idx (tid, es) ->
        Queue.push
          {
            lo = tid;
            hi = tid;
            entries = es;
            region;
            end_off = record.Plog.end_off;
            rec_next_seq = record.Plog.seq + 1;
            last_of_record = idx = n - 1;
          }
          t.queues.(region))
      groups

  (* ------------------------------------------------------------------ *)
  (* Bounded adaptive group commit                                       *)
  (*                                                                     *)
  (* Instead of draining the whole backlog into one record (whose NVM     *)
  (* transfer then occupies the channel for the entire backlog's bytes —  *)
  (* the 150x commit-latency tail), the Persist daemons cut records at a  *)
  (* bounded number of entries and flush a batch when it reaches the      *)
  (* bound OR when it has aged past [batch_deadline], whichever first.    *)
  (* The bound adapts to the recent arrival rate: an EWMA of the backlog  *)
  (* observed at each flush, clamped to [batch_min, batch_max], so light  *)
  (* load gets small low-latency batches and heavy load amortizes the     *)
  (* per-record overhead without ever exceeding the cap.                  *)
  (* ------------------------------------------------------------------ *)

  let batch_cap t = max 1 (min t.batch_bound t.cfg.Config.batch_max_entries)

  (* Fold one observed backlog into the adaptive bound. *)
  let note_batch_fill t pending =
    let alpha = 0.25 in
    t.batch_ewma <- ((1.0 -. alpha) *. t.batch_ewma) +. (alpha *. float_of_int pending);
    let b = int_of_float (ceil t.batch_ewma) in
    t.batch_bound <-
      max t.cfg.Config.batch_min_entries (min b t.cfg.Config.batch_max_entries);
    stat_max t.stats "batch_bound_hwm" t.batch_bound

  (* Fold one NVM record write into the measured drain rate (cycles per
     log entry, wall time at the channel including contention).  Admission
     pacing uses this to charge producers the real cost of the backlog
     they create. *)
  let note_drain_pace t ~entries ~cycles =
    if entries > 0 && cycles >= 0 then begin
      let per = float_of_int cycles /. float_of_int entries in
      t.drain_pace <-
        (if t.drain_pace <= 0.0 then per
         else (0.75 *. t.drain_pace) +. (0.25 *. per))
    end

  (* Flush the longest prefix of whole transactions from thread [i]'s
     volatile log that fits the adaptive entry bound and the persistent
     ring's free space.  Returns true if a record was written. *)
  let flush_thread t i ~wait_space =
    let vlog = t.vlogs.(i) in
    let plog = t.plogs.(i) in
    let hd = Vlog.head vlog in
    let cm = Vlog.committed vlog in
    if cm <= hd then false
    else begin
      stat_max t.stats "vlog_hwm_entries" (cm - hd);
      let budget () = Plog.free_space plog - Plog.record_overhead - 1 in
      (* Find the cut: last tx boundary within the entry cap and byte
         budget, but always at least one whole transaction. *)
      let cap = batch_cap t in
      let find_cut bytes_avail =
        let pos = ref hd and cut = ref hd and size = ref 0 and n = ref 0 in
        let first_tx_done = ref false in
        (try
           while !pos < cm do
             let e = Vlog.get vlog !pos in
             let sz = Log_entry.encoded_size e in
             if !first_tx_done && (!n >= cap || !size + sz > bytes_avail) then
               raise Exit;
             size := !size + sz;
             incr n;
             incr pos;
             (match e with
             | Log_entry.Tx_end _ ->
               if !size <= bytes_avail then begin
                 cut := !pos;
                 first_tx_done := true
               end
             | Log_entry.Write _ | Log_entry.Alloc _ | Log_entry.Free _
             | Log_entry.Cross _ -> ())
           done
         with Exit -> ());
        !cut
      in
      let first_tx_bytes () =
        let pos = ref hd and size = ref 0 in
        let continue = ref true in
        while !continue && !pos < cm do
          let e = Vlog.get vlog !pos in
          size := !size + Log_entry.encoded_size e;
          (match e with Log_entry.Tx_end _ -> continue := false | _ -> ());
          incr pos
        done;
        !size
      in
      let need1 = first_tx_bytes () in
      if need1 + Plog.record_overhead + 1 > Plog.data_capacity plog then
        invalid_arg "Dudetm: a single transaction exceeds the persistent log ring";
      if budget () < need1 then
        if wait_space then
          Sched.wait_until ~label:"plog space" (fun () -> budget () >= need1 || t.stop_flag)
        else ();
      if budget () < need1 then false
      else
        (* The Fun.protect-based [Trace.span] keeps the trace balanced even
           when the scheduler kills this daemon mid-flush.  [persist.batch]
           covers the whole unit (cut, CPU work, NVM write, bookkeeping);
           the inner [persist.flush] isolates the NVM record write. *)
        Trace.span ~cat:"persist" "batch" (fun () ->
            let cut = find_cut (budget ()) in
            assert (cut > hd);
            let entries = List.init (cut - hd) (fun k -> Vlog.get vlog (hd + k)) in
            let tids = Log_entry.tids entries in
            stat_max t.stats "batch_hwm_entries" (List.length entries);
            Sched.advance (t.cfg.Config.flush_cost_per_entry * List.length entries);
            let payload = Log_entry.encode_payload entries in
            (* Seeded mutant (checker self-test only): skip the record's persist
               fence, so the durable ID published below covers a record still
               sitting in the cache — a crash loses transactions the
               application already acknowledged. *)
            let t_io = Sched.now () in
            let record =
              Trace.span ~cat:"persist" "flush" (fun () ->
                  Plog.append
                    ~persist:(t.cfg.Config.fault <> Config.Early_durable_publish)
                    plog payload)
            in
            note_drain_pace t ~entries:(List.length entries)
              ~cycles:(Sched.now () - t_io);
            Stats.incr t.stats "flush_records";
            Stats.add t.stats "flush_payload_bytes" (Bytes.length payload);
            stat_max t.stats "plog_hwm_bytes" (Plog.used_space plog);
            queue_items t i entries record;
            Vlog.consume_to vlog cut;
            note_flushed t tids;
            (match tids with
            | [] -> ()
            | first :: _ ->
              let lo = List.fold_left min first tids in
              let hi = List.fold_left max first tids in
              ship t ~seq:record.Plog.seq ~lo ~hi ~payload);
            true)
    end

  let persist_plain_loop t p =
    let mine =
      List.filter
        (fun i -> i mod t.cfg.Config.persist_threads = p)
        (List.init t.cfg.Config.nthreads (fun i -> i))
    in
    let pending i = Vlog.committed t.vlogs.(i) - Vlog.head t.vlogs.(i) in
    let has_data i = pending i > 0 in
    let deadline = t.cfg.Config.batch_deadline in
    (* Deadline aging polls by advancing simulated time: a time-based
       [wait_until] predicate would deadlock the scheduler once every
       other thread blocks (nothing else advances the clock). *)
    let poll_step = max 1 (deadline / 4) in
    let rec loop () =
      maybe_fault t "persist";
      let now = Sched.now () in
      List.iter
        (fun i ->
          if has_data i then begin
            if t.batch_open_at.(i) < 0 then t.batch_open_at.(i) <- now
          end
          else t.batch_open_at.(i) <- -1)
        mine;
      (* Flush an undersized batch immediately when somebody is blocked on
         durability or the run is winding down; otherwise hold it for the
         size bound or the deadline. *)
      let urgent = t.durable_waiters > 0 || t.draining || t.stop_flag in
      let ripe i =
        has_data i
        && (pending i >= batch_cap t || urgent
           || (t.batch_open_at.(i) >= 0 && now - t.batch_open_at.(i) >= deadline))
      in
      (* Fullest vlog first: the producer closest to blocking on a full
         ring is served before lightly loaded ones, which is what converts
         the old drain-everything latency spike into a bounded wait.  A
         ripe vlog whose persistent ring is full (recycle pending) must
         not stall the others: fall through to the next-fullest ripe vlog
         and only wait when none can make progress. *)
      let ripe_by_fill =
        List.sort
          (fun a b -> compare (pending b) (pending a))
          (List.filter ripe mine)
      in
      let flushed =
        List.fold_left
          (fun done_ i ->
            match done_ with
            | Some _ -> done_
            | None ->
              let n = pending i in
              if flush_thread t i ~wait_space:false then begin
                Stats.incr t.stats
                  (if n >= batch_cap t then "batch_size_flushes"
                   else if urgent then "batch_drain_flushes"
                   else "batch_deadline_flushes");
                note_batch_fill t n;
                Some i
              end
              else None)
          None ripe_by_fill
      in
      match flushed with
      | Some i ->
        t.batch_open_at.(i) <- (if has_data i then Sched.now () else -1);
        Sched.yield ();
        loop ()
      | None when ripe_by_fill <> [] ->
        (* Every ripe vlog's ring is full: poll by advancing so Reproduce
           gets simulated time to checkpoint and recycle (a predicate wait
           here could spin without advancing the clock). *)
        Sched.advance poll_step;
        loop ()
      | None ->
        if t.stop_flag && not (List.exists has_data mine) then ()
        else if List.exists has_data mine then begin
          (* An open batch below the bound: age it toward the deadline. *)
          Sched.advance poll_step;
          loop ()
        end
        else begin
          Sched.wait_until ~label:"persist: waiting for logs" (fun () ->
              t.stop_flag || List.exists has_data mine);
          Sched.yield ();
          loop ()
        end
    in
    loop ()

  (* Combined mode is a two-stage pipeline over two daemons:

       combiner ("persist-0")      merges all volatile logs into batches of
                                   up to [group_size] transactions in
                                   global ID order, combines (and
                                   optionally compresses) each batch and
                                   seals it onto [t.prepared];
       flusher  ("persist-flush")  pops sealed batches and writes each as
                                   one record to ring 0, publishing the
                                   durable IDs when the persist completes.

     The combiner's CPU work on batch [k+1] (merge, last-write-wins
     combine, CRC/encode, compression) genuinely overlaps batch [k]'s NVM
     channel occupancy because the two stages run on different simulated
     threads.  [t.prepared] is bounded: a deep pipeline would only grow
     the window of sealed-but-unflushed (hence volatile) acknowledged-by
     -nobody work without adding overlap. *)
  let max_prepared = 2

  let persist_combined_loop t =
    let staging = t.staging in
    let builder = Combine.builder () in
    let drain_vlogs () =
      Array.iter
        (fun vlog ->
          let hd = Vlog.head vlog and cm = Vlog.committed vlog in
          if cm > hd then begin
            let entries = List.init (cm - hd) (fun k -> Vlog.get vlog (hd + k)) in
            List.iter
              (fun (tid, es) ->
                (* strip the end mark; re-added when the group is built *)
                let body = List.filter (function Log_entry.Tx_end _ -> false | _ -> true) es in
                Hashtbl.replace staging tid body)
              (split_txs entries);
            Vlog.consume_to vlog cm
          end)
        t.vlogs
    in
    let contiguous () =
      let n = ref 0 in
      while Hashtbl.mem staging (t.next_flush + !n) do
        incr n
      done;
      !n
    in
    let seal_batch take =
      Trace.span ~cat:"persist" "batch" (fun () ->
          let lo = t.next_flush in
          let hi = lo + take - 1 in
          let overlapping = t.flush_started_at >= 0 in
          let combined, cstats =
            Trace.span ~cat:"persist" "combine" (fun () ->
                List.iter
                  (fun tid ->
                    Combine.feed_list builder (Hashtbl.find staging tid);
                    Combine.feed builder (Log_entry.Tx_end { tid }))
                  (List.init take (fun k -> lo + k));
                let r = Combine.seal builder in
                Sched.advance
                  (t.cfg.Config.flush_cost_per_entry * (snd r).Combine.entries_in);
                r)
          in
          Stats.add t.stats "combine_writes_in" cstats.Combine.writes_in;
          Stats.add t.stats "combine_writes_out" cstats.Combine.writes_out;
          stat_max t.stats "batch_hwm_entries" cstats.Combine.entries_in;
          let payload =
            if t.cfg.Config.compress then
              Trace.span ~cat:"persist" "compress" (fun () ->
                  let body = Log_entry.encode_list combined in
                  Sched.advance
                    (int_of_float
                       (float_of_int (Bytes.length body)
                       *. t.cfg.Config.compress_cost_per_byte));
                  let comp = Lz.compress body in
                  Stats.add t.stats "compress_in_bytes" (Bytes.length body);
                  Stats.add t.stats "compress_out_bytes" (Bytes.length comp);
                  Log_entry.encode_payload ~compress:true combined)
            else Log_entry.encode_payload combined
          in
          let need = Plog.record_overhead + Bytes.length payload in
          if need > Plog.data_capacity t.plogs.(0) then
            invalid_arg "Dudetm: combined group exceeds the persistent log ring";
          (* This seal ran while the flusher held the channel: the cycles
             spent combining were hidden behind batch [k]'s transfer. *)
          if overlapping && t.flush_started_at >= 0 then begin
            let hidden = Sched.now () - t.flush_started_at in
            if hidden > 0 then begin
              Stats.add t.stats "pipe_overlap_cycles" hidden;
              Trace.instant ~cat:"persist" "pipe_overlap" hidden
            end
          end;
          Queue.push
            { pb_lo = lo; pb_hi = hi; pb_entries = combined; pb_payload = payload }
            t.prepared;
          List.iter (fun k -> Hashtbl.remove staging (lo + k)) (List.init take (fun k -> k));
          (* Seeded mutant (checker self-test only): acknowledge the batch
             at seal time — its record has not reached NVM, so a crash in
             the pipeline window loses acknowledged transactions. *)
          if t.cfg.Config.fault = Config.Skip_batch_seal then
            note_flushed t (List.init take (fun k -> lo + k));
          t.next_flush <- hi + 1;
          t.staged_open_at <- -1)
    in
    let deadline = t.cfg.Config.batch_deadline in
    let poll_step = max 1 (deadline / 4) in
    let rec loop () =
      maybe_fault t "persist";
      drain_vlogs ();
      let avail = contiguous () in
      let now = Sched.now () in
      if avail > 0 then begin
        if t.staged_open_at < 0 then t.staged_open_at <- now
      end
      else t.staged_open_at <- -1;
      let deadline_hit =
        avail > 0 && t.staged_open_at >= 0 && now - t.staged_open_at >= deadline
      in
      let waiter_hit = avail > 0 && t.durable_waiters > 0 in
      let tail_hit =
        (t.draining || t.stop_flag) && avail > 0 && last_tid t < t.next_flush + avail
      in
      if Queue.length t.prepared >= max_prepared then begin
        Sched.wait_until ~label:"persist: pipeline full" (fun () ->
            Queue.length t.prepared < max_prepared || t.stop_flag);
        Sched.yield ();
        loop ()
      end
      else if avail >= t.cfg.Config.group_size then begin
        Stats.incr t.stats "batch_size_flushes";
        seal_batch t.cfg.Config.group_size;
        loop ()
      end
      else if deadline_hit || waiter_hit || tail_hit then begin
        (* Short batch: the deadline expired, a caller is blocked on
           durability, or this is the tail of the run. *)
        Stats.incr t.stats
          (if tail_hit && not (deadline_hit || waiter_hit) then "batch_drain_flushes"
           else "batch_deadline_flushes");
        seal_batch avail;
        loop ()
      end
      else if t.stop_flag && avail = 0 && Hashtbl.length staging = 0 then
        t.combiner_done <- true
      else if avail > 0 then begin
        (* An open batch below the group size: age it toward the deadline
           by advancing simulated time (a time-based wait_until predicate
           would deadlock the scheduler). *)
        Sched.advance poll_step;
        loop ()
      end
      else begin
        Sched.wait_until ~label:"persist: waiting for group" (fun () ->
            t.stop_flag || t.draining
            || Array.exists (fun v -> Vlog.committed v > Vlog.head v) t.vlogs);
        Sched.yield ();
        loop ()
      end
    in
    loop ()

  (* Pipeline stage 2: write sealed batches to NVM and publish durability
     per batch.  All in-flight state is the popped batch itself; popping
     happens after the fault point, so a supervised restart never loses or
     duplicates a record. *)
  let persist_flush_loop t =
    let rec loop () =
      maybe_fault t "persist-flush";
      if not (Queue.is_empty t.prepared) then begin
        let pb = Queue.pop t.prepared in
        let need = Plog.record_overhead + Bytes.length pb.pb_payload in
        Sched.wait_until ~label:"plog space (combined)" (fun () ->
            Plog.free_space t.plogs.(0) >= need);
        t.flush_started_at <- Sched.now ();
        let record =
          Trace.span ~cat:"persist" "flush" (fun () ->
              Plog.append
                ~persist:(t.cfg.Config.fault <> Config.Early_durable_publish)
                t.plogs.(0) pb.pb_payload)
        in
        note_drain_pace t ~entries:(List.length pb.pb_entries)
          ~cycles:(Sched.now () - t.flush_started_at);
        t.flush_started_at <- -1;
        Stats.incr t.stats "flush_records";
        Stats.add t.stats "flush_payload_bytes" (Bytes.length pb.pb_payload);
        stat_max t.stats "plog_hwm_bytes" (Plog.used_space t.plogs.(0));
        Queue.push
          {
            lo = pb.pb_lo;
            hi = pb.pb_hi;
            entries = pb.pb_entries;
            region = 0;
            end_off = record.Plog.end_off;
            rec_next_seq = record.Plog.seq + 1;
            last_of_record = true;
          }
          t.queues.(0);
        if t.cfg.Config.fault <> Config.Skip_batch_seal then
          note_flushed t (List.init (pb.pb_hi - pb.pb_lo + 1) (fun k -> pb.pb_lo + k));
        ship t ~seq:record.Plog.seq ~lo:pb.pb_lo ~hi:pb.pb_hi ~payload:pb.pb_payload;
        loop ()
      end
      else if t.stop_flag && t.combiner_done then ()
      else begin
        Sched.wait_until ~label:"flush: waiting for sealed batch" (fun () ->
            (not (Queue.is_empty t.prepared)) || (t.stop_flag && t.combiner_done));
        Sched.yield ();
        loop ()
      end
    in
    loop ()

  (* ------------------------------------------------------------------ *)
  (* Reproduce step                                                      *)
  (* ------------------------------------------------------------------ *)

  let plog_pressure t =
    Array.exists (fun p -> Plog.free_space p < Plog.data_capacity p / 4) t.plogs

  (* Persist every reproduced-but-unpersisted heap range and advance the
     persisted-data watermark.  The ranges live in [t] so a daemon restart
     between applying items and persisting them cannot drop the fence: the
     restarted daemon (or the checkpoint below) still flushes them before
     any checkpoint covers the applied IDs.  The Unfenced_reproduce mutant
     (checker self-test only) skips the fence. *)
  let flush_reproduced t =
    if !(t.repro_ranges) <> [] then begin
      if t.cfg.Config.fault <> Config.Unfenced_reproduce then
        Nvm.persist_ranges t.nvm !(t.repro_ranges);
      t.repro_ranges := []
    end;
    t.persisted_data <- applied t

  let do_checkpoint t =
    Trace.span ~cat:"reproduce" "checkpoint" @@ fun () ->
    (* A daemon restart may have left applied items whose data persist is
       still pending; fence them before the checkpoint can cover them. *)
    flush_reproduced t;
    (* Refresh the CRC directory for every heap extent this checkpoint
       covers.  Reproduce has already persisted those extents (the round's
       persist_ranges precedes the checkpoint), so latest = persisted there
       and the recomputed CRCs seal exactly the checkpointed content. *)
    let extents = Hashtbl.fold (fun e () acc -> e :: acc) t.dirty_extents [] in
    Hashtbl.reset t.dirty_extents;
    Crcdir.update t.crcdir extents;
    Checkpoint.write t.ckpt
      {
        Checkpoint.reproduced_upto = t.persisted_data;
        cross_frontier = t.cross_frontier;
        free_extents = Alloc.extents t.repro_alloc;
      };
    (* Recycle each ring up to its furthest completed record. *)
    let per_region = Hashtbl.create 8 in
    List.iter
      (fun (region, end_off, seq) ->
        match Hashtbl.find_opt per_region region with
        | Some (e, _) when e >= end_off -> ()
        | _ -> Hashtbl.replace per_region region (end_off, seq))
      t.pending_recycle;
    Hashtbl.iter
      (fun region (end_off, next_seq) ->
        Plog.recycle_to t.plogs.(region) ~end_off ~next_seq)
      per_region;
    t.pending_recycle <- [];
    t.checkpointed <- t.persisted_data

  let pop_next_item t =
    let target = applied t + 1 in
    let found = ref None in
    Array.iter
      (fun q ->
        match Queue.peek_opt q with
        | Some it when it.lo = target -> found := Some (q, it)
        | _ -> ())
      t.queues;
    match !found with
    | Some (q, it) ->
      ignore (Queue.pop q);
      it
    | None ->
      invalid_arg
        (Printf.sprintf "Dudetm reproduce: transaction %d durable but not queued" target)

  (* Apply one item's stores and allocator replay atomically, then publish
     the applied watermark.  Persisting is the caller's job: a reproduce
     round applies a whole batch of items under a single persist ordering,
     which is what keeps one background thread ahead of many Perform
     threads. *)
  let apply_item t it ranges =
    let n = List.length it.entries in
    Sched.advance (t.cfg.Config.reproduce_cost_per_entry * n);
    List.iter
      (fun e ->
        match e with
        | Log_entry.Write { addr; value } ->
          Nvm.store_u64 t.nvm addr value;
          ranges := (addr, 8) :: !ranges;
          Hashtbl.replace t.dirty_extents (addr / t.cfg.Config.crc_extent) ();
          Hashtbl.replace t.dirty_extents ((addr + 7) / t.cfg.Config.crc_extent) ()
        | Log_entry.Alloc { off; len } -> Alloc.reserve t.repro_alloc ~off ~len
        | Log_entry.Free { off; len } -> Alloc.free t.repro_alloc ~off ~len
        | Log_entry.Cross { gtid; _ } ->
          if gtid > t.cross_frontier then t.cross_frontier <- gtid
        | Log_entry.Tx_end _ -> ())
      it.entries;
    set_applied t it.hi;
    if it.last_of_record then
      t.pending_recycle <- (it.region, it.end_off, it.rec_next_seq) :: t.pending_recycle

  let reproduce_round t =
    Trace.span ~cat:"reproduce" "replay" @@ fun () ->
    let applied_any = ref false in
    let batch = ref 0 in
    while can_apply t && !batch < t.cfg.Config.reproduce_batch do
      maybe_fault t "reproduce";
      apply_item t (pop_next_item t) t.repro_ranges;
      applied_any := true;
      incr batch
    done;
    (* One persist ordering covers the whole round's reproduced data. *)
    if !applied_any then flush_reproduced t;
    !applied_any

  let reproduce_loop t =
    let rec loop () =
      maybe_fault t "reproduce";
      if can_apply t then begin
        ignore (reproduce_round t);
        if
          List.length t.pending_recycle >= t.cfg.Config.checkpoint_records
          || (t.pending_recycle <> [] && plog_pressure t)
        then do_checkpoint t;
        loop ()
      end
      else if t.stop_flag && not (can_apply t) then begin
        (* Quiesced — or stopped while a cross-shard fragment is still
           gated on a sibling shard; either way checkpoint what is applied
           and exit (the gated suffix replays at the next attach). *)
        if t.pending_recycle <> [] || t.checkpointed < t.persisted_data then do_checkpoint t
      end
      else begin
        Sched.wait_until ~label:"reproduce: waiting for durable" (fun () ->
            t.stop_flag
            || can_apply t
            || (t.pending_recycle <> [] && plog_pressure t));
        if (not (can_apply t)) && t.pending_recycle <> [] && plog_pressure t then
          do_checkpoint t;
        Sched.yield ();
        loop ()
      end
    in
    loop ()

  (* ------------------------------------------------------------------ *)
  (* Lifecycle                                                           *)
  (* ------------------------------------------------------------------ *)

  let start t =
    if t.started then invalid_arg "Dudetm.start: already started";
    t.started <- true;
    (match t.cfg.Config.mode with
    | Config.Sync -> ()
    | Config.Async | Config.Inf ->
      if t.cfg.Config.combine then begin
        ignore
          (Sched.spawn ~daemon:true "persist-0" (fun () ->
               supervise t (fun () -> persist_combined_loop t)));
        ignore
          (Sched.spawn ~daemon:true "persist-flush" (fun () ->
               supervise t (fun () -> persist_flush_loop t)))
      end
      else
        for p = 0 to t.cfg.Config.persist_threads - 1 do
          ignore
            (Sched.spawn ~daemon:true
               (Printf.sprintf "persist-%d" p)
               (fun () -> supervise t (fun () -> persist_plain_loop t p)))
        done);
    ignore
      (Sched.spawn ~daemon:true "reproduce" (fun () ->
           supervise t (fun () -> reproduce_loop t)))

  let drain_diagnostic t =
    let vlog_backlog =
      Array.fold_left (fun acc v -> acc + (Vlog.committed v - Vlog.head v)) 0 t.vlogs
    in
    let rings =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun p -> Printf.sprintf "%d/%d" (Plog.used_space p) (Plog.data_capacity p))
              t.plogs))
    in
    Printf.sprintf
      "drain stalled after %d cycles: last_tid=%d durable=%d applied=%d checkpointed=%d \
       vlog_backlog=%d ring_occupancy=[%s] pending_recycle=%d queued_items=%d stop=%b \
       daemon_restarts=%d daemon_backoff_cycles=%d bp_throttle_events=%d \
       bp_throttle_cycles=%d pmalloc_waits=%d read_only=%s"
      t.cfg.Config.drain_budget (last_tid t) t.durable (applied t) t.checkpointed vlog_backlog
      rings
      (List.length t.pending_recycle)
      (Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues)
      t.stop_flag
      (Stats.get t.stats "daemon_restarts")
      (Stats.get t.stats "daemon_backoff_cycles")
      (Stats.get t.stats "bp_throttle_events")
      (Stats.get t.stats "bp_throttle_cycles")
      (Stats.get t.stats "pmalloc_waits")
      (match t.read_only with None -> "no" | Some r -> Printf.sprintf "%S" r)
    ^ (match t.drain_context with None -> "" | Some f -> " " ^ f ())

  (* Mark the instance as draining without waiting.  The sharding layer
     sets this on every region before blocking in [drain]: a combined-mode
     persist daemon only flushes a partial trailing group once draining is
     set, and a cross-shard replay gate on one region can require exactly
     that trailing flush on a sibling. *)
  let begin_drain t = t.draining <- true

  let drain t =
    t.draining <- true;
    let deadline = Sched.global_now () + t.cfg.Config.drain_budget in
    let drained () =
      let last = last_tid t in
      t.durable = last && applied t = last
    in
    (* The budget catches livelock — daemons burning simulated time without
       retiring transactions.  (True deadlock already raises
       [Sched.Deadlock].)  The predicate stays pure; the raise happens back
       on the caller's fiber. *)
    Sched.wait_until ~label:"drain" (fun () ->
        drained () || Sched.global_now () >= deadline);
    if not (drained ()) then raise (Drain_stalled (drain_diagnostic t))

  let stop t =
    drain t;
    t.stop_flag <- true

  (* ------------------------------------------------------------------ *)
  (* Follower mode (replicated durability, lib/replica)                  *)
  (* ------------------------------------------------------------------ *)

  (* A follower runs no Perform and no Persist: the primary's Persist
     daemon already produced the sealed record, so ingesting one is just
     the flusher's tail — append the exact shipped payload to ring 0,
     queue the replay item and advance the local durable watermark.  The
     follower's ring therefore holds byte-identical records at the same
     sequence numbers as the primary's ring 0, which is what makes
     promotion plain [attach] recovery. *)
  let ingest_record t payload =
    let entries = Log_entry.decode_payload payload in
    let tids = Log_entry.tids entries in
    match tids with
    | [] -> true
    | first :: _ ->
      let lo = List.fold_left min first tids in
      let hi = List.fold_left max first tids in
      if lo <> t.durable + 1 then
        invalid_arg
          (Printf.sprintf
             "Dudetm.ingest_record: batch [%d,%d] breaks the contiguous durable prefix at %d"
             lo hi t.durable);
      let plog = t.plogs.(0) in
      if Plog.free_space plog < Plog.record_overhead + Bytes.length payload + 1 then
        (* Ring full (replay gated or Reproduce behind): the caller keeps
           the frame buffered and retries once recycling frees space. *)
        false
      else begin
        let record = Plog.append plog payload in
        Queue.push
          {
            lo;
            hi;
            entries;
            region = 0;
            end_off = record.Plog.end_off;
            rec_next_seq = record.Plog.seq + 1;
            last_of_record = true;
          }
          t.queues.(0);
        note_flushed t tids;
        Stats.incr t.stats "flush_records";
        Stats.add t.stats "flush_payload_bytes" (Bytes.length payload);
        stat_max t.stats "plog_hwm_bytes" (Plog.used_space plog);
        true
      end

  let start_follower t =
    if t.started then invalid_arg "Dudetm.start_follower: already started";
    t.started <- true;
    ignore
      (Sched.spawn ~daemon:true "reproduce" (fun () ->
           supervise t (fun () -> reproduce_loop t)))

  (* No [drain]: a follower's [last_tid] never moves (no Perform), and its
     replay gate may legitimately hold back a suffix forever — just tell
     the Reproduce daemon to checkpoint what is applied and exit. *)
  let stop_follower t =
    t.draining <- true;
    t.stop_flag <- true

  (* ------------------------------------------------------------------ *)
  (* Perform step: the transaction API                                   *)
  (* ------------------------------------------------------------------ *)

  let page_addr sh page = page lsl (Shadow.config sh).Shadow.page_bits

  let unpin_all dtx =
    (match dtx.t.view with
    | Flat _ -> ()
    | Paged sh -> List.iter (fun page -> Shadow.unpin sh (page_addr sh page)) dtx.touched_list);
    Hashtbl.reset dtx.touched;
    dtx.touched_list <- [];
    Hashtbl.reset dtx.wrote;
    dtx.wrote_list <- []

  let touch dtx addr ~wrote =
    match dtx.t.view with
    | Flat _ -> ()
    | Paged sh ->
      let page = Shadow.page_of sh addr in
      if not (Hashtbl.mem dtx.touched page) then begin
        Hashtbl.add dtx.touched page ();
        dtx.touched_list <- page :: dtx.touched_list;
        Shadow.pin sh addr
      end;
      if wrote && not (Hashtbl.mem dtx.wrote page) then begin
        Hashtbl.add dtx.wrote page ();
        dtx.wrote_list <- page :: dtx.wrote_list
      end

  let read dtx addr =
    touch dtx addr ~wrote:false;
    match dtx.tm_tx with
    | Rw tm_tx -> Tm.read tm_tx addr
    | Snap ro -> Tm.ro_read ro addr

  let require_writable t =
    match t.read_only with
    | Some reason -> raise (Read_only reason)
    | None -> ()

  (* The write-side TM handle; a snapshot transaction attempting any
     mutation gets the typed violation (there is nothing to roll back —
     snapshots own no locks and logged nothing). *)
  let require_rw dtx =
    match dtx.tm_tx with
    | Rw tm_tx -> tm_tx
    | Snap _ -> raise Read_only_violation

  let write dtx addr value =
    let tm_tx = require_rw dtx in
    require_writable dtx.t;
    touch dtx addr ~wrote:true;
    Trace.sample ~cat:"perform" "log_append" dtx.t.cfg.Config.log_append_cost;
    Sched.advance dtx.t.cfg.Config.log_append_cost;
    Vlog.append dtx.t.vlogs.(dtx.thread) (Log_entry.Write { addr; value });
    Stats.incr dtx.t.stats "log_entries";
    Tm.write tm_tx addr value

  let abort dtx =
    match dtx.tm_tx with
    | Rw tm_tx -> Tm.user_abort tm_tx
    | Snap ro -> Tm.ro_abort ro

  (* Request a cross-shard fragment seal: if this transaction commits with
     writes, a [Cross { gtid; mask; tid }] entry is logged just before its
     end mark.  Called by the sharding layer once the body has finished and
     the set of shards actually written is known. *)
  let seal_cross dtx ~gtid ~mask = dtx.cross_seal <- Some (gtid, mask)

  (* Allocation backpressure: concurrent transactions return space at
     commit ([pfree]) and abort (refunds), so a full heap is often
     transient.  Block within the configured budget and retry before
     giving up with [Pmem_exhausted]. *)
  let alloc_with_backpressure t n =
    match Alloc.alloc t.allocator n with
    | Some off -> Some off
    | None ->
      let could_ever_fit = n <= t.cfg.Config.heap_size - t.cfg.Config.root_size in
      let budget = t.cfg.Config.pmalloc_wait_budget in
      if budget <= 0 || (not (Sched.running ())) || not could_ever_fit then None
      else begin
        (* Poll with [Sched.advance] rather than [wait_until]: the wait is
           bounded by simulated time, and a time-based [wait_until]
           predicate can never come true when every other thread is also
           blocked (the scheduler would call it a deadlock).  Advancing
           always makes progress. *)
        Stats.incr t.stats "pmalloc_waits";
        Trace.span_begin ~cat:"perform" "pmalloc_wait";
        let step = max 1 (budget / 32) in
        let elapsed = ref 0 in
        let result = ref None in
        while !result = None && !elapsed < budget && not t.stop_flag do
          let d = min step (budget - !elapsed) in
          Sched.advance d;
          elapsed := !elapsed + d;
          result := Alloc.alloc t.allocator n
        done;
        Stats.add t.stats "pmalloc_wait_cycles" !elapsed;
        Trace.span_end ~cat:"perform" "pmalloc_wait";
        !result
      end

  let pmalloc dtx n =
    if n <= 0 then invalid_arg "Dudetm.pmalloc: non-positive size";
    ignore (require_rw dtx);
    require_writable dtx.t;
    Sched.advance pmalloc_cost;
    match alloc_with_backpressure dtx.t n with
    | None -> raise Pmem_exhausted
    | Some off ->
      dtx.allocs <- (off, n) :: dtx.allocs;
      Vlog.append dtx.t.vlogs.(dtx.thread) (Log_entry.Alloc { off; len = n });
      (* Zero the first word transactionally: initializes the block and
         guarantees the transaction is a write transaction, so the Alloc
         entry is always sealed under a real transaction ID. *)
      write dtx off 0L;
      off

  let pfree dtx ~off ~len =
    if len <= 0 then invalid_arg "Dudetm.pfree: non-positive size";
    ignore (require_rw dtx);
    require_writable dtx.t;
    write dtx off 0L;
    Vlog.append dtx.t.vlogs.(dtx.thread) (Log_entry.Free { off; len });
    dtx.frees <- (off, len) :: dtx.frees

  (* Backpressure: true when some ring is occupied beyond the configured
     high-water fraction. *)
  let ring_pressure t =
    let hwm = t.cfg.Config.bp_hwm_fraction in
    Array.exists
      (fun p -> float_of_int (Plog.used_space p) >= hwm *. float_of_int (Plog.data_capacity p))
      t.plogs

  (* Throttle a Perform thread about to start a transaction while a ring
     sits above its high-water mark: a bounded wait gives Persist/Reproduce
     a chance to recycle instead of letting producers run the rings into
     the hard full-waiting path.  Bounded so a stuck pipeline degrades to
     the existing full-ring behavior rather than blocking forever. *)
  let throttle_on_pressure t =
    if
      t.started && (not t.draining) && (not t.stop_flag)
      && t.cfg.Config.bp_wait_budget > 0
      && t.cfg.Config.mode <> Config.Sync
      && Sched.running () && ring_pressure t
    then begin
      Stats.incr t.stats "bp_throttle_events";
      Trace.span_begin ~cat:"perform" "bp_throttle";
      (* Advance-based polling, not [wait_until]: see
         [alloc_with_backpressure].  The step is capped well below
         budget/32: batched persist and per-batch checkpoints clear ring
         pressure in thousands of cycles, so a coarse quantum would charge
         a throttled transaction far more wait than the pressure lasted
         (the old 62.5k-cycle step WAS the commit-latency tail). *)
      let budget = t.cfg.Config.bp_wait_budget in
      let step = max 1 (min (budget / 32) 1_000) in
      let elapsed = ref 0 in
      while
        ring_pressure t && (not t.stop_flag) && (not t.draining) && !elapsed < budget
      do
        let d = min step (budget - !elapsed) in
        Sched.advance d;
        elapsed := !elapsed + d
      done;
      Stats.add t.stats "bp_throttle_cycles" !elapsed;
      Trace.span_end ~cat:"perform" "bp_throttle"
    end

  (* Rate-matched admission pacing.  When this thread's volatile log holds
     more than a quarter of its capacity, delay the next transaction in
     proportion to the excess, charged at the drain rate the persist
     daemons actually measured at the NVM channel.  Under saturation every
     transaction then pays a small, smooth share of the drain debt instead
     of a few unlucky ones absorbing the whole backlog in one vlog-full
     stall — the admission-control half of bounded group commit, and what
     turns a 150x p99/p50 commit-latency ratio into a single-digit one.
     Inactive until the first record flush ([drain_pace] = 0) and below
     the quarter-capacity low-water mark, so unsaturated runs never pay. *)
  let pace_admission t ~thread =
    if
      t.started && (not t.draining) && (not t.stop_flag)
      && t.cfg.Config.bp_wait_budget > 0
      && t.cfg.Config.mode <> Config.Sync
      && t.drain_pace > 0.0 && Sched.running ()
    then begin
      let vlog = t.vlogs.(thread) in
      if not (Vlog.unbounded vlog) then begin
        (* Pace against the global backlog, not just this thread's vlog:
           the shared channel drains one vlog at a time, so one log's
           occupancy sawtooths by a whole batch while the sum across
           producers moves smoothly — and a smooth signal is what keeps
           the paced latency distribution tight. *)
        let n = Array.length t.vlogs in
        let backlog = Array.fold_left (fun a v -> a + Vlog.length v) 0 t.vlogs in
        let low = n * Vlog.capacity vlog * 3 / 8 in
        let over = backlog - low in
        if over > 0 then begin
          let delay =
            int_of_float (float_of_int over *. t.drain_pace /. float_of_int n)
          in
          if delay > 0 then begin
            Stats.incr t.stats "pace_events";
            Stats.add t.stats "pace_cycles" delay;
            Sched.advance delay
          end
        end
      end
    end

  let atomically_body t ~thread f =
    let vlog = t.vlogs.(thread) in
    let attempt : tx option ref = ref None in
    let cleanup () =
      (match !attempt with
      | Some dtx ->
        Vlog.pop_current_tx vlog;
        List.iter (fun (off, len) -> Alloc.free t.allocator ~off ~len) dtx.allocs;
        unpin_all dtx
      | None -> ());
      attempt := None
    in
    let outcome =
      Tm.run ~on_retry:cleanup t.tm (fun tm_tx ->
          let dtx =
            {
              t;
              thread;
              tm_tx = Rw tm_tx;
              touched = Hashtbl.create 8;
              touched_list = [];
              wrote = Hashtbl.create 8;
              wrote_list = [];
              allocs = [];
              frees = [];
              cross_seal = None;
            }
          in
          attempt := Some dtx;
          f dtx)
    in
    match outcome with
    | None -> None
    | Some (value, raw_tid) ->
      let dtx = match !attempt with Some d -> d | None -> assert false in
      attempt := None;
      Stats.incr t.stats "txs";
      if raw_tid = 0 then begin
        assert (Vlog.current_tx_entries vlog = 0);
        unpin_all dtx;
        Some (value, 0)
      end
      else begin
        let tid = t.tid_base + raw_tid in
        List.iter (fun (off, len) -> Alloc.free t.allocator ~off ~len) dtx.frees;
        (* The fragment seal rides in the redo log just before the end
           mark, so it is CRC-sealed with the fragment's writes and recovery
           sees (gtid, mask, tid) in the same durable record. *)
        (match dtx.cross_seal with
        | Some (gtid, mask) -> Vlog.append vlog (Log_entry.Cross { gtid; mask; tid })
        | None -> ());
        Vlog.append_end vlog ~tid;
        (match t.view with
        | Flat _ -> ()
        | Paged sh ->
          List.iter (fun page -> Shadow.set_touching sh ~page ~tid) dtx.wrote_list);
        unpin_all dtx;
        (match t.cfg.Config.mode with
        | Config.Sync ->
          ignore (flush_thread t thread ~wait_space:true);
          Trace.span_begin ~cat:"perform" "sync_wait";
          wait_durable t tid;
          Trace.span_end ~cat:"perform" "sync_wait"
        | Config.Async | Config.Inf -> ());
        Some (value, tid)
      end

  (* The perform span is opened/closed with explicit begin/end on every exit
     (including re-raised exceptions like [Pmem_exhausted]) rather than the
     closure-based [Trace.span]: this path runs once per transaction and must
     allocate nothing when tracing is off. *)
  let atomically t ~thread f =
    if thread < 0 || thread >= t.cfg.Config.nthreads then
      invalid_arg "Dudetm.atomically: bad thread index";
    throttle_on_pressure t;
    pace_admission t ~thread;
    Trace.span_begin ~cat:"perform" "tx";
    match atomically_body t ~thread f with
    | r ->
      Trace.span_end ~cat:"perform" "tx";
      r
    | exception e ->
      Trace.span_end ~cat:"perform" "tx";
      raise e

  (* Read-only snapshot transactions (the DUMBO-style fast path).  No
     ring-pressure throttle, no admission pacing, no redo-log append, no
     write locks, no persist wait: the decoupled pipeline never hears of
     the transaction, and the returned epoch is the engine-space clock
     value the read-set is consistent at.  [durable] pins the snapshot at
     {!ro_watermark} so reads observe only crash-surviving state. *)
  let atomically_ro ?(durable = false) t ~thread f =
    if thread < 0 || thread >= t.cfg.Config.nthreads then
      invalid_arg "Dudetm.atomically_ro: bad thread index";
    let pin =
      if durable then Some (fun () -> ro_watermark t - t.tid_base) else None
    in
    let validate_extension = t.cfg.Config.fault <> Config.Skip_snapshot_validate in
    Trace.span_begin ~cat:"perform" "ro_tx";
    let attempt : tx option ref = ref None in
    let cleanup () =
      (match !attempt with Some dtx -> unpin_all dtx | None -> ());
      attempt := None
    in
    match
      Tm.run_ro ?pin ~validate_extension ~on_retry:cleanup t.tm (fun ro ->
          let dtx =
            {
              t;
              thread;
              tm_tx = Snap ro;
              touched = Hashtbl.create 8;
              touched_list = [];
              wrote = Hashtbl.create 8;
              wrote_list = [];
              allocs = [];
              frees = [];
              cross_seal = None;
            }
          in
          attempt := Some dtx;
          f dtx)
    with
    | Some (value, raw_epoch) ->
      cleanup ();
      Stats.incr t.stats "ro_txs";
      if durable then Stats.incr t.stats "ro_durable_txs";
      Trace.span_end ~cat:"perform" "ro_tx";
      Some (value, t.tid_base + raw_epoch)
    | None ->
      cleanup ();
      Trace.span_end ~cat:"perform" "ro_tx";
      None
    | exception e ->
      cleanup ();
      Trace.span_end ~cat:"perform" "ro_tx";
      raise e

  (* ------------------------------------------------------------------ *)
  (* Recovery                                                            *)
  (* ------------------------------------------------------------------ *)

  (* Recovery state between the non-destructive scan ([attach_prepare]) and
     the destructive replay ([attach_commit]).  The sharding layer prepares
     every region first, runs the cross-shard vote over the scanned
     fragments and checkpointed frontiers, and only then commits each
     region with its voted durable cut. *)
  type prepared = {
    p_cfg : Config.t;
    p_nvm : Nvm.t;
    p_rjournal : Rjournal.t;
    p_use_journal : bool;
    p_ckpt : Checkpoint.t;
    p_ckpt_upto : int;  (* checkpointed reproduced_upto *)
    p_frontier : int;  (* checkpointed cross-shard frontier *)
    p_repro_alloc : Alloc.t;
    p_plogs : Plog.t array;
    p_corrupted : int;
    p_quarantined : int;
    p_items : (int * int * Log_entry.t list) list;  (* (lo, hi, entries), sorted *)
    p_all_tids : (int, unit) Hashtbl.t;
    p_durable : int;  (* candidate durable ID, before any cross-shard vote *)
    p_fragments : (int * int * int) list;  (* scanned (gtid, mask, tid) seals *)
  }

  let prepared_durable p = p.p_durable

  let prepared_frontier p = p.p_frontier

  let prepared_fragments p = p.p_fragments

  let prepared_checkpoint_upto p = p.p_ckpt_upto

  let attach_prepare cfg nvm =
    Config.validate cfg;
    if Nvm.size nvm <> Config.nvm_size cfg then
      invalid_arg "Dudetm.attach: device size does not match the configuration";
    (* Recovery is itself crash-consistent: destructive recovery-time
       writes are ordered behind the intent journal.  First, undo any probe
       pattern a crashed scrub left in the heap — before trusting a single
       heap byte.  (The Skip_recovery_journal mutant bypasses the journal
       to prove the nested-crash campaign catches exactly this.) *)
    let use_journal = cfg.Config.fault <> Config.Skip_recovery_journal in
    let rjournal = Rjournal.attach nvm ~base:(Config.rjournal_base cfg) in
    (match Rjournal.read rjournal with
    | Rjournal.Probe { line; original } when use_journal ->
      let ls = Nvm.line_size nvm in
      Nvm.store_u64 nvm (line * ls) original;
      Nvm.persist nvm ~off:(line * ls) ~len:8;
      Rjournal.write rjournal Rjournal.Idle
    | _ -> ());
    let ckpt, state = Checkpoint.attach nvm ~base:(Config.meta_base cfg) ~size:cfg.Config.meta_size in
    let c = state.Checkpoint.reproduced_upto in
    let repro_alloc = Alloc.restore state.Checkpoint.free_extents in
    let regions = Config.plog_regions cfg in
    let attached =
      Array.init regions (fun r ->
          Plog.attach_scan nvm ~base:(Config.plog_base cfg r) ~size:cfg.Config.plog_size)
    in
    let plogs = Array.map fst attached in
    let corrupted_records =
      Array.fold_left (fun acc (_, s) -> acc + s.Plog.corrupted_records) 0 attached
    in
    let quarantined_lines =
      Array.fold_left (fun acc (_, s) -> acc + s.Plog.quarantined_lines) 0 attached
    in
    if corrupted_records > 0 then Nvm.note_media_detected nvm corrupted_records;
    (* Collect replay items from every surviving record. *)
    let all_items = ref [] in
    let all_tids = Hashtbl.create 1024 in
    let fragments = ref [] in
    Array.iter
      (fun (_, scan) ->
        List.iter
        (fun (record : Plog.record) ->
          let entries = Log_entry.decode_payload record.Plog.payload in
          let tids = Log_entry.tids entries in
          List.iter (fun tid -> Hashtbl.replace all_tids tid ()) tids;
          fragments := List.rev_append (Log_entry.cross_seals entries) !fragments;
          if cfg.Config.combine then begin
            match tids with
            | [] -> ()
            | first :: _ ->
              let hi = List.fold_left max first tids in
              all_items := (first, hi, entries) :: !all_items
          end
          else
            List.iter
              (fun (tid, es) -> all_items := (tid, tid, es) :: !all_items)
              (split_txs entries))
        scan.Plog.records)
      attached;
    (* Durable ID: largest contiguous extension of the checkpoint. *)
    let d = ref c in
    while Hashtbl.mem all_tids (!d + 1) do
      incr d
    done;
    {
      p_cfg = cfg;
      p_nvm = nvm;
      p_rjournal = rjournal;
      p_use_journal = use_journal;
      p_ckpt = ckpt;
      p_ckpt_upto = c;
      p_frontier = state.Checkpoint.cross_frontier;
      p_repro_alloc = repro_alloc;
      p_plogs = plogs;
      p_corrupted = corrupted_records;
      p_quarantined = quarantined_lines;
      p_items = List.sort compare !all_items;
      p_all_tids = all_tids;
      p_durable = !d;
      p_fragments = List.sort compare !fragments;
    }

  let attach_commit ?durable_cut p =
    Trace.span ~cat:"recovery" "attach" @@ fun () ->
    let cfg = p.p_cfg in
    let nvm = p.p_nvm in
    let c = p.p_ckpt_upto in
    let repro_alloc = p.p_repro_alloc in
    (* The cross-shard vote can only shrink the durable prefix (discarding
       fragments of incomplete cross-shard transaction sets, and with them
       the suffix behind the cut), never extend it and never cut below the
       checkpoint. *)
    let d =
      match durable_cut with
      | None -> p.p_durable
      | Some cut ->
        if cut > p.p_durable then
          invalid_arg "Dudetm.attach_commit: durable cut beyond the scanned prefix";
        max c cut
    in
    let keep, dropped =
      List.partition (fun (lo, hi, _) -> lo > c && hi <= d) p.p_items
    in
    let discarded_txs =
      Hashtbl.fold (fun tid () acc -> if tid > d then acc + 1 else acc) p.p_all_tids 0
    in
    let discarded_records =
      List.length (List.filter (fun (lo, _, _) -> lo > d) dropped)
    in
    let replayed_txs =
      List.fold_left (fun acc (lo, hi, _) -> acc + (hi - lo + 1)) 0 keep
    in
    let corrupted_records = p.p_corrupted in
    let quarantined_lines = p.p_quarantined in
    let rjournal = p.p_rjournal in
    let use_journal = p.p_use_journal in
    let ckpt = p.p_ckpt in
    let plogs = p.p_plogs in
    (* The recovery verdict is fully determined before any heap mutation.
       If a previous attach sealed a verdict for the same durable ID and
       then crashed mid-recovery, adopt it: the report converges to the
       pre-crash verdict no matter where that crash landed (e.g. after the
       rings were already recycled, when a fresh scan would count zero
       replayed transactions).  Then seal this attach's verdict before the
       replay below mutates anything. *)
    let verdict =
      let fresh =
        {
          Rjournal.v_durable = d;
          v_replayed_txs = replayed_txs;
          v_discarded_txs = discarded_txs;
          v_discarded_records = discarded_records;
          v_corrupted_records = corrupted_records;
          v_quarantined_lines = quarantined_lines;
        }
      in
      match Rjournal.read rjournal with
      | Rjournal.Replay v when use_journal && v.Rjournal.v_durable = d -> v
      | _ -> fresh
    in
    if use_journal then Rjournal.write rjournal (Rjournal.Replay verdict);
    (* Replay in transaction-ID order. *)
    let ranges = ref [] in
    let replayed_extents = Hashtbl.create 64 in
    let frontier = ref p.p_frontier in
    List.iter
      (fun (_, _, entries) ->
        List.iter
          (fun e ->
            match e with
            | Log_entry.Write { addr; value } ->
              Nvm.store_u64 nvm addr value;
              ranges := (addr, 8) :: !ranges;
              Hashtbl.replace replayed_extents (addr / cfg.Config.crc_extent) ();
              Hashtbl.replace replayed_extents ((addr + 7) / cfg.Config.crc_extent) ()
            | Log_entry.Alloc { off; len } -> Alloc.reserve repro_alloc ~off ~len
            | Log_entry.Free { off; len } -> Alloc.free repro_alloc ~off ~len
            | Log_entry.Cross { gtid; _ } -> if gtid > !frontier then frontier := gtid
            | Log_entry.Tx_end _ -> ())
          entries)
      keep;
    Nvm.persist_ranges nvm !ranges;
    (* Reproduce may have written these same extents after the last
       checkpoint without refreshing their directory entries (that happens
       at checkpoint time); the replay just rewrote them, so reseal their
       CRCs now. *)
    let crcdir = Crcdir.attach nvm cfg in
    Crcdir.update crcdir (Hashtbl.fold (fun e () acc -> e :: acc) replayed_extents []);
    Checkpoint.write ckpt
      { Checkpoint.reproduced_upto = d; cross_frontier = !frontier;
        free_extents = Alloc.extents repro_alloc };
    Array.iter
      (fun plog -> Plog.recycle_to plog ~end_off:(Plog.tail_off plog) ~next_seq:(Plog.next_seq plog))
      plogs;
    (* The verdict stays sealed: clearing it here would open a window (a
       crash right after the clear persists) where a re-attach sees the
       recycled rings and reports zero replayed transactions.  The
       [v_durable = d] guard above retires it naturally once new
       transactions advance the durable ID. *)
    let badlines, _ = Badline.attach nvm cfg in
    let t =
      build cfg nvm ~tid_base:d ~plogs ~ckpt ~rjournal ~crcdir ~badlines
        ~allocator:(Alloc.copy repro_alloc) ~repro_alloc
    in
    shun_bad_lines t;
    t.persisted_data <- d;
    t.checkpointed <- d;
    t.cross_frontier <- !frontier;
    ( t,
      {
        durable = verdict.Rjournal.v_durable;
        replayed_txs = verdict.Rjournal.v_replayed_txs;
        discarded_txs = verdict.Rjournal.v_discarded_txs;
        discarded_records = verdict.Rjournal.v_discarded_records;
        corrupted_records = verdict.Rjournal.v_corrupted_records;
        quarantined_lines = verdict.Rjournal.v_quarantined_lines;
      } )

  let attach cfg nvm = attach_commit (attach_prepare cfg nvm)

  (* ------------------------------------------------------------------ *)
  (* Introspection                                                       *)
  (* ------------------------------------------------------------------ *)

  let config t = t.cfg

  let freeze t ~reason = t.read_only <- Some reason

  let read_only t = t.read_only

  let nvm t = t.nvm

  let root_base _ = 0

  let heap_read_u64 t addr =
    match t.view with Flat mem -> Mem.get_u64 mem addr | Paged sh -> Shadow.load_u64 sh addr

  let stats t = t.stats

  let tm t = t.tm

  let shadow_stats t =
    match t.view with Flat _ -> None | Paged sh -> Some (Shadow.stats sh)

  let vlog_producer_blocks t =
    Array.fold_left (fun acc v -> acc + Vlog.producer_blocks v) 0 t.vlogs
end

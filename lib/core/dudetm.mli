(** The decoupled durable-transaction engine (Sections 3–4).

    A functor over an out-of-the-box TM.  A durable transaction's life:

    - {b Perform}: the application thread runs the transaction with the TM
      against volatile data (a flat DRAM mirror of the heap, or a paged
      {!Dudetm_shadow.Shadow} when the shadow is smaller than NVM).  Every
      [write] also appends a redo entry to the thread's volatile log;
      commit appends the end mark carrying the TM-issued transaction ID.
    - {b Persist}: background threads drain volatile logs into checksummed
      records in persistent log rings (one persist ordering per record) and
      advance the global durable ID — the largest D such that every
      transaction with ID ≤ D is persistent.  Optionally they combine
      writes across groups of transactions and LZ-compress the groups.
    - {b Reproduce}: a background thread replays persisted records onto the
      home NVM locations in transaction-ID order, persists the reproduced
      data, checkpoints the allocator + watermark, and recycles records.

    Dirty volatile data is never written to NVM home locations directly;
    the redo log is the only channel, so CPU-cache evictions of shadow data
    can never break crash consistency. *)

exception Pmem_exhausted
(** [pmalloc] found no free extent large enough. *)

exception Drain_stalled of string
(** {!Make.drain} exceeded its simulated-cycle budget
    ({!Config.drain_budget}) without retiring every committed transaction.
    The payload is a diagnostic of the stuck pipeline: durable/applied IDs,
    volatile-log backlog, ring occupancy, queued reproduce items, daemon
    restart/backoff counters and the backpressure state — so a stall caused
    by a crash-looping daemon is distinguishable from ring-full
    livelock. *)

exception Read_only of string
(** The instance is in degraded read-only mode (see {!Make.freeze}):
    transactional writes, [pmalloc] and [pfree] are rejected with the
    reason the instance was frozen; reads still work. *)

exception Read_only_violation
(** A transaction declared read-only ({!Make.atomically_ro}) attempted a
    write, [pmalloc] or [pfree].  A programming error, not a conflict:
    snapshot transactions hold no locks and logged nothing, so there is
    nothing to roll back.  (Same exception as
    [Dudetm_tm.Tm_intf.Read_only_violation].) *)

exception Daemon_fault of string
(** Injected transient Persist/Reproduce worker failure (seeded via
    {!Config.daemon_fault_rate}; never raised in production
    configurations).  Handled by the daemon supervisor, which restarts the
    worker from its persistent position with capped exponential backoff —
    it escapes only if a fault fires outside any supervised daemon. *)

type recovery_report = {
  durable : int;  (** recovered durable ID: state equals this prefix *)
  replayed_txs : int;  (** durable transactions replayed from logs *)
  discarded_txs : int;  (** flushed but non-durable transactions dropped:
                            their logs landed beyond a gap left by a log
                            that never made it, so they were never
                            acknowledged and are abandoned (Section 3.5) *)
  discarded_records : int;  (** log records abandoned for that reason; torn
                                records are additionally rejected by their
                                checksums during the scan *)
  corrupted_records : int;  (** once-sealed records destroyed by media
                                faults: mid-ring CRC failures bridged by
                                the tolerant ring scan, plus rings whose
                                header was lost.  Transactions above the
                                resulting gap are abandoned (counted in
                                [discarded_txs]) — reported, never
                                silently served *)
  quarantined_lines : int;  (** distinct device lines covered by corrupted
                                record bytes *)
}

type shipment = {
  ship_seq : int;  (** the record's ring sequence number: the replication
                       stream's dedup/retransmit key *)
  ship_lo : int;  (** first transaction ID sealed in the record *)
  ship_hi : int;  (** last transaction ID sealed in the record *)
  ship_payload : bytes;  (** the exact payload bytes persisted to ring 0 *)
}
(** One sealed log record as handed to the replication layer
    ([lib/replica]): the group-commit batch of PR 6, reused verbatim as
    the wire unit.  A follower ingesting the payload reproduces a
    byte-identical record at the same sequence number in its own ring. *)

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  type t

  type tx

  (** {1 Lifecycle} *)

  val create : ?nvm_label:string -> Config.t -> t
  (** Build a fresh instance: allocates and formats a simulated NVM device
      per the config's layout.  [nvm_label] (default ["nvm"]) names the
      device in trace per-device accounting — the sharding layer passes
      ["shard<i>"]. *)

  val attach : Config.t -> Dudetm_nvm.Nvm.t -> t * recovery_report
  (** Recover from a crashed device: scan the log rings, recompute the
      durable ID, replay durable transactions past the checkpoint, discard
      torn tails, rebuild the allocator, and return a fresh instance whose
      transaction IDs continue after the recovered prefix.

      Recovery is itself crash-consistent: a pending scrub probe recorded
      in the intent journal ({!Rjournal}) is undone first, the recovery
      verdict is sealed in the journal before any heap mutation, and a
      crash at any persist boundary inside [attach] followed by a fresh
      [attach] converges to the same durable ID, heap state and recovery
      report. *)

  (** {2 Two-phase recovery (cross-shard vote)}

      [attach] is the composition of a non-destructive scan and a
      destructive commit.  The sharding layer prepares every region first,
      votes over the scanned fragment seals and checkpointed frontiers,
      then commits each region with its voted durable cut — so a fragment
      of an incomplete cross-shard transaction set is discarded on {e
      every} region, never replayed on some and dropped on others. *)

  type prepared

  val attach_prepare : Config.t -> Dudetm_nvm.Nvm.t -> prepared
  (** Undo any journalled probe, read the checkpoint, scan the log rings
      and compute the candidate durable ID.  Mutates nothing but the intent
      journal and the torn/lost ring headers the tolerant scan repairs. *)

  val attach_commit : ?durable_cut:int -> prepared -> t * recovery_report
  (** Finish recovery: seal the verdict, replay the durable prefix (capped
      at [durable_cut] when the cross-shard vote shrank it), checkpoint and
      recycle.  [durable_cut] may only shrink the prefix; it is clamped to
      the checkpointed watermark from below and rejected above the scanned
      candidate. *)

  val prepared_durable : prepared -> int
  (** Candidate durable ID before any vote. *)

  val prepared_frontier : prepared -> int
  (** Checkpointed cross-shard frontier: every fragment with a global ID at
      or below it was replayed (and possibly recycled) by this region. *)

  val prepared_fragments : prepared -> (int * int * int) list
  (** Scanned fragment seals [(gtid, mask, tid)], sorted. *)

  val prepared_checkpoint_upto : prepared -> int
  (** Checkpointed replay watermark: the floor below which a durable cut
      cannot reach (replayed state cannot be un-replayed). *)

  val start : t -> unit
  (** Spawn the Persist and Reproduce daemon threads.  Must run inside
      {!Dudetm_sim.Sched.run}; call once before the first transaction. *)

  val begin_drain : t -> unit
  (** Mark the instance as draining without blocking.  The sharding layer
      sets this on every region before blocking in {!drain}: a
      combined-mode persist daemon only flushes a partial trailing group
      once draining is set, and a cross-shard replay gate on one region can
      require exactly that trailing flush on a sibling. *)

  val drain : t -> unit
  (** Block until every committed transaction is durable and reproduced.
      Call only after all application threads have stopped issuing
      transactions: the wait covers transactions committed so far, not
      ones that have yet to begin.  Raises {!Drain_stalled} with a pipeline
      diagnostic if more than {!Config.drain_budget} simulated cycles pass
      without the pipeline draining (livelock watchdog; true deadlock
      raises [Sched.Deadlock] as before). *)

  val stop : t -> unit
  (** Ask daemons to exit once drained (they are daemons, so this is only
      needed when an experiment wants their final counters flushed). *)

  (** {1 Transactions (the paper's five-call API)} *)

  val atomically : t -> thread:int -> (tx -> 'a) -> ('a * int) option
  (** [atomically t ~thread f] is [dtmBegin]; [f] runs transactionally with
      automatic conflict retry.  Returns [Some (result, tid)] after commit
      ([tid = 0] for read-only transactions) or [None] if [f] aborted via
      {!abort}.  [thread] indexes the calling Perform thread's log buffer
      (0 to [nthreads-1]); each simulated thread must use its own index. *)

  val atomically_ro :
    ?durable:bool -> t -> thread:int -> (tx -> 'a) -> ('a * int) option
  (** Read-only snapshot transaction (the DUMBO-style fast path): [f] reads
      a consistent epoch of shadow memory taken from the TM's global
      version clock, validated per read against the versioned lock table
      with timestamp extension.  It acquires no locks, appends nothing to
      the redo log, never enters the persist pipeline, and skips the
      ring-pressure throttle and admission pacing entirely — writers and
      daemons cannot observe it.  Returns [Some (result, epoch)] where
      [epoch] is the engine-space clock value the whole read-set is
      consistent at, or [None] if [f] called {!abort}.  A write, [pmalloc]
      or [pfree] inside [f] raises {!Read_only_violation}.

      [durable = true] selects durable-only mode: the epoch is pinned at
      {!ro_watermark} (local durable ID, or the installed shard/quorum
      watermark), so every value read was already crash-surviving at the
      moment of the read; a read observing newer state waits — bounded by
      the group-commit deadline — for durability to catch up.  Fresh-epoch
      mode ([durable = false], the default) may observe committed state
      that is not yet durable. *)

  val read : tx -> int -> int64
  (** [dtmRead]. *)

  val write : tx -> int -> int64 -> unit
  (** [dtmWrite]: append to the redo log, then TM-write. *)

  val abort : tx -> 'a
  (** [dtmAbort]: roll back, discard this attempt's log entries, and make
      {!atomically} return [None]. *)

  (** {1 Persistent allocation (Section 3.5)} *)

  val pmalloc : tx -> int -> int
  (** Allocate from the persistent heap inside a transaction; logged, and
      refunded automatically if the transaction aborts.  The first word is
      transactionally zeroed (which also makes the transaction a write
      transaction).  Raises {!Pmem_exhausted}. *)

  val pfree : tx -> off:int -> len:int -> unit
  (** Free a block; takes effect at commit, logged for recovery. *)

  (** {1 Durability protocol} *)

  val durable_id : t -> int
  (** Largest D with every write transaction ID ≤ D persistent. *)

  val applied_id : t -> int
  (** Largest ID whose updates Reproduce has applied to NVM (volatile
      watermark; gates shadow-page swap-in). *)

  val last_tid : t -> int
  (** Most recently committed write-transaction ID. *)

  val wait_durable : t -> int -> unit
  (** Block until [durable_id t >= tid]. *)

  val set_ro_watermark : t -> (unit -> int) option -> unit
  (** Install the watermark durable-only snapshots pin at, in engine tid
      space.  Layers that gate durability beyond the local device use
      this: the sharding layer installs per-shard {e effective} durable
      IDs (cross-shard fragments held back until their siblings are
      durable), the replication layer its quorum watermark.  The thunk
      must be a pure read — snapshot readers poll it from scheduler wait
      conditions.  [None] restores the default (the local durable ID). *)

  val ro_watermark : t -> int
  (** The watermark durable-only snapshots currently pin at. *)

  val set_drain_context : t -> (unit -> string) option -> unit
  (** Install a front-end context supplement appended to the
      {!Drain_stalled} diagnostic (the serving layer reports its queue
      depth, shed counts and admission-gate state) so an operator can
      distinguish "engine stalled" from "front end overloaded".  The thunk
      must be a pure read.  [None] removes it. *)

  (** {1 Cross-shard transactions (sharding layer hooks)} *)

  val seal_cross : tx -> gtid:int -> mask:int -> unit
  (** Request a fragment seal: if this transaction commits with writes, a
      [Cross { gtid; mask; tid }] redo entry is logged just before its end
      mark, CRC-sealed into the same durable record.  Called by the
      sharding layer once the body has finished and the set of shards
      actually written is known. *)

  val set_cross_gate : t -> (int -> bool) option -> unit
  (** Install the cross-shard replay gate: when the next replay item
      carries a [Cross] seal, Reproduce applies it only once [gate gtid]
      holds for the item's highest sealed global ID (i.e. every cross-shard
      transaction at or below it is durable on all its shards).  The global
      ID comes from the log record itself, so a fragment can never be
      applied before the sharding layer knows its sibling set.  The
      predicate must be pure — it runs inside scheduler wait conditions.
      Ignored under the [Skip_fragment_gate] fault mutant. *)

  val cross_frontier : t -> int
  (** Highest cross-shard global transaction ID this region has replayed
      (volatile mirror of the checkpointed frontier). *)

  (** {1 Replicated durability (replication layer hooks)}

      [lib/replica] runs one primary (a normal started instance) plus K
      followers.  The primary's Persist daemon hands every sealed record to
      {!set_ship_hook}'s callback; each follower ingests the records
      in order via {!ingest_record} and replays them with its own Reproduce
      daemon ({!start_follower}), gated by {!set_replay_gate} to the
      cluster's quorum-acknowledged watermark. *)

  val set_ship_hook : t -> (shipment -> unit) option -> unit
  (** Install the primary-side ship tap: fires on the Persist daemon
      immediately after a log record's NVM persist completes (and its
      durable IDs are published) — the earliest point at which the batch is
      sealed locally and may be offered to replicas.  The callback must not
      block (the replication layer enqueues onto simulated links). *)

  val ingest_record : t -> bytes -> bool
  (** Follower-side flusher tail: append the shipped payload to ring 0,
      queue the replay item and advance the local durable watermark.
      Returns [false] (and does nothing) when the ring lacks space — the
      caller keeps the frame buffered and retries after Reproduce recycles.
      Raises [Invalid_argument] if the batch does not extend the follower's
      contiguous durable prefix (the replication layer's in-order delivery
      was violated). *)

  val start_follower : t -> unit
  (** Spawn only the supervised Reproduce daemon: a follower performs no
      transactions and persists nothing of its own. *)

  val stop_follower : t -> unit
  (** Ask a follower's Reproduce daemon to checkpoint what is applied and
      exit.  No drain: the replay gate may legitimately hold back a
      never-acknowledged suffix forever. *)

  val set_replay_gate : t -> (int -> bool) option -> unit
  (** Install the follower's quorum replay gate: Reproduce applies the next
      item only if [gate hi] holds for the item's last transaction ID.
      Keeping replay at or below the cluster's acknowledged watermark keeps
      the checkpoint floor below any legal promotion-time durable cut.  The
      predicate must be pure — it runs inside scheduler wait conditions. *)

  (** {1 Degraded mode} *)

  val freeze : t -> reason:string -> unit
  (** Enter degraded read-only mode: subsequent transactional writes,
      [pmalloc] and [pfree] raise {!Read_only} with [reason]; reads and
      read-only transactions continue to work.  Used when scrub reports
      unreconstructible extents — serve what survived instead of refusing
      to attach. *)

  val read_only : t -> string option
  (** [Some reason] when frozen. *)

  (** {1 Introspection} *)

  val config : t -> Config.t

  val nvm : t -> Dudetm_nvm.Nvm.t

  val root_base : t -> int
  (** Address of the reserved root block (heap offset 0). *)

  val heap_read_u64 : t -> int -> int64
  (** Non-transactional read of the volatile heap view (for debugging and
      test assertions outside transactions). *)

  val ring_pressure : t -> bool
  (** [true] while any persistent log ring is above the backpressure
      high-water mark ({!Config.t.bp_hwm_fraction}).  Pure read — the
      admission gate of the serving front end polls it when deciding
      whether to shed, so overload is detected {e before} Perform threads
      start blocking in throttle waits. *)

  val drain_diagnostic : t -> string
  (** The diagnostic string {!drain} would raise with right now: pipeline
      watermarks, ring occupancy, daemon counters, plus any installed
      {!set_drain_context} supplement.  For tests and operator tooling. *)

  val stats : t -> Dudetm_sim.Stats.t
  (** ["txs"], ["log_entries"], ["flush_records"], ["flush_payload_bytes"],
      ["combine_writes_in"], ["combine_writes_out"],
      ["compress_in_bytes"], ["compress_out_bytes"]; supervision and
      backpressure: ["daemon_faults"], ["daemon_restarts"],
      ["daemon_backoff_cycles"], ["bp_throttle_events"],
      ["bp_throttle_cycles"], ["pmalloc_waits"], ["pmalloc_wait_cycles"],
      and high-water marks ["plog_hwm_bytes"], ["vlog_hwm_entries"]. *)

  val tm : t -> Tm.t

  val shadow_stats : t -> Dudetm_sim.Stats.t option
  (** Paging counters when running with a paged shadow. *)

  val vlog_producer_blocks : t -> int
end

module Nvm = Dudetm_nvm.Nvm
module Checksum = Dudetm_log.Checksum

type state = {
  reproduced_upto : int;
  cross_frontier : int;
  free_extents : (int * int) list;
}

type t = {
  nvm : Nvm.t;
  base : int;
  slot_size : int;
  mutable next_seq : int;
  mutable next_slot : int;  (* 0 or 1 *)
}

(* Slot layout: seq u64, reproduced_upto u64, cross_frontier u64,
   n_extents u64, n_extents * (off u64, len u64), crc u64.  CRC covers
   everything before it. *)
let slot_overhead = 40

let max_extents_of_slot slot_size = (slot_size - slot_overhead) / 16

let encode state ~seq ~slot_size =
  let exts = state.free_extents in
  let n = List.length exts in
  if slot_overhead + (16 * n) > slot_size then
    invalid_arg "Checkpoint: free list exceeds slot capacity";
  let b = Bytes.make (slot_overhead + (16 * n)) '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.set_int64_le b 8 (Int64.of_int state.reproduced_upto);
  Bytes.set_int64_le b 16 (Int64.of_int state.cross_frontier);
  Bytes.set_int64_le b 24 (Int64.of_int n);
  List.iteri
    (fun i (off, len) ->
      Bytes.set_int64_le b (32 + (16 * i)) (Int64.of_int off);
      Bytes.set_int64_le b (40 + (16 * i)) (Int64.of_int len))
    exts;
  let crc = Checksum.crc32 b 0 (Bytes.length b - 8) in
  Bytes.set_int64_le b (Bytes.length b - 8) (Int64.of_int32 crc);
  b

let decode_raw nvm ~slot_base ~slot_size =
  let head = Nvm.load_bytes nvm slot_base 32 in
  let seq = Int64.to_int (Bytes.get_int64_le head 0) in
  let upto = Int64.to_int (Bytes.get_int64_le head 8) in
  let frontier = Int64.to_int (Bytes.get_int64_le head 16) in
  let n = Int64.to_int (Bytes.get_int64_le head 24) in
  if n < 0 || slot_overhead + (16 * n) > slot_size then None
  else begin
    let total = slot_overhead + (16 * n) in
    let b = Nvm.load_bytes nvm slot_base total in
    let crc = Int64.to_int32 (Bytes.get_int64_le b (total - 8)) in
    if Checksum.crc32 b 0 (total - 8) <> crc then None
    else begin
      let exts = ref [] in
      for i = n - 1 downto 0 do
        exts :=
          ( Int64.to_int (Bytes.get_int64_le b (32 + (16 * i))),
            Int64.to_int (Bytes.get_int64_le b (40 + (16 * i))) )
          :: !exts
      done;
      Some (seq, { reproduced_upto = upto; cross_frontier = frontier; free_extents = !exts })
    end
  end

let decode nvm ~slot_base ~slot_size =
  match decode_raw nvm ~slot_base ~slot_size with
  | exception Nvm.Media_error _ -> None  (* a poisoned slot is just an invalid slot *)
  | r -> r

let slot_base t i = t.base + (i * t.slot_size)

let write_slot t slot state ~seq =
  let b = encode state ~seq ~slot_size:t.slot_size in
  Nvm.store_bytes t.nvm (slot_base t slot) b;
  Nvm.persist t.nvm ~off:(slot_base t slot) ~len:(Bytes.length b)

let format nvm ~base ~size state =
  if size < 2 * (slot_overhead + 16) then invalid_arg "Checkpoint.format: meta block too small";
  let t = { nvm; base; slot_size = size / 2; next_seq = 2; next_slot = 0 } in
  (* Write both slots so attach always finds a valid one even if the first
     real checkpoint tears. *)
  write_slot t 0 state ~seq:0;
  write_slot t 1 state ~seq:1;
  t

let attach nvm ~base ~size =
  if size < 2 * (slot_overhead + 16) then invalid_arg "Checkpoint.attach: meta block too small";
  let slot_size = size / 2 in
  let s0 = decode nvm ~slot_base:base ~slot_size in
  let s1 = decode nvm ~slot_base:(base + slot_size) ~slot_size in
  match (s0, s1) with
  | None, None -> invalid_arg "Checkpoint.attach: no valid checkpoint"
  | Some (seq, st), None ->
    ({ nvm; base; slot_size; next_seq = seq + 1; next_slot = 1 }, st)
  | None, Some (seq, st) ->
    ({ nvm; base; slot_size; next_seq = seq + 1; next_slot = 0 }, st)
  | Some (q0, st0), Some (q1, st1) ->
    if q0 > q1 then ({ nvm; base; slot_size; next_seq = q0 + 1; next_slot = 1 }, st0)
    else ({ nvm; base; slot_size; next_seq = q1 + 1; next_slot = 0 }, st1)

let write t state =
  write_slot t t.next_slot state ~seq:t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.next_slot <- 1 - t.next_slot

let max_extents t = max_extents_of_slot t.slot_size

let scrub ?(repair = true) nvm ~base ~size =
  let slot_size = size / 2 in
  let s0 = decode nvm ~slot_base:base ~slot_size in
  let s1 = decode nvm ~slot_base:(base + slot_size) ~slot_size in
  match (s0, s1) with
  | Some _, Some _ -> `Ok
  | None, None -> `Fatal
  | good ->
    (* One slot damaged: rewrite it from the survivor with an older seq so
       the survivor stays the one recovery picks. *)
    if repair then begin
      let t = { nvm; base; slot_size; next_seq = 0; next_slot = 0 } in
      (match good with
      | Some (seq, st), None -> write_slot t 1 st ~seq:(max 0 (seq - 1))
      | None, Some (seq, st) -> write_slot t 0 st ~seq:(max 0 (seq - 1))
      | _ -> assert false);
      `Repaired
    end
    else `Degraded

(** DudeTM instance configuration and NVM layout.

    The simulated NVM device is partitioned as:
    {v
      [0, heap_size)                      persistent data heap
      [heap_size, +meta_size)             meta block (allocator checkpoint,
                                          reproduced-upto watermark)
      [.., +crcdir_size)                  per-extent heap CRC directory
      [.., +badline_size)                 persistent bad-line table
      [.., +rjournal_size)                recovery intent journal
      [.., +hjournal_size)                migration handoff journal
      [.., +plog_regions * plog_size)     persistent redo-log rings
    v} *)

exception Invalid_config of string
(** Raised by {!validate} for inconsistent configurations.  A single clear
    error at [create]/[attach] time instead of downstream failures. *)

(** How a transaction acknowledges durability (Section 5.1's evaluated
    systems). *)
type mode =
  | Async  (** decoupled: [dtmEnd] returns after Perform (DUDETM) *)
  | Sync  (** the Perform thread flushes its own log and waits
              (DUDETM-Sync) *)
  | Inf  (** decoupled with unbounded volatile log buffers (DUDETM-Inf) *)

(** Deliberately seeded crash-ordering bugs, used {e only} to validate the
    systematic crash checker ([lib/check]): a checker that cannot detect
    these mutants proves nothing about the real engine.  Production
    configurations always use [No_fault]. *)
type fault =
  | No_fault
  | Early_durable_publish
      (** Persist step publishes the durable ID {e before} the log record's
          persist fence: a crash in the window loses acknowledged
          transactions. *)
  | Unfenced_reproduce
      (** Reproduce skips the persist fence on reproduced data before the
          checkpoint watermark advances: a crash after the checkpoint loses
          heap data the recovery believes is already home. *)
  | Skip_crc_verify
      (** Scrub skips re-verifying heap extents against the CRC directory:
          media corruption of checkpointed heap data goes undetected and
          wrong values are silently served after recovery.  Validates the
          media-fault campaign ([dudetm check --media]). *)
  | Skip_recovery_journal
      (** [attach] and [Scrub.scrub] skip the recovery intent journal:
          recovery-time NVM writes (stuck-line probes, replay verdicts) are
          no longer ordered behind a sealed intent, so a crash in the middle
          of recovery can leave a probe pattern in live data or a diverging
          recovery report.  Validates the nested-crash campaign
          ([dudetm check --recovery]). *)
  | Skip_fragment_gate
      (** Reproduce ignores the cross-shard replay gate and applies a
          cross-shard fragment before its sibling fragments are durable on
          their shards: a crash in the window can leave a partial
          cross-shard transaction surviving recovery.  Validates the
          sharded crash campaign ([dudetm check --shards]). *)
  | Skip_batch_seal
      (** The pipelined Persist stage publishes a batch's durable IDs when
          the batch is {e sealed} (combined, CRC'd and queued for flushing)
          instead of when its log record's NVM persist completes: a
          mid-pipeline crash — batch [k] durable, batch [k+1]
          sealed-but-unflushed — loses acknowledged transactions.
          Validates the batch-boundary campaign ([dudetm check --batch]).
          Requires [combine]. *)
  | Skip_quorum_gate
      (** The replication layer acknowledges a transaction at the
          {e primary-local} durable watermark instead of the quorum vector
          watermark: a primary death while the sealed batch is still in
          flight to the replicas loses acknowledged transactions on
          failover.  Validates the replicated-durability campaign
          ([dudetm check --replica]). *)
  | Skip_handoff_seal
      (** The live-migration coordinator flips key-range ownership in
          volatile routing {e without} sealing the handoff record and the
          new partition descriptor first: a power cut after the flip makes
          recovery read the stale descriptor, route the migrated range back
          to the source shard, and lose every write acknowledged on the new
          owner.  Validates the migration campaign
          ([dudetm check --migrate]). *)
  | Skip_snapshot_validate
      (** Read-only snapshot transactions skip the lock-table revalidation
          when extending their epoch past a concurrent commit: a reader
          that spans a writer's commit can return values from {e two}
          different epochs (a torn read-set) — e.g. one half of an
          invariant-preserving pair update.  Validates the snapshot
          campaign ([dudetm check --snapshot]). *)
  | Skip_admission_gate
      (** The serving front end ([lib/serve]) runs with its admission gate
          stubbed out: overload is never shed (the bounded request queue
          grows without limit) and write acknowledgements are released at
          {e commit} instead of at the shard's durable watermark — the
          gate is the one component that both admits requests and releases
          replies against the acked prefix.  A power cut mid-burst then
          loses acknowledged requests.  Validates the serving campaign
          ([dudetm check --serve]). *)

type t = {
  heap_size : int;  (** bytes of persistent data heap *)
  root_size : int;  (** reserved root block at heap offset 0 *)
  nthreads : int;  (** Perform threads *)
  mode : mode;
  pmem : Dudetm_nvm.Pmem_config.t;
  shadow_mode : Dudetm_shadow.Shadow.mode;
  shadow_frames : int option;  (** [None]: shadow as large as the heap *)
  vlog_capacity : int;  (** volatile log entries per thread *)
  plog_size : int;  (** bytes per persistent log ring *)
  meta_size : int;
  group_size : int;  (** transactions per persist group *)
  combine : bool;  (** cross-transaction write combination *)
  compress : bool;  (** LZ-compress combined groups before flushing *)
  persist_threads : int;
  batch_min_entries : int;
      (** floor of the adaptive per-record entry bound: the Persist daemon
          never waits for fewer entries than this before the deadline *)
  batch_max_entries : int;
      (** hard cap on entries per persisted log record; bounds both the
          single-flush channel occupancy (the commit-latency tail) and the
          volatile state lost by a crash mid-batch *)
  batch_deadline : int;
      (** max simulated cycles an open batch may age before it is flushed
          regardless of size; group commit never delays a transaction's
          durability by more than this *)
  reproduce_batch : int;  (** transactions applied per reproduce round *)
  checkpoint_records : int;  (** checkpoint + recycle every N completed log records *)
  tm_costs : Dudetm_tm.Tm_intf.costs;
  log_append_cost : int;  (** cycles per [dtmWrite] log append *)
  flush_cost_per_entry : int;  (** persist-thread CPU work per entry *)
  compress_cost_per_byte : float;
  reproduce_cost_per_entry : int;
  crc_extent : int;
      (** bytes of heap covered per CRC-directory entry; must be a multiple
          of the NVM line size and divide [heap_size] *)
  badline_capacity : int;  (** max remappable stuck lines *)
  drain_budget : int;
      (** simulated cycles {!Dudetm.drain} may consume before raising
          [Drain_stalled] with a daemon-state diagnostic *)
  daemon_fault_rate : float;
      (** probability (seeded via [seed]) that a Persist/Reproduce daemon
          suffers an injected transient failure at a work-unit boundary;
          the supervisor restarts it from its persistent position.  0.0 in
          production; used by the daemon fault-injection campaign. *)
  daemon_backoff_base : int;
      (** simulated cycles of supervisor backoff after the first daemon
          restart; doubles per consecutive failure *)
  daemon_backoff_cap : int;  (** upper bound on supervisor backoff *)
  bp_hwm_fraction : float;
      (** ring-occupancy fraction beyond which Perform threads are
          throttled (bounded wait) before starting new transactions *)
  bp_wait_budget : int;
      (** max simulated cycles a Perform thread blocks per backpressure
          throttle event before proceeding anyway *)
  pmalloc_wait_budget : int;
      (** max simulated cycles [pmalloc] waits for Reproduce to free space
          before raising [Pmem_exhausted] *)
  ack_timeout : int;
      (** max simulated cycles a durability wait may block on the {e quorum}
          ack watermark (replicated durability, [lib/replica]) before the
          cluster degrades to primary-only durability and reports
          [Degraded_quorum] — never an unbounded block behind a partitioned
          replica *)
  seed : int;
  fault : fault;  (** seeded checker-validation bug; [No_fault] in production *)
}

val default : t
(** 4-thread, 16 MiB heap, async mode, 1 GB/s / 1000-cycle NVM, no
    paging, no combination — the paper's base configuration scaled to
    simulator-friendly sizes. *)

val with_mode : mode -> t -> t

val with_pmem : Dudetm_nvm.Pmem_config.t -> t -> t

val plog_regions : t -> int
(** Number of persistent log rings: one per Perform thread, or a single
    merged ring when combination groups transactions across threads. *)

val heap_base : t -> int

val meta_base : t -> int

val crcdir_base : t -> int
(** Base of the per-extent heap CRC directory ([heap_size / crc_extent]
    u64 slots, line-aligned). *)

val crcdir_size : t -> int

val badline_base : t -> int
(** Base of the persistent bad-line (stuck-line remap) table. *)

val badline_size : t -> int

val rjournal_base : t -> int
(** Base of the double-slot CRC-sealed recovery intent journal. *)

val rjournal_size : t -> int

val hjournal_base : t -> int
(** Base of the migration handoff journal: two double-slot CRC-sealed
    records (handoff phase at [+0], partition descriptor at [+256]) used by
    the shard-migration coordinator on device 0 of a sharded instance. *)

val hjournal_size : t -> int

val plog_base : t -> int -> int
(** Base offset of ring [i]. *)

val nvm_size : t -> int
(** Total device size implied by the layout (line-aligned). *)

val validate : t -> unit
(** Raise {!Invalid_config} for inconsistent configurations (e.g.
    combination with several persist threads, heap not page-aligned,
    non-positive budgets, fractions outside [0, 1]). *)

type mode = Async | Sync | Inf

type fault =
  | No_fault
  | Early_durable_publish
  | Unfenced_reproduce
  | Skip_crc_verify
  | Skip_recovery_journal
  | Skip_fragment_gate
  | Skip_batch_seal
  | Skip_quorum_gate
  | Skip_handoff_seal
  | Skip_snapshot_validate
  | Skip_admission_gate

exception Invalid_config of string

let () =
  Printexc.register_printer (function
    | Invalid_config msg -> Some (Printf.sprintf "Invalid_config %S" msg)
    | _ -> None)

type t = {
  heap_size : int;
  root_size : int;
  nthreads : int;
  mode : mode;
  pmem : Dudetm_nvm.Pmem_config.t;
  shadow_mode : Dudetm_shadow.Shadow.mode;
  shadow_frames : int option;
  vlog_capacity : int;
  plog_size : int;
  meta_size : int;
  group_size : int;
  combine : bool;
  compress : bool;
  persist_threads : int;
  batch_min_entries : int;
  batch_max_entries : int;
  batch_deadline : int;
  reproduce_batch : int;
  checkpoint_records : int;
  tm_costs : Dudetm_tm.Tm_intf.costs;
  log_append_cost : int;
  flush_cost_per_entry : int;
  compress_cost_per_byte : float;
  reproduce_cost_per_entry : int;
  crc_extent : int;
  badline_capacity : int;
  drain_budget : int;
  daemon_fault_rate : float;
  daemon_backoff_base : int;
  daemon_backoff_cap : int;
  bp_hwm_fraction : float;
  bp_wait_budget : int;
  pmalloc_wait_budget : int;
  ack_timeout : int;
  seed : int;
  fault : fault;
}

let default =
  {
    heap_size = 16 * 1024 * 1024;
    root_size = 4096;
    nthreads = 4;
    mode = Async;
    pmem = Dudetm_nvm.Pmem_config.default;
    shadow_mode = Dudetm_shadow.Shadow.Software;
    shadow_frames = None;
    vlog_capacity = 1 lsl 17;
    plog_size = 1 lsl 21;
    meta_size = 1 lsl 17;
    group_size = 1;
    combine = false;
    compress = false;
    persist_threads = 1;
    batch_min_entries = 16;
    batch_max_entries = 128;
    batch_deadline = 4000;
    reproduce_batch = 64;
    checkpoint_records = 8;
    tm_costs = Dudetm_tm.Tm_intf.default_costs;
    log_append_cost = 80;
    flush_cost_per_entry = 6;
    compress_cost_per_byte = 2.0;
    reproduce_cost_per_entry = 24;
    crc_extent = 512;
    badline_capacity = 64;
    drain_budget = 200_000_000;
    daemon_fault_rate = 0.0;
    daemon_backoff_base = 200;
    daemon_backoff_cap = 100_000;
    bp_hwm_fraction = 0.75;
    bp_wait_budget = 2_000_000;
    pmalloc_wait_budget = 1_000_000;
    ack_timeout = 2_000_000;
    seed = 42;
    fault = No_fault;
  }

let with_mode mode t = { t with mode }

let with_pmem pmem t = { t with pmem }

let plog_regions t = if t.combine then t.persist_threads else t.nthreads

let heap_base _ = 0

let meta_base t = t.heap_size

let line_align t n =
  let line = t.pmem.Dudetm_nvm.Pmem_config.line_size in
  (n + line - 1) / line * line

let crcdir_base t = t.heap_size + t.meta_size

let crcdir_size t = line_align t (t.heap_size / t.crc_extent * 8)

let badline_base t = crcdir_base t + crcdir_size t

let badline_size t = line_align t ((3 + t.badline_capacity) * 8)

let rjournal_base t = badline_base t + badline_size t

(* Two fixed-size intent slots (see Rjournal); each slot is padded to 128
   bytes so slot writes never share a cache line. *)
let rjournal_size t = line_align t 256

let hjournal_base t = rjournal_base t + rjournal_size t

(* Two double-slot records for the shard-migration coordinator (device 0
   of a sharded instance): the handoff record at +0 and the partition
   descriptor at +256.  Every device reserves the region so the layout is
   uniform; unsharded engines simply never touch it. *)
let hjournal_size t = line_align t 512

let plog_base t i = hjournal_base t + hjournal_size t + (i * t.plog_size)

let nvm_size t =
  (* Pad to a page: the paged shadow views the whole device and requires a
     page-aligned size (the CRC directory and bad-line table regions are
     only line-aligned). *)
  let page = 4096 in
  let n = line_align t (plog_base t (plog_regions t)) in
  (n + page - 1) / page * page

let validate t =
  let fail msg = raise (Invalid_config ("Config: " ^ msg)) in
  let fraction name f =
    if not (f >= 0.0 && f <= 1.0) then fail (name ^ " must be within [0, 1]")
  in
  if t.heap_size <= 0 || t.heap_size land 4095 <> 0 then fail "heap_size must be a positive multiple of 4096";
  if t.root_size < 8 || t.root_size > t.heap_size then fail "bad root_size";
  if t.nthreads < 1 then fail "nthreads < 1";
  if t.vlog_capacity < 16 then fail "vlog_capacity too small";
  if t.plog_size < 4096 then fail "plog_size too small";
  if t.meta_size < 4096 then fail "meta_size too small";
  if t.group_size < 1 then fail "group_size < 1";
  if t.persist_threads < 1 then fail "persist_threads < 1";
  if t.combine && t.persist_threads <> 1 then
    fail "cross-transaction combination requires a single persist thread";
  if (not t.combine) && t.compress then fail "compression requires combination";
  if t.batch_min_entries < 1 then fail "batch_min_entries < 1";
  if t.batch_max_entries < t.batch_min_entries then
    fail "batch_max_entries below batch_min_entries";
  if t.batch_deadline < 1 then fail "batch_deadline < 1";
  if t.fault = Skip_batch_seal && not t.combine then
    fail "Skip_batch_seal seeds a bug in the pipelined (combine) persist path";
  if t.reproduce_batch < 1 then fail "reproduce_batch < 1";
  if t.checkpoint_records < 1 then fail "checkpoint_records < 1";
  let line = t.pmem.Dudetm_nvm.Pmem_config.line_size in
  if t.crc_extent < line || t.crc_extent mod line <> 0 then
    fail "crc_extent must be a positive multiple of the NVM line size";
  if t.heap_size mod t.crc_extent <> 0 then fail "crc_extent must divide heap_size";
  if t.badline_capacity < 1 then fail "badline_capacity < 1";
  if t.drain_budget < 1 then fail "drain_budget < 1";
  fraction "daemon_fault_rate" t.daemon_fault_rate;
  fraction "bp_hwm_fraction" t.bp_hwm_fraction;
  if t.daemon_backoff_base < 1 then fail "daemon_backoff_base < 1";
  if t.daemon_backoff_cap < t.daemon_backoff_base then
    fail "daemon_backoff_cap below daemon_backoff_base";
  if t.bp_wait_budget < 0 then fail "bp_wait_budget < 0";
  if t.pmalloc_wait_budget < 0 then fail "pmalloc_wait_budget < 0";
  if t.ack_timeout < 1 then fail "ack_timeout < 1";
  if nvm_size t land 4095 <> 0 then fail "nvm_size not page-aligned";
  (match t.shadow_frames with
  | Some f when f < 2 -> fail "shadow_frames < 2"
  | _ -> ());
  if t.mode = Sync && t.combine then fail "Sync mode flushes per transaction; combination needs Async"

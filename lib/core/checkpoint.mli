(** Double-buffered persistent checkpoint in the meta block.

    Records the Reproduce watermark ([reproduced_upto]: every transaction
    with ID at or below it has its data persisted in the heap) together with
    the allocator free list as of that transaction.  Written alternately to
    two slots, each sealed with a sequence number and CRC, so a crash during
    a checkpoint write leaves the previous checkpoint intact. *)

type state = {
  reproduced_upto : int;
  cross_frontier : int;
      (** Highest cross-shard global transaction ID whose fragment this
          region has replayed (0 when the region never held one).  Lets a
          sibling shard's recovery distinguish "fragment replayed and
          recycled" from "fragment never became durable". *)
  free_extents : (int * int) list;
}

type t

val format : Dudetm_nvm.Nvm.t -> base:int -> size:int -> state -> t
(** Initialize both slots; persists the initial [state] as checkpoint 0. *)

val attach : Dudetm_nvm.Nvm.t -> base:int -> size:int -> t * state
(** Read back the newest valid slot.  Raises [Invalid_argument] if neither
    slot validates (the meta block was never formatted). *)

val write : t -> state -> unit
(** Persist a new checkpoint into the older slot (one persist ordering).
    Raises [Invalid_argument] if the free list does not fit a slot. *)

val max_extents : t -> int
(** How many free extents a slot can hold. *)

val scrub :
  ?repair:bool ->
  Dudetm_nvm.Nvm.t ->
  base:int ->
  size:int ->
  [ `Ok | `Repaired | `Degraded | `Fatal ]
(** Audit both slots without attaching.  [`Ok]: both valid.  One slot
    invalid (torn, bit-rotted or poisoned): with [repair] (default) the
    damaged slot is rewritten from the survivor with an older sequence
    number and the result is [`Repaired]; without, [`Degraded].  [`Fatal]:
    neither slot validates — the instance cannot recover. *)

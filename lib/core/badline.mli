(** Persistent bad-line (stuck-line remap) table.

    Stuck-at NVM lines silently drop writes; once scrub detects one (a
    write probe that reads back stale), the line's address is recorded
    here and the heap allocator thereafter refuses to hand out space
    covering it — remapping future allocations away from the bad media.
    The table is a small checksummed array in its own NVM region; a
    corrupt table reformats empty (losing only remap entries, which
    re-detection restores — never data). *)

type t

val format : Dudetm_nvm.Nvm.t -> Config.t -> t
(** Initialize an empty table and persist it. *)

val attach : Dudetm_nvm.Nvm.t -> Config.t -> t * bool
(** Re-open the table from the persisted image.  Returns [false] when the
    stored table failed validation (bad magic/CRC/count or poisoned) and
    was reformatted empty. *)

val add : t -> int -> bool
(** Record one bad line and persist the table.  Returns [false] when the
    table is full (the line stays usable-at-risk); adding a line already
    present is a no-op returning [true]. *)

val mem : t -> int -> bool

val lines : t -> int list
(** Recorded bad lines, ascending. *)

val count : t -> int

val capacity : t -> int

val full : t -> bool

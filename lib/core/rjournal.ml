module Nvm = Dudetm_nvm.Nvm
module Checksum = Dudetm_log.Checksum

(* ------------------------------------------------------------------ *)
(* Generic double-slot CRC-sealed record machinery                     *)
(* ------------------------------------------------------------------ *)

(* Shared by the recovery intent journal below and the shard-migration
   handoff journal (lib/shard/handoff.ml).  Each 128-byte slot holds
   seq u64 | kind u64 | len u64 | payload (len <= 12 u64s) | crc u64, the
   CRC32 covering everything before it.  Writers alternate slots with a
   monotone sequence number, so a torn write simply leaves the twin — the
   previous sealed record — in force. *)
module Slots = struct
  let slot_size = 128

  let max_payload = 12

  let encode ~seq ~kind payload =
    let len = Array.length payload in
    if len > max_payload then invalid_arg "Rjournal.Slots: payload too long";
    let used = 24 + (8 * len) + 8 in
    let b = Bytes.make used '\000' in
    Bytes.set_int64_le b 0 (Int64.of_int seq);
    Bytes.set_int64_le b 8 (Int64.of_int kind);
    Bytes.set_int64_le b 16 (Int64.of_int len);
    Array.iteri (fun i w -> Bytes.set_int64_le b (24 + (8 * i)) w) payload;
    let crc = Checksum.crc32 b 0 (used - 8) in
    Bytes.set_int64_le b (used - 8) (Int64.of_int32 crc);
    b

  let write nvm ~base ~slot ~seq ~kind payload =
    let b = encode ~seq ~kind payload in
    let off = base + (slot * slot_size) in
    Nvm.store_bytes nvm off b;
    Nvm.persist nvm ~off ~len:(Bytes.length b)

  let read_raw nvm ~slot_base =
    let b = Nvm.load_bytes nvm slot_base slot_size in
    let len = Int64.to_int (Bytes.get_int64_le b 16) in
    if len < 0 || len > max_payload then None
    else begin
      let used = 24 + (8 * len) + 8 in
      let crc = Int64.to_int32 (Bytes.get_int64_le b (used - 8)) in
      if Checksum.crc32 b 0 (used - 8) <> crc then None
      else
        let seq = Int64.to_int (Bytes.get_int64_le b 0) in
        let kind = Int64.to_int (Bytes.get_int64_le b 8) in
        let payload = Array.init len (fun i -> Bytes.get_int64_le b (24 + (8 * i))) in
        Some (seq, kind, payload)
    end

  let read nvm ~base ~slot =
    match read_raw nvm ~slot_base:(base + (slot * slot_size)) with
    | exception Nvm.Media_error _ -> None  (* a poisoned slot is just an invalid slot *)
    | r -> r

  (* Newest valid record and the slot it lives in; [None] when both slots
     are torn or poisoned (nothing was ever sealed). *)
  let newest nvm ~base =
    match (read nvm ~base ~slot:0, read nvm ~base ~slot:1) with
    | None, None -> None
    | Some (seq, kind, p), None -> Some (seq, kind, p, 0)
    | None, Some (seq, kind, p) -> Some (seq, kind, p, 1)
    | Some (q0, k0, p0), Some (q1, k1, p1) ->
      if q0 > q1 then Some (q0, k0, p0, 0) else Some (q1, k1, p1, 1)
end

(* ------------------------------------------------------------------ *)
(* Recovery intent journal                                             *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_durable : int;
  v_replayed_txs : int;
  v_discarded_txs : int;
  v_discarded_records : int;
  v_corrupted_records : int;
  v_quarantined_lines : int;
}

type intent =
  | Idle
  | Replay of verdict
  | Probe of { line : int; original : int64 }

type t = {
  nvm : Nvm.t;
  base : int;
  mutable next_seq : int;
  mutable next_slot : int;  (* 0 or 1 *)
  mutable current : intent;
}

let kind_of = function Idle -> 0 | Replay _ -> 1 | Probe _ -> 2

let payload_of = function
  | Idle -> [||]
  | Replay v ->
    [|
      Int64.of_int v.v_durable;
      Int64.of_int v.v_replayed_txs;
      Int64.of_int v.v_discarded_txs;
      Int64.of_int v.v_discarded_records;
      Int64.of_int v.v_corrupted_records;
      Int64.of_int v.v_quarantined_lines;
    |]
  | Probe { line; original } -> [| Int64.of_int line; original |]

let intent_of ~kind payload =
  let word i = if i < Array.length payload then payload.(i) else 0L in
  let int i = Int64.to_int (word i) in
  match kind with
  | 0 -> Some Idle
  | 1 ->
    Some
      (Replay
         {
           v_durable = int 0;
           v_replayed_txs = int 1;
           v_discarded_txs = int 2;
           v_discarded_records = int 3;
           v_corrupted_records = int 4;
           v_quarantined_lines = int 5;
         })
  | 2 -> Some (Probe { line = int 0; original = word 1 })
  | _ -> None

let write_slot t slot intent ~seq =
  Slots.write t.nvm ~base:t.base ~slot ~seq ~kind:(kind_of intent) (payload_of intent)

let format nvm ~base =
  let t = { nvm; base; next_seq = 2; next_slot = 0; current = Idle } in
  write_slot t 0 Idle ~seq:0;
  write_slot t 1 Idle ~seq:1;
  t

let attach nvm ~base =
  match Slots.newest nvm ~base with
  | None ->
    (* Both slots torn or poisoned: no intent can have been sealed, so the
       only safe reading is "no recovery in progress".  Self-heal. *)
    format nvm ~base
  | Some (seq, kind, payload, slot) -> (
    match intent_of ~kind payload with
    | Some it -> { nvm; base; next_seq = seq + 1; next_slot = 1 - slot; current = it }
    | None -> format nvm ~base)

let read t = t.current

let write t intent =
  write_slot t t.next_slot intent ~seq:t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.next_slot <- 1 - t.next_slot;
  t.current <- intent

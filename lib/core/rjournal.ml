module Nvm = Dudetm_nvm.Nvm
module Checksum = Dudetm_log.Checksum

type verdict = {
  v_durable : int;
  v_replayed_txs : int;
  v_discarded_txs : int;
  v_discarded_records : int;
  v_corrupted_records : int;
  v_quarantined_lines : int;
}

type intent =
  | Idle
  | Replay of verdict
  | Probe of { line : int; original : int64 }

type t = {
  nvm : Nvm.t;
  base : int;
  mutable next_seq : int;
  mutable next_slot : int;  (* 0 or 1 *)
  mutable current : intent;
}

(* Slot layout: seq u64, kind u64, six payload u64s, crc u64.  The CRC
   covers everything before it.  Slots are 128 bytes apart so the two
   never share a cache line. *)
let slot_size = 128

let slot_bytes = 72

let kind_of = function Idle -> 0 | Replay _ -> 1 | Probe _ -> 2

let payload_of = function
  | Idle -> [| 0L; 0L; 0L; 0L; 0L; 0L |]
  | Replay v ->
    [|
      Int64.of_int v.v_durable;
      Int64.of_int v.v_replayed_txs;
      Int64.of_int v.v_discarded_txs;
      Int64.of_int v.v_discarded_records;
      Int64.of_int v.v_corrupted_records;
      Int64.of_int v.v_quarantined_lines;
    |]
  | Probe { line; original } ->
    [| Int64.of_int line; original; 0L; 0L; 0L; 0L |]

let encode intent ~seq =
  let b = Bytes.make slot_bytes '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.set_int64_le b 8 (Int64.of_int (kind_of intent));
  Array.iteri (fun i w -> Bytes.set_int64_le b (16 + (8 * i)) w) (payload_of intent);
  let crc = Checksum.crc32 b 0 (slot_bytes - 8) in
  Bytes.set_int64_le b (slot_bytes - 8) (Int64.of_int32 crc);
  b

let decode_raw nvm ~slot_base =
  let b = Nvm.load_bytes nvm slot_base slot_bytes in
  let crc = Int64.to_int32 (Bytes.get_int64_le b (slot_bytes - 8)) in
  if Checksum.crc32 b 0 (slot_bytes - 8) <> crc then None
  else begin
    let seq = Int64.to_int (Bytes.get_int64_le b 0) in
    let word i = Bytes.get_int64_le b (16 + (8 * i)) in
    let int i = Int64.to_int (word i) in
    match Int64.to_int (Bytes.get_int64_le b 8) with
    | 0 -> Some (seq, Idle)
    | 1 ->
      Some
        ( seq,
          Replay
            {
              v_durable = int 0;
              v_replayed_txs = int 1;
              v_discarded_txs = int 2;
              v_discarded_records = int 3;
              v_corrupted_records = int 4;
              v_quarantined_lines = int 5;
            } )
    | 2 -> Some (seq, Probe { line = int 0; original = word 1 })
    | _ -> None
  end

let decode nvm ~slot_base =
  match decode_raw nvm ~slot_base with
  | exception Nvm.Media_error _ -> None  (* a poisoned slot is just an invalid slot *)
  | r -> r

let slot_base t i = t.base + (i * slot_size)

let write_slot t slot intent ~seq =
  let b = encode intent ~seq in
  Nvm.store_bytes t.nvm (slot_base t slot) b;
  Nvm.persist t.nvm ~off:(slot_base t slot) ~len:(Bytes.length b)

let format nvm ~base =
  let t = { nvm; base; next_seq = 2; next_slot = 0; current = Idle } in
  write_slot t 0 Idle ~seq:0;
  write_slot t 1 Idle ~seq:1;
  t

let attach nvm ~base =
  let s0 = decode nvm ~slot_base:base in
  let s1 = decode nvm ~slot_base:(base + slot_size) in
  match (s0, s1) with
  | None, None ->
    (* Both slots torn or poisoned: no intent can have been sealed, so the
       only safe reading is "no recovery in progress".  Self-heal. *)
    format nvm ~base
  | Some (seq, it), None ->
    { nvm; base; next_seq = seq + 1; next_slot = 1; current = it }
  | None, Some (seq, it) ->
    { nvm; base; next_seq = seq + 1; next_slot = 0; current = it }
  | Some (q0, i0), Some (q1, i1) ->
    if q0 > q1 then { nvm; base; next_seq = q0 + 1; next_slot = 1; current = i0 }
    else { nvm; base; next_seq = q1 + 1; next_slot = 0; current = i1 }

let read t = t.current

let write t intent =
  write_slot t t.next_slot intent ~seq:t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.next_slot <- 1 - t.next_slot;
  t.current <- intent

(** Recovery intent journal.

    Recovery ({!Dudetm.Make.attach}) and offline scrub themselves mutate
    NVM — replaying log records onto the heap, resealing CRC extents,
    writing probe patterns into suspected-stuck lines, recycling rings.
    To make those paths idempotent under a crash at {e any} persist
    boundary, every destructive recovery-time write is ordered behind a
    small CRC-sealed intent sealed here first:

    - {!Probe}: scrub is about to overwrite [line] with a test pattern;
      [original] is the word it must restore.  A crash between the pattern
      write and the restore leaves the journal pointing at the damage, and
      the next [attach]/[scrub] undoes it before trusting the heap.
    - {!Replay}: [attach] has computed its recovery verdict (durable ID and
      report counters) and is about to mutate the heap/checkpoint/rings.
      A re-attach after a crash mid-recovery adopts the sealed verdict, so
      the recovery report converges no matter where the crash landed.

    The journal is a double-slot record exactly like {!Checkpoint}: each
    write goes to the older slot with an incremented sequence number and a
    CRC32 seal, so a torn intent write simply leaves the previous intent
    in force.

    The double-slot machinery itself is exposed as {!Slots} so other
    multi-step PM protocols (the shard-migration handoff journal) can seal
    their own intents with the same torn-write discipline. *)

(** Generic double-slot CRC-sealed records: 128-byte slots holding
    [seq | kind | len | payload | crc], written alternately with a monotone
    sequence so the newest valid slot wins and a torn write falls back to
    its twin. *)
module Slots : sig
  val slot_size : int
  (** 128: slots never share a cache line. *)

  val max_payload : int
  (** Payload words per record (12). *)

  val write :
    Dudetm_nvm.Nvm.t -> base:int -> slot:int -> seq:int -> kind:int -> int64 array -> unit
  (** Seal and persist one record into [slot] (0 or 1) at [base]. *)

  val read : Dudetm_nvm.Nvm.t -> base:int -> slot:int -> (int * int * int64 array) option
  (** [(seq, kind, payload)] of a valid slot; [None] when torn or
      poisoned. *)

  val newest : Dudetm_nvm.Nvm.t -> base:int -> (int * int * int64 array * int) option
  (** Newest valid record [(seq, kind, payload, slot)] across both slots;
      [None] when neither decodes. *)
end

type verdict = {
  v_durable : int;  (** durable transaction ID recovery converged on *)
  v_replayed_txs : int;
  v_discarded_txs : int;
  v_discarded_records : int;
  v_corrupted_records : int;
  v_quarantined_lines : int;
}

type intent =
  | Idle  (** no recovery in progress *)
  | Replay of verdict
      (** attach sealed this verdict before mutating; adopt it on re-attach *)
  | Probe of { line : int; original : int64 }
      (** scrub is probing [line]; restore [original] before trusting the
          heap *)

type t

val format : Dudetm_nvm.Nvm.t -> base:int -> t
(** Initialise both slots to {!Idle} (fresh device). *)

val attach : Dudetm_nvm.Nvm.t -> base:int -> t
(** Decode the newest valid slot.  If both slots are torn or poisoned no
    intent can ever have been sealed, so the journal self-heals back to
    {!Idle}. *)

val read : t -> intent

val write : t -> intent -> unit
(** Seal [intent] into the older slot and persist it before returning. *)

(** Recovery intent journal.

    Recovery ({!Dudetm.Make.attach}) and offline scrub themselves mutate
    NVM — replaying log records onto the heap, resealing CRC extents,
    writing probe patterns into suspected-stuck lines, recycling rings.
    To make those paths idempotent under a crash at {e any} persist
    boundary, every destructive recovery-time write is ordered behind a
    small CRC-sealed intent sealed here first:

    - {!Probe}: scrub is about to overwrite [line] with a test pattern;
      [original] is the word it must restore.  A crash between the pattern
      write and the restore leaves the journal pointing at the damage, and
      the next [attach]/[scrub] undoes it before trusting the heap.
    - {!Replay}: [attach] has computed its recovery verdict (durable ID and
      report counters) and is about to mutate the heap/checkpoint/rings.
      A re-attach after a crash mid-recovery adopts the sealed verdict, so
      the recovery report converges no matter where the crash landed.

    The journal is a double-slot record exactly like {!Checkpoint}: each
    write goes to the older slot with an incremented sequence number and a
    CRC32 seal, so a torn intent write simply leaves the previous intent
    in force. *)

type verdict = {
  v_durable : int;  (** durable transaction ID recovery converged on *)
  v_replayed_txs : int;
  v_discarded_txs : int;
  v_discarded_records : int;
  v_corrupted_records : int;
  v_quarantined_lines : int;
}

type intent =
  | Idle  (** no recovery in progress *)
  | Replay of verdict
      (** attach sealed this verdict before mutating; adopt it on re-attach *)
  | Probe of { line : int; original : int64 }
      (** scrub is probing [line]; restore [original] before trusting the
          heap *)

type t

val format : Dudetm_nvm.Nvm.t -> base:int -> t
(** Initialise both slots to {!Idle} (fresh device). *)

val attach : Dudetm_nvm.Nvm.t -> base:int -> t
(** Decode the newest valid slot.  If both slots are torn or poisoned no
    intent can ever have been sealed, so the journal self-heals back to
    {!Idle}. *)

val read : t -> intent

val write : t -> intent -> unit
(** Seal [intent] into the older slot and persist it before returning. *)

module Nvm = Dudetm_nvm.Nvm
module Checksum = Dudetm_log.Checksum

type t = {
  nvm : Nvm.t;
  base : int;  (* directory base on the device *)
  extent : int;  (* heap bytes per entry *)
  n : int;  (* number of entries *)
}

let n_extents t = t.n

let extent_size t = t.extent

let extent_of_addr t addr = addr / t.extent

let slot_off t i = t.base + (i * 8)

let compute_latest t i =
  let b = Nvm.load_bytes t.nvm (i * t.extent) t.extent in
  Checksum.crc32_bytes b

let compute_persisted t i =
  let b = Nvm.persisted_bytes t.nvm (i * t.extent) t.extent in
  Checksum.crc32_bytes b

let stored_crc t i =
  Int64.to_int32 (Nvm.load_u64 t.nvm (slot_off t i))

let stored_crc_persisted t i =
  Int64.to_int32 (Nvm.persisted_u64 t.nvm (slot_off t i))

let set_slot t i crc = Nvm.store_u64 t.nvm (slot_off t i) (Int64.of_int32 crc)

let update t extents =
  match extents with
  | [] -> ()
  | _ ->
    List.iter (fun i -> set_slot t i (compute_latest t i)) extents;
    Nvm.persist_ranges t.nvm (List.map (fun i -> (slot_off t i, 8)) extents)

let update_unpersisted t extents = List.iter (fun i -> set_slot t i (compute_latest t i)) extents

let verify_extent t i =
  match compute_persisted t i with
  | exception Nvm.Media_error _ -> `Poisoned
  | crc -> (
    match stored_crc_persisted t i with
    | exception Nvm.Media_error _ -> `Poisoned
    | stored -> if crc = stored then `Ok else `Mismatch)

let attach nvm cfg =
  let extent = cfg.Config.crc_extent in
  {
    nvm;
    base = Config.crcdir_base cfg;
    extent;
    n = cfg.Config.heap_size / extent;
  }

let format nvm cfg =
  let t = attach nvm cfg in
  (* A fresh heap is zero-filled, so every entry holds the CRC of one
     all-zero extent — compute it once. *)
  let zero = Checksum.crc32_bytes (Bytes.make t.extent '\000') in
  for i = 0 to t.n - 1 do
    set_slot t i zero
  done;
  Nvm.persist nvm ~off:t.base ~len:(t.n * 8);
  t

(** Cycle-accurate tracing and profiling for the simulated machine.

    A global, span-based tracer driven by the deterministic scheduler clock.
    Instrumentation sites throughout the stack (Perform, the Persist and
    Reproduce daemons, the NVM device, the log rings, recovery and scrub)
    emit {e spans} (begin/end pairs, per simulated thread), {e instants}
    (point events) and {e counters} into a bounded ring buffer, and feed
    per-phase duration histograms (log₂ buckets) plus per-thread NVM
    bandwidth accounting.

    Design constraints, in priority order:

    - {b Observation only.}  No function here ever advances the simulated
      clock or touches simulation state, so enabling tracing cannot change
      the behaviour of a run: statistics and the final persisted image are
      byte-identical with tracing on or off (a property the test suite
      pins).
    - {b Zero allocation when disabled.}  Every emitting primitive first
      checks a single flag and returns; with tracing off the instrumented
      hot paths allocate nothing and execute a handful of instructions.
      (The {!span} convenience wrapper is the one exception: its thunk is
      allocated by the caller regardless — use {!span_begin}/{!span_end}
      on hot paths.)
    - {b Bounded memory.}  Events land in a fixed-capacity ring; once it
      wraps, the oldest events are dropped (and counted), while histograms
      and NVM accounting keep exact totals for the whole run.

    The module is a process-wide singleton, matching the scheduler: the
    simulation is single-OS-thread by construction.  Timestamps and thread
    identity come from a time source the scheduler registers at load time
    ({!set_time_source}); outside a simulation both default to 0/"main". *)

(** {1 Lifecycle} *)

val enabled : unit -> bool
(** Cheap flag test; instrumentation sites guard any argument computation
    that allocates behind it. *)

val enable : ?capacity:int -> unit -> unit
(** Switch tracing on with a fresh, empty ring of [capacity] events
    (default 65536, clamped to at least 16).  Resets all histograms,
    accounting and violation counters. *)

val disable : unit -> unit
(** Switch tracing off.  Collected data stays readable until {!reset} or
    the next {!enable}. *)

val reset : unit -> unit
(** Drop all collected data (ring, histograms, accounting, violations),
    keeping the enabled/disabled state. *)

(** {1 Emitting} *)

val span_begin : cat:string -> string -> unit
(** [span_begin ~cat name] opens span [name] on the current thread.  Spans
    on one thread must nest: the matching {!span_end} must close the most
    recently opened span. *)

val span_end : cat:string -> string -> unit
(** [span_end ~cat name] closes the innermost open span of the current
    thread and records its duration in the [cat.name] histogram.  A close
    with no open span counts as an {e orphan}; a close whose [cat]/[name]
    differ from the innermost open span counts as {e mismatched} — both are
    reported by {!validate}. *)

val span : cat:string -> string -> (unit -> 'a) -> 'a
(** [span ~cat name f] wraps [f ()] in a span, closing it on any exit —
    including exceptions and the scheduler's daemon-kill unwind — so
    validation stays clean even when a daemon dies mid-work-unit.
    Allocates its thunk even when disabled; not for hot paths. *)

val instant : cat:string -> string -> int -> unit
(** [instant ~cat name arg] records a point event with one integer
    payload. *)

val counter : cat:string -> string -> int -> unit
(** [counter ~cat name v] records the current value of a counter (e.g.
    ring occupancy); {!counter_series} reads the retained time series
    back. *)

val sample : cat:string -> string -> int -> unit
(** [sample ~cat name cycles] records a duration into the [cat.name]
    histogram {e without} emitting a ring event: exact per-phase cycle
    attribution for events too hot to buffer individually (per-write log
    appends). *)

val nvm_transfer : dev:string -> bytes:int -> cycles:int -> unit
(** Attribute one NVM persist ordering ([bytes] flushed, [cycles] of
    channel occupancy) to the current thread {e and} to device [dev], and
    emit an instant under category ["nvm"].  Called by the device at every
    charge; the per-thread breakdown is the paper's "who pays for
    persistence" lens, the per-device one shows how sharding spreads the
    traffic across independent NVM channels.  [dev] is a plain (non-option)
    argument so the disabled-mode call stays allocation-free. *)

val link_transfer : link:string -> bytes:int -> cycles:int -> unit
(** Attribute one replication-interconnect frame delivery ([bytes] on the
    wire, [cycles] of channel occupancy) to link [link] and emit an instant
    under category ["link"].  Same hot-path discipline as {!nvm_transfer}:
    [link] is a plain argument, so the disabled-mode call allocates
    nothing. *)

(** {1 Scheduler integration} *)

val set_time_source : now:(unit -> int) -> self:(unit -> int * string) -> unit
(** Install the clock and thread-identity providers.  The scheduler
    registers itself at module-load time; both must be safe to call outside
    a simulation (returning 0 / [(0, "main")]). *)

val note_thread : tid:int -> string -> unit
(** Record a thread's name for export metadata (idempotent). *)

val instant_at : ts:int -> tid:int -> cat:string -> string -> int -> unit
(** Like {!instant} with an explicit timestamp and thread: for emitters
    (the scheduler itself) that hold the thread's clock but cannot perform
    effects on its fiber. *)

(** {1 Reading back} *)

type phase = {
  ph_cat : string;
  ph_name : string;
  ph_count : int;  (** spans/samples recorded *)
  ph_total : int;  (** exact total cycles *)
  ph_max : int;  (** exact maximum duration *)
  ph_p50 : int;  (** approximate, from log₂ buckets (bucket lower bound) *)
  ph_p99 : int;
}

val phases : unit -> phase list
(** Per-phase attribution, sorted by descending total cycles. *)

type nvm_acct = {
  nv_thread : string;
  nv_bytes : int;  (** bytes flushed by persist orderings this thread issued *)
  nv_cycles : int;  (** channel cycles charged to this thread *)
  nv_ops : int;  (** persist orderings issued *)
}

val nvm_accts : unit -> nvm_acct list
(** Per-thread NVM traffic, sorted by descending bytes.  Dividing
    [nv_cycles] by the run's wall cycles gives that daemon's channel
    utilization. *)

type nvm_dev_acct = {
  nd_dev : string;  (** device label (see {!Dudetm_nvm.Nvm.create}) *)
  nd_bytes : int;
  nd_cycles : int;
  nd_ops : int;
}

val nvm_dev_accts : unit -> nvm_dev_acct list
(** Per-device NVM traffic, sorted by descending bytes.  Each shard owns
    its own labeled device, so this is the per-shard channel-utilization
    breakdown. *)

type link_acct = {
  lk_link : string;  (** link label, e.g. ["ship:replica1"] *)
  lk_bytes : int;  (** wire bytes delivered (faulted frames included) *)
  lk_cycles : int;  (** serialized channel occupancy charged *)
  lk_frames : int;  (** frames sent on the link *)
}

val link_accts : unit -> link_acct list
(** Per-link replication traffic, sorted by descending bytes: how much of
    the interconnect each ship/ack direction consumed, including
    retransmissions. *)

val counter_series : cat:string -> string -> (int * int) list
(** [(ts, value)] pairs for one counter, oldest first, from the retained
    window of the ring. *)

val span_overlap : cat:string -> string -> string -> int
(** [span_overlap ~cat a b] — total cycles during which a retained
    [cat.a] span on one thread runs concurrently with a retained [cat.b]
    span on a {e different} thread.  Reconstructed from the ring's
    retained window (spans whose close fell off the ring are ignored).
    This is how the pipelined persist path proves genuine overlap: the
    combiner's [persist.combine] of batch [k+1] against the flusher's
    [persist.flush] of batch [k]. *)

val events : unit -> int
(** Ring events emitted since {!enable} (including dropped ones). *)

val dropped : unit -> int
(** Ring events lost to wrap-around. *)

(** {1 Self-validation} *)

val validate : unit -> string list
(** Check the collected trace's structural invariants: no orphan or
    mismatched span closes, per-thread cycle-monotone timestamps, and no
    span left open.  Returns human-readable violations ([[]] = clean). *)

val open_span_count : unit -> int
(** Spans currently open across all threads (0 after a balanced run). *)

(** {1 Export} *)

val to_chrome_json : ?cycles_per_us:float -> unit -> string
(** The retained event window as Chrome [trace_event] JSON (the
    ["traceEvents"] array format understood by [chrome://tracing] and
    Perfetto).  Timestamps are converted to microseconds at
    [cycles_per_us] (default 3400, the simulated 3.4 GHz core). *)

val summary_json : ?total_cycles:int -> unit -> string
(** Machine-readable profile summary: per-phase count/total/max/p50/p99,
    per-thread NVM bytes/cycles/ops (with channel utilization when
    [total_cycles], the run's wall-cycle count, is given), ring-occupancy
    series (category ["plog"], counter ["used"]), event/drop counts and
    validation status. *)

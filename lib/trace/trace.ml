(* See trace.mli for the contract.  The tracer is a process-wide singleton:
   the simulation is single-OS-thread, so no locking is needed, and the
   scheduler can register its clock once at load time.

   Hot-path discipline: every emitter starts with [if not st.on then ()].
   With tracing disabled that test is the entire cost — no closures, no
   [Some] boxes (all emitters take labelled, fixed-arity arguments), no
   string building.  With tracing enabled, ring events are written into
   preallocated records (mutated in place), so steady-state emission does
   not grow the heap either; only histogram/stack bookkeeping allocates. *)

type ev_kind = Ev_begin | Ev_end | Ev_instant | Ev_counter

type event = {
  mutable e_ts : int;
  mutable e_tid : int;
  mutable e_kind : ev_kind;
  mutable e_cat : string;
  mutable e_name : string;
  mutable e_arg : int;
}

type hist = {
  mutable h_count : int;
  mutable h_total : int;
  mutable h_max : int;
  h_buckets : int array;  (* 63 log₂ buckets; bucket i covers [2^i, 2^i+1) *)
}

type nvm_cell = {
  mutable c_bytes : int;
  mutable c_cycles : int;
  mutable c_ops : int;
}

type state = {
  mutable on : bool;
  mutable ring : event array;
  mutable cursor : int;  (* total events emitted; ring slot = cursor mod len *)
  mutable hists : (string, hist) Hashtbl.t;
  mutable stacks : (int, (string * string * int) list ref) Hashtbl.t;
  mutable last_ts : (int, int) Hashtbl.t;
  mutable names : (int, string) Hashtbl.t;
  mutable nvm : (int, nvm_cell) Hashtbl.t;
  mutable nvm_dev : (string, nvm_cell) Hashtbl.t;
  mutable links : (string, nvm_cell) Hashtbl.t;
  mutable orphans : int;
  mutable mismatched : int;
  mutable nonmono : int;
  mutable viol : string list;  (* first few violation details, newest first *)
}

let max_viol_details = 16
let default_capacity = 65536

let fresh_ring capacity =
  Array.init capacity (fun _ ->
      { e_ts = 0; e_tid = 0; e_kind = Ev_instant; e_cat = ""; e_name = ""; e_arg = 0 })

let st =
  {
    on = false;
    ring = [||];
    cursor = 0;
    hists = Hashtbl.create 1;
    stacks = Hashtbl.create 1;
    last_ts = Hashtbl.create 1;
    names = Hashtbl.create 1;
    nvm = Hashtbl.create 1;
    nvm_dev = Hashtbl.create 1;
    links = Hashtbl.create 1;
    orphans = 0;
    mismatched = 0;
    nonmono = 0;
    viol = [];
  }

let clear ~capacity =
  st.ring <- fresh_ring capacity;
  st.cursor <- 0;
  st.hists <- Hashtbl.create 64;
  st.stacks <- Hashtbl.create 16;
  st.last_ts <- Hashtbl.create 16;
  st.names <- Hashtbl.create 16;
  st.nvm <- Hashtbl.create 16;
  st.nvm_dev <- Hashtbl.create 16;
  st.links <- Hashtbl.create 16;
  st.orphans <- 0;
  st.mismatched <- 0;
  st.nonmono <- 0;
  st.viol <- []

let enabled () = st.on

let enable ?(capacity = default_capacity) () =
  clear ~capacity:(max 16 capacity);
  st.on <- true

let disable () = st.on <- false

let reset () =
  let capacity = if Array.length st.ring = 0 then default_capacity else Array.length st.ring in
  clear ~capacity

(* Time source, registered by the scheduler at load time. *)

let now_fn = ref (fun () -> 0)
let self_fn = ref (fun () -> (0, "main"))

let set_time_source ~now ~self =
  now_fn := now;
  self_fn := self

let note_violation msg =
  if List.length st.viol < max_viol_details then st.viol <- msg :: st.viol

(* Core emitter: monotonicity check + ring write into a recycled record. *)
let emit ~ts ~tid ~kind ~cat ~name ~arg =
  (match Hashtbl.find_opt st.last_ts tid with
  | Some prev when ts < prev ->
    st.nonmono <- st.nonmono + 1;
    note_violation
      (Printf.sprintf "non-monotone timestamp on tid %d: %s.%s at %d after %d" tid cat
         name ts prev)
  | _ -> ());
  Hashtbl.replace st.last_ts tid ts;
  let e = st.ring.(st.cursor mod Array.length st.ring) in
  e.e_ts <- ts;
  e.e_tid <- tid;
  e.e_kind <- kind;
  e.e_cat <- cat;
  e.e_name <- name;
  e.e_arg <- arg;
  st.cursor <- st.cursor + 1

let note_thread ~tid name =
  if st.on && not (Hashtbl.mem st.names tid) then Hashtbl.add st.names tid name

let self_noted () =
  let tid, tname = !self_fn () in
  note_thread ~tid tname;
  tid

let hist_for key =
  match Hashtbl.find_opt st.hists key with
  | Some h -> h
  | None ->
    let h = { h_count = 0; h_total = 0; h_max = 0; h_buckets = Array.make 63 0 } in
    Hashtbl.add st.hists key h;
    h

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr b
    done;
    min !b 62
  end

let record_sample key cycles =
  let h = hist_for key in
  h.h_count <- h.h_count + 1;
  h.h_total <- h.h_total + cycles;
  if cycles > h.h_max then h.h_max <- cycles;
  let b = h.h_buckets in
  let i = bucket_of cycles in
  b.(i) <- b.(i) + 1

let stack_for tid =
  match Hashtbl.find_opt st.stacks tid with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add st.stacks tid s;
    s

let span_begin ~cat name =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    let stack = stack_for tid in
    stack := (cat, name, ts) :: !stack;
    emit ~ts ~tid ~kind:Ev_begin ~cat ~name ~arg:0
  end

let span_end ~cat name =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    let stack = stack_for tid in
    (match !stack with
    | [] ->
      st.orphans <- st.orphans + 1;
      note_violation
        (Printf.sprintf "orphan span end %s.%s on tid %d at %d" cat name tid ts)
    | (c0, n0, ts0) :: rest ->
      if c0 <> cat || n0 <> name then begin
        st.mismatched <- st.mismatched + 1;
        note_violation
          (Printf.sprintf "mismatched span end on tid %d: closed %s.%s, open %s.%s" tid
             cat name c0 n0)
      end;
      stack := rest;
      record_sample (cat ^ "." ^ name) (max 0 (ts - ts0)));
    emit ~ts ~tid ~kind:Ev_end ~cat ~name ~arg:0
  end

let span ~cat name f =
  if not st.on then f ()
  else begin
    span_begin ~cat name;
    Fun.protect ~finally:(fun () -> span_end ~cat name) f
  end

let instant ~cat name arg =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    emit ~ts ~tid ~kind:Ev_instant ~cat ~name ~arg
  end

let instant_at ~ts ~tid ~cat name arg =
  if st.on then emit ~ts ~tid ~kind:Ev_instant ~cat ~name ~arg

let counter ~cat name v =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    emit ~ts ~tid ~kind:Ev_counter ~cat ~name ~arg:v
  end

let sample ~cat name cycles =
  if st.on then record_sample (cat ^ "." ^ name) cycles

let nvm_transfer ~dev ~bytes ~cycles =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    let cell =
      match Hashtbl.find_opt st.nvm tid with
      | Some c -> c
      | None ->
        let c = { c_bytes = 0; c_cycles = 0; c_ops = 0 } in
        Hashtbl.add st.nvm tid c;
        c
    in
    cell.c_bytes <- cell.c_bytes + bytes;
    cell.c_cycles <- cell.c_cycles + cycles;
    cell.c_ops <- cell.c_ops + 1;
    let dcell =
      match Hashtbl.find_opt st.nvm_dev dev with
      | Some c -> c
      | None ->
        let c = { c_bytes = 0; c_cycles = 0; c_ops = 0 } in
        Hashtbl.add st.nvm_dev dev c;
        c
    in
    dcell.c_bytes <- dcell.c_bytes + bytes;
    dcell.c_cycles <- dcell.c_cycles + cycles;
    dcell.c_ops <- dcell.c_ops + 1;
    emit ~ts ~tid ~kind:Ev_instant ~cat:"nvm" ~name:"persist" ~arg:bytes
  end

(* Per-link byte accounting for the replication interconnect.  Same
   discipline as the per-device NVM table: [link] is a plain string
   argument so a disabled-mode call site allocates nothing. *)
let link_transfer ~link ~bytes ~cycles =
  if st.on then begin
    let ts = !now_fn () in
    let tid = self_noted () in
    let cell =
      match Hashtbl.find_opt st.links link with
      | Some c -> c
      | None ->
        let c = { c_bytes = 0; c_cycles = 0; c_ops = 0 } in
        Hashtbl.add st.links link c;
        c
    in
    cell.c_bytes <- cell.c_bytes + bytes;
    cell.c_cycles <- cell.c_cycles + cycles;
    cell.c_ops <- cell.c_ops + 1;
    emit ~ts ~tid ~kind:Ev_instant ~cat:"link" ~name:"frame" ~arg:bytes
  end

(* ------------------------------------------------------------------ *)
(* Reading back                                                        *)

type phase = {
  ph_cat : string;
  ph_name : string;
  ph_count : int;
  ph_total : int;
  ph_max : int;
  ph_p50 : int;
  ph_p99 : int;
}

let percentile h q =
  (* Lower bound of the log₂ bucket containing the q-th sample. *)
  if h.h_count = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
    let acc = ref 0 and res = ref 0 in
    (try
       for i = 0 to 62 do
         acc := !acc + h.h_buckets.(i);
         if !acc >= target then begin
           res := (if i = 0 then 0 else 1 lsl i);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let split_key key =
  match String.index_opt key '.' with
  | Some i -> (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | None -> ("", key)

let phases () =
  Hashtbl.fold
    (fun key h acc ->
      let cat, name = split_key key in
      {
        ph_cat = cat;
        ph_name = name;
        ph_count = h.h_count;
        ph_total = h.h_total;
        ph_max = h.h_max;
        ph_p50 = percentile h 0.50;
        ph_p99 = percentile h 0.99;
      }
      :: acc)
    st.hists []
  |> List.sort (fun a b -> compare (b.ph_total, a.ph_cat, a.ph_name) (a.ph_total, b.ph_cat, b.ph_name))

type nvm_acct = {
  nv_thread : string;
  nv_bytes : int;
  nv_cycles : int;
  nv_ops : int;
}

let thread_name tid =
  match Hashtbl.find_opt st.names tid with
  | Some n -> n
  | None -> "tid" ^ string_of_int tid

let nvm_accts () =
  Hashtbl.fold
    (fun tid c acc ->
      { nv_thread = thread_name tid; nv_bytes = c.c_bytes; nv_cycles = c.c_cycles;
        nv_ops = c.c_ops }
      :: acc)
    st.nvm []
  |> List.sort (fun a b -> compare (b.nv_bytes, a.nv_thread) (a.nv_bytes, b.nv_thread))

type nvm_dev_acct = {
  nd_dev : string;
  nd_bytes : int;
  nd_cycles : int;
  nd_ops : int;
}

let nvm_dev_accts () =
  Hashtbl.fold
    (fun dev c acc ->
      { nd_dev = dev; nd_bytes = c.c_bytes; nd_cycles = c.c_cycles; nd_ops = c.c_ops } :: acc)
    st.nvm_dev []
  |> List.sort (fun a b -> compare (b.nd_bytes, a.nd_dev) (a.nd_bytes, b.nd_dev))

type link_acct = {
  lk_link : string;
  lk_bytes : int;
  lk_cycles : int;
  lk_frames : int;
}

let link_accts () =
  Hashtbl.fold
    (fun link c acc ->
      { lk_link = link; lk_bytes = c.c_bytes; lk_cycles = c.c_cycles; lk_frames = c.c_ops }
      :: acc)
    st.links []
  |> List.sort (fun a b -> compare (b.lk_bytes, a.lk_link) (a.lk_bytes, b.lk_link))

let retained_iter f =
  let len = Array.length st.ring in
  if len > 0 then begin
    let start = max 0 (st.cursor - len) in
    for k = start to st.cursor - 1 do
      f st.ring.(k mod len)
    done
  end

let counter_series ~cat name =
  let acc = ref [] in
  retained_iter (fun e ->
      if e.e_kind = Ev_counter && e.e_cat = cat && e.e_name = name then
        acc := (e.e_ts, e.e_arg) :: !acc);
  List.rev !acc

(* Closed [start, end) intervals reconstructed from the retained ring for
   one span key, per emitting thread.  Begins whose end fell off the ring
   (or is still open) are dropped. *)
let retained_intervals ~cat name =
  let open_ts : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let acc = ref [] in
  retained_iter (fun e ->
      if e.e_cat = cat && e.e_name = name then
        match e.e_kind with
        | Ev_begin ->
          let s =
            match Hashtbl.find_opt open_ts e.e_tid with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.add open_ts e.e_tid s;
              s
          in
          s := e.e_ts :: !s
        | Ev_end -> (
          match Hashtbl.find_opt open_ts e.e_tid with
          | Some ({ contents = ts0 :: rest } as s) ->
            s := rest;
            acc := (e.e_tid, ts0, e.e_ts) :: !acc
          | _ -> ())
        | Ev_instant | Ev_counter -> ());
  !acc

let span_overlap ~cat a b =
  let ia = retained_intervals ~cat a and ib = retained_intervals ~cat b in
  List.fold_left
    (fun acc (ta, sa, ea) ->
      List.fold_left
        (fun acc (tb, sb, eb) ->
          if ta = tb then acc else acc + max 0 (min ea eb - max sa sb))
        acc ib)
    0 ia

let events () = st.cursor
let dropped () = max 0 (st.cursor - Array.length st.ring)

let open_span_count () =
  Hashtbl.fold (fun _ s acc -> acc + List.length !s) st.stacks 0

let validate () =
  let out = ref [] in
  let addf fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if st.orphans > 0 then addf "%d orphan span end(s)" st.orphans;
  if st.mismatched > 0 then addf "%d mismatched span end(s)" st.mismatched;
  if st.nonmono > 0 then addf "%d non-monotone timestamp(s)" st.nonmono;
  Hashtbl.iter
    (fun tid s ->
      List.iter
        (fun (cat, name, ts) ->
          addf "span %s.%s opened at %d on %s never closed" cat name ts
            (thread_name tid))
        !s)
    st.stacks;
  List.rev_append st.viol (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* 3.4 GHz simulated core: cycles per microsecond. *)
let default_cycles_per_us = 3400.

let to_chrome_json ?(cycles_per_us = default_cycles_per_us) () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '\n'
  in
  Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) st.names []
  |> List.sort compare
  |> List.iter (fun (tid, name) ->
         sep ();
         Buffer.add_string b
           (Printf.sprintf
              "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
              tid (json_escape name)));
  retained_iter (fun e ->
      sep ();
      let ts = float_of_int e.e_ts /. cycles_per_us in
      match e.e_kind with
      | Ev_begin ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"cat\":\"%s\",\"name\":\"%s\"}"
             e.e_tid ts (json_escape e.e_cat) (json_escape e.e_name))
      | Ev_end ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"cat\":\"%s\",\"name\":\"%s\"}"
             e.e_tid ts (json_escape e.e_cat) (json_escape e.e_name))
      | Ev_instant ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"cat\":\"%s\",\"name\":\"%s\",\"args\":{\"arg\":%d}}"
             e.e_tid ts (json_escape e.e_cat) (json_escape e.e_name) e.e_arg)
      | Ev_counter ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"cat\":\"%s\",\"name\":\"%s\",\"args\":{\"value\":%d}}"
             e.e_tid ts (json_escape e.e_cat) (json_escape e.e_name) e.e_arg));
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let summary_json ?total_cycles () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"phases\": [";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  List.iter
    (fun p ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"cat\":\"%s\",\"name\":\"%s\",\"count\":%d,\"total_cycles\":%d,\"max_cycles\":%d,\"p50_cycles\":%d,\"p99_cycles\":%d}"
           (json_escape p.ph_cat) (json_escape p.ph_name) p.ph_count p.ph_total p.ph_max
           p.ph_p50 p.ph_p99))
    (phases ());
  Buffer.add_string b "\n  ],\n  \"nvm\": [";
  first := true;
  List.iter
    (fun a ->
      sep ();
      let util =
        match total_cycles with
        | Some t when t > 0 -> Printf.sprintf ",\"utilization\":%.4f" (float_of_int a.nv_cycles /. float_of_int t)
        | _ -> ""
      in
      Buffer.add_string b
        (Printf.sprintf "\n    {\"thread\":\"%s\",\"bytes\":%d,\"cycles\":%d,\"ops\":%d%s}"
           (json_escape a.nv_thread) a.nv_bytes a.nv_cycles a.nv_ops util))
    (nvm_accts ());
  Buffer.add_string b "\n  ],\n  \"nvm_devices\": [";
  first := true;
  List.iter
    (fun a ->
      sep ();
      let util =
        match total_cycles with
        | Some t when t > 0 ->
          Printf.sprintf ",\"utilization\":%.4f" (float_of_int a.nd_cycles /. float_of_int t)
        | _ -> ""
      in
      Buffer.add_string b
        (Printf.sprintf "\n    {\"dev\":\"%s\",\"bytes\":%d,\"cycles\":%d,\"ops\":%d%s}"
           (json_escape a.nd_dev) a.nd_bytes a.nd_cycles a.nd_ops util))
    (nvm_dev_accts ());
  Buffer.add_string b "\n  ],\n  \"links\": [";
  first := true;
  List.iter
    (fun a ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf "\n    {\"link\":\"%s\",\"bytes\":%d,\"cycles\":%d,\"frames\":%d}"
           (json_escape a.lk_link) a.lk_bytes a.lk_cycles a.lk_frames))
    (link_accts ());
  Buffer.add_string b "\n  ],\n  \"ring_occupancy\": [";
  first := true;
  List.iter
    (fun (ts, v) ->
      sep ();
      Buffer.add_string b (Printf.sprintf "[%d,%d]" ts v))
    (counter_series ~cat:"plog" "used");
  Buffer.add_string b "],\n";
  (match total_cycles with
  | Some t -> Buffer.add_string b (Printf.sprintf "  \"total_cycles\": %d,\n" t)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  \"events\": %d,\n  \"dropped\": %d,\n" (events ()) (dropped ()));
  Buffer.add_string b "  \"violations\": [";
  first := true;
  List.iter
    (fun v ->
      sep ();
      Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape v)))
    (validate ());
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

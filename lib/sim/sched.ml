exception Deadlock of string
exception Killed

module Trace = Dudetm_trace.Trace

type _ Effect.t +=
  | Advance : int -> unit Effect.t
  | Wait : (unit -> bool) * string -> unit Effect.t
  | Spawn : bool * string * (unit -> unit) -> int Effect.t
  | Now : int Effect.t
  | Self : (int * string) Effect.t

type state =
  | Not_started of (unit -> unit)
  | Running
  | Paused of (unit, unit) Effect.Deep.continuation
  | Waiting of { pred : unit -> bool; label : string; k : (unit, unit) Effect.Deep.continuation }
  | Finished

type thread = {
  id : int;
  name : string;
  daemon : bool;
  mutable clock : int;
  mutable state : state;
}

type strategy =
  | Min_clock
  | Choice of (step:int -> candidates:int -> int)

type sched = {
  mutable threads : thread list;  (* in spawn order; ids are positions *)
  mutable rev_new : thread list;  (* threads spawned since last loop pass *)
  mutable next_id : int;
  mutable live_non_daemon : int;
  mutable watermark : int;
  mutable steps : int;  (* decision points (>= 2 runnable) so far *)
  strategy : strategy;
  trace : bool;
}

(* The simulation is single-OS-thread by construction, so one global current
   scheduler is safe and keeps the public API free of a [t] parameter. *)
let current : sched option ref = ref None

(* [finish] runs on the scheduler's own stack (retc/exnc/kill_daemons), where
   the Now/Self effects are unhandled — trace events here must carry the
   thread's clock and id explicitly. *)
let finish s t =
  if t.state <> Finished then begin
    t.state <- Finished;
    Trace.instant_at ~ts:t.clock ~tid:t.id ~cat:"sched" "finish" 0;
    if not t.daemon then s.live_non_daemon <- s.live_non_daemon - 1
  end

let handler s t =
  let open Effect.Deep in
  {
    retc = (fun () -> finish s t);
    exnc =
      (fun e ->
        match e with
        | Killed -> finish s t
        | e ->
          (* A crash of any simulated thread is a bug in the experiment:
             surface it instead of silently finishing. *)
          finish s t;
          raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Advance n ->
          Some
            (fun (k : (a, unit) continuation) ->
              t.clock <- t.clock + max 0 n;
              t.state <- Paused k)
        | Wait (pred, label) ->
          Some
            (fun k ->
              if pred () then continue k ()
              else t.state <- Waiting { pred; label; k })
        | Spawn (daemon, name, f) ->
          Some
            (fun k ->
              let id = s.next_id in
              s.next_id <- id + 1;
              let nt = { id; name; daemon; clock = t.clock; state = Not_started f } in
              Trace.note_thread ~tid:id name;
              Trace.instant_at ~ts:t.clock ~tid:t.id ~cat:"sched" "spawn" id;
              s.rev_new <- nt :: s.rev_new;
              if not daemon then s.live_non_daemon <- s.live_non_daemon + 1;
              continue k id)
        | Now -> Some (fun k -> continue k t.clock)
        | Self -> Some (fun k -> continue k (t.id, t.name))
        | _ -> None);
  }

let absorb_new s =
  if s.rev_new <> [] then begin
    s.threads <- s.threads @ List.rev s.rev_new;
    s.rev_new <- []
  end

(* A blocked thread whose predicate is still false has its clock dragged up
   to the winning clock, modelling time passing while it polls. *)
let drag_waiters s w =
  List.iter
    (fun t ->
      match t.state with
      | Waiting { pred; _ } when not (pred ()) ->
        if t.clock < w.clock then t.clock <- w.clock
      | _ -> ())
    s.threads

let runnable t =
  match t.state with
  | Not_started _ | Paused _ -> true
  | Waiting { pred; _ } -> pred ()
  | Running | Finished -> false

(* Pick the next thread to resume.  Min_clock takes the runnable thread with
   the smallest (clock, id) — conservative discrete-event order.  A Choice
   strategy is consulted at every decision point (>= 2 runnable threads)
   with the candidates sorted in that same order, so index 0 degenerates to
   Min_clock and any other index is a legal preemption. *)
let pick s =
  let best =
    match s.strategy with
    | Min_clock ->
      let best = ref None in
      List.iter
        (fun t ->
          if runnable t then
            match !best with
            | None -> best := Some t
            | Some b -> if t.clock < b.clock then best := Some t)
        s.threads;
      !best
    | Choice choose -> (
      match List.filter runnable s.threads with
      | [] -> None
      | [ t ] -> Some t
      | cands ->
        let sorted =
          List.sort (fun a b -> compare (a.clock, a.id) (b.clock, b.id)) cands
        in
        let n = List.length sorted in
        let step = s.steps in
        s.steps <- step + 1;
        let i = choose ~step ~candidates:n in
        let i = if i < 0 || i >= n then 0 else i in
        Some (List.nth sorted i))
  in
  (match best with Some w -> drag_waiters s w | None -> ());
  best

let resume s t =
  if t.clock > s.watermark then s.watermark <- t.clock;
  if s.trace then
    Printf.eprintf "[sched %10d] resume %d:%s\n%!" t.clock t.id t.name;
  match t.state with
  | Not_started f ->
    t.state <- Running;
    Effect.Deep.match_with f () (handler s t)
  | Paused k ->
    t.state <- Running;
    Effect.Deep.continue k ()
  | Waiting { k; _ } ->
    t.state <- Running;
    Effect.Deep.continue k ()
  | Running | Finished -> assert false

let blocked_report s =
  s.threads
  |> List.filter_map (fun t ->
         match t.state with
         | Waiting { label; _ } ->
           Some (Printf.sprintf "%d:%s waiting on %s" t.id t.name label)
         | _ -> None)
  |> String.concat "; "

let kill_daemons s =
  List.iter
    (fun t ->
      match t.state with
      | Not_started _ -> finish s t
      | Paused k | Waiting { k; _ } ->
        t.state <- Running;
        (try Effect.Deep.discontinue k Killed with Killed -> ());
        finish s t
      | Running | Finished -> ())
    s.threads

let min_clock = Min_clock

(* Stateless seeded choice: hashing (seed, step) through splitmix64 keeps
   the strategy value reusable across runs with identical schedules. *)
let random_priority ~seed =
  Choice
    (fun ~step ~candidates ->
      let rng = Rng.create ((seed * 0x3C6EF372) lxor (step * 0x9E3779B9) lxor seed) in
      Rng.int rng candidates)

let run ?(trace = false) ?(strategy = Min_clock) main =
  if !current <> None then invalid_arg "Sched.run: nested simulations are not supported";
  let s =
    {
      threads = [];
      rev_new = [];
      next_id = 1;
      live_non_daemon = 1;
      watermark = 0;
      steps = 0;
      strategy;
      trace;
    }
  in
  let t0 = { id = 0; name = "main"; daemon = false; clock = 0; state = Not_started main } in
  s.threads <- [ t0 ];
  current := Some s;
  let release () = current := None in
  (try
     let rec loop () =
       absorb_new s;
       if s.live_non_daemon > 0 then
         match pick s with
         | Some t ->
           resume s t;
           loop ()
         | None -> raise (Deadlock (blocked_report s))
     in
     loop ();
     absorb_new s;
     kill_daemons s
   with e ->
     release ();
     raise e);
  release ();
  s.watermark

let perform_default : 'a. 'a Effect.t -> 'a -> 'a =
 fun eff default -> try Effect.perform eff with Effect.Unhandled _ -> default

let advance n = perform_default (Advance n) ()

let yield () = advance 1

let wait_until ?(label = "?") pred =
  try Effect.perform (Wait (pred, label))
  with Effect.Unhandled _ ->
    if not (pred ()) then
      raise (Deadlock (Printf.sprintf "wait_until %S outside a simulation" label))

let now () = perform_default Now 0

let self () = fst (perform_default Self (0, "<main>"))

let self_name () = snd (perform_default Self (0, "<main>"))

let spawn ?(daemon = false) name f =
  try Effect.perform (Spawn (daemon, name, f))
  with Effect.Unhandled _ -> invalid_arg "Sched.spawn outside a simulation"

let global_now () = match !current with None -> 0 | Some s -> s.watermark

let running () = !current <> None

(* Hand the tracer our deterministic clock and thread identity.  Both fall
   back to 0/"main" outside a simulation, so tracing recovery paths that run
   before [Sched.run] stays safe (their spans just have zero duration). *)
let () =
  Trace.set_time_source
    ~now:(fun () -> now ())
    ~self:(fun () -> perform_default Self (0, "main"))

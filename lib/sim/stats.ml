type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let add t name n = cell t name := !(cell t name) + n

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.reset t

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Latency = struct
  type r = { mutable samples : int array; mutable len : int; mutable sorted : bool }

  let create () = { samples = Array.make 1024 0; len = 0; sorted = false }

  let record r v =
    if r.len = Array.length r.samples then begin
      let bigger = Array.make (2 * r.len) 0 in
      Array.blit r.samples 0 bigger 0 r.len;
      r.samples <- bigger
    end;
    r.samples.(r.len) <- v;
    r.len <- r.len + 1;
    r.sorted <- false

  let count r = r.len

  let ensure_sorted r =
    if not r.sorted then begin
      let live = Array.sub r.samples 0 r.len in
      Array.sort compare live;
      Array.blit live 0 r.samples 0 r.len;
      r.sorted <- true
    end

  let percentile r p =
    if r.len = 0 then 0
    else begin
      ensure_sorted r;
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int r.len)) - 1 in
      r.samples.(max 0 (min (r.len - 1) idx))
    end

  let mean r =
    if r.len = 0 then 0.0
    else begin
      let sum = ref 0 in
      for i = 0 to r.len - 1 do
        sum := !sum + r.samples.(i)
      done;
      float_of_int !sum /. float_of_int r.len
    end

  let log2_bucket v =
    if v <= 1 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 1 do
        b := !b + 1;
        v := !v lsr 1
      done;
      !b
    end

  let log2_histogram r =
    let counts = Array.make 63 0 in
    for i = 0 to r.len - 1 do
      let b = log2_bucket r.samples.(i) in
      counts.(b) <- counts.(b) + 1
    done;
    let out = ref [] in
    for b = 62 downto 0 do
      if counts.(b) > 0 then out := (b, counts.(b)) :: !out
    done;
    !out

  let reset r =
    r.len <- 0;
    r.sorted <- false
end

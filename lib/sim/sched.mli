(** Deterministic cooperative scheduler for simulated threads.

    The simulator models the paper's multicore testbed with logical threads
    driven by OCaml 5 effect handlers.  Each thread owns a local cycle clock;
    the scheduler always resumes the runnable thread with the smallest clock
    (conservative discrete-event order), so a whole experiment — including
    races between Perform, Persist and Reproduce threads — replays
    deterministically.

    Threads communicate through shared mutable state and synchronise with
    {!wait_until}.  A thread is charged simulated time explicitly via
    {!advance}; while blocked, its clock tracks global simulated time so
    waiting is charged as busy-polling, which is how the paper's
    implementation waits too. *)

exception Deadlock of string
(** Raised when no thread can make progress: every live non-daemon thread is
    blocked on a false predicate.  The payload lists the blocked threads. *)

(** {1 Scheduling strategies}

    Every scheduling point where more than one thread is runnable is a
    {e decision point}.  The default strategy resolves it conservatively
    (smallest local clock wins — discrete-event order); the systematic
    checker ([lib/check]) plugs in alternatives to explore other legal
    interleavings while keeping every run perfectly reproducible. *)

type strategy =
  | Min_clock
      (** Resume the runnable thread with the smallest [(clock, id)] — the
          conservative discrete-event order used by all benchmarks. *)
  | Choice of (step:int -> candidates:int -> int)
      (** At decision point number [step] (counted from 0, only points with
          [candidates >= 2] runnable threads count), pick the candidate at
          the returned index in [(clock, id)] order.  Index 0 reproduces
          {!Min_clock} at that point; out-of-range indices clamp to 0.  The
          function must be deterministic in [(step, candidates)] for runs to
          be replayable. *)

val min_clock : strategy

val random_priority : seed:int -> strategy
(** Seeded random preemption: each decision point independently picks a
    uniformly random runnable thread.  Stateless (the choice is a hash of
    [(seed, step)]), so the same seed always yields the same schedule and
    the strategy value can be reused across runs. *)

val run : ?trace:bool -> ?strategy:strategy -> (unit -> unit) -> int
(** [run main] executes [main] as the first logical thread, scheduling it and
    everything it {!spawn}s until all non-daemon threads finish; remaining
    daemon threads are then cancelled.  Returns the final simulated time in
    cycles.  Must not be nested.  [strategy] (default {!Min_clock}) resolves
    scheduling decision points. *)

val spawn : ?daemon:bool -> string -> (unit -> unit) -> int
(** [spawn name f] creates a new logical thread starting at the caller's
    current clock and returns its id.  Daemon threads ([daemon] defaults to
    [false]) do not keep the simulation alive: once only daemons remain they
    are cancelled by raising {!Killed} inside them.  Only valid inside
    {!run}. *)

exception Killed
(** Raised inside a daemon thread when the simulation shuts down.  Daemon
    loops may catch it to run cleanup; it is absorbed by the scheduler. *)

val advance : int -> unit
(** [advance n] charges the calling thread [n] cycles and yields to the
    scheduler.  Outside {!run} it is a no-op, so cost-annotated library code
    can also be exercised by plain unit tests. *)

val yield : unit -> unit
(** [yield ()] is [advance 1]: the minimal preemption point. *)

val wait_until : ?label:string -> (unit -> bool) -> unit
(** [wait_until p] blocks the calling thread until [p ()] is true.  [p] must
    be a pure read of shared state.  While blocked, the thread's clock
    follows simulated time.  Outside {!run}, returns immediately if [p ()]
    holds and raises {!Deadlock} otherwise. *)

val now : unit -> int
(** Current local clock of the calling thread (0 outside {!run}). *)

val self : unit -> int
(** Id of the calling thread (0 outside {!run}). *)

val self_name : unit -> string
(** Name of the calling thread (["<main>"] outside {!run}). *)

val global_now : unit -> int
(** High-water mark of simulated time across all threads so far. *)

val running : unit -> bool
(** Whether the caller executes inside an active simulation. *)

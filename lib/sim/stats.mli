(** Named integer counters and latency recorders for experiments. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for counters never touched. *)

val reset : t -> unit

val to_list : t -> (string * int) list
(** Counters sorted by name. *)

(** Latency sample recorder with percentile queries. *)
module Latency : sig
  type r

  val create : unit -> r

  val record : r -> int -> unit
  (** Record one latency sample, in cycles. *)

  val count : r -> int

  val percentile : r -> float -> int
  (** [percentile r p] with [p] in [\[0,100\]]; 0 when empty. *)

  val mean : r -> float

  val log2_bucket : int -> int
  (** Bucket index for one sample: 0 for values [<= 1], else
      [floor (log2 v)]. *)

  val log2_histogram : r -> (int * int) list
  (** Sparse log2 histogram of the recorded samples: [(bucket, count)]
      pairs in increasing bucket order, where bucket [b] covers
      [\[2^b, 2^(b+1))] cycles.  Empty buckets are omitted. *)

  val reset : r -> unit
end

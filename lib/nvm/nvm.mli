(** Simulated persistent-memory device.

    The device keeps two images: [latest], what CPU loads observe (including
    stores still sitting in the volatile cache hierarchy), and [persisted],
    what survives a crash.  A {!store_u64} only updates [latest] and marks
    the covering cache line dirty; data reaches [persisted] exclusively via
    {!persist}, which models [CLWB]+[SFENCE] over a byte range and charges
    the paper's [max(latency, bytes/bandwidth)] cost against a serialized
    bandwidth channel.

    {!crash} drops the volatile side.  To model the CPU's {e uncontrolled}
    cache evictions — the hazard DudeTM's design sidesteps by never storing
    dirty data to NVM addresses directly — a crash can also leak a random
    subset of dirty lines into the persisted image. *)

type t

val create : ?charge_time:bool -> Pmem_config.t -> size:int -> t
(** [create cfg ~size] makes a device of [size] bytes, zero-filled and fully
    persistent.  [charge_time] (default true) controls whether persists
    advance the simulated clock. *)

val size : t -> int

val config : t -> Pmem_config.t

(** {1 Volatile-side access (CPU loads/stores)} *)

val load_u64 : t -> int -> int64

val store_u64 : t -> int -> int64 -> unit

val load_u8 : t -> int -> int

val store_u8 : t -> int -> int -> unit

val load_bytes : t -> int -> int -> bytes

val store_bytes : t -> int -> bytes -> unit

(** {1 Persistence} *)

val persist : t -> off:int -> len:int -> unit
(** Flush every dirty line intersecting [\[off, off+len)] to the persisted
    image and drain the store queue.  Charges
    [max(persist_latency, dirty_bytes / bandwidth)] cycles, with the
    bandwidth component serialized across all users of the device. *)

val persist_all : t -> unit

val persist_ranges : t -> (int * int) list -> unit
(** [persist_ranges t ranges] flushes every dirty line covered by any of the
    [(off, len)] ranges under a {e single} persist ordering: one latency,
    one bandwidth booking for the total flushed bytes.  Used by Reproduce
    to persist a whole batch of reproduced writes at once. *)

val dirty_lines : t -> int
(** Number of lines currently dirty (not yet persisted). *)

val set_persist_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a callback fired at every persist boundary: once when
    a persist ordering is issued ({!persist}, {!persist_ranges}) and once
    after each dirty line is copied into the persisted image.  The
    systematic crash checker ([lib/check]) counts these firings and raises
    from the hook to cut power at an exact persist/fence/line boundary —
    crashing between two firings leaves exactly the lines flushed so far
    durable, i.e. a torn persist.  The hook does not fire during {!crash}
    eviction or while no hook is installed. *)

(** {1 Crash and recovery} *)

val crash : ?evict_fraction:float -> ?rng:Dudetm_sim.Rng.t -> t -> unit
(** Simulate a power failure: each dirty line independently survives with
    probability [evict_fraction] (default 0 — none survive, the adversarial
    tests sweep this), then all volatile state is discarded and [latest] is
    reloaded from the persisted image. *)

val persisted_u64 : t -> int -> int64
(** Read the persisted image directly (for tests and recovery checks). *)

val persisted_bytes_equal : t -> int -> bytes -> bool
(** [persisted_bytes_equal t off b] checks the persisted image against [b]. *)

(** {1 Accounting} *)

val persisted_write_bytes : t -> int
(** Total bytes ever flushed to the persisted image (the paper's "NVM write
    traffic"). *)

val persist_ops : t -> int
(** Number of persist orderings issued. *)

val reset_counters : t -> unit

(** Simulated persistent-memory device.

    The device keeps two images: [latest], what CPU loads observe (including
    stores still sitting in the volatile cache hierarchy), and [persisted],
    what survives a crash.  A {!store_u64} only updates [latest] and marks
    the covering cache line dirty; data reaches [persisted] exclusively via
    {!persist}, which models [CLWB]+[SFENCE] over a byte range and charges
    the paper's [max(latency, bytes/bandwidth)] cost against a serialized
    bandwidth channel.

    {!crash} drops the volatile side.  To model the CPU's {e uncontrolled}
    cache evictions — the hazard DudeTM's design sidesteps by never storing
    dirty data to NVM addresses directly — a crash can also leak a random
    subset of dirty lines into the persisted image.

    Beyond clean power cuts, the device also models {e media faults}
    ({!inject_fault}): silent bit rot in the persisted image, stuck-at
    lines that ignore writes, and poisoned (uncorrectable) lines whose
    reads raise {!Media_error} — plus an optional seeded background-decay
    process.  Media faults survive crashes; they are properties of the
    device, not of the cache. *)

type t

exception Media_error of int
(** Raised when a read reaches a poisoned (uncorrectable) region of the
    media; the payload is the byte address of the poisoned line's base.
    Models the machine-check a real platform raises on an uncorrectable
    NVM read. *)

(** A media fault applied to the {e persisted} image. *)
type fault =
  | Bit_rot of { off : int; bit : int }
      (** Silently flip bit [bit land 7] of persisted byte [off]. *)
  | Stuck_line of { line : int }
      (** The line keeps its current persisted content forever: subsequent
          flushes are silently dropped (and the cached copy reverts on
          flush, as a real read-after-writeback would observe). *)
  | Poison of { line : int }
      (** Reads of the line raise {!Media_error} until it is repaired by
          rewriting: flushing fresh data over a poisoned line clears the
          poison. *)

val create : ?charge_time:bool -> ?label:string -> Pmem_config.t -> size:int -> t
(** [create cfg ~size] makes a device of [size] bytes, zero-filled and fully
    persistent.  [charge_time] (default true) controls whether persists
    advance the simulated clock.  [label] (default ["nvm"]) names the
    device in trace per-device accounting; the sharding layer labels each
    region's device ["shard<i>"]. *)

val size : t -> int

val label : t -> string
(** The trace device label given at {!create}. *)

val config : t -> Pmem_config.t

val line_size : t -> int

(** {1 Media faults} *)

val inject_fault : t -> fault -> unit
(** Apply one fault to the persisted image (counted by
    {!media_faults_injected}).  [Bit_rot] is also reflected into the
    volatile image when the covering line is clean, since a clean cache
    line mirrors the media. *)

val is_poisoned : t -> line:int -> bool

val is_stuck : t -> line:int -> bool

val poisoned_lines : t -> int list
(** Currently poisoned lines, ascending (ground truth, for tests). *)

val stuck_lines : t -> int list

val set_decay : t -> (float * int * int) option -> unit
(** [set_decay t (Some (rate, epoch, seed))] turns on seeded background
    decay: every [epoch] simulated cycles, an expected [rate] fraction of
    persisted lines suffers a random single-bit flip.  Decay is evaluated
    lazily at persist boundaries.  [None] turns it off. *)

val decay_tick : t -> unit
(** Force one decay epoch immediately (tests and campaigns). *)

val media_faults_injected : t -> int
(** Faults injected so far, including background decay. *)

val media_faults_detected : t -> int

val media_faults_repaired : t -> int

val note_media_detected : t -> int -> unit
(** Bump the detected-fault counter: called by layers (recovery, scrub)
    that recognise corruption via checksums or {!Media_error}. *)

val note_media_repaired : t -> int -> unit

(** {1 Volatile-side access (CPU loads/stores)} *)

val load_u64 : t -> int -> int64

val store_u64 : t -> int -> int64 -> unit

val load_u8 : t -> int -> int

val store_u8 : t -> int -> int -> unit

val load_bytes : t -> int -> int -> bytes

val store_bytes : t -> int -> bytes -> unit

(** {1 Persistence} *)

val persist : t -> off:int -> len:int -> unit
(** Flush every dirty line intersecting [\[off, off+len)] to the persisted
    image and drain the store queue.  Charges
    [max(persist_latency, dirty_bytes / bandwidth)] cycles, with the
    bandwidth component serialized across all users of the device. *)

val persist_all : t -> unit

val persist_ranges : t -> (int * int) list -> unit
(** [persist_ranges t ranges] flushes every dirty line covered by any of the
    [(off, len)] ranges under a {e single} persist ordering: one latency,
    one bandwidth booking for the total flushed bytes.  Used by Reproduce
    to persist a whole batch of reproduced writes at once. *)

val dirty_lines : t -> int
(** Number of lines currently dirty (not yet persisted). *)

val set_persist_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a callback fired at every persist boundary: once when
    a persist ordering is issued ({!persist}, {!persist_ranges}) and once
    after each dirty line is copied into the persisted image.  The
    systematic crash checker ([lib/check]) counts these firings and raises
    from the hook to cut power at an exact persist/fence/line boundary —
    crashing between two firings leaves exactly the lines flushed so far
    durable, i.e. a torn persist.  The hook does not fire during {!crash}
    eviction or while no hook is installed. *)

(** {1 Crash and recovery} *)

val crash : ?evict_fraction:float -> ?rng:Dudetm_sim.Rng.t -> t -> unit
(** Simulate a power failure: each dirty line independently survives with
    probability [evict_fraction] (default 0 — none survive, the adversarial
    tests sweep this), then all volatile state is discarded and [latest] is
    reloaded from the persisted image.  Media faults (poison, stuck lines)
    persist across the crash. *)

val last_crash_survivors : t -> int list
(** The dirty lines that leaked into the persisted image during the most
    recent {!crash}, ascending.  Together with the eviction RNG seed this
    makes evicting crashes exactly replayable (the checker records both in
    its failure one-liners). *)

val persisted_u64 : t -> int -> int64
(** Read the persisted image directly (for tests and recovery checks).
    Raises {!Media_error} on a poisoned line. *)

val persisted_bytes : t -> int -> int -> bytes
(** Read a persisted byte range (scrub and checksum audits).  Raises
    {!Media_error} if any covered line is poisoned. *)

val persisted_bytes_equal : t -> int -> bytes -> bool
(** [persisted_bytes_equal t off b] checks the persisted image against [b]. *)

(** {1 Accounting} *)

val persisted_write_bytes : t -> int
(** Total bytes ever flushed to the persisted image (the paper's "NVM write
    traffic"). *)

val persist_ops : t -> int
(** Number of persist orderings issued. *)

val reset_counters : t -> unit

module Rng = Dudetm_sim.Rng
module Sched = Dudetm_sim.Sched
module Resource = Dudetm_sim.Resource

(* Dirty state is tracked per cache line (the granularity of eviction and
   crash survival), but each line also remembers how many payload bytes
   were actually stored into it since its last flush.  Persist-cost
   accounting uses those byte counts — the paper's emulation charges
   [total write size / bandwidth], not whole-line traffic. *)
type t = {
  cfg : Pmem_config.t;
  latest : Mem.t;
  persisted : Mem.t;
  dirty : (int, int ref) Hashtbl.t;  (* line number -> dirty payload bytes *)
  channel : Resource.t;
  charge_time : bool;
  mutable write_bytes : int;
  mutable persist_ops : int;
  (* Fired at every persist boundary: once when an ordering is issued and
     once after each dirty line reaches the persisted image.  The systematic
     crash checker raises from here to cut power at an exact boundary. *)
  mutable persist_hook : (unit -> unit) option;
}

let create ?(charge_time = true) cfg ~size =
  if size mod cfg.Pmem_config.line_size <> 0 then
    invalid_arg "Nvm.create: size must be a multiple of the line size";
  {
    cfg;
    latest = Mem.create size;
    persisted = Mem.create size;
    dirty = Hashtbl.create 4096;
    channel = Resource.create_gbps cfg.Pmem_config.bandwidth_gbps;
    charge_time;
    write_bytes = 0;
    persist_ops = 0;
    persist_hook = None;
  }

let set_persist_hook t hook = t.persist_hook <- hook

let fire_hook t = match t.persist_hook with Some f -> f () | None -> ()

let size t = Mem.size t.latest

let config t = t.cfg

let line t addr = addr / t.cfg.Pmem_config.line_size

let mark_dirty t off len =
  let ls = t.cfg.Pmem_config.line_size in
  let first = line t off and last = line t (off + len - 1) in
  for l = first to last do
    let lo = max off (l * ls) and hi = min (off + len) ((l + 1) * ls) in
    match Hashtbl.find_opt t.dirty l with
    | Some c -> c := min ls (!c + hi - lo)
    | None -> Hashtbl.add t.dirty l (ref (hi - lo))
  done

let load_u64 t addr = Mem.get_u64 t.latest addr

let store_u64 t addr v =
  Mem.set_u64 t.latest addr v;
  mark_dirty t addr 8

let load_u8 t addr = Mem.get_u8 t.latest addr

let store_u8 t addr v =
  Mem.set_u8 t.latest addr v;
  mark_dirty t addr 1

let load_bytes t off len = Mem.get_bytes t.latest off len

let store_bytes t off b =
  Mem.set_bytes t.latest off b;
  if Bytes.length b > 0 then mark_dirty t off (Bytes.length b)

let flush_line t l =
  let ls = t.cfg.Pmem_config.line_size in
  let payload = match Hashtbl.find_opt t.dirty l with Some c -> !c | None -> 0 in
  Mem.blit ~src:t.latest ~src_off:(l * ls) ~dst:t.persisted ~dst_off:(l * ls) ~len:ls;
  Hashtbl.remove t.dirty l;
  t.write_bytes <- t.write_bytes + payload;
  payload

let charge t bytes =
  t.persist_ops <- t.persist_ops + 1;
  if t.charge_time then begin
    let cost =
      Resource.transfer t.channel ~now:(Sched.now ()) ~bytes
        ~latency:t.cfg.Pmem_config.persist_latency
    in
    Sched.advance cost
  end

let flush_range t ~off ~len =
  if len < 0 || off < 0 || off + len > size t then invalid_arg "Nvm.persist: bad range";
  let bytes = ref 0 in
  if len > 0 then begin
    let first = line t off and last = line t (off + len - 1) in
    for l = first to last do
      if Hashtbl.mem t.dirty l then begin
        bytes := !bytes + flush_line t l;
        fire_hook t
      end
    done
  end;
  !bytes

let persist t ~off ~len =
  fire_hook t;
  charge t (flush_range t ~off ~len)

let persist_ranges t ranges =
  fire_hook t;
  let bytes = List.fold_left (fun acc (off, len) -> acc + flush_range t ~off ~len) 0 ranges in
  charge t bytes

let persist_all t = persist t ~off:0 ~len:(size t)

let dirty_lines t = Hashtbl.length t.dirty

let crash ?(evict_fraction = 0.0) ?rng t =
  (match rng with
  | Some rng when evict_fraction > 0.0 ->
    let survivors =
      Hashtbl.fold
        (fun l _ acc -> if Rng.float rng < evict_fraction then l :: acc else acc)
        t.dirty []
    in
    (* Evicted lines reach NVM without any ordering guarantee; the subset
       choice is the adversarial part. *)
    List.iter (fun l -> ignore (flush_line t l)) survivors
  | _ -> ());
  Hashtbl.reset t.dirty;
  Mem.blit_from ~src:t.persisted t.latest;
  Resource.reset t.channel

let persisted_u64 t addr = Mem.get_u64 t.persisted addr

let persisted_bytes_equal t off b =
  let len = Bytes.length b in
  if off < 0 || off + len > size t then false
  else begin
    let rec go i =
      i >= len || (Mem.get_u8 t.persisted (off + i) = Char.code (Bytes.get b i) && go (i + 1))
    in
    go 0
  end

let persisted_write_bytes t = t.write_bytes

let persist_ops t = t.persist_ops

let reset_counters t =
  t.write_bytes <- 0;
  t.persist_ops <- 0

module Rng = Dudetm_sim.Rng
module Sched = Dudetm_sim.Sched
module Resource = Dudetm_sim.Resource
module Trace = Dudetm_trace.Trace

exception Media_error of int

type fault =
  | Bit_rot of { off : int; bit : int }
  | Stuck_line of { line : int }
  | Poison of { line : int }

type decay = {
  decay_rate : float;  (* expected corrupted lines per epoch / total lines *)
  decay_epoch : int;  (* simulated cycles per decay epoch *)
  decay_rng : Rng.t;
}

(* Dirty state is tracked per cache line (the granularity of eviction and
   crash survival), but each line also remembers how many payload bytes
   were actually stored into it since its last flush.  Persist-cost
   accounting uses those byte counts — the paper's emulation charges
   [total write size / bandwidth], not whole-line traffic. *)
type t = {
  cfg : Pmem_config.t;
  label : string;  (* trace device identity; shards label theirs "shard<i>" *)
  latest : Mem.t;
  persisted : Mem.t;
  dirty : (int, int ref) Hashtbl.t;  (* line number -> dirty payload bytes *)
  channel : Resource.t;
  charge_time : bool;
  mutable write_bytes : int;
  mutable persist_ops : int;
  (* Fired at every persist boundary: once when an ordering is issued and
     once after each dirty line reaches the persisted image.  The systematic
     crash checker raises from here to cut power at an exact boundary. *)
  mutable persist_hook : (unit -> unit) option;
  (* Media-fault state.  [poisoned] lines raise {!Media_error} on any read
     that reaches the media (loads of non-dirty lines, persisted reads);
     [stuck] lines silently ignore flushes, keeping their last persisted
     content.  Both survive crashes: they are properties of the media. *)
  poisoned : (int, unit) Hashtbl.t;
  stuck : (int, unit) Hashtbl.t;
  mutable faults_injected : int;
  mutable faults_detected : int;
  mutable faults_repaired : int;
  mutable decay : decay option;
  mutable decay_last_epoch : int;
  mutable last_crash_survivors : int list;
}

let create ?(charge_time = true) ?(label = "nvm") cfg ~size =
  if size mod cfg.Pmem_config.line_size <> 0 then
    invalid_arg "Nvm.create: size must be a multiple of the line size";
  {
    cfg;
    label;
    latest = Mem.create size;
    persisted = Mem.create size;
    dirty = Hashtbl.create 4096;
    channel = Resource.create_gbps cfg.Pmem_config.bandwidth_gbps;
    charge_time;
    write_bytes = 0;
    persist_ops = 0;
    persist_hook = None;
    poisoned = Hashtbl.create 8;
    stuck = Hashtbl.create 8;
    faults_injected = 0;
    faults_detected = 0;
    faults_repaired = 0;
    decay = None;
    decay_last_epoch = 0;
    last_crash_survivors = [];
  }

let set_persist_hook t hook = t.persist_hook <- hook

let fire_hook t = match t.persist_hook with Some f -> f () | None -> ()

let size t = Mem.size t.latest

let label t = t.label

let config t = t.cfg

let line t addr = addr / t.cfg.Pmem_config.line_size

let line_size t = t.cfg.Pmem_config.line_size

(* ------------------------------------------------------------------ *)
(* Media faults                                                        *)
(* ------------------------------------------------------------------ *)

let check_poison_media t addr len =
  if Hashtbl.length t.poisoned > 0 && len > 0 then begin
    let first = line t addr and last = line t (addr + len - 1) in
    for l = first to last do
      if Hashtbl.mem t.poisoned l then
        raise (Media_error (l * t.cfg.Pmem_config.line_size))
    done
  end

(* A load is served from the cache when the line is dirty; only clean lines
   re-read the media and can observe poison. *)
let check_poison_load t addr len =
  if Hashtbl.length t.poisoned > 0 && len > 0 then begin
    let first = line t addr and last = line t (addr + len - 1) in
    for l = first to last do
      if Hashtbl.mem t.poisoned l && not (Hashtbl.mem t.dirty l) then
        raise (Media_error (l * t.cfg.Pmem_config.line_size))
    done
  end

let flip_persisted_bit t ~off ~bit =
  let b = Mem.get_u8 t.persisted off in
  let b' = b lxor (1 lsl (bit land 7)) in
  Mem.set_u8 t.persisted off b';
  (* A clean line's cached copy mirrors the media, so the corruption is
     immediately visible to loads too. *)
  if not (Hashtbl.mem t.dirty (line t off)) then Mem.set_u8 t.latest off b'

let inject_fault t fault =
  (match fault with
  | Bit_rot { off; bit } ->
    if off < 0 || off >= size t then invalid_arg "Nvm.inject_fault: offset out of range";
    flip_persisted_bit t ~off ~bit
  | Stuck_line { line = l } ->
    if l < 0 || l >= size t / line_size t then
      invalid_arg "Nvm.inject_fault: line out of range";
    Hashtbl.replace t.stuck l ()
  | Poison { line = l } ->
    if l < 0 || l >= size t / line_size t then
      invalid_arg "Nvm.inject_fault: line out of range";
    Hashtbl.replace t.poisoned l ());
  t.faults_injected <- t.faults_injected + 1

let is_poisoned t ~line:l = Hashtbl.mem t.poisoned l

let is_stuck t ~line:l = Hashtbl.mem t.stuck l

let poisoned_lines t = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) t.poisoned [])

let stuck_lines t = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) t.stuck [])

let set_decay t spec =
  t.decay <-
    Option.map
      (fun (rate, epoch, seed) ->
        if rate < 0.0 || rate > 1.0 then invalid_arg "Nvm.set_decay: rate must be in [0,1]";
        if epoch <= 0 then invalid_arg "Nvm.set_decay: epoch must be positive";
        { decay_rate = rate; decay_epoch = epoch; decay_rng = Rng.create seed })
      spec;
  t.decay_last_epoch <- (match t.decay with
    | Some d -> Sched.global_now () / d.decay_epoch
    | None -> 0)

(* One decay epoch: each persisted line independently rots with probability
   [decay_rate] (sampled as an expected count, at least the fractional
   remainder), flipping one random bit. *)
let decay_epoch_once t (d : decay) =
  let lines = size t / line_size t in
  let expect = d.decay_rate *. float_of_int lines in
  let n =
    int_of_float expect
    + (if Rng.float d.decay_rng < expect -. Float.of_int (int_of_float expect) then 1 else 0)
  in
  for _ = 1 to n do
    let l = Rng.int d.decay_rng lines in
    let off = (l * line_size t) + Rng.int d.decay_rng (line_size t) in
    flip_persisted_bit t ~off ~bit:(Rng.int d.decay_rng 8);
    t.faults_injected <- t.faults_injected + 1
  done

let decay_tick t = match t.decay with Some d -> decay_epoch_once t d | None -> ()

let run_decay t =
  match t.decay with
  | None -> ()
  | Some d ->
    let epoch = Sched.global_now () / d.decay_epoch in
    while t.decay_last_epoch < epoch do
      t.decay_last_epoch <- t.decay_last_epoch + 1;
      decay_epoch_once t d
    done

let media_faults_injected t = t.faults_injected

let media_faults_detected t = t.faults_detected

let media_faults_repaired t = t.faults_repaired

let note_media_detected t n = t.faults_detected <- t.faults_detected + n

let note_media_repaired t n = t.faults_repaired <- t.faults_repaired + n

(* ------------------------------------------------------------------ *)
(* Volatile-side access                                                *)
(* ------------------------------------------------------------------ *)

let mark_dirty t off len =
  let ls = t.cfg.Pmem_config.line_size in
  let first = line t off and last = line t (off + len - 1) in
  for l = first to last do
    let lo = max off (l * ls) and hi = min (off + len) ((l + 1) * ls) in
    match Hashtbl.find_opt t.dirty l with
    | Some c -> c := min ls (!c + hi - lo)
    | None -> Hashtbl.add t.dirty l (ref (hi - lo))
  done

let load_u64 t addr =
  check_poison_load t addr 8;
  Mem.get_u64 t.latest addr

let store_u64 t addr v =
  Mem.set_u64 t.latest addr v;
  mark_dirty t addr 8

let load_u8 t addr =
  check_poison_load t addr 1;
  Mem.get_u8 t.latest addr

let store_u8 t addr v =
  Mem.set_u8 t.latest addr v;
  mark_dirty t addr 1

let load_bytes t off len =
  check_poison_load t off len;
  Mem.get_bytes t.latest off len

let store_bytes t off b =
  Mem.set_bytes t.latest off b;
  if Bytes.length b > 0 then mark_dirty t off (Bytes.length b)

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let flush_line t l =
  let ls = t.cfg.Pmem_config.line_size in
  let payload = match Hashtbl.find_opt t.dirty l with Some c -> !c | None -> 0 in
  if Hashtbl.mem t.stuck l then
    (* Stuck-at line: the write reaches the device but never sticks; a
       subsequent media read returns the stale content, so reload the cache
       from the (unchanged) persisted image to make that observable. *)
    Mem.blit ~src:t.persisted ~src_off:(l * ls) ~dst:t.latest ~dst_off:(l * ls) ~len:ls
  else begin
    Mem.blit ~src:t.latest ~src_off:(l * ls) ~dst:t.persisted ~dst_off:(l * ls) ~len:ls;
    (* Rewriting a whole line clears its poison (the model for repairing an
       uncorrectable location by writing fresh data over it). *)
    Hashtbl.remove t.poisoned l
  end;
  Hashtbl.remove t.dirty l;
  t.write_bytes <- t.write_bytes + payload;
  payload

let charge t bytes =
  t.persist_ops <- t.persist_ops + 1;
  if t.charge_time then begin
    let cost =
      Resource.transfer t.channel ~now:(Sched.now ()) ~bytes
        ~latency:t.cfg.Pmem_config.persist_latency
    in
    (* Every cycle the NVM channel ever costs anyone flows through here, so
       this one call gives the per-thread "who pays for persistence" split. *)
    Trace.nvm_transfer ~dev:t.label ~bytes ~cycles:cost;
    Sched.advance cost
  end
  else Trace.nvm_transfer ~dev:t.label ~bytes ~cycles:0;
  run_decay t

let flush_range t ~off ~len =
  if len < 0 || off < 0 || off + len > size t then invalid_arg "Nvm.persist: bad range";
  let bytes = ref 0 in
  if len > 0 then begin
    let first = line t off and last = line t (off + len - 1) in
    for l = first to last do
      if Hashtbl.mem t.dirty l then begin
        bytes := !bytes + flush_line t l;
        fire_hook t
      end
    done
  end;
  !bytes

let persist t ~off ~len =
  fire_hook t;
  charge t (flush_range t ~off ~len)

let persist_ranges t ranges =
  fire_hook t;
  let bytes = List.fold_left (fun acc (off, len) -> acc + flush_range t ~off ~len) 0 ranges in
  charge t bytes

let persist_all t = persist t ~off:0 ~len:(size t)

let dirty_lines t = Hashtbl.length t.dirty

let crash ?(evict_fraction = 0.0) ?rng t =
  (match rng with
  | Some rng when evict_fraction > 0.0 ->
    let survivors =
      Hashtbl.fold
        (fun l _ acc -> if Rng.float rng < evict_fraction then l :: acc else acc)
        t.dirty []
    in
    (* Evicted lines reach NVM without any ordering guarantee; the subset
       choice is the adversarial part. *)
    let survivors = List.sort compare survivors in
    List.iter (fun l -> ignore (flush_line t l)) survivors;
    t.last_crash_survivors <- survivors
  | _ -> t.last_crash_survivors <- []);
  Hashtbl.reset t.dirty;
  Mem.blit_from ~src:t.persisted t.latest;
  Resource.reset t.channel

let last_crash_survivors t = t.last_crash_survivors

let persisted_u64 t addr =
  check_poison_media t addr 8;
  Mem.get_u64 t.persisted addr

let persisted_bytes t off len =
  check_poison_media t off len;
  Mem.get_bytes t.persisted off len

let persisted_bytes_equal t off b =
  let len = Bytes.length b in
  if off < 0 || off + len > size t then false
  else begin
    check_poison_media t off len;
    let rec go i =
      i >= len || (Mem.get_u8 t.persisted (off + i) = Char.code (Bytes.get b i) && go (i + 1))
    in
    go 0
  end

let persisted_write_bytes t = t.write_bytes

let persist_ops t = t.persist_ops

let reset_counters t =
  t.write_bytes <- 0;
  t.persist_ops <- 0

(** Simulated replication interconnect: one direction of one point-to-point
    link.

    Modelled like the simulated NVM device ([lib/nvm]): a serialized
    bandwidth channel plus a fixed per-frame latency — a frame sent at [t]
    is deliverable at [max t busy_until + max latency (bytes/bw)] — with
    seeded injectable link faults in the style of the NVM media faults:
    drop, duplicate, reorder, delay, and corrupt (a flipped bit that the
    wire frame's CRC must catch at the receiver).

    Sends never block the sender (the primary's Persist daemon must not
    stall on a slow replica); receivers poll {!recv}, which releases frames
    in delivery-time order once the receiving fiber's clock has reached
    each frame's deliver-at stamp.  A partitioned link drops every frame at
    the send side until healed. *)

type faults = {
  drop : float;  (** P(frame silently lost) *)
  duplicate : float;  (** P(frame delivered twice, copies a latency apart) *)
  reorder : float;  (** P(frame held back past later traffic) *)
  delay : float;  (** P(frame delayed by [delay_cycles]) *)
  delay_cycles : int;
  corrupt : float;  (** P(one bit flipped in flight; CRC-detected) *)
}

val no_faults : faults

type config = {
  latency : int;  (** per-frame one-way latency, simulated cycles *)
  bandwidth_gbps : float;  (** serialized channel bandwidth *)
  faults : faults;
  seed : int;  (** per-link fault stream (combined with the link label) *)
}

val default_config : config
(** 20k-cycle latency (a few µs at nominal clock), 10 GB/s, no faults. *)

type t

val create : label:string -> config -> t
(** [label] names the link in trace per-link byte accounting
    ({!Dudetm_trace.Trace.link_accts}) and salts its fault stream. *)

val send : t -> bytes -> unit
(** Enqueue a frame; never blocks.  Applies the fault model and charges the
    serialized channel (accounted via [Trace.link_transfer]). *)

val recv : t -> bytes option
(** Next frame whose delivery time has been reached by the calling fiber's
    clock, in delivery order; [None] when nothing is deliverable yet. *)

val set_partitioned : t -> bool -> unit

val partitioned : t -> bool

val in_flight : t -> int
(** Frames sent but not yet received. *)

val stats : t -> Dudetm_sim.Stats.t
(** ["frames_sent"], ["bytes_sent"], ["frames_delivered"],
    ["frames_dropped"], ["frames_dropped_partition"],
    ["frames_duplicated"], ["frames_reordered"], ["frames_delayed"],
    ["frames_corrupted"]. *)

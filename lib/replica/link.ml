module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Resource = Dudetm_sim.Resource
module Trace = Dudetm_trace.Trace

type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  delay_cycles : int;
  corrupt : float;
}

let no_faults =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; delay = 0.0; delay_cycles = 0; corrupt = 0.0 }

type config = {
  latency : int;
  bandwidth_gbps : float;
  faults : faults;
  seed : int;
}

let default_config = { latency = 20_000; bandwidth_gbps = 10.0; faults = no_faults; seed = 1 }

type t = {
  label : string;
  cfg : config;
  channel : Resource.t;
  rng : Rng.t;
  (* Deliverable frames, sorted by (deliver_at, stamp).  The stamp breaks
     same-cycle ties in send order, so delivery is deterministic. *)
  mutable queue : (int * int * bytes) list;
  mutable next_stamp : int;
  mutable partitioned : bool;
  stats : Stats.t;
}

let create ~label cfg =
  {
    label;
    cfg;
    channel = Resource.create_gbps cfg.bandwidth_gbps;
    rng = Rng.create (cfg.seed lxor Hashtbl.hash label lxor 0x11fa57);
    queue = [];
    next_stamp = 0;
    partitioned = false;
    stats = Stats.create ();
  }

let insert t at b =
  t.next_stamp <- t.next_stamp + 1;
  let stamp = t.next_stamp in
  let rec ins = function
    | [] -> [ (at, stamp, b) ]
    | ((a, s, _) as hd) :: tl when (a, s) <= (at, stamp) -> hd :: ins tl
    | rest -> (at, stamp, b) :: rest
  in
  t.queue <- ins t.queue

let send t b =
  Stats.incr t.stats "frames_sent";
  Stats.add t.stats "bytes_sent" (Bytes.length b);
  if t.partitioned then Stats.incr t.stats "frames_dropped_partition"
  else begin
    let f = t.cfg.faults in
    let roll p = p > 0.0 && Rng.float t.rng < p in
    if roll f.drop then Stats.incr t.stats "frames_dropped"
    else begin
      let bytes = Bytes.length b in
      let now = Sched.now () in
      let cost = Resource.transfer t.channel ~now ~bytes ~latency:t.cfg.latency in
      Trace.link_transfer ~link:t.label ~bytes ~cycles:cost;
      let at = now + cost in
      let at =
        if roll f.delay then begin
          Stats.incr t.stats "frames_delayed";
          at + f.delay_cycles
        end
        else at
      in
      (* A reordered frame is simply held back long enough for traffic sent
         after it to overtake it. *)
      let at =
        if roll f.reorder then begin
          Stats.incr t.stats "frames_reordered";
          at + (3 * t.cfg.latency)
        end
        else at
      in
      let payload =
        if roll f.corrupt then begin
          Stats.incr t.stats "frames_corrupted";
          let c = Bytes.copy b in
          let i = Rng.int t.rng (Bytes.length c) in
          Bytes.set c i
            (Char.chr (Char.code (Bytes.get c i) lxor (1 lsl Rng.int t.rng 8)));
          c
        end
        else b
      in
      insert t at payload;
      if roll f.duplicate then begin
        Stats.incr t.stats "frames_duplicated";
        insert t (at + t.cfg.latency) payload
      end
    end
  end

let recv t =
  match t.queue with
  | (at, _, b) :: tl when at <= Sched.now () ->
    t.queue <- tl;
    Stats.incr t.stats "frames_delivered";
    Some b
  | _ -> None

let set_partitioned t p = t.partitioned <- p

let partitioned t = t.partitioned

let in_flight t = List.length t.queue

let stats t = t.stats

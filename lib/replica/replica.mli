(** Replicated durability: ship the primary's sealed redo-log records to K
    replicas and acknowledge transactions at a quorum watermark.

    {2 Wire unit}

    The Persist step already emits a totally-ordered, CRC-sealed,
    self-describing redo stream — the PR 6 group-commit batch is reused
    verbatim as the replication unit: the primary's ship hook fires with
    the exact payload bytes persisted to ring 0, and each follower appends
    those same bytes to its own ring at the same sequence number, so a
    replica's device is a byte-identical (possibly shorter) prefix of the
    primary's log and promotion is ordinary [attach] recovery.

    {2 Quorum vector watermark}

    With K replicas the cluster has K+1 nodes and quorum
    [q = ⌈(K+1)/2⌉].  The primary always seals first, so a transaction is
    {e quorum-acked} once [q - 1] replicas report a local durable ID at or
    above it: the acked watermark is
    [min (primary durable) ((q-1)-th largest replica durable)] — a vector
    watermark over per-replica durable IDs, generalizing the PR 5
    cross-shard vector.  [K = 1] gives [q - 1 = 0]: the watermark {e is}
    the primary durable ID and the cluster degenerates to PR 6 behaviour.

    {2 Failover}

    {!Make.promote} power-cuts every replica device, scans each
    ([attach_prepare]), picks the longest candidate prefix, and truncates
    it to the {e quorum prefix} — the [(q-1)]-th largest candidate, a
    provable upper bound on every acked transaction (an acked transaction
    is sealed on at least [q-1] replicas, and prefixes are contiguous).  A
    replica that ran ahead of the quorum loses only its never-acked tail.
    Follower replay is gated to the acknowledged watermark, which keeps
    every checkpoint floor below any legal truncation.

    {2 Degraded mode}

    A durability wait never blocks past {!Config.ack_timeout}: when quorum
    is unreachable (partition, dead replicas) the cluster returns
    [Degraded_quorum] with a lag/retransmit diagnostic and continues with
    primary-only durability — explicitly, never silently. *)

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  module Engine : module type of Dudetm_core.Dudetm.Make (Tm)

  exception Replica_lag of string
  (** Raised by {!drain} [~require_quorum:true] when the replicas cannot
      reach the primary's durable ID within {!Config.ack_timeout}.  The
      payload mirrors [Drain_stalled]: per-replica acked IDs and lag,
      partition state, retransmit/backoff counters, outstanding batches. *)

  type t

  (** Outcome of a durability wait. *)
  type ack =
    | Quorum  (** sealed on ⌈(K+1)/2⌉ nodes *)
    | Degraded_quorum of string
        (** quorum unreachable within [ack_timeout]; primary-only
            durability.  The payload is the lag diagnostic. *)

  type health = Healthy | Degraded of string

  type config = {
    nreplicas : int;  (** K ≥ 1 *)
    link : Link.config;  (** both directions of every primary↔replica pair *)
    retry_base : int;
        (** retransmit backoff base (cycles); doubles per silent round,
            capped — the PR 3 supervisor backoff shape *)
    retry_cap : int;
    window : int;  (** max batches retransmitted per round *)
    max_retained : int;
        (** retransmit-retention bound (batches, 0 = unbounded): past it
            the oldest batches are dropped and any replica still needing
            them is {e cut off} — excluded from retransmission and from
            retention accounting, reported through {!Make.health} as a
            sticky [Replica_lag]-shaped diagnostic.  Bounds primary DRAM
            under a long partition; the cut-off follower would need an
            out-of-band resync in a real deployment. *)
  }

  val default_config : ?nreplicas:int -> unit -> config
  (** 3 replicas; retransmit timer derived from the link latency;
      [max_retained = 4096]. *)

  (** {1 Lifecycle} *)

  val create : ?rcfg:config -> Dudetm_core.Config.t -> t
  (** Build the primary (device ["primary"]) and K followers (devices
      ["replica<i>"]) plus 2K directed links.  Requires [cfg.combine]
      (the wire unit is the combined group-commit record). *)

  val start : t -> unit
  (** Start the primary's daemons, each follower's Reproduce daemon, the
      per-replica ingest daemons and the primary-side ack/retransmit
      daemon.  Must run inside [Sched.run]. *)

  val stop : t -> unit
  (** Drain the primary, broadcast the final watermark, and ask every
      daemon to wind down. *)

  (** {1 Durability} *)

  val wait_acked : t -> int -> ack
  (** Block until transaction [tid] is quorum-acked, at most
      {!Config.ack_timeout} simulated cycles (polling — never a scheduler
      deadlock when every replica stalls).  On timeout, flips the cluster
      to {!Degraded} health and returns [Degraded_quorum]. *)

  val acked : t -> int
  (** The quorum-acked watermark (monotone). *)

  val atomically_ro :
    ?durable:bool -> t -> thread:int -> (Engine.tx -> 'a) -> ('a * int) option
  (** Read-only snapshot transaction on the primary
      ({!Engine.atomically_ro}).  With [~durable:true] the snapshot epoch
      pins at the {e quorum} watermark ({!acked}) rather than the
      primary-local durable ID: every value read would survive a failover
      (promotion truncates to the quorum prefix).  Under a full partition
      the watermark stalls and a pinned read of hot data waits for the
      links to heal — unlike writer durability waits, snapshot pin waits
      have no [ack_timeout] degrade path. *)

  val drain : ?require_quorum:bool -> t -> ack
  (** Drain the primary (its own [drain] semantics and budget), then wait —
      bounded by [ack_timeout] — for the quorum watermark to reach the
      primary's durable ID.  [require_quorum] turns the degraded outcome
      into {!Replica_lag}. *)

  val sync_followers : t -> unit
  (** Best-effort (bounded) wait for every reachable follower to ingest
      and replay up to the current acked watermark — for tests that compare
      replica state, and for clean shutdown. *)

  val health : t -> health
  (** [Degraded] after a quorum timeout {e or} — stickily — after the
      retransmit-retention cap cut a replica off. *)

  val cut_off : t -> bool array
  (** Per replica: has it lagged past [max_retained] and been cut off? *)

  val retained : t -> int
  (** Batches currently held for retransmission (always ≤ [max_retained]
      when the cap is enabled). *)

  (** {1 Partitions} *)

  val set_partitioned : t -> int -> bool -> unit
  (** Partition/heal both directions of replica [i]'s links. *)

  (** {1 Failover} *)

  type promotion = {
    promoted : int;  (** index of the replica promoted (longest prefix) *)
    candidates : int array;  (** per-replica scanned candidate durable IDs *)
    quorum_prefix : int;  (** the truncation bound actually applied *)
    truncated_txs : int;  (** never-acked tail discarded from the winner *)
    report : Dudetm_core.Dudetm.recovery_report;
  }

  val promote : t -> Engine.t * promotion
  (** Fail over after primary death: power-cut every replica device,
      recover each from its local durable prefix, promote the longest and
      truncate it to the quorum prefix.  Call after the primary's
      [Sched.run] has ended (the primary is dead and is not consulted). *)

  (** {1 Introspection} *)

  val primary : t -> Engine.t

  val replica : t -> int -> Engine.t

  val nreplicas : t -> int

  val quorum : t -> int
  (** Nodes (including the primary) a transaction must be sealed on:
      ⌈(K+1)/2⌉. *)

  val quorum_needed : nreplicas:int -> int
  (** Pure helper: quorum size for a K-replica cluster. *)

  val replica_lag : t -> int array
  (** Per replica: primary durable ID minus the replica's acked durable
      ID. *)

  val diagnostic : t -> string
  (** The [Replica_lag]-style one-line cluster diagnostic. *)

  val link_stats : t -> (Dudetm_sim.Stats.t * Dudetm_sim.Stats.t) array
  (** Per replica: (ship-direction, ack-direction) link counters. *)

  val stats : t -> Dudetm_sim.Stats.t
  (** ["batches_shipped"], ["batches_applied"], ["acks_received"],
      ["dup_frames"], ["ooo_frames"], ["crc_rejected"], ["retransmits"],
      ["retransmit_rounds"], ["backoff_cycles"], ["degraded_acks"],
      ["watermark_broadcasts"], ["retention_drops"],
      ["replicas_cut_off"]. *)
end

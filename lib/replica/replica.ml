module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Wire = Dudetm_log.Wire
module Config = Dudetm_core.Config
module Dudetm = Dudetm_core.Dudetm
module Trace = Dudetm_trace.Trace

module Make (Tm : Dudetm_tm.Tm_intf.S) = struct
  module Engine = Dudetm.Make (Tm)

  exception Replica_lag of string

  let () =
    Printexc.register_printer (function
      | Replica_lag msg -> Some (Printf.sprintf "Replica_lag %S" msg)
      | _ -> None)

  type ack = Quorum | Degraded_quorum of string

  type health = Healthy | Degraded of string

  type config = {
    nreplicas : int;
    link : Link.config;
    retry_base : int;
    retry_cap : int;
    window : int;
    max_retained : int;
  }

  let default_config ?(nreplicas = 3) () =
    let link = Link.default_config in
    {
      nreplicas;
      link;
      (* The retransmit timer must outlast a healthy round trip (two
         latencies plus both ends' poll steps), then back off like the
         PR 3 daemon supervisor: doubling per silent round, capped. *)
      retry_base = 8 * link.Link.latency;
      retry_cap = 64 * link.Link.latency;
      window = 8;
      (* A partitioned follower must not pin unbounded primary DRAM: past
         this many retained batches the laggard is cut off instead. *)
      max_retained = 4096;
    }

  (* A sealed batch retained (in DRAM) for retransmission. *)
  type shipped = {
    sp_seq : int;
    sp_lo : int;
    sp_hi : int;
    sp_payload : bytes;
  }

  (* One follower plus the primary's view of it. *)
  type rep = {
    idx : int;
    eng : Engine.t;
    down : Link.t;  (* primary -> replica: Batch / Watermark frames *)
    up : Link.t;  (* replica -> primary: cumulative Ack frames *)
    known_acked : int ref;  (* replica side: replay-gate watermark *)
    pendingq : (int, shipped) Hashtbl.t;  (* replica side: out-of-order, by lo *)
    mutable deferred : shipped option;  (* next in line, awaiting ring space *)
    mutable ingested_seq : int;  (* replica side: last ring seq ingested *)
    mutable last_acked : int;  (* replica side: durable ID last ack'd *)
    mutable reack : bool;  (* replica side: saw a dup; re-send the ack *)
    (* Primary-side view, fed by this replica's cumulative acks: *)
    mutable acked_hi : int;  (* its durable ID (the quorum vector entry) *)
    mutable retries : int;  (* consecutive silent retransmit rounds *)
    mutable next_retry : int;  (* timer deadline; 0 = unarmed *)
    mutable cut_off : bool;  (* lagged past max_retained; needs a resync *)
  }

  type t = {
    cfg : Config.t;
    rcfg : config;
    prim : Engine.t;
    reps : rep array;
    shipments : shipped Queue.t;  (* retained until acked by every replica *)
    mutable acked_watermark : int;  (* quorum watermark, monotone *)
    mutable last_broadcast : int;
    mutable last_broadcast_at : int;
    mutable degraded : string option;
    mutable lag_alarm : string option;  (* sticky: set when the cap trips *)
    retry_rng : Rng.t;
    stats : Stats.t;
    mutable stopped : bool;
  }

  let quorum_needed ~nreplicas = (nreplicas + 2) / 2

  let quorum t = quorum_needed ~nreplicas:(Array.length t.reps)

  (* Replica acks needed beyond the primary's own seal. *)
  let acks_needed t = quorum t - 1

  let create ?rcfg cfg =
    let rcfg = match rcfg with Some r -> r | None -> default_config () in
    if rcfg.nreplicas < 1 then invalid_arg "Replica.create: nreplicas < 1";
    if not cfg.Config.combine then
      invalid_arg "Replica.create: the wire unit is the combined group-commit record";
    let prim = Engine.create ~nvm_label:"primary" cfg in
    let reps =
      Array.init rcfg.nreplicas (fun i ->
          let label = Printf.sprintf "replica%d" i in
          {
            idx = i;
            eng = Engine.create ~nvm_label:label cfg;
            down =
              Link.create ~label:(Printf.sprintf "ship:%s" label)
                { rcfg.link with Link.seed = rcfg.link.Link.seed + (2 * i) };
            up =
              Link.create ~label:(Printf.sprintf "ack:%s" label)
                { rcfg.link with Link.seed = rcfg.link.Link.seed + (2 * i) + 1 };
            known_acked = ref 0;
            pendingq = Hashtbl.create 64;
            deferred = None;
            ingested_seq = -1;
            last_acked = 0;
            reack = false;
            acked_hi = 0;
            retries = 0;
            next_retry = 0;
            cut_off = false;
          })
    in
    let t =
      {
        cfg;
        rcfg;
        prim;
        reps;
        shipments = Queue.create ();
        acked_watermark = 0;
        last_broadcast = 0;
        last_broadcast_at = 0;
        degraded = None;
        lag_alarm = None;
        retry_rng = Rng.create (((cfg.Config.seed * 37) + 0x5e91) land max_int);
        stats = Stats.create ();
        stopped = false;
      }
    in
    (* Durable-only snapshot readers on the primary pin at the *quorum*
       watermark, not the primary-local durable ID: a value is readable in
       durable mode only once it would survive a failover (the promotion
       truncates to the quorum prefix).  The thunk is a pure field read,
       as the snapshot pin wait requires. *)
    Engine.set_ro_watermark prim (Some (fun () -> t.acked_watermark));
    t

  (* ------------------------------------------------------------------ *)
  (* Quorum watermark                                                    *)
  (* ------------------------------------------------------------------ *)

  (* acked = min(primary durable, (q-1)-th largest replica durable): the
     transaction is sealed on the primary plus at least q-1 replicas.  The
     Skip_quorum_gate mutant (checker self-test) acknowledges at the
     primary-local seal — exactly the bug the campaign must catch. *)
  let recompute t =
    let d = Engine.durable_id t.prim in
    let wm =
      if t.cfg.Config.fault = Config.Skip_quorum_gate then d
      else begin
        let need = acks_needed t in
        if need = 0 then d
        else begin
          let his = Array.map (fun r -> r.acked_hi) t.reps in
          Array.sort (fun a b -> compare b a) his;
          min d his.(need - 1)
        end
      end
    in
    if wm > t.acked_watermark then begin
      t.acked_watermark <- wm;
      Trace.instant ~cat:"replica" "ack" wm
    end;
    if t.degraded <> None && t.acked_watermark >= d then t.degraded <- None;
    (* Retire batches every replica still being served has acknowledged;
       a cut-off replica no longer pins retention (that is the point of
       cutting it off). *)
    let min_hi =
      Array.fold_left
        (fun acc r -> if r.cut_off then acc else min acc r.acked_hi)
        max_int t.reps
    in
    let rec prune () =
      match Queue.peek_opt t.shipments with
      | Some s when s.sp_hi <= min_hi ->
        ignore (Queue.pop t.shipments);
        prune ()
      | _ -> ()
    in
    prune ()

  let acked t = t.acked_watermark

  (* Read-only snapshot on the primary.  With [~durable:true] the epoch
     pins at the quorum watermark installed above, so every value read is
     failover-safe; beware that under a full partition the watermark
     stalls and a pinned extension can wait until the links heal (writers
     hit the bounded [ack_timeout] instead — snapshot readers running
     alongside a healthy ack daemon never deadlock the scheduler, they
     just wait). *)
  let atomically_ro ?durable t ~thread f =
    Engine.atomically_ro ?durable t.prim ~thread f

  (* ------------------------------------------------------------------ *)
  (* Primary side: ship, ack intake, retransmit                          *)
  (* ------------------------------------------------------------------ *)

  let send_batch t r s =
    Link.send r.down
      (Wire.encode
         (Wire.Batch
            {
              seq = s.sp_seq;
              lo = s.sp_lo;
              hi = s.sp_hi;
              acked = t.acked_watermark;
              payload = s.sp_payload;
            }))

  (* Bounded retention: the retransmit queue may not outgrow
     [max_retained].  When it would, the oldest batches are dropped and
     any replica that still needed them is cut off — retransmission can
     no longer heal it (a real deployment would resync it from a
     checkpoint), and the condition is reported as a sticky
     [Replica_lag]-shaped diagnostic through {!health} instead of
     pinning unbounded primary DRAM. *)
  let enforce_retention t =
    let cap = t.rcfg.max_retained in
    if cap > 0 then
      while Queue.length t.shipments > cap do
        let s = Queue.pop t.shipments in
        Stats.incr t.stats "retention_drops";
        Array.iter
          (fun r ->
            if (not r.cut_off) && r.acked_hi < s.sp_hi then begin
              r.cut_off <- true;
              Stats.incr t.stats "replicas_cut_off";
              Trace.instant ~cat:"replica" "cut_off" r.idx;
              t.lag_alarm <-
                Some
                  (Printf.sprintf
                     "Replica_lag: replica %d cut off at acked=%d — batch [%d,%d] \
                      dropped by the %d-batch retransmit retention; resync required"
                     r.idx r.acked_hi s.sp_lo s.sp_hi cap)
            end)
          t.reps
      done

  let on_ship t (sh : Dudetm.shipment) =
    Trace.span ~cat:"replica" "ship" @@ fun () ->
    recompute t;
    let s =
      {
        sp_seq = sh.Dudetm.ship_seq;
        sp_lo = sh.Dudetm.ship_lo;
        sp_hi = sh.Dudetm.ship_hi;
        sp_payload = sh.Dudetm.ship_payload;
      }
    in
    Queue.push s t.shipments;
    enforce_retention t;
    Stats.incr t.stats "batches_shipped";
    (* A cut-off replica would only hoard the new frames out of order. *)
    Array.iter (fun r -> if not r.cut_off then send_batch t r s) t.reps

  let backoff t k =
    let ceiling = min t.rcfg.retry_cap (t.rcfg.retry_base lsl min k 16) in
    let half = max 1 ((ceiling + 1) / 2) in
    half + Rng.int t.retry_rng half

  (* Resend the lowest unacked batches to every replica whose timer has
     expired, with capped exponential backoff per silent round. *)
  let retransmit t =
    let now = Sched.now () in
    Array.iter
      (fun r ->
        let behind =
          (not r.cut_off)
          &&
          match Queue.peek_opt t.shipments with
          | None -> false
          | Some _ ->
            Queue.fold (fun acc s -> acc || s.sp_hi > r.acked_hi) false t.shipments
        in
        if not behind then begin
          r.retries <- 0;
          r.next_retry <- 0
        end
        else if r.next_retry = 0 then
          (* Arm: give the in-flight copy a full round trip first. *)
          r.next_retry <- now + backoff t 0
        else if now >= r.next_retry then begin
          let sent = ref 0 in
          (try
             Queue.iter
               (fun s ->
                 if s.sp_hi > r.acked_hi then begin
                   if !sent >= t.rcfg.window then raise Exit;
                   send_batch t r s;
                   incr sent
                 end)
               t.shipments
           with Exit -> ());
          Stats.add t.stats "retransmits" !sent;
          Stats.incr t.stats "retransmit_rounds";
          r.retries <- r.retries + 1;
          let b = backoff t r.retries in
          Stats.add t.stats "backoff_cycles" b;
          r.next_retry <- now + b
        end)
      t.reps

  (* Watermark-only broadcast: opens follower replay gates when no data
     frame is pending (the tail of a run), re-sent periodically so a lost
     frame cannot wedge a gate shut. *)
  let broadcast_watermark t =
    let now = Sched.now () in
    let refresh = 8 * t.rcfg.link.Link.latency in
    if
      t.acked_watermark > t.last_broadcast
      || (t.acked_watermark > 0 && now - t.last_broadcast_at >= refresh)
    then begin
      t.last_broadcast <- t.acked_watermark;
      t.last_broadcast_at <- now;
      Stats.incr t.stats "watermark_broadcasts";
      let b = Wire.encode (Wire.Watermark { acked = t.acked_watermark }) in
      Array.iter (fun r -> Link.send r.down b) t.reps
    end

  let ack_loop t =
    let step = max 1 (t.rcfg.link.Link.latency / 2) in
    let rec loop () =
      if not t.stopped then begin
        Array.iter
          (fun r ->
            let rec drain_link () =
              match Link.recv r.up with
              | None -> ()
              | Some b ->
                (match Wire.decode b with
                | Some (Wire.Ack { seq = _; durable }) ->
                  Stats.incr t.stats "acks_received";
                  if durable > r.acked_hi then begin
                    r.acked_hi <- durable;
                    r.retries <- 0;
                    r.next_retry <- 0
                  end
                | Some _ -> ()
                | None -> Stats.incr t.stats "crc_rejected");
                drain_link ()
            in
            drain_link ())
          t.reps;
        recompute t;
        retransmit t;
        broadcast_watermark t;
        Sched.advance step;
        loop ()
      end
    in
    loop ()

  (* ------------------------------------------------------------------ *)
  (* Replica side: ingest in order, ack cumulatively                     *)
  (* ------------------------------------------------------------------ *)

  (* Apply every in-line batch the ring can take right now. *)
  let rec pump t r =
    let d = Engine.durable_id r.eng in
    match r.deferred with
    | Some s when s.sp_hi <= d ->
      (* A duplicate slipped in line; drop it. *)
      r.deferred <- None;
      pump t r
    | Some s ->
      if
        Trace.span ~cat:"replica" "apply" (fun () ->
            Engine.ingest_record r.eng s.sp_payload)
      then begin
        r.deferred <- None;
        if s.sp_seq > r.ingested_seq then r.ingested_seq <- s.sp_seq;
        Stats.incr t.stats "batches_applied";
        pump t r
      end
      (* else: ring full — keep it deferred, retry after Reproduce
         checkpoints and recycles. *)
    | None -> (
      match Hashtbl.find_opt r.pendingq (d + 1) with
      | Some s ->
        Hashtbl.remove r.pendingq (d + 1);
        r.deferred <- Some s;
        pump t r
      | None -> ())

  let on_frame t r b =
    match Wire.decode b with
    | None -> Stats.incr t.stats "crc_rejected"
    | Some (Wire.Watermark { acked }) ->
      if acked > !(r.known_acked) then r.known_acked := acked
    | Some (Wire.Ack _) -> ()
    | Some (Wire.Batch { seq; lo; hi; acked; payload }) ->
      if acked > !(r.known_acked) then r.known_acked := acked;
      let d = Engine.durable_id r.eng in
      if hi <= d then begin
        (* Dedup by batch sequence: already sealed here; re-ack so a lost
           ack cannot retransmit forever. *)
        Stats.incr t.stats "dup_frames";
        r.reack <- true
      end
      else begin
        let s = { sp_seq = seq; sp_lo = lo; sp_hi = hi; sp_payload = payload } in
        if lo > d + 1 then begin
          Stats.incr t.stats "ooo_frames";
          Hashtbl.replace r.pendingq lo s
        end
        else if r.deferred = None then r.deferred <- Some s
        else Hashtbl.replace r.pendingq lo s
      end

  let send_ack r =
    let d = Engine.durable_id r.eng in
    if d <> r.last_acked || r.reack then begin
      r.last_acked <- d;
      r.reack <- false;
      Link.send r.up (Wire.encode (Wire.Ack { seq = r.ingested_seq; durable = d }))
    end

  let net_loop t r =
    let step = max 1 (t.rcfg.link.Link.latency / 2) in
    let rec loop () =
      if not t.stopped then begin
        let rec drain_link () =
          match Link.recv r.down with
          | None -> ()
          | Some b ->
            on_frame t r b;
            drain_link ()
        in
        drain_link ();
        pump t r;
        send_ack r;
        Sched.advance step;
        loop ()
      end
    in
    loop ()

  (* ------------------------------------------------------------------ *)
  (* Lifecycle                                                           *)
  (* ------------------------------------------------------------------ *)

  let start t =
    Engine.start t.prim;
    Engine.set_ship_hook t.prim (Some (on_ship t));
    Array.iter
      (fun r ->
        let cell = r.known_acked in
        Engine.set_replay_gate r.eng (Some (fun tid -> tid <= !cell));
        Engine.start_follower r.eng;
        ignore
          (Sched.spawn ~daemon:true
             (Printf.sprintf "replica-net-%d" r.idx)
             (fun () -> try net_loop t r with Sched.Killed -> ())))
      t.reps;
    ignore
      (Sched.spawn ~daemon:true "replica-ack" (fun () ->
           try ack_loop t with Sched.Killed -> ()))

  (* ------------------------------------------------------------------ *)
  (* Durability waits (bounded; poll — never a wait_until deadlock)      *)
  (* ------------------------------------------------------------------ *)

  let replica_lag t =
    let d = Engine.durable_id t.prim in
    Array.map (fun r -> d - r.acked_hi) t.reps

  let diagnostic t =
    let d = Engine.durable_id t.prim in
    let per =
      Array.to_list
        (Array.map
           (fun r ->
             Printf.sprintf "r%d{acked=%d lag=%d part=%b retries=%d%s}" r.idx r.acked_hi
               (d - r.acked_hi)
               (Link.partitioned r.down || Link.partitioned r.up)
               r.retries
               (if r.cut_off then " CUT" else ""))
           t.reps)
    in
    Printf.sprintf
      "quorum %d/%d unreachable within %d cycles: durable=%d acked=%d outstanding_batches=%d \
       retransmits=%d retransmit_rounds=%d backoff_cycles=%d replicas=[%s]"
      (quorum t)
      (Array.length t.reps + 1)
      t.cfg.Config.ack_timeout d t.acked_watermark (Queue.length t.shipments)
      (Stats.get t.stats "retransmits")
      (Stats.get t.stats "retransmit_rounds")
      (Stats.get t.stats "backoff_cycles")
      (String.concat " " per)

  let degrade t =
    Stats.incr t.stats "degraded_acks";
    let msg = diagnostic t in
    t.degraded <- Some msg;
    Trace.instant ~cat:"replica" "degraded" t.acked_watermark;
    Degraded_quorum msg

  (* Poll the watermark with a bounded budget.  [Sched.wait_until] is off
     the table: "watermark reached OR timeout" is a time-based predicate,
     and when every replica is partitioned nothing else would advance this
     fiber's clock — the classic wait_until deadlock.  Polling by
     [Sched.advance] always makes progress and lets the ack/retransmit
     daemons run underneath. *)
  let poll_acked t tid =
    let deadline = Sched.now () + t.cfg.Config.ack_timeout in
    let step = max 64 (t.rcfg.link.Link.latency / 2) in
    while t.acked_watermark < tid && Sched.now () < deadline do
      Sched.advance (min step (deadline - Sched.now ()))
    done;
    t.acked_watermark >= tid

  let wait_acked t tid =
    if t.acked_watermark >= tid then Quorum
    else begin
      (* The primary's own seal first — identical to the PR 6 wait (and
         bit-for-bit the whole story when K = 1, where no replica ack is
         needed): registering as a durability waiter makes the group-commit
         daemon flush an open batch immediately. *)
      Engine.wait_durable t.prim tid;
      recompute t;
      if t.acked_watermark >= tid then Quorum
      else if poll_acked t tid then Quorum
      else degrade t
    end

  let drain ?(require_quorum = false) t =
    Engine.drain t.prim;
    recompute t;
    let target = Engine.durable_id t.prim in
    if t.acked_watermark >= target || poll_acked t target then Quorum
    else if require_quorum then raise (Replica_lag (diagnostic t))
    else degrade t

  let sync_followers t =
    let target = t.acked_watermark in
    let reachable r = not (Link.partitioned r.down || Link.partitioned r.up) in
    let caught_up r =
      (not (reachable r))
      || (Engine.durable_id r.eng >= target && Engine.applied_id r.eng >= target)
    in
    let deadline = Sched.now () + t.cfg.Config.ack_timeout in
    let step = max 64 (t.rcfg.link.Link.latency / 2) in
    while (not (Array.for_all caught_up t.reps)) && Sched.now () < deadline do
      Sched.advance (min step (deadline - Sched.now ()))
    done

  let stop t =
    ignore (drain t);
    Engine.stop t.prim;
    sync_followers t;
    Array.iter (fun r -> Engine.stop_follower r.eng) t.reps;
    t.stopped <- true

  (* A tripped retention cap is sticky: the cut-off replica stays broken
     (it needs a resync) even after quorum acks catch back up. *)
  let health t =
    match (t.degraded, t.lag_alarm) with
    | Some d, _ -> Degraded d
    | None, Some d -> Degraded d
    | None, None -> Healthy

  let cut_off t = Array.map (fun r -> r.cut_off) t.reps

  let retained t = Queue.length t.shipments

  let set_partitioned t i p =
    let r = t.reps.(i) in
    Link.set_partitioned r.down p;
    Link.set_partitioned r.up p

  (* ------------------------------------------------------------------ *)
  (* Failover                                                            *)
  (* ------------------------------------------------------------------ *)

  type promotion = {
    promoted : int;
    candidates : int array;
    quorum_prefix : int;
    truncated_txs : int;
    report : Dudetm.recovery_report;
  }

  let promote t =
    Trace.span ~cat:"replica" "promote" @@ fun () ->
    (* Power-cut every replica device: promotion recovers from each
       replica's {e local durable prefix}, nothing volatile. *)
    Array.iter (fun r -> Nvm.crash (Engine.nvm r.eng)) t.reps;
    let prepared =
      Array.map (fun r -> Engine.attach_prepare (Engine.config r.eng) (Engine.nvm r.eng)) t.reps
    in
    let candidates = Array.map Engine.prepared_durable prepared in
    let need = acks_needed t in
    let quorum_prefix =
      if need = 0 then Array.fold_left max 0 candidates
      else begin
        let sorted = Array.copy candidates in
        Array.sort (fun a b -> compare b a) sorted;
        sorted.(need - 1)
      end
    in
    (* Promote the longest prefix, truncated to the quorum prefix: a
       replica that ran ahead of the quorum only loses a tail no client
       was ever promised. *)
    let winner = ref 0 in
    Array.iteri (fun i c -> if c > candidates.(!winner) then winner := i) candidates;
    let eng, report =
      Engine.attach_commit ~durable_cut:quorum_prefix prepared.(!winner)
    in
    ( eng,
      {
        promoted = !winner;
        candidates;
        quorum_prefix;
        truncated_txs = candidates.(!winner) - report.Dudetm.durable;
        report;
      } )

  (* ------------------------------------------------------------------ *)
  (* Introspection                                                       *)
  (* ------------------------------------------------------------------ *)

  let primary t = t.prim

  let replica t i = t.reps.(i).eng

  let nreplicas t = Array.length t.reps

  let link_stats t = Array.map (fun r -> (Link.stats r.down, Link.stats r.up)) t.reps

  let stats t = t.stats
end

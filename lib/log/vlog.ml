module Sched = Dudetm_sim.Sched

type t = {
  mutable arr : Log_entry.t array;
  mutable cap : int;
  unbounded : bool;
  mutable head : int;  (* monotone counters; slot = counter mod cap *)
  mutable committed : int;
  mutable tail : int;
  mutable total_appended : int;
  mutable producer_blocks : int;
}

let dummy = Log_entry.Tx_end { tid = 0 }

let create ?(unbounded = false) ~capacity () =
  if capacity < 2 then invalid_arg "Vlog.create: capacity too small";
  {
    arr = Array.make capacity dummy;
    cap = capacity;
    unbounded;
    head = 0;
    committed = 0;
    tail = 0;
    total_appended = 0;
    producer_blocks = 0;
  }

let capacity t = t.cap

let unbounded t = t.unbounded

let length t = t.tail - t.head

let slot t pos = pos mod t.cap

let grow t =
  let ncap = t.cap * 2 in
  let narr = Array.make ncap dummy in
  for pos = t.head to t.tail - 1 do
    narr.(pos mod ncap) <- t.arr.(slot t pos)
  done;
  t.arr <- narr;
  t.cap <- ncap

let push t e =
  t.arr.(slot t t.tail) <- e;
  t.tail <- t.tail + 1;
  t.total_appended <- t.total_appended + 1

let append t e =
  (match e with
  | Log_entry.Tx_end _ -> invalid_arg "Vlog.append: use append_end for end marks"
  | Log_entry.Write _ | Log_entry.Alloc _ | Log_entry.Free _ | Log_entry.Cross _ -> ());
  if length t = t.cap then
    if t.unbounded then grow t
    else if t.tail - t.committed >= t.cap then
      (* The running transaction alone fills the ring: waiting would
         deadlock (the consumer can only take sealed transactions). *)
      invalid_arg "Vlog.append: transaction exceeds the buffer capacity"
    else begin
      t.producer_blocks <- t.producer_blocks + 1;
      Sched.wait_until ~label:"vlog full" (fun () -> length t < t.cap)
    end;
  push t e

let append_end t ~tid =
  if length t = t.cap then
    if t.unbounded then grow t
    else begin
      t.producer_blocks <- t.producer_blocks + 1;
      Sched.wait_until ~label:"vlog full (end mark)" (fun () -> length t < t.cap)
    end;
  push t (Log_entry.Tx_end { tid });
  t.committed <- t.tail

let pop_current_tx t = t.tail <- t.committed

let current_tx_entries t = t.tail - t.committed

let head t = t.head

let committed t = t.committed

let get t pos =
  if pos < t.head || pos >= t.tail then invalid_arg "Vlog.get: position out of window";
  t.arr.(slot t pos)

let consume_to t pos =
  if pos < t.head || pos > t.committed then invalid_arg "Vlog.consume_to: bad position";
  t.head <- pos

let clear t =
  t.head <- 0;
  t.committed <- 0;
  t.tail <- 0

let total_appended t = t.total_appended

let producer_blocks t = t.producer_blocks

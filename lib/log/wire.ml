(* Frame layout (little-endian):

     [0..3]   CRC-32 over bytes [4..len)
     [4]      kind: 1 = Batch, 2 = Ack, 3 = Watermark
     [5..]    kind-specific fields

   Batch:      seq u64 | lo u64 | hi u64 | acked u64 | plen u32 | payload
   Ack:        seq u64 | durable u64
   Watermark:  acked u64 *)

type t =
  | Batch of { seq : int; lo : int; hi : int; acked : int; payload : bytes }
  | Ack of { seq : int; durable : int }
  | Watermark of { acked : int }

let kind_batch = 1
let kind_ack = 2
let kind_watermark = 3

let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)

let seal b =
  let crc = Checksum.crc32 b 4 (Bytes.length b - 4) in
  Bytes.set_int32_le b 0 crc;
  b

let encode = function
  | Batch { seq; lo; hi; acked; payload } ->
    let plen = Bytes.length payload in
    let b = Bytes.create (4 + 1 + 32 + 4 + plen) in
    Bytes.set b 4 (Char.chr kind_batch);
    set_u64 b 5 seq;
    set_u64 b 13 lo;
    set_u64 b 21 hi;
    set_u64 b 29 acked;
    Bytes.set_int32_le b 37 (Int32.of_int plen);
    Bytes.blit payload 0 b 41 plen;
    seal b
  | Ack { seq; durable } ->
    let b = Bytes.create (4 + 1 + 16) in
    Bytes.set b 4 (Char.chr kind_ack);
    set_u64 b 5 seq;
    set_u64 b 13 durable;
    seal b
  | Watermark { acked } ->
    let b = Bytes.create (4 + 1 + 8) in
    Bytes.set b 4 (Char.chr kind_watermark);
    set_u64 b 5 acked;
    seal b

let decode b =
  let len = Bytes.length b in
  if len < 5 then None
  else if Bytes.get_int32_le b 0 <> Checksum.crc32 b 4 (len - 4) then None
  else
    match Char.code (Bytes.get b 4) with
    | k when k = kind_batch ->
      if len < 41 then None
      else begin
        let plen = Int32.to_int (Bytes.get_int32_le b 37) in
        if plen < 0 || len <> 41 + plen then None
        else
          Some
            (Batch
               {
                 seq = get_u64 b 5;
                 lo = get_u64 b 13;
                 hi = get_u64 b 21;
                 acked = get_u64 b 29;
                 payload = Bytes.sub b 41 plen;
               })
      end
    | k when k = kind_ack ->
      if len <> 21 then None else Some (Ack { seq = get_u64 b 5; durable = get_u64 b 13 })
    | k when k = kind_watermark ->
      if len <> 13 then None else Some (Watermark { acked = get_u64 b 5 })
    | _ -> None

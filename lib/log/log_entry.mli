(** Redo-log entries.

    A committed transaction's redo log is the sequence of its [Write]
    entries (address and new value, Algorithm 2's [vlog.AppendEntry])
    followed by a [Tx_end] mark carrying the transaction ID.  Persistent
    allocation events travel in the same stream (Section 3.5's per-thread
    pmalloc/pfree log) so that recovery rebuilds the allocator from exactly
    the durable transactions. *)

type t =
  | Write of { addr : int; value : int64 }
  | Alloc of { off : int; len : int }
  | Free of { off : int; len : int }
  | Tx_end of { tid : int }
  | Cross of { gtid : int; mask : int; tid : int }
      (** Cross-shard fragment seal: this transaction (local id [tid]) is
          one fragment of global transaction [gtid], whose touched shards
          are the set bits of [mask].  Appended just before the fragment's
          [Tx_end]; recovery treats the fragment as replayable only once
          every sibling shard in [mask] holds its own durable seal for
          [gtid]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val encoded_size : t -> int
(** Size of the binary encoding in bytes (tag byte + fields). *)

val write_size : int
(** [encoded_size] of a [Write] — the dominant term in NVM log traffic. *)

val encode_list : t list -> bytes
(** Serialize entries back-to-back (the persistent-log record payload). *)

val decode_list : bytes -> t list
(** Inverse of {!encode_list}.  Raises [Invalid_argument] on malformed
    input (recovery only calls it on checksummed payloads). *)

val tids : t list -> int list
(** Transaction IDs of all [Tx_end] marks, in order of appearance. *)

val cross_seals : t list -> (int * int * int) list
(** [(gtid, mask, tid)] of all [Cross] seals, in order of appearance. *)

val encode_payload : ?compress:bool -> t list -> bytes
(** Serialize entries as a persistent-record payload: a one-byte plain /
    LZ-compressed flag followed by the body.  With [compress] the body is
    LZ-compressed only when that actually shrinks it. *)

val decode_payload : bytes -> t list
(** Inverse of {!encode_payload}; raises [Invalid_argument] on a bad flag
    or malformed body.  Shared by engine recovery and the scrub subsystem
    so every reader of persisted records agrees on the framing. *)

(** Persistent per-thread redo-log region.

    A ring of checksummed records inside the simulated NVM.  A record is a
    group of serialized redo-log entries (one or more transactions) sealed
    by a CRC, so a whole record becomes durable with a {e single} persist
    ordering — the decoupled design's "one persist order per transaction"
    (Sections 3.3, 3.5).  A torn record fails its CRC and recovery discards
    it together with everything after it in this ring.

    Only the head (recycle) cursor is persistent (sealed by its own CRC);
    the tail is rediscovered after a crash by scanning records, validated by
    a per-record sequence number so stale data from previous laps can never
    be mistaken for live records.

    Beyond the torn tail a clean crash can leave, media faults can damage a
    record {e mid-ring} or destroy the header itself.  {!attach_scan}
    tolerates both: it resynchronizes past corrupted records (quarantining
    the damaged bytes and reporting how many sealed records were lost) and
    reformats a ring whose header is unreadable, salvaging a safe next
    sequence number so stale frames are never resurrected. *)

type t

type record = {
  seq : int;  (** per-ring record number, contiguous *)
  payload : bytes;  (** serialized {!Log_entry} list *)
  end_off : int;  (** monotone offset one past this record (for recycling) *)
}

(** Result of a fault-tolerant ring scan. *)
type scan = {
  records : record list;  (** surviving valid records, in seq order *)
  corrupted_records : int;
      (** sealed records lost to mid-ring corruption (gaps in the seq
          sequence bridged by resync), or 1 when the header itself was
          lost *)
  quarantined_lines : int;
      (** distinct device lines covered by corrupted record bytes *)
  header_lost : bool;
      (** the persistent header failed its magic/CRC check and the ring was
          reformatted (every record lost) *)
}

val header_size : int
(** Bytes reserved at the base of the region for the persistent header. *)

val record_overhead : int
(** Bytes of framing per record on top of the payload. *)

val format : Dudetm_nvm.Nvm.t -> base:int -> size:int -> t
(** Initialize an empty ring over [\[base, base+size)] of the device and
    persist its header. *)

val attach : Dudetm_nvm.Nvm.t -> base:int -> size:int -> t * record list
(** Re-open a ring after a crash: reads the persistent head cursor, scans
    and validates records, repositions the tail after the last valid
    record, and returns the surviving records in order.  Raises
    [Invalid_argument] if the header is unreadable (use {!attach_scan} to
    tolerate that). *)

val attach_scan : Dudetm_nvm.Nvm.t -> base:int -> size:int -> t * scan
(** Media-fault-tolerant {!attach}.  A record that fails validation
    mid-ring (CRC mismatch, poisoned line, implausible frame) does not end
    the scan: the scanner searches forward for the next valid frame with a
    later sequence number, quarantines the damaged gap, and continues — so
    one corrupted record loses that record, not the whole ring suffix.  A
    ring whose header fails its magic/CRC check is reformatted with a
    salvaged sequence number ([header_lost = true]). *)

val data_capacity : t -> int

val free_space : t -> int

val used_space : t -> int

val append : ?persist:bool -> t -> bytes -> record
(** Write one record and persist it (single persist ordering).  The caller
    must check {!free_space} ([record_overhead + length]) first; appending
    without space raises [Invalid_argument].  [persist] (default true)
    exists only for the seeded checker-validation mutant
    ({!Dudetm_core.Config.fault}): [false] leaves the record volatile, so a
    durable ID covering it is published before the record's persist
    fence. *)

val recycle_to : t -> end_off:int -> next_seq:int -> unit
(** Advance the persistent head past all records before [end_off]: they
    have been reproduced to their home locations and may be overwritten.
    Persists the header (the only persist ordering Reproduce needs). *)

val head_off : t -> int

val tail_off : t -> int

val next_seq : t -> int

module Nvm = Dudetm_nvm.Nvm

type t = {
  nvm : Nvm.t;
  base : int;
  dcap : int;  (* data-area capacity in bytes *)
  mutable head : int;  (* monotone byte offsets into the data area *)
  mutable tail : int;
  mutable head_seq : int;  (* seq of the record at [head] *)
  mutable seq : int;  (* seq of the next record to append *)
}

type record = { seq : int; payload : bytes; end_off : int }

let header_size = 64

let record_overhead = 24  (* len u64, seq u64, crc u64 *)

let magic = 0x44554445504C4F47L  (* "DUDEPLOG" *)

let data_base t = t.base + header_size

(* Wrapped access: a record may straddle the end of the data area. *)
let write_wrapped t off b =
  let len = Bytes.length b in
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.store_bytes t.nvm (data_base t + s) b
  else begin
    let first = t.dcap - s in
    Nvm.store_bytes t.nvm (data_base t + s) (Bytes.sub b 0 first);
    Nvm.store_bytes t.nvm (data_base t) (Bytes.sub b first (len - first))
  end

let read_wrapped t off len =
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.load_bytes t.nvm (data_base t + s) len
  else begin
    let first = t.dcap - s in
    let b = Bytes.create len in
    Bytes.blit (Nvm.load_bytes t.nvm (data_base t + s) first) 0 b 0 first;
    Bytes.blit (Nvm.load_bytes t.nvm (data_base t) (len - first)) 0 b first (len - first);
    b
  end

let persist_wrapped t off len =
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.persist t.nvm ~off:(data_base t + s) ~len
  else begin
    let first = t.dcap - s in
    Nvm.persist t.nvm ~off:(data_base t + s) ~len:first;
    Nvm.persist t.nvm ~off:(data_base t) ~len:(len - first)
  end

let persist_header t =
  let b = Bytes.create 24 in
  Bytes.set_int64_le b 0 magic;
  Bytes.set_int64_le b 8 (Int64.of_int t.head);
  Bytes.set_int64_le b 16 (Int64.of_int t.head_seq);
  Nvm.store_bytes t.nvm t.base b;
  Nvm.persist t.nvm ~off:t.base ~len:24

let format nvm ~base ~size =
  if size <= header_size + record_overhead then invalid_arg "Plog.format: region too small";
  let t = { nvm; base; dcap = size - header_size; head = 0; tail = 0; head_seq = 0; seq = 0 } in
  persist_header t;
  t

let frame_crc ~len ~seq payload =
  let hdr = Bytes.create 16 in
  Bytes.set_int64_le hdr 0 (Int64.of_int len);
  Bytes.set_int64_le hdr 8 (Int64.of_int seq);
  let c = Checksum.crc32_bytes hdr in
  Checksum.crc32 ~init:c payload 0 (Bytes.length payload)

let attach nvm ~base ~size =
  if size <= header_size + record_overhead then invalid_arg "Plog.attach: region too small";
  let dcap = size - header_size in
  if Nvm.load_u64 nvm base <> magic then invalid_arg "Plog.attach: bad magic";
  let head = Int64.to_int (Nvm.load_u64 nvm (base + 8)) in
  let head_seq = Int64.to_int (Nvm.load_u64 nvm (base + 16)) in
  let t = { nvm; base; dcap; head; tail = head; head_seq; seq = head_seq } in
  let records = ref [] in
  let continue = ref true in
  while !continue do
    let scanned = t.tail - t.head in
    if scanned + record_overhead > t.dcap then continue := false
    else begin
      let frame = read_wrapped t t.tail record_overhead in
      let len = Int64.to_int (Bytes.get_int64_le frame 0) in
      let seq = Int64.to_int (Bytes.get_int64_le frame 8) in
      let crc = Int64.to_int32 (Bytes.get_int64_le frame 16) in
      if len < 0 || scanned + record_overhead + len > t.dcap || seq <> t.seq then
        continue := false
      else begin
        let payload = read_wrapped t (t.tail + record_overhead) len in
        if frame_crc ~len ~seq payload <> crc then continue := false
        else begin
          let end_off = t.tail + record_overhead + len in
          records := { seq; payload; end_off } :: !records;
          t.tail <- end_off;
          t.seq <- seq + 1
        end
      end
    end
  done;
  (t, List.rev !records)

let data_capacity t = t.dcap

let used_space t = t.tail - t.head

let free_space t = t.dcap - used_space t

let append ?(persist = true) t payload =
  let len = Bytes.length payload in
  let total = record_overhead + len in
  if total > free_space t then invalid_arg "Plog.append: no space";
  let crc = frame_crc ~len ~seq:t.seq payload in
  let frame = Bytes.create total in
  Bytes.set_int64_le frame 0 (Int64.of_int len);
  Bytes.set_int64_le frame 8 (Int64.of_int t.seq);
  Bytes.set_int64_le frame 16 (Int64.of_int32 crc);
  Bytes.blit payload 0 frame record_overhead len;
  write_wrapped t t.tail frame;
  (* The CRC seals the record: one persist ordering makes the whole group
     of transactions durable, torn writes fail validation on recovery.
     [persist:false] skips that fence and exists only for the seeded
     checker-validation mutant (Config.Early_durable_publish). *)
  if persist then persist_wrapped t t.tail total;
  let r = { seq = t.seq; payload; end_off = t.tail + total } in
  t.tail <- t.tail + total;
  t.seq <- t.seq + 1;
  r

let recycle_to t ~end_off ~next_seq =
  if end_off < t.head || end_off > t.tail then invalid_arg "Plog.recycle_to: bad offset";
  t.head <- end_off;
  t.head_seq <- next_seq;
  persist_header t

let head_off t = t.head

let tail_off t = t.tail

let next_seq (t : t) = t.seq

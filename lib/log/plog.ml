module Nvm = Dudetm_nvm.Nvm
module Trace = Dudetm_trace.Trace

type t = {
  nvm : Nvm.t;
  base : int;
  dcap : int;  (* data-area capacity in bytes *)
  mutable head : int;  (* monotone byte offsets into the data area *)
  mutable tail : int;
  mutable head_seq : int;  (* seq of the record at [head] *)
  mutable seq : int;  (* seq of the next record to append *)
}

type record = { seq : int; payload : bytes; end_off : int }

type scan = {
  records : record list;
  corrupted_records : int;
  quarantined_lines : int;
  header_lost : bool;
}

let header_size = 64

let record_overhead = 24  (* len u64, seq u64, crc u64 *)

let magic = 0x44554445504C4F47L  (* "DUDEPLOG" *)

let data_base t = t.base + header_size

(* Wrapped access: a record may straddle the end of the data area. *)
let write_wrapped t off b =
  let len = Bytes.length b in
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.store_bytes t.nvm (data_base t + s) b
  else begin
    let first = t.dcap - s in
    Nvm.store_bytes t.nvm (data_base t + s) (Bytes.sub b 0 first);
    Nvm.store_bytes t.nvm (data_base t) (Bytes.sub b first (len - first))
  end

let read_wrapped t off len =
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.load_bytes t.nvm (data_base t + s) len
  else begin
    let first = t.dcap - s in
    let b = Bytes.create len in
    Bytes.blit (Nvm.load_bytes t.nvm (data_base t + s) first) 0 b 0 first;
    Bytes.blit (Nvm.load_bytes t.nvm (data_base t) (len - first)) 0 b first (len - first);
    b
  end

let persist_wrapped t off len =
  let s = off mod t.dcap in
  if s + len <= t.dcap then Nvm.persist t.nvm ~off:(data_base t + s) ~len
  else begin
    let first = t.dcap - s in
    Nvm.persist t.nvm ~off:(data_base t + s) ~len:first;
    Nvm.persist t.nvm ~off:(data_base t) ~len:(len - first)
  end

(* Header layout: magic u64, head u64, head_seq u64, crc u64 (over the
   first 24 bytes) — the CRC lets recovery distinguish a corrupted header
   from an unformatted region. *)
let persist_header t =
  let b = Bytes.create 32 in
  Bytes.set_int64_le b 0 magic;
  Bytes.set_int64_le b 8 (Int64.of_int t.head);
  Bytes.set_int64_le b 16 (Int64.of_int t.head_seq);
  Bytes.set_int64_le b 24 (Int64.of_int32 (Checksum.crc32 b 0 24));
  Nvm.store_bytes t.nvm t.base b;
  Nvm.persist t.nvm ~off:t.base ~len:32

let format nvm ~base ~size =
  if size <= header_size + record_overhead then invalid_arg "Plog.format: region too small";
  let t = { nvm; base; dcap = size - header_size; head = 0; tail = 0; head_seq = 0; seq = 0 } in
  persist_header t;
  t

let frame_crc ~len ~seq payload =
  let hdr = Bytes.create 16 in
  Bytes.set_int64_le hdr 0 (Int64.of_int len);
  Bytes.set_int64_le hdr 8 (Int64.of_int seq);
  let c = Checksum.crc32_bytes hdr in
  Checksum.crc32 ~init:c payload 0 (Bytes.length payload)

(* How far past a corrupted record the scan searches for the next valid
   frame, in records: bounds the seq gap a resync will accept so stale
   frames from long-dead laps are never mistaken for live records. *)
let max_resync_gap = 64

(* Validate a candidate frame at monotone offset [off]: its length must fit
   the remaining ring space, its seq must sit in (last_seq, last_seq +
   max_resync_gap], and the payload CRC must match.  Reads that hit
   poisoned lines count as invalid. *)
let probe_frame t ~off ~min_seq =
  let scanned = off - t.head in
  if scanned + record_overhead > t.dcap then None
  else
    match read_wrapped t off record_overhead with
    | exception Nvm.Media_error _ -> None
    | frame ->
      let len = Int64.to_int (Bytes.get_int64_le frame 0) in
      let seq = Int64.to_int (Bytes.get_int64_le frame 8) in
      let crc = Int64.to_int32 (Bytes.get_int64_le frame 16) in
      if
        len < 0
        || scanned + record_overhead + len > t.dcap
        || seq < min_seq
        || seq > min_seq + max_resync_gap
      then None
      else begin
        match read_wrapped t (off + record_overhead) len with
        | exception Nvm.Media_error _ -> None
        | payload ->
          if frame_crc ~len ~seq payload <> crc then None
          else Some { seq; payload; end_off = off + record_overhead + len }
      end

(* Distinct device lines covered by monotone data-area range [lo, hi). *)
let lines_of_range t ~lo ~hi acc =
  let ls = Nvm.line_size t.nvm in
  let add acc addr_lo addr_hi =
    let rec go l acc = if l * ls >= addr_hi then acc else go (l + 1) ((l, ()) :: acc) in
    go (addr_lo / ls) acc
  in
  let len = hi - lo in
  if len <= 0 then acc
  else begin
    let s = lo mod t.dcap in
    if s + len <= t.dcap then add acc (data_base t + s) (data_base t + s + len)
    else
      let first = t.dcap - s in
      add (add acc (data_base t + s) (data_base t + s + first)) (data_base t) (data_base t + len - first)
  end

let read_header nvm base =
  match Nvm.load_bytes nvm base 32 with
  | exception Nvm.Media_error _ -> None
  | b ->
    if Bytes.get_int64_le b 0 <> magic then None
    else if Int64.to_int32 (Bytes.get_int64_le b 24) <> Checksum.crc32 b 0 24 then None
    else
      Some (Int64.to_int (Bytes.get_int64_le b 8), Int64.to_int (Bytes.get_int64_le b 16))

(* A lost header loses the head cursor, and with it every record in the
   ring.  To keep the ring usable we reformat it — but new appends must
   never collide with stale, still-intact frames from before the loss, so
   the fresh seq starts past the largest plausible seq found anywhere in
   the data area. *)
let salvage_next_seq t =
  let best = ref 0 in
  for off = 0 to t.dcap - record_overhead do
    match read_wrapped t off record_overhead with
    | exception Nvm.Media_error _ -> ()
    | frame ->
      let len = Int64.to_int (Bytes.get_int64_le frame 0) in
      let seq = Int64.to_int (Bytes.get_int64_le frame 8) in
      let crc = Int64.to_int32 (Bytes.get_int64_le frame 16) in
      if len >= 0 && len <= t.dcap - record_overhead && seq > !best then begin
        match read_wrapped t (off + record_overhead) len with
        | exception Nvm.Media_error _ -> ()
        | payload -> if frame_crc ~len ~seq payload = crc then best := seq
      end
  done;
  !best + 1

let attach_scan nvm ~base ~size =
  if size <= header_size + record_overhead then invalid_arg "Plog.attach: region too small";
  let dcap = size - header_size in
  match read_header nvm base with
  | None ->
    (* Header corrupt or poisoned: every record is unreachable.  Reformat
       with a seq jump past any stale frame so the ring stays usable. *)
    let t = { nvm; base; dcap; head = 0; tail = 0; head_seq = 0; seq = 0 } in
    let next = salvage_next_seq t in
    t.head_seq <- next;
    t.seq <- next;
    persist_header t;
    (t, { records = []; corrupted_records = 1; quarantined_lines = 0; header_lost = true })
  | Some (head, head_seq) ->
    let t = { nvm; base; dcap; head; tail = head; head_seq; seq = head_seq } in
    let records = ref [] in
    let corrupted = ref 0 in
    let qlines = ref [] in
    let continue = ref true in
    while !continue do
      match probe_frame t ~off:t.tail ~min_seq:t.seq with
      | Some r ->
        records := r :: !records;
        t.tail <- r.end_off;
        t.seq <- r.seq + 1
      | None ->
        (* Either the torn tail of the ring, or a corrupted record
           mid-ring.  Search forward for the next valid frame with a later
           seq; finding one proves the invalid bytes were a once-sealed
           record (or records) damaged in place — quarantine the gap. *)
        let found = ref None in
        let off = ref (t.tail + 1) in
        let limit = t.head + t.dcap - record_overhead in
        while !found = None && !off <= limit do
          (match probe_frame t ~off:!off ~min_seq:(t.seq + 1) with
          | Some r -> found := Some (!off, r)
          | None -> ());
          incr off
        done;
        (match !found with
        | None -> continue := false
        | Some (at, r) ->
          corrupted := !corrupted + (r.seq - t.seq);
          qlines := lines_of_range t ~lo:t.tail ~hi:at !qlines;
          records := r :: !records;
          t.tail <- r.end_off;
          t.seq <- r.seq + 1)
    done;
    let quarantined_lines =
      let h = Hashtbl.create 16 in
      List.iter (fun (l, ()) -> Hashtbl.replace h l ()) !qlines;
      Hashtbl.length h
    in
    ( t,
      {
        records = List.rev !records;
        corrupted_records = !corrupted;
        quarantined_lines;
        header_lost = false;
      } )

let attach nvm ~base ~size =
  (* Refuse an unreadable header WITHOUT the reformatting side effect of
     {!attach_scan}: a caller that wants the strict contract must not find
     the ring silently re-initialized under the raised exception. *)
  if size <= header_size + record_overhead then invalid_arg "Plog.attach: region too small";
  if read_header nvm base = None then invalid_arg "Plog.attach: bad magic";
  let t, scan = attach_scan nvm ~base ~size in
  (t, scan.records)

let data_capacity t = t.dcap

let used_space t = t.tail - t.head

let free_space t = t.dcap - used_space t

let append ?(persist = true) t payload =
  let len = Bytes.length payload in
  let total = record_overhead + len in
  if total > free_space t then invalid_arg "Plog.append: no space";
  let crc = frame_crc ~len ~seq:t.seq payload in
  let frame = Bytes.create total in
  Bytes.set_int64_le frame 0 (Int64.of_int len);
  Bytes.set_int64_le frame 8 (Int64.of_int t.seq);
  Bytes.set_int64_le frame 16 (Int64.of_int32 crc);
  Bytes.blit payload 0 frame record_overhead len;
  write_wrapped t t.tail frame;
  (* The CRC seals the record: one persist ordering makes the whole group
     of transactions durable, torn writes fail validation on recovery.
     [persist:false] skips that fence and exists only for the seeded
     checker-validation mutant (Config.Early_durable_publish). *)
  if persist then persist_wrapped t t.tail total;
  let r = { seq = t.seq; payload; end_off = t.tail + total } in
  t.tail <- t.tail + total;
  t.seq <- t.seq + 1;
  Trace.instant ~cat:"plog" "append" total;
  Trace.counter ~cat:"plog" "used" (used_space t);
  r

let recycle_to t ~end_off ~next_seq =
  if end_off < t.head || end_off > t.tail then invalid_arg "Plog.recycle_to: bad offset";
  t.head <- end_off;
  t.head_seq <- next_seq;
  persist_header t;
  Trace.instant ~cat:"plog" "recycle" end_off;
  Trace.counter ~cat:"plog" "used" (used_space t)

let head_off t = t.head

let tail_off t = t.tail

let next_seq (t : t) = t.seq

type stats = {
  writes_in : int;
  writes_out : int;
  entries_in : int;
  entries_out : int;
}

let saved_fraction s =
  if s.writes_in = 0 then 0.0
  else 1.0 -. (float_of_int s.writes_out /. float_of_int s.writes_in)

(* Incremental builder: one open batch.  The hash table holds the
   last-written value per address; [order] remembers first-occurrence
   address order so sealing is deterministic.  Sealing drains the builder,
   so one builder is reused across consecutive batches — each seal is
   equivalent to [combine] over exactly the entries fed since the previous
   seal, which is what makes an arbitrary batch partition of a log prefix
   compose to the same replayed state as one monolithic combine. *)
type builder = {
  last_value : (int, int64) Hashtbl.t;
  mutable order : int list;  (* reversed first-occurrence order *)
  mutable allocs : Log_entry.t list;  (* reversed *)
  mutable ends : Log_entry.t list;  (* reversed *)
  mutable writes_in : int;
  mutable entries_in : int;
}

let builder () =
  {
    last_value = Hashtbl.create 256;
    order = [];
    allocs = [];
    ends = [];
    writes_in = 0;
    entries_in = 0;
  }

let pending b = b.entries_in

let feed b e =
  b.entries_in <- b.entries_in + 1;
  match e with
  | Log_entry.Write { addr; value } ->
    b.writes_in <- b.writes_in + 1;
    if not (Hashtbl.mem b.last_value addr) then b.order <- addr :: b.order;
    Hashtbl.replace b.last_value addr value
  | Log_entry.Alloc _ | Log_entry.Free _ | Log_entry.Cross _ ->
    b.allocs <- e :: b.allocs
  | Log_entry.Tx_end _ -> b.ends <- e :: b.ends

let feed_list b es = List.iter (feed b) es

let seal b =
  let writes =
    List.rev_map
      (fun addr -> Log_entry.Write { addr; value = Hashtbl.find b.last_value addr })
      b.order
  in
  let combined = writes @ List.rev b.allocs @ List.rev b.ends in
  let stats =
    {
      writes_in = b.writes_in;
      writes_out = List.length writes;
      entries_in = b.entries_in;
      entries_out = List.length combined;
    }
  in
  Hashtbl.reset b.last_value;
  b.order <- [];
  b.allocs <- [];
  b.ends <- [];
  b.writes_in <- 0;
  b.entries_in <- 0;
  (combined, stats)

let combine group =
  let b = builder () in
  feed_list b group;
  seal b

type stats = {
  writes_in : int;
  writes_out : int;
  entries_in : int;
  entries_out : int;
}

let saved_fraction s =
  if s.writes_in = 0 then 0.0
  else 1.0 -. (float_of_int s.writes_out /. float_of_int s.writes_in)

let combine group =
  let last_value : (int, int64) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let allocs = ref [] in
  let ends = ref [] in
  let writes_in = ref 0 in
  let entries_in = ref 0 in
  List.iter
    (fun e ->
      incr entries_in;
      match e with
      | Log_entry.Write { addr; value } ->
        incr writes_in;
        if not (Hashtbl.mem last_value addr) then order := addr :: !order;
        Hashtbl.replace last_value addr value
      | Log_entry.Alloc _ | Log_entry.Free _ | Log_entry.Cross _ -> allocs := e :: !allocs
      | Log_entry.Tx_end _ -> ends := e :: !ends)
    group;
  let writes =
    List.rev_map
      (fun addr -> Log_entry.Write { addr; value = Hashtbl.find last_value addr })
      !order
  in
  let combined = writes @ List.rev !allocs @ List.rev !ends in
  let stats =
    {
      writes_in = !writes_in;
      writes_out = List.length writes;
      entries_in = !entries_in;
      entries_out = List.length combined;
    }
  in
  (combined, stats)

(** Cross-transaction write combination (Section 3.3, Figure 3).

    Within a group of consecutive committed transactions that is flushed
    atomically, only the last write to each address must reach the
    persistent log: earlier writes are superseded.  The Persist thread
    inserts group entries into a hash table in transaction order, letting
    later entries overwrite earlier ones — exactly the paper's algorithm.

    Allocation events and end marks are preserved: recovery needs every
    transaction ID and every pmalloc/pfree of the group. *)

type stats = {
  writes_in : int;
  writes_out : int;
  entries_in : int;
  entries_out : int;
}

val saved_fraction : stats -> float
(** Fraction of write entries eliminated, [1 - out/in] (0 if no writes). *)

val combine : Log_entry.t list -> Log_entry.t list * stats
(** [combine group] returns the combined entry list — deduplicated writes
    (first-occurrence address order, each carrying its final value),
    allocation events in original order, then all end marks — plus
    statistics.  Replaying the result atomically is state-equivalent to
    replaying [group]. *)

(** {1 Incremental per-batch combination}

    Group commit feeds committed entries into a builder as they arrive and
    seals one batch at a time, so the combine work for batch [k+1] can run
    while batch [k]'s NVM transfer is still in flight.  Sealing drains the
    builder; the sequence of sealed batches replays (in order) to exactly
    the state one monolithic [combine] over the concatenation would
    produce, because last-write-wins within a batch composes with
    replay-in-order across batches. *)

type builder

val builder : unit -> builder
(** A fresh builder with an empty open batch. *)

val feed : builder -> Log_entry.t -> unit
(** Add one entry to the open batch. *)

val feed_list : builder -> Log_entry.t list -> unit

val pending : builder -> int
(** Entries fed into the open batch since the last {!seal}. *)

val seal : builder -> Log_entry.t list * stats
(** Close the open batch: returns the same result [combine] would on the
    fed entries, and resets the builder for the next batch. *)

type t =
  | Write of { addr : int; value : int64 }
  | Alloc of { off : int; len : int }
  | Free of { off : int; len : int }
  | Tx_end of { tid : int }
  | Cross of { gtid : int; mask : int; tid : int }

let pp ppf = function
  | Write { addr; value } -> Format.fprintf ppf "W[0x%x]=%Ld" addr value
  | Alloc { off; len } -> Format.fprintf ppf "A[0x%x,+%d]" off len
  | Free { off; len } -> Format.fprintf ppf "F[0x%x,+%d]" off len
  | Tx_end { tid } -> Format.fprintf ppf "End(%d)" tid
  | Cross { gtid; mask; tid } -> Format.fprintf ppf "X(g%d,m0x%x,t%d)" gtid mask tid

let equal a b = a = b

let encoded_size = function
  | Write _ -> 17
  | Alloc _ | Free _ -> 17
  | Tx_end _ -> 9
  | Cross _ -> 25

let write_size = 17

let encode_into buf pos = function
  | Write { addr; value } ->
    Bytes.set buf pos 'W';
    Bytes.set_int64_le buf (pos + 1) (Int64.of_int addr);
    Bytes.set_int64_le buf (pos + 9) value;
    pos + 17
  | Alloc { off; len } ->
    Bytes.set buf pos 'A';
    Bytes.set_int64_le buf (pos + 1) (Int64.of_int off);
    Bytes.set_int64_le buf (pos + 9) (Int64.of_int len);
    pos + 17
  | Free { off; len } ->
    Bytes.set buf pos 'F';
    Bytes.set_int64_le buf (pos + 1) (Int64.of_int off);
    Bytes.set_int64_le buf (pos + 9) (Int64.of_int len);
    pos + 17
  | Tx_end { tid } ->
    Bytes.set buf pos 'E';
    Bytes.set_int64_le buf (pos + 1) (Int64.of_int tid);
    pos + 9
  | Cross { gtid; mask; tid } ->
    Bytes.set buf pos 'X';
    Bytes.set_int64_le buf (pos + 1) (Int64.of_int gtid);
    Bytes.set_int64_le buf (pos + 9) (Int64.of_int mask);
    Bytes.set_int64_le buf (pos + 17) (Int64.of_int tid);
    pos + 25

let encode_list entries =
  let total = List.fold_left (fun acc e -> acc + encoded_size e) 0 entries in
  let buf = Bytes.create total in
  let pos = List.fold_left (fun pos e -> encode_into buf pos e) 0 entries in
  assert (pos = total);
  buf

let decode_list buf =
  let n = Bytes.length buf in
  let u64 pos = Int64.to_int (Bytes.get_int64_le buf pos) in
  let rec go pos acc =
    if pos = n then List.rev acc
    else if pos > n then invalid_arg "Log_entry.decode_list: truncated entry"
    else
      match Bytes.get buf pos with
      | 'W' ->
        if pos + 17 > n then invalid_arg "Log_entry.decode_list: truncated Write";
        go (pos + 17) (Write { addr = u64 (pos + 1); value = Bytes.get_int64_le buf (pos + 9) } :: acc)
      | 'A' ->
        if pos + 17 > n then invalid_arg "Log_entry.decode_list: truncated Alloc";
        go (pos + 17) (Alloc { off = u64 (pos + 1); len = u64 (pos + 9) } :: acc)
      | 'F' ->
        if pos + 17 > n then invalid_arg "Log_entry.decode_list: truncated Free";
        go (pos + 17) (Free { off = u64 (pos + 1); len = u64 (pos + 9) } :: acc)
      | 'E' ->
        if pos + 9 > n then invalid_arg "Log_entry.decode_list: truncated Tx_end";
        go (pos + 9) (Tx_end { tid = u64 (pos + 1) } :: acc)
      | 'X' ->
        if pos + 25 > n then invalid_arg "Log_entry.decode_list: truncated Cross";
        go (pos + 25)
          (Cross { gtid = u64 (pos + 1); mask = u64 (pos + 9); tid = u64 (pos + 17) } :: acc)
      | c -> invalid_arg (Printf.sprintf "Log_entry.decode_list: bad tag %C" c)
  in
  go 0 []

let tids entries =
  List.filter_map (function Tx_end { tid } -> Some tid | _ -> None) entries

let cross_seals entries =
  List.filter_map
    (function Cross { gtid; mask; tid } -> Some (gtid, mask, tid) | _ -> None)
    entries

(* Record-payload framing shared by the engine's Persist step and every
   reader of persisted records (recovery, scrub): one flag byte marking the
   body as plain or LZ-compressed, then the serialized entries. *)
let flag_plain = 'P'

let flag_compressed = 'C'

let encode_payload ?(compress = false) entries =
  let body = encode_list entries in
  if compress then begin
    let comp = Lz.compress body in
    if Bytes.length comp < Bytes.length body then
      Bytes.cat (Bytes.make 1 flag_compressed) comp
    else Bytes.cat (Bytes.make 1 flag_plain) body
  end
  else Bytes.cat (Bytes.make 1 flag_plain) body

let decode_payload payload =
  if Bytes.length payload < 1 then invalid_arg "Log_entry.decode_payload: empty payload";
  let body = Bytes.sub payload 1 (Bytes.length payload - 1) in
  match Bytes.get payload 0 with
  | c when c = flag_plain -> decode_list body
  | c when c = flag_compressed -> decode_list (Lz.decompress body)
  | c -> invalid_arg (Printf.sprintf "Log_entry.decode_payload: bad flag %C" c)

(** Replication wire frames ([lib/replica]).

    The unit of replication is the PR 6 group-commit batch: the exact
    payload bytes the primary's Persist daemon sealed into one ring-0
    record, carried verbatim inside a [Batch] frame keyed by the record's
    ring sequence number.  Every frame is CRC-32 sealed end to end, so a
    link-corrupted frame is {e detected and dropped} by {!decode} (the
    retransmit timer recovers it) rather than ever reaching a replica's
    ring.

    Frames also piggyback the cluster's quorum-acknowledged watermark
    ([acked]): a follower's Reproduce daemon replays only transactions at
    or below the highest watermark it has seen, which keeps its checkpoint
    floor below any legal promotion-time truncation. *)

type t =
  | Batch of {
      seq : int;  (** primary ring-0 record sequence: dedup/retransmit key *)
      lo : int;  (** first transaction ID sealed in the record *)
      hi : int;  (** last transaction ID sealed in the record *)
      acked : int;  (** cluster quorum-acked watermark at send time *)
      payload : bytes;  (** the sealed record payload, byte-identical *)
    }
  | Ack of {
      seq : int;  (** cumulative: every record with sequence ≤ [seq] is
                      sealed on the sender's device *)
      durable : int;  (** the replica's local durable transaction ID *)
    }
  | Watermark of { acked : int }
      (** watermark-only broadcast: lets followers open their replay gate
          when no data frame is pending (e.g. the tail of a run) *)

val encode : t -> bytes
(** Serialize with a leading CRC-32 over everything that follows. *)

val decode : bytes -> t option
(** [None] on a short, malformed or CRC-mismatching buffer — corruption is
    detected, never delivered. *)

(** Offline media scrub and repair.

    Run {e after} a crash and {e before} {!Dudetm_core.Dudetm.Make.attach}:
    engine recovery recycles every log ring, destroying the still-live
    records this pass needs for repair.  The scrub walks the whole device:

    - {b Poison}: every poisoned (uncorrectable) line is cleared by
      rewriting it with zeros; whether the lost content is reconstructible
      is decided by the audits below.
    - {b Checkpoint}: both slots are validated; a damaged slot is rewritten
      from the survivor ({!Dudetm_core.Checkpoint.scrub}).
    - {b Log rings}: the fault-tolerant scan quarantines mid-ring damage
      and reformats rings with unreadable headers (with a salvaged
      sequence number), reporting every sealed record lost.
    - {b Heap extents}: each extent is re-verified against the persistent
      CRC directory.  A mismatching extent covered by still-live log
      records is repaired by replaying their writes and resealed; one with
      no live coverage is an unreconstructible loss, reported in
      [bad_extents] — corruption is never silently served.
    - {b Stuck lines}: repair writes are read back from the persisted
      image; a line that kept its old content is remapped via the
      persistent bad-line table (optionally, [probe_stuck] write-probes
      every heap line).

    Repairs issue persist orderings, which advance the simulated clock
    (like engine recovery itself, the pass may run inside or outside
    {!Dudetm_sim.Sched.run}). *)

type report = {
  ckpt : [ `Ok | `Repaired | `Degraded | `Fatal ];
      (** checkpoint-slot audit; [`Fatal] means neither slot validates and
          the instance cannot recover (extent audit is skipped) *)
  poison_cleared : int;  (** poisoned lines rewritten (device-wide) *)
  extents_checked : int;
  extents_ok : int;
  extents_repaired : int;  (** mismatches fixed by live-record replay *)
  bad_extents : int list;
      (** extents whose checkpointed content is lost: they mismatch the
          CRC directory and no live record covers them *)
  stuck_remapped : int;  (** lines newly recorded in the bad-line table *)
  badline_table_full : bool;
  ring_corrupted_records : int;
  ring_quarantined_lines : int;
  rings_reformatted : int;  (** rings whose header was lost *)
}

val scrub : ?repair:bool -> ?probe_stuck:bool -> Dudetm_core.Config.t -> Dudetm_nvm.Nvm.t -> report
(** [scrub cfg nvm] audits (and with [repair], default true, repairs) the
    device.  [repair:false] only reports — except that rings with
    unreadable headers are still reformatted, since nothing can be read
    from them either way.  [probe_stuck] (default false) adds a write-probe
    sweep of every heap line to find stuck lines that no repair write
    happens to touch. *)

val clean : report -> bool
(** No fault of any kind was found or repaired. *)

val pp_report : Format.formatter -> report -> unit

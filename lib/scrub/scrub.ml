module Nvm = Dudetm_nvm.Nvm
module Plog = Dudetm_log.Plog
module Log_entry = Dudetm_log.Log_entry
module Config = Dudetm_core.Config
module Checkpoint = Dudetm_core.Checkpoint
module Crcdir = Dudetm_core.Crcdir
module Badline = Dudetm_core.Badline
module Rjournal = Dudetm_core.Rjournal
module Trace = Dudetm_trace.Trace

type report = {
  ckpt : [ `Ok | `Repaired | `Degraded | `Fatal ];
  poison_cleared : int;
  extents_checked : int;
  extents_ok : int;
  extents_repaired : int;
  bad_extents : int list;
  stuck_remapped : int;
  badline_table_full : bool;
  ring_corrupted_records : int;
  ring_quarantined_lines : int;
  rings_reformatted : int;
}

let pp_report ppf r =
  let ckpt =
    match r.ckpt with
    | `Ok -> "ok"
    | `Repaired -> "repaired"
    | `Degraded -> "degraded"
    | `Fatal -> "FATAL"
  in
  Format.fprintf ppf
    "checkpoint:%s poison_cleared:%d extents:%d/%d ok, %d repaired, %d unrepairable%s@ \
     stuck_remapped:%d%s rings: %d corrupted records, %d quarantined lines, %d reformatted"
    ckpt r.poison_cleared r.extents_ok r.extents_checked r.extents_repaired
    (List.length r.bad_extents)
    (match r.bad_extents with
    | [] -> ""
    | l -> " [" ^ String.concat "," (List.map string_of_int l) ^ "]")
    r.stuck_remapped
    (if r.badline_table_full then " (bad-line table FULL)" else "")
    r.ring_corrupted_records r.ring_quarantined_lines r.rings_reformatted

let clean r =
  r.ckpt = `Ok && r.poison_cleared = 0 && r.extents_repaired = 0 && r.bad_extents = []
  && r.stuck_remapped = 0 && r.ring_corrupted_records = 0 && r.rings_reformatted = 0

(* Zero every poisoned line and flush it: the model for clearing an
   uncorrectable location by writing fresh data over it.  The zeros are
   almost certainly wrong content — the extent audit below decides whether
   live log records can reconstruct it. *)
let clear_poison nvm =
  let ls = Nvm.line_size nvm in
  let lines = Nvm.poisoned_lines nvm in
  List.iter
    (fun l ->
      Nvm.store_bytes nvm (l * ls) (Bytes.make ls '\000');
      Nvm.persist nvm ~off:(l * ls) ~len:ls)
    lines;
  List.length lines

(* Replay items from the surviving ring records, filtered exactly like
   engine recovery: keep (lo, hi] ranges extending the checkpoint
   contiguously up to the recomputed durable ID. *)
let live_items cfg scans ~ckpt_upto =
  let all_items = ref [] in
  let all_tids = Hashtbl.create 256 in
  Array.iter
    (fun (scan : Plog.scan) ->
      List.iter
        (fun (record : Plog.record) ->
          let entries = Log_entry.decode_payload record.Plog.payload in
          let tids = Log_entry.tids entries in
          List.iter (fun tid -> Hashtbl.replace all_tids tid ()) tids;
          match tids with
          | [] -> ()
          | first :: _ ->
            if cfg.Config.combine then begin
              let hi = List.fold_left max first tids in
              all_items := (first, hi, entries) :: !all_items
            end
            else begin
              (* split per transaction *)
              let cur = ref [] in
              List.iter
                (fun e ->
                  cur := e :: !cur;
                  match e with
                  | Log_entry.Tx_end { tid } ->
                    all_items := (tid, tid, List.rev !cur) :: !all_items;
                    cur := []
                  | _ -> ())
                entries
            end)
        scan.Plog.records)
    scans;
  let d = ref ckpt_upto in
  while Hashtbl.mem all_tids (!d + 1) do
    incr d
  done;
  List.filter (fun (lo, hi, _) -> lo > ckpt_upto && hi <= !d) (List.sort compare !all_items)

(* Per-extent live writes: addr -> value maps in replay order (later
   transactions win), keyed by the extent each write lands in. *)
let live_writes_by_extent cfg items =
  let by_extent : (int, (int * int64) list ref) Hashtbl.t = Hashtbl.create 64 in
  let add extent w =
    match Hashtbl.find_opt by_extent extent with
    | Some l -> l := w :: !l
    | None -> Hashtbl.add by_extent extent (ref [ w ])
  in
  List.iter
    (fun (_, _, entries) ->
      List.iter
        (fun e ->
          match e with
          | Log_entry.Write { addr; value } ->
            add (addr / cfg.Config.crc_extent) (addr, value);
            if (addr + 7) / cfg.Config.crc_extent <> addr / cfg.Config.crc_extent then
              add ((addr + 7) / cfg.Config.crc_extent) (addr, value)
          | _ -> ())
        entries)
    items;
  by_extent

(* After a persist, a stuck heap line silently kept its old content; catch
   it by reading the written word back from the persisted image and remap
   the line in the bad-line table. *)
let check_written_back nvm badlines writes ~stuck_remapped ~table_full =
  (* Only the last write per address is expected to read back; earlier
     values in replay order are legitimately overwritten. *)
  let final = Hashtbl.create 8 in
  List.iter (fun (addr, value) -> Hashtbl.replace final addr value) writes;
  Hashtbl.iter
    (fun addr value ->
      if Nvm.persisted_u64 nvm addr <> value then begin
        let l = addr / Nvm.line_size nvm in
        if not (Badline.mem badlines l) then begin
          if Badline.add badlines l then incr stuck_remapped else table_full := true
        end
      end)
    final

let scrub ?(repair = true) ?(probe_stuck = false) cfg nvm =
  Trace.span ~cat:"recovery" "scrub" @@ fun () ->
  Config.validate cfg;
  if Nvm.size nvm <> Config.nvm_size cfg then
    invalid_arg "Scrub.scrub: device size does not match the configuration";
  (* Recovery-time writes are ordered behind the intent journal (see
     {!Dudetm_core.Rjournal}).  A previous scrub may have crashed between
     writing a probe pattern into a heap line and restoring the original
     word; undo that first, before any audit trusts the heap.  The
     Skip_recovery_journal mutant bypasses the journal so the nested-crash
     campaign can prove it catches exactly this. *)
  let use_journal = cfg.Config.fault <> Config.Skip_recovery_journal in
  let rjournal = Rjournal.attach nvm ~base:(Config.rjournal_base cfg) in
  (match Rjournal.read rjournal with
  | Rjournal.Probe { line; original } when use_journal ->
    let ls = Nvm.line_size nvm in
    Nvm.store_u64 nvm (line * ls) original;
    Nvm.persist nvm ~off:(line * ls) ~len:8;
    Rjournal.write rjournal Rjournal.Idle
  | _ -> ());
  let poison_cleared = if repair then clear_poison nvm else 0 in
  if poison_cleared > 0 then begin
    Nvm.note_media_detected nvm poison_cleared;
    Nvm.note_media_repaired nvm poison_cleared
  end;
  let ckpt_status =
    Checkpoint.scrub ~repair nvm ~base:(Config.meta_base cfg) ~size:cfg.Config.meta_size
  in
  let badlines, _ = Badline.attach nvm cfg in
  (* Ring audit: the tolerant scan finds and quarantines mid-ring damage;
     a ring whose header is unreadable is reformatted (with a salvaged
     sequence number) even under [repair:false], since nothing can be read
     from it either way. *)
  let scans =
    Array.init (Config.plog_regions cfg) (fun r ->
        snd (Plog.attach_scan nvm ~base:(Config.plog_base cfg r) ~size:cfg.Config.plog_size))
  in
  let rings_reformatted =
    Array.fold_left (fun acc s -> acc + if s.Plog.header_lost then 1 else 0) 0 scans
  in
  let ring_corrupted_records =
    Array.fold_left (fun acc s -> acc + s.Plog.corrupted_records) 0 scans
  in
  let ring_quarantined_lines =
    Array.fold_left (fun acc s -> acc + s.Plog.quarantined_lines) 0 scans
  in
  if ring_corrupted_records > 0 then Nvm.note_media_detected nvm ring_corrupted_records;
  if ckpt_status = `Fatal then
    {
      ckpt = `Fatal;
      poison_cleared;
      extents_checked = 0;
      extents_ok = 0;
      extents_repaired = 0;
      bad_extents = [];
      stuck_remapped = 0;
      badline_table_full = false;
      ring_corrupted_records;
      ring_quarantined_lines;
      rings_reformatted;
    }
  else begin
    if ckpt_status = `Repaired then Nvm.note_media_repaired nvm 1;
    let _, state =
      Checkpoint.attach nvm ~base:(Config.meta_base cfg) ~size:cfg.Config.meta_size
    in
    let items = live_items cfg scans ~ckpt_upto:state.Checkpoint.reproduced_upto in
    let by_extent = live_writes_by_extent cfg items in
    let crcdir = Crcdir.attach nvm cfg in
    let stuck_remapped = ref 0 in
    let table_full = ref false in
    let extents_ok = ref 0 in
    let extents_repaired = ref 0 in
    let bad = ref [] in
    let checked = ref 0 in
    (* Seeded detection-bypass mutant (campaign self-test only): with
       [Skip_crc_verify] the directory audit is skipped wholesale, so heap
       bit rot sails through recovery and wrong data is served silently —
       exactly what [dudetm check --media] must catch. *)
    if cfg.Config.fault <> Config.Skip_crc_verify then
      for e = 0 to Crcdir.n_extents crcdir - 1 do
        incr checked;
        match Crcdir.verify_extent crcdir e with
        | `Ok -> incr extents_ok
        | `Mismatch | `Poisoned -> (
          Nvm.note_media_detected nvm 1;
          let live = Hashtbl.find_opt by_extent e in
          match (repair, live) with
          | true, Some writes ->
            (* The entry may simply be stale: Reproduce rewrote the extent
               after the last checkpoint and only the still-live records
               re-cover it.  Replaying them (in order; recovery will do the
               same, idempotently) and resealing the entry restores the
               audit invariant. *)
            let ws = List.rev !writes in
            List.iter (fun (addr, value) -> Nvm.store_u64 nvm addr value) ws;
            Nvm.persist_ranges nvm (List.map (fun (addr, _) -> (addr, 8)) ws);
            check_written_back nvm badlines ws ~stuck_remapped ~table_full;
            Crcdir.update crcdir [ e ];
            incr extents_repaired;
            Nvm.note_media_repaired nvm 1
          | _ ->
            (* No live record covers this extent, so its checkpointed
               content is unreconstructible from the logs: a real data
               loss.  Report it — never silently serve the corrupt bytes. *)
            bad := e :: !bad)
      done;
    (* Optional stuck-line sweep of the heap: write-probe each line and
       read it back from the persisted image; a line that kept its old
       content drops writes and gets remapped. *)
    if repair && probe_stuck then begin
      let ls = Nvm.line_size nvm in
      let probed_any = ref false in
      for l = 0 to (cfg.Config.heap_size / ls) - 1 do
        if not (Badline.mem badlines l) then begin
          let original = Nvm.persisted_u64 nvm (l * ls) in
          let pattern = Int64.lognot original in
          (* Seal the probe intent before the destructive write: a crash
             between the pattern persist and the restore below would
             otherwise leave the complement in live data with nothing
             pointing at it.  Each intent supersedes the previous line's
             (that probe completed), so one Idle at the end suffices. *)
          if use_journal then
            Rjournal.write rjournal (Rjournal.Probe { line = l; original });
          probed_any := true;
          Nvm.store_u64 nvm (l * ls) pattern;
          Nvm.persist nvm ~off:(l * ls) ~len:8;
          if Nvm.persisted_u64 nvm (l * ls) <> pattern then begin
            Nvm.note_media_detected nvm 1;
            if Badline.add badlines l then incr stuck_remapped else table_full := true
          end
          else begin
            Nvm.store_u64 nvm (l * ls) original;
            Nvm.persist nvm ~off:(l * ls) ~len:8
          end
        end
      done;
      if use_journal && !probed_any then Rjournal.write rjournal Rjournal.Idle
    end;
    {
      ckpt = ckpt_status;
      poison_cleared;
      extents_checked = !checked;
      extents_ok = !extents_ok;
      extents_repaired = !extents_repaired;
      bad_extents = List.sort compare !bad;
      stuck_remapped = !stuck_remapped;
      badline_table_full = !table_full;
      ring_corrupted_records;
      ring_quarantined_lines;
      rings_reformatted;
    }
  end

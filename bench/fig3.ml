(* Figure 3: redo-log optimization — NVM log writes saved by
   cross-transaction combination as the persist group grows, and the LZ
   compression ratio on the combined groups.  YCSB session store (B+-tree
   key-value store, 10 K records, 50/50 read-update, Zipfian 0.99). *)

open Dudetm_harness.Harness
module Stats = Dudetm_sim.Stats
module Rng = Dudetm_sim.Rng
module Sched = Dudetm_sim.Sched
module W = Dudetm_workloads
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module Ptm = B.Ptm_intf

let groups ?(full = false) () = if full then [ 10; 100; 1_000; 10_000; 100_000 ] else [ 10; 100; 1_000; 10_000 ]

let run_one ~group ~compress =
  let cfg =
    {
      (dude_config ()) with
      Config.group_size = group;
      combine = true;
      compress;
      plog_size = 1 lsl 23;
      vlog_capacity = 1 lsl 18;
    }
  in
  let ptm, _ = B.Dude_ptm.Stm.ptm cfg in
  (* Enough write transactions for at least two full groups. *)
  let ntxs = max 30_000 (5 * group) in
  let bench =
    {
      bname = "YCSB";
      think = 400;
      ntxs;
      static_ok = false;
      setup =
        (fun ptm ->
          let y = W.Ycsb.setup ptm ~records:10_000 ~theta:0.99 () in
          fun ~thread ~rng -> W.Ycsb.transaction_tid y ~thread ~rng);
    }
  in
  let r = run_bench ~measure_latency:true ptm bench in
  let get k = List.assoc_opt k r.counters |> Option.value ~default:0 in
  let saved =
    let win = get "combine_writes_in" and wout = get "combine_writes_out" in
    if win = 0 then 0.0 else 1.0 -. (float_of_int wout /. float_of_int win)
  in
  let ratio =
    let cin = get "compress_in_bytes" and cout = get "compress_out_bytes" in
    if cin = 0 then 0.0 else 1.0 -. (float_of_int cout /. float_of_int cin)
  in
  let p50_us = Dudetm_sim.Cycles.to_us (Stats.Latency.percentile r.latency 50.0) in
  (saved, ratio, r, p50_us)

let run ?(full = false) () =
  section "Figure 3: log combination and compression vs persist-group size\n(YCSB session store, B+-tree KV, 10K records, 50/50 read/update, Zipf 0.99)";
  Printf.printf "%-14s %22s %22s %12s %14s\n" "Group size" "NVM writes saved"
    "LZ compression ratio" "Throughput" "P50 latency";
  List.iter
    (fun group ->
      let saved, _, _, _ = run_one ~group ~compress:false in
      let _, ratio, r, p50 = run_one ~group ~compress:true in
      (* Section 5.4: combination/compression leave throughput untouched
         (flushing is not the bottleneck), but acknowledgement latency grows
         with the group size — a transaction waits for its whole group. *)
      Printf.printf "%-14d %21.1f%% %21.1f%% %12s %11.0f us\n%!" group (100.0 *. saved)
        (100.0 *. ratio) (pp_ktps r.ktps) p50;
      report_commit_latency (Printf.sprintf "group %d" group) r)
    (groups ~full ())

let tiny () = ignore (run_one ~group:10 ~compress:true)

(* YCSB core workloads A-F (extension beyond the paper's Session Store):
   throughput of DudeTM vs the volatile upper bound and Mnemosyne across
   the standard operation mixes, B+-tree storage, Zipf 0.99. *)

open Dudetm_harness.Harness
module W = Dudetm_workloads
module Rng = Dudetm_sim.Rng
module Ptm = Dudetm_baselines.Ptm_intf

let mixes =
  [
    ("A (50r/50u)", W.Ycsb.workload_a);
    ("B (95r/5u)", W.Ycsb.workload_b);
    ("C (read-only)", W.Ycsb.workload_c);
    ("D (95r/5i)", W.Ycsb.workload_d);
    ("E (95scan/5i)", W.Ycsb.workload_e);
    ("F (50r/50rmw)", W.Ycsb.workload_f);
  ]

let systems = [ Volatile; Dude; Mnemosyne ]

let bench_of mix ~ntxs =
  {
    bname = "YCSB";
    think = 400;
    ntxs;
    static_ok = false;
    setup =
      (fun ptm ->
        let y = W.Ycsb.setup ptm ~records:10_000 ~theta:0.99 () in
        let counters = Array.init ptm.Ptm.nthreads (fun _ -> ref 0) in
        fun ~thread ~rng ->
          W.Ycsb.mixed_transaction y mix ~thread ~rng ~insert_counter:counters.(thread));
  }

let run ?(scale = 1.0) () =
  section "YCSB core workloads A-F (B+-tree, 10K records, Zipf 0.99, 4 threads)";
  Printf.printf "%-16s" "Workload";
  List.iter (fun s -> Printf.printf "%14s" (system_name s)) systems;
  print_newline ();
  List.iter
    (fun (name, mix) ->
      Printf.printf "%-16s" name;
      let dude_r = ref None in
      List.iter
        (fun sys ->
          let ntxs = int_of_float (10_000.0 *. scale) in
          let r = run_bench (make_system sys) (bench_of mix ~ntxs) in
          if sys = Dude then dude_r := Some r;
          Printf.printf "%14s%!" (pp_ktps r.ktps))
        systems;
      print_newline ();
      Option.iter (report_commit_latency ("DUDETM " ^ name)) !dude_r)
    mixes

let tiny () =
  ignore (run_bench (make_system Dude) (bench_of W.Ycsb.workload_a ~ntxs:400))

(* Replicated-durability experiment (extension beyond the paper's
   evaluation): what does shipping the redo log to K quorum replicas cost,
   and how fast is failover?

   The primary's Persist daemon ships each sealed group-commit record over
   simulated 10 GB/s links; transactions stay decoupled (commit returns at
   the TM commit, durability is acknowledged at the quorum watermark), so
   the replication cost the application sees is the drain tail plus
   whatever ack-waiting the workload chooses to do.  We sweep K over
   {0 (unreplicated), 1, 3, 5} at the same workload and seed, then kill
   the primary of a K=3 cluster mid-run and measure promotion: power-cut
   every replica, scan, truncate to the quorum prefix, replay.

   Gate: quorum replication at K=3 must cost no more than 15% of
   unreplicated durable throughput.  Emits BENCH_replica.json. *)

open Dudetm_harness.Harness
module Sched = Dudetm_sim.Sched
module Cycles = Dudetm_sim.Cycles
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Rep = Dudetm_replica.Replica.Make (Dudetm_tm.Tinystm)
module D = Rep.Engine

exception Primary_killed

let replica_counts = [ 0; 1; 3; 5 ]

let canonical_ntxs = 1_200

let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 20;
    nthreads = 4;
    vlog_capacity = 1 lsl 14;
    plog_size = 1 lsl 20;
    group_size = 8;
    combine = true;
    compress = true;
    seed = 11;
  }

(* Counter-array workload, decoupled commits: every transaction bumps the
   root and stamps one of 1024 slots; each thread waits for quorum on its
   last transaction only. *)
let worker t ~ntxs ~thread ~committed ~last_tid =
  for _ = 1 to ntxs do
    match
      D.atomically t ~thread (fun tx ->
          let c1 = Int64.add (D.read tx 0) 1L in
          D.write tx (8 + (8 * (Int64.to_int c1 land 1023))) c1;
          D.write tx 0 c1)
    with
    | Some (_, tid) when tid > 0 ->
      incr committed;
      last_tid := max !last_tid tid
    | _ -> ()
  done

type row = {
  r_k : int;
  r_quorum : int;
  r_txs : int;
  r_cycles : int;
  r_ktps : float;
  r_acked : int;
  r_degraded : bool;
  r_batches_shipped : int;
  r_retransmits : int;
  r_link_bytes : int;
}

let ktps ~txs ~cycles =
  if cycles = 0 then 0.0 else float_of_int txs /. (Cycles.to_us cycles /. 1000.0)

(* Unreplicated baseline: the same engine, workload and drain, no links. *)
let run_baseline ~ntxs =
  let t = D.create cfg in
  let committed = ref 0 in
  let cycles =
    Sched.run (fun () ->
        D.start t;
        let done_workers = ref 0 in
        for th = 0 to cfg.Config.nthreads - 1 do
          ignore
            (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                 worker t ~ntxs ~thread:th ~committed ~last_tid:(ref 0);
                 incr done_workers))
        done;
        Sched.wait_until ~label:"workers done" (fun () ->
            !done_workers = cfg.Config.nthreads);
        D.drain t;
        D.stop t)
  in
  {
    r_k = 0;
    r_quorum = 1;
    r_txs = !committed;
    r_cycles = cycles;
    r_ktps = ktps ~txs:!committed ~cycles;
    r_acked = D.durable_id t;
    r_degraded = false;
    r_batches_shipped = 0;
    r_retransmits = 0;
    r_link_bytes = 0;
  }

let run_replicated ~ntxs ~k =
  let c = Rep.create ~rcfg:(Rep.default_config ~nreplicas:k ()) cfg in
  let committed = ref 0 in
  let degraded = ref false in
  let cycles =
    Sched.run (fun () ->
        Rep.start c;
        let done_workers = ref 0 in
        for th = 0 to cfg.Config.nthreads - 1 do
          ignore
            (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                 let last_tid = ref 0 in
                 worker (Rep.primary c) ~ntxs ~thread:th ~committed ~last_tid;
                 (match Rep.wait_acked c !last_tid with
                 | Rep.Quorum -> ()
                 | Rep.Degraded_quorum _ -> degraded := true);
                 incr done_workers))
        done;
        Sched.wait_until ~label:"workers done" (fun () ->
            !done_workers = cfg.Config.nthreads);
        (match Rep.drain c with
        | Rep.Quorum -> ()
        | Rep.Degraded_quorum _ -> degraded := true);
        Rep.stop c)
  in
  let link_bytes =
    Array.fold_left
      (fun acc (down, up) -> acc + Stats.get down "bytes_sent" + Stats.get up "bytes_sent")
      0 (Rep.link_stats c)
  in
  ( c,
    {
      r_k = k;
      r_quorum = Rep.quorum c;
      r_txs = !committed;
      r_cycles = cycles;
      r_ktps = ktps ~txs:!committed ~cycles;
      r_acked = Rep.acked c;
      r_degraded = !degraded;
      r_batches_shipped = Stats.get (Rep.stats c) "batches_shipped";
      r_retransmits = Stats.get (Rep.stats c) "retransmits";
      r_link_bytes = link_bytes;
    } )

(* Failover: kill a K=3 primary mid-run, then measure promotion — the
   power cut, per-replica scan, quorum truncation and replay — in both
   simulated cycles and host wall time. *)
let run_failover ~ntxs =
  let c = Rep.create ~rcfg:(Rep.default_config ~nreplicas:3 ()) cfg in
  let committed = ref 0 in
  (try
     ignore
       (Sched.run (fun () ->
            Rep.start c;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     worker (Rep.primary c) ~ntxs ~thread:th ~committed ~last_tid:(ref 0)))
            done;
            (* Let roughly half the run land, then pull the plug. *)
            Sched.advance 2_000_000;
            raise Primary_killed))
   with Primary_killed -> ());
  let acked = Rep.acked c in
  let wall0 = Sys.time () in
  let prom = ref None in
  let cycles =
    Sched.run (fun () ->
        let _eng, p = Rep.promote c in
        prom := Some p)
  in
  let wall_ms = (Sys.time () -. wall0) *. 1e3 in
  let p = Option.get !prom in
  (acked, p, cycles, wall_ms)

let run ?(scale = 1.0) () =
  let ntxs = max 200 (int_of_float (float_of_int canonical_ntxs *. scale)) in
  section
    (Printf.sprintf
       "Replicated durability: quorum log shipping, %d txs x %d threads, 10 GB/s links"
       ntxs cfg.Config.nthreads);
  let base = run_baseline ~ntxs in
  let reps = List.map (fun k -> snd (run_replicated ~ntxs ~k)) (List.tl replica_counts) in
  let rows = base :: reps in
  Printf.printf "%-10s %-8s %12s %10s %10s %12s %12s\n" "replicas" "quorum" "throughput"
    "vs K=0" "degraded" "shipped" "link MB";
  List.iter
    (fun r ->
      Printf.printf "%-10d %-8s %12s %9.2fx %10s %12d %12.2f\n" r.r_k
        (Printf.sprintf "%d/%d" r.r_quorum (r.r_k + 1))
        (pp_ktps r.r_ktps)
        (r.r_ktps /. base.r_ktps)
        (if r.r_degraded then "YES" else "no")
        r.r_batches_shipped
        (float_of_int r.r_link_bytes /. 1048576.0))
    rows;
  let acked, prom, fo_cycles, fo_wall = run_failover ~ntxs in
  Printf.printf
    "failover (K=3, primary killed mid-run): acked %d -> promoted replica %d, durable \
     %d, truncated %d never-acked txs, %.1f us simulated (%.1f ms host)\n"
    acked prom.Rep.promoted prom.Rep.report.Dudetm_core.Dudetm.durable
    prom.Rep.truncated_txs (Cycles.to_us fo_cycles) fo_wall;
  let row_json r =
    Printf.sprintf
      {|    {"replicas": %d, "quorum": %d, "txs": %d, "cycles": %d, "ktps": %.1f, "rel_throughput": %.3f, "degraded": %b, "batches_shipped": %d, "retransmits": %d, "link_bytes": %d}|}
      r.r_k r.r_quorum r.r_txs r.r_cycles r.r_ktps (r.r_ktps /. base.r_ktps) r.r_degraded
      r.r_batches_shipped r.r_retransmits r.r_link_bytes
  in
  let overhead3 =
    let r3 = List.find (fun r -> r.r_k = 3) rows in
    1.0 -. (r3.r_ktps /. base.r_ktps)
  in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"replica-quorum\",\n  \"txs\": %d,\n  \"threads\": %d,\n  \
       \"overhead_k3\": %.3f,\n  \"failover\": {\"acked\": %d, \"promoted\": %d, \
       \"durable\": %d, \"truncated_txs\": %d, \"cycles\": %d, \"sim_us\": %.3f},\n  \
       \"rows\": [\n%s\n  ]\n}\n"
      ntxs cfg.Config.nthreads overhead3 acked prom.Rep.promoted
      prom.Rep.report.Dudetm_core.Dudetm.durable prom.Rep.truncated_txs fo_cycles
      (Cycles.to_us fo_cycles)
      (String.concat ",\n" (List.map row_json rows))
  in
  write_artifact "BENCH_replica.json" json;
  if overhead3 > 0.15 then begin
    Printf.printf
      "REPLICATION OVERHEAD REGRESSION: K=3 quorum costs %.1f%% of unreplicated \
       throughput (> 15%%)\n"
      (overhead3 *. 100.0);
    exit 1
  end
  else
    Printf.printf "replication overhead check: K=3 quorum costs %.1f%% (<= 15%%)\n"
      (overhead3 *. 100.0)

let tiny () = ignore (run_replicated ~ntxs:100 ~k:1)

(* Read-only snapshot fast path: what do lock-free, log-free, persist-free
   reads buy a read-mostly workload?

   A YCSB-C-shaped 95/5 read/update mix runs over 1 shard and 8 shards,
   2x2: read transactions on the ordinary write path vs the snapshot fast
   path, and with volatile vs crash-safe read guarantees.  The write-path
   recipe for a crash-safe read — all an application had before
   [atomically_ro ~durable:true] — is a read transaction followed by a
   durability wait for the shard's watermark to cover the clock value it
   observed; the durable snapshot gets the same guarantee by pinning its
   epoch *below* the watermark instead, so it never waits for the persist
   pipeline in steady state.

   Gates (per shard count): durable snapshot reads >= 5x the write-path
   durable-read recipe; volatile snapshot reads no slower than write-path
   reads; and a post-drain RO burst must move zero redo-log entries, zero
   persist-daemon records/bytes, zero engine transaction IDs and zero
   device-persisted bytes — the snapshot path is invisible to the
   pipeline.  Emits BENCH_snapshot.json. *)

open Dudetm_harness.Harness
module Sched = Dudetm_sim.Sched
module Cycles = Dudetm_sim.Cycles
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Sh = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

let nslots = 4096 (* per shard *)

let slot i = 64 + (8 * i)

let reads_per_tx = 8

let writes_per_tx = 8

let nreaders = 8

(* Background updaters are open-loop (fixed pacing), so every leg faces the
   same durability pressure: a closed-loop mix would let durable-read waits
   suppress the write rate that causes the waits and measure the resulting
   equilibrium instead of the read path. *)
let nwriters = 4

let write_pace = 600 (* extra cycles between one writer's update txs *)

let canonical_run = 1_500_000 (* measured cycles per leg *)

(* PCM-class persist latency with write combining: the regime the paper
   targets, and the one where the commit-to-durable lag that a write-path
   durable read must absorb is real rather than negligible. *)
let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 18;
    root_size = 4096;
    nthreads = nreaders + nwriters;
    pmem = Dudetm_nvm.Pmem_config.pcm;
    vlog_capacity = 1 lsl 10;
    plog_size = 1 lsl 16;
    meta_size = 1 lsl 13;
    combine = true;
    group_size = 8;
    seed = 17;
  }

type leg = {
  l_mode : string;  (* "rw" | "ro" *)
  l_durable : bool;
  l_read_txs : int;
  l_write_txs : int;
  l_read_ktps : float;
  l_aborts : int;
  l_snapshot_retries : int;
}

(* Sum an engine counter across every shard. *)
let engine_stat sh ~nshards key =
  let total = ref 0 in
  for s = 0 to nshards - 1 do
    total := !total + Stats.get (Sh.Engine.stats (Sh.engine sh s)) key
  done;
  !total

let tm_stat sh ~nshards key =
  let total = ref 0 in
  for s = 0 to nshards - 1 do
    total :=
      !total + Stats.get (Dudetm_tm.Tinystm.stats (Sh.Engine.tm (Sh.engine sh s))) key
  done;
  !total

let device_bytes sh ~nshards =
  let total = ref 0 in
  for s = 0 to nshards - 1 do
    total := !total + Nvm.persisted_write_bytes (Sh.nvm sh s)
  done;
  !total

(* The post-drain burst: [n] snapshot transactions in each mode must leave
   every pipeline-side counter exactly where it was. *)
let assert_ro_invisible sh ~nshards ~n =
  (* Let the device bandwidth queues finish accounting bytes that were
     issued before the burst: [persisted_write_bytes] counts completions,
     which lag issue time. *)
  Sched.advance 2_000_000;
  let keys = [ "txs"; "log_entries"; "flush_records"; "flush_payload_bytes" ] in
  let before = List.map (fun k -> (k, engine_stat sh ~nshards k)) keys in
  let ro_before = engine_stat sh ~nshards "ro_txs" in
  let dev_before = device_bytes sh ~nshards in
  let rng = Rng.create 99 in
  for i = 0 to n - 1 do
    let s = Rng.int rng nshards in
    match
      Sh.atomically_ro ~durable:(i land 1 = 1) sh ~thread:0 ~shard:s (fun tx ->
          for _ = 1 to reads_per_tx do
            ignore (Sh.read tx ~shard:s (slot (Rng.int rng nslots)))
          done)
    with
    | Some _ -> ()
    | None -> failwith "snapshot burst aborted"
  done;
  List.iter
    (fun (k, v0) ->
      let v1 = engine_stat sh ~nshards k in
      if v1 <> v0 then begin
        Printf.printf "SNAPSHOT LEAK: %d RO transactions moved %s by %d\n" n k (v1 - v0);
        exit 1
      end)
    before;
  let dev_after = device_bytes sh ~nshards in
  if dev_after <> dev_before then begin
    Printf.printf "SNAPSHOT LEAK: %d RO transactions persisted %d device bytes\n" n
      (dev_after - dev_before);
    exit 1
  end;
  if engine_stat sh ~nshards "ro_txs" - ro_before <> n then begin
    Printf.printf "SNAPSHOT MISCOUNT: ro_txs did not advance by %d\n" n;
    exit 1
  end

(* One leg: [nreaders] closed-loop reader threads via [mode] for
   [run_cycles], against the fixed-rate background update stream, then
   drain.  [durable] selects the crash-safe read guarantee: on the write
   path, a post-transaction wait for the shard watermark to cover the
   observed clock; on the snapshot path, the pinned epoch. *)
let run_leg ~nshards ~mode ~durable ~run_cycles ~check_invisible () =
  let sh = Sh.create ~nshards cfg in
  let read_txs = ref 0 and write_txs = ref 0 in
  let stop_writers = ref false in
  let done_workers = ref 0 in
  let nworkers = nreaders + nwriters in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         for w = 0 to nwriters - 1 do
           let th = nreaders + w in
           ignore
             (Sched.spawn (Printf.sprintf "u%d" w) (fun () ->
                  let rng = Rng.create (cfg.Config.seed + 500 + w) in
                  while not !stop_writers do
                    let s = Rng.int rng nshards in
                    (match
                       Sh.atomically sh ~thread:th ~shards:[ s ] (fun tx ->
                           for _ = 1 to writes_per_tx do
                             Sh.write tx ~shard:s
                               (slot (Rng.int rng nslots))
                               (Rng.next_int64 rng)
                           done)
                     with
                    | Some _ -> incr write_txs
                    | None -> ());
                    Sched.advance write_pace
                  done;
                  incr done_workers))
         done;
         for th = 0 to nreaders - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "r%d" th) (fun () ->
                  let rng = Rng.create (cfg.Config.seed + 100 + th) in
                  while Sched.now () < run_cycles do
                    let s = Rng.int rng nshards in
                    if mode = "ro" then (
                      match
                        Sh.atomically_ro ~durable sh ~thread:th ~shard:s (fun tx ->
                            for _ = 1 to reads_per_tx do
                              ignore (Sh.read tx ~shard:s (slot (Rng.int rng nslots)))
                            done)
                      with
                      | Some _ -> incr read_txs
                      | None -> ())
                    else begin
                      (match
                         Sh.atomically sh ~thread:th ~shards:[ s ] (fun tx ->
                             for _ = 1 to reads_per_tx do
                               ignore (Sh.read tx ~shard:s (slot (Rng.int rng nslots)))
                             done)
                       with
                      | Some _ -> incr read_txs
                      | None -> ());
                      if durable then
                        (* The pre-snapshot crash-safe read recipe: wait for
                           the watermark to cover everything the read could
                           have observed. *)
                        Sh.wait_durable sh
                          (Sh.Ack_local
                             { shard = s; tid = Sh.Engine.last_tid (Sh.engine sh s) })
                    end
                  done;
                  incr done_workers))
         done;
         Sched.wait_until ~label:"snapshot bench readers" (fun () ->
             !done_workers >= nreaders);
         stop_writers := true;
         Sched.wait_until ~label:"snapshot bench writers" (fun () ->
             !done_workers = nworkers);
         Sh.drain sh;
         Sh.stop sh;
         (* Daemons are stopped: any device byte the burst persists is the
            snapshot path's own doing. *)
         if check_invisible then assert_ro_invisible sh ~nshards ~n:200));
  {
    l_mode = mode;
    l_durable = durable;
    l_read_txs = !read_txs;
    l_write_txs = !write_txs;
    l_read_ktps =
      (if run_cycles = 0 then 0.0
       else float_of_int !read_txs /. (Cycles.to_us run_cycles /. 1000.0));
    l_aborts = tm_stat sh ~nshards "aborts";
    l_snapshot_retries = tm_stat sh ~nshards "snapshot_retries";
  }

let speedup num den = if den.l_read_ktps <= 0.0 then 0.0 else num.l_read_ktps /. den.l_read_ktps

let run ?(scale = 1.0) () =
  let run_cycles = max 300_000 (int_of_float (float_of_int canonical_run *. scale)) in
  section
    (Printf.sprintf
       "Snapshot fast path: read-mostly mix, %d reads/tx, %d readers + %d background \
        updaters, volatile + crash-safe reads"
       reads_per_tx nreaders nwriters);
  let legs_json = ref [] in
  let gate_failures = ref [] in
  List.iter
    (fun nshards ->
      let leg ~mode ~durable ~check_invisible =
        run_leg ~nshards ~mode ~durable ~run_cycles ~check_invisible ()
      in
      let rw_v = leg ~mode:"rw" ~durable:false ~check_invisible:false in
      let rw_d = leg ~mode:"rw" ~durable:true ~check_invisible:false in
      let ro_v = leg ~mode:"ro" ~durable:false ~check_invisible:false in
      let ro_d = leg ~mode:"ro" ~durable:true ~check_invisible:true in
      Printf.printf "%d shard%s:\n" nshards (if nshards = 1 then "" else "s");
      Printf.printf "  %-28s %12s %10s %9s %9s\n" "read path" "read ktps" "read txs"
        "aborts" "ro-retry";
      List.iter
        (fun (name, l) ->
          Printf.printf "  %-28s %12s %10d %9d %9d\n" name (pp_ktps l.l_read_ktps)
            l.l_read_txs l.l_aborts l.l_snapshot_retries)
        [
          ("write path, volatile", rw_v);
          ("write path + durable wait", rw_d);
          ("snapshot, volatile", ro_v);
          ("snapshot, durable pin", ro_d);
        ];
      let sv = speedup ro_v rw_v and sd = speedup ro_d rw_d in
      Printf.printf "  volatile speedup %.2fx, crash-safe-read speedup %.2fx\n" sv sd;
      if sd < 5.0 then
        gate_failures :=
          Printf.sprintf
            "%d shards: crash-safe snapshot reads only %.2fx the write-path recipe (< 5x)"
            nshards sd
          :: !gate_failures;
      if sv < 1.0 then
        gate_failures :=
          Printf.sprintf "%d shards: volatile snapshot reads regressed (%.2fx < 1x)"
            nshards sv
          :: !gate_failures;
      let leg_json (l : leg) =
        Printf.sprintf
          {|    {"shards": %d, "path": "%s", "durable": %b, "read_ktps": %.1f, "read_txs": %d, "write_txs": %d, "tm_aborts": %d, "snapshot_retries": %d}|}
          nshards l.l_mode l.l_durable l.l_read_ktps l.l_read_txs l.l_write_txs l.l_aborts
          l.l_snapshot_retries
      in
      legs_json :=
        !legs_json
        @ List.map leg_json [ rw_v; rw_d; ro_v; ro_d ]
        @ [
            Printf.sprintf
              {|    {"shards": %d, "volatile_speedup": %.2f, "durable_speedup": %.2f}|}
              nshards sv sd;
          ])
    [ 1; 8 ];
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"snapshot-ro\",\n  \"reads_per_tx\": %d,\n  \
       \"writes_per_tx\": %d,\n  \"readers\": %d,\n  \"background_updaters\": %d,\n  \
       \"run_cycles\": %d,\n  \"gate\": \"durable_speedup >= 5.0 and volatile_speedup \
       >= 1.0 and RO moves no pipeline counters\",\n  \"legs\": [\n%s\n  ]\n}\n"
      reads_per_tx writes_per_tx nreaders nwriters run_cycles
      (String.concat ",\n" !legs_json)
  in
  write_artifact "BENCH_snapshot.json" json;
  match !gate_failures with
  | [] ->
    Printf.printf
      "snapshot gate: crash-safe reads >= 5x, volatile reads >= 1x, RO invisible to the \
       pipeline\n"
  | fs ->
    List.iter (fun f -> Printf.printf "SNAPSHOT GATE FAILURE: %s\n" f) fs;
    exit 1

let tiny () =
  ignore (run_leg ~nshards:1 ~mode:"ro" ~durable:false ~run_cycles:120_000 ~check_invisible:false ())

(* Trace-driven profile of the pipeline (extension beyond the paper's
   figures): run the canonical KV workload under cycle-accurate tracing at
   1 and 16 GB/s, print where each pipeline stage spends its cycles, emit
   the machine-readable BENCH_trace.json summary, and compare per-phase
   p50 cycles against the checked-in baseline — the simulation is
   deterministic, so any drift is a real change, and >25% is a failure. *)

open Dudetm_harness.Harness
module Trace = Dudetm_trace.Trace

(* Fixed canonical configuration: the baseline comparison must not depend
   on --scale, and a 2000-transaction run keeps the smoke step fast. *)
let canonical_ntxs = 2_000

let profile ~bandwidth =
  let ptm = make_system ~nthreads:4 ~latency:1000 ~bandwidth Dude in
  Trace.enable ~capacity:65536 ();
  let r = run_bench ptm (kv_bench ~ntxs:canonical_ntxs ()) in
  let phases = Trace.phases () in
  let accts = Trace.nvm_accts () in
  let summary = Trace.summary_json ~total_cycles:r.run_cycles () in
  let violations = Trace.validate () in
  Trace.disable ();
  (r, phases, accts, summary, violations)

let p50_of phases key =
  List.find_opt (fun p -> p.Trace.ph_cat ^ "." ^ p.Trace.ph_name = key) phases
  |> Option.map (fun p -> p.Trace.ph_p50)

let baseline_path () =
  match Sys.getenv_opt "DUDETM_TRACE_BASELINE" with
  | Some p -> p
  | None -> Filename.concat "bench" "trace_baseline.tsv"

(* Baseline format: one "phase<TAB>p50" line per phase; '#' comments. *)
let load_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Some (List.rev acc)
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          (match String.split_on_char '\t' line with
          | [ phase; p50 ] -> go ((phase, int_of_string p50) :: acc)
          | _ -> go acc)
    in
    go []
  end

let utilization accts total =
  List.map
    (fun a ->
      (a.Trace.nv_thread, 100.0 *. float_of_int a.Trace.nv_cycles /. float_of_int (max 1 total)))
    accts

let run ?scale:(_ = 1.0) () =
  section
    (Printf.sprintf "Trace profile: KV on DUDETM, %d txs, 4 threads, 1 vs 16 GB/s"
       canonical_ntxs);
  let r1, ph1, ac1, summary, v1 = profile ~bandwidth:1.0 in
  let r16, ph16, _, _, v16 = profile ~bandwidth:16.0 in
  let pct total c = 100.0 *. float_of_int c /. float_of_int (max 1 total) in
  Printf.printf "%-24s %14s %7s %14s %7s\n" "phase" "cyc @1GB/s" "%wall" "cyc @16GB/s"
    "%wall";
  List.iter
    (fun p ->
      let key = p.Trace.ph_cat ^ "." ^ p.Trace.ph_name in
      let c16 =
        List.find_opt (fun q -> q.Trace.ph_cat ^ "." ^ q.Trace.ph_name = key) ph16
        |> Option.fold ~none:0 ~some:(fun q -> q.Trace.ph_total)
      in
      Printf.printf "%-24s %14d %6.1f%% %14d %6.1f%%\n" key p.Trace.ph_total
        (pct r1.run_cycles p.Trace.ph_total)
        c16
        (pct r16.run_cycles c16))
    ph1;
  Printf.printf "wall cycles: %d @1GB/s, %d @16GB/s\n" r1.run_cycles r16.run_cycles;
  report_commit_latency "KV @1GB/s" r1;
  report_commit_latency "KV @16GB/s" r16;
  List.iter
    (fun (name, u) -> Printf.printf "NVM utilization @1GB/s  %-12s %5.1f%%\n" name u)
    (utilization ac1 r1.run_cycles);
  let violations = v1 @ v16 in
  if violations <> [] then begin
    List.iter (fun v -> Printf.printf "trace violation: %s\n" v) violations;
    exit 1
  end;
  write_artifact "BENCH_trace.json" summary;
  (* Per-phase p50 regression gate against the checked-in baseline (1 GB/s
     run).  p50s are log2-bucket lower bounds, so any bucket move is a 2x
     change and trips the 25% threshold — deterministic, not flaky. *)
  match load_baseline (baseline_path ()) with
  | None ->
    Printf.printf "trace baseline %s not found; skipping regression check\n"
      (baseline_path ())
  | Some base ->
    let failures = ref 0 in
    List.iter
      (fun (key, base_p50) ->
        match p50_of ph1 key with
        | None ->
          Printf.printf "REGRESSION %-24s gone from profile (baseline p50 %d)\n" key
            base_p50;
          incr failures
        | Some p50 ->
          if float_of_int p50 > 1.25 *. float_of_int base_p50 then begin
            Printf.printf "REGRESSION %-24s p50 %d > baseline %d (+%.0f%%)\n" key p50
              base_p50
              (100.0 *. (float_of_int p50 /. float_of_int (max 1 base_p50) -. 1.0));
            incr failures
          end
          else Printf.printf "ok         %-24s p50 %d (baseline %d)\n" key p50 base_p50)
      base;
    if !failures > 0 then begin
      Printf.printf "trace regression check: %d phase(s) regressed >25%%\n" !failures;
      exit 1
    end
    else Printf.printf "trace regression check: all phases within 25%% of baseline\n"

let tiny () =
  Trace.enable ~capacity:4096 ();
  ignore (run_bench (make_system Dude) (kv_bench ~ntxs:400 ()));
  Trace.disable ()

(* Live-resharding experiment (extension beyond the paper's evaluation):
   what does a live 4->8 resharding cost the application?

   Eight regions, an 8-bucket partition initially owned by shards 0-3;
   mid-run, four migrations hand every odd bucket to a fresh shard 4-7
   while worker threads keep committing increments across the whole
   keyspace.  Transactions in the moving range ride the double-write
   window (cross-shard pairs to both owners), so they keep committing —
   the cost shows up as a throughput dip, not as failures.  A monitor
   samples committed transactions per fixed window; steady-state is the
   mean of the pre- and post-resharding windows.

   Gate: windows below 60% of steady-state must cover at most 20% of the
   run, and no transaction may fail to commit.  Emits BENCH_migrate.json. *)

open Dudetm_harness.Harness
module Sched = Dudetm_sim.Sched
module Cycles = Dudetm_sim.Cycles
module Stats = Dudetm_sim.Stats
module Config = Dudetm_core.Config
module Partition = Dudetm_workloads.Partition
module Mig = Dudetm_shard.Migrate.Make (Dudetm_tm.Tinystm)

let nshards = 8

let nkeys = 256

let initial_owners = [| 0; 0; 1; 1; 2; 2; 3; 3 |]

let moves = List.init 4 (fun m -> (m, 4 + m, (2 * m) + 1))

let canonical_warm = 1_500_000 (* cycles before and after the resharding *)

let window = 150_000 (* throughput sampling window, cycles *)

(* Thread 0 is reserved for the migration driver; workers use 1..4. *)
let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 18;
    root_size = 4096;
    nthreads = 5;
    vlog_capacity = 1 lsl 12;
    plog_size = 1 lsl 17;
    meta_size = 1 lsl 14;
    seed = 13;
  }

let slot_of k = 8 * k

type result = {
  g_committed : int;
  g_failed : int;
  g_cycles : int;
  g_steady_ktps : float;
  g_min_ktps : float;
  g_dip_fraction : float;  (* of all windows, below 60% of steady *)
  g_converge : int;  (* cycles from first begin to last cleanup seal *)
  g_windows : (int * float) list;  (* (end cycle, ktps) *)
  g_double_writes : int;
  g_copy_txs : int;
}

let ktps ~txs ~cycles =
  if cycles = 0 then 0.0 else float_of_int txs /. (Cycles.to_us cycles /. 1000.0)

(* One full run: warm traffic, the four migrations under traffic, post
   traffic.  [warm] shapes the steady segments; workers run until the
   driver stops them, so the dip fraction is measured over a bounded,
   comparable run. *)
let run_resharding ~warm () =
  let part =
    Partition.buckets ~nshards ~lo:0L ~hi:(Int64.of_int nkeys) ~owners:initial_owners
  in
  let sh = Mig.Sh.create ~nshards cfg in
  let mig = Mig.create sh ~part ~nkeys ~slot_of in
  let committed = ref 0 in
  let failed = ref 0 in
  let stop = ref false in
  let t0 = ref 0 and t1 = ref 0 in
  let samples = ref [] in
  let nworkers = cfg.Config.nthreads - 1 in
  let cycles =
    Sched.run (fun () ->
        Mig.Sh.start sh;
        let done_workers = ref 0 in
        (* Disjoint key sets (key mod nworkers) keep workers conflict-free;
           the moving range still catches every worker because buckets span
           the whole residue space. *)
        for th = 1 to nworkers do
          ignore
            (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                 let i = ref 0 in
                 while not !stop do
                   let k = (th - 1) + (nworkers * (!i mod (nkeys / nworkers))) in
                   (match Mig.apply mig ~thread:th ~key:k (fun v -> Int64.add v 1L) with
                   | Some _ -> incr committed
                   | None -> incr failed);
                   incr i
                 done;
                 incr done_workers))
        done;
        ignore
          (Sched.spawn "monitor" ~daemon:true (fun () ->
               while true do
                 Sched.advance window;
                 samples := (Sched.now (), !committed) :: !samples
               done));
        ignore
          (Sched.spawn "reshard" (fun () ->
               Sched.advance warm;
               t0 := Sched.now ();
               (* Throttled like a real resharder: small copy chunks with
                  pacing gaps, so the double-write window stays open under
                  traffic for several sampling windows. *)
               List.iter
                 (fun (src, dst, b) ->
                   Mig.begin_migration mig ~src ~dst ~blo:b ~bhi:(b + 1);
                   let fin = ref false in
                   while not !fin do
                     fin := Mig.copy_step ~chunk:2 mig ~thread:0;
                     Sched.advance 20_000
                   done;
                   Mig.flip mig;
                   let fin = ref false in
                   while not !fin do
                     fin := Mig.cleanup_step ~chunk:8 mig ~thread:0;
                     Sched.advance 10_000
                   done)
                 moves;
               t1 := Sched.now ();
               Sched.advance warm;
               stop := true));
        Sched.wait_until ~label:"workers done" (fun () -> !done_workers = nworkers);
        Mig.Sh.stop sh)
  in
  (* Per-window throughput from the monitor's cumulative samples. *)
  let samples = List.rev !samples in
  let windows =
    let prev_t = ref 0 and prev_c = ref 0 in
    List.filter_map
      (fun (t, c) ->
        let dt = t - !prev_t and dc = c - !prev_c in
        prev_t := t;
        prev_c := c;
        if dt <= 0 then None else Some (t, ktps ~txs:dc ~cycles:dt))
      samples
  in
  let steady_windows =
    List.filter (fun (t, _) -> t <= !t0 || t > !t1 + window) windows
  in
  let mean l = List.fold_left (fun a (_, x) -> a +. x) 0.0 l /. float_of_int (List.length l) in
  let steady = if steady_windows = [] then 0.0 else mean steady_windows in
  let min_ktps = List.fold_left (fun a (_, x) -> min a x) infinity windows in
  let dips = List.filter (fun (_, x) -> x < 0.6 *. steady) windows in
  let stats = Mig.Sh.stats sh in
  ( mig,
    {
      g_committed = !committed;
      g_failed = !failed;
      g_cycles = cycles;
      g_steady_ktps = steady;
      g_min_ktps = (if windows = [] then 0.0 else min_ktps);
      g_dip_fraction =
        (if windows = [] then 1.0
         else float_of_int (List.length dips) /. float_of_int (List.length windows));
      g_converge = !t1 - !t0;
      g_windows = windows;
      g_double_writes = Stats.get stats "migrate_double_writes";
      g_copy_txs = Stats.get stats "migrate_copy_txs";
    } )

let run ?(scale = 1.0) () =
  let warm = max 300_000 (int_of_float (float_of_int canonical_warm *. scale)) in
  section
    (Printf.sprintf
       "Live resharding: 4->8 shards under traffic, %d keys, %d worker threads" nkeys
       (cfg.Config.nthreads - 1));
  let mig, g = run_resharding ~warm () in
  let final_owners = Partition.owners (Mig.partition mig) in
  Printf.printf "%-22s %12s %12s %12s %12s\n" "phase" "steady ktps" "min window" "dip frac"
    "converge us";
  Printf.printf "%-22s %12s %12s %11.1f%% %12.1f\n" "reshard 4->8"
    (pp_ktps g.g_steady_ktps) (pp_ktps g.g_min_ktps) (g.g_dip_fraction *. 100.0)
    (Cycles.to_us g.g_converge);
  Printf.printf
    "committed %d, failed %d, %d double-writes in the window, %d copy txs, final owners \
     %s\n"
    g.g_committed g.g_failed g.g_double_writes g.g_copy_txs
    (String.concat ";" (Array.to_list (Array.map string_of_int final_owners)));
  let row_json (t, k) = Printf.sprintf {|    {"cycle": %d, "ktps": %.1f}|} t k in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"migrate-reshard\",\n  \"shards\": %d,\n  \"keys\": %d,\n  \
       \"threads\": %d,\n  \"committed\": %d,\n  \"failed\": %d,\n  \"steady_ktps\": \
       %.1f,\n  \"min_window_ktps\": %.1f,\n  \"dip_fraction\": %.3f,\n  \
       \"converge_cycles\": %d,\n  \"converge_us\": %.3f,\n  \"double_writes\": %d,\n  \
       \"copy_txs\": %d,\n  \"windows\": [\n%s\n  ]\n}\n"
      nshards nkeys
      (cfg.Config.nthreads - 1)
      g.g_committed g.g_failed g.g_steady_ktps g.g_min_ktps g.g_dip_fraction g.g_converge
      (Cycles.to_us g.g_converge)
      g.g_double_writes g.g_copy_txs
      (String.concat ",\n" (List.map row_json g.g_windows))
  in
  write_artifact "BENCH_migrate.json" json;
  let deep_dip = g.g_min_ktps < 0.6 *. g.g_steady_ktps in
  if g.g_failed > 0 then begin
    Printf.printf "MIGRATION COMMIT FAILURES: %d transactions failed during resharding\n"
      g.g_failed;
    exit 1
  end
  else if g.g_dip_fraction > 0.20 then begin
    Printf.printf
      "MIGRATION DIP REGRESSION: throughput below 60%% of steady-state for %.1f%% of \
       the run (> 20%%)\n"
      (g.g_dip_fraction *. 100.0);
    exit 1
  end
  else
    Printf.printf
      "resharding dip check: %s60%% dips cover %.1f%% of the run (<= 20%%), zero failed \
       commits\n"
      (if deep_dip then "transient " else "no ")
      (g.g_dip_fraction *. 100.0)

let tiny () = ignore (run_resharding ~warm:100_000 ())

(* Benchmark harness entry point.

   Default mode regenerates every table and figure of the paper's
   evaluation section (printing paper-shaped tables); `--bechamel` instead
   runs one Bechamel micro-benchmark per table/figure over scaled-down
   instances, reporting wall-clock cost of the harness itself.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- fig2 table3     # selected experiments
     dune exec bench/main.exe -- --scale 0.25    # quicker, smaller runs
     dune exec bench/main.exe -- --full          # adds the 100k group to fig3
     dune exec bench/main.exe -- --bechamel      # Bechamel micro-bench mode *)

let experiments scale full =
  [
    ("fig2", fun () -> Fig2.run ~scale ());
    ("table1", fun () -> Table1.run ~scale ());
    ("table2", fun () -> Table2.run ~scale ());
    ("table3", fun () -> Table3.run ~scale ());
    ("fig3", fun () -> Fig3.run ~full ());
    ("fig4", fun () -> Fig4.run ~scale ());
    ("fig5", fun () -> Fig5.run ~scale ());
    ("table4", fun () -> Table4.run ~scale ());
    ("ablation", fun () -> Ablation.run ~scale ());
    ("ycsb", fun () -> Ycsb_bench.run ~scale ());
    ("recovery", fun () -> Recovery_bench.run ~scale ());
    ("trace", fun () -> Trace_bench.run ~scale ());
    ("shard", fun () -> Shard_bench.run ~scale ());
    ("persist", fun () -> Persist_bench.run ~scale ());
    ("replica", fun () -> Replica_bench.run ~scale ());
    ("migrate", fun () -> Migrate_bench.run ~scale ());
    ("snapshot", fun () -> Snapshot_bench.run ~scale ());
    ("serve", fun () -> Serve_bench.run ~scale ());
  ]

let bechamel_tests =
  [
    ("fig2", Fig2.tiny);
    ("table1", Table1.tiny);
    ("table2", Table2.tiny);
    ("table3", Table3.tiny);
    ("fig3", Fig3.tiny);
    ("fig4", Fig4.tiny);
    ("fig5", Fig5.tiny);
    ("table4", Table4.tiny);
    ("ablation", Ablation.tiny);
    ("ycsb", Ycsb_bench.tiny);
    ("recovery", Recovery_bench.tiny);
    ("trace", Trace_bench.tiny);
    ("shard", Shard_bench.tiny);
    ("persist", Persist_bench.tiny);
    ("replica", Replica_bench.tiny);
    ("migrate", Migrate_bench.tiny);
    ("snapshot", Snapshot_bench.tiny);
    ("serve", Serve_bench.tiny);
  ]

let run_bechamel () =
  let open Bechamel in
  let tests =
    List.map
      (fun (name, f) -> Test.make ~name (Staged.stage f))
      bechamel_tests
  in
  let grouped = Test.make_grouped ~name:"dudetm" ~fmt:"%s/%s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "%-24s %16s\n" "benchmark" "wall per run";
  Hashtbl.iter
    (fun name res ->
      match Analyze.OLS.estimates res with
      | Some [ t ] -> Printf.printf "%-24s %13.3f ms\n" name (t /. 1e6)
      | _ -> Printf.printf "%-24s %16s\n" name "n/a")
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let full = ref false in
  let bechamel = ref false in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--full" :: rest ->
      full := true;
      parse rest
    | "--bechamel" :: rest ->
      bechamel := true;
      parse rest
    | name :: rest ->
      selected := name :: !selected;
      parse rest
  in
  parse args;
  if !bechamel then run_bechamel ()
  else begin
    let exps = experiments !scale !full in
    let wanted =
      if !selected = [] then exps
      else
        List.map
          (fun name ->
            match List.assoc_opt name exps with
            | Some f -> (name, f)
            | None ->
              Printf.eprintf "unknown experiment %S (have: %s)\n" name
                (String.concat ", " (List.map fst exps));
              exit 2)
          (List.rev !selected)
    in
    List.iter (fun (_, f) -> f ()) wanted;
    print_newline ()
  end

(* Table 4: DUDETM over STM vs over (simulated) HTM, with the volatile TM
   upper bounds and the paper's slowdown rows.  Also reports the stock-
   hardware ablation: without the paper's proposed conflict-exempt range
   for the transaction-ID counter, every committing transaction dooms all
   concurrent ones. *)

open Dudetm_harness.Harness
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf
module Config = Dudetm_core.Config

(* Simulated RTM whose global tx-ID counter is NOT conflict-exempt: the
   stock-hardware configuration the paper deems unusable. *)
module Htm_stock = struct
  include Dudetm_tm.Htm

  let create ?costs ?seed store = create_htm ?costs ?seed ~tid_conflicts:true store
end

module Dude_htm_stock = B.Dude_ptm.Make (Htm_stock)

let benches ~scale =
  let s b = { b with ntxs = int_of_float (float_of_int b.ntxs *. scale) } in
  [ s (bptree_bench ()); s (hashtable_bench ()); s (tatp_bench ~storage:W.Kv.Tree ()) ]

type row = { rname : string; make : unit -> Ptm.t }

let rows =
  [
    { rname = "Volatile-STM"; make = (fun () -> make_system Volatile) };
    { rname = "DUDETM-STM"; make = (fun () -> make_system Dude) };
    { rname = "Volatile-HTM"; make = (fun () -> B.Volatile_stm.ptm_htm ~heap_size:(32 * 1024 * 1024) ()) };
    {
      rname = "DUDETM-HTM";
      make = (fun () -> fst (B.Dude_ptm.Htm_based.ptm ~name:"DUDETM-HTM" (dude_config ())));
    };
  ]

let aborts counters =
  List.fold_left (fun acc (k, v) -> if k = "tm.aborts" then acc + v else acc) 0 counters

let run ?(scale = 1.0) () =
  section "Table 4: DUDETM on STM vs HTM (1 GB/s, 1000 cycles, 4 threads)";
  let benches = benches ~scale in
  Printf.printf "%-16s" "";
  List.iter (fun b -> Printf.printf "%16s" b.bname) benches;
  print_newline ();
  let results =
    List.map (fun row -> (row, List.map (fun b -> run_bench (row.make ()) b) benches)) rows
  in
  let print_row name rs =
    Printf.printf "%-16s" name;
    List.iter (fun r -> Printf.printf "%16s" (pp_ktps r.ktps)) rs;
    print_newline ()
  in
  (match results with
  | [ (r0, v_stm); (r1, d_stm); (r2, v_htm); (r3, d_htm) ] ->
    print_row r0.rname v_stm;
    print_row r1.rname d_stm;
    Printf.printf "%-16s" "  slowdown";
    List.iter2
      (fun v d -> Printf.printf "%15.0f%%" (100.0 *. (1.0 -. (d.ktps /. v.ktps))))
      v_stm d_stm;
    print_newline ();
    print_row r2.rname v_htm;
    print_row r3.rname d_htm;
    Printf.printf "%-16s" "  slowdown";
    List.iter2
      (fun v d -> Printf.printf "%15.0f%%" (100.0 *. (1.0 -. (d.ktps /. v.ktps))))
      v_htm d_htm;
    print_newline ();
    Printf.printf "%-16s" "HTM speedup";
    List.iter2
      (fun d s -> Printf.printf "%15.2fx" (d.ktps /. s.ktps))
      d_htm d_stm;
    print_newline ();
    List.iter2
      (fun b r -> report_commit_latency ("DUDETM-STM " ^ b.bname) r)
      benches d_stm
  | _ -> assert false);
  (* Ablation: the proposed hardware change matters. *)
  Printf.printf "\nAblation: stock HTM (tx-ID counter causes conflicts) on HashTable:\n";
  let bench = List.nth benches 1 in
  let modified = fst (B.Dude_ptm.Htm_based.ptm ~name:"modified" (dude_config ())) in
  let stock = fst (Dude_htm_stock.ptm ~name:"stock" (dude_config ())) in
  let rm = run_bench modified bench in
  let rs = run_bench stock bench in
  Printf.printf "  modified HTM (conflict-exempt counter): %s, %d aborts\n"
    (pp_ktps rm.ktps) (aborts rm.counters);
  Printf.printf "  stock HTM (counter conflicts):          %s, %d aborts\n"
    (pp_ktps rs.ktps) (aborts rs.counters)

let tiny () =
  ignore
    (run_bench
       (fst (B.Dude_ptm.Htm_based.ptm ~name:"DUDETM-HTM" (dude_config ())))
       { (hashtable_bench ()) with ntxs = 400 })

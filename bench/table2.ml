(* Table 2: throughput comparison with the existing durable-transaction
   systems, Mnemosyne and NVML (1 GB/s, 1000 cycles, 4 threads).  NVML only
   runs the hash-based benchmarks (static transactions), as in the paper. *)

open Dudetm_harness.Harness

let systems = [ Dude; Dude_sync; Mnemosyne; Nvml ]

let run ?(scale = 1.0) () =
  section "Table 2: throughput vs Mnemosyne and NVML (1 GB/s, 1000 cycles, 4 threads)";
  Printf.printf "%-18s" "Benchmark";
  List.iter (fun s -> Printf.printf "%14s" (system_name s)) systems;
  print_newline ();
  List.iter
    (fun bench ->
      let bench = { bench with ntxs = int_of_float (float_of_int bench.ntxs *. scale) } in
      Printf.printf "%-18s" bench.bname;
      let dude_r = ref None in
      List.iter
        (fun sys ->
          if sys = Nvml && not bench.static_ok then Printf.printf "%14s%!" "-"
          else begin
            let r = run_bench (make_system sys) bench in
            if sys = Dude then dude_r := Some r;
            Printf.printf "%14s%!" (pp_ktps r.ktps)
          end)
        systems;
      print_newline ();
      Option.iter (report_commit_latency ("DUDETM " ^ bench.bname)) !dude_r)
    (all_benches ())

let tiny () =
  ignore (run_bench (make_system Mnemosyne) { (hashtable_bench ()) with ntxs = 400 })

(* Shard-scaling experiment (extension beyond the paper's figures): the
   sharded engine's end-to-end durable throughput at 1/2/4/8 regions and
   0/5/20% cross-shard transactions, same workload and seed throughout.

   At 0% cross-shard every region's Persist/Reproduce pipeline runs
   independently, so throughput should scale with shard count — the run
   fails if 8 shards deliver less than 4x one shard.  Cross-shard
   transactions reintroduce coupling (shared gtid lock, sibling-gated
   replay), so the 20% column shows the crossover where coordination eats
   the scaling.  Emits the machine-readable BENCH_shard.json. *)

open Dudetm_harness.Harness
module SB = Dudetm_shard.Shard_bench

let shard_counts = [ 1; 2; 4; 8 ]

let cross_pcts = [ 0; 5; 20 ]

let canonical_ntxs = 2_000

let row_json r =
  let p q = Dudetm_sim.Stats.Latency.percentile r.SB.sb_commit_latency q in
  let p50 = p 50.0 and p99 = p 99.0 in
  let tail = if p50 > 0 then float_of_int p99 /. float_of_int p50 else 0.0 in
  Printf.sprintf
    {|    {"shards": %d, "cross_pct": %d, "txs": %d, "cross_txs": %d, "cycles": %d, "ktps": %.1f, "commit_p50": %d, "commit_p95": %d, "commit_p99": %d, "p99_over_p50": %.2f}|}
    r.SB.sb_nshards r.SB.sb_cross_pct r.SB.sb_ntxs r.SB.sb_cross_txs r.SB.sb_cycles
    r.SB.sb_ktps p50 (p 95.0) p99 tail

let run ?(scale = 1.0) () =
  let ntxs = max 400 (int_of_float (float_of_int canonical_ntxs *. scale)) in
  section
    (Printf.sprintf
       "Shard scaling: partitioned KV mix, %d txs, 8 workers, 0.25 GB/s per shard" ntxs);
  let rows =
    List.concat_map
      (fun n ->
        List.map (fun pct -> SB.run ~ntxs ~nshards:n ~cross_pct:pct ()) cross_pcts)
      shard_counts
  in
  let find n pct =
    List.find (fun r -> r.SB.sb_nshards = n && r.SB.sb_cross_pct = pct) rows
  in
  let base = find 1 0 in
  Printf.printf "%-8s %-8s %12s %9s %10s   %s\n" "shards" "cross" "throughput"
    "speedup" "cross txs" "commit latency";
  List.iter
    (fun r ->
      Printf.printf "%-8d %-8s %12s %8.2fx %10d   %s\n" r.SB.sb_nshards
        (string_of_int r.SB.sb_cross_pct ^ "%") (pp_ktps r.SB.sb_ktps)
        (r.SB.sb_ktps /. base.SB.sb_ktps)
        r.SB.sb_cross_txs (SB.pp_commit_latency r))
    rows;
  let speedup8 = (find 8 0).SB.sb_ktps /. base.SB.sb_ktps in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"shard-scaling\",\n  \"txs\": %d,\n  \"workers\": 8,\n  \
       \"bandwidth_gbps\": 0.25,\n  \"speedup_8_shards_0pct\": %.2f,\n  \"rows\": [\n%s\n  ]\n}\n"
      ntxs speedup8
      (String.concat ",\n" (List.map row_json rows))
  in
  write_artifact "BENCH_shard.json" json;
  if speedup8 < 4.0 then begin
    Printf.printf
      "SHARD SCALING REGRESSION: 8 shards at 0%% cross-shard is %.2fx one shard (< 4x)\n"
      speedup8;
    exit 1
  end
  else
    Printf.printf
      "shard scaling check: 8 shards at 0%% cross-shard is %.2fx one shard (>= 4x)\n"
      speedup8

let tiny () = ignore (SB.run ~ntxs:200 ~nshards:2 ~cross_pct:10 ())

(* Ablations of DudeTM's design choices (not in the paper's evaluation, but
   directly supporting its design claims):

   A. Persist-thread count — Section 3.3 claims "typically one is enough".
   B. Volatile log capacity — the knob separating DUDETM from DUDETM-Inf;
      Finding (2) says Perform rarely blocks on a full buffer.
   C. Reproduce batch size — one persist ordering amortized over a batch of
      reproduced transactions (Section 3.4's "only necessary persistence
      ordering" argument).
   D. Lock-table size — stripe-hash false conflicts vs the paper's large
      TinySTM lock array (large transactions need a sparse table).       *)

open Dudetm_harness.Harness
module B = Dudetm_baselines
module W = Dudetm_workloads
module Config = Dudetm_core.Config
module Tm_intf = Dudetm_tm.Tm_intf
module Lock_table = Dudetm_tm.Lock_table
module Stats = Dudetm_sim.Stats

let run_dude cfg bench =
  let ptm, _ = B.Dude_ptm.Stm.ptm cfg in
  run_bench ptm bench

let counter r name = List.assoc_opt name r.counters |> Option.value ~default:0

let ablation_persist_threads ~scale =
  Printf.printf "\n[A] persist threads (B+tree, 4 Perform threads, 1 GB/s):\n";
  Printf.printf "%-18s %12s %16s\n" "persist threads" "throughput" "producer blocks";
  List.iter
    (fun p ->
      let cfg = { (dude_config ()) with Config.persist_threads = p } in
      let bench = { (bptree_bench ()) with ntxs = int_of_float (8000.0 *. scale) } in
      let ptm, d = B.Dude_ptm.Stm.ptm cfg in
      let r = run_bench ptm bench in
      Printf.printf "%-18d %12s %16d\n%!" p (pp_ktps r.ktps)
        (B.Dude_ptm.Stm.D.vlog_producer_blocks d);
      if p = 1 then report_commit_latency "1 persist thread" r)
    [ 1; 2; 4 ]

let ablation_vlog_capacity ~scale =
  Printf.printf
    "\n[B] volatile log capacity (HashTable, 4 entries/tx; blocking only appears\n    once the ring is small enough that Persist cannot stay ahead):\n";
  Printf.printf "%-18s %12s %16s\n" "vlog entries" "throughput" "producer blocks";
  List.iter
    (fun cap ->
      let cfg = { (dude_config ()) with Config.vlog_capacity = cap } in
      let bench = { (hashtable_bench ()) with ntxs = int_of_float (8000.0 *. scale) } in
      let ptm, d = B.Dude_ptm.Stm.ptm cfg in
      let r = run_bench ptm bench in
      Printf.printf "%-18d %12s %16d\n%!" cap (pp_ktps r.ktps)
        (B.Dude_ptm.Stm.D.vlog_producer_blocks d))
    [ 16; 64; 512; 131072 ]

let ablation_reproduce_batch ~scale =
  Printf.printf "\n[C] reproduce batch (HashTable; persist orderings amortize over the batch):\n";
  Printf.printf "%-18s %12s %18s\n" "batch (txs)" "throughput" "persist orderings";
  List.iter
    (fun batch ->
      let cfg = { (dude_config ()) with Config.reproduce_batch = batch } in
      let bench = { (hashtable_bench ()) with ntxs = int_of_float (8000.0 *. scale) } in
      let ptm, d = B.Dude_ptm.Stm.ptm cfg in
      let r = run_bench ptm bench in
      ignore d;
      let ops =
        match ptm.B.Ptm_intf.nvm with
        | Some nvm -> Dudetm_nvm.Nvm.persist_ops nvm
        | None -> 0
      in
      Printf.printf "%-18d %12s %18d\n%!" batch (pp_ktps r.ktps) ops)
    [ 1; 8; 64; 512 ]

(* DudeTM over TinySTMs with different lock-table sizes: small tables
   manufacture stripe-hash false conflicts on TPC-C's ~300-word read
   sets. *)
module Stm_bits (Bits : sig
  val bits : int
end) =
struct
  include Dudetm_tm.Tinystm

  let create ?costs ?seed store = create_with_bits ?costs ?seed ~bits:Bits.bits store
end

module Dude_16 = B.Dude_ptm.Make (Stm_bits (struct let bits = 16 end))
module Dude_20 = B.Dude_ptm.Make (Stm_bits (struct let bits = 20 end))

let ablation_lock_table ~scale =
  Printf.printf
    "\n[D] TM lock-table stripes (TPC-C B+tree, 4 threads; small tables\n    manufacture stripe-hash false conflicts on large read sets; at 8\n    threads a small table's abort storm approaches livelock):\n%!";
  Printf.printf "%-18s %12s %12s\n" "stripes" "throughput" "aborts";
  (* Capped at 800 transactions: with very small tables the abort storm
     makes larger runs take unboundedly long (which is the point being
     demonstrated). *)
  let bench =
    { (tpcc_bench ~storage:W.Kv.Tree ~items:10_000 ()) with
      ntxs = int_of_float (800.0 *. Float.min scale 1.0);
    }
  in
  let cfg = dude_config ~nthreads:4 () in
  let run name make =
    let ptm, _ = make cfg in
    let r = run_bench ptm bench in
    Printf.printf "%-18s %12s %12d\n%!" name (pp_ktps r.ktps) (counter r "tm.aborts")
  in
  (* 2^14 is omitted from the default sweep: at 8 threads its abort storm
     approaches livelock (the extreme end of the effect being shown). *)
  run "2^16" (Dude_16.ptm ~name:"dude-16");
  run "2^20 (default)" (Dude_20.ptm ~name:"dude-20")

(* Write-through vs write-back STM access under DudeTM (Section 4.1's
   design choice): write-back adds a write-set probe to every read and
   defers stores to commit. *)
module Dude_wb = B.Dude_ptm.Make (Dudetm_tm.Tinystm_wb)

let ablation_access_mode ~scale =
  Printf.printf
    "\n[F] STM access mode under DudeTM (Section 4.1: write-through permits\n    in-place shadow updates; write-back pays read redirection):\n";
  Printf.printf "%-18s %14s %14s\n" "access mode" "B+tree" "TATP (B+tree)";
  let benches =
    [ { (bptree_bench ()) with ntxs = int_of_float (6000.0 *. scale) };
      { (tatp_bench ~storage:W.Kv.Tree ()) with ntxs = int_of_float (8000.0 *. scale) } ]
  in
  let row name make =
    Printf.printf "%-18s" name;
    List.iter
      (fun bench ->
        let ptm, _ = make (dude_config ()) in
        let r = run_bench ptm bench in
        Printf.printf "%14s%!" (pp_ktps r.ktps))
      benches;
    print_newline ()
  in
  row "write-through" (B.Dude_ptm.Stm.ptm ~name:"dude-wt");
  row "write-back" (Dude_wb.ptm ~name:"dude-wb")

(* Section 5.2.2's microbenchmark: maximum empty-transaction rate per
   thread.  The paper reports 30M+/s for DudeTM/Mnemosyne and at most
   1.14M/s for NVML (its per-transaction metadata allocation). *)
let empty_tx_rate ~scale =
  Printf.printf "\n[E] empty transactions per second per thread (Section 5.2.2):\n";
  let ntxs = int_of_float (20_000.0 *. scale) in
  List.iter
    (fun sys ->
      let ptm = make_system ~nthreads:1 sys in
      let bench =
        {
          bname = "empty";
          think = 0;
          ntxs;
          static_ok = true;
          setup =
            (fun ptm ->
              fun ~thread ~rng ->
                ignore rng;
                (* A read-only no-op transaction (one read, no writes). *)
                let wset = if ptm.B.Ptm_intf.requires_static then Some [] else None in
                (match ptm.B.Ptm_intf.atomically ~thread ?wset (fun tx -> ignore (tx.B.Ptm_intf.read 0)) with
                | Some _ -> ()
                | None -> ());
                0);
        }
      in
      let r = run_bench ptm bench in
      Printf.printf "  %-14s %10.2f M/s\n%!" (system_name sys) (r.ktps /. 1000.0))
    [ Dude; Mnemosyne; Nvml ]

let run ?(scale = 1.0) () =
  section
    "Ablations: persist-thread count, volatile-log capacity, reproduce batch,\nlock-table size (design choices behind Sections 3.3-3.4)";
  ablation_persist_threads ~scale;
  ablation_vlog_capacity ~scale;
  ablation_reproduce_batch ~scale;
  ablation_lock_table ~scale;
  ablation_access_mode ~scale;
  empty_tx_rate ~scale

let tiny () =
  ignore
    (run_dude
       { (dude_config ()) with Config.reproduce_batch = 8 }
       { (hashtable_bench ()) with ntxs = 400 })

(* Persist-pipeline tail experiment: commit-latency distribution under
   bounded adaptive group commit.

   Part 1 re-runs the shard workload at 1/2/4/8 shards (0% cross) and
   reports p50/p99 commit latency plus the p99/p50 tail-amplification
   ratio — the metric the bounded batches exist to control.  The run
   fails if one shard's ratio exceeds 10x: that is the regression gate
   against the old drain-everything Persist loop, whose single giant
   flush put p99 at 150x p50.

   Part 2 sweeps the batch bound and the group-commit deadline at one
   shard, mapping the latency/throughput trade-off: small bounds cut the
   tail but pay per-record overhead; long deadlines amortize better but
   delay lightly loaded batches.  Emits BENCH_persist.json. *)

open Dudetm_harness.Harness
module SB = Dudetm_shard.Shard_bench

let canonical_ntxs = 2_000

let shard_counts = [ 1; 2; 4; 8 ]

let batch_maxes = [ 16; 32; 64; 128; 256 ]

let deadlines = [ 500; 1_000; 4_000; 16_000 ]

let pcts r =
  let p q = Dudetm_sim.Stats.Latency.percentile r.SB.sb_commit_latency q in
  (p 50.0, p 99.0)

let row_json ?batch_max ?deadline r =
  let p50, p99 = pcts r in
  let opt name = function
    | None -> ""
    | Some v -> Printf.sprintf "\"%s\": %d, " name v
  in
  Printf.sprintf
    {|    {"shards": %d, %s%s"txs": %d, "ktps": %.1f, "commit_p50": %d, "commit_p99": %d, "p99_over_p50": %.1f}|}
    r.SB.sb_nshards
    (opt "batch_max" batch_max)
    (opt "deadline" deadline)
    r.SB.sb_ntxs r.SB.sb_ktps p50 p99 (SB.tail_ratio r)

let run ?(scale = 1.0) () =
  let ntxs = max 400 (int_of_float (float_of_int canonical_ntxs *. scale)) in
  section
    (Printf.sprintf
       "Persist pipeline tail: bounded group commit, %d txs, 8 workers, 0.25 GB/s per \
        shard"
       ntxs);
  Printf.printf "%-8s %12s %10s %10s %10s\n" "shards" "throughput" "p50" "p99"
    "p99/p50";
  let shard_rows =
    List.map
      (fun n ->
        let r = SB.run ~ntxs ~nshards:n ~cross_pct:0 () in
        let p50, p99 = pcts r in
        Printf.printf "%-8d %12s %10d %10d %9.1fx\n" n (pp_ktps r.SB.sb_ktps) p50 p99
          (SB.tail_ratio r);
        r)
      shard_counts
  in
  Printf.printf "\nbatch-bound sweep at 1 shard (deadline = default):\n";
  Printf.printf "%-10s %12s %10s %10s %10s\n" "batch_max" "throughput" "p50" "p99"
    "p99/p50";
  let bound_rows =
    List.map
      (fun b ->
        let r =
          SB.run ~ntxs ~batch_min:(min 16 b) ~batch_max:b ~nshards:1 ~cross_pct:0 ()
        in
        let p50, p99 = pcts r in
        Printf.printf "%-10d %12s %10d %10d %9.1fx\n" b (pp_ktps r.SB.sb_ktps) p50 p99
          (SB.tail_ratio r);
        (b, r))
      batch_maxes
  in
  Printf.printf "\ndeadline sweep at 1 shard (bounds = default):\n";
  Printf.printf "%-10s %12s %10s %10s %10s\n" "deadline" "throughput" "p50" "p99"
    "p99/p50";
  let deadline_rows =
    List.map
      (fun d ->
        let r = SB.run ~ntxs ~batch_deadline:d ~nshards:1 ~cross_pct:0 () in
        let p50, p99 = pcts r in
        Printf.printf "%-10d %12s %10d %10d %9.1fx\n" d (pp_ktps r.SB.sb_ktps) p50 p99
          (SB.tail_ratio r);
        (d, r))
      deadlines
  in
  let one = List.hd shard_rows in
  let ratio1 = SB.tail_ratio one in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"persist-tail\",\n  \"txs\": %d,\n  \"workers\": 8,\n  \
       \"bandwidth_gbps\": 0.25,\n  \"tail_ratio_1_shard\": %.1f,\n  \"shards\": [\n%s\n  \
       ],\n  \"batch_sweep\": [\n%s\n  ],\n  \"deadline_sweep\": [\n%s\n  ]\n}\n"
      ntxs ratio1
      (String.concat ",\n" (List.map row_json shard_rows))
      (String.concat ",\n"
         (List.map (fun (b, r) -> row_json ~batch_max:b r) bound_rows))
      (String.concat ",\n"
         (List.map (fun (d, r) -> row_json ~deadline:d r) deadline_rows))
  in
  write_artifact "BENCH_persist.json" json;
  if ratio1 > 10.0 then begin
    Printf.printf
      "PERSIST TAIL REGRESSION: commit p99/p50 at 1 shard is %.1fx (> 10x)\n" ratio1;
    exit 1
  end
  else
    Printf.printf "persist tail check: commit p99/p50 at 1 shard is %.1fx (<= 10x)\n"
      ratio1

let tiny () = ignore (SB.run ~ntxs:200 ~batch_max:32 ~nshards:1 ~cross_pct:0 ())

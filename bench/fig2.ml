(* Figure 2: throughput of Volatile-STM / DUDETM-Inf / DUDETM / DUDETM-Sync
   across NVM write bandwidth (1-16 GB/s), six benchmarks. *)

open Dudetm_harness.Harness

let bandwidths = [ 1.0; 2.0; 4.0; 8.0; 16.0 ]

let systems = [ Volatile; Dude_inf; Dude; Dude_sync; Dude_sync_pcm ]

let run ?(scale = 1.0) () =
  section "Figure 2: throughput vs NVM bandwidth (4 threads, latency 1000 cycles;\nDUDETM-Sync(3500) shows the paper's PCM-latency sensitivity)";
  let scale_bench b = { b with ntxs = int_of_float (float_of_int b.ntxs *. scale) } in
  List.iter
    (fun bench ->
      let bench = scale_bench bench in
      Printf.printf "\n[%s]\n%-18s" bench.bname "system";
      List.iter (fun bw -> Printf.printf "%12s" (Printf.sprintf "%.0f GB/s" bw)) bandwidths;
      print_newline ();
      let dude_r = ref None in
      List.iter
        (fun sys ->
          Printf.printf "%-18s" (system_name sys);
          List.iter
            (fun bw ->
              if sys = Volatile && bw > 1.0 then Printf.printf "%12s%!" "\""
              else begin
                let ptm = make_system ~bandwidth:bw sys in
                let r = run_bench ptm bench in
                if sys = Dude && bw = 1.0 then dude_r := Some r;
                Printf.printf "%12s%!" (Printf.sprintf "%.2fM" (r.ktps /. 1000.0))
              end)
            bandwidths;
          print_newline ())
        systems;
      Option.iter (report_commit_latency "DUDETM @1GB/s") !dude_r)
    (all_benches ())

let tiny () =
  let b = { (hashtable_bench ()) with ntxs = 400 } in
  List.iter (fun sys -> ignore (run_bench (make_system sys) b)) [ Volatile; Dude; Dude_sync ]

(* Table 3: durable-transaction latency distribution of the hash-based
   TPC-C benchmark, measured with the paper's acknowledgement protocol
   (Section 5.3): a thread checks the global durable ID after each of its
   transactions and acknowledges everything at or below it. *)

open Dudetm_harness.Harness
module Stats = Dudetm_sim.Stats
module Cycles = Dudetm_sim.Cycles

let systems = [ Dude; Dude_sync; Mnemosyne; Nvml ]

let percentiles = [ 50.0; 90.0; 99.0 ]

let run ?(scale = 1.0) () =
  section "Table 3: durable transaction latency, TPC-C (hash)";
  let bench = tpcc_bench ~storage:Dudetm_workloads.Kv.Hash () in
  let bench = { bench with ntxs = int_of_float (float_of_int bench.ntxs *. scale) } in
  let results =
    List.map (fun sys -> (sys, run_bench ~measure_latency:true (make_system sys) bench)) systems
  in
  Printf.printf "%-12s" "Percentage";
  List.iter (fun (s, _) -> Printf.printf "%16s" (system_name s)) results;
  print_newline ();
  List.iter
    (fun p ->
      Printf.printf "%-12s" (Printf.sprintf "%.0f%%" p);
      List.iter
        (fun (_, r) ->
          Printf.printf "%16s"
            (Printf.sprintf "%.0f us" (Cycles.to_us (Stats.Latency.percentile r.latency p))))
        results;
      print_newline ())
    percentiles;
  List.iter (fun (s, r) -> report_commit_latency (system_name s) r) results

let tiny () =
  ignore
    (run_bench ~measure_latency:true (make_system Dude)
       { (tpcc_bench ~storage:Dudetm_workloads.Kv.Hash ()) with ntxs = 80 })

(* Serving front end: latency vs offered load, to the knee and past it.

   For 1 and 8 shards: a closed-loop calibration leg (think 0) measures
   the service capacity C, then an open-loop (Poisson) sweep offers
   fractions of C from well below the knee to 1.5x past it.  Offered
   load — not thread count — is the independent variable, which is what
   an arrival process independent of service time buys: past the knee
   the queue grows and the admission gate sheds instead of letting
   latency run away unboundedly.

   Gates (per shard count):
   - p99 SLO at the target load (0.5 x C): nothing shed, and write p99
     within 10x the light-load (0.3 x C) write p99 — the pipeline must
     hold its latency profile at the load it is provisioned for;
   - the curve reaches the knee: at least one sweep point sheds >= 1% of
     submitted requests with a typed Overloaded reply (otherwise the
     sweep never actually stressed admission control).

   Emits BENCH_serve.json with, per point, throughput, shed counts, gate
   transitions, percentiles and the full log2 latency histograms. *)

open Dudetm_harness.Harness
module SL = Dudetm_serve.Serve_load
module Stats = Dudetm_sim.Stats

let ntenants = 4

(* Sessions per tenant scale with the shard count: a wider engine drains
   the request queue proportionally faster, so reaching the shedding
   knee needs proportionally more concurrent arrival streams (each
   session's in-flight window bounds how far it can overrun). *)
let sessions_for nshards = 2 * max 2 nshards

let fractions = [ 0.3; 0.5; 0.7; 0.85; 1.0; 1.2; 1.5 ]

let target_fraction = 0.5

let slo_multiple = 10.0

let knee_shed_fraction = 0.01

let p r q = Stats.Latency.percentile r q

type point = { pt_frac : float; pt : SL.result }

let submitted r = r.SL.r_done + r.SL.r_shed + r.SL.r_aborted

let shed_frac r =
  if submitted r = 0 then 0.0
  else float_of_int r.SL.r_shed /. float_of_int (submitted r)

let run_points ~nshards ~reqs =
  let sessions = sessions_for nshards in
  (* Capacity: closed loop, zero think — every session always has one
     request outstanding, so goodput is the service rate at this
     concurrency. *)
  let cal =
    SL.run ~seed:11 ~nshards ~ntenants ~sessions ~reqs
      ~mode:(SL.Closed { think = 0 })
      ()
  in
  let capacity = cal.SL.r_achieved_ktps in
  Printf.printf "%d shard%s: closed-loop capacity %s (%d sessions)\n" nshards
    (if nshards = 1 then "" else "s")
    (pp_ktps capacity) (ntenants * sessions);
  let points =
    List.map
      (fun frac ->
        let r =
          SL.run ~seed:11 ~nshards ~ntenants ~sessions ~reqs
            ~mode:(SL.Open { ktps = capacity *. frac })
            ()
        in
        { pt_frac = frac; pt = r })
      fractions
  in
  Printf.printf "  %-10s %12s %12s %8s %7s %10s %10s %6s\n" "offered" "rate"
    "goodput" "shed" "shed%" "p99 write" "p99 read" "gate";
  List.iter
    (fun { pt_frac; pt = r } ->
      Printf.printf "  %-10s %12s %12s %8d %6.2f%% %10d %10d %6d\n"
        (Printf.sprintf "%.2fxC" pt_frac)
        (pp_ktps r.SL.r_offered_ktps)
        (pp_ktps r.SL.r_achieved_ktps)
        r.SL.r_shed
        (100.0 *. shed_frac r)
        (p r.SL.r_lat_write 99.0) (p r.SL.r_lat_read 99.0) r.SL.r_gate_trips)
    points;
  (cal, capacity, points)

let point_json ~nshards ~capacity { pt_frac; pt = r } =
  Printf.sprintf
    {|    {"shards": %d, "capacity_ktps": %.1f, "fraction": %.2f, "offered_ktps": %.1f, "achieved_ktps": %.1f, "done": %d, "shed": %d, "aborted": %d, "blocked": %d, "gate_trips": %d, "gate_untrips": %d, "queue_depth_hwm": %d, "write_p50": %d, "write_p95": %d, "write_p99": %d, "read_p50": %d, "read_p95": %d, "read_p99": %d, "write_histogram": %s, "read_histogram": %s}|}
    nshards capacity pt_frac r.SL.r_offered_ktps r.SL.r_achieved_ktps r.SL.r_done
    r.SL.r_shed r.SL.r_aborted r.SL.r_blocked r.SL.r_gate_trips r.SL.r_gate_untrips
    r.SL.r_depth_hwm
    (p r.SL.r_lat_write 50.0)
    (p r.SL.r_lat_write 95.0)
    (p r.SL.r_lat_write 99.0)
    (p r.SL.r_lat_read 50.0)
    (p r.SL.r_lat_read 95.0)
    (p r.SL.r_lat_read 99.0)
    (histogram_json r.SL.r_lat_write)
    (histogram_json r.SL.r_lat_read)

let run ?(scale = 1.0) () =
  let reqs = max 60 (int_of_float (300.0 *. scale)) in
  section
    (Printf.sprintf
       "Serving front end: latency vs offered load, %d tenants, sessions scaled \
        with shard count, open-loop sweep to 1.5x capacity"
       ntenants);
  let legs_json = ref [] in
  let gate_failures = ref [] in
  List.iter
    (fun nshards ->
      let _cal, capacity, points = run_points ~nshards ~reqs in
      let find frac =
        List.find (fun pp -> Float.abs (pp.pt_frac -. frac) < 1e-9) points
      in
      let base = (find 0.3).pt and target = (find target_fraction).pt in
      let base_p99 = p base.SL.r_lat_write 99.0 in
      let target_p99 = p target.SL.r_lat_write 99.0 in
      let slo = int_of_float (slo_multiple *. float_of_int (max 1 base_p99)) in
      if target.SL.r_shed > 0 then
        gate_failures :=
          Printf.sprintf "%d shards: %d requests shed at the %.1fxC target load"
            nshards target.SL.r_shed target_fraction
          :: !gate_failures;
      if target_p99 > slo then
        gate_failures :=
          Printf.sprintf
            "%d shards: write p99 %d at %.1fxC exceeds the SLO %d (%.0fx light-load p99 \
             %d)"
            nshards target_p99 target_fraction slo slo_multiple base_p99
          :: !gate_failures;
      let knee_points =
        List.filter (fun pp -> shed_frac pp.pt >= knee_shed_fraction) points
      in
      if knee_points = [] then
        gate_failures :=
          Printf.sprintf
            "%d shards: no sweep point shed >= %.0f%% — the curve never reached the knee"
            nshards (100.0 *. knee_shed_fraction)
          :: !gate_failures
      else
        Printf.printf
          "  knee: shedding >= %.0f%% from %.2fxC on; target %.1fxC p99 %d within SLO %d\n"
          (100.0 *. knee_shed_fraction)
          (List.hd knee_points).pt_frac target_fraction target_p99 slo;
      legs_json := !legs_json @ List.map (point_json ~nshards ~capacity) points)
    [ 1; 8 ];
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"serve\",\n  \"tenants\": %d,\n  \"sessions_per_tenant\": \
       \"2 * max 2 shards\",\n  \"reqs_per_session\": %d,\n  \"target_fraction\": \
       %.2f,\n  \"gate\": \
       \"at %.1fxC: shed == 0 and write p99 <= %.0fx the 0.3xC p99; some sweep point \
       sheds >= %.0f%% (knee reached)\",\n  \"points\": [\n%s\n  ]\n}\n"
      ntenants reqs target_fraction target_fraction slo_multiple
      (100.0 *. knee_shed_fraction)
      (String.concat ",\n" !legs_json)
  in
  write_artifact "BENCH_serve.json" json;
  match !gate_failures with
  | [] ->
    Printf.printf
      "serve gate: p99 SLO held at the target load and the sweep reached the shedding \
       knee\n"
  | fs ->
    List.iter (fun f -> Printf.printf "SERVE GATE FAILURE: %s\n" f) fs;
    exit 1

let tiny () =
  ignore
    (SL.run ~seed:11 ~nshards:1 ~ntenants:2 ~sessions:2 ~reqs:40
       ~mode:(SL.Closed { think = 200 })
       ())

(* Figure 5: scalability — B+-tree TPC-C throughput vs thread count,
   normalized to one thread, for TinySTM (volatile), DUDETM, and the
   low-conflict DUDETM variant where each thread serves a fixed district. *)

open Dudetm_harness.Harness
module W = Dudetm_workloads

let thread_counts = [ 1; 2; 4; 8 ]

type series = { sname : string; make : int -> Dudetm_baselines.Ptm_intf.t; fixed_district : bool }

let series =
  [
    { sname = "TinySTM (volatile)"; make = (fun n -> make_system ~nthreads:n Volatile); fixed_district = false };
    { sname = "DUDETM"; make = (fun n -> make_system ~nthreads:n Dude); fixed_district = false };
    { sname = "DUDETM (per-district)"; make = (fun n -> make_system ~nthreads:n Dude); fixed_district = true };
  ]

let run ?(scale = 1.0) () =
  section "Figure 5: scalability, TPC-C (B+-tree), normalized to 1 thread\n(1 GB/s, 1000 cycles; per-district = each thread serves a fixed district)";
  Printf.printf "%-24s" "series";
  List.iter (fun n -> Printf.printf "%10d thr" n) thread_counts;
  print_newline ();
  let dude_r = ref None in
  List.iter
    (fun s ->
      Printf.printf "%-24s" s.sname;
      let base = ref 0.0 in
      List.iter
        (fun n ->
          let district_of_thread = if s.fixed_district then Some (fun th -> 1 + th) else None in
          (* TPC-C specifies 100k items; the base benchmarks scale that to
             1000, which at 8 threads manufactures stock-row conflicts the
             paper's setup does not have.  Use 10k here. *)
          let bench =
            tpcc_bench ~storage:W.Kv.Tree
              ~ntxs:(int_of_float (float_of_int (250 * n) *. scale))
              ~items:10_000 ?district_of_thread ()
          in
          let r = run_bench (s.make n) bench in
          if n = 1 then base := r.ktps;
          if s.sname = "DUDETM" && n = 4 then dude_r := Some r;
          Printf.printf "%10.2fx%!" (r.ktps /. !base))
        thread_counts;
      print_newline ())
    series;
  Option.iter (report_commit_latency "DUDETM, 4 threads") !dude_r

let tiny () =
  ignore (run_bench (make_system ~nthreads:2 Dude) (tpcc_bench ~storage:W.Kv.Tree ~ntxs:60 ()))

(* Figure 4: swap overhead — throughput of updating a B+-tree key-value
   store as the shadow DRAM shrinks below the NVM size, for two Zipfian
   constants and both paging implementations (software page table vs
   hardware/TLB with shootdowns). *)

open Dudetm_harness.Harness
module W = Dudetm_workloads
module Config = Dudetm_core.Config
module Shadow = Dudetm_shadow.Shadow
module Rng = Dudetm_sim.Rng
module B = Dudetm_baselines
module Ptm = B.Ptm_intf

let heap = 8 * 1024 * 1024

let records = 160_000

let shadow_fracs = [ 1.0; 0.5; 0.25; 0.125 ]

let thetas = [ 0.99; 1.07 ]

let run_point ~mode ~frames ~theta ~ntxs =
  let cfg =
    {
      (dude_config ~heap ()) with
      Config.shadow_frames = Some frames;
      shadow_mode = mode;
    }
  in
  let ptm, _ = B.Dude_ptm.Stm.ptm cfg in
  let bench =
    {
      bname = "swap";
      think = 300;
      ntxs;
      static_ok = false;
      setup =
        (fun ptm ->
          let y = W.Ycsb.setup ptm ~records ~theta ~read_fraction:0.0 () in
          fun ~thread ~rng ->
            W.Ycsb.update_only y ~thread ~rng;
            0);
    }
  in
  run_bench ptm bench

let run ?(scale = 1.0) () =
  section "Figure 4: swap overhead vs shadow-memory size\n(B+-tree KV update workload; NVM heap 8 MiB, working set ~65%; 4 threads)";
  let ntxs = int_of_float (20_000.0 *. scale) in
  let pages = heap / 4096 in
  Printf.printf "%-22s %-8s" "series" "theta";
  List.iter (fun f -> Printf.printf "%14s" (Printf.sprintf "%.0f%% shadow" (100.0 *. f))) shadow_fracs;
  print_newline ();
  let full_shadow_r = ref None in
  List.iter
    (fun mode ->
      List.iter
        (fun theta ->
          Printf.printf "%-22s %-8.2f"
            (match mode with Shadow.Software -> "software paging" | Shadow.Hardware -> "hardware paging")
            theta;
          List.iter
            (fun frac ->
              let frames = max 64 (int_of_float (float_of_int pages *. frac)) in
              let r = run_point ~mode ~frames ~theta ~ntxs in
              if mode = Shadow.Software && theta = 0.99 && frac = 1.0 then
                full_shadow_r := Some r;
              Printf.printf "%14s%!" (pp_ktps r.ktps))
            shadow_fracs;
          print_newline ())
        thetas)
    [ Shadow.Software; Shadow.Hardware ];
  Option.iter (report_commit_latency "software, th 0.99, 100%") !full_shadow_r

let tiny () = ignore (run_point ~mode:Shadow.Software ~frames:512 ~theta:0.99 ~ntxs:300)

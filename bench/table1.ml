(* Table 1: memory-write statistics of each benchmark under DUDETM
   (1 GB/s, 1000-cycle latency, 4 threads). *)

open Dudetm_harness.Harness

let run ?(scale = 1.0) () =
  section "Table 1: memory writes per benchmark (DUDETM, 1 GB/s, 1000 cycles, 4 threads)";
  Printf.printf "%-18s %14s %14s %16s  %s\n" "Benchmark" "# writes" "Throughput"
    "# writes per tx" "commit latency";
  List.iter
    (fun bench ->
      let bench = { bench with ntxs = int_of_float (float_of_int bench.ntxs *. scale) } in
      let ptm = make_system Dude in
      let r = run_bench ptm bench in
      let writes_per_tx = float_of_int r.writes /. float_of_int r.ntxs_run in
      let writes_per_sec = writes_per_tx *. r.ktps *. 1e3 in
      Printf.printf "%-18s %12.2f M/s %14s %16.1f  %s\n%!" bench.bname (writes_per_sec /. 1e6)
        (pp_ktps r.ktps) writes_per_tx (pp_commit_latency r))
    (all_benches ())

let tiny () =
  ignore (run_bench (make_system Dude) { (tatp_bench ~storage:Dudetm_workloads.Kv.Hash ()) with ntxs = 400 })

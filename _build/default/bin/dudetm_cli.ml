(* Command-line driver: run any benchmark workload on any evaluated system
   with custom parameters, or run randomized crash-recovery torture.

     dune exec bin/dudetm_cli.exe -- run --workload hashtable --system dude
     dune exec bin/dudetm_cli.exe -- run -w tpcc-tree -s mnemosyne -n 2000 --threads 8
     dune exec bin/dudetm_cli.exe -- torture --rounds 100
     dune exec bin/dudetm_cli.exe -- layout *)

open Cmdliner
module H = Dudetm_harness.Harness
module Config = Dudetm_core.Config
module Nvm = Dudetm_nvm.Nvm
module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module W = Dudetm_workloads
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

(* ------------------------------- run ---------------------------------- *)

let workload_of_string = function
  | "hashtable" -> Ok (H.hashtable_bench ())
  | "bptree" -> Ok (H.bptree_bench ())
  | "tatp-hash" -> Ok (H.tatp_bench ~storage:W.Kv.Hash ())
  | "tatp-tree" -> Ok (H.tatp_bench ~storage:W.Kv.Tree ())
  | "tpcc-hash" -> Ok (H.tpcc_bench ~storage:W.Kv.Hash ())
  | "tpcc-tree" -> Ok (H.tpcc_bench ~storage:W.Kv.Tree ())
  | "tpcc-mixed" -> Ok (H.tpcc_bench ~storage:W.Kv.Tree ~mixed:true ())
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown workload %S (try hashtable, bptree, tatp-hash, tatp-tree, tpcc-hash, tpcc-tree, tpcc-mixed)"
           s))

let system_of_string = function
  | "dude" -> Ok H.Dude
  | "dude-inf" -> Ok H.Dude_inf
  | "dude-sync" -> Ok H.Dude_sync
  | "volatile" -> Ok H.Volatile
  | "mnemosyne" -> Ok H.Mnemosyne
  | "nvml" -> Ok H.Nvml
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown system %S (try dude, dude-inf, dude-sync, volatile, mnemosyne, nvml)" s))

let workload_conv = Arg.conv (workload_of_string, fun ppf b -> Fmt.string ppf b.H.bname)

let system_conv = Arg.conv (system_of_string, fun ppf s -> Fmt.string ppf (H.system_name s))

let run_cmd =
  let workload =
    Arg.(
      required
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Benchmark workload to run.")
  in
  let system =
    Arg.(
      value & opt system_conv H.Dude
      & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc:"Durable-transaction system.")
  in
  let ntxs =
    Arg.(value & opt int 0 & info [ "n"; "txs" ] ~doc:"Transactions to run (0 = default).")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Perform threads.") in
  let bandwidth =
    Arg.(value & opt float 1.0 & info [ "bandwidth" ] ~doc:"NVM write bandwidth, GB/s.")
  in
  let latency =
    Arg.(value & opt int 1000 & info [ "latency" ] ~doc:"Persist latency, cycles.")
  in
  let counters =
    Arg.(value & flag & info [ "counters" ] ~doc:"Print all system counters afterwards.")
  in
  let run workload system ntxs threads bandwidth latency counters =
    if system = H.Nvml && not workload.H.static_ok then
      `Error (false, "NVML only supports the hash-based (static) workloads")
    else begin
      let bench = if ntxs > 0 then { workload with H.ntxs } else workload in
      let ptm = H.make_system ~nthreads:threads ~latency ~bandwidth system in
      let r = H.run_bench ptm bench in
      Printf.printf "%s on %s: %d transactions, %d threads, %.1f GB/s, %d-cycle persists\n"
        bench.H.bname ptm.Dudetm_baselines.Ptm_intf.name r.H.ntxs_run threads bandwidth latency;
      Printf.printf "  throughput:       %s\n" (H.pp_ktps r.H.ktps);
      Printf.printf "  cycles per tx:    %.0f (wall, all threads)\n" r.H.cycles_per_tx;
      Printf.printf "  writes per tx:    %.1f\n"
        (float_of_int r.H.writes /. float_of_int (max 1 r.H.ntxs_run));
      Printf.printf "  NVM write bytes:  %d (%.1f per tx)\n" r.H.nvm_bytes
        (float_of_int r.H.nvm_bytes /. float_of_int (max 1 r.H.ntxs_run));
      if counters then begin
        print_endline "  counters:";
        List.iter (fun (k, v) -> Printf.printf "    %-28s %d\n" k v) r.H.counters
      end;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload on one system and report throughput.")
    Term.(ret (const run $ workload $ system $ ntxs $ threads $ bandwidth $ latency $ counters))

(* ------------------------------ torture ------------------------------- *)

exception Crashed

let torture_round cfg seed =
  let rng = Rng.create seed in
  let crash_cycles = 1_000 + Rng.int rng 500_000 in
  let evict = Rng.float rng in
  let t = D.create cfg in
  let slots = 128 in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       ignore
                         (D.atomically t ~thread:th (fun tx ->
                              let c = D.read tx 0 in
                              let c1 = Int64.add c 1L in
                              D.write tx (8 + (8 * (Int64.to_int c1 mod slots))) c1;
                              D.write tx 0 c1))
                     done))
            done;
            Sched.advance crash_cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:evict ~rng (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  let d = report.Dudetm_core.Dudetm.durable in
  if D.heap_read_u64 t2 0 <> Int64.of_int d then
    failwith (Printf.sprintf "round %d: counter != durable id %d" seed d);
  (crash_cycles, evict, d)

let torture_cmd =
  let rounds = Arg.(value & opt int 50 & info [ "rounds" ] ~doc:"Crash rounds to run.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each round.") in
  let run rounds verbose =
    let cfg =
      {
        Config.default with
        Config.heap_size = 1 lsl 20;
        nthreads = 3;
        vlog_capacity = 1024;
        plog_size = 1 lsl 14;
      }
    in
    for seed = 1 to rounds do
      let cycles, evict, d = torture_round cfg seed in
      if verbose then
        Printf.printf "round %3d: crash@%-7d evict=%.2f durable=%d OK\n%!" seed cycles evict d
    done;
    Printf.printf "torture: %d randomized crash/recovery rounds, all consistent\n" rounds
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Randomized crash-point injection with recovery verification.")
    Term.(const run $ rounds $ verbose)

(* ------------------------------ layout -------------------------------- *)

let layout_cmd =
  let run () =
    let cfg = Config.default in
    Printf.printf "default configuration:\n";
    Printf.printf "  heap:            %d MiB at offset 0\n" (cfg.Config.heap_size lsr 20);
    Printf.printf "  meta block:      %d KiB at 0x%x\n" (cfg.Config.meta_size lsr 10)
      (Config.meta_base cfg);
    Printf.printf "  log rings:       %d x %d KiB starting at 0x%x\n"
      (Config.plog_regions cfg) (cfg.Config.plog_size lsr 10) (Config.plog_base cfg 0);
    Printf.printf "  device size:     %d MiB\n" (Config.nvm_size cfg lsr 20);
    Printf.printf "  threads:         %d\n" cfg.Config.nthreads;
    Printf.printf "  volatile log:    %d entries per thread\n" cfg.Config.vlog_capacity;
    Printf.printf "  NVM:             %.1f GB/s, %d-cycle persists\n"
      cfg.Config.pmem.Dudetm_nvm.Pmem_config.bandwidth_gbps
      cfg.Config.pmem.Dudetm_nvm.Pmem_config.persist_latency
  in
  Cmd.v (Cmd.info "layout" ~doc:"Print the default NVM layout and configuration.")
    Term.(const run $ const ())

let () =
  let doc = "DudeTM: decoupled durable transactions for persistent memory (simulated)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "dudetm" ~doc) [ run_cmd; torture_cmd; layout_cmd ]))

(* Crash-torture harness: sweep crash points and adversarial cache-eviction
   fractions over a mixed workload (counters + allocation-heavy linked
   list), verifying after every crash that recovery restores exactly the
   durable prefix.

     dune exec examples/crash_torture.exe -- [rounds]

   This is the experiment a real persistent-memory testbed cannot run
   deterministically: the simulator replays every crash bit-for-bit from
   its seed. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

exception Crashed

let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 20;
    nthreads = 3;
    vlog_capacity = 1024;
    plog_size = 1 lsl 14 (* tiny: forces continuous recycling under load *);
  }

let slots = 128

(* Mixed transaction: bump the counter, stamp a slot, and every 4th
   transaction also grow a linked list with pmalloc. *)
let work_tx t thread =
  ignore
    (D.atomically t ~thread (fun tx ->
         let c = D.read tx 0 in
         let c1 = Int64.add c 1L in
         D.write tx (8 + (8 * (Int64.to_int c1 mod slots))) c1;
         if Int64.to_int c1 mod 4 = 0 then begin
           let cell = D.pmalloc tx 16 in
           D.write tx cell c1;
           D.write tx (cell + 8) (D.read tx (8 * (slots + 2)));
           D.write tx (8 * (slots + 2)) (Int64.of_int cell)
         end;
         D.write tx 0 c1))

let verify t2 durable =
  let c = D.heap_read_u64 t2 0 in
  if c <> Int64.of_int durable then
    failwith (Printf.sprintf "counter %Ld != durable %d" c durable);
  for i = 0 to slots - 1 do
    let v = Int64.to_int (D.heap_read_u64 t2 (8 + (8 * i))) in
    let expected =
      if durable <= 0 then 0
      else begin
        let m = ((durable - i) / slots * slots) + i in
        let m = if m > durable then m - slots else m in
        if m >= 1 then m else 0
      end
    in
    if v <> expected then failwith (Printf.sprintf "slot %d: %d != %d" i v expected)
  done;
  (* The list must contain exactly the multiples of 4 up to durable, newest
     first. *)
  let rec walk cell expect =
    if cell = 0 then begin
      if expect >= 4 then failwith "list truncated";
      ()
    end
    else begin
      let v = Int64.to_int (D.heap_read_u64 t2 cell) in
      if v <> expect then failwith (Printf.sprintf "list cell %d != %d" v expect);
      walk (Int64.to_int (D.heap_read_u64 t2 (cell + 8))) (expect - 4)
    end
  in
  walk (Int64.to_int (D.heap_read_u64 t2 (8 * (slots + 2)))) (durable / 4 * 4)

let round seed =
  let rng = Rng.create seed in
  let crash_cycles = 1_000 + Rng.int rng 400_000 in
  let evict = Rng.float rng in
  let t = D.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       work_tx t th
                     done))
            done;
            Sched.advance crash_cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:evict ~rng (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  let durable = report.Dudetm_core.Dudetm.durable in
  verify t2 durable;
  Printf.printf "round %3d: crash@%-7d evict=%.2f -> durable %5d, replayed %4d, discarded %2d  OK\n%!"
    seed crash_cycles evict durable report.Dudetm_core.Dudetm.replayed_txs
    report.Dudetm_core.Dudetm.discarded_txs

let () =
  let rounds = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40 in
  Printf.printf "== crash torture: %d randomized crash/recovery rounds ==\n" rounds;
  for seed = 1 to rounds do
    round seed
  done;
  Printf.printf "\nall %d rounds passed: recovery always restored exactly the durable prefix.\n"
    rounds

(* A crash-safe multi-producer/multi-consumer FIFO queue built directly on
   the DudeTM API: head/tail cursors and a linked list of cells, all in
   persistent memory, mutated only inside durable transactions.

     dune exec examples/persistent_queue.exe

   Shows composition of pmalloc/pfree with reads/writes in one transaction
   (dequeue frees the consumed cell atomically with the cursor move), and
   that the structure survives a mid-run power failure: after recovery, the
   set of consumed + queued items is exactly the durable prefix. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

exception Power_failure

(* Root block layout: head cell @0, tail cell @8, enqueued count @16,
   dequeued-sum @24 (an order-insensitive digest of consumed items).
   Cell layout: value @0, next @8. *)
let cfg = { Config.default with Config.nthreads = 4; heap_size = 1 lsl 20 }

let enqueue t ~thread value =
  ignore
    (D.atomically t ~thread (fun tx ->
         let cell = D.pmalloc tx 16 in
         D.write tx cell value;
         D.write tx (cell + 8) 0L;
         let tail = Int64.to_int (D.read tx 8) in
         if tail = 0 then D.write tx 0 (Int64.of_int cell) (* empty queue *)
         else D.write tx (tail + 8) (Int64.of_int cell);
         D.write tx 8 (Int64.of_int cell);
         D.write tx 16 (Int64.add (D.read tx 16) 1L)))

let dequeue t ~thread =
  match
    D.atomically t ~thread (fun tx ->
        let head = Int64.to_int (D.read tx 0) in
        if head = 0 then None
        else begin
          let value = D.read tx head in
          let next = D.read tx (head + 8) in
          D.write tx 0 next;
          if next = 0L then D.write tx 8 0L;
          (* Consume the digest and free the cell in the same atomic,
             durable transaction: no item can be lost or doubled. *)
          D.write tx 24 (Int64.add (D.read tx 24) value);
          D.pfree tx ~off:head ~len:16;
          Some value
        end)
  with
  | Some (r, _) -> r
  | None -> None

let queue_state t =
  let rec walk cell acc =
    if cell = 0 then acc
    else
      walk (Int64.to_int (D.heap_read_u64 t (cell + 8))) (Int64.add acc (D.heap_read_u64 t cell))
  in
  let queued_sum = walk (Int64.to_int (D.heap_read_u64 t 0)) 0L in
  let enq = D.heap_read_u64 t 16 in
  let consumed_sum = D.heap_read_u64 t 24 in
  (enq, queued_sum, consumed_sum)

let () =
  print_endline "== crash-safe MPMC queue on DudeTM ==";
  let t = D.create cfg in
  (* Producers enqueue distinct values 1..N; consumers drain concurrently.
     Invariant: consumed_sum + queued_sum = sum of enqueued values. *)
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for p = 0 to 1 do
              ignore
                (Sched.spawn (Printf.sprintf "producer-%d" p) (fun () ->
                     let i = ref 0 in
                     while true do
                       incr i;
                       enqueue t ~thread:p (Int64.of_int ((p * 1_000_000) + !i))
                     done))
            done;
            for c = 2 to 3 do
              ignore
                (Sched.spawn (Printf.sprintf "consumer-%d" c) (fun () ->
                     while true do
                       ignore (dequeue t ~thread:c);
                       Sched.advance 500
                     done))
            done;
            Sched.advance 400_000;
            raise Power_failure))
   with Power_failure -> ());
  print_endline "-- power failure mid-run (30% of dirty cache lines leak) --";
  Nvm.crash ~evict_fraction:0.3 ~rng:(Rng.create 9) (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  Printf.printf "recovered durable id %d (replayed %d)\n" report.Dudetm_core.Dudetm.durable
    report.Dudetm_core.Dudetm.replayed_txs;
  let enq, queued_sum, consumed_sum = queue_state t2 in
  Printf.printf "enqueued: %Ld items; in queue: sum %Ld; consumed: sum %Ld\n" enq queued_sum
    consumed_sum;
  (* Drain the recovered queue and re-check conservation. *)
  let expected_total = Int64.add queued_sum consumed_sum in
  ignore
    (Sched.run (fun () ->
         D.start t2;
         while dequeue t2 ~thread:0 <> None do
           ()
         done;
         D.drain t2;
         D.stop t2));
  let _, queued_after, consumed_after = queue_state t2 in
  Printf.printf "after draining: in queue %Ld, consumed sum %Ld\n" queued_after consumed_after;
  if queued_after = 0L && consumed_after = expected_total then
    print_endline "OK: no item was lost or duplicated across the crash."
  else begin
    print_endline "FAILURE: queue conservation violated!";
    exit 1
  end

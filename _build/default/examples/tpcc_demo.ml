(* TPC-C New Order on DudeTM: the paper's write-intensive macro-benchmark
   as an application of the public API — multi-table transactions,
   persistent allocation, crash, recovery, re-attach, and a full
   consistency audit.

     dune exec examples/tpcc_demo.exe *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Cycles = Dudetm_sim.Cycles
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf

exception Power_failure

let cfg =
  {
    Config.default with
    Config.nthreads = 4;
    heap_size = 8 * 1024 * 1024;
    vlog_capacity = 8192;
    plog_size = 1 lsl 17;
  }

let print_district_summary t =
  print_string "orders per district:";
  for d = 1 to 10 do
    Printf.printf " %d" (W.Tpcc.order_count t ~district:d)
  done;
  print_newline ()

let () =
  print_endline "== TPC-C (New Order) on DudeTM ==";
  let ptm, d = B.Dude_ptm.Stm.ptm cfg in
  let module D = B.Dude_ptm.Stm.D in
  let tpcc = W.Tpcc.setup ptm ~storage:W.Kv.Tree ~items:200 () in
  let committed = ref 0 in

  (* Run New Order transactions on four terminals until the power fails. *)
  (try
     ignore
       (Sched.run (fun () ->
            ptm.Ptm.start ();
            for thread = 0 to 3 do
              ignore
                (Sched.spawn (Printf.sprintf "terminal-%d" thread) (fun () ->
                     let rng = Rng.create (2024 + thread) in
                     while true do
                       ignore (W.Tpcc.new_order tpcc ~thread ~rng ());
                       incr committed
                     done))
            done;
            Sched.advance 4_000_000 (* ~1.2 simulated ms *);
            raise Power_failure))
   with Power_failure -> ());
  Printf.printf "committed %d New Order transactions before the crash\n" !committed;
  print_district_summary tpcc;

  print_endline "\n-- power failure (half the dirty cache lines leak to NVM) --";
  Nvm.crash ~evict_fraction:0.5 ~rng:(Rng.create 3) (D.nvm d);

  let ptm2, _, report = B.Dude_ptm.Stm.attach_ptm cfg (D.nvm d) in
  Printf.printf "recovery: durable id %d, %d transactions replayed, %d in-flight discarded\n"
    report.Dudetm_core.Dudetm.durable report.Dudetm_core.Dudetm.replayed_txs
    report.Dudetm_core.Dudetm.discarded_txs;

  (* Re-open the database from its persistent root directory and audit it. *)
  let tpcc2 = W.Tpcc.attach ptm2 in
  print_district_summary tpcc2;
  (try
     W.Tpcc.consistency_check tpcc2;
     print_endline "OK: all TPC-C invariants hold on the recovered database"
   with Failure msg ->
     Printf.printf "FAILURE: %s\n" msg;
     exit 1);

  (* Business continues. *)
  ignore
    (Sched.run (fun () ->
         ptm2.Ptm.start ();
         let rng = Rng.create 77 in
         for _ = 1 to 50 do
           ignore (W.Tpcc.new_order tpcc2 ~thread:0 ~rng ())
         done;
         ptm2.Ptm.drain ();
         ptm2.Ptm.stop ()));
  W.Tpcc.consistency_check tpcc2;
  print_endline "OK: 50 more orders processed after recovery; invariants still hold.";
  print_district_summary tpcc2

(* Quickstart: the paper's Algorithm 1 — transactional bank transfers on
   persistent memory, with a crash and recovery at the end.

     dune exec examples/quickstart.exe

   The workload runs inside the deterministic simulator (Sched.run): every
   simulated thread is a cooperative thread whose time advances through
   explicit cost charges, so the run is reproducible bit-for-bit. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config

(* DudeTM is a functor over an out-of-the-box TM; use the TinySTM-style
   software TM. *)
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let accounts = 64

let initial_balance = 100L

let account_addr t i = D.root_base t + (8 * i)

(* The paper's transfer transaction: abort if the source lacks funds. *)
let transfer t ~thread ~src ~dst ~amount =
  D.atomically t ~thread (fun tx ->
      let src_balance = D.read tx (account_addr t src) in
      if src_balance < amount then D.abort tx
      else begin
        D.write tx (account_addr t src) (Int64.sub src_balance amount);
        let dst_balance = D.read tx (account_addr t dst) in
        D.write tx (account_addr t dst) (Int64.add dst_balance amount)
      end)

let total_balance t =
  let sum = ref 0L in
  for i = 0 to accounts - 1 do
    sum := Int64.add !sum (D.heap_read_u64 t (account_addr t i))
  done;
  !sum

let () =
  let cfg = { Config.default with Config.nthreads = 4; heap_size = 1 lsl 20 } in
  let t = D.create cfg in
  Printf.printf "== DudeTM quickstart: durable bank transfers ==\n\n";

  (* Phase 1: initialize the accounts and run concurrent transfers. *)
  let committed = ref 0 and aborted = ref 0 in
  let cycles =
    Sched.run (fun () ->
        D.start t;
        (* One setup transaction funds every account. *)
        (match
           D.atomically t ~thread:0 (fun tx ->
               for i = 0 to accounts - 1 do
                 D.write tx (account_addr t i) initial_balance
               done)
         with
        | Some _ -> ()
        | None -> assert false);
        let remaining = ref 2000 in
        for thread = 0 to 3 do
          ignore
            (Sched.spawn (Printf.sprintf "teller-%d" thread) (fun () ->
                 let rng = Rng.create (100 + thread) in
                 for _ = 1 to 500 do
                   let src = Rng.int rng accounts and dst = Rng.int rng accounts in
                   let amount = Int64.of_int (1 + Rng.int rng 150) in
                   (match transfer t ~thread ~src ~dst ~amount with
                   | Some _ -> incr committed
                   | None -> incr aborted (* insufficient funds *));
                   decr remaining
                 done))
        done;
        Sched.wait_until ~label:"tellers" (fun () -> !remaining = 0);
        (* Wait until every committed transfer is persistent and reproduced
           to NVM home locations. *)
        D.drain t;
        D.stop t)
  in
  Printf.printf "ran 2000 transfer attempts on 4 threads in %.2f simulated ms\n"
    (Dudetm_sim.Cycles.to_us cycles /. 1000.0);
  Printf.printf "committed: %d, aborted (insufficient funds): %d\n" !committed !aborted;
  Printf.printf "durable id: %d (= last transaction id: %d)\n" (D.durable_id t) (D.last_tid t);
  Printf.printf "total balance (volatile view): %Ld (expected %Ld)\n" (total_balance t)
    (Int64.mul (Int64.of_int accounts) initial_balance);

  (* Phase 2: power failure.  All volatile state disappears; only the NVM
     image survives. *)
  Printf.printf "\n-- simulating power failure --\n";
  Nvm.crash (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  Printf.printf "recovery: durable id %d, replayed %d transactions from redo logs\n"
    report.Dudetm_core.Dudetm.durable report.Dudetm_core.Dudetm.replayed_txs;
  Printf.printf "total balance after recovery: %Ld (expected %Ld)\n" (total_balance t2)
    (Int64.mul (Int64.of_int accounts) initial_balance);

  (* Phase 3: keep going on the recovered instance. *)
  ignore
    (Sched.run (fun () ->
         D.start t2;
         let rng = Rng.create 999 in
         for _ = 1 to 100 do
           ignore
             (transfer t2 ~thread:0 ~src:(Rng.int rng accounts) ~dst:(Rng.int rng accounts)
                ~amount:5L)
         done;
         D.drain t2;
         D.stop t2));
  Printf.printf "\nafter 100 more transfers on the recovered instance:\n";
  Printf.printf "total balance: %Ld, durable id: %d\n" (total_balance t2) (D.durable_id t2);
  if total_balance t2 = Int64.mul (Int64.of_int accounts) initial_balance then
    print_endline "OK: money is conserved across crash and recovery."
  else begin
    print_endline "FAILURE: balance mismatch!";
    exit 1
  end

examples/persistent_queue.ml: Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Int64 Printf

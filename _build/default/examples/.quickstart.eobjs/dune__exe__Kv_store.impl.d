examples/kv_store.ml: Char Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_workloads Int64 List Option Printf String

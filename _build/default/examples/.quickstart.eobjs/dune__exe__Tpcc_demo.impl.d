examples/tpcc_demo.ml: Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_workloads Printf

examples/quickstart.ml: Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Int64 Printf

examples/quickstart.mli:

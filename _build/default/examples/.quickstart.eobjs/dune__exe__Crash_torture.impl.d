examples/crash_torture.ml: Array Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Int64 Printf Sys

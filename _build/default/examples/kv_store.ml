(* A durable key-value store built on the public API: a B+-tree over the
   persistent heap, accessed through the generic PTM interface, with
   asynchronous durability acknowledgement and crash recovery.

     dune exec examples/kv_store.exe

   Demonstrates the decoupled durability protocol the paper describes in
   Section 5.3: `put` returns as soon as Perform finishes; the caller asks
   for the commit ID and can later check `durable_id` to acknowledge. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf

let cfg = { Config.default with Config.nthreads = 2; heap_size = 4 * 1024 * 1024 }

(* Store the tree's handle in the root block so the store can be re-opened
   after a crash. *)
let open_store ptm = W.Kv.setup ~desc:ptm.Ptm.root_base ptm W.Kv.Tree ~capacity:0

let reopen_store ptm = W.Kv.attach ~desc:ptm.Ptm.root_base ptm W.Kv.Tree

let key_of_string s =
  (* Tiny demo keys: pack up to 8 bytes, big-endian-ish. *)
  let k = ref 0L in
  String.iter (fun c -> k := Int64.add (Int64.mul !k 256L) (Int64.of_int (Char.code c))) s;
  !k

let () =
  print_endline "== durable key-value store on DudeTM ==";
  let ptm, d = B.Dude_ptm.Stm.ptm cfg in
  let module D = B.Dude_ptm.Stm.D in
  let last_put_tid = ref 0 in
  ignore
    (Sched.run (fun () ->
         ptm.Ptm.start ();
         let kv = open_store ptm in
         (* A few named entries... *)
         List.iter
           (fun (k, v) ->
             ignore (W.Kv.insert kv ~thread:0 ~key:(key_of_string k) ~value:v))
           [ ("alice", 17L); ("bob", 23L); ("carol", 99L) ];
         (* ...and a bulk load from a second thread, concurrently. *)
         let loader_done = ref false in
         ignore
           (Sched.spawn "bulk-loader" (fun () ->
                let rng = Rng.create 7 in
                for i = 1 to 2000 do
                  ignore
                    (W.Kv.insert kv ~thread:1
                       ~key:(Int64.of_int (1000 + i))
                       ~value:(Rng.next_int64 rng))
                done;
                loader_done := true));
         (* An update whose durability we acknowledge explicitly. *)
         (match
            ptm.Ptm.atomically ~thread:0 (fun tx ->
                ignore (W.Kv.update_tx kv tx ~key:(key_of_string "alice") ~value:18L))
          with
         | Some (_, tid) ->
           last_put_tid := tid;
           Printf.printf "put alice=18 committed as transaction %d (not yet durable)\n" tid
         | None -> assert false);
         Sched.wait_until ~label:"alice durable" (fun () -> ptm.Ptm.durable_id () >= !last_put_tid);
         Printf.printf "transaction %d is now durable (durable id %d)\n" !last_put_tid
           (ptm.Ptm.durable_id ());
         (* drain/stop only after every worker has stopped issuing
            transactions — drain cannot know about transactions that have
            not begun yet. *)
         Sched.wait_until ~label:"bulk loader" (fun () -> !loader_done);
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()));
  Printf.printf "store populated: alice=%Ld bob=%Ld entries=%d\n"
    (Option.get (W.Kv.peek_lookup (reopen_store ptm) ~key:(key_of_string "alice")))
    (Option.get (W.Kv.peek_lookup (reopen_store ptm) ~key:(key_of_string "bob")))
    (2003 + 1);

  print_endline "\n-- power failure --";
  Nvm.crash (D.nvm d);
  let ptm2, _, report = B.Dude_ptm.Stm.attach_ptm cfg (D.nvm d) in
  Printf.printf "recovered to durable id %d (%d transactions replayed)\n"
    report.Dudetm_core.Dudetm.durable report.Dudetm_core.Dudetm.replayed_txs;
  let kv = reopen_store ptm2 in
  List.iter
    (fun name ->
      match W.Kv.peek_lookup kv ~key:(key_of_string name) with
      | Some v -> Printf.printf "  %s -> %Ld\n" name v
      | None -> Printf.printf "  %s -> (lost: was not durable before the crash)\n" name)
    [ "alice"; "bob"; "carol" ];
  (match W.Kv.peek_lookup kv ~key:(key_of_string "alice") with
  | Some 18L -> print_endline "OK: the acknowledged update survived the crash."
  | Some v -> Printf.printf "FAILURE: alice=%Ld after recovery\n" v |> fun () -> exit 1
  | None -> print_endline "FAILURE: alice lost" |> fun () -> exit 1);

  (* The recovered store keeps serving requests. *)
  ignore
    (Sched.run (fun () ->
         ptm2.Ptm.start ();
         ignore (W.Kv.insert kv ~thread:0 ~key:(key_of_string "dave") ~value:1L);
         ptm2.Ptm.drain ();
         ptm2.Ptm.stop ()));
  Printf.printf "dave -> %Ld (inserted after recovery)\n"
    (Option.get (W.Kv.peek_lookup kv ~key:(key_of_string "dave")))

test/test_nvm.ml: Alcotest Array Bytes Dudetm_nvm Dudetm_sim Int64 List QCheck2 QCheck_alcotest

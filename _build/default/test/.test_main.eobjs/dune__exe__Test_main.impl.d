test/test_main.ml: Alcotest Test_alloc Test_baselines Test_dudetm Test_engine_edge Test_kv Test_log Test_lz Test_nvm Test_plog Test_shadow Test_sim Test_tm Test_workloads

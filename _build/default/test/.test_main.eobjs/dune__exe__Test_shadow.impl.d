test/test_shadow.ml: Alcotest Array Dudetm_nvm Dudetm_shadow Dudetm_sim Option

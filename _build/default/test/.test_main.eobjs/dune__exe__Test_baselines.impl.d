test/test_baselines.ml: Alcotest Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_sim Int64 List Option

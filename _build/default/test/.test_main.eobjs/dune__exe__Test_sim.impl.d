test/test_sim.ml: Alcotest Dudetm_sim List

test/test_log.ml: Alcotest Bytes Dudetm_log Dudetm_sim Hashtbl Int64 List QCheck2 QCheck_alcotest String

test/test_plog.ml: Alcotest Bytes Dudetm_log Dudetm_nvm Dudetm_sim List Printf QCheck2 QCheck_alcotest String

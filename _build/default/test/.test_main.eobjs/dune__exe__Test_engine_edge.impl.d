test/test_engine_edge.ml: Alcotest Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Int64 List Printf

test/test_dudetm.ml: Alcotest Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Int64 Printf QCheck2 QCheck_alcotest

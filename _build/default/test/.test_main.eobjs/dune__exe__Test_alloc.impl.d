test/test_alloc.ml: Alcotest Bytes Dudetm_core Dudetm_nvm Dudetm_sim List Option QCheck2 QCheck_alcotest

test/test_tm.ml: Alcotest Bytes Dudetm_sim Dudetm_tm Int64 List Printf

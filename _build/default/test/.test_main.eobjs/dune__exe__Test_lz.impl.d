test/test_lz.ml: Alcotest Bytes Char Dudetm_log Dudetm_sim Int64 List QCheck2 QCheck_alcotest String

test/test_workloads.ml: Alcotest Array Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Dudetm_workloads Hashtbl Int64 List QCheck2 QCheck_alcotest

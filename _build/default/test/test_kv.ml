(* Kv dispatch layer and descriptor-based attach (restart/recovery path). *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf
module D = B.Dude_ptm.Stm.D

let check = Alcotest.check

let volatile () = B.Volatile_stm.ptm ~heap_size:(4 * 1024 * 1024) ()

let test_dispatch_equivalence () =
  (* The same operation sequence through both storages yields the same
     visible map. *)
  let ops =
    let rng = Rng.create 3 in
    List.init 400 (fun _ ->
        (Rng.int rng 3, 1 + Rng.int rng 100, Int64.to_int (Rng.next_int64 rng) land 0xFFFF))
  in
  let run kind =
    let ptm = volatile () in
    let kv = W.Kv.setup ptm kind ~capacity:512 in
    List.iter
      (fun (op, k, v) ->
        let key = Int64.of_int k and value = Int64.of_int v in
        match op with
        | 0 -> ignore (W.Kv.insert kv ~thread:0 ~key ~value)
        | 1 -> ignore (W.Kv.update kv ~thread:0 ~key ~value)
        | _ -> ignore (W.Kv.lookup kv ~thread:0 ~key))
      ops;
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (W.Kv.peek_lookup kv ~key:(Int64.of_int k)))
      (List.init 100 (fun i -> i + 1))
  in
  check
    Alcotest.(list (pair int int64))
    "hash and tree agree" (run W.Kv.Hash) (run W.Kv.Tree)

let test_kind_accessor () =
  let ptm = volatile () in
  check Alcotest.bool "hash kind" true
    (W.Kv.kind (W.Kv.setup ptm W.Kv.Hash ~capacity:64) = W.Kv.Hash);
  check Alcotest.bool "tree kind" true
    (W.Kv.kind (W.Kv.setup ptm W.Kv.Tree ~capacity:0) = W.Kv.Tree)

let test_tree_static_rejected () =
  let ptm = volatile () in
  let kv = W.Kv.setup ptm W.Kv.Tree ~capacity:0 in
  Alcotest.check_raises "plan_insert on tree rejected"
    (Invalid_argument "Kv.plan_insert: trees do not support static transactions") (fun () ->
      ignore (W.Kv.plan_insert kv ~key:1L))

let attach_roundtrip kind =
  let cfg = { Config.default with Config.heap_size = 2 * 1024 * 1024; nthreads = 2 } in
  let ptm, d = B.Dude_ptm.Stm.ptm cfg in
  let desc = ptm.Ptm.root_base + 64 in
  ignore
    (Sched.run (fun () ->
         ptm.Ptm.start ();
         let kv = W.Kv.setup ~desc ptm kind ~capacity:256 in
         for i = 1 to 100 do
           ignore (W.Kv.insert kv ~thread:0 ~key:(Int64.of_int i) ~value:(Int64.of_int (7 * i)))
         done;
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()));
  Nvm.crash (D.nvm d);
  let ptm2, _, _ = B.Dude_ptm.Stm.attach_ptm cfg (D.nvm d) in
  let kv2 = W.Kv.attach ~desc ptm2 kind in
  for i = 1 to 100 do
    check
      (Alcotest.option Alcotest.int64)
      "binding survives crash + attach"
      (Some (Int64.of_int (7 * i)))
      (W.Kv.peek_lookup kv2 ~key:(Int64.of_int i))
  done

let test_attach_hash () = attach_roundtrip W.Kv.Hash

let test_attach_tree () = attach_roundtrip W.Kv.Tree

let test_hashtable_attach_validates () =
  let ptm = volatile () in
  Alcotest.check_raises "garbage descriptor rejected"
    (Invalid_argument "Hashtable_app.attach: descriptor does not hold a table") (fun () ->
      ignore (W.Hashtable_app.attach ~desc:ptm.Ptm.root_base ptm))

let suite =
  [
    Alcotest.test_case "hash/tree dispatch equivalence" `Quick test_dispatch_equivalence;
    Alcotest.test_case "kind accessor" `Quick test_kind_accessor;
    Alcotest.test_case "tree rejects static planning" `Quick test_tree_static_rejected;
    Alcotest.test_case "descriptor attach after crash (hash)" `Quick test_attach_hash;
    Alcotest.test_case "descriptor attach after crash (tree)" `Quick test_attach_tree;
    Alcotest.test_case "hash attach validates descriptor" `Quick test_hashtable_attach_validates;
  ]

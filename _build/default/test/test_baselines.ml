(* Baseline systems (Volatile-STM, Mnemosyne, NVML) and the common PTM
   interface: correctness, durability semantics, static-transaction
   discipline, and cross-system agreement on the same workload. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module Ptm = B.Ptm_intf

let check = Alcotest.check

let heap = 4 * 1024 * 1024

let systems () =
  [
    fst (B.Dude_ptm.Stm.ptm { Config.default with Config.heap_size = heap; nthreads = 4 });
    B.Volatile_stm.ptm ~heap_size:heap ();
    B.Volatile_stm.ptm_htm ~heap_size:heap ();
    B.Mnemosyne.ptm { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap };
    B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = heap };
  ]

(* Run the same concurrent counter workload on every system; all must
   agree on the final state. *)
let counter_on (ptm : Ptm.t) =
  let per = 50 in
  ignore
    (Sched.run (fun () ->
         ptm.Ptm.start ();
         let remaining = ref (4 * per) in
         for th = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int th) (fun () ->
                  for _ = 1 to per do
                    let wset = if ptm.Ptm.requires_static then Some [ 0 ] else None in
                    (match
                       ptm.Ptm.atomically ~thread:th ?wset (fun tx ->
                           tx.Ptm.write 0 (Int64.add (tx.Ptm.read 0) 1L))
                     with
                    | Some _ -> ()
                    | None -> Alcotest.fail "unexpected abort");
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"counter" (fun () -> !remaining = 0);
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()));
  ptm.Ptm.peek 0

let test_all_systems_agree () =
  List.iter
    (fun ptm ->
      check Alcotest.int64
        (ptm.Ptm.name ^ ": counter equals committed increments")
        200L (counter_on ptm))
    (systems ())

let test_durability_semantics () =
  (* Synchronous systems are durable at commit; all systems' durable id
     reaches last tid after drain. *)
  List.iter
    (fun ptm ->
      ignore (counter_on ptm);
      check Alcotest.int
        (ptm.Ptm.name ^ ": durable catches up with last tid")
        (ptm.Ptm.last_tid ()) (ptm.Ptm.durable_id ()))
    (systems ())

let test_abort_rolls_back_everywhere () =
  List.iter
    (fun ptm ->
      ignore
        (Sched.run (fun () ->
             ptm.Ptm.start ();
             let wset = if ptm.Ptm.requires_static then Some [ 0; 8 ] else None in
             (match
                ptm.Ptm.atomically ~thread:0 ?wset (fun tx ->
                    tx.Ptm.write 0 1L;
                    tx.Ptm.write 8 2L;
                    tx.Ptm.abort ())
              with
             | None -> ()
             | Some _ -> Alcotest.fail (ptm.Ptm.name ^ ": abort returned Some"));
             ptm.Ptm.drain ();
             ptm.Ptm.stop ()));
      check Alcotest.int64 (ptm.Ptm.name ^ ": write 1 rolled back") 0L (ptm.Ptm.peek 0);
      check Alcotest.int64 (ptm.Ptm.name ^ ": write 2 rolled back") 0L (ptm.Ptm.peek 8))
    (systems ())

(* --------------------------- Mnemosyne-only -------------------------- *)

let test_mnemosyne_data_reaches_nvm () =
  let ptm = B.Mnemosyne.ptm { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap } in
  ignore
    (Sched.run (fun () ->
         (match ptm.Ptm.atomically ~thread:0 (fun tx -> tx.Ptm.write 0 77L) with
         | Some _ -> ()
         | None -> assert false)));
  let nvm = Option.get ptm.Ptm.nvm in
  check Alcotest.int64 "in-place update applied" 77L (Nvm.load_u64 nvm 0);
  check Alcotest.bool "redo log persisted synchronously" true (Nvm.persisted_write_bytes nvm > 0)

let test_mnemosyne_read_own_writes () =
  let ptm = B.Mnemosyne.ptm { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap } in
  match
    ptm.Ptm.atomically ~thread:0 (fun tx ->
        tx.Ptm.write 0 5L;
        tx.Ptm.read 0)
  with
  | Some (v, _) -> check Alcotest.int64 "write-back redirection" 5L v
  | None -> Alcotest.fail "aborted"

let test_mnemosyne_log_truncates () =
  let cfg =
    { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap; log_size = 1 lsl 12 }
  in
  let ptm = B.Mnemosyne.ptm cfg in
  ignore
    (Sched.run (fun () ->
         for i = 0 to 600 do
           match
             ptm.Ptm.atomically ~thread:0 (fun tx -> tx.Ptm.write (8 * (i mod 50)) 1L)
           with
           | Some _ -> ()
           | None -> assert false
         done));
  check Alcotest.bool "tiny log forced truncations" true
    (List.assoc "log_truncations" (ptm.Ptm.counters ()) > 0)

(* ----------------------------- NVML-only ----------------------------- *)

let test_nvml_rejects_undeclared_write () =
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = heap } in
  Alcotest.check_raises "undeclared write rejected"
    (Invalid_argument "Nvml: write outside the declared write set") (fun () ->
      ignore (ptm.Ptm.atomically ~thread:0 ~wset:[ 0 ] (fun tx -> tx.Ptm.write 8 1L)))

let test_nvml_undo_restores_on_abort () =
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = heap } in
  ignore (ptm.Ptm.atomically ~thread:0 ~wset:[ 0 ] (fun tx -> tx.Ptm.write 0 10L));
  (match
     ptm.Ptm.atomically ~thread:0 ~wset:[ 0 ] (fun tx ->
         tx.Ptm.write 0 99L;
         tx.Ptm.abort ())
   with
  | None -> ()
  | Some _ -> Alcotest.fail "abort returned Some");
  check Alcotest.int64 "undo restored the old value" 10L (ptm.Ptm.peek 0);
  let nvm = Option.get ptm.Ptm.nvm in
  check Alcotest.int64 "restored value is persistent" 10L (Nvm.persisted_u64 nvm 0)

let test_nvml_locks_serialize () =
  (* Two threads incrementing under the same declared lock never lose an
     update. *)
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = heap } in
  ignore
    (Sched.run (fun () ->
         for th = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int th) (fun () ->
                  for _ = 1 to 25 do
                    ignore
                      (ptm.Ptm.atomically ~thread:th ~wset:[ 0 ] (fun tx ->
                           tx.Ptm.write 0 (Int64.add (tx.Ptm.read 0) 1L)))
                  done))
         done));
  check Alcotest.int64 "lock-based increments all applied" 100L (ptm.Ptm.peek 0)

let test_nvml_commit_is_durable () =
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = heap } in
  ignore (ptm.Ptm.atomically ~thread:0 ~wset:[ 0 ] (fun tx -> tx.Ptm.write 0 3L));
  let nvm = Option.get ptm.Ptm.nvm in
  Nvm.crash nvm;
  check Alcotest.int64 "committed NVML data survives a crash" 3L (Nvm.load_u64 nvm 0)

(* --------------------------- crash recovery -------------------------- *)

exception Crashed

let test_mnemosyne_recovery () =
  (* Commit transactions, crash mid-run with evictions, recover: the redo
     logs reconstruct every committed transaction; torn tails are
     dropped. *)
  let t = B.Mnemosyne.create { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap } in
  let ptm = B.Mnemosyne.ptm_of t in
  (try
     ignore
       (Sched.run (fun () ->
            for th = 0 to 3 do
              ignore
                (Sched.spawn (string_of_int th) (fun () ->
                     while true do
                       ignore
                         (ptm.Ptm.atomically ~thread:th (fun tx ->
                              let c = tx.Ptm.read 0 in
                              let c1 = Int64.add c 1L in
                              tx.Ptm.write (8 * (1 + (Int64.to_int c1 land 63))) c1;
                              tx.Ptm.write 0 c1))
                     done))
            done;
            Sched.advance 150_000;
            raise Crashed))
   with Crashed -> ());
  let committed = ptm.Ptm.last_tid () in
  Nvm.crash ~evict_fraction:0.4 ~rng:(Rng.create 11) (B.Mnemosyne.nvm t);
  let replayed = B.Mnemosyne.recover t in
  check Alcotest.bool "some records replayed" true (replayed > 0);
  (* Every committed transaction's counter increment is reconstructed:
     the counter equals the commit count. *)
  check Alcotest.int64 "redo recovery reconstructs all committed txs"
    (Int64.of_int committed)
    (Nvm.load_u64 (B.Mnemosyne.nvm t) 0);
  (* Recovery is idempotent over the truncated logs. *)
  check Alcotest.int "second recovery finds nothing" 0 (B.Mnemosyne.recover t)

let test_nvml_recovery_rolls_back_inflight () =
  let t = B.Nvml.create { B.Nvml.default_config with B.Nvml.heap_size = heap } in
  let ptm = B.Nvml.ptm_of t in
  (* One committed transaction... *)
  ignore (ptm.Ptm.atomically ~thread:0 ~wset:[ 0 ] (fun tx -> tx.Ptm.write 0 5L));
  (* ...then a crash in the middle of a second one: its undo log is
     persisted, its in-place writes partially so. *)
  (try
     ignore
       (Sched.run (fun () ->
            ignore
              (Sched.spawn "w" (fun () ->
                   ignore
                     (ptm.Ptm.atomically ~thread:0 ~wset:[ 0; 8 ] (fun tx ->
                          tx.Ptm.write 0 99L;
                          Sched.wait_until ~label:"never" (fun () -> false)))));
            Sched.advance 100_000;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.8 ~rng:(Rng.create 13) (B.Nvml.nvm t);
  let rolled_back = B.Nvml.recover t in
  check Alcotest.int "one in-flight transaction rolled back" 1 rolled_back;
  check Alcotest.int64 "undo restored the committed value" 5L
    (Nvm.load_u64 (B.Nvml.nvm t) 0);
  check Alcotest.int64 "partial write to 8 rolled back" 0L (Nvm.load_u64 (B.Nvml.nvm t) 8);
  check Alcotest.int "second recovery finds nothing" 0 (B.Nvml.recover t)

let test_mnemosyne_truncation_then_recovery () =
  (* Force log truncation, then crash: recovery must not resurrect stale
     pre-truncation records. *)
  let cfg =
    { B.Mnemosyne.default_config with B.Mnemosyne.heap_size = heap; log_size = 2048 }
  in
  let t = B.Mnemosyne.create cfg in
  let ptm = B.Mnemosyne.ptm_of t in
  ignore
    (Sched.run (fun () ->
         for i = 1 to 300 do
           ignore
             (ptm.Ptm.atomically ~thread:0 (fun tx ->
                  tx.Ptm.write (8 * (i land 31)) (Int64.of_int i)))
         done));
  let committed = ptm.Ptm.last_tid () in
  Nvm.crash (B.Mnemosyne.nvm t);
  ignore (B.Mnemosyne.recover t);
  (* State must reflect all 300 transactions, not a stale lap. *)
  let ok = ref true in
  for i = 270 to 300 do
    if Nvm.load_u64 (B.Mnemosyne.nvm t) (8 * (i land 31)) = 0L then ok := false
  done;
  check Alcotest.int "all transactions committed" 300 committed;
  check Alcotest.bool "post-truncation state intact" true !ok

let suite =
  [
    Alcotest.test_case "all systems agree on the counter" `Quick test_all_systems_agree;
    Alcotest.test_case "durability semantics" `Quick test_durability_semantics;
    Alcotest.test_case "abort rolls back everywhere" `Quick test_abort_rolls_back_everywhere;
    Alcotest.test_case "mnemosyne: data reaches NVM" `Quick test_mnemosyne_data_reaches_nvm;
    Alcotest.test_case "mnemosyne: read own writes" `Quick test_mnemosyne_read_own_writes;
    Alcotest.test_case "mnemosyne: log truncation" `Quick test_mnemosyne_log_truncates;
    Alcotest.test_case "nvml: undeclared write rejected" `Quick test_nvml_rejects_undeclared_write;
    Alcotest.test_case "nvml: undo restores on abort" `Quick test_nvml_undo_restores_on_abort;
    Alcotest.test_case "nvml: locks serialize" `Quick test_nvml_locks_serialize;
    Alcotest.test_case "nvml: commit is durable" `Quick test_nvml_commit_is_durable;
    Alcotest.test_case "mnemosyne: crash recovery" `Quick test_mnemosyne_recovery;
    Alcotest.test_case "nvml: recovery rolls back in-flight" `Quick
      test_nvml_recovery_rolls_back_inflight;
    Alcotest.test_case "mnemosyne: truncation then recovery" `Quick
      test_mnemosyne_truncation_then_recovery;
  ]

(* Shadow memory and paging: translation, fault/evict, pinning, the
   touching-ID swap-in gate. *)

module Shadow = Dudetm_shadow.Shadow
module Page_table = Dudetm_shadow.Page_table
module Nvm = Dudetm_nvm.Nvm
module Pmem_config = Dudetm_nvm.Pmem_config
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats

let check = Alcotest.check

(* ----------------------------- page table ---------------------------- *)

let test_pt_map_unmap () =
  let pt = Page_table.create ~pages:16 ~frames:4 in
  check Alcotest.bool "fresh page absent" true (Page_table.frame_of pt 3 = None);
  let f = Option.get (Page_table.free_frame pt) in
  Page_table.map pt ~page:3 ~frame:f;
  check Alcotest.bool "mapped" true (Page_table.frame_of pt 3 = Some f);
  check Alcotest.bool "reverse mapping" true (Page_table.page_of_frame pt f = Some 3);
  check Alcotest.int "resident count" 1 (Page_table.resident pt);
  Page_table.unmap_frame pt f;
  check Alcotest.bool "unmapped" true (Page_table.frame_of pt 3 = None);
  check Alcotest.int "resident count back to 0" 0 (Page_table.resident pt)

let test_pt_double_map_rejected () =
  let pt = Page_table.create ~pages:16 ~frames:4 in
  Page_table.map pt ~page:1 ~frame:0;
  Alcotest.check_raises "frame reuse rejected"
    (Invalid_argument "Page_table.map: frame in use") (fun () ->
      Page_table.map pt ~page:2 ~frame:0);
  Alcotest.check_raises "page remap rejected"
    (Invalid_argument "Page_table.map: page already resident") (fun () ->
      Page_table.map pt ~page:1 ~frame:1)

let test_pt_clock_victim_skips () =
  let pt = Page_table.create ~pages:16 ~frames:3 in
  Page_table.map pt ~page:0 ~frame:0;
  Page_table.map pt ~page:1 ~frame:1;
  Page_table.map pt ~page:2 ~frame:2;
  (* Skip frames 0 and 2: the only eligible victim is 1. *)
  (match Page_table.clock_victim pt ~skip:(fun f -> f <> 1) with
  | Some 1 -> ()
  | _ -> Alcotest.fail "victim should be frame 1");
  match Page_table.clock_victim pt ~skip:(fun _ -> true) with
  | None -> ()
  | Some _ -> Alcotest.fail "all skipped should yield None"

(* ------------------------------ shadow ------------------------------- *)

let make_shadow ?(frames = 4) ?(mode = Shadow.Software) ?(applied = ref max_int) () =
  let nvm = Nvm.create ~charge_time:false Pmem_config.default ~size:65536 in
  let cfg = Shadow.default_config mode ~frames in
  (Shadow.create cfg ~nvm ~applied_id:(fun () -> !applied), nvm, applied)

let test_shadow_reads_nvm_content () =
  let sh, nvm, _ = make_shadow () in
  Nvm.store_u64 nvm 4096 77L;
  check Alcotest.int64 "fault-in copies NVM" 77L (Shadow.load_u64 sh 4096);
  check Alcotest.int "one fault" 1 (Stats.get (Shadow.stats sh) "faults")

let test_shadow_store_never_reaches_nvm () =
  let sh, nvm, _ = make_shadow () in
  Shadow.store_u64 sh 0 123L;
  check Alcotest.int64 "shadow sees the store" 123L (Shadow.load_u64 sh 0);
  check Alcotest.int64 "NVM never does" 0L (Nvm.load_u64 nvm 0)

let test_shadow_eviction_discards () =
  let sh, _, _ = make_shadow ~frames:2 () in
  Shadow.store_u64 sh 0 1L;
  (* Touch enough distinct pages to evict page 0. *)
  for p = 1 to 4 do
    ignore (Shadow.load_u64 sh (p * 4096))
  done;
  check Alcotest.bool "evictions happened" true (Stats.get (Shadow.stats sh) "evictions" > 0);
  (* Page 0 refaults from NVM: the dirty shadow data is gone (by design —
     its updates live in redo logs). *)
  check Alcotest.int64 "refault reads NVM, not the old dirty frame" 0L (Shadow.load_u64 sh 0)

let test_shadow_pin_prevents_eviction () =
  let sh, _, _ = make_shadow ~frames:2 () in
  Shadow.store_u64 sh 0 9L;
  Shadow.pin sh 0;
  ignore
    (Sched.run (fun () ->
         for p = 1 to 6 do
           ignore (Shadow.load_u64 sh (p * 4096))
         done));
  check Alcotest.int64 "pinned page survives pressure" 9L (Shadow.load_u64 sh 0);
  Shadow.unpin sh 0;
  check Alcotest.int "pins balanced" 0 (Shadow.pinned_pages sh)

let test_shadow_all_pinned_waits () =
  (* With every frame pinned, a new fault must wait until an unpin. *)
  let sh, _, _ = make_shadow ~frames:2 () in
  let faulted = ref false in
  ignore
    (Sched.run (fun () ->
         Shadow.pin sh 0;
         Shadow.pin sh 4096;
         ignore
           (Sched.spawn "faulter" (fun () ->
                ignore (Shadow.load_u64 sh (5 * 4096));
                faulted := true));
         ignore
           (Sched.spawn "unpinner" (fun () ->
                Sched.advance 50_000;
                Shadow.unpin sh 0))));
  check Alcotest.bool "fault completed after unpin" true !faulted

let test_touching_gate () =
  (* A page whose touching ID is ahead of Reproduce must not swap in until
     the watermark catches up. *)
  let applied = ref 0 in
  let sh, nvm, _ = make_shadow ~frames:2 ~applied () in
  ignore (Shadow.load_u64 sh 0);
  Shadow.set_touching sh ~page:0 ~tid:5;
  (* Evict page 0 by touching other pages. *)
  for p = 1 to 4 do
    ignore (Shadow.load_u64 sh (p * 4096))
  done;
  Nvm.store_u64 nvm 0 42L (* Reproduce applies the write... *);
  let seen = ref 0L in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn "reader" (fun () -> seen := Shadow.load_u64 sh 0));
         ignore
           (Sched.spawn "reproduce" (fun () ->
                Sched.advance 10_000;
                applied := 5 (* ...and then announces it *)))));
  check Alcotest.bool "swap-in waited for reproduce" true
    (Stats.get (Shadow.stats sh) "swapin_waits" > 0);
  check Alcotest.int64 "reader saw the reproduced value" 42L !seen

let test_touching_monotone () =
  let sh, _, _ = make_shadow () in
  Shadow.set_touching sh ~page:1 ~tid:10;
  Shadow.set_touching sh ~page:1 ~tid:7;
  check Alcotest.int "touching never regresses" 10 (Shadow.touching sh ~page:1)

let test_shadow_clear () =
  let sh, _, _ = make_shadow () in
  Shadow.store_u64 sh 0 5L;
  Shadow.set_touching sh ~page:0 ~tid:3;
  Shadow.clear sh;
  check Alcotest.int "touching reset" 0 (Shadow.touching sh ~page:0);
  check Alcotest.int64 "contents reloaded from NVM" 0L (Shadow.load_u64 sh 0)

let test_hardware_shootdown_accounting () =
  let sh, _, _ = make_shadow ~frames:2 ~mode:Shadow.Hardware () in
  ignore
    (Sched.run (fun () ->
         for p = 0 to 7 do
           ignore (Shadow.load_u64 sh (p * 4096))
         done));
  let s = Shadow.stats sh in
  check Alcotest.bool "shootdowns accompany hardware evictions" true
    (Stats.get s "shootdowns" > 0 && Stats.get s "shootdowns" = Stats.get s "evictions")

let test_concurrent_fault_single_mapping () =
  (* Many threads faulting the same page concurrently must agree on one
     frame and read consistent data. *)
  let sh, nvm, _ = make_shadow ~frames:4 ~mode:Shadow.Hardware () in
  Nvm.store_u64 nvm 8192 17L;
  let results = Array.make 6 0L in
  ignore
    (Sched.run (fun () ->
         for t = 0 to 5 do
           ignore
             (Sched.spawn (string_of_int t) (fun () -> results.(t) <- Shadow.load_u64 sh 8192))
         done));
  Array.iter (fun v -> check Alcotest.int64 "all threads read the same value" 17L v) results

let suite =
  [
    Alcotest.test_case "page table map/unmap" `Quick test_pt_map_unmap;
    Alcotest.test_case "page table rejects double mapping" `Quick test_pt_double_map_rejected;
    Alcotest.test_case "clock victim skips pinned" `Quick test_pt_clock_victim_skips;
    Alcotest.test_case "fault-in copies NVM content" `Quick test_shadow_reads_nvm_content;
    Alcotest.test_case "shadow stores never reach NVM" `Quick test_shadow_store_never_reaches_nvm;
    Alcotest.test_case "eviction discards dirty pages" `Quick test_shadow_eviction_discards;
    Alcotest.test_case "pin prevents eviction" `Quick test_shadow_pin_prevents_eviction;
    Alcotest.test_case "all-pinned fault waits for unpin" `Quick test_shadow_all_pinned_waits;
    Alcotest.test_case "touching-ID gate blocks stale swap-in" `Quick test_touching_gate;
    Alcotest.test_case "touching IDs are monotone" `Quick test_touching_monotone;
    Alcotest.test_case "clear resets everything" `Quick test_shadow_clear;
    Alcotest.test_case "hardware evictions shoot down TLBs" `Quick
      test_hardware_shootdown_accounting;
    Alcotest.test_case "concurrent faults agree on one mapping" `Quick
      test_concurrent_fault_single_mapping;
  ]

(* LZ compressor tests: roundtrip, ratio behaviour, malformed input. *)

module Lz = Dudetm_log.Lz
module Log_entry = Dudetm_log.Log_entry

let check = Alcotest.check

let roundtrip b = Lz.decompress (Lz.compress b)

let test_empty () =
  check Alcotest.bytes "empty roundtrip" (Bytes.create 0) (roundtrip (Bytes.create 0))

let test_short () =
  let b = Bytes.of_string "abc" in
  check Alcotest.bytes "short input roundtrip" b (roundtrip b)

let test_repetitive_compresses () =
  let b = Bytes.of_string (String.concat "" (List.init 200 (fun _ -> "abcdefgh"))) in
  check Alcotest.bytes "repetitive roundtrip" b (roundtrip b);
  check Alcotest.bool "repetitive input shrinks a lot" true (Lz.ratio b > 0.9)

let test_incompressible () =
  let rng = Dudetm_sim.Rng.create 99 in
  let b = Bytes.init 4096 (fun _ -> Char.chr (Dudetm_sim.Rng.int rng 256)) in
  check Alcotest.bytes "random bytes roundtrip" b (roundtrip b);
  check Alcotest.bool "random bytes do not shrink much" true (Lz.ratio b < 0.05)

let test_long_match () =
  (* Match length far beyond the 15-value nibble: exercises extension
     bytes. *)
  let b = Bytes.make 10_000 'x' in
  check Alcotest.bytes "long run roundtrip" b (roundtrip b);
  check Alcotest.bool "long run compresses" true (Bytes.length (Lz.compress b) < 100)

let test_long_literals () =
  (* Literal run beyond 15: exercises the literal extension path. *)
  let b = Bytes.init 300 (fun i -> Char.chr (17 * i mod 251)) in
  check Alcotest.bytes "long literal roundtrip" b (roundtrip b)

let test_overlapping_match () =
  (* "ababab..." needs overlapping copies in the decoder. *)
  let b = Bytes.of_string ("ab" ^ String.concat "" (List.init 500 (fun _ -> "ab"))) in
  check Alcotest.bytes "overlap roundtrip" b (roundtrip b)

let test_log_payload_ratio () =
  (* Redo-log payloads (small addresses, zero-heavy values) compress well;
     the paper reports ~69% with lz4. *)
  let entries =
    List.init 2000 (fun i ->
        Log_entry.Write { addr = 4096 + (8 * (i mod 500)); value = Int64.of_int (i mod 17) })
  in
  let payload = Log_entry.encode_list entries in
  check Alcotest.bool "log payload compresses >40%" true (Lz.ratio payload > 0.4)

let test_malformed_rejected () =
  Alcotest.check_raises "offset 0 rejected" (Invalid_argument "Lz.decompress: bad offset")
    (fun () ->
      (* token: 1 literal, match len nibble 0; literal 'a'; offset 0. *)
      ignore (Lz.decompress (Bytes.of_string "\x10a\x00\x00")));
  Alcotest.check_raises "truncated literals rejected"
    (Invalid_argument "Lz.decompress: truncated literals") (fun () ->
      ignore (Lz.decompress (Bytes.of_string "\xF0a")))

let prop_roundtrip =
  QCheck2.Test.make ~name:"lz: compress/decompress roundtrip" ~count:500
    QCheck2.Gen.(string_size (int_range 0 2000))
    (fun s ->
      let b = Bytes.of_string s in
      roundtrip b = b)

let prop_roundtrip_structured =
  (* Byte strings with heavy repetition to force the match paths. *)
  QCheck2.Test.make ~name:"lz: roundtrip on repetitive input" ~count:300
    QCheck2.Gen.(
      map2
        (fun pieces reps ->
          String.concat ""
            (List.concat_map (fun p -> List.init (1 + reps) (fun _ -> p)) pieces))
        (list_size (int_range 1 8) (string_size (int_range 1 12)))
        (int_range 0 20))
    (fun s ->
      let b = Bytes.of_string s in
      roundtrip b = b)

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "short input" `Quick test_short;
    Alcotest.test_case "repetitive input compresses" `Quick test_repetitive_compresses;
    Alcotest.test_case "incompressible input" `Quick test_incompressible;
    Alcotest.test_case "long match extension" `Quick test_long_match;
    Alcotest.test_case "long literal extension" `Quick test_long_literals;
    Alcotest.test_case "overlapping matches" `Quick test_overlapping_match;
    Alcotest.test_case "log payloads compress" `Quick test_log_payload_ratio;
    Alcotest.test_case "malformed input rejected" `Quick test_malformed_rejected;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_structured;
  ]

(* Scheduler, RNG, resource and stats tests. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Resource = Dudetm_sim.Resource
module Stats = Dudetm_sim.Stats
module Cycles = Dudetm_sim.Cycles

let check = Alcotest.check

let test_single_thread_time () =
  let total = Sched.run (fun () -> Sched.advance 1000) in
  check Alcotest.int "advance accumulates" 1000 total

let test_min_clock_order () =
  (* Two threads with different step sizes must interleave in clock order. *)
  let log = ref [] in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn "a" (fun () ->
                for i = 1 to 3 do
                  Sched.advance 10;
                  log := ("a", i, Sched.now ()) :: !log
                done));
         ignore
           (Sched.spawn "b" (fun () ->
                for i = 1 to 2 do
                  Sched.advance 25;
                  log := ("b", i, Sched.now ()) :: !log
                done))));
  let times = List.rev_map (fun (_, _, t) -> t) !log in
  check Alcotest.(list int) "events fire in time order" (List.sort compare times) times

let test_wait_until_wakes () =
  let flag = ref false in
  let woke_at = ref 0 in
  let total =
    Sched.run (fun () ->
        ignore
          (Sched.spawn "waiter" (fun () ->
               Sched.wait_until ~label:"flag" (fun () -> !flag);
               woke_at := Sched.now ()));
        ignore
          (Sched.spawn "setter" (fun () ->
               Sched.advance 500;
               flag := true)))
  in
  check Alcotest.bool "waiter resumed after the setter" true (!woke_at >= 500);
  check Alcotest.bool "simulation ended at waiter's clock" true (total >= 500)

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock raises"
    (Sched.Deadlock "1:stuck waiting on never")
    (fun () ->
      ignore
        (Sched.run (fun () ->
             ignore
               (Sched.spawn "stuck" (fun () ->
                    Sched.wait_until ~label:"never" (fun () -> false))))))

let test_daemons_do_not_block_exit () =
  let cleaned = ref false in
  let total =
    Sched.run (fun () ->
        ignore
          (Sched.spawn ~daemon:true "d" (fun () ->
               try Sched.wait_until ~label:"forever" (fun () -> false)
               with Sched.Killed -> cleaned := true));
        Sched.advance 100)
  in
  check Alcotest.int "exit at main's clock" 100 total;
  check Alcotest.bool "daemon saw Killed" true !cleaned

let test_spawn_inherits_clock () =
  let child_start = ref (-1) in
  ignore
    (Sched.run (fun () ->
         Sched.advance 300;
         ignore (Sched.spawn "child" (fun () -> child_start := Sched.now ()))));
  check Alcotest.int "child starts at parent's clock" 300 !child_start

let test_exception_propagates () =
  Alcotest.check_raises "thread exception escapes run" Exit (fun () ->
      ignore
        (Sched.run (fun () ->
             ignore (Sched.spawn "boom" (fun () -> raise Exit));
             Sched.advance 10_000)))

let test_determinism () =
  let trace () =
    let log = ref [] in
    ignore
      (Sched.run (fun () ->
           for t = 0 to 2 do
             ignore
               (Sched.spawn (string_of_int t) (fun () ->
                    let rng = Rng.create (t + 1) in
                    for _ = 1 to 20 do
                      Sched.advance (1 + Rng.int rng 50);
                      log := (t, Sched.now ()) :: !log
                    done))
           done));
    !log
  in
  check Alcotest.bool "two identical runs produce identical traces" true (trace () = trace ())

let test_outside_run_fallbacks () =
  Sched.advance 50 (* no-op *);
  check Alcotest.int "now is 0 outside a run" 0 (Sched.now ());
  check Alcotest.int "self is 0 outside a run" 0 (Sched.self ());
  Sched.wait_until ~label:"true" (fun () -> true);
  check Alcotest.bool "running is false" false (Sched.running ())

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 97 in
    if v < 0 || v >= 97 then Alcotest.fail "Rng.int out of bounds"
  done

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check Alcotest.bool "split streams differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Rng.float out of range"
  done

let test_resource_serializes () =
  let r = Resource.create ~cycles_per_byte:2.0 in
  let c1 = Resource.transfer r ~now:0 ~bytes:100 ~latency:0 in
  check Alcotest.int "first transfer takes bytes*cpb" 200 c1;
  let c2 = Resource.transfer r ~now:0 ~bytes:100 ~latency:0 in
  check Alcotest.int "second transfer queues behind the first" 400 c2;
  check Alcotest.int "total bytes" 200 (Resource.total_bytes r)

let test_resource_latency_overlaps () =
  let r = Resource.create ~cycles_per_byte:1.0 in
  let c1 = Resource.transfer r ~now:0 ~bytes:10 ~latency:1000 in
  check Alcotest.int "latency dominates a small transfer" 1000 c1;
  (* The channel is busy only 10 cycles, so a second transfer queues 10
     cycles of bandwidth but its latency overlaps the first's. *)
  let c2 = Resource.transfer r ~now:0 ~bytes:10 ~latency:1000 in
  check Alcotest.int "latency overlaps across callers" 1010 c2

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.add s "a" 4;
  check Alcotest.int "accumulates" 5 (Stats.get s "a");
  check Alcotest.int "missing counter is 0" 0 (Stats.get s "zz");
  Stats.reset s;
  check Alcotest.int "reset clears" 0 (Stats.get s "a")

let test_latency_percentiles () =
  let r = Stats.Latency.create () in
  for i = 1 to 100 do
    Stats.Latency.record r i
  done;
  check Alcotest.int "p50" 50 (Stats.Latency.percentile r 50.0);
  check Alcotest.int "p99" 99 (Stats.Latency.percentile r 99.0);
  check Alcotest.int "p100" 100 (Stats.Latency.percentile r 100.0);
  check (Alcotest.float 0.01) "mean" 50.5 (Stats.Latency.mean r)

let test_cycles_conversions () =
  check Alcotest.int "1 us at 3.4 GHz" 3400 (Cycles.of_ns 1000.0);
  check (Alcotest.float 0.001) "3400 cycles is 1 us" 1.0 (Cycles.to_us 3400);
  check Alcotest.bool "1 GB/s is ~3.4 cycles per byte" true
    (abs_float (Cycles.per_byte_of_gbps 1.0 -. 3.4) < 0.01)

let suite =
  [
    Alcotest.test_case "single thread accumulates time" `Quick test_single_thread_time;
    Alcotest.test_case "min-clock scheduling order" `Quick test_min_clock_order;
    Alcotest.test_case "wait_until wakes on predicate" `Quick test_wait_until_wakes;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "daemons are cancelled at exit" `Quick test_daemons_do_not_block_exit;
    Alcotest.test_case "spawn inherits parent clock" `Quick test_spawn_inherits_clock;
    Alcotest.test_case "thread exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
    Alcotest.test_case "helpers degrade gracefully outside run" `Quick test_outside_run_fallbacks;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "resource serializes bandwidth" `Quick test_resource_serializes;
    Alcotest.test_case "resource latency overlaps" `Quick test_resource_latency_overlaps;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "cycle conversions" `Quick test_cycles_conversions;
  ]

(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used to seal persistent-log records: a record is written together with
    its checksum in a single persist ordering, and recovery treats a
    checksum mismatch as a torn (incomplete) record. *)

val crc32 : ?init:int32 -> bytes -> int -> int -> int32
(** [crc32 b off len] checksums [len] bytes of [b] starting at [off].
    [init] chains checksums across fragments (default the CRC of the empty
    string, [0l]). *)

val crc32_bytes : bytes -> int32
(** Whole-buffer convenience. *)

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 ?(init = 0l) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Checksum.crc32";
  let t = Lazy.force table in
  let c = ref (Int32.lognot init) in
  for i = off to off + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xffl) in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc32_bytes b = crc32 b 0 (Bytes.length b)

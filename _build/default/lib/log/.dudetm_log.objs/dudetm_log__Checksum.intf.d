lib/log/checksum.mli:

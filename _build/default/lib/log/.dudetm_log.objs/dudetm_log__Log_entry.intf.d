lib/log/log_entry.mli: Format

lib/log/plog.ml: Bytes Checksum Dudetm_nvm Int64 List

lib/log/combine.ml: Hashtbl List Log_entry

lib/log/checksum.ml: Array Bytes Char Int32 Lazy

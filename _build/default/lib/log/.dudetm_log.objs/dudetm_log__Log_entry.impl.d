lib/log/log_entry.ml: Bytes Format Int64 List Printf

lib/log/lz.mli:

lib/log/lz.ml: Array Bytes Char

lib/log/vlog.ml: Array Dudetm_sim Log_entry

lib/log/vlog.mli: Log_entry

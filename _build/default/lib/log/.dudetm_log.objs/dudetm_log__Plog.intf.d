lib/log/plog.mli: Dudetm_nvm

lib/log/combine.mli: Log_entry

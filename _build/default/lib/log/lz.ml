let min_match = 4

let hash_bits = 14

let hash4 b i =
  let v =
    Char.code (Bytes.get b i)
    lor (Char.code (Bytes.get b (i + 1)) lsl 8)
    lor (Char.code (Bytes.get b (i + 2)) lsl 16)
    lor (Char.code (Bytes.get b (i + 3)) lsl 24)
  in
  (v * 2654435761) lsr (32 - hash_bits) land ((1 lsl hash_bits) - 1)

(* Growable output buffer. *)
module Out = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create n = { buf = Bytes.create (max 16 n); len = 0 }

  let ensure t extra =
    if t.len + extra > Bytes.length t.buf then begin
      let ncap = max (t.len + extra) (2 * Bytes.length t.buf) in
      let nb = Bytes.create ncap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let byte t v =
    ensure t 1;
    Bytes.set t.buf t.len (Char.chr (v land 0xff));
    t.len <- t.len + 1

  let blit t src off len =
    ensure t len;
    Bytes.blit src off t.buf t.len len;
    t.len <- t.len + len

  let contents t = Bytes.sub t.buf 0 t.len
end

let emit_len out n =
  (* Extension chain for a nibble that saturated at 15. *)
  let rec go n = if n >= 255 then (Out.byte out 255; go (n - 255)) else Out.byte out n in
  go n

let emit_sequence out src ~lit_off ~lit_len ~match_off ~match_len =
  let lit_nib = if lit_len >= 15 then 15 else lit_len in
  let mat_nib =
    if match_len = 0 then 0
    else if match_len - min_match >= 15 then 15
    else match_len - min_match
  in
  Out.byte out ((lit_nib lsl 4) lor mat_nib);
  if lit_nib = 15 then emit_len out (lit_len - 15);
  Out.blit out src lit_off lit_len;
  if match_len > 0 then begin
    Out.byte out (match_off land 0xff);
    Out.byte out ((match_off lsr 8) land 0xff);
    if mat_nib = 15 then emit_len out (match_len - min_match - 15)
  end

let compress src =
  let n = Bytes.length src in
  let out = Out.create (n / 2) in
  if n = 0 then Bytes.create 0
  else begin
    let table = Array.make (1 lsl hash_bits) (-1) in
    let anchor = ref 0 in
    let i = ref 0 in
    (* The last [min_match] bytes can never start a match. *)
    let limit = n - min_match in
    while !i <= limit do
      let h = hash4 src !i in
      let cand = table.(h) in
      table.(h) <- !i;
      let offset = !i - cand in
      if
        cand >= 0 && offset <= 0xffff
        && Bytes.get src cand = Bytes.get src !i
        && Bytes.get src (cand + 1) = Bytes.get src (!i + 1)
        && Bytes.get src (cand + 2) = Bytes.get src (!i + 2)
        && Bytes.get src (cand + 3) = Bytes.get src (!i + 3)
      then begin
        let m = ref min_match in
        while !i + !m < n && Bytes.get src (cand + !m) = Bytes.get src (!i + !m) do
          incr m
        done;
        emit_sequence out src ~lit_off:!anchor ~lit_len:(!i - !anchor) ~match_off:offset
          ~match_len:!m;
        i := !i + !m;
        anchor := !i
      end
      else incr i
    done;
    if !anchor < n then
      emit_sequence out src ~lit_off:!anchor ~lit_len:(n - !anchor) ~match_off:0 ~match_len:0;
    Out.contents out
  end

let decompress src =
  let n = Bytes.length src in
  let out = Out.create (2 * n) in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then invalid_arg "Lz.decompress: truncated input";
    let c = Char.code (Bytes.get src !pos) in
    incr pos;
    c
  in
  let ext_len base =
    if base < 15 then base
    else begin
      let total = ref base in
      let rec go () =
        let b = byte () in
        total := !total + b;
        if b = 255 then go ()
      in
      go ();
      !total
    end
  in
  while !pos < n do
    let token = byte () in
    let lit_len = ext_len (token lsr 4) in
    if !pos + lit_len > n then invalid_arg "Lz.decompress: truncated literals";
    Out.blit out src !pos lit_len;
    pos := !pos + lit_len;
    if !pos < n then begin
      let lo = byte () in
      let hi = byte () in
      let offset = lo lor (hi lsl 8) in
      if offset = 0 || offset > out.Out.len then invalid_arg "Lz.decompress: bad offset";
      let match_len = ext_len (token land 0xf) + min_match in
      (* Byte-by-byte copy: matches may overlap their own output. *)
      for _ = 1 to match_len do
        let b = Bytes.get out.Out.buf (out.Out.len - offset) in
        Out.byte out (Char.code b)
      done
    end
  done;
  Out.contents out

let ratio b =
  let n = Bytes.length b in
  if n = 0 then 0.0
  else 1.0 -. (float_of_int (Bytes.length (compress b)) /. float_of_int n)

(** From-scratch LZ77 byte compressor (lz4 replacement).

    The paper compresses combined redo logs with lz4 before flushing
    (Section 3.3); the sealed container has no lz4 binding, so this module
    implements an lz4-style block codec: greedy hash-table match finding,
    minimum match 4, 16-bit offsets, and token-encoded sequences of
    literals + match.  Only the compression {e ratio} on log payloads
    matters for Figure 3, which any LZ-class codec of this shape delivers.

    Format: a stream of sequences.  Each sequence is one token byte — high
    nibble = literal count, low nibble = match length − 4, value 15 marking
    an extension byte chain (add 255 per 0xFF byte plus the final byte) —
    followed by the literals, and, unless the sequence ends the stream, a
    2-byte little-endian match offset and the match-length extension. *)

val compress : bytes -> bytes

val decompress : bytes -> bytes
(** Inverse of {!compress}.  Raises [Invalid_argument] on malformed
    input. *)

val ratio : bytes -> float
(** [ratio b] is the space saved, [1 - compressed/original] (0 for empty
    input), i.e. the paper's "compression ratio over 69%". *)

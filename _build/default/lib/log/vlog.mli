(** Volatile per-thread redo-log buffer.

    A fixed-length circular buffer with head and tail cursors (Section 3.2).
    The Perform thread appends entries and an end mark at commit; a Persist
    thread consumes committed entries from the head.  When the buffer is
    full, {!append} blocks the Perform thread until Persist frees space —
    the paper's DUDETM mode.  An unbounded buffer never blocks — the
    paper's DUDETM-Inf configuration.

    Cursors are monotone entry counters, not wrapped indices, so absolute
    positions can be exchanged between producer and consumer without
    ambiguity. *)

type t

val create : ?unbounded:bool -> capacity:int -> unit -> t
(** [capacity] is in entries; it must exceed the largest transaction's
    entry count or the producer would deadlock against itself. *)

val capacity : t -> int

val unbounded : t -> bool

(** {1 Producer (Perform thread)} *)

val append : t -> Log_entry.t -> unit
(** Append one entry for the running transaction.  Blocks while the buffer
    is full (bounded mode). *)

val append_end : t -> tid:int -> unit
(** Seal the running transaction's entries with its end mark, publishing
    them to the consumer. *)

val pop_current_tx : t -> unit
(** Drop all entries appended since the last end mark — the paper's
    [vlog.PopToLastTx()], used on abort. *)

val current_tx_entries : t -> int
(** Entries appended by the running (unsealed) transaction. *)

(** {1 Consumer (Persist thread)} *)

val head : t -> int
(** First unconsumed position. *)

val committed : t -> int
(** Position one past the last sealed end mark: entries in
    [\[head, committed)] are safe to flush. *)

val get : t -> int -> Log_entry.t
(** [get t pos] reads the entry at absolute position [pos] in
    [\[head t, committed t)]. *)

val consume_to : t -> int -> unit
(** Advance the head, releasing space to the producer. *)

val length : t -> int
(** Entries currently resident (head to tail, including unsealed). *)

(** {1 Crash / stats} *)

val clear : t -> unit
(** Discard everything (the buffer is volatile: a crash empties it). *)

val total_appended : t -> int

val producer_blocks : t -> int
(** Number of times {!append} had to block on a full buffer. *)

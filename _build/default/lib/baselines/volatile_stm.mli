(** Volatile-STM baseline: plain TinySTM on DRAM, no durability.

    The paper's performance upper bound (Section 5.1): what DudeTM's
    Perform step would achieve if persistence were free. *)

val ptm :
  ?name:string ->
  ?heap_size:int ->
  ?root_size:int ->
  ?nthreads:int ->
  ?tm_costs:Dudetm_tm.Tm_intf.costs ->
  ?seed:int ->
  unit ->
  Ptm_intf.t
(** Transactions "become durable" the moment they commit ([durable_id] =
    [last_tid]); [nvm] is [None]. *)

val ptm_htm :
  ?name:string ->
  ?heap_size:int ->
  ?root_size:int ->
  ?nthreads:int ->
  ?tm_costs:Dudetm_tm.Tm_intf.costs ->
  ?seed:int ->
  ?tid_conflicts:bool ->
  unit ->
  Ptm_intf.t
(** Volatile-HTM variant (Table 4's upper bound for the HTM rows). *)

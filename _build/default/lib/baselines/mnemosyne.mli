(** Mnemosyne baseline (Volos et al., ASPLOS 2011) as characterized in the
    paper's Section 5.2.2.

    A redo-logging durable STM: write-back transactions buffer updates in a
    per-transaction write set; reads of uncommitted data are redirected
    through that set (an address-hash lookup per read — the update
    redirection cost); commit persists the redo log to NVM {e synchronously}
    (the per-transaction persist stall), then applies updates in place.
    Every transactional access additionally pays the Intel STM compiler's
    instrumentation overhead, and flushing log lines with [CLFLUSH]
    invalidates them, charged as a cache-refill penalty.

    Transactions are durable at commit: [durable_id = last_tid]. *)

type config = {
  heap_size : int;
  root_size : int;
  nthreads : int;
  pmem : Dudetm_nvm.Pmem_config.t;
  log_size : int;  (** per-thread redo-log region, bytes *)
  tm_costs : Dudetm_tm.Tm_intf.costs;
  instrument_cost : int;  (** extra cycles per instrumented access *)
  redirect_cost : int;  (** write-set hash lookup on each read *)
  clflush_penalty : int;  (** cache-invalidation refill cost per flushed line *)
  seed : int;
}

val default_config : config

type t

val create : config -> t

val ptm_of : ?name:string -> t -> Ptm_intf.t

val ptm : ?name:string -> config -> Ptm_intf.t

val nvm : t -> Dudetm_nvm.Nvm.t

val recover : t -> int
(** Crash recovery: replay every sealed redo record (commit-marked; torn
    tails are ignored) onto the home locations in commit order, persist,
    and truncate the logs.  Returns the number of records replayed. *)

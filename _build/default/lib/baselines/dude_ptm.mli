(** Adapters presenting DudeTM instances through the common {!Ptm_intf}
    interface used by workloads and benchmarks. *)

module Make (Tm : Dudetm_tm.Tm_intf.S) : sig
  module D : module type of Dudetm_core.Dudetm.Make (Tm)

  val ptm : ?name:string -> Dudetm_core.Config.t -> Ptm_intf.t * D.t
  (** Create a DudeTM instance and its interface record.  The underlying
      [D.t] is returned for tests that need crash/recovery access. *)

  val of_instance : ?name:string -> D.t -> Ptm_intf.t * D.t
  (** Wrap an existing instance (e.g. one produced by recovery). *)

  val attach_ptm :
    ?name:string ->
    Dudetm_core.Config.t ->
    Dudetm_nvm.Nvm.t ->
    Ptm_intf.t * D.t * Dudetm_core.Dudetm.recovery_report
  (** Recover from a crashed device and wrap the result. *)
end

module Stm : module type of Make (Dudetm_tm.Tinystm)
(** DudeTM over the TinySTM-style software TM. *)

module Htm_based : module type of Make (Dudetm_tm.Htm)
(** DudeTM over the simulated hardware TM. *)

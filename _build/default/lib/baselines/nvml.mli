(** NVML (Intel's persistent-memory library, now PMDK) baseline as
    characterized in the paper's Sections 2.2 and 5.2.2.

    Undo logging with {e static} transactions: the caller declares the
    write set up front, so all old values are logged and persisted with a
    single persist ordering at transaction begin.  NVML transactions give
    no isolation; concurrency control is the application's job, modelled
    here as striped blocking locks acquired in sorted order over the
    declared write set.  Each transaction also pays NVML's dynamic
    allocation of transaction metadata and undo buffers, calibrated to the
    paper's observation of at most ~1.14 M empty transactions per second
    per thread.

    Transactions are durable at commit. *)

type config = {
  heap_size : int;
  root_size : int;
  nthreads : int;
  pmem : Dudetm_nvm.Pmem_config.t;
  log_size : int;  (** per-thread undo-log region, bytes *)
  tx_overhead : int;  (** metadata/undo allocation cycles per transaction *)
  undo_entry_cost : int;  (** snapshotting work per declared write-set word *)
  alloc_cost : int;  (** transactional persistent allocation, cycles *)
  read_cost : int;  (** plain load — no instrumentation *)
  write_cost : int;
  seed : int;
}

val default_config : config

type t

val create : config -> t

val ptm_of : ?name:string -> t -> Ptm_intf.t

val ptm : ?name:string -> config -> Ptm_intf.t
(** [requires_static] is true: pass the transaction's write set through
    [atomically ~wset].  Writing an address outside the declared set raises
    [Invalid_argument]. *)

val nvm : t -> Dudetm_nvm.Nvm.t

val recover : t -> int
(** Crash recovery: roll back any in-flight transaction from its persisted
    undo log (the batched old values written at transaction begin) and
    retire the logs.  Returns the number of transactions rolled back. *)

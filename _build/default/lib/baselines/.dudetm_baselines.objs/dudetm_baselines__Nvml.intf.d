lib/baselines/nvml.mli: Dudetm_nvm Ptm_intf

lib/baselines/dude_ptm.mli: Dudetm_core Dudetm_nvm Dudetm_tm Ptm_intf

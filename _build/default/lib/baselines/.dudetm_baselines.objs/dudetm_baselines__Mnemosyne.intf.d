lib/baselines/mnemosyne.mli: Dudetm_nvm Dudetm_tm Ptm_intf

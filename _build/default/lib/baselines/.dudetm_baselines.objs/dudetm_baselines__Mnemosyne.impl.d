lib/baselines/mnemosyne.ml: Array Bytes Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm Hashtbl Int64 List Ptm_intf

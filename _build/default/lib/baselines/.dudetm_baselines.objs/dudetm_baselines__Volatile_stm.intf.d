lib/baselines/volatile_stm.mli: Dudetm_tm Ptm_intf

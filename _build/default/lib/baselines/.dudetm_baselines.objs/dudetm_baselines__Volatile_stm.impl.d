lib/baselines/volatile_stm.ml: Dudetm_core Dudetm_nvm Dudetm_sim Dudetm_tm List Ptm_intf

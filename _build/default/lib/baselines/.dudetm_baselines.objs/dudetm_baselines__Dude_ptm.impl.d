lib/baselines/dude_ptm.ml: Dudetm_core Dudetm_sim Dudetm_tm List Ptm_intf

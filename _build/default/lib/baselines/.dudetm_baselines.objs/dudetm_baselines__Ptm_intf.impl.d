lib/baselines/ptm_intf.ml: Dudetm_nvm

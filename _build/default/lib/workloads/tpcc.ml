module Ptm = Dudetm_baselines.Ptm_intf
module Rng = Dudetm_sim.Rng

(* Record layouts (all fields are u64):
   warehouse: ytd @0                                   (16 bytes, padded)
   district: next_o_id @0, ytd @8                      (16 bytes)
   customer: balance @0, ytd_payment @8, payment_cnt @16 (24 bytes)
   item:     price @0                                  (16 bytes, padded)
   stock:    quantity @0, ytd @8, order_cnt @16        (24 bytes)
   order:    c_id @0, ol_cnt @8, all_local @16         (24 bytes)
   order line: i_id @0, quantity @8, amount @16        (24 bytes)
   history:  c_key @0, amount @8                       (16 bytes) *)

type t = {
  ptm : Ptm.t;
  storage : Kv.kind;
  districts : int;
  items : int;
  customers : int;  (* per district *)
  warehouse_rec : int;
  district_recs : int array;
  customer_base : int;  (* contiguous customer records *)
  item_base : int;
  stock : Kv.t;
  orders : Kv.t array;
  order_lines : Kv.t array;
  new_orders : Kv.t array;
}

let districts t = t.districts

let items t = t.items

let customers t = t.customers

let customer_rec t ~d ~c = t.customer_base + (24 * (((d - 1) * t.customers) + (c - 1)))

let item_price_addr t i = t.item_base + (16 * (i - 1))

(* Inputs are sampled before the transaction begins, so a conflict retry
   re-executes the same customer request. *)
type order_input = {
  d : int;
  c_id : int;
  lines : (int * int) array;  (* (item id, quantity) *)
}

let sample_input t ~rng ~district =
  let d = match district with Some d -> d | None -> 1 + Rng.int rng t.districts in
  if d < 1 || d > t.districts then invalid_arg "Tpcc: bad district";
  let n = 5 + Rng.int rng 11 in
  {
    d;
    c_id = 1 + Rng.int rng 3000;
    lines = Array.init n (fun _ -> (1 + Rng.int rng t.items, 1 + Rng.int rng 10));
  }

let root_magic = 0x54504343524F4F54L (* "TPCCROOT" *)

let stock_update ~qty s_qty =
  let q = Int64.to_int s_qty - qty in
  Int64.of_int (if q >= 10 then q else q + 91)

(* ------------------------------- setup ------------------------------- *)

let setup ptm ~storage ?(districts = 10) ?(items = 1000) ?(customers = 300)
    ?(expected_orders = 65536) () =
  let static = ptm.Ptm.requires_static in
  if static && storage = Kv.Tree then
    invalid_arg "Tpcc: tree storage is not available on static-transaction systems";
  (* District records and the item table. *)
  let alloc_block n ~init =
    if static then begin
      let base = Option.get ptm.Ptm.prealloc n in
      let writes = init base in
      (match
         ptm.Ptm.atomically ~thread:0 ~wset:(List.map fst writes) (fun tx ->
             List.iter (fun (addr, v) -> tx.Ptm.write addr v) writes)
       with
      | Some _ -> ()
      | None -> assert false);
      base
    end
    else
      match
        ptm.Ptm.atomically ~thread:0 (fun tx ->
            let base = tx.Ptm.pmalloc n in
            List.iter (fun (addr, v) -> tx.Ptm.write addr v) (init base);
            base)
      with
      | Some (base, _) -> base
      | None -> assert false
  in
  let warehouse_rec = alloc_block 16 ~init:(fun base -> [ (base, 0L) ]) in
  let district_block =
    alloc_block (16 * districts) ~init:(fun base ->
        List.init districts (fun i -> (base + (16 * i), 1L)))
  in
  let district_recs = Array.init districts (fun i -> district_block + (16 * i)) in
  (* Customers start with a zero balance; the heap is zero-initialized, so
     no per-row writes are needed. *)
  let customer_base =
    alloc_block (24 * districts * customers) ~init:(fun _ -> [])
  in
  let item_base =
    alloc_block (16 * items) ~init:(fun base ->
        List.init items (fun i -> (base + (16 * i), Int64.of_int (100 + (i mod 900)))))
  in
  (* Stock rows + the stock table. *)
  let root = ptm.Ptm.root_base in
  let stock = Kv.setup ~desc:(root + 48) ptm storage ~capacity:(2 * items) in
  for i = 1 to items do
    let rec_addr =
      alloc_block 24 ~init:(fun base -> [ (base, 100L); (base + 8, 0L); (base + 16, 0L) ])
    in
    if static then begin
      let key = Int64.of_int i in
      let plan = Kv.plan_insert stock ~key in
      match
        ptm.Ptm.atomically ~thread:0 ~wset:plan (fun tx ->
            match stock with
            | Kv.H h -> Hashtable_app.insert_planned h tx ~plan ~key ~value:(Int64.of_int rec_addr)
            | Kv.T _ -> assert false)
      with
      | Some _ -> ()
      | None -> assert false
    end
    else if not (Kv.insert stock ~thread:0 ~key:(Int64.of_int i) ~value:(Int64.of_int rec_addr))
    then failwith "Tpcc.setup: stock table full"
  done;
  let district_desc d slot = root + 64 + (48 * d) + (16 * slot) in
  let make_order_tables slot =
    Array.init districts (fun d ->
        Kv.setup ~desc:(district_desc d slot) ptm storage ~capacity:expected_orders)
  in
  let t =
    {
      ptm;
      storage;
      districts;
      items;
      customers;
      warehouse_rec;
      district_recs;
      customer_base;
      item_base;
      stock;
      orders = make_order_tables 0;
      order_lines = make_order_tables 1;
      new_orders = make_order_tables 2;
    }
  in
  (* Persist the root directory so the whole database can be re-attached
     after a crash (the magic word goes last, transactionally with the
     rest, so a torn setup never looks attachable). *)
  let directory =
    [
      (root + 8, Int64.of_int districts);
      (root + 16, Int64.of_int items);
      (root + 24, (match storage with Kv.Hash -> 0L | Kv.Tree -> 1L));
      (root + 32, Int64.of_int district_block);
      (root + 40, Int64.of_int item_base);
      (root + 544, Int64.of_int warehouse_rec);
      (root + 552, Int64.of_int customer_base);
      (root + 560, Int64.of_int customers);
      (root, root_magic);
    ]
  in
  (match
     if static then
       ptm.Ptm.atomically ~thread:0 ~wset:(List.map fst directory) (fun tx ->
           List.iter (fun (a, v) -> tx.Ptm.write a v) directory)
     else
       ptm.Ptm.atomically ~thread:0 (fun tx ->
           List.iter (fun (a, v) -> tx.Ptm.write a v) directory)
   with
  | Some _ -> ()
  | None -> assert false);
  t

let attach ptm =
  let root = ptm.Ptm.root_base in
  if ptm.Ptm.peek root <> root_magic then invalid_arg "Tpcc.attach: no TPC-C root directory";
  let districts = Int64.to_int (ptm.Ptm.peek (root + 8)) in
  let items = Int64.to_int (ptm.Ptm.peek (root + 16)) in
  let storage = if ptm.Ptm.peek (root + 24) = 0L then Kv.Hash else Kv.Tree in
  let district_block = Int64.to_int (ptm.Ptm.peek (root + 32)) in
  let item_base = Int64.to_int (ptm.Ptm.peek (root + 40)) in
  let district_desc d slot = root + 64 + (48 * d) + (16 * slot) in
  {
    ptm;
    storage;
    districts;
    items;
    customers = Int64.to_int (ptm.Ptm.peek (root + 560));
    warehouse_rec = Int64.to_int (ptm.Ptm.peek (root + 544));
    district_recs = Array.init districts (fun i -> district_block + (16 * i));
    customer_base = Int64.to_int (ptm.Ptm.peek (root + 552));
    item_base;
    stock = Kv.attach ~desc:(root + 48) ptm storage;
    orders = Array.init districts (fun d -> Kv.attach ~desc:(district_desc d 0) ptm storage);
    order_lines = Array.init districts (fun d -> Kv.attach ~desc:(district_desc d 1) ptm storage);
    new_orders = Array.init districts (fun d -> Kv.attach ~desc:(district_desc d 2) ptm storage);
  }

(* --------------------------- dynamic path ---------------------------- *)

let new_order_dynamic t ~thread input =
  let d_rec = t.district_recs.(input.d - 1) in
  let di = input.d - 1 in
  let outcome =
    t.ptm.Ptm.atomically ~thread (fun tx ->
        let o_id = tx.Ptm.read d_rec in
        tx.Ptm.write d_rec (Int64.add o_id 1L);
        let order_rec = tx.Ptm.pmalloc 24 in
        tx.Ptm.write order_rec (Int64.of_int input.c_id);
        tx.Ptm.write (order_rec + 8) (Int64.of_int (Array.length input.lines));
        tx.Ptm.write (order_rec + 16) 1L;
        if not (Kv.insert_tx t.orders.(di) tx ~key:o_id ~value:(Int64.of_int order_rec)) then
          failwith "Tpcc: orders table full";
        if not (Kv.insert_tx t.new_orders.(di) tx ~key:o_id ~value:1L) then
          failwith "Tpcc: new-order table full";
        Array.iteri
          (fun k (i, qty) ->
            let s_rec =
              match Kv.lookup_tx t.stock tx ~key:(Int64.of_int i) with
              | Some a -> Int64.to_int a
              | None -> failwith "Tpcc: missing stock row"
            in
            let s_qty = tx.Ptm.read s_rec in
            tx.Ptm.write s_rec (stock_update ~qty s_qty);
            tx.Ptm.write (s_rec + 8) (Int64.add (tx.Ptm.read (s_rec + 8)) (Int64.of_int qty));
            tx.Ptm.write (s_rec + 16) (Int64.add (tx.Ptm.read (s_rec + 16)) 1L);
            let price = tx.Ptm.read (item_price_addr t i) in
            let amount = Int64.mul price (Int64.of_int qty) in
            let ol_rec = tx.Ptm.pmalloc 24 in
            tx.Ptm.write ol_rec (Int64.of_int i);
            tx.Ptm.write (ol_rec + 8) (Int64.of_int qty);
            tx.Ptm.write (ol_rec + 16) amount;
            let ol_key = Int64.add (Int64.mul o_id 16L) (Int64.of_int k) in
            if not (Kv.insert_tx t.order_lines.(di) tx ~key:ol_key ~value:(Int64.of_int ol_rec))
            then failwith "Tpcc: order-line table full")
          input.lines)
  in
  match outcome with Some (_, tid) -> tid | None -> assert false

(* ---------------------------- static path ---------------------------- *)

let max_static_retries = 64

let new_order_static t ~thread input =
  let d_rec = t.district_recs.(input.d - 1) in
  let di = input.d - 1 in
  let n = Array.length input.lines in
  let rec attempt retries =
    if retries > max_static_retries then failwith "Tpcc: static plan never stabilized";
    (* Plan: read the would-be order id, pre-allocate records, compute
       every address the transaction will write, then lock and validate. *)
    let o_id = t.ptm.Ptm.peek d_rec in
    let prealloc = Option.get t.ptm.Ptm.prealloc in
    let order_rec = prealloc 24 in
    let ol_recs = Array.init n (fun _ -> prealloc 24) in
    let order_plan = Kv.plan_insert t.orders.(di) ~key:o_id in
    let marker_plan = Kv.plan_insert t.new_orders.(di) ~key:o_id in
    let ol_keys = Array.init n (fun k -> Int64.add (Int64.mul o_id 16L) (Int64.of_int k)) in
    let ol_plans = Array.map (fun key -> Kv.plan_insert t.order_lines.(di) ~key) ol_keys in
    let stock_recs =
      Array.map
        (fun (i, _) ->
          match Kv.peek_lookup t.stock ~key:(Int64.of_int i) with
          | Some a -> Int64.to_int a
          | None -> failwith "Tpcc: missing stock row")
        input.lines
    in
    let wset =
      (d_rec :: [ order_rec; order_rec + 8; order_rec + 16 ])
      @ order_plan @ marker_plan
      @ List.concat (Array.to_list (Array.map (fun p -> p) ol_plans))
      @ List.concat
          (Array.to_list
             (Array.map (fun s -> [ s; s + 8; s + 16 ]) stock_recs))
      @ List.concat (Array.to_list (Array.map (fun r -> [ r; r + 8; r + 16 ]) ol_recs))
    in
    let stale = ref false in
    let outcome =
      t.ptm.Ptm.atomically ~thread ~wset (fun tx ->
          let valid =
            tx.Ptm.read d_rec = o_id
            && Hashtable_app.plan_is_current tx ~plan:order_plan ~key:o_id
            && Hashtable_app.plan_is_current tx ~plan:marker_plan ~key:o_id
            && Array.for_all2
                 (fun plan key -> Hashtable_app.plan_is_current tx ~plan ~key)
                 ol_plans ol_keys
          in
          if not valid then begin
            stale := true;
            tx.Ptm.abort ()
          end;
          tx.Ptm.write d_rec (Int64.add o_id 1L);
          tx.Ptm.write order_rec (Int64.of_int input.c_id);
          tx.Ptm.write (order_rec + 8) (Int64.of_int n);
          tx.Ptm.write (order_rec + 16) 1L;
          let h kv = match kv with Kv.H h -> h | Kv.T _ -> assert false in
          Hashtable_app.insert_planned (h t.orders.(di)) tx ~plan:order_plan ~key:o_id
            ~value:(Int64.of_int order_rec);
          Hashtable_app.insert_planned (h t.new_orders.(di)) tx ~plan:marker_plan ~key:o_id
            ~value:1L;
          Array.iteri
            (fun k (i, qty) ->
              let s_rec = stock_recs.(k) in
              let s_qty = tx.Ptm.read s_rec in
              tx.Ptm.write s_rec (stock_update ~qty s_qty);
              tx.Ptm.write (s_rec + 8) (Int64.add (tx.Ptm.read (s_rec + 8)) (Int64.of_int qty));
              tx.Ptm.write (s_rec + 16) (Int64.add (tx.Ptm.read (s_rec + 16)) 1L);
              let price = tx.Ptm.read (item_price_addr t i) in
              let ol_rec = ol_recs.(k) in
              tx.Ptm.write ol_rec (Int64.of_int i);
              tx.Ptm.write (ol_rec + 8) (Int64.of_int qty);
              tx.Ptm.write (ol_rec + 16) (Int64.mul price (Int64.of_int qty));
              Hashtable_app.insert_planned (h t.order_lines.(di)) tx ~plan:ol_plans.(k)
                ~key:ol_keys.(k) ~value:(Int64.of_int ol_rec))
            input.lines)
    in
    match outcome with
    | Some (_, tid) -> tid
    | None ->
      if !stale then attempt (retries + 1) else assert false
  in
  attempt 0

let new_order t ~thread ~rng ?district () =
  let input = sample_input t ~rng ~district in
  if t.ptm.Ptm.requires_static then new_order_static t ~thread input
  else new_order_dynamic t ~thread input

(* ------------------------------ Payment ------------------------------ *)

(* TPC-C Payment: a customer pays [amount]; the warehouse, district and
   customer rows update, and a history record is written.  5 field updates
   plus a fresh history row — short and write-only, contrasting with New
   Order's bulk. *)
type payment_input = { pd : int; pc : int; amount : int64 }

let sample_payment t ~rng ~district =
  let d = match district with Some d -> d | None -> 1 + Rng.int rng t.districts in
  { pd = d; pc = 1 + Rng.int rng t.customers; amount = Int64.of_int (1 + Rng.int rng 5000) }

let payment_dynamic t ~thread input =
  let d_rec = t.district_recs.(input.pd - 1) in
  let c_rec = customer_rec t ~d:input.pd ~c:input.pc in
  match
    t.ptm.Ptm.atomically ~thread (fun tx ->
        tx.Ptm.write t.warehouse_rec (Int64.add (tx.Ptm.read t.warehouse_rec) input.amount);
        tx.Ptm.write (d_rec + 8) (Int64.add (tx.Ptm.read (d_rec + 8)) input.amount);
        tx.Ptm.write c_rec (Int64.sub (tx.Ptm.read c_rec) input.amount);
        tx.Ptm.write (c_rec + 8) (Int64.add (tx.Ptm.read (c_rec + 8)) input.amount);
        tx.Ptm.write (c_rec + 16) (Int64.add (tx.Ptm.read (c_rec + 16)) 1L);
        let hist = tx.Ptm.pmalloc 16 in
        tx.Ptm.write hist (Int64.of_int (((input.pd - 1) * t.customers) + input.pc));
        tx.Ptm.write (hist + 8) input.amount)
  with
  | Some (_, tid) -> tid
  | None -> assert false

let payment_static t ~thread input =
  let d_rec = t.district_recs.(input.pd - 1) in
  let c_rec = customer_rec t ~d:input.pd ~c:input.pc in
  let hist = Option.get t.ptm.Ptm.prealloc 16 in
  let wset =
    [ t.warehouse_rec; d_rec + 8; c_rec; c_rec + 8; c_rec + 16; hist; hist + 8 ]
  in
  match
    t.ptm.Ptm.atomically ~thread ~wset (fun tx ->
        tx.Ptm.write t.warehouse_rec (Int64.add (tx.Ptm.read t.warehouse_rec) input.amount);
        tx.Ptm.write (d_rec + 8) (Int64.add (tx.Ptm.read (d_rec + 8)) input.amount);
        tx.Ptm.write c_rec (Int64.sub (tx.Ptm.read c_rec) input.amount);
        tx.Ptm.write (c_rec + 8) (Int64.add (tx.Ptm.read (c_rec + 8)) input.amount);
        tx.Ptm.write (c_rec + 16) (Int64.add (tx.Ptm.read (c_rec + 16)) 1L);
        tx.Ptm.write hist (Int64.of_int (((input.pd - 1) * t.customers) + input.pc));
        tx.Ptm.write (hist + 8) input.amount)
  with
  | Some (_, tid) -> tid
  | None -> assert false

let payment t ~thread ~rng ?district () =
  let input = sample_payment t ~rng ~district in
  if t.ptm.Ptm.requires_static then payment_static t ~thread input
  else payment_dynamic t ~thread input

(* ---------------------------- Order-Status --------------------------- *)

(* Read-only: fetch a recent order of a district and sum its lines. *)
let order_status t ~thread ~rng ?district () =
  let d = match district with Some d -> d | None -> 1 + Rng.int rng t.districts in
  let di = d - 1 in
  let outcome =
    t.ptm.Ptm.atomically ~thread (fun tx ->
        let next = tx.Ptm.read t.district_recs.(di) in
        if next <= 1L then 0L
        else begin
          let o_id = Int64.of_int (1 + Rng.int rng (Int64.to_int next - 1)) in
          match Kv.lookup_tx t.orders.(di) tx ~key:o_id with
          | None -> 0L
          | Some rec_addr ->
            let cnt = Int64.to_int (tx.Ptm.read (Int64.to_int rec_addr + 8)) in
            let total = ref 0L in
            for k = 0 to cnt - 1 do
              match
                Kv.lookup_tx t.order_lines.(di) tx
                  ~key:(Int64.add (Int64.mul o_id 16L) (Int64.of_int k))
              with
              | Some ol -> total := Int64.add !total (tx.Ptm.read (Int64.to_int ol + 16))
              | None -> ()
            done;
            !total
        end)
  in
  match outcome with Some (total, _) -> total | None -> assert false

(* ---------------------------- mixed driver --------------------------- *)

let transaction t ~thread ~rng ?district () =
  (* Approximate spec mix: 45% New Order, 45% Payment, 10% Order-Status. *)
  let u = Rng.int rng 100 in
  if u < 45 then new_order t ~thread ~rng ?district ()
  else if u < 90 then payment t ~thread ~rng ?district ()
  else begin
    ignore (order_status t ~thread ~rng ?district ());
    0
  end

(* --------------------------- verification ---------------------------- *)

let peek_count kv =
  match kv with
  | Kv.H h -> List.length (Hashtable_app.peek_bindings h)
  | Kv.T b -> List.length (Bptree_app.peek_bindings b)

let order_count t ~district = peek_count t.orders.(district - 1)

let consistency_check t =
  let peek = t.ptm.Ptm.peek in
  let fail fmt = Printf.ksprintf failwith fmt in
  let total_lines = ref 0 in
  for d = 1 to t.districts do
    let di = d - 1 in
    let next = Int64.to_int (peek t.district_recs.(di)) in
    let n_orders = peek_count t.orders.(di) in
    let n_markers = peek_count t.new_orders.(di) in
    if n_orders <> next - 1 then
      fail "district %d: next_o_id %d but %d orders" d next n_orders;
    if n_markers <> n_orders then
      fail "district %d: %d orders but %d new-order markers" d n_orders n_markers;
    let bindings =
      match t.orders.(di) with
      | Kv.H h -> Hashtable_app.peek_bindings h
      | Kv.T b -> Bptree_app.peek_bindings b
    in
    List.iter
      (fun (o_id, rec_addr) ->
        let rec_addr = Int64.to_int rec_addr in
        let cnt = Int64.to_int (peek (rec_addr + 8)) in
        if cnt < 5 || cnt > 15 then fail "district %d order %Ld: bad ol_cnt %d" d o_id cnt;
        total_lines := !total_lines + cnt;
        for k = 0 to cnt - 1 do
          let ol_key = Int64.add (Int64.mul o_id 16L) (Int64.of_int k) in
          match Kv.peek_lookup t.order_lines.(di) ~key:ol_key with
          | Some ol_rec ->
            let i = Int64.to_int (peek (Int64.to_int ol_rec)) in
            if i < 1 || i > t.items then fail "order line with bad item %d" i
          | None -> fail "district %d order %Ld: missing order line %d" d o_id k
        done)
      bindings
  done;
  (* Stock order counts must equal the number of order lines. *)
  let stock_cnt = ref 0 in
  for i = 1 to t.items do
    match Kv.peek_lookup t.stock ~key:(Int64.of_int i) with
    | Some rec_addr -> stock_cnt := !stock_cnt + Int64.to_int (peek (Int64.to_int rec_addr + 16))
    | None -> fail "missing stock row %d" i
  done;
  if !stock_cnt <> !total_lines then
    fail "stock order_cnt total %d but %d order lines exist" !stock_cnt !total_lines;
  (* Payment invariants: warehouse YTD equals the sum of district YTDs,
     and equals the total paid by customers (their ytd_payment). *)
  let d_ytd = ref 0L in
  for d = 1 to t.districts do
    d_ytd := Int64.add !d_ytd (peek (t.district_recs.(d - 1) + 8))
  done;
  let w_ytd = peek t.warehouse_rec in
  if w_ytd <> !d_ytd then fail "warehouse ytd %Ld but district ytds sum to %Ld" w_ytd !d_ytd;
  let c_paid = ref 0L in
  let c_balance = ref 0L in
  for d = 1 to t.districts do
    for c = 1 to t.customers do
      let r = customer_rec t ~d ~c in
      c_paid := Int64.add !c_paid (peek (r + 8));
      c_balance := Int64.add !c_balance (peek r)
    done
  done;
  if !c_paid <> w_ytd then fail "customers paid %Ld but warehouse ytd %Ld" !c_paid w_ytd;
  if Int64.neg !c_paid <> !c_balance then
    fail "customer balances %Ld do not mirror payments %Ld" !c_balance !c_paid

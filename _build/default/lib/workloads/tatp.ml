module Rng = Dudetm_sim.Rng

type t = { kv : Kv.t; n : int }

let setup ptm ~storage ~subscribers =
  if subscribers < 1 then invalid_arg "Tatp.setup";
  let kv = Kv.setup ptm storage ~capacity:(2 * subscribers) in
  for s = 1 to subscribers do
    let loc = Int64.of_int (10_000 + s) in
    if not (Kv.insert kv ~thread:0 ~key:(Int64.of_int s) ~value:loc) then
      failwith "Tatp.setup: subscriber table full"
  done;
  { kv; n = subscribers }

let subscribers t = t.n

let update_location t ~thread ~rng =
  let s_id = 1 + Rng.int rng t.n in
  let loc = Int64.logand (Rng.next_int64 rng) 0xFFFFFFFFL in
  if not (Kv.update t.kv ~thread ~key:(Int64.of_int s_id) ~value:loc) then
    failwith "Tatp: missing subscriber"

let peek_location t ~s_id =
  match Kv.peek_lookup t.kv ~key:(Int64.of_int s_id) with
  | Some v -> v
  | None -> failwith "Tatp: missing subscriber"

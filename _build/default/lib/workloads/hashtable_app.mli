(** Fixed-size open-addressing hash table on the persistent heap
    (Section 5.1's HashTable benchmark).

    Maps 64-bit keys to 64-bit values; collisions probe the next slot
    circularly, exactly as in the paper.  A slot is 24 bytes — key (0 =
    empty), tag, value — so an insert performs the benchmark's three
    transactional writes.

    Works over any {!Dudetm_baselines.Ptm_intf.t}.  On static-transaction systems (NVML) an
    operation first plans its write set by non-transactional probing, then
    re-validates inside the locked transaction and replans on staleness. *)

type t

val setup : ?desc:int -> Dudetm_baselines.Ptm_intf.t -> capacity:int -> t
(** Allocate a table of [capacity] slots (rounded up to a power of two)
    and persist its two-word descriptor (base, capacity) at [desc]
    (default: the start of the root block).  Runs one transaction. *)

val attach : ?desc:int -> Dudetm_baselines.Ptm_intf.t -> t
(** Re-open a table from its persisted descriptor (e.g. after crash
    recovery). *)

val capacity : t -> int

val insert : t -> thread:int -> key:int64 -> value:int64 -> bool
(** Insert or overwrite.  [false] if the table is full.  Keys must be
    non-zero. *)

val lookup : t -> thread:int -> key:int64 -> int64 option

val update : t -> thread:int -> key:int64 -> value:int64 -> bool
(** Overwrite the value of an existing key with a single transactional
    write (TATP's Update Location shape).  [false] if absent. *)

val insert_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> bool
(** Compose an insert into an enclosing dynamic transaction. *)

val lookup_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> int64 option

val update_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> bool

val plan_insert : t -> key:int64 -> int list
(** Write set an insert of [key] would need right now (static planning);
    also used by composite static transactions (TPC-C on NVML). *)

val plan_update : t -> key:int64 -> int list

val peek_lookup : t -> key:int64 -> int64 option
(** Non-transactional lookup against the current volatile image. *)

val insert_planned :
  t -> Dudetm_baselines.Ptm_intf.tx -> plan:int list -> key:int64 -> value:int64 -> unit
(** Perform an insert through a previously planned write set (the
    [plan_insert] triple), inside a static transaction. *)

val plan_is_current : Dudetm_baselines.Ptm_intf.tx -> plan:int list -> key:int64 -> bool
(** Re-validate a planned insert inside the transaction: the planned slot
    must still be empty or already hold [key]. *)

val peek_bindings : t -> (int64 * int64) list
(** All (key, value) pairs, non-transactionally, in slot order. *)

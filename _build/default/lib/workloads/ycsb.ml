module Rng = Dudetm_sim.Rng
module Ptm = Dudetm_baselines.Ptm_intf

type t = {
  ptm : Ptm.t;
  tree : Bptree_app.t;
  zipf : Zipf.t;
  read_fraction : float;
  key_stride : int;
}

let key_of t rank = Int64.of_int (1 + (rank * t.key_stride))

let setup ptm ~records ~theta ?(read_fraction = 0.5) ?(key_stride = 1) () =
  if records < 1 then invalid_arg "Ycsb.setup";
  let tree = Bptree_app.create ptm in
  let t = { ptm; tree; zipf = Zipf.create ~n:records ~theta; read_fraction; key_stride } in
  (* Load in shuffled order so the tree is not pathologically built by
     ascending insertion. *)
  let order = Array.init records (fun i -> i) in
  let rng = Rng.create 7 in
  Rng.shuffle rng order;
  Array.iter
    (fun rank -> Bptree_app.insert tree ~thread:0 ~key:(key_of t rank) ~value:(Int64.of_int rank))
    order;
  t

let transaction t ~thread ~rng =
  let rank = Zipf.sample t.zipf rng in
  let key = key_of t rank in
  if Rng.float rng < t.read_fraction then ignore (Bptree_app.lookup t.tree ~thread ~key)
  else
    ignore (Bptree_app.update t.tree ~thread ~key ~value:(Int64.logand (Rng.next_int64 rng) 0xFFFFFFFL))

let update_only t ~thread ~rng =
  let rank = Zipf.sample t.zipf rng in
  ignore
    (Bptree_app.update t.tree ~thread ~key:(key_of t rank)
       ~value:(Int64.logand (Rng.next_int64 rng) 0xFFFFFFFL))

(* Standard YCSB core-workload operation mixes. *)
type mix = {
  reads : float;
  updates : float;
  inserts : float;
  scans : float;
  rmws : float;
}

let workload_a = { reads = 0.5; updates = 0.5; inserts = 0.0; scans = 0.0; rmws = 0.0 }

let workload_b = { reads = 0.95; updates = 0.05; inserts = 0.0; scans = 0.0; rmws = 0.0 }

let workload_c = { reads = 1.0; updates = 0.0; inserts = 0.0; scans = 0.0; rmws = 0.0 }

let workload_d = { reads = 0.95; updates = 0.0; inserts = 0.05; scans = 0.0; rmws = 0.0 }

let workload_e = { reads = 0.0; updates = 0.0; inserts = 0.05; scans = 0.95; rmws = 0.0 }

let workload_f = { reads = 0.5; updates = 0.0; inserts = 0.0; scans = 0.0; rmws = 0.5 }

(* Inserted keys extend the population past the loaded records; each thread
   draws from its own key range so inserts need no cross-thread
   coordination. *)
let insert_key t ~thread counter =
  let n = Zipf.n t.zipf in
  let k = 1 + n + (thread * 1_000_000) + !counter in
  incr counter;
  Int64.of_int (k * t.key_stride)

let mixed_transaction t mix ~thread ~rng ~insert_counter =
  let u = Rng.float rng in
  let key () = key_of t (Zipf.sample t.zipf rng) in
  let value () = Int64.logand (Rng.next_int64 rng) 0xFFFFFFL in
  let outcome =
    if u < mix.reads then
      t.ptm.Ptm.atomically ~thread (fun tx -> ignore (Bptree_app.lookup_tx t.tree tx ~key:(key ())))
    else if u < mix.reads +. mix.updates then
      t.ptm.Ptm.atomically ~thread (fun tx ->
          ignore (Bptree_app.update_tx t.tree tx ~key:(key ()) ~value:(value ())))
    else if u < mix.reads +. mix.updates +. mix.inserts then
      t.ptm.Ptm.atomically ~thread (fun tx ->
          Bptree_app.insert_tx t.tree tx ~key:(insert_key t ~thread insert_counter)
            ~value:(value ()))
    else if u < mix.reads +. mix.updates +. mix.inserts +. mix.scans then begin
      let lo = key () in
      let hi = Int64.add lo (Int64.of_int (t.key_stride * (1 + Rng.int rng 100))) in
      t.ptm.Ptm.atomically ~thread (fun tx ->
          ignore (Bptree_app.fold_range_tx t.tree tx ~lo ~hi ~init:0 ~f:(fun acc _ _ -> acc + 1)))
    end
    else
      (* read-modify-write *)
      t.ptm.Ptm.atomically ~thread (fun tx ->
          let k = key () in
          match Bptree_app.lookup_tx t.tree tx ~key:k with
          | Some v -> ignore (Bptree_app.update_tx t.tree tx ~key:k ~value:(Int64.add v 1L))
          | None -> ())
  in
  match outcome with Some ((), tid) -> tid | None -> 0

let transaction_tid t ~thread ~rng =
  let rank = Zipf.sample t.zipf rng in
  let key = key_of t rank in
  let read_only = Rng.float rng < t.read_fraction in
  let value = Int64.logand (Rng.next_int64 rng) 0xFFFFFFL in
  match
    t.ptm.Ptm.atomically ~thread (fun tx ->
        if read_only then ignore (Bptree_app.lookup_tx t.tree tx ~key)
        else ignore (Bptree_app.update_tx t.tree tx ~key ~value))
  with
  | Some ((), tid) -> tid
  | None -> 0

let tree t = t.tree

module Ptm = Dudetm_baselines.Ptm_intf

type t = {
  ptm : Ptm.t;
  base : int;
  capacity : int;  (* power of two *)
  mask : int;
}

let slot_size = 24

let addr_key t slot = t.base + (slot_size * slot)

let addr_tag t slot = t.base + (slot_size * slot) + 8

let addr_value t slot = t.base + (slot_size * slot) + 16

let hash t key =
  (* Fibonacci hashing of the key's low bits.  Charged: computing the hash
     and locating the bucket is real work in the paper's benchmark too. *)
  Dudetm_sim.Sched.advance 40;
  let k = Int64.to_int (Int64.logand key 0x3FFFFFFFFFFFFFFFL) in
  k * 0x2545F4914F6CDD1D land max_int land t.mask

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 16

(* The table's location is persisted as a two-word descriptor (base,
   capacity) so it can be re-attached after a restart; by default it lives
   at the start of the root block. *)
let setup ?desc ptm ~capacity =
  let capacity = round_pow2 capacity in
  let desc = match desc with Some d -> d | None -> ptm.Ptm.root_base in
  let base =
    match ptm.Ptm.prealloc with
    | Some alloc ->
      let base = alloc (capacity * slot_size) in
      (match
         ptm.Ptm.atomically ~thread:0 ~wset:[ desc; desc + 8 ] (fun tx ->
             tx.Ptm.write desc (Int64.of_int base);
             tx.Ptm.write (desc + 8) (Int64.of_int capacity))
       with
      | Some _ -> base
      | None -> assert false)
    | None -> (
      match
        ptm.Ptm.atomically ~thread:0 (fun tx ->
            let base = tx.Ptm.pmalloc (capacity * slot_size) in
            tx.Ptm.write desc (Int64.of_int base);
            tx.Ptm.write (desc + 8) (Int64.of_int capacity);
            base)
      with
      | Some (base, _) -> base
      | None -> assert false)
  in
  { ptm; base; capacity; mask = capacity - 1 }

let attach ?desc ptm =
  let desc = match desc with Some d -> d | None -> ptm.Ptm.root_base in
  let base = Int64.to_int (ptm.Ptm.peek desc) in
  let capacity = Int64.to_int (ptm.Ptm.peek (desc + 8)) in
  if capacity < 16 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Hashtable_app.attach: descriptor does not hold a table";
  { ptm; base; capacity; mask = capacity - 1 }

let capacity t = t.capacity

(* Probe within a transaction: first slot that is empty or holds [key].
   Raises [Not_found] after a full cycle (table full). *)
let probe_tx t read ~key =
  let start = hash t key in
  let rec go i n =
    if n >= t.capacity then raise Not_found
    else
      let k = read (addr_key t i) in
      if k = 0L || k = key then i else go ((i + 1) land t.mask) (n + 1)
  in
  go start 0

let insert_slot t (tx : Ptm.tx) slot ~key ~value =
  tx.Ptm.write (addr_key t slot) key;
  tx.Ptm.write (addr_tag t slot) (Int64.logxor key 0x5DEECE66DL);
  tx.Ptm.write (addr_value t slot) value

let insert_tx t tx ~key ~value =
  if key = 0L then invalid_arg "Hashtable_app: zero key";
  match probe_tx t tx.Ptm.read ~key with
  | slot ->
    insert_slot t tx slot ~key ~value;
    true
  | exception Not_found -> false

let lookup_tx t tx ~key =
  match probe_tx t tx.Ptm.read ~key with
  | slot ->
    if tx.Ptm.read (addr_key t slot) = key then Some (tx.Ptm.read (addr_value t slot))
    else None
  | exception Not_found -> None

let update_tx t tx ~key ~value =
  match probe_tx t tx.Ptm.read ~key with
  | slot ->
    if tx.Ptm.read (addr_key t slot) = key then begin
      tx.Ptm.write (addr_value t slot) value;
      true
    end
    else false
  | exception Not_found -> false

(* Static planning: probe non-transactionally against the current image. *)
let plan_probe t ~key =
  match probe_tx t t.ptm.Ptm.peek ~key with slot -> Some slot | exception Not_found -> None

let plan_insert t ~key =
  match plan_probe t ~key with
  | Some slot -> [ addr_key t slot; addr_tag t slot; addr_value t slot ]
  | None -> []

let plan_update t ~key =
  match plan_probe t ~key with
  | Some slot when t.ptm.Ptm.peek (addr_key t slot) = key -> [ addr_value t slot ]
  | Some _ | None -> []

let peek_lookup t ~key =
  match plan_probe t ~key with
  | Some slot ->
    if t.ptm.Ptm.peek (addr_key t slot) = key then Some (t.ptm.Ptm.peek (addr_value t slot))
    else None
  | None -> None

let max_static_retries = 64

(* Static execution: lock the planned slot's addresses, re-validate inside
   the transaction, and replan if a concurrent transaction changed the
   probe path.  [run tx slot] returns [Some result] when the plan is still
   valid and [None] to trigger a replan. *)
let rec static_op t ~thread ~key ~plan ~run ~retries =
  if retries > max_static_retries then failwith "Hashtable_app: static plan never stabilized";
  match plan_probe t ~key with
  | None -> false
  | Some slot -> (
    let wset = plan t ~key in
    let stale = ref false in
    match
      t.ptm.Ptm.atomically ~thread ~wset (fun tx ->
          match run tx slot with
          | Some ok -> ok
          | None ->
            stale := true;
            tx.Ptm.abort ();
            false)
    with
    | Some (ok, _) -> ok
    | None ->
      if !stale then static_op t ~thread ~key ~plan ~run ~retries:(retries + 1) else false)

let insert t ~thread ~key ~value =
  if key = 0L then invalid_arg "Hashtable_app: zero key";
  if t.ptm.Ptm.requires_static then
    static_op t ~thread ~key ~plan:plan_insert
      ~run:(fun tx slot ->
        let k = tx.Ptm.read (addr_key t slot) in
        if k = 0L || k = key then begin
          insert_slot t tx slot ~key ~value;
          Some true
        end
        else None)
      ~retries:0
  else
    match t.ptm.Ptm.atomically ~thread (fun tx -> insert_tx t tx ~key ~value) with
    | Some (ok, _) -> ok
    | None -> false

let lookup t ~thread ~key =
  if t.ptm.Ptm.requires_static then
    (* Reads need no locks in NVML-style usage; peek against the image
       under a trivial transaction for cost parity. *)
    match t.ptm.Ptm.atomically ~thread ~wset:[] (fun tx -> lookup_tx t tx ~key) with
    | Some (r, _) -> r
    | None -> None
  else
    match t.ptm.Ptm.atomically ~thread (fun tx -> lookup_tx t tx ~key) with
    | Some (r, _) -> r
    | None -> None

let update t ~thread ~key ~value =
  if t.ptm.Ptm.requires_static then begin
    if plan_update t ~key = [] then false
    else
      static_op t ~thread ~key ~plan:plan_update
        ~run:(fun tx slot ->
          let k = tx.Ptm.read (addr_key t slot) in
          if k = key then begin
            tx.Ptm.write (addr_value t slot) value;
            Some true
          end
          else None)
        ~retries:0
  end
  else
    match t.ptm.Ptm.atomically ~thread (fun tx -> update_tx t tx ~key ~value) with
    | Some (ok, _) -> ok
    | None -> false

let insert_planned _t tx ~plan ~key ~value =
  match plan with
  | [ kaddr; taddr; vaddr ] ->
    tx.Ptm.write kaddr key;
    tx.Ptm.write taddr (Int64.logxor key 0x5DEECE66DL);
    tx.Ptm.write vaddr value
  | _ -> invalid_arg "Hashtable_app.insert_planned: malformed plan"

let plan_is_current tx ~plan ~key =
  match plan with
  | kaddr :: _ ->
    let k = tx.Ptm.read kaddr in
    k = 0L || k = key
  | [] -> false

let peek_bindings t =
  let rec go slot acc =
    if slot >= t.capacity then List.rev acc
    else
      let k = t.ptm.Ptm.peek (addr_key t slot) in
      if k = 0L then go (slot + 1) acc
      else go (slot + 1) ((k, t.ptm.Ptm.peek (addr_value t slot)) :: acc)
  in
  go 0 []

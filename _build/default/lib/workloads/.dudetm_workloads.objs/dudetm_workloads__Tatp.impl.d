lib/workloads/tatp.ml: Dudetm_sim Int64 Kv

lib/workloads/bptree_app.ml: Dudetm_baselines Int64 List Printf

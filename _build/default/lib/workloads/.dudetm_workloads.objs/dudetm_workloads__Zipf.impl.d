lib/workloads/zipf.ml: Array Dudetm_sim Float

lib/workloads/ycsb.mli: Bptree_app Dudetm_baselines Dudetm_sim

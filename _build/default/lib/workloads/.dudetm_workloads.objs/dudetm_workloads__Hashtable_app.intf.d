lib/workloads/hashtable_app.mli: Dudetm_baselines

lib/workloads/tpcc.mli: Dudetm_baselines Dudetm_sim Kv

lib/workloads/zipf.mli: Dudetm_sim

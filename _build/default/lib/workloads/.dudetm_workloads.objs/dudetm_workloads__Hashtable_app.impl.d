lib/workloads/hashtable_app.ml: Dudetm_baselines Dudetm_sim Int64 List

lib/workloads/kv.ml: Bptree_app Dudetm_baselines Hashtable_app Int64 List

lib/workloads/tpcc.ml: Array Bptree_app Dudetm_baselines Dudetm_sim Hashtable_app Int64 Kv List Option Printf

lib/workloads/ycsb.ml: Array Bptree_app Dudetm_baselines Dudetm_sim Int64 Zipf

lib/workloads/kv.mli: Bptree_app Dudetm_baselines Hashtable_app

lib/workloads/tatp.mli: Dudetm_baselines Dudetm_sim Kv

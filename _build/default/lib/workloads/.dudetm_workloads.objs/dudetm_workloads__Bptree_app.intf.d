lib/workloads/bptree_app.mli: Dudetm_baselines

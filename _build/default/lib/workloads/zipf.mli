(** Zipfian key sampler.

    The paper's skewed workloads (YCSB session store, swap-overhead sweep)
    draw keys from a Zipfian distribution with constants 0.99 and 1.07.
    This implementation precomputes the CDF and samples by binary search —
    exact, and fast enough for the population sizes the experiments use. *)

type t

val create : n:int -> theta:float -> t
(** Distribution over ranks [\[0, n)] with exponent [theta]. *)

val n : t -> int

val theta : t -> float

val sample : t -> Dudetm_sim.Rng.t -> int
(** A rank in [\[0, n)]; rank 0 is the most popular. *)

val pmf : t -> int -> float
(** Probability of a rank (for tests). *)

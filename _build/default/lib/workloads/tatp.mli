(** TATP benchmark, Update Location transaction only (Section 5.1).

    Models a mobile-carrier database: a subscriber table keyed by
    subscriber ID.  Update Location records a handoff — one search and one
    field update, the paper's shortest transaction (1 write per
    transaction, Table 1). *)

type t

val setup :
  Dudetm_baselines.Ptm_intf.t -> storage:Kv.kind -> subscribers:int -> t
(** Load [subscribers] subscriber rows (IDs 1..n) with initial VLR
    locations. *)

val subscribers : t -> int

val update_location : t -> thread:int -> rng:Dudetm_sim.Rng.t -> unit
(** One Update Location transaction: uniform-random subscriber, new random
    location. *)

val peek_location : t -> s_id:int -> int64
(** Current location of a subscriber (non-transactional; for tests). *)

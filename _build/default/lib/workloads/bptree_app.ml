module Ptm = Dudetm_baselines.Ptm_intf

(* Node layout (256 bytes):
     @0    header: bit0 = leaf, bits 1.. = number of keys
     @8    keys[0..13]
     @120  leaf: values[0..13] / internal: children[0..14]
     @240  leaf: next-leaf pointer (0 = none)                              *)

let fanout = 14

let node_size = 256

type t = {
  ptm : Ptm.t;
  root_ptr : int;  (* address of the cell holding the root node address *)
}

let key_addr node i = node + 8 + (8 * i)

let slot_addr node i = node + 120 + (8 * i)

let next_addr node = node + 240

let header_of ~leaf ~n = Int64.of_int ((n lsl 1) lor if leaf then 1 else 0)

let nkeys h = Int64.to_int h lsr 1

let is_leaf h = Int64.to_int h land 1 = 1

let alloc_node (tx : Ptm.tx) ~leaf =
  let node = tx.Ptm.pmalloc node_size in
  tx.Ptm.write node (header_of ~leaf ~n:0);
  node

let create_tx ptm tx =
  let root_ptr = tx.Ptm.pmalloc 8 in
  let leaf = alloc_node tx ~leaf:true in
  tx.Ptm.write root_ptr (Int64.of_int leaf);
  { ptm; root_ptr }

let create ptm =
  match ptm.Ptm.atomically ~thread:0 (fun tx -> create_tx ptm tx) with
  | Some (t, _) -> t
  | None -> assert false

let handle_addr t = t.root_ptr

let of_handle ptm root_ptr = { ptm; root_ptr }

(* Route a key inside an internal node: the first child whose upper bound
   exceeds the key. *)
let child_index read node n key =
  let rec go i = if i < n && key >= read (key_addr node i) then go (i + 1) else i in
  go 0

(* Position of the first key >= [key] in a node. *)
let lower_bound read node n key =
  let rec go i = if i < n && read (key_addr node i) < key then go (i + 1) else i in
  go 0

let find_leaf read root key =
  let rec go node =
    let h = read node in
    if is_leaf h then (node, nkeys h)
    else
      let n = nkeys h in
      let idx = child_index read node n key in
      go (Int64.to_int (read (slot_addr node idx)))
  in
  go root

let lookup_with read root_ptr key =
  let root = Int64.to_int (read root_ptr) in
  let leaf, n = find_leaf read root key in
  let pos = lower_bound read leaf n key in
  if pos < n && read (key_addr leaf pos) = key then Some (read (slot_addr leaf pos))
  else None

let lookup_tx t (tx : Ptm.tx) ~key = lookup_with tx.Ptm.read t.root_ptr key

let update_tx t (tx : Ptm.tx) ~key ~value =
  let read = tx.Ptm.read in
  let root = Int64.to_int (read t.root_ptr) in
  let leaf, n = find_leaf read root key in
  let pos = lower_bound read leaf n key in
  if pos < n && read (key_addr leaf pos) = key then begin
    tx.Ptm.write (slot_addr leaf pos) value;
    true
  end
  else false

(* Split the full [idx]-th child of [parent]; [parent] must not be full.
   Top-down preemptive splitting keeps insertion single-pass. *)
let split_child (tx : Ptm.tx) parent pidx child =
  let read = tx.Ptm.read and write = tx.Ptm.write in
  let ch = read child in
  let leaf = is_leaf ch in
  let n = nkeys ch in
  assert (n = fanout);
  let mid = fanout / 2 in
  let right = alloc_node tx ~leaf in
  let separator =
    if leaf then begin
      (* right gets keys[mid..n) *)
      for i = mid to n - 1 do
        write (key_addr right (i - mid)) (read (key_addr child i));
        write (slot_addr right (i - mid)) (read (slot_addr child i))
      done;
      write (next_addr right) (read (next_addr child));
      write (next_addr child) (Int64.of_int right);
      write right (header_of ~leaf:true ~n:(n - mid));
      write child (header_of ~leaf:true ~n:mid);
      read (key_addr right 0)
    end
    else begin
      (* separator keys[mid] moves up; right gets keys (mid..n) and
         children (mid..n]. *)
      let sep = read (key_addr child mid) in
      for i = mid + 1 to n - 1 do
        write (key_addr right (i - mid - 1)) (read (key_addr child i))
      done;
      for i = mid + 1 to n do
        write (slot_addr right (i - mid - 1)) (read (slot_addr child i))
      done;
      write right (header_of ~leaf:false ~n:(n - mid - 1));
      write child (header_of ~leaf:false ~n:mid);
      sep
    end
  in
  (* Shift the parent's keys/children right of pidx and link the new
     child. *)
  let pn = nkeys (read parent) in
  for i = pn - 1 downto pidx do
    write (key_addr parent (i + 1)) (read (key_addr parent i))
  done;
  for i = pn downto pidx + 1 do
    write (slot_addr parent (i + 1)) (read (slot_addr parent i))
  done;
  write (key_addr parent pidx) separator;
  write (slot_addr parent (pidx + 1)) (Int64.of_int right);
  write parent (header_of ~leaf:false ~n:(pn + 1))

let insert_tx t (tx : Ptm.tx) ~key ~value =
  let read = tx.Ptm.read and write = tx.Ptm.write in
  let root = Int64.to_int (read t.root_ptr) in
  let root =
    if nkeys (read root) = fanout then begin
      let new_root = alloc_node tx ~leaf:false in
      write (slot_addr new_root 0) (Int64.of_int root);
      split_child tx new_root 0 root;
      write t.root_ptr (Int64.of_int new_root);
      new_root
    end
    else root
  in
  let rec descend node =
    let h = read node in
    let n = nkeys h in
    if is_leaf h then begin
      let pos = lower_bound read node n key in
      if pos < n && read (key_addr node pos) = key then write (slot_addr node pos) value
      else begin
        for i = n - 1 downto pos do
          write (key_addr node (i + 1)) (read (key_addr node i));
          write (slot_addr node (i + 1)) (read (slot_addr node i))
        done;
        write (key_addr node pos) key;
        write (slot_addr node pos) value;
        write node (header_of ~leaf:true ~n:(n + 1))
      end
    end
    else begin
      let idx = child_index read node n key in
      let child = Int64.to_int (read (slot_addr node idx)) in
      if nkeys (read child) = fanout then begin
        split_child tx node idx child;
        (* The separator changed the routing; recompute. *)
        let idx = child_index read node (nkeys (read node)) key in
        descend (Int64.to_int (read (slot_addr node idx)))
      end
      else descend child
    end
  in
  descend root

let delete_tx t (tx : Ptm.tx) ~key =
  let read = tx.Ptm.read and write = tx.Ptm.write in
  let root = Int64.to_int (read t.root_ptr) in
  let leaf, n = find_leaf read root key in
  let pos = lower_bound read leaf n key in
  if pos < n && read (key_addr leaf pos) = key then begin
    for i = pos to n - 2 do
      write (key_addr leaf i) (read (key_addr leaf (i + 1)));
      write (slot_addr leaf i) (read (slot_addr leaf (i + 1)))
    done;
    write leaf (header_of ~leaf:true ~n:(n - 1));
    true
  end
  else false

(* Fold over bindings with lo <= key <= hi, in key order, following the
   leaf chain. *)
let fold_range_tx t (tx : Ptm.tx) ~lo ~hi ~init ~f =
  let read = tx.Ptm.read in
  let root = Int64.to_int (read t.root_ptr) in
  let leaf, _ = find_leaf read root lo in
  let rec walk leaf acc =
    if leaf = 0 then acc
    else begin
      let n = nkeys (read leaf) in
      let rec scan i acc =
        if i >= n then walk (Int64.to_int (read (next_addr leaf))) acc
        else begin
          let k = read (key_addr leaf i) in
          if k > hi then acc
          else if k < lo then scan (i + 1) acc
          else scan (i + 1) (f acc k (read (slot_addr leaf i)))
        end
      in
      scan 0 acc
    end
  in
  walk leaf init

let min_binding_tx t (tx : Ptm.tx) =
  let read = tx.Ptm.read in
  let rec leftmost node =
    let h = read node in
    if is_leaf h then node else leftmost (Int64.to_int (read (slot_addr node 0)))
  in
  let rec first_nonempty leaf =
    if leaf = 0 then None
    else
      let h = read leaf in
      if nkeys h > 0 then Some (read (key_addr leaf 0), read (slot_addr leaf 0))
      else first_nonempty (Int64.to_int (read (next_addr leaf)))
  in
  first_nonempty (leftmost (Int64.to_int (read t.root_ptr)))

let run_tx t ~thread f =
  match t.ptm.Ptm.atomically ~thread f with Some (r, _) -> r | None -> assert false

let insert t ~thread ~key ~value = run_tx t ~thread (fun tx -> insert_tx t tx ~key ~value)

let lookup t ~thread ~key = run_tx t ~thread (fun tx -> lookup_tx t tx ~key)

let update t ~thread ~key ~value = run_tx t ~thread (fun tx -> update_tx t tx ~key ~value)

let delete t ~thread ~key = run_tx t ~thread (fun tx -> delete_tx t tx ~key)

(* --------------------------- test support --------------------------- *)

let peek_bindings t =
  let read = t.ptm.Ptm.peek in
  let rec leftmost node =
    let h = read node in
    if is_leaf h then node else leftmost (Int64.to_int (read (slot_addr node 0)))
  in
  let rec walk leaf acc =
    if leaf = 0 then List.rev acc
    else begin
      let n = nkeys (read leaf) in
      let acc = ref acc in
      for i = 0 to n - 1 do
        acc := (read (key_addr leaf i), read (slot_addr leaf i)) :: !acc
      done;
      walk (Int64.to_int (read (next_addr leaf))) !acc
    end
  in
  walk (leftmost (Int64.to_int (read t.root_ptr))) []

let check_invariants t =
  let read = t.ptm.Ptm.peek in
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec check node ~lo ~hi ~depth =
    let h = read node in
    let n = nkeys h in
    if n > fanout then fail "node 0x%x has %d keys" node n;
    for i = 0 to n - 1 do
      let k = read (key_addr node i) in
      (match lo with Some l when k < l -> fail "key below bound in 0x%x" node | _ -> ());
      (match hi with Some u when k >= u -> fail "key above bound in 0x%x" node | _ -> ());
      if i > 0 && read (key_addr node (i - 1)) >= k then fail "unsorted keys in 0x%x" node
    done;
    if is_leaf h then depth
    else begin
      if n = 0 then fail "empty internal node 0x%x" node;
      let depths =
        List.init (n + 1) (fun i ->
            let child = Int64.to_int (read (slot_addr node i)) in
            let lo' = if i = 0 then lo else Some (read (key_addr node (i - 1))) in
            let hi' = if i = n then hi else Some (read (key_addr node i)) in
            check child ~lo:lo' ~hi:hi' ~depth:(depth + 1))
      in
      match depths with
      | d :: rest ->
        if not (List.for_all (fun x -> x = d) rest) then fail "uneven depths under 0x%x" node;
        d
      | [] -> assert false
    end
  in
  let root = Int64.to_int (read t.root_ptr) in
  ignore (check root ~lo:None ~hi:None ~depth:0);
  (* Leaf chain must enumerate keys in sorted order. *)
  let bindings = peek_bindings t in
  let rec sorted = function
    | (k1, _) :: ((k2, _) :: _ as rest) ->
      if k1 >= k2 then fail "leaf chain out of order";
      sorted rest
    | _ -> ()
  in
  sorted bindings

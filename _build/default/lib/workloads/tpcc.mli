(** TPC-C, New Order transaction only (Section 5.1).

    A customer buys 5–15 items from a local warehouse: the transaction
    increments the district's next-order id, inserts an order, a new-order
    marker and one order line per item, and updates each item's stock row —
    the paper's write-intensive macro-benchmark (~180 writes per
    transaction on hash storage, Table 1).

    One warehouse, ten districts, shared item and stock tables, and
    per-district order tables (which is what makes the paper's
    fixed-district variant nearly conflict-free, Section 5.6).  Table
    storage is either hash or B+-tree; on static-transaction systems
    (NVML) only hash storage is supported, matching the paper. *)

type t

val setup :
  Dudetm_baselines.Ptm_intf.t ->
  storage:Kv.kind ->
  ?districts:int ->
  ?items:int ->
  ?customers:int ->
  ?expected_orders:int ->
  unit ->
  t
(** [expected_orders] sizes the hash-backed order tables.  The table
    directory is persisted in the root block, so {!attach} can re-open the
    database after a crash. *)

val attach : Dudetm_baselines.Ptm_intf.t -> t
(** Re-open a TPC-C database from its persisted root directory (after
    recovery).  Raises [Invalid_argument] if none exists. *)

val districts : t -> int

val items : t -> int

val new_order : t -> thread:int -> rng:Dudetm_sim.Rng.t -> ?district:int -> unit -> int
(** Run one New Order transaction and return its commit ID.  [district]
    pins the district (the low-conflict variant assigns district
    [thread + 1]); otherwise it is drawn uniformly. *)

val customers : t -> int

val payment : t -> thread:int -> rng:Dudetm_sim.Rng.t -> ?district:int -> unit -> int
(** TPC-C Payment (extension beyond the paper's New-Order-only driver):
    update warehouse/district YTD and the customer row, and write a history
    record.  Returns the commit ID.  Supports static-transaction systems. *)

val order_status : t -> thread:int -> rng:Dudetm_sim.Rng.t -> ?district:int -> unit -> int64
(** TPC-C Order-Status: read-only lookup of a random existing order; returns
    the order's total amount (0 if the district has no orders yet). *)

val transaction : t -> thread:int -> rng:Dudetm_sim.Rng.t -> ?district:int -> unit -> int
(** Mixed driver: ~45% New Order, 45% Payment, 10% Order-Status. *)

val order_count : t -> district:int -> int
(** Orders inserted so far in a district (non-transactional). *)

val consistency_check : t -> unit
(** Assert TPC-C invariants against the current image: per district,
    [next_o_id - 1] equals the number of orders and new-order markers;
    every order has exactly its declared number of order lines; stock
    order counts sum to the total number of order lines; warehouse YTD
    equals the district YTD sum equals total customer payments, which
    mirror customer balances.  Raises [Failure] — used by the
    crash-recovery tests. *)

(** YCSB Session Store workload (Section 5.4 / Figure 3).

    A B+-tree key-value store loaded with a fixed record population;
    transactions are 50/50 reads and updates with keys drawn from a
    Zipfian distribution (constant 0.99 in the paper's log-optimization
    experiment; 0.99/1.07 in the swap-overhead sweep, which uses the
    update-only variant). *)

type t

val setup :
  Dudetm_baselines.Ptm_intf.t ->
  records:int ->
  theta:float ->
  ?read_fraction:float ->
  ?key_stride:int ->
  unit ->
  t
(** [key_stride] spaces keys apart (default 1); the swap-overhead sweep
    uses a large stride so the working set spans many pages. *)

val transaction : t -> thread:int -> rng:Dudetm_sim.Rng.t -> unit

val update_only : t -> thread:int -> rng:Dudetm_sim.Rng.t -> unit
(** One update transaction (Figure 4's workload). *)

val transaction_tid : t -> thread:int -> rng:Dudetm_sim.Rng.t -> int
(** Like {!transaction}, but reports the commit ID (0 for reads) so the
    caller can track durability acknowledgement latency. *)

(** {1 Standard YCSB core workloads (extension beyond the paper)} *)

type mix = {
  reads : float;
  updates : float;
  inserts : float;
  scans : float;
  rmws : float;
}

val workload_a : mix
(** 50/50 read/update — the paper's session-store mix. *)

val workload_b : mix
(** 95/5 read/update. *)

val workload_c : mix
(** read-only. *)

val workload_d : mix
(** 95/5 read/insert (fresh keys). *)

val workload_e : mix
(** 95/5 scan/insert; scans cover up to 100 consecutive keys. *)

val workload_f : mix
(** 50/50 read / read-modify-write. *)

val mixed_transaction :
  t -> mix -> thread:int -> rng:Dudetm_sim.Rng.t -> insert_counter:int ref -> int
(** Run one operation drawn from [mix]; returns the commit ID (0 for
    read-only operations).  [insert_counter] is the calling thread's
    private insert sequence. *)

val tree : t -> Bptree_app.t

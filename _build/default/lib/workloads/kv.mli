(** Uniform key-value interface over the two table storages the paper's
    macro-benchmarks are built on (hash table or B+-tree). *)

type kind = Hash | Tree

type t = H of Hashtable_app.t | T of Bptree_app.t

val kind : t -> kind

val setup : ?desc:int -> Dudetm_baselines.Ptm_intf.t -> kind -> capacity:int -> t
(** [capacity] sizes the hash table; ignored for trees.  When [desc] is
    given, the table's descriptor is persisted there (two words for a hash
    table, one for a tree handle) so {!attach} can re-open it. *)

val attach : ?desc:int -> Dudetm_baselines.Ptm_intf.t -> kind -> t
(** Re-open a table from its persisted descriptor. *)

val create_tx : Dudetm_baselines.Ptm_intf.t -> Dudetm_baselines.Ptm_intf.tx -> kind -> capacity:int -> t
(** Build a table inside an enclosing transaction (tree only supports
    this; hash tables of non-trivial capacity should use {!setup}). *)

val insert_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> bool

val lookup_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> int64 option

val update_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> bool

val insert : t -> thread:int -> key:int64 -> value:int64 -> bool

val lookup : t -> thread:int -> key:int64 -> int64 option

val update : t -> thread:int -> key:int64 -> value:int64 -> bool

val peek_lookup : t -> key:int64 -> int64 option

val plan_insert : t -> key:int64 -> int list
(** Static write-set planning; hash storage only (raises otherwise). *)

val plan_update : t -> key:int64 -> int list

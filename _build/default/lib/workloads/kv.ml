module Ptm = Dudetm_baselines.Ptm_intf

type kind = Hash | Tree

type t = H of Hashtable_app.t | T of Bptree_app.t

let kind = function H _ -> Hash | T _ -> Tree

let setup ?desc ptm kind ~capacity =
  match kind with
  | Hash -> H (Hashtable_app.setup ?desc ptm ~capacity)
  | Tree ->
    let tree = Bptree_app.create ptm in
    (match desc with
    | Some d ->
      (* Persist the tree's handle address so the table can be
         re-attached. *)
      (match
         ptm.Ptm.atomically ~thread:0 (fun tx ->
             tx.Ptm.write d (Int64.of_int (Bptree_app.handle_addr tree)))
       with
      | Some _ -> ()
      | None -> assert false)
    | None -> ());
    T tree

let attach ?desc ptm kind =
  let d = match desc with Some d -> d | None -> ptm.Ptm.root_base in
  match kind with
  | Hash -> H (Hashtable_app.attach ~desc:d ptm)
  | Tree -> T (Bptree_app.of_handle ptm (Int64.to_int (ptm.Ptm.peek d)))

let create_tx ptm tx kind ~capacity =
  match kind with
  | Tree -> T (Bptree_app.create_tx ptm tx)
  | Hash ->
    ignore capacity;
    invalid_arg "Kv.create_tx: hash tables must be built with Kv.setup"

let insert_tx t tx ~key ~value =
  match t with
  | H h -> Hashtable_app.insert_tx h tx ~key ~value
  | T b ->
    Bptree_app.insert_tx b tx ~key ~value;
    true

let lookup_tx t tx ~key =
  match t with
  | H h -> Hashtable_app.lookup_tx h tx ~key
  | T b -> Bptree_app.lookup_tx b tx ~key

let update_tx t tx ~key ~value =
  match t with
  | H h -> Hashtable_app.update_tx h tx ~key ~value
  | T b -> Bptree_app.update_tx b tx ~key ~value

let insert t ~thread ~key ~value =
  match t with
  | H h -> Hashtable_app.insert h ~thread ~key ~value
  | T b ->
    Bptree_app.insert b ~thread ~key ~value;
    true

let lookup t ~thread ~key =
  match t with
  | H h -> Hashtable_app.lookup h ~thread ~key
  | T b -> Bptree_app.lookup b ~thread ~key

let update t ~thread ~key ~value =
  match t with
  | H h -> Hashtable_app.update h ~thread ~key ~value
  | T b -> Bptree_app.update b ~thread ~key ~value

let peek_lookup t ~key =
  match t with
  | H h -> Hashtable_app.peek_lookup h ~key
  | T b -> ( match List.assoc_opt key (Bptree_app.peek_bindings b) with v -> v)

let plan_insert t ~key =
  match t with
  | H h -> Hashtable_app.plan_insert h ~key
  | T _ -> invalid_arg "Kv.plan_insert: trees do not support static transactions"

let plan_update t ~key =
  match t with
  | H h -> Hashtable_app.plan_update h ~key
  | T _ -> invalid_arg "Kv.plan_update: trees do not support static transactions"

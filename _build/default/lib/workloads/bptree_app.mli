(** B+-tree over the persistent heap (Section 5.1's B+-Tree benchmark and
    the table storage for TPC-C, TATP and the YCSB key-value store).

    Maps 64-bit keys to 64-bit values.  Nodes hold up to {!fanout} keys;
    leaves are chained.  All node accesses go through the transactional
    API, so operations compose into larger transactions (TPC-C updates
    several trees atomically).

    Deletion is implemented without rebalancing (keys are removed from
    leaves; underfull nodes persist), which matches the insert/update-only
    workloads of the paper and keeps recovery invariants simple.

    Not supported on static-transaction systems (NVML): the paper likewise
    omits B+-tree results for NVML. *)

type t

val fanout : int

val node_size : int

val create_tx : Dudetm_baselines.Ptm_intf.t -> Dudetm_baselines.Ptm_intf.tx -> t
(** Allocate an empty tree inside an enclosing transaction; returns the
    handle (which embeds the address of the root pointer cell). *)

val create : Dudetm_baselines.Ptm_intf.t -> t
(** Allocate an empty tree in its own transaction. *)

val handle_addr : t -> int
(** Address of the root-pointer cell, e.g. to store in the root block. *)

val of_handle : Dudetm_baselines.Ptm_intf.t -> int -> t
(** Rebuild a handle (after recovery) from the root-pointer cell address. *)

(** {1 Operations inside an enclosing transaction} *)

val insert_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> unit
(** Insert or overwrite. *)

val lookup_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> int64 option

val update_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> value:int64 -> bool
(** Overwrite an existing key's value with one transactional write;
    [false] if absent. *)

val delete_tx : t -> Dudetm_baselines.Ptm_intf.tx -> key:int64 -> bool

val fold_range_tx :
  t ->
  Dudetm_baselines.Ptm_intf.tx ->
  lo:int64 ->
  hi:int64 ->
  init:'a ->
  f:('a -> int64 -> int64 -> 'a) ->
  'a
(** Fold over the bindings with [lo <= key <= hi] in ascending key order
    (YCSB scan operations). *)

val min_binding_tx : t -> Dudetm_baselines.Ptm_intf.tx -> (int64 * int64) option

(** {1 Whole-transaction conveniences} *)

val insert : t -> thread:int -> key:int64 -> value:int64 -> unit

val lookup : t -> thread:int -> key:int64 -> int64 option

val update : t -> thread:int -> key:int64 -> value:int64 -> bool

val delete : t -> thread:int -> key:int64 -> bool

(** {1 Test support} *)

val peek_bindings : t -> (int64 * int64) list
(** All bindings in key order, read non-transactionally (for model
    checks). *)

val check_invariants : t -> unit
(** Walk the tree non-transactionally and assert structural invariants
    (key order, child separation, leaf chaining).  Raises [Failure]. *)

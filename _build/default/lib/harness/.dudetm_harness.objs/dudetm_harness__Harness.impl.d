lib/harness/harness.ml: Array Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_shadow Dudetm_sim Dudetm_workloads Int64 List Option Printf Queue String

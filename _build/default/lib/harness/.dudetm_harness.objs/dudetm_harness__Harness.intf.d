lib/harness/harness.mli: Dudetm_baselines Dudetm_core Dudetm_nvm Dudetm_shadow Dudetm_sim Dudetm_workloads

module Mem = Dudetm_nvm.Mem
module Nvm = Dudetm_nvm.Nvm
module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats

type mode = Software | Hardware

type config = {
  mode : mode;
  page_bits : int;
  frames : int;
  sw_access_cost : int;
  sw_pin_cost : int;
  sw_fault_cost : int;
  hw_fault_cost : int;
  hw_shootdown_cost : int;
  copy_cycles_per_byte : float;
}

let default_config mode ~frames =
  {
    mode;
    page_bits = 12;
    frames;
    sw_access_cost = 8;
    sw_pin_cost = 20;
    sw_fault_cost = 600;
    hw_fault_cost = 2500;
    hw_shootdown_cost = 9000;
    copy_cycles_per_byte = 0.06;
  }

type t = {
  cfg : config;
  nvm : Nvm.t;
  applied_id : unit -> int;
  dram : Mem.t;  (* frames * page_size bytes *)
  pt : Page_table.t;
  refcount : int array;  (* per frame *)
  touching_id : int array;  (* per logical page *)
  stats : Stats.t;
  page_size : int;
  npages : int;
}

let create cfg ~nvm ~applied_id =
  let page_size = 1 lsl cfg.page_bits in
  let size = Nvm.size nvm in
  if size mod page_size <> 0 then invalid_arg "Shadow.create: NVM size not page-aligned";
  let npages = size / page_size in
  if cfg.frames < 1 then invalid_arg "Shadow.create: no frames";
  {
    cfg;
    nvm;
    applied_id;
    dram = Mem.create (cfg.frames * page_size);
    pt = Page_table.create ~pages:npages ~frames:cfg.frames;
    refcount = Array.make cfg.frames 0;
    touching_id = Array.make npages 0;
    stats = Stats.create ();
    page_size;
    npages;
  }

let config t = t.cfg

let page_of t addr = addr lsr t.cfg.page_bits

let copy_cost t = int_of_float (ceil (float_of_int t.page_size *. t.cfg.copy_cycles_per_byte))

(* Pick and discard a victim frame.  The page is never written back: its
   committed updates live in redo logs and will reach NVM via Reproduce.
   May yield (hardware mode charges a TLB shootdown), so callers must
   re-validate all state afterwards. *)
let evict_one t =
  let skip f = t.refcount.(f) > 0 in
  match Page_table.clock_victim t.pt ~skip with
  | Some frame ->
    Page_table.unmap_frame t.pt frame;
    Stats.incr t.stats "evictions";
    if t.cfg.mode = Hardware then begin
      Stats.incr t.stats "shootdowns";
      Sched.advance t.cfg.hw_shootdown_cost
    end;
    true
  | None -> false

(* Swap a page in.  Every step up to the final free-frame claim may yield
   (cost charges, the touching-ID gate, shootdowns), so the loop
   re-validates residency, frame availability and the touching gate until
   the final check -> copy -> map sequence runs without a yield point. *)
let fault_in t page =
  Stats.incr t.stats "faults";
  let trap =
    match t.cfg.mode with Software -> t.cfg.sw_fault_cost | Hardware -> t.cfg.hw_fault_cost
  in
  Sched.advance (trap + copy_cost t);
  let rec acquire () =
    match Page_table.frame_of t.pt page with
    | Some frame -> frame  (* a peer faulted it in while we yielded *)
    | None ->
      if t.touching_id.(page) > t.applied_id () then begin
        (* Reproduce has not yet applied the last transaction that wrote
           this page: loading it from NVM now would resurrect stale data. *)
        Stats.incr t.stats "swapin_waits";
        Sched.wait_until ~label:"shadow: swap-in behind reproduce" (fun () ->
            t.touching_id.(page) <= t.applied_id ());
        acquire ()
      end
      else begin
        match Page_table.free_frame t.pt with
        | Some frame ->
          (* No yield from here to [map]: the claim is atomic. *)
          Mem.set_bytes t.dram (frame * t.page_size)
            (Nvm.load_bytes t.nvm (page * t.page_size) t.page_size);
          Page_table.map t.pt ~page ~frame;
          frame
        | None ->
          if not (evict_one t) then
            (* Every mapped frame is pinned: wait for an unpin. *)
            Sched.wait_until ~label:"shadow: all frames pinned" (fun () ->
                Page_table.free_frame t.pt <> None
                || Page_table.clock_victim t.pt ~skip:(fun f -> t.refcount.(f) > 0) <> None);
          acquire ()
      end
  in
  acquire ()

let frame_for t page =
  match Page_table.frame_of t.pt page with Some f -> f | None -> fault_in t page

let translate t addr =
  if t.cfg.mode = Software then Sched.advance t.cfg.sw_access_cost;
  let page = page_of t addr in
  let frame = frame_for t page in
  (frame * t.page_size) + (addr land (t.page_size - 1))

let load_u64 t addr = Mem.get_u64 t.dram (translate t addr)

let store_u64 t addr v = Mem.set_u64 t.dram (translate t addr) v

let pin t addr =
  if t.cfg.mode = Software then Sched.advance t.cfg.sw_pin_cost;
  let page = page_of t addr in
  let frame = frame_for t page in
  t.refcount.(frame) <- t.refcount.(frame) + 1

let unpin t addr =
  let page = page_of t addr in
  match Page_table.frame_of t.pt page with
  | Some frame ->
    if t.refcount.(frame) <= 0 then invalid_arg "Shadow.unpin: not pinned";
    t.refcount.(frame) <- t.refcount.(frame) - 1
  | None -> invalid_arg "Shadow.unpin: page not resident"

let pinned_pages t = Array.fold_left (fun acc r -> if r > 0 then acc + 1 else acc) 0 t.refcount

let set_touching t ~page ~tid =
  if tid > t.touching_id.(page) then t.touching_id.(page) <- tid

let touching t ~page = t.touching_id.(page)

let clear t =
  for f = 0 to t.cfg.frames - 1 do
    (match Page_table.page_of_frame t.pt f with
    | Some _ -> Page_table.unmap_frame t.pt f
    | None -> ());
    t.refcount.(f) <- 0
  done;
  Array.fill t.touching_id 0 t.npages 0;
  Mem.fill t.dram 0 (Mem.size t.dram) '\000'

let preload_all t =
  if t.cfg.frames < t.npages then invalid_arg "Shadow.preload_all: shadow smaller than NVM";
  for page = 0 to t.npages - 1 do
    match Page_table.frame_of t.pt page with
    | Some _ -> ()
    | None -> (
      match Page_table.free_frame t.pt with
      | Some frame ->
        Mem.set_bytes t.dram (frame * t.page_size)
          (Nvm.load_bytes t.nvm (page * t.page_size) t.page_size);
        Page_table.map t.pt ~page ~frame
      | None -> assert false)
  done

let stats t = t.stats

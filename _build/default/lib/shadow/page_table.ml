type t = {
  page_to_frame : int array;  (* -1 = not resident *)
  frame_to_page : int array;  (* -1 = free *)
  mutable free : int list;
  mutable hand : int;
  mutable resident : int;
}

let create ~pages ~frames =
  if pages <= 0 || frames <= 0 then invalid_arg "Page_table.create";
  {
    page_to_frame = Array.make pages (-1);
    frame_to_page = Array.make frames (-1);
    free = List.init frames (fun i -> i);
    hand = 0;
    resident = 0;
  }

let pages t = Array.length t.page_to_frame

let frames t = Array.length t.frame_to_page

let frame_of t page =
  let f = t.page_to_frame.(page) in
  if f < 0 then None else Some f

let page_of_frame t frame =
  let p = t.frame_to_page.(frame) in
  if p < 0 then None else Some p

let resident t = t.resident

let map t ~page ~frame =
  if t.page_to_frame.(page) >= 0 then invalid_arg "Page_table.map: page already resident";
  if t.frame_to_page.(frame) >= 0 then invalid_arg "Page_table.map: frame in use";
  t.page_to_frame.(page) <- frame;
  t.frame_to_page.(frame) <- page;
  t.free <- List.filter (fun f -> f <> frame) t.free;
  t.resident <- t.resident + 1

let unmap_frame t frame =
  let page = t.frame_to_page.(frame) in
  if page < 0 then invalid_arg "Page_table.unmap_frame: frame is free";
  t.page_to_frame.(page) <- -1;
  t.frame_to_page.(frame) <- -1;
  t.free <- frame :: t.free;
  t.resident <- t.resident - 1

let free_frame t = match t.free with [] -> None | f :: _ -> Some f

let clock_victim t ~skip =
  let n = frames t in
  let rec go examined =
    if examined >= n then None
    else begin
      let f = t.hand in
      t.hand <- (t.hand + 1) mod n;
      if t.frame_to_page.(f) >= 0 && not (skip f) then Some f else go (examined + 1)
    end
  in
  go 0

lib/shadow/shadow.ml: Array Dudetm_nvm Dudetm_sim Page_table

lib/shadow/shadow.mli: Dudetm_nvm Dudetm_sim

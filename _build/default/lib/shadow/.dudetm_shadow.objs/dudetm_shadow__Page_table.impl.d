lib/shadow/page_table.ml: Array List

lib/shadow/page_table.mli:

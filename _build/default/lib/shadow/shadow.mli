(** Shared cross-transaction shadow memory (Sections 3.1, 4.3).

    A volatile DRAM mirror of the persistent heap, managed at page
    granularity and shared by all transactions, so the cost of loading a
    page from NVM amortizes across transactions.  Dirty shadow data is
    {e never} written back to NVM — an evicted page is simply discarded,
    because its updates are already captured in redo logs.

    The touching-ID protocol makes discarding safe: each page records the ID
    of the last transaction that wrote it; swapping a page back in waits
    until Reproduce has applied at least that transaction to the NVM home
    locations.

    Two paging cost models are provided:
    - {e Software}: every access pays a page-table lookup (two memory
      references) plus a reference-count CAS; faults are cheap.
    - {e Hardware} (the paper's Dune/VT-x design): translation is free via
      the TLB, but evicting a page pays a VM-exit + IPI TLB shootdown. *)

type mode = Software | Hardware

type config = {
  mode : mode;
  page_bits : int;  (** page size = [2^page_bits] bytes *)
  frames : int;  (** shadow DRAM capacity in frames *)
  sw_access_cost : int;  (** per-access page-table walk, cycles *)
  sw_pin_cost : int;  (** reference-count CAS, cycles *)
  sw_fault_cost : int;  (** software fault handling, cycles *)
  hw_fault_cost : int;  (** VM-exit fault handling, cycles *)
  hw_shootdown_cost : int;  (** TLB shootdown on eviction, cycles *)
  copy_cycles_per_byte : float;  (** NVM->DRAM page copy *)
}

val default_config : mode -> frames:int -> config
(** 4 KiB pages and the calibrated cost constants. *)

type t

val create : config -> nvm:Dudetm_nvm.Nvm.t -> applied_id:(unit -> int) -> t
(** [create cfg ~nvm ~applied_id] mirrors the whole device address space.
    [applied_id ()] must return the ID of the last transaction Reproduce
    has fully applied to NVM (the swap-in gate). *)

val config : t -> config

val page_of : t -> int -> int
(** Logical page number of a byte address. *)

(** {1 Data access (used by the TM store)} *)

val load_u64 : t -> int -> int64

val store_u64 : t -> int -> int64 -> unit
(** Writes the shadow page only.  Faults the page in if necessary. *)

(** {1 Transaction integration} *)

val pin : t -> int -> unit
(** [pin t addr] increments the reference count of [addr]'s page, faulting
    it in first.  A pinned page cannot be evicted.  DudeTM pins every page
    a transaction touches until its touching IDs are settled. *)

val unpin : t -> int -> unit

val pinned_pages : t -> int

val set_touching : t -> page:int -> tid:int -> unit
(** Record that transaction [tid] is the most recent writer of [page]
    (monotone: smaller [tid]s never overwrite larger ones). *)

val touching : t -> page:int -> int

(** {1 Crash} *)

val clear : t -> unit
(** Drop all shadow contents and mappings (DRAM does not survive a crash). *)

(** {1 Maintenance and statistics} *)

val preload_all : t -> unit
(** Fault every page in without charging simulated time — only valid when
    [frames >= pages]; used to model the shadow = NVM size configuration
    where steady state has no paging. *)

val stats : t -> Dudetm_sim.Stats.t
(** Counters: ["faults"], ["evictions"], ["shootdowns"], ["swapin_waits"]. *)

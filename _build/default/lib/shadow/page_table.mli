(** One-level page table mapping logical (persistent-heap) pages to shadow
    DRAM frames, with a clock eviction scan.

    Pure mapping bookkeeping; costs, pinning and data movement live in
    {!Shadow}. *)

type t

val create : pages:int -> frames:int -> t

val pages : t -> int

val frames : t -> int

val frame_of : t -> int -> int option
(** [frame_of t page] is the frame backing [page], if resident. *)

val page_of_frame : t -> int -> int option

val resident : t -> int
(** Number of mapped frames. *)

val map : t -> page:int -> frame:int -> unit
(** Requires [page] unmapped and [frame] free. *)

val unmap_frame : t -> int -> unit
(** Release the frame's mapping (page becomes non-resident, frame free). *)

val free_frame : t -> int option
(** Some frame with no mapping, if any. *)

val clock_victim : t -> skip:(int -> bool) -> int option
(** Next mapped frame under the clock hand with [skip frame = false]; the
    hand advances past examined frames.  [None] if every mapped frame is
    skipped. *)

type t = {
  persist_latency : int;
  bandwidth_gbps : float;
  line_size : int;
}

let default = { persist_latency = 1000; bandwidth_gbps = 1.0; line_size = 64 }

let pcm = { default with persist_latency = 3500 }

let with_bandwidth bw t = { t with bandwidth_gbps = bw }

let with_latency l t = { t with persist_latency = l }

let pp ppf t =
  Format.fprintf ppf "{latency=%dcyc; bw=%.1fGB/s; line=%dB}" t.persist_latency
    t.bandwidth_gbps t.line_size

(** Flat byte-addressable memory image.

    Both the simulated NVM and the shadow DRAM are built on this: a plain
    byte array with little-endian word accessors.  Addresses are byte
    offsets; 64-bit accesses must be 8-byte aligned (the STM locks stripes of
    aligned words, so alignment is an invariant, not a convenience). *)

type t

val create : int -> t
(** [create size] is a zero-filled image of [size] bytes. *)

val size : t -> int

val copy : t -> t

val blit_from : src:t -> t -> unit
(** [blit_from ~src dst] overwrites [dst] with [src]; sizes must match. *)

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val get_u64 : t -> int -> int64
(** Aligned little-endian 64-bit load.  Raises [Invalid_argument] on
    unaligned or out-of-bounds addresses. *)

val set_u64 : t -> int -> int64 -> unit

val get_bytes : t -> int -> int -> bytes

val set_bytes : t -> int -> bytes -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit

val fill : t -> int -> int -> char -> unit

val equal_range : t -> t -> int -> int -> bool
(** [equal_range a b off len] compares the given range of two images. *)

val check_aligned : int -> unit
(** Raise [Invalid_argument] unless the address is 8-byte aligned. *)

type t = Bytes.t

let create size =
  if size < 0 then invalid_arg "Mem.create: negative size";
  Bytes.make size '\000'

let size = Bytes.length

let copy = Bytes.copy

let blit_from ~src t =
  if Bytes.length src <> Bytes.length t then invalid_arg "Mem.blit_from: size mismatch";
  Bytes.blit src 0 t 0 (Bytes.length src)

let check_aligned addr =
  if addr land 7 <> 0 then
    invalid_arg (Printf.sprintf "Mem: unaligned 64-bit access at 0x%x" addr)

let get_u8 t addr = Char.code (Bytes.get t addr)

let set_u8 t addr v = Bytes.set t addr (Char.chr (v land 0xff))

let get_u64 t addr =
  check_aligned addr;
  Bytes.get_int64_le t addr

let set_u64 t addr v =
  check_aligned addr;
  Bytes.set_int64_le t addr v

let get_bytes t off len = Bytes.sub t off len

let set_bytes t off b = Bytes.blit b 0 t off (Bytes.length b)

let blit ~src ~src_off ~dst ~dst_off ~len = Bytes.blit src src_off dst dst_off len

let fill t off len c = Bytes.fill t off len c

let equal_range a b off len =
  let rec go i = i >= len || (Bytes.get a (off + i) = Bytes.get b (off + i) && go (i + 1)) in
  go 0

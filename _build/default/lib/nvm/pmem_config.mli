(** Cost-model parameters of the simulated persistent memory.

    Mirrors the paper's emulation (Section 5.1): a fixed persist-ordering
    latency per persist operation (3500 cycles for PCM-class writes, 1000 for
    the optimistic projection) and a write-bandwidth cap swept from 1 to
    16 GB/s. *)

type t = {
  persist_latency : int;  (** cycles charged per persist ordering *)
  bandwidth_gbps : float;  (** NVM write bandwidth in GB/s *)
  line_size : int;  (** cache-line granularity of flushes, bytes *)
}

val default : t
(** 1000-cycle latency, 1 GB/s, 64-byte lines — the paper's base config. *)

val pcm : t
(** 3500-cycle latency variant. *)

val with_bandwidth : float -> t -> t

val with_latency : int -> t -> t

val pp : Format.formatter -> t -> unit

lib/nvm/pmem_config.mli: Format

lib/nvm/mem.ml: Bytes Char Printf

lib/nvm/nvm.ml: Bytes Char Dudetm_sim Hashtbl List Mem Pmem_config

lib/nvm/mem.mli:

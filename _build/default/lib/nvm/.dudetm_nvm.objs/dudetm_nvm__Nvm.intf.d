lib/nvm/nvm.mli: Dudetm_sim Pmem_config

lib/nvm/pmem_config.ml: Format

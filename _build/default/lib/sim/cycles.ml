let ghz = 3.4

let per_second = ghz *. 1e9

let of_ns t = int_of_float (ceil (t *. ghz))

let to_us c = float_of_int c /. (ghz *. 1e3)

let to_seconds c = float_of_int c /. per_second

let per_byte_of_gbps bw = per_second /. (bw *. 1e9)

let of_bytes_at_gbps bw n =
  if n <= 0 then 0
  else max 1 (int_of_float (ceil (float_of_int n *. per_byte_of_gbps bw)))

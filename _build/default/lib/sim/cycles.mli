(** Cycle-count arithmetic for the simulated machine.

    All simulated costs in this repository are expressed in CPU cycles of a
    nominal 3.4 GHz core (the paper's Xeon E5-2643 v4).  This module holds the
    conversion helpers between cycles, wall-clock time and NVM bandwidth. *)

val ghz : float
(** Nominal core frequency in GHz (3.4, as in the paper's testbed). *)

val per_second : float
(** Cycles per second, i.e. [ghz *. 1e9]. *)

val of_ns : float -> int
(** [of_ns t] is the number of cycles covering [t] nanoseconds. *)

val to_us : int -> float
(** [to_us c] converts a cycle count to microseconds. *)

val to_seconds : int -> float
(** [to_seconds c] converts a cycle count to seconds. *)

val per_byte_of_gbps : float -> float
(** [per_byte_of_gbps bw] is the number of cycles needed to move one byte
    over a channel of [bw] GB/s (decimal gigabytes, as the paper uses). *)

val of_bytes_at_gbps : float -> int -> int
(** [of_bytes_at_gbps bw n] is the cycle cost of moving [n] bytes at
    [bw] GB/s, rounded up, and at least 1 for [n > 0]. *)

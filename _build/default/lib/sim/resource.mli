(** Serialized bandwidth resource.

    Models a shared channel (the NVM write path) on which transfers are
    serialized: a transfer occupies the channel for [bytes * cycles_per_byte]
    cycles starting no earlier than the previous transfer finished.  A fixed
    per-operation latency may overlap other transfers' latency but not the
    channel occupancy, matching the paper's
    [max(latency, size / bandwidth)] persist-cost formula (Section 5.1). *)

type t

val create : cycles_per_byte:float -> t

val create_gbps : float -> t
(** [create_gbps bw] is a channel of [bw] GB/s at the nominal clock. *)

val cycles_per_byte : t -> float

val transfer : t -> now:int -> bytes:int -> latency:int -> int
(** [transfer r ~now ~bytes ~latency] books a transfer of [bytes] starting at
    simulated time [now] and returns the number of cycles the caller must
    {!Sched.advance}: the transfer completes at
    [max now free_at + max latency (bytes * cpb)], with the channel itself
    busy only for the bandwidth component. *)

val busy_until : t -> int
(** Time at which the channel becomes free. *)

val reset : t -> unit
(** Forget all bookings (used when restarting an experiment). *)

val total_bytes : t -> int
(** Total bytes ever transferred through this channel. *)

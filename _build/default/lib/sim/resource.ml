type t = {
  cpb : float;
  mutable free_at : int;
  mutable total_bytes : int;
}

let create ~cycles_per_byte = { cpb = cycles_per_byte; free_at = 0; total_bytes = 0 }

let create_gbps bw = create ~cycles_per_byte:(Cycles.per_byte_of_gbps bw)

let cycles_per_byte t = t.cpb

let transfer t ~now ~bytes ~latency =
  let bytes = max 0 bytes in
  let bw_cycles =
    if bytes = 0 then 0 else max 1 (int_of_float (ceil (float_of_int bytes *. t.cpb)))
  in
  let start = max now t.free_at in
  t.free_at <- start + bw_cycles;
  t.total_bytes <- t.total_bytes + bytes;
  let finish = start + max latency bw_cycles in
  max 0 (finish - now)

let busy_until t = t.free_at

let reset t =
  t.free_at <- 0;
  t.total_bytes <- 0

let total_bytes t = t.total_bytes

(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator (workload keys, crash points,
    adversarial cache evictions) draws from an explicit [Rng.t] so whole
    experiments replay bit-for-bit from a seed. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** [split t] returns a new generator seeded from [t]'s stream, advancing
    [t]; the two streams are statistically independent. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

lib/sim/resource.mli:

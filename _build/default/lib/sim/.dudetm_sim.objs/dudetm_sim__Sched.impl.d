lib/sim/sched.ml: Effect List Printf String

lib/sim/cycles.ml:

lib/sim/sched.mli:

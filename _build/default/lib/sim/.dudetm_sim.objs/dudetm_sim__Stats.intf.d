lib/sim/stats.mli:

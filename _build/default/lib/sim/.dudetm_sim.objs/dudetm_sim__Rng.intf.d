lib/sim/rng.mli:

lib/sim/resource.ml: Cycles

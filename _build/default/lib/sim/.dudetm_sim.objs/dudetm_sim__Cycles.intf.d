lib/sim/cycles.mli:

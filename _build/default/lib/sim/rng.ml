type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Small state, passes BigCrush, and trivially
   splittable, which is all this simulator needs. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* [to_int] keeps the low 63 bits; mask the sign bit off explicitly. *)
  Int64.to_int (next_int64 t) land max_int mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  let bits53 = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = { state = next_int64 t }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Persistent-heap allocator (Section 3.5).

    The free list itself is volatile: durability comes from logging every
    [pmalloc]/[pfree] as redo-log entries and checkpointing the free list
    into the meta block before log records are recycled.  On recovery the
    checkpoint is restored and the allocation entries of durable
    transactions past the checkpoint are replayed.

    First-fit over a sorted extent list with coalescing; all sizes round up
    to 8-byte granularity so every allocation is word-aligned. *)

type t

val create : base:int -> size:int -> t
(** One free extent covering [\[base, base+size)]. *)

val restore : (int * int) list -> t
(** Rebuild from checkpointed free extents (offset, length). *)

val alloc : t -> int -> int option
(** [alloc t n] carves [n] bytes (rounded up to 8) first-fit; [None] when no
    extent fits. *)

val free : t -> off:int -> len:int -> unit
(** Return a block, coalescing with neighbours.  Raises
    [Invalid_argument] if the block overlaps a free extent (double free). *)

val reserve : t -> off:int -> len:int -> unit
(** Remove exactly [\[off, off + round8 len)] from the free list — the
    replay form of an [Alloc] log entry, which must reproduce the original
    placement rather than run first-fit again.  Raises [Invalid_argument]
    if the range is not entirely free. *)

val extents : t -> (int * int) list
(** Free extents sorted by offset. *)

val free_bytes : t -> int

val copy : t -> t

val equal : t -> t -> bool

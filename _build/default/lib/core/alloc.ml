type t = { mutable exts : (int * int) list (* (off, len), sorted by off, coalesced *) }

let round8 n = (n + 7) land lnot 7

let create ~base ~size =
  let usable = size land lnot 7 in
  if usable <= 0 then invalid_arg "Alloc.create";
  { exts = [ (base, usable) ] }

let restore exts =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) exts in
  let rec check = function
    | (o1, l1) :: ((o2, _) :: _ as rest) ->
      if o1 + l1 > o2 then invalid_arg "Alloc.restore: overlapping extents";
      check rest
    | _ -> ()
  in
  check sorted;
  { exts = sorted }

let alloc t n =
  if n <= 0 then invalid_arg "Alloc.alloc: non-positive size";
  let n = round8 n in
  let rec go acc = function
    | [] -> None
    | (off, len) :: rest when len >= n ->
      let remaining = if len = n then rest else (off + n, len - n) :: rest in
      t.exts <- List.rev_append acc remaining;
      Some off
    | ext :: rest -> go (ext :: acc) rest
  in
  go [] t.exts

let free t ~off ~len =
  if len <= 0 then invalid_arg "Alloc.free: non-positive size";
  let len = round8 len in
  let rec insert = function
    | [] -> [ (off, len) ]
    | (o, l) :: rest ->
      if off + len <= o then (off, len) :: (o, l) :: rest
      else if o + l <= off then (o, l) :: insert rest
      else invalid_arg "Alloc.free: block overlaps a free extent"
  in
  let rec coalesce = function
    | (o1, l1) :: (o2, l2) :: rest when o1 + l1 = o2 -> coalesce ((o1, l1 + l2) :: rest)
    | ext :: rest -> ext :: coalesce rest
    | [] -> []
  in
  t.exts <- coalesce (insert t.exts)

let reserve t ~off ~len =
  if len <= 0 then invalid_arg "Alloc.reserve: non-positive size";
  let len = round8 len in
  let rec go acc = function
    | [] -> invalid_arg "Alloc.reserve: range not free"
    | (o, l) :: rest when o <= off && off + len <= o + l ->
      let pieces =
        (if o < off then [ (o, off - o) ] else [])
        @ if off + len < o + l then [ (off + len, o + l - off - len) ] else []
      in
      t.exts <- List.rev_append acc (pieces @ rest)
    | (o, l) :: rest ->
      if o < off + len && off < o + l then invalid_arg "Alloc.reserve: range partially free"
      else go ((o, l) :: acc) rest
  in
  go [] t.exts

let extents t = t.exts

let free_bytes t = List.fold_left (fun acc (_, l) -> acc + l) 0 t.exts

let copy t = { exts = t.exts }

let equal a b = a.exts = b.exts

lib/core/checkpoint.ml: Bytes Dudetm_log Dudetm_nvm Int64 List

lib/core/dudetm.mli: Config Dudetm_nvm Dudetm_sim Dudetm_tm

lib/core/config.ml: Dudetm_nvm Dudetm_shadow Dudetm_tm

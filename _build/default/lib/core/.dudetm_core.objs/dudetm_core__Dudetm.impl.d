lib/core/dudetm.ml: Alloc Array Bytes Checkpoint Config Dudetm_log Dudetm_nvm Dudetm_shadow Dudetm_sim Dudetm_tm Hashtbl List Printf Queue

lib/core/config.mli: Dudetm_nvm Dudetm_shadow Dudetm_tm

lib/core/checkpoint.mli: Dudetm_nvm

lib/core/alloc.ml: List

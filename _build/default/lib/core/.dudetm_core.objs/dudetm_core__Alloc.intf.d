lib/core/alloc.mli:

(** TinySTM's write-back access mode (Section 4.1's road not taken).

    Writes are buffered in a transaction-local write set and applied at
    commit under commit-time locking; reads of one's own writes are
    redirected through the buffer.  DudeTM selects the write-through mode
    ({!Tinystm}) because it permits in-place updates on the shadow memory;
    this module exists to ablate that choice — being {!Tm_intf.S}, it plugs
    into the DudeTM functor unchanged (the out-of-the-box-TM claim,
    exercised by the ablation benchmark).

    The cost model adds the per-read write-set probe that write-back access
    cannot avoid. *)

include Tm_intf.S

val create_wb : ?costs:Tm_intf.costs -> ?seed:int -> ?redirect_cost:int -> Tm_intf.store -> t
(** [redirect_cost] (default 18 cycles) is the write-set hash probe added
    to every read. *)

lib/tm/tinystm.mli: Lock_table Tm_intf

lib/tm/tm_intf.ml: Bytes Dudetm_sim

lib/tm/lock_table.ml: Array

lib/tm/lock_table.mli:

lib/tm/tinystm.ml: Dudetm_sim Hashtbl List Lock_table Tm_intf

lib/tm/tinystm_wb.mli: Tm_intf

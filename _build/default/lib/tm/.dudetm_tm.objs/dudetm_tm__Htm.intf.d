lib/tm/htm.mli: Tm_intf

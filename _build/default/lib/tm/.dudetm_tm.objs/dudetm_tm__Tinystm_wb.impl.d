lib/tm/tinystm_wb.ml: Dudetm_sim Hashtbl List Lock_table Tm_intf

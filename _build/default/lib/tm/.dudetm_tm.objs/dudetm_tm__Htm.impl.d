lib/tm/htm.ml: Dudetm_sim Hashtbl List Tm_intf

(** Striped versioned write-locks (TinySTM's lock array).

    Every aligned 64-bit word of the transactional address space hashes to a
    stripe.  A stripe's lock word is either a commit {e version} (timestamp
    of the last transaction that wrote it) or {e owned} by a running
    transaction identified by a unique attempt id. *)

type t

type word =
  | Version of int  (** free; version of the last committing writer *)
  | Owned of int  (** locked by the attempt with this uid *)

val create : ?bits:int -> unit -> t
(** [create ~bits ()] makes a table of [2^bits] stripes (default 20). *)

val stripes : t -> int

val stripe_of_addr : t -> int -> int
(** Map a byte address of an aligned word to its stripe. *)

val read_word : t -> int -> word
(** [read_word t stripe]. *)

val acquire : t -> stripe:int -> uid:int -> int option
(** Try to lock the stripe for attempt [uid].  Returns [Some v] (the
    previous version, needed to restore on abort) on success, [None] if the
    stripe is owned by another attempt.  Re-acquiring a stripe already owned
    by [uid] returns [None] — callers must check {!read_word} first. *)

val release_to : t -> stripe:int -> version:int -> unit
(** Unlock a stripe, installing [version] (commit) or restoring the saved
    pre-acquisition version (abort). *)

(* Lock word encoding: [version lsl 1] when free, [(uid lsl 1) lor 1] when
   owned.  Plain ints are safe: the simulator is single-OS-thread and every
   lock operation happens between scheduler yield points. *)

type t = { words : int array; mask : int }

type word = Version of int | Owned of int

(* 2^20 stripes: large transactions (TPC-C reads ~300 words) need a sparse
   table or stripe-hash false conflicts dominate the abort rate; real
   TinySTM defaults to 2^22 locks. *)
let create ?(bits = 20) () =
  if bits < 1 || bits > 26 then invalid_arg "Lock_table.create: bits out of range";
  let n = 1 lsl bits in
  { words = Array.make n 0; mask = n - 1 }

let stripes t = Array.length t.words

(* Words are 8-byte aligned; mix higher bits in so that adjacent structure
   fields do not all collide into consecutive stripes. *)
let stripe_of_addr t addr =
  let w = addr lsr 3 in
  (w lxor (w lsr 13)) land t.mask

let read_word t stripe =
  let w = t.words.(stripe) in
  if w land 1 = 0 then Version (w lsr 1) else Owned (w lsr 1)

let acquire t ~stripe ~uid =
  let w = t.words.(stripe) in
  if w land 1 = 1 then None
  else begin
    t.words.(stripe) <- (uid lsl 1) lor 1;
    Some (w lsr 1)
  end

let release_to t ~stripe ~version = t.words.(stripe) <- version lsl 1

(** Simulated restricted hardware transactional memory (Intel RTM-like).

    Models the behaviour the paper measures in Section 5.7: transactions
    buffer their writes, conflicts are detected at cache-line granularity the
    moment a peer commits (mirroring coherence-based detection), transactions
    exceeding the write-buffer capacity take a capacity abort, and after
    [max_retries] failed attempts execution falls back to a global lock that
    aborts and excludes all hardware transactions.

    The paper's proposed minor hardware change — letting HTM ignore conflicts
    on the global transaction-ID counter — is the [tid_conflicts] switch:
    with [tid_conflicts = true] (stock hardware) every committing write
    transaction's counter increment dooms all concurrent transactions,
    reproducing the "prohibitive abort rate" the paper reports; with [false]
    (modified hardware) the counter is conflict-exempt. *)

include Tm_intf.S

val create_htm :
  ?costs:Tm_intf.costs ->
  ?seed:int ->
  ?capacity_lines:int ->
  ?read_capacity_lines:int ->
  ?max_retries:int ->
  ?tid_conflicts:bool ->
  Tm_intf.store ->
  t
(** Full-control constructor.  Defaults: 448 write lines (≈ Haswell L1
    write-set capacity), 8192 read lines (L2-assisted read tracking), 5
    retries before the lock fallback, [tid_conflicts = false]. *)

exception Capacity
(** Internal: the transaction outgrew the hardware buffers.  Absorbed by
    {!run}, which falls back to the global lock. *)

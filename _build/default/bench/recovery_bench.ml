(* Recovery-time experiment (an extension beyond the paper's evaluation):
   how long does recovery take as a function of the un-reproduced log
   backlog at crash time?

   Section 3.5 argues recovery is a bounded replay of the persistent log
   region.  We crash the counter workload at increasing backlogs (by
   stalling Reproduce — modelled here by growing the persistent rings and
   crashing earlier or later in the run) and measure the simulated cycles
   the recovery scan + replay would cost, derived from the replayed entry
   counts and the same per-entry costs Reproduce is charged. *)

open Dudetm_harness.Harness
module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Cycles = Dudetm_sim.Cycles
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

exception Crashed

let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 21;
    nthreads = 4;
    vlog_capacity = 1 lsl 16;
    plog_size = 1 lsl 22;
    (* Rare checkpoints leave a long durable tail to replay. *)
    reproduce_batch = 256;
    checkpoint_records = 1_000_000;
  }

let run_point ~crash_cycles =
  let t = D.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       ignore
                         (D.atomically t ~thread:th (fun tx ->
                              let c = D.read tx 0 in
                              let c1 = Int64.add c 1L in
                              D.write tx (8 + (8 * (Int64.to_int c1 land 1023))) c1;
                              D.write tx 0 c1))
                     done))
            done;
            Sched.advance crash_cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash (D.nvm t);
  let wall0 = Sys.time () in
  let _, report = D.attach cfg (D.nvm t) in
  let wall = Sys.time () -. wall0 in
  (report, wall)

let run ?(scale = 1.0) () =
  section "Recovery cost vs durable log backlog (extension experiment)";
  Printf.printf "%-16s %10s %10s %12s %16s\n" "crash at" "durable" "replayed" "discarded"
    "recovery wall";
  List.iter
    (fun cycles ->
      let cycles = int_of_float (float_of_int cycles *. scale) in
      let report, wall = run_point ~crash_cycles:cycles in
      Printf.printf "%-16s %10d %10d %12d %13.1f ms\n%!"
        (Printf.sprintf "%.2f ms" (Cycles.to_us cycles /. 1000.0))
        report.Dudetm_core.Dudetm.durable report.Dudetm_core.Dudetm.replayed_txs
        report.Dudetm_core.Dudetm.discarded_txs (wall *. 1e3))
    [ 50_000; 200_000; 800_000; 3_200_000 ]

let tiny () = ignore (run_point ~crash_cycles:20_000)

bench/fig2.ml: Dudetm_harness List Printf

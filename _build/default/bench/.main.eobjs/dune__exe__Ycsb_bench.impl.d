bench/ycsb_bench.ml: Array Dudetm_baselines Dudetm_harness Dudetm_sim Dudetm_workloads List Printf

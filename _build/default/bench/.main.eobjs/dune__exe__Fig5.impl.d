bench/fig5.ml: Dudetm_baselines Dudetm_harness Dudetm_workloads List Printf

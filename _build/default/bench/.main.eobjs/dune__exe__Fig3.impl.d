bench/fig3.ml: Dudetm_baselines Dudetm_core Dudetm_harness Dudetm_sim Dudetm_workloads List Option Printf

bench/table3.ml: Dudetm_harness Dudetm_sim Dudetm_workloads List Printf

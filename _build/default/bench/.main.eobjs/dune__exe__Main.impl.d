bench/main.ml: Ablation Analyze Array Bechamel Benchmark Fig2 Fig3 Fig4 Fig5 Hashtbl List Measure Printf Recovery_bench Staged String Sys Table1 Table2 Table3 Table4 Test Time Toolkit Ycsb_bench

bench/main.mli:

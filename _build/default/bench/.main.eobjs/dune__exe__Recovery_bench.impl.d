bench/recovery_bench.ml: Dudetm_core Dudetm_harness Dudetm_nvm Dudetm_sim Dudetm_tm Int64 List Printf Sys

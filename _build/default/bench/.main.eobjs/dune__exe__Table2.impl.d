bench/table2.ml: Dudetm_harness List Printf

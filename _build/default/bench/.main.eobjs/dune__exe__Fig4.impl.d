bench/fig4.ml: Dudetm_baselines Dudetm_core Dudetm_harness Dudetm_shadow Dudetm_sim Dudetm_workloads List Printf

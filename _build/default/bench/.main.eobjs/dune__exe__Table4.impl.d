bench/table4.ml: Dudetm_baselines Dudetm_core Dudetm_harness Dudetm_tm Dudetm_workloads List Printf

bench/ablation.ml: Dudetm_baselines Dudetm_core Dudetm_harness Dudetm_nvm Dudetm_sim Dudetm_tm Dudetm_workloads Float List Option Printf

bench/table1.ml: Dudetm_harness Dudetm_workloads List Printf

(* Read-only snapshot fast-path tests.

   The pinning property suite for [atomically_ro]:

   - a differential oracle: seeded random schedules of writers and snapshot
     readers on the DudeTM engine; every snapshot's read-set must equal the
     same-seed serial replay of the committed history at the snapshot's
     epoch, in both fresh-epoch and durable-only modes — and a pure-RO
     phase must move neither the engine's transaction counter nor its
     redo-log entry counter (log-free, persist-free);
   - snapshot reads during a live shard migration, routed through the
     epoch-stamped partition descriptor across the Copy double-write
     window, the flip and the cleanup;
   - quorum-pinned durable reads on a replicated cluster: the epoch never
     exceeds the acked watermark, even under a full partition;
   - quickcheck-style properties over scheduler seeds: epoch monotonicity
     (within and across snapshots), extension never moves the epoch
     backwards, no torn read-set, durable epochs bounded by the watermark;
   - a hand-driven tear: the seeded [Skip_snapshot_validate] mutant
     (extension without read-set revalidation) provably returns values
     from two different epochs, and validation provably prevents it;
   - typed [Read_only_violation] on any write/pmalloc/pfree inside an RO
     body, on the engine and on the volatile baseline. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Config = Dudetm_core.Config
module Tm_intf = Dudetm_tm.Tm_intf
module Tinystm = Dudetm_tm.Tinystm
module Snapshot = Dudetm_tm.Snapshot
module Link = Dudetm_replica.Link
module Partition = Dudetm_workloads.Partition
module B = Dudetm_baselines
module Ptm = B.Ptm_intf
module Mig = Dudetm_shard.Migrate.Make (Dudetm_tm.Tinystm)
module Sh = Mig.Sh
module Rep = Dudetm_replica.Replica.Make (Dudetm_tm.Tinystm)
module E = Rep.Engine

let check = Alcotest.check

(* ------------------- differential oracle, both modes -------------------- *)

let nslots = 8

let slot i = 64 + (8 * i)

let dude_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 18;
    nthreads = 4;
    vlog_capacity = 2048;
    plog_size = 1 lsl 16;
    seed = 5;
  }

(* Writers journal every committed write as [(tid, writes)]; snapshot
   readers journal [(epoch, read-set)].  The oracle replays the committed
   history up to each snapshot's epoch in transaction-ID order — commit
   timestamps and snapshot epochs live on the same clock — and every read
   value must match the serial model exactly. *)
let test_differential_oracle () =
  List.iter
    (fun (op_seed, sched_seed) ->
      let ptm, _d = B.Dude_ptm.Stm.ptm dude_cfg in
      let commits = ref [] in
      let snaps = ref [] in
      let nwriters = 2 and nreaders = 2 in
      let writers_done = ref 0 and readers_done = ref 0 in
      ignore
        (Sched.run ~strategy:(Sched.random_priority ~seed:sched_seed) (fun () ->
             ptm.Ptm.start ();
             for th = 0 to nwriters - 1 do
               ignore
                 (Sched.spawn
                    (Printf.sprintf "w%d" th)
                    (fun () ->
                      let rng = Rng.create (op_seed + th) in
                      for _ = 1 to 40 do
                        let a1 = slot (Rng.int rng nslots)
                        and a2 = slot (Rng.int rng nslots) in
                        let v1 = Rng.next_int64 rng and v2 = Rng.next_int64 rng in
                        (match
                           ptm.Ptm.atomically ~thread:th (fun tx ->
                               tx.Ptm.write a1 v1;
                               tx.Ptm.write a2 v2)
                         with
                        | Some ((), tid) -> commits := (tid, [ (a1, v1); (a2, v2) ]) :: !commits
                        | None -> ());
                        Sched.advance (50 + Rng.int rng 200)
                      done;
                      incr writers_done))
             done;
             for r = 0 to nreaders - 1 do
               let durable = r = 1 in
               let th = nwriters + r in
               ignore
                 (Sched.spawn
                    (Printf.sprintf "ro%d" r)
                    (fun () ->
                      let rng = Rng.create (op_seed + 100 + r) in
                      let last_epoch = ref 0 in
                      for _ = 1 to 25 do
                        (match
                           ptm.Ptm.atomically_ro ~durable ~thread:th (fun tx ->
                               List.init nslots (fun i -> (slot i, tx.Ptm.read (slot i))))
                         with
                        | Some (vals, epoch) ->
                          if epoch < !last_epoch then
                            Alcotest.failf "reader %d: epoch %d after epoch %d" r epoch
                              !last_epoch;
                          last_epoch := epoch;
                          snaps := (r, durable, epoch, ptm.Ptm.durable_id (), vals) :: !snaps
                        | None -> Alcotest.fail "snapshot aborted unexpectedly");
                        Sched.advance (100 + Rng.int rng 300)
                      done;
                      incr readers_done))
             done;
             Sched.wait_until ~label:"snapshot differential workers" (fun () ->
                 !writers_done = nwriters && !readers_done = nreaders);
             ptm.Ptm.drain ();
             (* A pure-RO phase is log-free and ID-free: no engine
                transaction, no redo entry. *)
             let stat key =
               match List.assoc_opt key (ptm.Ptm.counters ()) with Some v -> v | None -> 0
             in
             let txs0 = stat "txs" and log0 = stat "log_entries" in
             for _ = 1 to 5 do
               ignore
                 (ptm.Ptm.atomically_ro ~durable:false ~thread:0 (fun tx ->
                      tx.Ptm.read (slot 0)))
             done;
             check Alcotest.int "RO transactions draw no engine transaction" txs0 (stat "txs");
             check Alcotest.int "RO transactions append no redo entries" log0
               (stat "log_entries");
             ptm.Ptm.drain ();
             ptm.Ptm.stop ()));
      check Alcotest.bool "writers committed" true (!commits <> []);
      check Alcotest.bool "snapshots observed" true (!snaps <> []);
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !commits in
      List.iter
        (fun (r, durable, epoch, wm_after, vals) ->
          (* The watermark is monotone, so sampling it after the snapshot
             returned still bounds the pinned epoch from above. *)
          if durable && epoch > wm_after then
            Alcotest.failf "reader %d: durable epoch %d above watermark %d" r epoch wm_after;
          let model = Hashtbl.create 16 in
          List.iter
            (fun (tid, ws) ->
              if tid <= epoch then List.iter (fun (a, v) -> Hashtbl.replace model a v) ws)
            sorted;
          List.iter
            (fun (a, v) ->
              let want = Option.value ~default:0L (Hashtbl.find_opt model a) in
              if v <> want then
                Alcotest.failf
                  "seed (%d,%d) reader %d (%s): slot %d read %Ld, serial model at epoch %d \
                   says %Ld"
                  op_seed sched_seed r
                  (if durable then "durable" else "volatile")
                  a v epoch want)
            vals)
        !snaps)
    [ (42, 1); (43, 2); (44, 3) ]

(* ------------------ snapshot reads during live migration ----------------- *)

let mig_nshards = 4

let mig_nkeys = 8

let mig_slot k = 8 * k

let mig_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 3;
    vlog_capacity = 256;
    plog_size = 1 lsl 14;
    meta_size = 8192;
    checkpoint_records = 2;
    seed = 11;
  }

(* A writer increments keys (biased toward the migrating bucket) while the
   main fiber drives a full bucket handoff and a snapshot reader reads
   every key in both modes throughout.  Each key's value is exactly its
   committed-increment count, so every volatile snapshot must land inside
   the [before, after] commit-count window around the read, and durable
   snapshots must be monotone per key and never beyond the committed
   count.  After the drain both modes converge on the final counts. *)
let test_mid_migration_reads () =
  let part =
    Partition.buckets ~nshards:mig_nshards ~lo:0L ~hi:(Int64.of_int mig_nkeys)
      ~owners:[| 0; 1; 2; 3 |]
  in
  let sh = Sh.create ~nshards:mig_nshards mig_cfg in
  let mig = Mig.create sh ~part ~nkeys:mig_nkeys ~slot_of:mig_slot in
  let committed = Array.make mig_nkeys 0 in
  let stop = ref false in
  let writer_done = ref false and reader_done = ref false in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         ignore
           (Sched.spawn "writer" (fun () ->
                let rng = Rng.create 21 in
                while not !stop do
                  let key =
                    if Rng.int rng 2 = 0 then 2 + Rng.int rng 2 else Rng.int rng mig_nkeys
                  in
                  (match Mig.apply mig ~thread:0 ~key (fun v -> Int64.add v 1L) with
                  | Some _ -> committed.(key) <- committed.(key) + 1
                  | None -> ());
                  Sched.advance 200
                done;
                writer_done := true));
         ignore
           (Sched.spawn "reader" (fun () ->
                let last_durable = Array.make mig_nkeys 0 in
                while not !stop do
                  for key = 0 to mig_nkeys - 1 do
                    let before = committed.(key) in
                    let v, _epoch = Mig.read_key_ro mig ~thread:1 key in
                    let after = committed.(key) in
                    let v = Int64.to_int v in
                    if v < before || v > after then
                      Alcotest.failf
                        "volatile snapshot of key %d read %d outside the committed window \
                         [%d, %d]"
                        key v before after;
                    let vd, _ed = Mig.read_key_ro ~durable:true mig ~thread:1 key in
                    let vd = Int64.to_int vd in
                    if vd > committed.(key) then
                      Alcotest.failf "durable snapshot of key %d read %d beyond %d committed"
                        key vd
                        committed.(key);
                    if vd < last_durable.(key) then
                      Alcotest.failf "durable snapshot of key %d went backwards (%d after %d)"
                        key vd last_durable.(key);
                    last_durable.(key) <- vd
                  done;
                  Sched.advance 500
                done;
                reader_done := true));
         (* Hand bucket 1 (keys 2 and 3) from shard 1 to shard 3 live. *)
         Mig.begin_migration mig ~src:1 ~dst:3 ~blo:1 ~bhi:2;
         while not (Mig.copy_step ~chunk:1 mig ~thread:2) do
           Sched.advance 2_000
         done;
         Mig.flip mig;
         while not (Mig.cleanup_step ~chunk:1 mig ~thread:2) do
           Sched.advance 2_000
         done;
         check Alcotest.int "bucket 1 flipped to shard 3" 3
           (Partition.owners (Mig.partition mig)).(1);
         (* Let the workers overlap the post-flip routing too. *)
         Sched.advance 20_000;
         stop := true;
         Sched.wait_until ~label:"mid-migration workers" (fun () ->
             !writer_done && !reader_done);
         Sh.drain sh;
         for key = 0 to mig_nkeys - 1 do
           let v, _ = Mig.read_key_ro mig ~thread:1 key in
           check Alcotest.int
             (Printf.sprintf "key %d volatile snapshot after drain" key)
             committed.(key) (Int64.to_int v);
           let vd, _ = Mig.read_key_ro ~durable:true mig ~thread:1 key in
           check Alcotest.int
             (Printf.sprintf "key %d durable snapshot after drain" key)
             committed.(key) (Int64.to_int vd)
         done;
         Sh.stop sh))

(* -------------- quorum-pinned reads on a replicated cluster -------------- *)

let rep_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 2;
    vlog_capacity = 256;
    plog_size = 1 lsl 14;
    meta_size = 8192;
    group_size = 4;
    combine = true;
    compress = true;
    persist_threads = 1;
    reproduce_batch = 4;
    checkpoint_records = 2;
    seed = 7;
    ack_timeout = 2_000_000;
  }

let fast_link = { Link.default_config with Link.latency = 2_000 }

let hot = 8

let cold = 16

(* Durable snapshots on a replicated cluster pin at the quorum watermark:
   under a full partition the epoch stays at the pre-partition watermark
   (cold data still readable, stale), while fresh-epoch snapshots see the
   primary's newest commits; after the links heal the pinned reader
   catches up. *)
let test_replica_quorum_reads () =
  let rcfg = { (Rep.default_config ~nreplicas:2 ()) with Rep.link = fast_link } in
  let cluster = Rep.create ~rcfg rep_cfg in
  let prim = Rep.primary cluster in
  ignore
    (Sched.run (fun () ->
         Rep.start cluster;
         for i = 1 to 5 do
           ignore
             (E.atomically prim ~thread:0 (fun tx ->
                  E.write tx hot (Int64.of_int i);
                  E.write tx cold (Int64.of_int (100 + i))))
         done;
         (match Rep.drain cluster with
         | Rep.Quorum -> ()
         | Rep.Degraded_quorum d -> Alcotest.failf "healthy cluster degraded: %s" d);
         let acked0 = Rep.acked cluster in
         (match Rep.atomically_ro ~durable:true cluster ~thread:1 (fun tx -> E.read tx hot) with
         | Some (v, epoch) ->
           check Alcotest.int64 "quorum-pinned read sees the drained value" 5L v;
           if epoch > Rep.acked cluster then
             Alcotest.failf "pinned epoch %d above the acked watermark %d" epoch
               (Rep.acked cluster)
         | None -> Alcotest.fail "pinned snapshot aborted");
         (* Partition every replica; commit past the stalled watermark. *)
         for r = 0 to Rep.nreplicas cluster - 1 do
           Rep.set_partitioned cluster r true
         done;
         for i = 6 to 8 do
           ignore (E.atomically prim ~thread:0 (fun tx -> E.write tx hot (Int64.of_int i)))
         done;
         Sched.wait_until ~label:"primary-local durability" (fun () ->
             E.durable_id prim >= E.last_tid prim);
         check Alcotest.int "acked watermark stalled at the partition" acked0
           (Rep.acked cluster);
         (match
            Rep.atomically_ro ~durable:false cluster ~thread:1 (fun tx -> E.read tx hot)
          with
         | Some (v, _) ->
           check Alcotest.int64 "fresh-epoch snapshot sees past the quorum" 8L v
         | None -> Alcotest.fail "fresh snapshot aborted");
         (match
            Rep.atomically_ro ~durable:true cluster ~thread:1 (fun tx -> E.read tx cold)
          with
         | Some (v, epoch) ->
           check Alcotest.int64 "pinned snapshot still serves quorum-safe data" 105L v;
           if epoch > acked0 then
             Alcotest.failf "pinned epoch %d escaped the stalled watermark %d" epoch acked0
         | None -> Alcotest.fail "pinned snapshot aborted");
         (* Heal; the pinned reader catches up to the new commits. *)
         for r = 0 to Rep.nreplicas cluster - 1 do
           Rep.set_partitioned cluster r false
         done;
         Sched.wait_until ~label:"quorum heals" (fun () ->
             Rep.acked cluster >= E.last_tid prim);
         (match Rep.atomically_ro ~durable:true cluster ~thread:1 (fun tx -> E.read tx hot) with
         | Some (v, _) -> check Alcotest.int64 "healed pinned read sees the tail" 8L v
         | None -> Alcotest.fail "pinned snapshot aborted");
         Rep.stop cluster))

(* ------------------ properties over scheduler seeds ---------------------- *)

let npairs = 2

let pair_a p = 64 + (256 * p)

let pair_b p = pair_a p + 128

let rec nondecreasing = function
  | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
  | _ -> true

(* Pair-writers commit the same value to both slots of a pair; a snapshot
   that reads all the a-slots and then all the b-slots (the widest tear
   window) must still return equal pairs, with monotone epochs inside and
   across snapshots. *)
let prop_snapshot_consistency =
  QCheck2.Test.make ~name:"snapshot: monotone epochs, no torn read-set (seeded schedules)"
    ~count:25
    QCheck2.Gen.(int_range 0 9_999)
    (fun seed ->
      let store = Tm_intf.mem_store (Bytes.make 4096 '\000') in
      let ok = ref true in
      ignore
        (Sched.run ~strategy:(Sched.random_priority ~seed) (fun () ->
             let tm = Tinystm.create ~seed store in
             let writer_done = ref false in
             ignore
               (Sched.spawn "writer" (fun () ->
                    let rng = Rng.create (seed + 1) in
                    for i = 1 to 20 do
                      let p = Rng.int rng npairs in
                      let v = Int64.of_int i in
                      ignore
                        (Tinystm.run tm (fun tx ->
                             Tinystm.write tx (pair_a p) v;
                             Tinystm.write tx (pair_b p) v));
                      Sched.advance (20 + Rng.int rng 100)
                    done;
                    writer_done := true));
             let last_epoch = ref 0 in
             for _ = 1 to 15 do
               (match
                  Tinystm.run_ro tm (fun ro ->
                      let epochs = ref [ Tinystm.ro_epoch ro ] in
                      let note v =
                        epochs := Tinystm.ro_epoch ro :: !epochs;
                        v
                      in
                      let va = Array.init npairs (fun p -> note (Tinystm.ro_read ro (pair_a p))) in
                      let vb = Array.init npairs (fun p -> note (Tinystm.ro_read ro (pair_b p))) in
                      (va, vb, List.rev !epochs))
                with
               | Some ((va, vb, epochs), final) ->
                 if not (nondecreasing epochs) then ok := false;
                 if List.exists (fun e -> e > final) epochs then ok := false;
                 if final < !last_epoch then ok := false;
                 last_epoch := final;
                 for p = 0 to npairs - 1 do
                   if va.(p) <> vb.(p) then ok := false
                 done
               | None -> ok := false);
               Sched.advance 50
             done;
             Sched.wait_until ~label:"snapshot prop writer" (fun () -> !writer_done)));
      !ok)

let prop_durable_epoch_bounded =
  QCheck2.Test.make ~name:"snapshot: durable epoch never exceeds the watermark" ~count:8
    QCheck2.Gen.(int_range 0 999)
    (fun seed ->
      let cfg = { dude_cfg with Config.nthreads = 2; seed = 1 + seed } in
      let ptm, _ = B.Dude_ptm.Stm.ptm cfg in
      let ok = ref true in
      ignore
        (Sched.run ~strategy:(Sched.random_priority ~seed) (fun () ->
             ptm.Ptm.start ();
             let writer_done = ref false in
             ignore
               (Sched.spawn "writer" (fun () ->
                    let rng = Rng.create seed in
                    for i = 1 to 15 do
                      ignore
                        (ptm.Ptm.atomically ~thread:0 (fun tx ->
                             tx.Ptm.write (slot (i mod nslots)) (Int64.of_int i)));
                      Sched.advance (50 + Rng.int rng 200)
                    done;
                    writer_done := true));
             for _ = 1 to 10 do
               (match
                  ptm.Ptm.atomically_ro ~durable:true ~thread:1 (fun tx ->
                      tx.Ptm.read (slot 0))
                with
               | Some (_, epoch) -> if epoch > ptm.Ptm.durable_id () then ok := false
               | None -> ok := false);
               Sched.advance 100
             done;
             Sched.wait_until ~label:"durable prop writer" (fun () -> !writer_done);
             ptm.Ptm.drain ();
             ptm.Ptm.stop ()));
      !ok)

(* ---------------- the tear the mutant makes, hand-driven ----------------- *)

let tear_a = 64

let tear_b = 320

(* The reader reads slot a, then hands the writer exactly one commit to
   both slots, then reads slot b — forcing an extension.  Without read-set
   revalidation the epoch slides and the snapshot returns one value from
   each epoch; with it, the extension restarts the snapshot and the second
   attempt is consistent. *)
let run_tear ~validate =
  let store = Tm_intf.mem_store (Bytes.make 1024 '\000') in
  let result = ref None in
  ignore
    (Sched.run (fun () ->
         let tm = Tinystm.create ~seed:3 store in
         let want_commit = ref false and committed = ref false in
         ignore
           (Sched.spawn "writer" (fun () ->
                Sched.wait_until ~label:"tear writer trigger" (fun () -> !want_commit);
                match
                  Tinystm.run tm (fun tx ->
                      Tinystm.write tx tear_a 7L;
                      Tinystm.write tx tear_b 7L)
                with
                | Some _ -> committed := true
                | None -> Alcotest.fail "tear writer aborted"));
         let first = ref true in
         result :=
           Tinystm.run_ro ~validate_extension:validate tm (fun ro ->
               let va = Tinystm.ro_read ro tear_a in
               if !first then begin
                 first := false;
                 want_commit := true;
                 Sched.wait_until ~label:"tear reader waits commit" (fun () -> !committed)
               end;
               let vb = Tinystm.ro_read ro tear_b in
               (va, vb))));
  match !result with
  | Some (pair, _) -> pair
  | None -> Alcotest.fail "tear snapshot aborted"

let test_mutant_tears () =
  let va, vb = run_tear ~validate:false in
  check Alcotest.bool "Skip_snapshot_validate tears the read-set" true (va <> vb);
  check Alcotest.int64 "mutant kept the stale first read" 0L va;
  check Alcotest.int64 "mutant slid to the new epoch for the second read" 7L vb

let test_validation_prevents_tear () =
  let va, vb = run_tear ~validate:true in
  check Alcotest.int64 "validated snapshot is consistent (a)" 7L va;
  check Alcotest.int64 "validated snapshot is consistent (b)" 7L vb

(* ------------- extension semantics on the bare snapshot API -------------- *)

let test_extension_never_backwards () =
  let store = Tm_intf.mem_store (Bytes.make 1024 '\000') in
  ignore
    (Sched.run (fun () ->
         let tm = Tinystm.create ~seed:4 store in
         for i = 1 to 3 do
           ignore (Tinystm.run tm (fun tx -> Tinystm.write tx 64 (Int64.of_int i)))
         done;
         let h = Tinystm.snapshot_handle tm in
         let ro = Snapshot.begin_ro h in
         check Alcotest.int "epoch starts at the clock" 3 (Snapshot.epoch ro);
         check Alcotest.int64 "snapshot reads the committed value" 3L (Snapshot.read ro 64);
         check Alcotest.int "read-set recorded" 1 (Snapshot.read_set_size ro);
         (* Extending to an already-admitted version never moves backwards. *)
         (match Snapshot.read ro 64 with _ -> ());
         check Alcotest.int "re-read leaves the epoch in place" 3 (Snapshot.epoch ro);
         (* A commit on an untouched stripe: validated extension slides
            forward, the read-set survives. *)
         ignore (Tinystm.run tm (fun tx -> Tinystm.write tx 512 9L));
         check Alcotest.int64 "extended snapshot reads the new stripe" 9L
           (Snapshot.read ro 512);
         check Alcotest.int "validated extension slid forward" 4 (Snapshot.epoch ro);
         let final = Snapshot.finish ro in
         check Alcotest.int "finish returns the final epoch" 4 final))

(* --------------------- typed read-only violations ------------------------ *)

let test_ro_violation () =
  let ptm, _ = B.Dude_ptm.Stm.ptm { dude_cfg with Config.nthreads = 1 } in
  ignore
    (Sched.run (fun () ->
         ptm.Ptm.start ();
         let expect_violation name f =
           match ptm.Ptm.atomically_ro ~durable:false ~thread:0 f with
           | _ -> Alcotest.failf "%s inside a read-only transaction must raise" name
           | exception Tm_intf.Read_only_violation -> ()
         in
         expect_violation "write" (fun tx -> tx.Ptm.write 64 1L);
         expect_violation "pmalloc" (fun tx -> ignore (tx.Ptm.pmalloc 64));
         expect_violation "pfree" (fun tx -> tx.Ptm.pfree ~off:4096 ~len:64);
         check Alcotest.bool "ro abort returns None" true
           (ptm.Ptm.atomically_ro ~durable:false ~thread:0 (fun tx -> tx.Ptm.abort ())
           = None);
         (* The engine-level exception is the TM-level one, aliased. *)
         (try raise Dudetm_core.Dudetm.Read_only_violation
          with Tm_intf.Read_only_violation -> ());
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()))

let test_ro_violation_volatile () =
  let ptm = B.Volatile_stm.ptm ~heap_size:(1 lsl 16) ~nthreads:1 () in
  ignore
    (Sched.run (fun () ->
         match ptm.Ptm.atomically_ro ~durable:false ~thread:0 (fun tx -> tx.Ptm.write 64 1L) with
         | _ -> Alcotest.fail "volatile RO write must raise"
         | exception Tm_intf.Read_only_violation -> ()))

let suite =
  [
    Alcotest.test_case "snapshot: differential oracle, both modes" `Slow
      test_differential_oracle;
    Alcotest.test_case "snapshot: reads during a live migration" `Slow
      test_mid_migration_reads;
    Alcotest.test_case "snapshot: quorum-pinned reads on a replicated cluster" `Quick
      test_replica_quorum_reads;
    Alcotest.test_case "snapshot: Skip_snapshot_validate mutant tears" `Quick
      test_mutant_tears;
    Alcotest.test_case "snapshot: validation prevents the tear" `Quick
      test_validation_prevents_tear;
    Alcotest.test_case "snapshot: extension is validated and monotone" `Quick
      test_extension_never_backwards;
    Alcotest.test_case "snapshot: writes inside RO raise" `Quick test_ro_violation;
    Alcotest.test_case "snapshot: volatile baseline RO raises too" `Quick
      test_ro_violation_volatile;
    QCheck_alcotest.to_alcotest prop_snapshot_consistency;
    QCheck_alcotest.to_alcotest prop_durable_epoch_bounded;
  ]

(* lib/trace tests: ring-buffer wrap, violation detection (orphans,
   mismatches, non-monotone timestamps, unclosed spans), histogram
   percentiles, span invariants under seeded random schedules,
   disabled-mode determinism (tracing off must be byte-identical to the
   pre-tracing behaviour), zero allocation when disabled, and Chrome
   trace_event / summary JSON well-formedness via a minimal JSON parser. *)

module Trace = Dudetm_trace.Trace
module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

(* The tracer is a process-wide singleton: every test leaves it disabled
   and empty so suites can run in any order. *)
let with_tracer ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* ----------------------------- ring buffer ---------------------------- *)

let test_ring_wrap () =
  with_tracer ~capacity:16 @@ fun () ->
  for i = 1 to 100 do
    Trace.counter ~cat:"t" "c" i
  done;
  check Alcotest.int "every emission counted" 100 (Trace.events ());
  check Alcotest.int "wrap drops the oldest" 84 (Trace.dropped ());
  let series = Trace.counter_series ~cat:"t" "c" in
  check Alcotest.int "retained window is the capacity" 16 (List.length series);
  check
    (Alcotest.list Alcotest.int)
    "the newest 16 values survive, in emission order"
    (List.init 16 (fun i -> 85 + i))
    (List.map snd series)

let test_ring_capacity_clamped () =
  with_tracer ~capacity:1 @@ fun () ->
  for i = 1 to 20 do
    Trace.instant ~cat:"t" "i" i
  done;
  check Alcotest.int "capacity clamps to 16" 4 (Trace.dropped ())

let test_ring_no_wrap_keeps_everything () =
  with_tracer ~capacity:64 @@ fun () ->
  for i = 1 to 40 do
    Trace.counter ~cat:"t" "c" i
  done;
  check Alcotest.int "nothing dropped below capacity" 0 (Trace.dropped ());
  check
    (Alcotest.list Alcotest.int)
    "full series retained"
    (List.init 40 (fun i -> i + 1))
    (List.map snd (Trace.counter_series ~cat:"t" "c"))

(* --------------------------- self-validation -------------------------- *)

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let assert_violation msgs needle =
  if not (List.exists (fun m -> has_substring m needle) msgs) then
    Alcotest.failf "no violation mentioning %S in [%s]" needle (String.concat "; " msgs)

let test_orphan_detected () =
  with_tracer @@ fun () ->
  Trace.span_end ~cat:"x" "nope";
  assert_violation (Trace.validate ()) "orphan"

let test_mismatch_detected () =
  with_tracer @@ fun () ->
  Trace.span_begin ~cat:"x" "a";
  Trace.span_end ~cat:"x" "b";
  assert_violation (Trace.validate ()) "mismatched"

let test_unclosed_detected () =
  with_tracer @@ fun () ->
  Trace.span_begin ~cat:"x" "leak";
  check Alcotest.int "one span open" 1 (Trace.open_span_count ());
  assert_violation (Trace.validate ()) "never closed"

let test_nonmonotone_detected () =
  with_tracer @@ fun () ->
  Trace.instant_at ~ts:100 ~tid:7 ~cat:"x" "a" 0;
  Trace.instant_at ~ts:50 ~tid:7 ~cat:"x" "b" 0;
  (* A different thread may lag: per-thread clocks are independent. *)
  Trace.instant_at ~ts:10 ~tid:8 ~cat:"x" "c" 0;
  assert_violation (Trace.validate ()) "non-monotone";
  check Alcotest.bool "exactly one violation class" true
    (List.length (List.filter (fun m -> has_substring m "non-monotone") (Trace.validate ()))
     >= 1)

let test_balanced_is_clean () =
  with_tracer @@ fun () ->
  Trace.span_begin ~cat:"a" "outer";
  Trace.span_begin ~cat:"a" "inner";
  Trace.span_end ~cat:"a" "inner";
  Trace.span_end ~cat:"a" "outer";
  check (Alcotest.list Alcotest.string) "clean" [] (Trace.validate ());
  check Alcotest.int "no open spans" 0 (Trace.open_span_count ())

(* ----------------------------- histograms ----------------------------- *)

let test_histogram_percentiles () =
  with_tracer @@ fun () ->
  Trace.sample ~cat:"p" "h" 100;
  Trace.sample ~cat:"p" "h" 100;
  Trace.sample ~cat:"p" "h" 100;
  Trace.sample ~cat:"p" "h" 5000;
  match Trace.phases () with
  | [ p ] ->
    check Alcotest.string "cat" "p" p.Trace.ph_cat;
    check Alcotest.string "name" "h" p.Trace.ph_name;
    check Alcotest.int "count" 4 p.Trace.ph_count;
    check Alcotest.int "exact total" 5300 p.Trace.ph_total;
    check Alcotest.int "exact max" 5000 p.Trace.ph_max;
    (* log2-bucket lower bounds: 100 lands in [64,128), 5000 in
       [4096,8192). *)
    check Alcotest.int "p50 bucket" 64 p.Trace.ph_p50;
    check Alcotest.int "p99 bucket" 4096 p.Trace.ph_p99
  | ps -> Alcotest.failf "expected one phase, got %d" (List.length ps)

let test_histogram_zero_and_sort () =
  with_tracer @@ fun () ->
  Trace.sample ~cat:"a" "small" 0;
  Trace.sample ~cat:"a" "small" 1;
  Trace.sample ~cat:"b" "big" 1000;
  (match Trace.phases () with
  | [ big; small ] ->
    check Alcotest.string "sorted by total desc" "big" big.Trace.ph_name;
    check Alcotest.int "0/1 cycles land in bucket 0" 0 small.Trace.ph_p50;
    check Alcotest.int "max of tiny phase" 1 small.Trace.ph_max
  | ps -> Alcotest.failf "expected two phases, got %d" (List.length ps));
  (* Span-derived durations feed the same histograms. *)
  Trace.span_begin ~cat:"c" "s";
  Trace.span_end ~cat:"c" "s";
  check Alcotest.bool "span created its phase" true
    (List.exists (fun p -> p.Trace.ph_cat = "c") (Trace.phases ()))

(* -------------------- a small DudeTM KV workload ---------------------- *)

let small_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 20;
    nthreads = 3;
    vlog_capacity = 2048;
    plog_size = 1 lsl 15;
  }

(* Drive a mixed KV workload on DudeTM to completion (drain + stop) and
   return (total cycles, sorted counters, digest of the persisted image). *)
let run_kv_workload ?strategy ?(seed = 400) () =
  let ptm, d = B.Dude_ptm.Stm.ptm small_cfg in
  let kv = W.Kv.setup ptm W.Kv.Hash ~capacity:1024 in
  let nthreads = small_cfg.Config.nthreads in
  let done_ = Array.make nthreads false in
  let total =
    Sched.run ?strategy (fun () ->
        ptm.Ptm.start ();
        for th = 0 to nthreads - 1 do
          ignore
            (Sched.spawn
               (Printf.sprintf "w%d" th)
               (fun () ->
                 let rng = Rng.create (seed + th) in
                 for _ = 1 to 150 do
                   let key = Int64.of_int (1 + Rng.int rng 255) in
                   (match Rng.int rng 4 with
                   | 0 | 1 -> ignore (W.Kv.lookup kv ~thread:th ~key)
                   | 2 -> ignore (W.Kv.insert kv ~thread:th ~key ~value:(Rng.next_int64 rng))
                   | _ -> ignore (W.Kv.update kv ~thread:th ~key ~value:(Rng.next_int64 rng)));
                   Sched.advance 50
                 done;
                 done_.(th) <- true))
        done;
        Sched.wait_until ~label:"workers" (fun () -> Array.for_all Fun.id done_);
        ptm.Ptm.drain ();
        ptm.Ptm.stop ())
  in
  let nvm = D.nvm d in
  let image = Nvm.persisted_bytes nvm 0 (Nvm.size nvm) in
  (total, List.sort compare (ptm.Ptm.counters ()), Digest.bytes image)

(* ------------------- invariants under random schedules ---------------- *)

let test_invariants_under_random_schedules () =
  (* Seeded random preemption reorders Perform / Persist / Reproduce
     arbitrarily, and the end-of-run daemon kill unwinds mid-work-unit:
     spans must still balance on every schedule. *)
  List.iter
    (fun seed ->
      with_tracer @@ fun () ->
      ignore (run_kv_workload ~strategy:(Sched.random_priority ~seed) ());
      (match Trace.validate () with
      | [] -> ()
      | v -> Alcotest.failf "seed %d: %s" seed (String.concat "; " v));
      check Alcotest.int "no spans left open" 0 (Trace.open_span_count ());
      check Alcotest.bool "trace saw the pipeline" true
        (List.exists (fun p -> p.Trace.ph_cat = "perform") (Trace.phases ())))
    [ 1; 2; 3; 4; 5 ]

let test_invariants_default_schedule () =
  with_tracer @@ fun () ->
  ignore (run_kv_workload ());
  check (Alcotest.list Alcotest.string) "clean" [] (Trace.validate ());
  (* The canonical phases all fired. *)
  let keys = List.map (fun p -> p.Trace.ph_cat ^ "." ^ p.Trace.ph_name) (Trace.phases ()) in
  List.iter
    (fun k ->
      if not (List.mem k keys) then
        Alcotest.failf "phase %s missing from [%s]" k (String.concat ", " keys))
    [ "perform.tx"; "tm.attempt"; "persist.flush"; "reproduce.replay" ]

(* ----------------------- disabled-mode determinism -------------------- *)

let test_disabled_tracing_is_invisible () =
  (* The pinned property from trace.mli: tracing is observation only, so a
     run with tracing enabled is cycle- and byte-identical to the same run
     with tracing disabled — same simulated duration, same stats counters,
     same final persisted image. *)
  Trace.disable ();
  Trace.reset ();
  let total_off, counters_off, digest_off = run_kv_workload () in
  let total_on, counters_on, digest_on =
    with_tracer @@ fun () -> run_kv_workload ()
  in
  check Alcotest.int "identical simulated duration" total_off total_on;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "identical stats counters" counters_off counters_on;
  check Alcotest.string "identical persisted image" (Digest.to_hex digest_off)
    (Digest.to_hex digest_on);
  (* And a second disabled run replays exactly, pinning determinism of the
     baseline itself. *)
  let total_off2, counters_off2, digest_off2 = run_kv_workload () in
  check Alcotest.int "disabled rerun duration" total_off total_off2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "disabled rerun counters" counters_off counters_off2;
  check Alcotest.string "disabled rerun image" (Digest.to_hex digest_off)
    (Digest.to_hex digest_off2)

let test_zero_allocation_when_disabled () =
  Trace.disable ();
  Trace.reset ();
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.span_begin ~cat:"x" "y";
    Trace.span_end ~cat:"x" "y";
    Trace.instant ~cat:"x" "i" i;
    Trace.counter ~cat:"x" "c" i;
    Trace.sample ~cat:"x" "s" i;
    Trace.nvm_transfer ~dev:"dev" ~bytes:i ~cycles:i
  done;
  let delta = Gc.minor_words () -. before in
  (* Allow a few words for the Gc.minor_words float boxes themselves; the
     60k emitter calls must contribute nothing. *)
  if delta > 16.0 then
    Alcotest.failf "disabled emitters allocated %.0f minor words" delta

(* --------------------------- JSON well-formedness --------------------- *)

(* Minimal JSON parser — objects, arrays, strings (with escapes), numbers,
   booleans, null.  Just enough to prove the exports are well-formed
   without a JSON library dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            for _ = 1 to 4 do
              advance ()
            done;
            Buffer.add_char b '?'
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      if !pos = start then raise (Bad (Printf.sprintf "bad number at %d" start));
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((key, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((key, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elems (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
          in
          elems []
        end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos));
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

let test_chrome_export_well_formed () =
  with_tracer @@ fun () ->
  ignore (run_kv_workload ());
  let doc =
    match Json.parse (Trace.to_chrome_json ()) with
    | doc -> doc
    | exception Json.Bad msg -> Alcotest.failf "chrome export is not valid JSON: %s" msg
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check Alcotest.bool "trace is non-empty" true (List.length events > 100);
  let begins = ref 0 and ends = ref 0 and metas = ref 0 in
  List.iter
    (fun e ->
      (match Json.member "pid" e with
      | Some (Json.Num 1.0) -> ()
      | _ -> Alcotest.fail "event missing pid 1");
      (match Json.member "tid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "event missing tid");
      match Json.member "ph" e with
      | Some (Json.Str "B") -> incr begins
      | Some (Json.Str "E") -> incr ends
      | Some (Json.Str "M") -> incr metas
      | Some (Json.Str ("i" | "C")) -> ()
      | _ -> Alcotest.fail "event with unexpected ph")
    events;
  (* Nothing dropped at this size, and the trace validated clean, so the
     exported stream is balanced. *)
  check Alcotest.int "no drops" 0 (Trace.dropped ());
  check Alcotest.int "begin/end balanced in export" !begins !ends;
  check Alcotest.bool "thread-name metadata present" true (!metas >= 4)

let test_summary_export_well_formed () =
  with_tracer @@ fun () ->
  let total = match run_kv_workload () with t, _, _ -> t in
  let doc =
    match Json.parse (Trace.summary_json ~total_cycles:total ()) with
    | doc -> doc
    | exception Json.Bad msg -> Alcotest.failf "summary is not valid JSON: %s" msg
  in
  (match Json.member "phases" doc with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "no phases");
  (match Json.member "nvm" doc with
  | Some (Json.Arr accts) ->
    check Alcotest.bool "persist daemon attributed" true
      (List.exists
         (fun a ->
           match (Json.member "thread" a, Json.member "utilization" a) with
           | Some (Json.Str name), Some (Json.Num u) ->
             String.length name >= 7 && String.sub name 0 7 = "persist" && u > 0.0 && u <= 1.0
           | _ -> false)
         accts)
  | _ -> Alcotest.fail "no nvm accounting");
  (match Json.member "ring_occupancy" doc with
  | Some (Json.Arr occ) ->
    check Alcotest.bool "ring occupancy series present" true (List.length occ > 0)
  | _ -> Alcotest.fail "no ring_occupancy");
  match Json.member "violations" doc with
  | Some (Json.Arr []) -> ()
  | _ -> Alcotest.fail "violations not empty"

let test_escaping () =
  with_tracer @@ fun () ->
  Trace.instant ~cat:"we\"ird" "na\\me\n" 1;
  match Json.parse (Trace.to_chrome_json ()) with
  | _ -> ()
  | exception Json.Bad msg -> Alcotest.failf "escaping broke the export: %s" msg

let suite =
  [
    Alcotest.test_case "ring wrap keeps the newest window" `Quick test_ring_wrap;
    Alcotest.test_case "ring capacity clamps to 16" `Quick test_ring_capacity_clamped;
    Alcotest.test_case "ring below capacity keeps everything" `Quick
      test_ring_no_wrap_keeps_everything;
    Alcotest.test_case "orphan span end detected" `Quick test_orphan_detected;
    Alcotest.test_case "mismatched span end detected" `Quick test_mismatch_detected;
    Alcotest.test_case "unclosed span detected" `Quick test_unclosed_detected;
    Alcotest.test_case "non-monotone timestamps detected" `Quick test_nonmonotone_detected;
    Alcotest.test_case "balanced trace validates clean" `Quick test_balanced_is_clean;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram edge buckets and sorting" `Quick
      test_histogram_zero_and_sort;
    Alcotest.test_case "span invariants under random schedules" `Slow
      test_invariants_under_random_schedules;
    Alcotest.test_case "pipeline phases on the default schedule" `Quick
      test_invariants_default_schedule;
    Alcotest.test_case "disabled tracing is invisible" `Slow
      test_disabled_tracing_is_invisible;
    Alcotest.test_case "zero allocation when disabled" `Quick
      test_zero_allocation_when_disabled;
    Alcotest.test_case "chrome export is well-formed" `Quick test_chrome_export_well_formed;
    Alcotest.test_case "summary export is well-formed" `Quick
      test_summary_export_well_formed;
    Alcotest.test_case "json escaping of hostile names" `Quick test_escaping;
  ]

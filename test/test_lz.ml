(* LZ compressor tests: roundtrip, ratio behaviour, malformed input. *)

module Lz = Dudetm_log.Lz
module Log_entry = Dudetm_log.Log_entry

let check = Alcotest.check

let roundtrip b = Lz.decompress (Lz.compress b)

let test_empty () =
  check Alcotest.bytes "empty roundtrip" (Bytes.create 0) (roundtrip (Bytes.create 0))

let test_short () =
  let b = Bytes.of_string "abc" in
  check Alcotest.bytes "short input roundtrip" b (roundtrip b)

let test_repetitive_compresses () =
  let b = Bytes.of_string (String.concat "" (List.init 200 (fun _ -> "abcdefgh"))) in
  check Alcotest.bytes "repetitive roundtrip" b (roundtrip b);
  check Alcotest.bool "repetitive input shrinks a lot" true (Lz.ratio b > 0.9)

let test_incompressible () =
  let rng = Dudetm_sim.Rng.create 99 in
  let b = Bytes.init 4096 (fun _ -> Char.chr (Dudetm_sim.Rng.int rng 256)) in
  check Alcotest.bytes "random bytes roundtrip" b (roundtrip b);
  check Alcotest.bool "random bytes do not shrink much" true (Lz.ratio b < 0.05)

let test_long_match () =
  (* Match length far beyond the 15-value nibble: exercises extension
     bytes. *)
  let b = Bytes.make 10_000 'x' in
  check Alcotest.bytes "long run roundtrip" b (roundtrip b);
  check Alcotest.bool "long run compresses" true (Bytes.length (Lz.compress b) < 100)

let test_long_literals () =
  (* Literal run beyond 15: exercises the literal extension path. *)
  let b = Bytes.init 300 (fun i -> Char.chr (17 * i mod 251)) in
  check Alcotest.bytes "long literal roundtrip" b (roundtrip b)

let test_overlapping_match () =
  (* "ababab..." needs overlapping copies in the decoder. *)
  let b = Bytes.of_string ("ab" ^ String.concat "" (List.init 500 (fun _ -> "ab"))) in
  check Alcotest.bytes "overlap roundtrip" b (roundtrip b)

let test_log_payload_ratio () =
  (* Redo-log payloads (small addresses, zero-heavy values) compress well;
     the paper reports ~69% with lz4. *)
  let entries =
    List.init 2000 (fun i ->
        Log_entry.Write { addr = 4096 + (8 * (i mod 500)); value = Int64.of_int (i mod 17) })
  in
  let payload = Log_entry.encode_list entries in
  check Alcotest.bool "log payload compresses >40%" true (Lz.ratio payload > 0.4)

let test_malformed_rejected () =
  Alcotest.check_raises "offset 0 rejected" (Invalid_argument "Lz.decompress: bad offset")
    (fun () ->
      (* token: 1 literal, match len nibble 0; literal 'a'; offset 0. *)
      ignore (Lz.decompress (Bytes.of_string "\x10a\x00\x00")));
  Alcotest.check_raises "truncated literals rejected"
    (Invalid_argument "Lz.decompress: truncated literals") (fun () ->
      ignore (Lz.decompress (Bytes.of_string "\xF0a")))

let test_all_zero_and_boundary_sizes () =
  (* All-zero buffers and sizes straddling the format's boundaries: the
     15-value literal/match nibbles, their 255-extension steps, and the
     minimum-match threshold. *)
  let sizes =
    [ 0; 1; 2; 3; 4; 14; 15; 16; 17; 18; 19; 20; 254; 255; 256; 269; 270; 271; 274; 275;
      525; 4096 ]
  in
  List.iter
    (fun size ->
      let zeros = Bytes.make size '\x00' in
      if roundtrip zeros <> zeros then Alcotest.failf "all-zero size %d diverged" size;
      let rng = Dudetm_sim.Rng.create (size + 1) in
      let random = Bytes.init size (fun _ -> Char.chr (Dudetm_sim.Rng.int rng 256)) in
      if roundtrip random <> random then Alcotest.failf "random size %d diverged" size)
    sizes;
  let big_zero = Bytes.make 65536 '\x00' in
  check Alcotest.bytes "64K zeros roundtrip" big_zero (roundtrip big_zero);
  check Alcotest.bool "64K zeros collapse" true (Bytes.length (Lz.compress big_zero) < 600)

let prop_roundtrip_adversarial =
  (* Fuzz over hostile structure: random interleavings of zero runs,
     repeated motifs and incompressible noise, sized to cross the literal
     and match extension boundaries. *)
  QCheck2.Test.make ~name:"lz: roundtrip on adversarial zero/noise mixes" ~count:300
    QCheck2.Gen.(
      map
        (fun pieces ->
          String.concat ""
            (List.map
               (function
                 | `Zeros n -> String.make n '\x00'
                 | `Noise (seed, n) ->
                   let rng = Dudetm_sim.Rng.create seed in
                   String.init n (fun _ -> Char.chr (Dudetm_sim.Rng.int rng 256))
                 | `Motif (seed, w, reps) ->
                   let rng = Dudetm_sim.Rng.create seed in
                   let m = String.init w (fun _ -> Char.chr (Dudetm_sim.Rng.int rng 256)) in
                   String.concat "" (List.init reps (fun _ -> m)))
               pieces))
        (list_size (int_range 1 8)
           (oneof
              [
                map (fun n -> `Zeros n) (int_range 0 300);
                map2 (fun s n -> `Noise (s, n)) (int_range 0 1000) (int_range 0 300);
                map3
                  (fun s w r -> `Motif (s, w, r))
                  (int_range 0 1000) (int_range 1 20) (int_range 1 40);
              ])))
    (fun s ->
      let b = Bytes.of_string s in
      roundtrip b = b)

let prop_roundtrip =
  QCheck2.Test.make ~name:"lz: compress/decompress roundtrip" ~count:500
    QCheck2.Gen.(string_size (int_range 0 2000))
    (fun s ->
      let b = Bytes.of_string s in
      roundtrip b = b)

let prop_roundtrip_structured =
  (* Byte strings with heavy repetition to force the match paths. *)
  QCheck2.Test.make ~name:"lz: roundtrip on repetitive input" ~count:300
    QCheck2.Gen.(
      map2
        (fun pieces reps ->
          String.concat ""
            (List.concat_map (fun p -> List.init (1 + reps) (fun _ -> p)) pieces))
        (list_size (int_range 1 8) (string_size (int_range 1 12)))
        (int_range 0 20))
    (fun s ->
      let b = Bytes.of_string s in
      roundtrip b = b)

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "short input" `Quick test_short;
    Alcotest.test_case "repetitive input compresses" `Quick test_repetitive_compresses;
    Alcotest.test_case "incompressible input" `Quick test_incompressible;
    Alcotest.test_case "long match extension" `Quick test_long_match;
    Alcotest.test_case "long literal extension" `Quick test_long_literals;
    Alcotest.test_case "overlapping matches" `Quick test_overlapping_match;
    Alcotest.test_case "log payloads compress" `Quick test_log_payload_ratio;
    Alcotest.test_case "malformed input rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "all-zero and boundary sizes" `Quick test_all_zero_and_boundary_sizes;
    QCheck_alcotest.to_alcotest prop_roundtrip_adversarial;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_structured;
  ]

(* Workload tests: Zipfian sampler, hash table and B+-tree model checks,
   TATP/YCSB/TPC-C drivers including TPC-C consistency under crash. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

exception Crashed

let volatile ?(heap = 8 * 1024 * 1024) () = B.Volatile_stm.ptm ~heap_size:heap ()

(* ------------------------------- zipf -------------------------------- *)

let test_zipf_skew () =
  let z = W.Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 11 in
  let counts = Array.make 1000 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let r = W.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 should receive close to its theoretical probability. *)
  let p0 = float_of_int counts.(0) /. float_of_int samples in
  let th0 = W.Zipf.pmf z 0 in
  check Alcotest.bool "rank-0 frequency near pmf" true (abs_float (p0 -. th0) < 0.02);
  check Alcotest.bool "rank 0 beats rank 500" true (counts.(0) > counts.(500));
  (* Higher theta concentrates more mass on the head. *)
  let z2 = W.Zipf.create ~n:1000 ~theta:1.07 in
  check Alcotest.bool "1.07 is more skewed than 0.99" true (W.Zipf.pmf z2 0 > th0)

let test_zipf_uniform_theta_zero () =
  let z = W.Zipf.create ~n:10 ~theta:0.0 in
  for i = 0 to 9 do
    check (Alcotest.float 1e-9) "uniform pmf" 0.1 (W.Zipf.pmf z i)
  done

let test_zipf_bounds () =
  let z = W.Zipf.create ~n:7 ~theta:0.99 in
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let r = W.Zipf.sample z rng in
    if r < 0 || r >= 7 then Alcotest.fail "sample out of range"
  done

let test_zipf_closed_form () =
  (* The pmf must match the closed form p(i) = i^-theta / H_{n,theta}
     exactly, sum to 1, and decrease monotonically. *)
  List.iter
    (fun theta ->
      let n = 200 in
      let z = W.Zipf.create ~n ~theta in
      let h = ref 0.0 in
      for i = 1 to n do
        h := !h +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      let sum = ref 0.0 in
      for i = 0 to n - 1 do
        let p = W.Zipf.pmf z i in
        let closed = 1.0 /. Float.pow (float_of_int (i + 1)) theta /. !h in
        if abs_float (p -. closed) > 1e-12 then
          Alcotest.failf "theta %.2f rank %d: pmf %.17g vs closed form %.17g" theta i p
            closed;
        if i > 0 && p > W.Zipf.pmf z (i - 1) +. 1e-15 then
          Alcotest.failf "theta %.2f: pmf increases at rank %d" theta i;
        sum := !sum +. p
      done;
      check (Alcotest.float 1e-9) "pmf sums to 1" 1.0 !sum)
    [ 0.0; 0.5; 0.99; 1.07 ]

let test_zipf_empirical_shape () =
  (* Whole-distribution check, not just the head: with 200k samples every
     rank's empirical frequency sits within a tight absolute band of its
     pmf. *)
  let n = 50 in
  let z = W.Zipf.create ~n ~theta:0.9 in
  let rng = Rng.create 77 in
  let samples = 200_000 in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let r = W.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  for i = 0 to n - 1 do
    let freq = float_of_int counts.(i) /. float_of_int samples in
    let p = W.Zipf.pmf z i in
    if abs_float (freq -. p) > 0.006 then
      Alcotest.failf "rank %d: frequency %.4f vs pmf %.4f" i freq p
  done

let test_zipf_invalid_args () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (W.Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "negative theta rejected"
    (Invalid_argument "Zipf.create: negative theta") (fun () ->
      ignore (W.Zipf.create ~n:10 ~theta:(-1.0)));
  Alcotest.check_raises "pmf rank out of range"
    (Invalid_argument "Zipf.pmf: rank out of range") (fun () ->
      ignore (W.Zipf.pmf (W.Zipf.create ~n:10 ~theta:0.5) 10))

(* ------------------------------- TATP -------------------------------- *)

let test_tatp_initial_locations () =
  let ptm = volatile () in
  let t = W.Tatp.setup ptm ~storage:W.Kv.Hash ~subscribers:64 in
  check Alcotest.int "subscriber count" 64 (W.Tatp.subscribers t);
  for s = 1 to 64 do
    check Alcotest.int64 "seeded location" (Int64.of_int (10_000 + s))
      (W.Tatp.peek_location t ~s_id:s)
  done

let test_tatp_update_location_model () =
  (* Mirror update_location's sampling with an identically-seeded RNG and
     check the table tracks the model exactly. *)
  let ptm = volatile () in
  let n = 40 in
  let t = W.Tatp.setup ptm ~storage:W.Kv.Hash ~subscribers:n in
  let model = Array.init (n + 1) (fun s -> Int64.of_int (10_000 + s)) in
  let rng = Rng.create 123 in
  let shadow = Rng.create 123 in
  for _ = 1 to 500 do
    W.Tatp.update_location t ~thread:0 ~rng;
    let s_id = 1 + Rng.int shadow n in
    let loc = Int64.logand (Rng.next_int64 shadow) 0xFFFFFFFFL in
    model.(s_id) <- loc
  done;
  for s = 1 to n do
    check Alcotest.int64
      (Printf.sprintf "subscriber %d tracks the model" s)
      model.(s)
      (W.Tatp.peek_location t ~s_id:s)
  done

let test_tatp_errors () =
  let ptm = volatile () in
  Alcotest.check_raises "zero subscribers rejected" (Invalid_argument "Tatp.setup")
    (fun () -> ignore (W.Tatp.setup ptm ~storage:W.Kv.Hash ~subscribers:0));
  let t = W.Tatp.setup ptm ~storage:W.Kv.Hash ~subscribers:8 in
  Alcotest.check_raises "unknown subscriber" (Failure "Tatp: missing subscriber")
    (fun () -> ignore (W.Tatp.peek_location t ~s_id:99))

(* ----------------------------- hash table ---------------------------- *)

let test_hashtable_model () =
  let ptm = volatile () in
  let h = W.Hashtable_app.setup ptm ~capacity:256 in
  let model = Hashtbl.create 64 in
  let rng = Rng.create 21 in
  for _ = 1 to 500 do
    let k = Int64.of_int (1 + Rng.int rng 200) in
    if Rng.bool rng then begin
      let v = Rng.next_int64 rng in
      ignore (W.Hashtable_app.insert h ~thread:0 ~key:k ~value:v);
      Hashtbl.replace model k v
    end
    else begin
      let got = W.Hashtable_app.lookup h ~thread:0 ~key:k in
      let want = Hashtbl.find_opt model k in
      if got <> want then Alcotest.fail "hash table diverged from model"
    end
  done;
  Hashtbl.iter
    (fun k v ->
      match W.Hashtable_app.lookup h ~thread:0 ~key:k with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.fail "final state mismatch")
    model

let test_hashtable_full () =
  let ptm = volatile () in
  let h = W.Hashtable_app.setup ptm ~capacity:16 in
  for i = 1 to 16 do
    ignore (W.Hashtable_app.insert h ~thread:0 ~key:(Int64.of_int i) ~value:0L)
  done;
  check Alcotest.bool "17th insert fails" false
    (W.Hashtable_app.insert h ~thread:0 ~key:99L ~value:0L);
  check Alcotest.bool "existing key still updatable when full" true
    (W.Hashtable_app.insert h ~thread:0 ~key:7L ~value:1L)

let test_hashtable_update_semantics () =
  let ptm = volatile () in
  let h = W.Hashtable_app.setup ptm ~capacity:64 in
  check Alcotest.bool "update of absent key fails" false
    (W.Hashtable_app.update h ~thread:0 ~key:5L ~value:9L);
  ignore (W.Hashtable_app.insert h ~thread:0 ~key:5L ~value:1L);
  check Alcotest.bool "update of present key succeeds" true
    (W.Hashtable_app.update h ~thread:0 ~key:5L ~value:9L);
  check (Alcotest.option Alcotest.int64) "updated value" (Some 9L)
    (W.Hashtable_app.lookup h ~thread:0 ~key:5L)

let test_hashtable_static_paths () =
  (* The same operations through NVML's static-transaction planning. *)
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = 4 * 1024 * 1024 } in
  let h = W.Hashtable_app.setup ptm ~capacity:256 in
  for i = 1 to 100 do
    if not (W.Hashtable_app.insert h ~thread:0 ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 2)))
    then Alcotest.fail "static insert failed"
  done;
  for i = 1 to 100 do
    check (Alcotest.option Alcotest.int64) "static lookup"
      (Some (Int64.of_int (i * 2)))
      (W.Hashtable_app.lookup h ~thread:0 ~key:(Int64.of_int i))
  done;
  check Alcotest.bool "static update" true (W.Hashtable_app.update h ~thread:0 ~key:50L ~value:0L);
  check (Alcotest.option Alcotest.int64) "static update visible" (Some 0L)
    (W.Hashtable_app.lookup h ~thread:0 ~key:50L)

(* ------------------------------ B+-tree ------------------------------ *)

let prop_bptree_model =
  QCheck2.Test.make ~name:"bptree: model equivalence under insert/update/delete" ~count:30
    QCheck2.Gen.(list_size (int_range 1 400) (tup3 (int_range 0 2) (int_range 1 300) int))
    (fun ops ->
      let ptm = volatile () in
      let tree = W.Bptree_app.create ptm in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k, v) ->
          let key = Int64.of_int k and value = Int64.of_int v in
          match op with
          | 0 ->
            W.Bptree_app.insert tree ~thread:0 ~key ~value;
            Hashtbl.replace model key value
          | 1 ->
            let got = W.Bptree_app.update tree ~thread:0 ~key ~value in
            if Hashtbl.mem model key then begin
              if not got then QCheck2.Test.fail_report "update of present key failed";
              Hashtbl.replace model key value
            end
            else if got then QCheck2.Test.fail_report "update of absent key succeeded"
          | _ ->
            let got = W.Bptree_app.delete tree ~thread:0 ~key in
            if Hashtbl.mem model key <> got then
              QCheck2.Test.fail_report "delete result mismatch";
            Hashtbl.remove model key)
        ops;
      W.Bptree_app.check_invariants tree;
      let bindings = W.Bptree_app.peek_bindings tree in
      let model_sorted =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
      in
      bindings = model_sorted)

let test_bptree_sequential_and_min () =
  let ptm = volatile () in
  let tree = W.Bptree_app.create ptm in
  for i = 100 downto 1 do
    W.Bptree_app.insert tree ~thread:0 ~key:(Int64.of_int i) ~value:(Int64.of_int (-i))
  done;
  W.Bptree_app.check_invariants tree;
  (match ptm.Ptm.atomically ~thread:0 (fun tx -> W.Bptree_app.min_binding_tx tree tx) with
  | Some (Some (k, v), _) ->
    check Alcotest.int64 "min key" 1L k;
    check Alcotest.int64 "min value" (-1L) v
  | _ -> Alcotest.fail "min_binding failed");
  check Alcotest.int "all keys present" 100 (List.length (W.Bptree_app.peek_bindings tree))

let test_bptree_concurrent_inserts () =
  let ptm = volatile () in
  let tree = W.Bptree_app.create ptm in
  ignore
    (Sched.run (fun () ->
         for th = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int th) (fun () ->
                  for i = 0 to 249 do
                    let k = Int64.of_int (1 + (th * 1000) + i) in
                    W.Bptree_app.insert tree ~thread:th ~key:k ~value:k
                  done))
         done));
  W.Bptree_app.check_invariants tree;
  check Alcotest.int "1000 distinct keys present" 1000
    (List.length (W.Bptree_app.peek_bindings tree))

(* ----------------------------- TATP/YCSB ----------------------------- *)

let test_tatp_both_storages () =
  List.iter
    (fun storage ->
      let ptm = volatile () in
      let t = W.Tatp.setup ptm ~storage ~subscribers:200 in
      let rng = Rng.create 31 in
      for _ = 1 to 300 do
        W.Tatp.update_location t ~thread:0 ~rng
      done;
      (* Every subscriber still resolvable. *)
      for s = 1 to 200 do
        ignore (W.Tatp.peek_location t ~s_id:s)
      done)
    [ W.Kv.Hash; W.Kv.Tree ]

let test_bptree_range_scan () =
  let ptm = volatile () in
  let tree = W.Bptree_app.create ptm in
  for i = 1 to 200 do
    W.Bptree_app.insert tree ~thread:0 ~key:(Int64.of_int (2 * i)) ~value:(Int64.of_int i)
  done;
  let scan lo hi =
    match
      ptm.Ptm.atomically ~thread:0 (fun tx ->
          W.Bptree_app.fold_range_tx tree tx ~lo:(Int64.of_int lo) ~hi:(Int64.of_int hi)
            ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
    with
    | Some (l, _) -> List.rev l
    | None -> assert false
  in
  check Alcotest.int "full scan sees everything" 200 (List.length (scan 0 1000));
  check
    Alcotest.(list (pair int64 int64))
    "bounded scan in order"
    [ (10L, 5L); (12L, 6L); (14L, 7L) ]
    (scan 10 14);
  check Alcotest.int "scan over odd keys between bindings" 3 (List.length (scan 9 15));
  check Alcotest.int "empty range" 0 (List.length (scan 401 500));
  (* Keys are in ascending order. *)
  let keys = List.map fst (scan 0 1000) in
  check Alcotest.bool "ascending" true (List.sort compare keys = keys)

let test_ycsb_mixes () =
  List.iter
    (fun (name, mix) ->
      let ptm = volatile () in
      let y = W.Ycsb.setup ptm ~records:300 ~theta:0.99 () in
      let rng = Rng.create 51 in
      let counter = ref 0 in
      for _ = 1 to 400 do
        ignore (W.Ycsb.mixed_transaction y mix ~thread:0 ~rng ~insert_counter:counter)
      done;
      W.Bptree_app.check_invariants (W.Ycsb.tree y);
      let population = List.length (W.Bptree_app.peek_bindings (W.Ycsb.tree y)) in
      if mix.W.Ycsb.inserts > 0.0 then begin
        if population <> 300 + !counter then
          Alcotest.failf "%s: population %d but %d inserts" name population !counter
      end
      else check Alcotest.int (name ^ ": population unchanged") 300 population)
    [
      ("A", W.Ycsb.workload_a);
      ("B", W.Ycsb.workload_b);
      ("C", W.Ycsb.workload_c);
      ("D", W.Ycsb.workload_d);
      ("E", W.Ycsb.workload_e);
      ("F", W.Ycsb.workload_f);
    ]

let test_ycsb_runs () =
  let ptm = volatile () in
  let y = W.Ycsb.setup ptm ~records:500 ~theta:0.99 () in
  let rng = Rng.create 41 in
  for _ = 1 to 500 do
    W.Ycsb.transaction y ~thread:0 ~rng
  done;
  W.Bptree_app.check_invariants (W.Ycsb.tree y);
  check Alcotest.int "record population unchanged" 500
    (List.length (W.Bptree_app.peek_bindings (W.Ycsb.tree y)))

(* ------------------------------- TPC-C ------------------------------- *)

let run_tpcc ptm ~storage ~txs =
  let t = W.Tpcc.setup ptm ~storage ~items:100 ~expected_orders:1024 () in
  ignore
    (Sched.run (fun () ->
         ptm.Ptm.start ();
         let remaining = ref (4 * txs) in
         for th = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int th) (fun () ->
                  let rng = Rng.create (61 + th) in
                  for _ = 1 to txs do
                    ignore (W.Tpcc.new_order t ~thread:th ~rng ());
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"tpcc" (fun () -> !remaining = 0);
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()));
  t

let test_tpcc_consistency_volatile () =
  List.iter
    (fun storage ->
      let t = run_tpcc (volatile ()) ~storage ~txs:30 in
      W.Tpcc.consistency_check t;
      let total = List.init 10 (fun d -> W.Tpcc.order_count t ~district:(d + 1)) in
      check Alcotest.int "every order accounted" 120 (List.fold_left ( + ) 0 total))
    [ W.Kv.Hash; W.Kv.Tree ]

let test_tpcc_consistency_nvml_static () =
  let ptm = B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = 8 * 1024 * 1024 } in
  let t = run_tpcc ptm ~storage:W.Kv.Hash ~txs:15 in
  W.Tpcc.consistency_check t

let test_tpcc_fixed_district () =
  let ptm = volatile () in
  let t = W.Tpcc.setup ptm ~storage:W.Kv.Tree ~items:100 () in
  ignore
    (Sched.run (fun () ->
         for th = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int th) (fun () ->
                  let rng = Rng.create (71 + th) in
                  for _ = 1 to 20 do
                    ignore (W.Tpcc.new_order t ~thread:th ~rng ~district:(th + 1) ())
                  done))
         done));
  W.Tpcc.consistency_check t;
  for d = 1 to 4 do
    check Alcotest.int "fixed district received its orders" 20 (W.Tpcc.order_count t ~district:d)
  done;
  for d = 5 to 10 do
    check Alcotest.int "other districts empty" 0 (W.Tpcc.order_count t ~district:d)
  done

let tpcc_crash_roundtrip ~storage ~crash_cycles ~evict ~seed () =
  (* The headline end-to-end test: TPC-C on DudeTM, crash mid-run with
     adversarial evictions, recover, re-attach the database from its root
     directory, and check full TPC-C invariants across all seven tables. *)
  let cfg =
    {
      Config.default with
      Config.heap_size = 8 * 1024 * 1024;
      nthreads = 4;
      vlog_capacity = 8192;
      plog_size = 1 lsl 17;
    }
  in
  let ptm, d = B.Dude_ptm.Stm.ptm cfg in
  let t = W.Tpcc.setup ptm ~storage ~items:100 ~expected_orders:2048 () in
  (try
     ignore
       (Sched.run (fun () ->
            ptm.Ptm.start ();
            for th = 0 to 3 do
              ignore
                (Sched.spawn (string_of_int th) (fun () ->
                     let rng = Rng.create (seed + th) in
                     while true do
                       ignore (W.Tpcc.transaction t ~thread:th ~rng ())
                     done))
            done;
            Sched.advance crash_cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:evict ~rng:(Rng.create seed) (D.nvm d);
  let ptm2, _, report = B.Dude_ptm.Stm.attach_ptm cfg (D.nvm d) in
  let t2 = W.Tpcc.attach ptm2 in
  W.Tpcc.consistency_check t2;
  report.Dudetm_core.Dudetm.durable

let test_tpcc_payment_and_mix () =
  List.iter
    (fun ptm ->
      let t = W.Tpcc.setup ptm ~storage:W.Kv.Hash ~items:50 ~customers:20
          ~expected_orders:1024 () in
      ignore
        (Sched.run (fun () ->
             ptm.Ptm.start ();
             let remaining = ref 4 in
             for th = 0 to 3 do
               ignore
                 (Sched.spawn (string_of_int th) (fun () ->
                      let rng = Rng.create (101 + th) in
                      for _ = 1 to 40 do
                        ignore (W.Tpcc.transaction t ~thread:th ~rng ())
                      done;
                      decr remaining))
             done;
             Sched.wait_until ~label:"mix" (fun () -> !remaining = 0);
             ptm.Ptm.drain ();
             ptm.Ptm.stop ()));
      W.Tpcc.consistency_check t)
    [ volatile (); B.Nvml.ptm { B.Nvml.default_config with B.Nvml.heap_size = 8 * 1024 * 1024 } ]

let test_tpcc_order_status_total () =
  let ptm = volatile () in
  let t = W.Tpcc.setup ptm ~storage:W.Kv.Tree ~items:50 ~customers:20 () in
  let rng = Rng.create 7 in
  for _ = 1 to 10 do
    ignore (W.Tpcc.new_order t ~thread:0 ~rng ~district:1 ())
  done;
  (* Order-Status reads a consistent order; totals are positive. *)
  for _ = 1 to 10 do
    let total = W.Tpcc.order_status t ~thread:0 ~rng ~district:1 () in
    if total <= 0L then Alcotest.failf "order total %Ld not positive" total
  done;
  (* Districts with no orders return 0. *)
  check Alcotest.int64 "empty district" 0L (W.Tpcc.order_status t ~thread:0 ~rng ~district:9 ())

let test_tpcc_crash_consistency_dudetm () =
  let d = tpcc_crash_roundtrip ~storage:W.Kv.Tree ~crash_cycles:3_000_000 ~evict:0.5 ~seed:81 () in
  check Alcotest.bool "substantial work recovered (tree)" true (d > 20);
  let d = tpcc_crash_roundtrip ~storage:W.Kv.Hash ~crash_cycles:2_000_000 ~evict:0.3 ~seed:4 () in
  check Alcotest.bool "substantial work recovered (hash)" true (d > 20)

let test_tpcc_recover_and_extend () =
  (* After recovery, the re-attached database keeps serving New Order
     transactions. *)
  let cfg =
    {
      Config.default with
      Config.heap_size = 8 * 1024 * 1024;
      nthreads = 2;
      vlog_capacity = 8192;
      plog_size = 1 lsl 17;
    }
  in
  let ptm, d = B.Dude_ptm.Stm.ptm cfg in
  let t = W.Tpcc.setup ptm ~storage:W.Kv.Tree ~items:100 () in
  (try
     ignore
       (Sched.run (fun () ->
            ptm.Ptm.start ();
            for th = 0 to 1 do
              ignore
                (Sched.spawn (string_of_int th) (fun () ->
                     let rng = Rng.create (91 + th) in
                     while true do
                       ignore (W.Tpcc.new_order t ~thread:th ~rng ())
                     done))
            done;
            Sched.advance 1_500_000;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.2 ~rng:(Rng.create 7) (D.nvm d);
  let ptm2, _, _ = B.Dude_ptm.Stm.attach_ptm cfg (D.nvm d) in
  let t2 = W.Tpcc.attach ptm2 in
  let before = List.init 10 (fun i -> W.Tpcc.order_count t2 ~district:(i + 1)) in
  ignore
    (Sched.run (fun () ->
         ptm2.Ptm.start ();
         let rng = Rng.create 5 in
         for _ = 1 to 20 do
           ignore (W.Tpcc.new_order t2 ~thread:0 ~rng ())
         done;
         ptm2.Ptm.drain ();
         ptm2.Ptm.stop ()));
  W.Tpcc.consistency_check t2;
  let after = List.init 10 (fun i -> W.Tpcc.order_count t2 ~district:(i + 1)) in
  check Alcotest.int "20 new orders after recovery"
    (List.fold_left ( + ) 0 before + 20)
    (List.fold_left ( + ) 0 after)

let suite =
  [
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform at theta 0" `Quick test_zipf_uniform_theta_zero;
    Alcotest.test_case "zipf sample bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf pmf matches closed form" `Quick test_zipf_closed_form;
    Alcotest.test_case "zipf empirical shape" `Quick test_zipf_empirical_shape;
    Alcotest.test_case "zipf invalid arguments" `Quick test_zipf_invalid_args;
    Alcotest.test_case "tatp initial locations" `Quick test_tatp_initial_locations;
    Alcotest.test_case "tatp update-location model" `Quick test_tatp_update_location_model;
    Alcotest.test_case "tatp error paths" `Quick test_tatp_errors;
    Alcotest.test_case "hash table model check" `Quick test_hashtable_model;
    Alcotest.test_case "hash table full behaviour" `Quick test_hashtable_full;
    Alcotest.test_case "hash table update semantics" `Quick test_hashtable_update_semantics;
    Alcotest.test_case "hash table static (NVML) paths" `Quick test_hashtable_static_paths;
    QCheck_alcotest.to_alcotest prop_bptree_model;
    Alcotest.test_case "bptree sequential + min binding" `Quick test_bptree_sequential_and_min;
    Alcotest.test_case "bptree concurrent inserts" `Quick test_bptree_concurrent_inserts;
    Alcotest.test_case "tatp on both storages" `Quick test_tatp_both_storages;
    Alcotest.test_case "bptree range scan" `Quick test_bptree_range_scan;
    Alcotest.test_case "ycsb workload mixes" `Quick test_ycsb_mixes;
    Alcotest.test_case "ycsb session store" `Quick test_ycsb_runs;
    Alcotest.test_case "tpcc invariants (volatile)" `Quick test_tpcc_consistency_volatile;
    Alcotest.test_case "tpcc invariants (NVML static)" `Quick test_tpcc_consistency_nvml_static;
    Alcotest.test_case "tpcc fixed-district variant" `Quick test_tpcc_fixed_district;
    Alcotest.test_case "tpcc payment + mixed drivers" `Quick test_tpcc_payment_and_mix;
    Alcotest.test_case "tpcc order-status" `Quick test_tpcc_order_status_total;
    Alcotest.test_case "tpcc crash consistency on DudeTM" `Slow
      test_tpcc_crash_consistency_dudetm;
    Alcotest.test_case "tpcc recover and extend" `Slow test_tpcc_recover_and_extend;
  ]

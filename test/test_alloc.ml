(* Persistent allocator and checkpoint tests. *)

module Alloc = Dudetm_core.Alloc
module Checkpoint = Dudetm_core.Checkpoint
module Nvm = Dudetm_nvm.Nvm
module Pmem_config = Dudetm_nvm.Pmem_config
module Rng = Dudetm_sim.Rng

let check = Alcotest.check

let test_alloc_basic () =
  let a = Alloc.create ~base:0 ~size:1024 in
  check Alcotest.int "all free" 1024 (Alloc.free_bytes a);
  let b1 = Option.get (Alloc.alloc a 100) in
  check Alcotest.int "first fit at base" 0 b1;
  check Alcotest.int "rounded to 8" (1024 - 104) (Alloc.free_bytes a);
  let b2 = Option.get (Alloc.alloc a 8) in
  check Alcotest.int "next block adjacent" 104 b2

let test_alloc_exhaustion () =
  let a = Alloc.create ~base:0 ~size:64 in
  check Alcotest.bool "big request fails" true (Alloc.alloc a 100 = None);
  ignore (Option.get (Alloc.alloc a 64));
  check Alcotest.bool "empty allocator fails" true (Alloc.alloc a 1 = None)

let test_free_coalesces () =
  let a = Alloc.create ~base:0 ~size:1024 in
  let b1 = Option.get (Alloc.alloc a 100) in
  let b2 = Option.get (Alloc.alloc a 100) in
  let b3 = Option.get (Alloc.alloc a 100) in
  ignore b3;
  Alloc.free a ~off:b1 ~len:100;
  Alloc.free a ~off:b2 ~len:100;
  (* b1 and b2 coalesce: a 208-byte request fits in the hole. *)
  check Alcotest.int "coalesced hole reused" b1 (Option.get (Alloc.alloc a 208))

let test_double_free_rejected () =
  let a = Alloc.create ~base:0 ~size:1024 in
  let b = Option.get (Alloc.alloc a 64) in
  Alloc.free a ~off:b ~len:64;
  Alcotest.check_raises "double free detected"
    (Invalid_argument "Alloc.free: block overlaps a free extent") (fun () ->
      Alloc.free a ~off:b ~len:64)

let test_reserve_exact () =
  let a = Alloc.create ~base:0 ~size:1024 in
  Alloc.reserve a ~off:512 ~len:64;
  check Alcotest.int "reserve carves the middle" (1024 - 64) (Alloc.free_bytes a);
  (* The two remaining extents are [0,512) and [576,1024). *)
  check Alcotest.(list (pair int int)) "extents split" [ (0, 512); (576, 448) ] (Alloc.extents a);
  Alcotest.check_raises "reserving an allocated range fails"
    (Invalid_argument "Alloc.reserve: range partially free") (fun () ->
      Alloc.reserve a ~off:500 ~len:64)

let test_restore_roundtrip () =
  let a = Alloc.create ~base:0 ~size:4096 in
  ignore (Alloc.alloc a 100);
  let b = Option.get (Alloc.alloc a 200) in
  ignore (Alloc.alloc a 300);
  Alloc.free a ~off:b ~len:200;
  let restored = Alloc.restore (Alloc.extents a) in
  check Alcotest.bool "restore reproduces the free list" true (Alloc.equal a restored)

let prop_alloc_free_no_overlap =
  (* Random alloc/free sequences: live blocks never overlap, and freeing
     everything returns to one full extent. *)
  QCheck2.Test.make ~name:"alloc: no overlap and full coalescing" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 200))
    (fun sizes ->
      let a = Alloc.create ~base:0 ~size:65536 in
      let live = ref [] in
      List.iter
        (fun n ->
          match Alloc.alloc a n with
          | Some off ->
            (* Overlap check against live blocks. *)
            List.iter
              (fun (o, l) ->
                if off < o + l && o < off + ((n + 7) / 8 * 8) then
                  QCheck2.Test.fail_reportf "blocks overlap: (%d,%d) vs (%d,%d)" off n o l)
              !live;
            live := (off, (n + 7) / 8 * 8) :: !live
          | None -> ())
        sizes;
      List.iter (fun (o, l) -> Alloc.free a ~off:o ~len:l) !live;
      Alloc.extents a = [ (0, 65536) ])

let prop_alloc_replay_equivalence =
  (* Replaying the Alloc/Free event log with reserve/free reproduces the
     allocator state — the recovery path's invariant. *)
  QCheck2.Test.make ~name:"alloc: event-log replay reproduces state" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (tup2 (int_range 1 128) bool))
    (fun ops ->
      let a = Alloc.create ~base:0 ~size:32768 in
      let replayed = Alloc.create ~base:0 ~size:32768 in
      let live = ref [] in
      let log = ref [] in
      List.iter
        (fun (n, do_free) ->
          if do_free && !live <> [] then begin
            let (o, l), rest = (List.hd !live, List.tl !live) in
            live := rest;
            Alloc.free a ~off:o ~len:l;
            log := `Free (o, l) :: !log
          end
          else
            match Alloc.alloc a n with
            | Some off ->
              live := (off, (n + 7) / 8 * 8) :: !live;
              log := `Alloc (off, n) :: !log
            | None -> ())
        ops;
      List.iter
        (function
          | `Alloc (off, len) -> Alloc.reserve replayed ~off ~len
          | `Free (off, len) -> Alloc.free replayed ~off ~len)
        (List.rev !log);
      Alloc.equal a replayed)

(* ----------------------------- checkpoint ---------------------------- *)

let device () = Nvm.create ~charge_time:false Pmem_config.default ~size:65536

let state upto exts =
  { Checkpoint.reproduced_upto = upto; cross_frontier = 0; free_extents = exts }

let test_checkpoint_roundtrip () =
  let nvm = device () in
  let t = Checkpoint.format nvm ~base:0 ~size:8192 (state 0 [ (0, 4096) ]) in
  Checkpoint.write t (state 17 [ (8, 100); (200, 50) ]);
  Nvm.crash nvm;
  let _, st = Checkpoint.attach nvm ~base:0 ~size:8192 in
  check Alcotest.int "watermark restored" 17 st.Checkpoint.reproduced_upto;
  check Alcotest.(list (pair int int)) "extents restored" [ (8, 100); (200, 50) ]
    st.Checkpoint.free_extents

let test_checkpoint_alternates_slots () =
  let nvm = device () in
  let t = Checkpoint.format nvm ~base:0 ~size:8192 (state 0 []) in
  for i = 1 to 5 do
    Checkpoint.write t (state i [ (i, i) ])
  done;
  Nvm.crash nvm;
  let _, st = Checkpoint.attach nvm ~base:0 ~size:8192 in
  check Alcotest.int "newest checkpoint wins" 5 st.Checkpoint.reproduced_upto

let test_checkpoint_torn_write_recovers_previous () =
  let nvm = device () in
  let t = Checkpoint.format nvm ~base:0 ~size:8192 (state 0 []) in
  Checkpoint.write t (state 3 [ (0, 8) ]);
  (* Corrupt the NEXT slot with unpersisted garbage, as a torn checkpoint
     write would: the double buffer must fall back to checkpoint 3. *)
  Nvm.store_bytes nvm 4096 (Bytes.make 128 '\xAB');
  Nvm.crash ~evict_fraction:0.7 ~rng:(Rng.create 4) nvm;
  let _, st = Checkpoint.attach nvm ~base:0 ~size:8192 in
  check Alcotest.int "previous checkpoint recovered" 3 st.Checkpoint.reproduced_upto

let test_checkpoint_capacity () =
  let nvm = device () in
  let t = Checkpoint.format nvm ~base:0 ~size:1024 (state 0 []) in
  let too_many = List.init (Checkpoint.max_extents t + 1) (fun i -> (i * 16, 8)) in
  Alcotest.check_raises "oversized free list rejected"
    (Invalid_argument "Checkpoint: free list exceeds slot capacity") (fun () ->
      Checkpoint.write t (state 1 too_many))

let suite =
  [
    Alcotest.test_case "alloc basics" `Quick test_alloc_basic;
    Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
    Alcotest.test_case "free coalesces" `Quick test_free_coalesces;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "reserve carves exact ranges" `Quick test_reserve_exact;
    Alcotest.test_case "restore roundtrip" `Quick test_restore_roundtrip;
    QCheck_alcotest.to_alcotest prop_alloc_free_no_overlap;
    QCheck_alcotest.to_alcotest prop_alloc_replay_equivalence;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint slot alternation" `Quick test_checkpoint_alternates_slots;
    Alcotest.test_case "torn checkpoint falls back" `Quick
      test_checkpoint_torn_write_recovers_previous;
    Alcotest.test_case "checkpoint capacity limit" `Quick test_checkpoint_capacity;
  ]
